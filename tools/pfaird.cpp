// pfaird: the tiered admission-control daemon.
//
// Reads streaming JSONL requests (serve/request.h: join / leave /
// reweight / query / advance) from a file, pipe or stdin while the
// served simulator's quantum loop keeps running, and answers every line
// with one JSONL decision: admit/reject, the tier that decided (0 =
// O(1) utilization & Lopez bounds, 1 = overhead-aware Eq. (3), 2 =
// exact test under a budget), and whether the answer fell back to an
// approximation when the Tier-2 budget ran out.
//
//   pfaird --scheduler=pfair --processors=4 < requests.jsonl > decisions.jsonl
//
// Flags:
//   --scheduler=KIND     pfair|partitioned|global-job|uniproc|wrr|cbs
//   --processors=N       capacity the gate admits against (default 1)
//   --algorithm=edf|rm   uniproc / global-job flavour (default edf)
//   --input=FILE|-       request stream (default stdin)
//   --output=FILE|-      decision stream (default stdout)
//   --advance=N          run the simulator N slots after each request
//   --exact-budget=N     Tier-2 event budget (0 disables Tier 2)
//   --overhead           Tier 1 uses Eq.-(3) inflation (paper defaults)
//   --cache-delay=US     D(T) per task when --overhead (default 33.3)
//   --batch=N            pipeline input lines in groups of N: each
//                        group prewarms the Tier-2 memo before being
//                        answered in order (output byte-identical to
//                        --batch=1)
//   --jobs=N             memo-prewarm ThreadPool workers (default 1)
//   --memo-capacity=N    Tier-2 verdict memo entries (0 disables;
//                        default 65536)
//   --shards=N           admission task-mirror shards (default 16)
//   --registry=FILE      write the MetricsRegistry snapshot (serve.*
//                        counters, serve.decision p50/p95/p99,
//                        serve.tier2_memo_hits, serve.batch_size) to FILE
//   --gen-requests=N     generate a deterministic request stream to
//                        --output instead of serving
//   --batch-requests=N   with --gen-requests: wrap the stream into
//                        {"op":"batch"} lines of N sub-requests
//   --seed=N --load=PCT --max-period=N   generator parameters
//
// Determinism: decision lines carry the simulator clock, never
// wall-clock, so the same request stream and flags produce
// byte-identical decision logs on any host and any run (CI diffs two
// runs).  Wall-clock only feeds the stderr summary and the registry
// snapshot — observability side channels.
//
// Exit status: 0 on success, 1 on bad usage or unreadable/unwritable
// files.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/registry.h"
#include "serve/daemon.h"
#include "serve/request.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: pfaird --scheduler=KIND [--processors=N] [--algorithm=edf|rm]\n"
      "              [--input=FILE|-] [--output=FILE|-] [--advance=N]\n"
      "              [--exact-budget=N] [--overhead] [--cache-delay=US]\n"
      "              [--batch=N] [--jobs=N] [--memo-capacity=N] [--shards=N]\n"
      "              [--registry=FILE]\n"
      "       pfaird --gen-requests=N [--seed=N] [--load=PCT] [--processors=N]\n"
      "              [--max-period=N] [--batch-requests=N] [--output=FILE|-]\n");
  return 1;
}

const char* string_flag(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  }
  return nullptr;
}

long long flag(int argc, char** argv, const char* key, long long fallback) {
  const char* v = string_flag(argc, argv, key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long n = std::strtoll(v, &end, 10);
  return end == v || *end != '\0' ? fallback : n;
}

double double_flag(int argc, char** argv, const char* key, double fallback) {
  const char* v = string_flag(argc, argv, key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double n = std::strtod(v, &end);
  return end == v || *end != '\0' ? fallback : n;
}

bool bool_flag(int argc, char** argv, const char* key) {
  const std::string want = std::string("--") + key;
  for (int i = 1; i < argc; ++i)
    if (want == argv[i]) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = string_flag(argc, argv, "output");
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (output_path != nullptr && std::strcmp(output_path, "-") != 0) {
    out_file.open(output_path, std::ios::binary);
    if (!out_file) {
      std::fprintf(stderr, "pfaird: cannot write %s\n", output_path);
      return 1;
    }
    out = &out_file;
  }

  // Generator mode: emit a deterministic request stream and exit.
  if (const long long gen = flag(argc, argv, "gen-requests", 0); gen > 0) {
    pfair::serve::GenConfig gc;
    gc.count = static_cast<std::size_t>(gen);
    gc.seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 42));
    gc.load = static_cast<double>(flag(argc, argv, "load", 150)) / 100.0;
    gc.processors = static_cast<int>(flag(argc, argv, "processors", 4));
    gc.max_period = flag(argc, argv, "max-period", 40);
    std::string stream = pfair::serve::generate_requests(gc);
    if (const long long bs = flag(argc, argv, "batch-requests", 0); bs > 1)
      stream = pfair::serve::batch_requests(stream, static_cast<std::size_t>(bs));
    *out << stream;
    out->flush();
    return 0;
  }

  const char* scheduler = string_flag(argc, argv, "scheduler");
  if (scheduler == nullptr) return usage();
  const auto kind = pfair::engine::scheduler_kind_from_string(scheduler);
  if (!kind.has_value()) {
    std::fprintf(stderr, "pfaird: unknown scheduler '%s'; one of:", scheduler);
    for (const pfair::engine::SchedulerKind k : pfair::engine::all_scheduler_kinds())
      std::fprintf(stderr, " %s", pfair::engine::to_string(k));
    std::fprintf(stderr, "\n");
    return 1;
  }

  pfair::serve::DaemonConfig dc;
  dc.kind = *kind;
  dc.processors = static_cast<int>(flag(argc, argv, "processors", 1));
  const char* algorithm = string_flag(argc, argv, "algorithm");
  if (algorithm != nullptr) {
    if (std::strcmp(algorithm, "rm") == 0) {
      dc.algorithm = pfair::UniAlgorithm::kRM;
    } else if (std::strcmp(algorithm, "edf") != 0) {
      std::fprintf(stderr, "pfaird: unknown algorithm '%s' (edf|rm)\n", algorithm);
      return 1;
    }
  }
  dc.overhead_aware = bool_flag(argc, argv, "overhead");
  dc.cache_delay_us = double_flag(argc, argv, "cache-delay", 33.3);
  dc.exact_budget = static_cast<std::uint64_t>(flag(argc, argv, "exact-budget", 1 << 20));
  dc.advance_per_request = static_cast<pfair::Time>(flag(argc, argv, "advance", 0));
  dc.batch = static_cast<std::size_t>(std::max(1LL, flag(argc, argv, "batch", 1)));
  dc.jobs = static_cast<int>(std::max(1LL, flag(argc, argv, "jobs", 1)));
  dc.memo_capacity =
      static_cast<std::size_t>(std::max(0LL, flag(argc, argv, "memo-capacity", 1 << 16)));
  dc.mirror_shards = static_cast<int>(std::max(1LL, flag(argc, argv, "shards", 16)));

  const char* input_path = string_flag(argc, argv, "input");
  std::ifstream in_file;
  std::istream* in = &std::cin;
  if (input_path != nullptr && std::strcmp(input_path, "-") != 0) {
    in_file.open(input_path);
    if (!in_file) {
      std::fprintf(stderr, "pfaird: cannot read %s\n", input_path);
      return 1;
    }
    in = &in_file;
  }

  pfair::serve::Daemon daemon(dc);
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t handled = daemon.serve(*in, *out);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  daemon.publish_registry();
  if (const char* registry_path = string_flag(argc, argv, "registry")) {
    std::ofstream rf(registry_path, std::ios::binary);
    if (!rf) {
      std::fprintf(stderr, "pfaird: cannot write %s\n", registry_path);
      return 1;
    }
    rf << pfair::obs::MetricsRegistry::global().snapshot_json();
  }

  const pfair::serve::DaemonStats& s = daemon.stats();
  const pfair::serve::AdmissionController& gate = daemon.controller();
  // Rate over *requests* (batch sub-requests included), not input lines.
  (void)handled;
  std::fprintf(stderr,
               "# pfaird %s m=%d: %llu requests in %.3fs (%.0f/sec): "
               "%llu admits, %llu rejects, %llu errors; tiers %llu/%llu/%llu "
               "(%llu approx); memo %llu hits / %llu misses; "
               "decision p50=%.0fns p95=%.0fns p99=%.0fns\n",
               pfair::engine::to_string(*kind), dc.processors,
               static_cast<unsigned long long>(s.requests), secs,
               secs > 0.0 ? static_cast<double>(s.requests) / secs : 0.0,
               static_cast<unsigned long long>(s.admits),
               static_cast<unsigned long long>(s.rejects),
               static_cast<unsigned long long>(s.errors),
               static_cast<unsigned long long>(s.tier0),
               static_cast<unsigned long long>(s.tier1),
               static_cast<unsigned long long>(s.tier2),
               static_cast<unsigned long long>(s.approx),
               static_cast<unsigned long long>(gate.memo_hits()),
               static_cast<unsigned long long>(gate.memo_misses()),
               s.latency_ns.p50(), s.latency_ns.p95(), s.latency_ns.p99());
  return 0;
}
