// pfair_perf: offline perf-metric tooling over BENCH_*.json reports and
// MetricsRegistry snapshots — the CLI end of the CI regression gate.
//
//   pfair_perf snapshot <file.json>
//       pretty-prints a registry snapshot (counters / gauges / timers)
//       or, for a BENCH report, the flattened metric list
//
//   pfair_perf diff <baseline.json> <current.json>
//       [--threshold=PCT] [--all]
//       compares the two documents metric by metric.  A change counts
//       only if it clears both the statistical noise (ci99 half-widths
//       where the cells carry them) and the relative threshold
//       (default 10%).  Direction heuristics decide regression vs
//       improvement; unknown directions and metrics present on one
//       side only (new / gone) never fail the gate.
//
//   pfair_perf trend <dir> [--metric=SUBSTR]
//       walks every *.json in <dir> (sorted by filename) and prints
//       each metric's trajectory across the files
//
// Exit status: 0 success / no regressions; 2 when diff found at least
// one regression; 1 on bad usage or unreadable input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/perf_diff.h"
#include "obs/trace_analysis.h"

namespace {

namespace perf = pfair::obs::perf;
namespace json = pfair::obs::json;

int usage() {
  std::fprintf(stderr,
               "usage: pfair_perf snapshot <file.json>\n"
               "       pfair_perf diff <baseline.json> <current.json>"
               " [--threshold=PCT] [--all]\n"
               "       pfair_perf trend <dir> [--metric=SUBSTR]\n");
  return 1;
}

std::optional<json::Value> load_json(const char* path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  return json::parse(ss.str());
}

/// --key=value from the trailing arguments; nullptr when absent.
const char* string_flag(int argc, char** argv, int from, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  }
  return nullptr;
}

bool bool_flag(int argc, char** argv, int from, const char* key) {
  const std::string want = std::string("--") + key;
  for (int i = from; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

int run_snapshot(const char* path) {
  const std::optional<json::Value> doc = load_json(path);
  if (!doc) {
    std::fprintf(stderr, "pfair_perf: cannot read/parse %s\n", path);
    return 1;
  }
  if (doc->find("counters") != nullptr || doc->find("timers") != nullptr) {
    std::fputs(pfair::obs::format_registry_snapshot(*doc).c_str(), stdout);
    return 0;
  }
  const perf::MetricMap metrics = perf::flatten(*doc);
  std::printf("flattened metrics (%zu)\n", metrics.size());
  for (const auto& [name, m] : metrics) {
    if (m.noise != 0.0)
      std::printf("  %-48s %.6g ±%.3g\n", name.c_str(), m.value, m.noise);
    else
      std::printf("  %-48s %.6g\n", name.c_str(), m.value);
  }
  return 0;
}

int run_diff(int argc, char** argv) {
  const std::optional<json::Value> base = load_json(argv[2]);
  const std::optional<json::Value> cur = load_json(argv[3]);
  if (!base || !cur) {
    std::fprintf(stderr, "pfair_perf: cannot read/parse %s\n", !base ? argv[2] : argv[3]);
    return 1;
  }
  perf::DiffOptions opt;
  if (const char* t = string_flag(argc, argv, 4, "threshold")) {
    char* end = nullptr;
    const double pct = std::strtod(t, &end);
    if (end == nullptr || *end != '\0' || pct < 0.0) {
      std::fprintf(stderr, "pfair_perf: bad --threshold=%s (percent expected)\n", t);
      return 1;
    }
    opt.threshold = pct / 100.0;
  }
  const perf::DiffReport report =
      perf::diff(perf::flatten(*base), perf::flatten(*cur), opt);
  std::printf("# %s -> %s (threshold %.1f%%)\n", argv[2], argv[3], 100.0 * opt.threshold);
  std::fputs(perf::format_diff(report, bool_flag(argc, argv, 4, "all")).c_str(), stdout);
  return report.regressions > 0 ? 2 : 0;
}

int run_trend(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(argv[2], ec)) {
    if (e.is_regular_file() && e.path().extension() == ".json") files.push_back(e.path());
  }
  if (ec) {
    std::fprintf(stderr, "pfair_perf: cannot list %s: %s\n", argv[2],
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "pfair_perf: no *.json files in %s\n", argv[2]);
    return 1;
  }
  const char* filter = string_flag(argc, argv, 3, "metric");
  std::vector<std::string> names;
  std::map<std::string, std::vector<double>> series;  // name -> value per file (NaN gap)
  std::size_t file_idx = 0;
  for (const fs::path& p : files) {
    const std::optional<json::Value> doc = load_json(p.string().c_str());
    names.push_back(p.filename().string());
    if (doc) {
      for (const auto& [name, m] : perf::flatten(*doc)) {
        auto& v = series[name];
        v.resize(file_idx, std::nan(""));
        v.push_back(m.value);
      }
    } else {
      std::fprintf(stderr, "pfair_perf: skipping unparsable %s\n", p.string().c_str());
    }
    ++file_idx;
  }
  std::printf("# trend over %zu file(s):", files.size());
  for (const std::string& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");
  for (auto& [name, values] : series) {
    if (filter != nullptr && name.find(filter) == std::string::npos) continue;
    values.resize(files.size(), std::nan(""));
    std::printf("%-48s", name.c_str());
    for (const double v : values) {
      if (std::isnan(v))
        std::printf("  %10s", "-");
      else
        std::printf("  %10.4g", v);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "snapshot") return run_snapshot(argv[2]);
  if (cmd == "diff") {
    if (argc < 4) return usage();
    return run_diff(argc, argv);
  }
  if (cmd == "trend") return run_trend(argc, argv);
  return usage();
}
