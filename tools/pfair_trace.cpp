// pfair_trace: offline analysis of obs JSONL event traces.
//
// Answers the first questions of a scheduling investigation from a
// recorded trace (obs::JsonlSink output) without re-running anything:
//
//   pfair_trace summary    trace.jsonl              event totals
//   pfair_trace preemptors trace.jsonl [--top=N]    preemption league table
//   pfair_trace migrations trace.jsonl              from/to processor matrix
//   pfair_trace first-miss trace.jsonl [--window=N] events around the first miss
//   pfair_trace validate   trace.json               Perfetto JSON schema check
//   pfair_trace report     trace.jsonl              all of the above
//
// It can also *produce* a trace, via the simulator factory:
//
//   pfair_trace simulate <pfair|partitioned|global-job|uniproc|wrr|cbs>
//       [--processors=2] [--tasks=8] [--load=60] [--horizon=1000] [--seed=1]
//
// runs a seeded random workload (total utilization = load% of the
// processor count) through the named scheduler stack and streams the
// JSONL event trace to stdout — pipe it straight back into the analysis
// subcommands.
//
// "-" reads the trace from stdin.  Exit status: 0 on success; 1 on bad
// usage / unreadable input; 2 when `validate` finds a schema violation.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/factory.h"
#include "obs/bus.h"
#include "obs/jsonl_sink.h"
#include "obs/trace_analysis.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using pfair::obs::LoadResult;

int usage() {
  std::fprintf(stderr,
               "usage: pfair_trace <summary|preemptors|migrations|first-miss|validate|"
               "report> <trace-file|-> [--top=N] [--window=N]\n"
               "       pfair_trace simulate <scheduler> [--processors=N] [--tasks=N]"
               " [--load=PCT] [--horizon=N] [--seed=N]\n");
  return 1;
}

/// --key=N from the trailing arguments; `fallback` when absent/malformed.
long long flag(int argc, char** argv, const char* key, long long fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      char* end = nullptr;
      const long long v = std::strtoll(argv[i] + prefix.size(), &end, 10);
      if (end != nullptr && *end == '\0') return v;
    }
  }
  return fallback;
}

bool read_stream(const char* path, std::string& out) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    out = ss.str();
    return true;
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool load_events(const char* path, LoadResult& out) {
  if (std::strcmp(path, "-") == 0) {
    out = pfair::obs::load_jsonl(std::cin);
    return true;
  }
  std::ifstream f(path);
  if (!f) return false;
  out = pfair::obs::load_jsonl(f);
  return true;
}

/// `pfair_trace simulate <scheduler> [flags]`: build the named stack via
/// the engine factory, admit a seeded random workload, and stream the
/// JSONL event trace to stdout.
int run_simulate(int argc, char** argv) {
  using pfair::engine::SchedulerKind;
  const auto kind = pfair::engine::scheduler_kind_from_string(argv[2]);
  if (!kind.has_value()) {
    std::fprintf(stderr, "pfair_trace: unknown scheduler '%s'; one of:", argv[2]);
    for (const SchedulerKind k : pfair::engine::all_scheduler_kinds())
      std::fprintf(stderr, " %s", pfair::engine::to_string(k));
    std::fprintf(stderr, "\n");
    return 1;
  }
  const int processors = static_cast<int>(flag(argc, argv, "processors", 2));
  const auto n_tasks = static_cast<std::size_t>(flag(argc, argv, "tasks", 8));
  const long long load_pct = flag(argc, argv, "load", 60);
  const auto horizon = static_cast<pfair::Time>(flag(argc, argv, "horizon", 1000));
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));

  pfair::engine::SimulatorConfig cfg;
  cfg.pfair.processors = processors;
  cfg.partitioned.max_processors = processors;
  cfg.global_job.processors = processors;

  pfair::Rng rng(seed);
  const double u_cap =
      static_cast<double>(load_pct) / 100.0 * static_cast<double>(processors);
  const std::vector<pfair::UniTask> tasks =
      pfair::generate_uni_tasks(rng, n_tasks, u_cap, 64);

  const std::unique_ptr<pfair::engine::Simulator> sim =
      pfair::engine::make_simulator(*kind, cfg);
  pfair::obs::JsonlSink sink(std::cout);
  pfair::obs::EventBus bus;
  bus.add_sink(&sink);
  sim->attach_observer(&bus);
  std::size_t admitted = 0;
  for (const pfair::UniTask& t : tasks)
    if (sim->admit(t.execution, t.period)) ++admitted;
  sim->run_until(horizon);
  bus.flush();
  const pfair::engine::Metrics& m = sim->metrics();
  std::fprintf(stderr,
               "# %s: %zu/%zu tasks admitted, horizon %lld: %llu preemptions, "
               "%llu migrations, %llu misses\n",
               pfair::engine::to_string(*kind), admitted, tasks.size(),
               static_cast<long long>(horizon),
               static_cast<unsigned long long>(m.preemptions),
               static_cast<unsigned long long>(m.migrations),
               static_cast<unsigned long long>(m.deadline_misses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const char* path = argv[2];

  if (cmd == "simulate") return run_simulate(argc, argv);

  if (cmd == "validate") {
    std::string text;
    if (!read_stream(path, text)) {
      std::fprintf(stderr, "pfair_trace: cannot read %s\n", path);
      return 1;
    }
    const std::string problem = pfair::obs::validate_perfetto_json(text);
    if (!problem.empty()) {
      std::printf("INVALID: %s\n", problem.c_str());
      return 2;
    }
    std::printf("OK: Perfetto/Chrome trace JSON is well-formed\n");
    return 0;
  }

  LoadResult loaded;
  if (!load_events(path, loaded)) {
    std::fprintf(stderr, "pfair_trace: cannot read %s\n", path);
    return 1;
  }
  if (loaded.malformed_lines > 0)
    std::fprintf(stderr, "pfair_trace: skipped %zu malformed line(s)\n",
                 loaded.malformed_lines);
  const std::vector<pfair::obs::Event>& events = loaded.events;

  const auto top = static_cast<std::size_t>(flag(argc, argv, "top", 10));
  const auto window = static_cast<pfair::Time>(flag(argc, argv, "window", 3));

  if (cmd == "summary") {
    std::fputs(pfair::obs::format_summary(events).c_str(), stdout);
  } else if (cmd == "preemptors") {
    std::fputs(pfair::obs::format_preemptors(events, top).c_str(), stdout);
  } else if (cmd == "migrations") {
    std::fputs(pfair::obs::format_migration_matrix(events).c_str(), stdout);
  } else if (cmd == "first-miss") {
    std::fputs(pfair::obs::format_first_miss(events, window).c_str(), stdout);
  } else if (cmd == "report") {
    std::fputs(pfair::obs::format_summary(events).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(pfair::obs::format_preemptors(events, top).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(pfair::obs::format_migration_matrix(events).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(pfair::obs::format_first_miss(events, window).c_str(), stdout);
  } else {
    return usage();
  }
  return 0;
}
