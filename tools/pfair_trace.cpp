// pfair_trace: offline analysis of obs JSONL event traces.
//
// Answers the first questions of a scheduling investigation from a
// recorded trace (obs::JsonlSink output) without re-running anything:
//
//   pfair_trace summary    trace.jsonl              event totals
//   pfair_trace preemptors trace.jsonl [--top=N]    preemption league table
//   pfair_trace migrations trace.jsonl              from/to processor matrix
//   pfair_trace first-miss trace.jsonl [--window=N] events around the first miss
//   pfair_trace validate   trace.json               Perfetto JSON schema check
//   pfair_trace report     trace.jsonl [--registry=FILE]
//                                                   all of the above (plus a
//                                                   registry-snapshot section
//                                                   when --registry is given)
//
// It can also *produce* a trace, via the simulator factory:
//
//   pfair_trace simulate <pfair|partitioned|global-job|uniproc|wrr|cbs>
//       [--processors=2] [--tasks=8] [--load=60] [--horizon=1000] [--seed=1]
//       [--shards=N] [--prof=FILE] [--trace=FILE]
//
// runs a seeded random workload (total utilization = load% of the
// processor count) through the named scheduler stack and streams the
// JSONL event trace to stdout — pipe it straight back into the analysis
// subcommands.  --shards shards the pfair SoA slot kernel; --prof=FILE
// attaches self-profiling and writes the MetricsRegistry snapshot to
// FILE; --trace=FILE additionally writes Perfetto/Chrome JSON there
// (with kernel-phase tracks when --prof is attached).  Neither side
// channel changes the JSONL stream on stdout.
//
// With --requests=FILE, simulate instead *replays* a pfaird JSONL
// request stream (join/leave/reweight/query/advance) through the named
// stack and writes the decision log to stdout — byte-identical to what
// pfaird answers for the same stream and configuration, which makes any
// recorded daemon session a reproducible offline artifact.
//
// "-" reads the trace from stdin.  Exit status: 0 on success; 1 on bad
// usage / unreadable input; 2 when `validate` finds a schema violation.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/factory.h"
#include "obs/bus.h"
#include "obs/json.h"
#include "obs/jsonl_sink.h"
#include "obs/perfetto_sink.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/trace_analysis.h"
#include "serve/daemon.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using pfair::obs::LoadResult;

int usage() {
  std::fprintf(stderr,
               "usage: pfair_trace <summary|preemptors|migrations|first-miss|validate|"
               "report> <trace-file|-> [--top=N] [--window=N] [--registry=FILE]\n"
               "       pfair_trace simulate <scheduler> [--processors=N] [--tasks=N]"
               " [--load=PCT] [--horizon=N] [--seed=N] [--shards=N] [--prof=FILE]"
               " [--trace=FILE] [--requests=FILE [--advance=N] [--exact-budget=N]]\n");
  return 1;
}

/// --key=value (string form) from the trailing arguments; nullptr when
/// absent.
const char* string_flag(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  }
  return nullptr;
}

/// --key=N from the trailing arguments; `fallback` when absent/malformed.
long long flag(int argc, char** argv, const char* key, long long fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      char* end = nullptr;
      const long long v = std::strtoll(argv[i] + prefix.size(), &end, 10);
      if (end != nullptr && *end == '\0') return v;
    }
  }
  return fallback;
}

bool read_stream(const char* path, std::string& out) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    out = ss.str();
    return true;
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

bool load_events(const char* path, LoadResult& out) {
  if (std::strcmp(path, "-") == 0) {
    out = pfair::obs::load_jsonl(std::cin);
    return true;
  }
  std::ifstream f(path);
  if (!f) return false;
  out = pfair::obs::load_jsonl(f);
  return true;
}

/// `pfair_trace simulate <scheduler> [flags]`: build the named stack via
/// the engine factory, admit a seeded random workload, and stream the
/// JSONL event trace to stdout.
int run_simulate(int argc, char** argv) {
  using pfair::engine::SchedulerKind;
  const auto kind = pfair::engine::scheduler_kind_from_string(argv[2]);
  if (!kind.has_value()) {
    std::fprintf(stderr, "pfair_trace: unknown scheduler '%s'; one of:", argv[2]);
    for (const SchedulerKind k : pfair::engine::all_scheduler_kinds())
      std::fprintf(stderr, " %s", pfair::engine::to_string(k));
    std::fprintf(stderr, "\n");
    return 1;
  }
  const int processors = static_cast<int>(flag(argc, argv, "processors", 2));

  // --requests=FILE: replay a pfaird JSONL request stream through the
  // named stack instead of a seeded workload.  stdout then carries the
  // decision log (byte-identical to pfaird on the same stream), which
  // is what the replay exists for.
  if (const char* requests_file = string_flag(argc, argv, "requests")) {
    pfair::serve::DaemonConfig dc;
    dc.kind = *kind;
    dc.processors = processors;
    dc.advance_per_request = static_cast<pfair::Time>(flag(argc, argv, "advance", 0));
    dc.exact_budget =
        static_cast<std::uint64_t>(flag(argc, argv, "exact-budget", 1 << 20));
    pfair::serve::Daemon daemon(dc);
    std::ifstream file;
    std::istream* in = &std::cin;
    if (std::strcmp(requests_file, "-") != 0) {
      file.open(requests_file);
      if (!file) {
        std::fprintf(stderr, "pfair_trace: cannot read %s\n", requests_file);
        return 1;
      }
      in = &file;
    }
    const std::uint64_t handled = daemon.serve(*in, std::cout);
    const pfair::serve::DaemonStats& s = daemon.stats();
    std::fprintf(stderr,
                 "# %s: %llu requests replayed: %llu admits, %llu rejects, "
                 "%llu errors\n",
                 pfair::engine::to_string(*kind),
                 static_cast<unsigned long long>(handled),
                 static_cast<unsigned long long>(s.admits),
                 static_cast<unsigned long long>(s.rejects),
                 static_cast<unsigned long long>(s.errors));
    return 0;
  }

  const auto n_tasks = static_cast<std::size_t>(flag(argc, argv, "tasks", 8));
  const long long load_pct = flag(argc, argv, "load", 60);
  const auto horizon = static_cast<pfair::Time>(flag(argc, argv, "horizon", 1000));
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
  const int shards = static_cast<int>(flag(argc, argv, "shards", 1));
  const char* prof_file = string_flag(argc, argv, "prof");
  const char* trace_file = string_flag(argc, argv, "trace");

  pfair::engine::SimulatorConfig cfg;
  cfg.pfair.processors = processors;
  cfg.pfair.shards = shards > 0 ? shards : 1;
  cfg.partitioned.max_processors = processors;
  cfg.global_job.processors = processors;

  pfair::Rng rng(seed);
  const double u_cap =
      static_cast<double>(load_pct) / 100.0 * static_cast<double>(processors);
  const std::vector<pfair::UniTask> tasks =
      pfair::generate_uni_tasks(rng, n_tasks, u_cap, 64);

  if (prof_file != nullptr) {
    pfair::obs::prof::set_enabled(true);
    // Spans feed the Perfetto phase tracks; only record them when a
    // trace will render them (they grow with the horizon).
    pfair::obs::prof::set_span_recording(trace_file != nullptr);
  }

  const std::unique_ptr<pfair::engine::Simulator> sim =
      pfair::engine::make_simulator(*kind, cfg);
  pfair::obs::JsonlSink sink(std::cout);
  pfair::obs::EventBus bus;
  bus.add_sink(&sink);
  std::ofstream trace_os;
  std::optional<pfair::obs::PerfettoSink> perfetto;
  if (trace_file != nullptr) {
    trace_os.open(trace_file, std::ios::binary);
    if (!trace_os) {
      std::fprintf(stderr, "pfair_trace: cannot write %s\n", trace_file);
      return 1;
    }
    perfetto.emplace(trace_os);
    bus.add_sink(&*perfetto);
  }
  sim->attach_observer(&bus);
  std::size_t admitted = 0;
  for (const pfair::UniTask& t : tasks)
    if (sim->admit(pfair::engine::task_spec(t.execution, t.period))) ++admitted;
  sim->run_until(horizon);
  bus.flush();
  if (prof_file != nullptr) {
    pfair::obs::prof::snapshot_into(pfair::obs::MetricsRegistry::global());
    std::ofstream pf(prof_file, std::ios::binary);
    if (!pf) {
      std::fprintf(stderr, "pfair_trace: cannot write %s\n", prof_file);
      return 1;
    }
    pf << pfair::obs::MetricsRegistry::global().snapshot_json();
  }
  const pfair::engine::Metrics& m = sim->metrics();
  std::fprintf(stderr,
               "# %s: %zu/%zu tasks admitted, horizon %lld: %llu preemptions, "
               "%llu migrations, %llu misses\n",
               pfair::engine::to_string(*kind), admitted, tasks.size(),
               static_cast<long long>(horizon),
               static_cast<unsigned long long>(m.preemptions),
               static_cast<unsigned long long>(m.migrations),
               static_cast<unsigned long long>(m.deadline_misses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const char* path = argv[2];

  if (cmd == "simulate") return run_simulate(argc, argv);

  if (cmd == "validate") {
    std::string text;
    if (!read_stream(path, text)) {
      std::fprintf(stderr, "pfair_trace: cannot read %s\n", path);
      return 1;
    }
    const std::string problem = pfair::obs::validate_perfetto_json(text);
    if (!problem.empty()) {
      std::printf("INVALID: %s\n", problem.c_str());
      return 2;
    }
    std::printf("OK: Perfetto/Chrome trace JSON is well-formed\n");
    return 0;
  }

  LoadResult loaded;
  if (!load_events(path, loaded)) {
    std::fprintf(stderr, "pfair_trace: cannot read %s\n", path);
    return 1;
  }
  if (loaded.malformed_lines > 0)
    std::fprintf(stderr, "pfair_trace: skipped %zu malformed line(s)\n",
                 loaded.malformed_lines);
  const std::vector<pfair::obs::Event>& events = loaded.events;

  const auto top = static_cast<std::size_t>(flag(argc, argv, "top", 10));
  const auto window = static_cast<pfair::Time>(flag(argc, argv, "window", 3));

  if (cmd == "summary") {
    std::fputs(pfair::obs::format_summary(events).c_str(), stdout);
  } else if (cmd == "preemptors") {
    std::fputs(pfair::obs::format_preemptors(events, top).c_str(), stdout);
  } else if (cmd == "migrations") {
    std::fputs(pfair::obs::format_migration_matrix(events).c_str(), stdout);
  } else if (cmd == "first-miss") {
    std::fputs(pfair::obs::format_first_miss(events, window).c_str(), stdout);
  } else if (cmd == "report") {
    std::fputs(pfair::obs::format_summary(events).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(pfair::obs::format_preemptors(events, top).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(pfair::obs::format_migration_matrix(events).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(pfair::obs::format_first_miss(events, window).c_str(), stdout);
    if (const char* reg = string_flag(argc, argv, "registry")) {
      // Registry-snapshot section: fast_forwarded_slots and the other
      // engine counters that never appear in the event stream (FF is
      // disabled while a bus is attached).
      std::string text;
      if (!read_stream(reg, text)) {
        std::fprintf(stderr, "pfair_trace: cannot read %s\n", reg);
        return 1;
      }
      const std::optional<pfair::obs::json::Value> doc = pfair::obs::json::parse(text);
      std::fputs("\n", stdout);
      if (!doc) {
        std::fprintf(stderr, "pfair_trace: %s is not valid JSON\n", reg);
        return 1;
      }
      std::fputs(pfair::obs::format_registry_snapshot(*doc).c_str(), stdout);
    }
  } else {
    return usage();
  }
  return 0;
}
