// pfair_fuzz: property-based differential fuzzing CLI (qa/ subsystem).
//
// Generates `--cases` biased random task systems (qa/gen.h), runs every
// applicable invariant oracle on each (qa/oracle.h), and deterministically
// shrinks any failure to a minimal repro (qa/shrink.h).  Exit status is 0
// iff no oracle was violated.
//
// Usage: pfair_fuzz [--cases=1000] [--seed=1] [--jobs=N]
//                   [--profile=uniform|bimodal|heavy|harmonic|degenerate|dynamic]
//                   [--max-procs=4] [--max-tasks=10] [--max-shrunk=8]
//                   [--shards=1] [--artifacts=DIR]
//                   [--inject-pd2-b-bit-flip=0] [--json]
//
// --shards=N replays every case through the sharded SoA slot kernel
// (PfairConfig::shards = N); the count round-trips through the repro
// JSON/gtest artifacts so shrunk sharded failures reproduce exactly.
//
// Determinism: stdout and the --json report are byte-identical for any
// --jobs value (wall-clock goes to stderr), and every failure replays
// from its printed (seed, case) pair alone.  On failure, two artifacts
// are written to --artifacts (default "."): pfair_fuzz_repro.jsonl (one
// JSON object per failure: original + shrunk case, oracle, detail) and
// pfair_fuzz_repro.cc (ready-to-paste gtest cases for the shrunk
// repros; promotion path documented in EXPERIMENTS.md).
//
// --inject-pd2-b-bit-flip=1 flips PD2's b-bit tie-break (the deliberate
// bug behind set_pd2_b_bit_flip_for_test) — the end-to-end self-test
// that the campaign pipeline actually catches and shrinks a scheduler
// bug.  CI runs it and asserts a nonzero exit.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/priority.h"
#include "engine/harness.h"
#include "obs/json.h"
#include "qa/campaign.h"

namespace {

using namespace pfair;

bool write_artifacts(const std::string& dir, const qa::CampaignResult& result) {
  const std::string base = dir.empty() ? std::string(".") : dir;
  const std::string jsonl_path = base + "/pfair_fuzz_repro.jsonl";
  const std::string gtest_path = base + "/pfair_fuzz_repro.cc";
  std::ofstream jsonl(jsonl_path);
  std::ofstream gtest(gtest_path);
  if (!jsonl || !gtest) {
    std::fprintf(stderr, "pfair_fuzz: cannot write artifacts under %s\n", base.c_str());
    return false;
  }
  gtest << "// Shrunk fuzz repros — paste into tests/qa/ and keep (see\n"
           "// EXPERIMENTS.md, \"Fuzzing & invariant oracles\").\n";
  for (const qa::CampaignFailure& f : result.failures) {
    obs::json::Object o;
    o["oracle"] = obs::json::Value(f.verdict.oracle);
    o["detail"] = obs::json::Value(f.verdict.detail);
    o["transformations"] = obs::json::Value(static_cast<double>(f.transformations));
    o["original"] = qa::case_to_json(f.original);
    o["shrunk"] = qa::case_to_json(f.shrunk);
    jsonl << obs::json::Value(std::move(o)).dump() << "\n";
    gtest << "\n" << qa::case_to_gtest(f.shrunk);
  }
  std::fprintf(stderr, "pfair_fuzz: wrote %s and %s\n", jsonl_path.c_str(),
               gtest_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfair;

  engine::ExperimentHarness h("pfair_fuzz", argc, argv);

  qa::CampaignConfig config;
  config.cases = static_cast<std::uint64_t>(h.flag("cases", 1000));
  config.seed = h.seed(1);
  config.jobs = h.jobs();
  config.max_shrunk = static_cast<std::size_t>(h.flag("max-shrunk", 8));
  config.gen.max_processors = static_cast<int>(h.flag("max-procs", 4));
  config.gen.max_tasks = static_cast<std::size_t>(h.flag("max-tasks", 10));
  config.gen.shards = h.shards();

  const std::string profile = h.flag_string("profile", "all");
  if (profile != "all") {
    bool found = false;
    for (const qa::Profile p : qa::all_profiles()) {
      if (profile == qa::profile_name(p)) {
        config.gen.only_profile = p;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "pfair_fuzz: unknown --profile '%s'\n", profile.c_str());
      return 2;
    }
  }

  const bool inject = h.flag("inject-pd2-b-bit-flip", 0) != 0;
  set_pd2_b_bit_flip_for_test(inject);

  const auto start = std::chrono::steady_clock::now();
  const qa::CampaignResult result = qa::run_campaign(config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  set_pd2_b_bit_flip_for_test(false);

  std::printf("# pfair_fuzz: %llu cases, seed %llu%s\n",
              static_cast<unsigned long long>(result.cases),
              static_cast<unsigned long long>(config.seed),
              inject ? " [INJECTED PD2 b-bit flip]" : "");
  std::printf("# %-26s %10s %10s\n", "oracle", "applied", "violated");
  for (const qa::OracleStats& s : result.oracles) {
    std::printf("  %-26s %10llu %10llu\n", s.name.c_str(),
                static_cast<unsigned long long>(s.applied),
                static_cast<unsigned long long>(s.violated));
    h.add_row()
        .set("oracle", s.name)
        .set("applied", static_cast<long long>(s.applied))
        .set("violated", static_cast<long long>(s.violated));
  }

  if (!result.failures.empty()) {
    std::printf("# %zu failing case(s):\n", result.failures.size());
    for (const qa::CampaignFailure& f : result.failures) {
      std::printf(
          "  seed %llu case %llu [%s]: %s: %s\n"
          "    shrunk to %zu task(s), M=%d, horizon %lld (%d transformation(s))\n",
          static_cast<unsigned long long>(f.original.seed),
          static_cast<unsigned long long>(f.original.index),
          qa::profile_name(f.original.profile), f.verdict.oracle.c_str(),
          f.verdict.detail.c_str(), f.shrunk.tasks.size(), f.shrunk.processors,
          static_cast<long long>(f.shrunk.horizon), f.transformations);
      h.add_row()
          .set("case", static_cast<long long>(f.original.index))
          .set("oracle", f.verdict.oracle)
          .set("detail", f.verdict.detail)
          .set("shrunk_tasks", static_cast<long long>(f.shrunk.tasks.size()))
          .set("shrunk_horizon", static_cast<long long>(f.shrunk.horizon))
          .set("transformations", static_cast<long long>(f.transformations));
    }
    write_artifacts(h.flag_string("artifacts", "."), result);
  } else {
    std::printf("# all oracles passed\n");
  }

  std::fprintf(stderr, "# wall %.2fs (--jobs %d)\n", wall, config.jobs);
  return h.finish(result.failures.empty() ? 0 : 1);
}
