// obs::perf: flattening of BENCH reports / registry snapshots into
// metric maps, and the noise-aware regression verdicts behind the
// `pfair_perf diff` CI gate.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "obs/json.h"
#include "obs/perf_diff.h"

namespace pfair::obs::perf {
namespace {

json::Value parse_or_die(const std::string& text) {
  const std::optional<json::Value> v = json::parse(text);
  EXPECT_TRUE(v.has_value()) << text;
  return *v;
}

const char* kBench = R"({
  "bench": "compare_runtime",
  "params": {"processors": 16, "trials": 4},
  "rows": [
    {"load": 0.5,
     "pd2_preemptions": {"mean": 100.0, "ci99": 8.0, "min": 90.0, "max": 110.0},
     "pd2_fast_forwarded_slots": 5000,
     "pd2_sched_invocations": 1234}
  ]
})";

TEST(PerfDiff, FlattenBenchReportUsesDottedNamesAndCi99Noise) {
  const MetricMap m = flatten(parse_or_die(kBench));
  ASSERT_TRUE(m.count("params.processors"));
  EXPECT_DOUBLE_EQ(m.at("params.processors").value, 16.0);
  // RunningStats cell: mean is the value, ci99 is the noise half-width.
  ASSERT_TRUE(m.count("rows[0].pd2_preemptions"));
  EXPECT_DOUBLE_EQ(m.at("rows[0].pd2_preemptions").value, 100.0);
  EXPECT_DOUBLE_EQ(m.at("rows[0].pd2_preemptions").noise, 8.0);
  // Deterministic scalar: zero noise.
  ASSERT_TRUE(m.count("rows[0].pd2_fast_forwarded_slots"));
  EXPECT_DOUBLE_EQ(m.at("rows[0].pd2_fast_forwarded_slots").noise, 0.0);
}

TEST(PerfDiff, FlattenRegistrySnapshot) {
  const MetricMap m = flatten(parse_or_die(
      R"({"counters":{"sim.slots":2000},"gauges":{},)"
      R"("timers":{"kernel.phase_a":{"count":10,"avg_ns":120.5,"max_ns":900}}})"));
  ASSERT_TRUE(m.count("counters.sim.slots"));
  EXPECT_DOUBLE_EQ(m.at("counters.sim.slots").value, 2000.0);
  ASSERT_TRUE(m.count("timers.kernel.phase_a.avg_ns"));
  EXPECT_DOUBLE_EQ(m.at("timers.kernel.phase_a.avg_ns").value, 120.5);
}

TEST(PerfDiff, IdenticalDocumentsProduceZeroRegressions) {
  const MetricMap m = flatten(parse_or_die(kBench));
  const DiffReport r = diff(m, m);
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.improvements, 0u);
  EXPECT_EQ(r.changes, 0u);
  for (const DiffRow& row : r.rows) EXPECT_EQ(row.verdict, Verdict::kOk);
}

TEST(PerfDiff, TwentyPercentWorseDirectionChangeIsFlagged) {
  MetricMap base, cur;
  base["rows[0].pd2_preemptions"] = {100.0, 0.0};
  cur["rows[0].pd2_preemptions"] = {120.0, 0.0};
  const DiffReport r = diff(base, cur);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].verdict, Verdict::kRegressed);
  EXPECT_NEAR(r.rows[0].rel, 0.20, 1e-12);
  EXPECT_EQ(r.regressions, 1u);
}

TEST(PerfDiff, NoiseMasksChangesInsideTheErrorBars) {
  MetricMap base, cur;
  base["rows[0].pd2_preemptions"] = {100.0, 10.0};
  cur["rows[0].pd2_preemptions"] = {115.0, 10.0};  // |Δ|=15 < 10+10
  const DiffReport r = diff(base, cur);
  EXPECT_EQ(r.rows[0].verdict, Verdict::kOk);
  EXPECT_EQ(r.regressions, 0u);
}

TEST(PerfDiff, ThresholdGatesDeterministicScalars) {
  MetricMap base, cur;
  base["rows[0].pd2_preemptions"] = {100.0, 0.0};
  cur["rows[0].pd2_preemptions"] = {105.0, 0.0};  // 5% < default 10%
  EXPECT_EQ(diff(base, cur).regressions, 0u);
  DiffOptions tight;
  tight.threshold = 0.02;
  EXPECT_EQ(diff(base, cur, tight).regressions, 1u);
}

TEST(PerfDiff, DirectionHeuristics) {
  EXPECT_EQ(perf_direction("rows[0].pd2_preemptions"), 1);
  EXPECT_EQ(perf_direction("rows[0].pd2_switches"), 1);
  EXPECT_EQ(perf_direction("timers.kernel.phase_a.avg_ns"), 1);
  EXPECT_EQ(perf_direction("counters.sim.fast_forwarded_slots"), -1);
  EXPECT_EQ(perf_direction("rows[0].placed"), -1);
  // "invocations" must NOT match the "ns" duration token (token-based,
  // not substring-based): unknown direction, never a gate failure.
  EXPECT_EQ(perf_direction("rows[0].pd2_sched_invocations"), 0);
}

TEST(PerfDiff, BetterDirectionIncreaseIsAnImprovement) {
  MetricMap base, cur;
  base["counters.sim.fast_forwarded_slots"] = {1000.0, 0.0};
  cur["counters.sim.fast_forwarded_slots"] = {2000.0, 0.0};
  const DiffReport r = diff(base, cur);
  EXPECT_EQ(r.rows[0].verdict, Verdict::kImproved);
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.improvements, 1u);
}

TEST(PerfDiff, UnknownDirectionReportsChangedNotRegressed) {
  MetricMap base, cur;
  base["rows[0].pd2_sched_invocations"] = {1000.0, 0.0};
  cur["rows[0].pd2_sched_invocations"] = {2000.0, 0.0};
  const DiffReport r = diff(base, cur);
  EXPECT_EQ(r.rows[0].verdict, Verdict::kChanged);
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.changes, 1u);
}

TEST(PerfDiff, NewAndGoneMetricsNeverFailTheGate) {
  MetricMap base, cur;
  base["rows[0].old_col"] = {5.0, 0.0};
  cur["rows[0].new_col"] = {7.0, 0.0};
  const DiffReport r = diff(base, cur);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].verdict, Verdict::kNew);   // sorted: new_col first
  EXPECT_EQ(r.rows[1].verdict, Verdict::kGone);
  EXPECT_EQ(r.regressions, 0u);
}

TEST(PerfDiff, FormatDiffNamesRegressionsAndSummarises) {
  MetricMap base, cur;
  base["rows[0].pd2_preemptions"] = {100.0, 0.0};
  cur["rows[0].pd2_preemptions"] = {150.0, 0.0};
  const std::string out = format_diff(diff(base, cur));
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.find("pd2_preemptions"), std::string::npos);
  EXPECT_NE(out.find("1 metrics"), std::string::npos);
}

}  // namespace
}  // namespace pfair::obs::perf
