// Offline trace analyses behind the pfair_trace CLI: JSONL loading,
// per-kind totals, preemption attribution, migration matrices, the
// first-miss context window, and the Perfetto JSON schema check.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"
#include "obs/trace_analysis.h"

namespace pfair::obs {
namespace {

Event ev(EventKind k, Time t, TaskId task = kNoTask, ProcId proc = kNoProc,
         double value = 0.0) {
  return Event{k, t, task, proc, value};
}

TEST(ParseEventLine, RejectsMalformedInput) {
  EXPECT_FALSE(parse_event_line("").has_value());
  EXPECT_FALSE(parse_event_line("not json").has_value());
  EXPECT_FALSE(parse_event_line("{\"t\":1}").has_value());  // no kind
  EXPECT_FALSE(parse_event_line("{\"t\":1,\"kind\":\"no_such_kind\"}").has_value());
  EXPECT_FALSE(parse_event_line("{\"kind\":\"dispatch\"} trailing").has_value());
}

TEST(LoadJsonl, CountsMalformedLinesInsteadOfFailing) {
  std::istringstream is(
      "{\"t\":0,\"kind\":\"slot_begin\",\"value\":2}\n"
      "garbage\n"
      "\n"
      "{\"t\":1,\"kind\":\"dispatch\",\"task\":0,\"proc\":1}\n");
  const LoadResult r = load_jsonl(is);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.malformed_lines, 1u);  // blank lines are skipped, not malformed
  EXPECT_EQ(r.events[0].kind, EventKind::kSlotBegin);
  EXPECT_EQ(r.events[1].proc, 1u);
}

TEST(CountByKind, TotalsPerKind) {
  const std::vector<Event> events = {
      ev(EventKind::kDispatch, 0, 0, 0),
      ev(EventKind::kDispatch, 1, 0, 0),
      ev(EventKind::kDeadlineMiss, 2, 0),
  };
  const auto counts = count_by_kind(events);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kDispatch)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kDeadlineMiss)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(EventKind::kMigration)], 0u);
}

TEST(TopPreemptors, AttributesCausesAndSortsByThem) {
  // Task 1 preempts task 0 twice; task 2 preempts task 1 once; one
  // unattributable preemption (value -1) counts only the victim.
  const std::vector<Event> events = {
      ev(EventKind::kPreemption, 1, 0, 0, 1.0),
      ev(EventKind::kPreemption, 2, 0, 0, 1.0),
      ev(EventKind::kPreemption, 3, 1, 0, 2.0),
      ev(EventKind::kPreemption, 4, 2, 0, -1.0),
  };
  const auto stats = top_preemptors(events, 10);
  ASSERT_GE(stats.size(), 3u);
  EXPECT_EQ(stats[0].task, 1u);
  EXPECT_EQ(stats[0].caused, 2u);
  EXPECT_EQ(stats[0].victim, 1u);
  EXPECT_EQ(stats[1].task, 2u);
  EXPECT_EQ(stats[1].caused, 1u);
  // `top` truncates.
  EXPECT_EQ(top_preemptors(events, 1).size(), 1u);
}

TEST(MigrationMatrix, SquareMatrixFromToCounts) {
  const std::vector<Event> events = {
      ev(EventKind::kMigration, 1, 0, 1, 0.0),  // 0 -> 1
      ev(EventKind::kMigration, 2, 0, 0, 1.0),  // 1 -> 0
      ev(EventKind::kMigration, 3, 1, 2, 0.0),  // 0 -> 2
  };
  const auto m = migration_matrix(events);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[0][2], 1u);
  EXPECT_EQ(m[2][0], 0u);
  EXPECT_TRUE(migration_matrix({}).empty());
}

TEST(FirstMissContext, WindowsAroundTheEarliestMiss) {
  const std::vector<Event> events = {
      ev(EventKind::kDispatch, 0, 0, 0),
      ev(EventKind::kDispatch, 6, 0, 0),
      ev(EventKind::kDeadlineMiss, 10, 3),
      ev(EventKind::kDispatch, 12, 1, 0),
      ev(EventKind::kDeadlineMiss, 20, 4),  // later miss: not the anchor
      ev(EventKind::kDispatch, 30, 1, 0),
  };
  const auto ctx = first_miss_context(events, 3);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->miss.time, 10);
  EXPECT_EQ(ctx->miss.task, 3u);
  ASSERT_EQ(ctx->window.size(), 2u);  // t=10 and t=12; t=6 and t=20+ excluded
  EXPECT_EQ(ctx->window[0].time, 10);
  EXPECT_EQ(ctx->window[1].time, 12);
  EXPECT_FALSE(first_miss_context({ev(EventKind::kDispatch, 0, 0, 0)}, 3).has_value());
}

TEST(FirstMissContext, ComponentMissAnchorsToo) {
  const std::vector<Event> events = {ev(EventKind::kComponentMiss, 7, 2)};
  const auto ctx = first_miss_context(events, 1);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->miss.kind, EventKind::kComponentMiss);
}

TEST(Formatters, ProduceNonEmptyHumanOutput) {
  const std::vector<Event> events = {
      ev(EventKind::kDispatch, 0, 0, 0),
      ev(EventKind::kPreemption, 1, 0, 0, 1.0),
      ev(EventKind::kMigration, 2, 0, 1, 0.0),
      ev(EventKind::kDeadlineMiss, 3, 0),
  };
  EXPECT_NE(format_summary(events).find("dispatch"), std::string::npos);
  EXPECT_NE(format_preemptors(events, 5).find("T1"), std::string::npos);
  EXPECT_NE(format_migration_matrix(events).find("from"), std::string::npos);
  EXPECT_NE(format_first_miss(events, 3).find("first miss"), std::string::npos);
  EXPECT_NE(format_first_miss({}, 3).find("no deadline miss"), std::string::npos);
}

TEST(ValidatePerfettoJson, AcceptsMinimalValidTrace) {
  const std::string ok =
      R"({"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]})";
  EXPECT_TRUE(validate_perfetto_json(ok).empty()) << validate_perfetto_json(ok);
}

TEST(ValidatePerfettoJson, RejectsSchemaViolations) {
  EXPECT_FALSE(validate_perfetto_json("[]").empty());            // not an object
  EXPECT_FALSE(validate_perfetto_json("{}").empty());            // no traceEvents
  EXPECT_FALSE(validate_perfetto_json("{\"traceEvents\":1}").empty());
  EXPECT_FALSE(validate_perfetto_json(R"({"traceEvents":[1]})").empty());
  EXPECT_FALSE(  // missing ph
      validate_perfetto_json(R"({"traceEvents":[{"name":"a","ts":0,"pid":0}]})").empty());
  EXPECT_FALSE(  // non-numeric ts on a non-metadata event
      validate_perfetto_json(
          R"({"traceEvents":[{"name":"a","ph":"X","ts":"0","pid":0}]})")
          .empty());
  EXPECT_FALSE(validate_perfetto_json("not json at all").empty());
}

TEST(JsonReader, ParsesAndDumpsCanonically) {
  const std::optional<json::Value> v =
      json::parse(R"({"b":[1,2.5,true,null,"x\n"],"a":{"nested":-3e2}})");
  ASSERT_TRUE(v.has_value());
  // Canonical dump sorts keys; round-trip is a fixed point.
  const std::string d = v->dump();
  EXPECT_LT(d.find("\"a\""), d.find("\"b\""));
  const std::optional<json::Value> again = json::parse(d);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*v, *again);
  EXPECT_EQ(again->dump(), d);
  EXPECT_EQ(v->find("a")->number_or("nested", 0.0), -300.0);

  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("{} extra").has_value());
}

}  // namespace
}  // namespace pfair::obs
