// obs::MetricsRegistry + obs::prof: handle stability, snapshot shape,
// and the zero-cost-when-detached / accurate-when-attached contract of
// the scoped phase timers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof.h"
#include "obs/registry.h"

namespace pfair::obs {
namespace {

/// Test isolation: prof state and the global registry persist across
/// tests in one process, so every test starts from a clean slate.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::set_enabled(false);
    prof::set_span_recording(false);
    prof::reset();
    MetricsRegistry::global().reset_values();
  }
  void TearDown() override {
    prof::set_enabled(false);
    prof::set_span_recording(false);
    prof::reset();
    MetricsRegistry::global().reset_values();
  }
};

TEST_F(ProfTest, CounterAndGaugeRoundTrip) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge& g = reg.gauge("depth");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(ProfTest, HandlesStayValidAcrossResetAndLaterRegistrations) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  a.add(7);
  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);  // zeroed, not deallocated
  // Later registrations must not move existing nodes.
  for (int i = 0; i < 100; ++i) (void)reg.counter("other" + std::to_string(i));
  a.add(3);
  EXPECT_EQ(reg.counter("a").value(), 3u);
  EXPECT_EQ(&reg.counter("a"), &a);
}

TEST_F(ProfTest, SnapshotOmitsZerosAndIsCanonicalJson) {
  MetricsRegistry reg;
  reg.counter("hits").add(5);
  (void)reg.counter("silent");  // zero: must not appear
  reg.gauge("load").set(0.5);
  TimerStats ts;
  ts.count = 2;
  ts.total_ns = 300;
  ts.max_ns = 200;
  ts.hist = prof::sample_histogram();
  ts.hist.add(100.0);
  ts.hist.add(200.0);
  reg.record_timer("phase", ts);
  const json::Value snap = reg.snapshot();
  ASSERT_TRUE(snap.is_object());
  const json::Value* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("hits", -1), 5.0);
  EXPECT_EQ(counters->find("silent"), nullptr);
  const json::Value* timers = snap.find("timers");
  ASSERT_NE(timers, nullptr);
  const json::Value* phase = timers->find("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_DOUBLE_EQ(phase->number_or("count", -1), 2.0);
  EXPECT_DOUBLE_EQ(phase->number_or("avg_ns", -1), 150.0);
  EXPECT_GT(phase->number_or("p99_ns", -1), 0.0);
  // snapshot_json round-trips through the parser.
  const auto parsed = json::parse(reg.snapshot_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == snap);
}

TEST_F(ProfTest, DetachedScopesRecordNothing) {
  ASSERT_FALSE(prof::enabled());
  { const prof::ProfScope s(prof::Phase::kKernelPhaseA, 0, 1); }
  { const prof::ProfScope s(prof::Phase::kAdmit); }
  for (const prof::PhaseTotals& t : prof::collect_totals()) {
    EXPECT_EQ(t.count, 0u);
    EXPECT_EQ(t.total_ns, 0u);
  }
  EXPECT_TRUE(prof::collect_spans().empty());
}

TEST_F(ProfTest, AttachedScopesAggregateIntoPhaseTotals) {
  prof::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    const prof::ProfScope s(prof::Phase::kKernelMerge, -1, i);
  }
  const std::vector<prof::PhaseTotals> totals = prof::collect_totals();
  const auto& merge = totals[static_cast<std::size_t>(prof::Phase::kKernelMerge)];
  EXPECT_EQ(merge.count, 3u);
  EXPECT_GE(merge.total_ns, merge.max_ns);
  EXPECT_EQ(merge.hist.total(), 3u);
  // Other phases untouched.
  EXPECT_EQ(totals[static_cast<std::size_t>(prof::Phase::kAdmit)].count, 0u);
}

TEST_F(ProfTest, SnapshotIntoPublishesTimersUnderPhaseNames) {
  prof::set_enabled(true);
  { const prof::ProfScope s(prof::Phase::kKernelPhaseA, 2, 10); }
  { const prof::ProfScope s(prof::Phase::kRelease, -1, 10); }
  prof::snapshot_into(MetricsRegistry::global());
  const json::Value snap = MetricsRegistry::global().snapshot();
  const json::Value* timers = snap.find("timers");
  ASSERT_NE(timers, nullptr);
  EXPECT_NE(timers->find("kernel.phase_a"), nullptr);
  EXPECT_NE(timers->find("sim.release"), nullptr);
  EXPECT_EQ(timers->find("kernel.merge"), nullptr);  // zero samples: skipped
}

TEST_F(ProfTest, SpansRecordShardSlotAndSortDeterministically) {
  prof::set_enabled(true);
  prof::set_span_recording(true);
  { const prof::ProfScope s(prof::Phase::kKernelPhaseA, 1, 5); }
  { const prof::ProfScope s(prof::Phase::kKernelPhaseA, 0, 5); }
  { const prof::ProfScope s(prof::Phase::kKernelMerge, -1, 4); }
  const std::vector<prof::Span> spans = prof::collect_spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].slot, 4);  // sorted by slot first
  EXPECT_EQ(spans[1].slot, 5);
  EXPECT_EQ(spans[1].shard, 0);  // then shard
  EXPECT_EQ(spans[2].shard, 1);
}

TEST_F(ProfTest, SpansOffByDefaultEvenWhenEnabled) {
  prof::set_enabled(true);
  { const prof::ProfScope s(prof::Phase::kAssign, -1, 0); }
  EXPECT_EQ(prof::collect_totals()[static_cast<std::size_t>(prof::Phase::kAssign)].count,
            1u);
  EXPECT_TRUE(prof::collect_spans().empty());
}

TEST_F(ProfTest, CollectionMergesAcrossThreads) {
  prof::set_enabled(true);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([w] {
      prof::set_worker_index(w);
      for (int i = 0; i < 10; ++i) {
        const prof::ProfScope s(prof::Phase::kPoolJob, -1, i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto& pool = prof::collect_totals()[static_cast<std::size_t>(prof::Phase::kPoolJob)];
  EXPECT_EQ(pool.count, 40u);
  EXPECT_EQ(pool.hist.total(), 40u);
}

TEST_F(ProfTest, ResetZeroesInPlace) {
  prof::set_enabled(true);
  prof::set_span_recording(true);
  { const prof::ProfScope s(prof::Phase::kAdmit); }
  prof::reset();
  for (const prof::PhaseTotals& t : prof::collect_totals()) EXPECT_EQ(t.count, 0u);
  EXPECT_TRUE(prof::collect_spans().empty());
  EXPECT_TRUE(prof::enabled());  // reset() does not touch the switches
}

}  // namespace
}  // namespace pfair::obs
