// CounterSink must reproduce every simulator's native engine::Metrics
// *bit-identically* from the event stream alone — doubles included.
// This is the contract that makes the instrumentation trustworthy: a
// mismatch here means an emission point is missing, duplicated, or in
// the wrong order relative to the native accumulation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/compare.h"
#include "engine/metrics.h"
#include "engine/simulator.h"
#include "obs/bus.h"
#include "obs/counter_sink.h"
#include "sim/pfair_sim.h"
#include "uniproc/cbs_sim.h"
#include "uniproc/uni_task.h"

namespace pfair {
namespace {

void expect_identical(const engine::Metrics& got, const engine::Metrics& want,
                      const std::string& label) {
  EXPECT_EQ(got.slots, want.slots) << label;
  EXPECT_EQ(got.busy_quanta, want.busy_quanta) << label;
  EXPECT_EQ(got.idle_quanta, want.idle_quanta) << label;
  EXPECT_EQ(got.jobs_released, want.jobs_released) << label;
  EXPECT_EQ(got.jobs_completed, want.jobs_completed) << label;
  EXPECT_EQ(got.deadline_misses, want.deadline_misses) << label;
  EXPECT_EQ(got.component_misses, want.component_misses) << label;
  EXPECT_EQ(got.preemptions, want.preemptions) << label;
  EXPECT_EQ(got.migrations, want.migrations) << label;
  EXPECT_EQ(got.context_switches, want.context_switches) << label;
  EXPECT_EQ(got.component_switches, want.component_switches) << label;
  EXPECT_EQ(got.scheduler_invocations, want.scheduler_invocations) << label;
  EXPECT_EQ(got.lag_violations, want.lag_violations) << label;
  EXPECT_EQ(got.served_jobs_completed, want.served_jobs_completed) << label;
  EXPECT_EQ(got.served_work, want.served_work) << label;
  EXPECT_EQ(got.deadline_postponements, want.deadline_postponements) << label;
  EXPECT_EQ(got.first_miss_time, want.first_miss_time) << label;
  // EXPECT_EQ on doubles is exact comparison — bit-identity, not
  // tolerance.  The sink adds in emission order, which each simulator
  // guarantees matches its own accumulation order.
  EXPECT_EQ(got.sched_ns_total, want.sched_ns_total) << label;
  EXPECT_EQ(got.response_time.count(), want.response_time.count()) << label;
  EXPECT_EQ(got.response_time.mean(), want.response_time.mean()) << label;
  EXPECT_EQ(got.response_time.variance(), want.response_time.variance()) << label;
  EXPECT_EQ(got.response_time.min(), want.response_time.min()) << label;
  EXPECT_EQ(got.response_time.max(), want.response_time.max()) << label;
}

// Σ weight ≈ 1.82 on 2 processors; infeasible for global EDF at some
// points is fine — misses are part of what must be reproduced.
std::vector<UniTask> mp_workload() {
  return {{2, 4}, {2, 4}, {1, 3}, {1, 5}, {2, 7}};
}

std::vector<UniTask> up_workload() { return {{1, 4}, {1, 3}, {2, 5}}; }

void run_spec_and_compare(const engine::SchedulerSpec& spec,
                          const std::vector<UniTask>& workload, Time horizon) {
  auto sim = spec.make(workload);
  ASSERT_NE(sim, nullptr) << spec.name;
  obs::EventBus bus;
  obs::CounterSink counters;
  bus.add_sink(&counters);
  sim->attach_observer(&bus);
  sim->run_until(horizon);
  bus.flush();
  expect_identical(counters.metrics(), sim->metrics(), spec.name);
}

TEST(CounterSink, Pd2BitIdentical) {
  run_spec_and_compare(engine::pd2_spec(2), mp_workload(), 420);
}

TEST(CounterSink, WrrBitIdentical) {
  WrrConfig wc;
  wc.processors = 2;
  wc.frame = 16;
  run_spec_and_compare(engine::wrr_spec(wc), mp_workload(), 420);
}

TEST(CounterSink, UniprocEdfBitIdentical) {
  UniSimConfig uc;
  run_spec_and_compare(engine::uniproc_spec("EDF", uc), up_workload(), 600);
}

TEST(CounterSink, UniprocRmBitIdentical) {
  UniSimConfig uc;
  uc.algorithm = UniAlgorithm::kRM;
  run_spec_and_compare(engine::uniproc_spec("RM", uc), up_workload(), 600);
}

TEST(CounterSink, PartitionedBitIdentical) {
  PartitionConfig pc;
  pc.max_processors = 2;
  run_spec_and_compare(engine::partitioned_spec("EDF-FF", pc), mp_workload(), 420);
}

TEST(CounterSink, GlobalJobEdfBitIdentical) {
  // Dhall-style set: global EDF misses here, so the miss/first-miss
  // reconstruction is exercised too.
  std::vector<UniTask> dhall = {{1, 10}, {1, 10}, {10, 11}};
  run_spec_and_compare(engine::global_job_spec(2, UniAlgorithm::kEDF), dhall, 660);
  run_spec_and_compare(engine::global_job_spec(2, UniAlgorithm::kEDF), mp_workload(), 420);
}

TEST(CounterSink, GlobalJobRmBitIdentical) {
  run_spec_and_compare(engine::global_job_spec(2, UniAlgorithm::kRM), mp_workload(), 420);
}

TEST(CounterSink, CbsBitIdentical) {
  std::vector<AperiodicJob> jobs;
  for (Time t = 0; t < 400; t += 7) jobs.push_back({t, 2});
  CbsSimulator sim({{3, 10}, {1, 4}}, CbsConfig{{CbsServerSpec{1, 4, jobs}}});
  obs::EventBus bus;
  obs::CounterSink counters;
  bus.add_sink(&counters);
  sim.attach_observer(&bus);
  sim.run_until(800);
  bus.flush();
  expect_identical(counters.metrics(), sim.metrics(), "CBS");
  // The workload must actually exercise the CBS-specific counters.
  EXPECT_GT(sim.metrics().served_jobs_completed, 0u);
  EXPECT_GT(sim.metrics().deadline_postponements, 0u);
}

TEST(CounterSink, Pd2WithOverheadTimingAndLagChecksBitIdentical) {
  // measure_overhead makes sched_ns_total a nontrivial sum of
  // steady_clock samples: the strongest order-sensitivity test.
  PfairConfig cfg;
  cfg.processors = 2;
  cfg.measure_overhead = true;
  cfg.check_lags = true;
  PfairSimulator sim(cfg);
  for (const UniTask& t : mp_workload())
    ASSERT_TRUE(sim.admit(engine::task_spec(t.execution, t.period)));
  obs::EventBus bus;
  obs::CounterSink counters;
  bus.add_sink(&counters);
  sim.attach_observer(&bus);
  sim.run_until(420);
  bus.flush();
  expect_identical(counters.metrics(), sim.metrics(), "PD2+overhead");
  EXPECT_GT(sim.metrics().sched_ns_total, 0.0);
}

TEST(CounterSink, SupertaskComponentMissesBitIdentical) {
  // Fig. 5 system: V = 1/2, W = X = 1/3, Y = 2/9, S = {T: 1/5, U: 1/45}
  // competing at 2/9 — the canonical component-miss scenario.
  PfairConfig cfg;
  cfg.processors = 2;
  PfairSimulator sim(cfg);
  sim.add_task({1, 2, 0, TaskKind::kPeriodic, "V"});
  sim.add_task({1, 3, 0, TaskKind::kPeriodic, "W"});
  sim.add_task({1, 3, 0, TaskKind::kPeriodic, "X"});
  SupertaskSpec st;
  st.components = {{1, 5, 0, TaskKind::kPeriodic, "T"}, {1, 45, 0, TaskKind::kPeriodic, "U"}};
  st.execution = 2;
  st.period = 9;
  st.name = "S";
  sim.add_supertask(st);
  sim.add_task({2, 9, 0, TaskKind::kPeriodic, "Y"});
  obs::EventBus bus;
  obs::CounterSink counters;
  bus.add_sink(&counters);
  sim.attach_observer(&bus);
  sim.run_until(90);
  bus.flush();
  expect_identical(counters.metrics(), sim.metrics(), "PD2+supertask");
  EXPECT_GT(sim.metrics().component_misses, 0u);
  EXPECT_EQ(sim.metrics().first_miss_time, 10);
}

TEST(CounterSink, ResetClearsEverything) {
  obs::CounterSink counters;
  counters.on_event({obs::EventKind::kDeadlineMiss, 5, 0, 0, 0.0});
  ASSERT_EQ(counters.metrics().deadline_misses, 1u);
  counters.reset();
  EXPECT_EQ(counters.metrics().deadline_misses, 0u);
  EXPECT_EQ(counters.metrics().first_miss_time, -1);
}

}  // namespace
}  // namespace pfair
