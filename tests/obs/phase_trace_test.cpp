// Profiling determinism + Perfetto phase tracks (ISSUE 7 acceptance):
//   * the JSONL event stream of a seeded run is byte-identical with
//     profiling attached vs detached, and sharded vs unsharded;
//   * PerfettoSink output with profiling + span recording on passes
//     validate_perfetto_json and actually contains the phase tracks.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bus.h"
#include "obs/jsonl_sink.h"
#include "obs/perfetto_sink.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/trace_analysis.h"
#include "sim/pfair_sim.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace pfair {
namespace {

struct ProfRun {
  std::string jsonl;     ///< JSONL event stream
  std::string perfetto;  ///< Perfetto/Chrome JSON (empty unless requested)
};

/// One seeded run: same workload every call, so any byte difference in
/// the captured streams is caused by the configuration under test.
ProfRun run_seeded(int shards, bool prof, bool spans, bool perfetto_out) {
  obs::prof::set_enabled(prof);
  obs::prof::set_span_recording(spans);
  obs::prof::reset();

  PfairConfig cfg;
  cfg.processors = 4;
  cfg.algorithm = Algorithm::kPD2;
  cfg.soa_kernel = true;
  cfg.shards = shards;
  PfairSimulator sim(cfg);

  ProfRun out;
  std::ostringstream jsonl_os;
  std::ostringstream perfetto_os;
  obs::JsonlSink jsonl(jsonl_os);
  obs::EventBus bus;
  bus.add_sink(&jsonl);
  std::optional<obs::PerfettoSink> perfetto;
  if (perfetto_out) {
    perfetto.emplace(perfetto_os);
    bus.add_sink(&*perfetto);
  }
  sim.attach_observer(&bus);

  Rng rng(42);
  const std::vector<UniTask> tasks = generate_uni_tasks(rng, 12, 0.7 * 4.0, 64);
  for (const UniTask& t : tasks) (void)sim.admit(engine::task_spec(t.execution, t.period));
  sim.run_until(300);
  bus.flush();

  out.jsonl = jsonl_os.str();
  out.perfetto = perfetto_os.str();
  obs::prof::set_enabled(false);
  obs::prof::set_span_recording(false);
  obs::prof::reset();
  return out;
}

TEST(PhaseTrace, JsonlStreamByteIdenticalProfOnVsOff) {
  const ProfRun off = run_seeded(1, /*prof=*/false, false, false);
  const ProfRun on = run_seeded(1, /*prof=*/true, /*spans=*/true, false);
  ASSERT_FALSE(off.jsonl.empty());
  EXPECT_EQ(off.jsonl, on.jsonl);
}

TEST(PhaseTrace, JsonlStreamByteIdenticalShardedVsUnsharded) {
  const ProfRun one = run_seeded(1, /*prof=*/true, /*spans=*/true, false);
  const ProfRun eight = run_seeded(8, /*prof=*/true, /*spans=*/true, false);
  ASSERT_FALSE(one.jsonl.empty());
  EXPECT_EQ(one.jsonl, eight.jsonl);
}

TEST(PhaseTrace, PerfettoWithPhaseTracksValidatesAcrossShardCounts) {
  for (const int shards : {1, 8}) {
    const ProfRun r = run_seeded(shards, /*prof=*/true, /*spans=*/true,
                                 /*perfetto_out=*/true);
    ASSERT_FALSE(r.perfetto.empty()) << "shards=" << shards;
    EXPECT_EQ(obs::validate_perfetto_json(r.perfetto), "") << "shards=" << shards;
    // The prof process and at least the sequential merge phase must be
    // present; per-shard Phase A tracks appear for the sharded run.
    EXPECT_NE(r.perfetto.find("\"prof\""), std::string::npos) << "shards=" << shards;
    EXPECT_NE(r.perfetto.find("kernel.merge"), std::string::npos) << "shards=" << shards;
    EXPECT_NE(r.perfetto.find("kernel.phase_a"), std::string::npos)
        << "shards=" << shards;
    if (shards == 8) {
      EXPECT_NE(r.perfetto.find("shard 1"), std::string::npos);
    }
  }
}

TEST(PhaseTrace, PerfettoOmitsProfTracksWhenDetached) {
  const ProfRun r = run_seeded(1, /*prof=*/false, false, /*perfetto_out=*/true);
  ASSERT_FALSE(r.perfetto.empty());
  EXPECT_EQ(obs::validate_perfetto_json(r.perfetto), "");
  EXPECT_EQ(r.perfetto.find("kernel.phase_a"), std::string::npos);
}

}  // namespace
}  // namespace pfair
