// Event bus fan-out and the individual sinks: JSONL round-trips,
// lag-timeline collection, histogram routing, and Perfetto JSON
// structure (parsed back with the obs JSON reader).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/bus.h"
#include "obs/histogram_sink.h"
#include "obs/json.h"
#include "obs/jsonl_sink.h"
#include "obs/lag_sampler.h"
#include "obs/perfetto_sink.h"
#include "obs/trace_analysis.h"

namespace pfair::obs {
namespace {

struct RecordingSink : Sink {
  std::vector<Event> seen;
  int flushes = 0;
  void on_event(const Event& e) override { seen.push_back(e); }
  void flush() override { ++flushes; }
};

TEST(EventBus, FansOutToEverySinkInRegistrationOrder) {
  EventBus bus;
  RecordingSink a;
  RecordingSink b;
  bus.add_sink(&a);
  bus.add_sink(&b);
  bus.emit(EventKind::kDispatch, 3, 1, 0, 2.0);
  bus.flush();
  ASSERT_EQ(a.seen.size(), 1u);
  ASSERT_EQ(b.seen.size(), 1u);
  EXPECT_EQ(a.seen[0].kind, EventKind::kDispatch);
  EXPECT_EQ(a.seen[0].time, 3);
  EXPECT_EQ(a.seen[0].task, 1u);
  EXPECT_EQ(a.seen[0].proc, 0u);
  EXPECT_EQ(a.seen[0].value, 2.0);
  EXPECT_EQ(a.flushes, 1);
  EXPECT_EQ(b.flushes, 1);
}

TEST(EventBus, FreeEmitHelperIsNullSafe) {
  emit(nullptr, EventKind::kSlotBegin, 0);  // must not crash
  EventBus bus;
  RecordingSink s;
  bus.add_sink(&s);
  emit(&bus, EventKind::kSlotBegin, 7);
  ASSERT_EQ(s.seen.size(), 1u);
  EXPECT_EQ(s.seen[0].time, 7);
  EXPECT_FALSE(EventBus().active());
  EXPECT_TRUE(bus.active());
}

TEST(EventKindNames, AreStableAndDistinct) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const char* name = to_string(static_cast<EventKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    for (std::size_t j = 0; j < k; ++j)
      EXPECT_NE(std::string(name), to_string(static_cast<EventKind>(j)));
  }
}

TEST(JsonlSink, EveryKindRoundTripsThroughParseEventLine) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    Event e;
    e.kind = static_cast<EventKind>(k);
    e.time = 42;
    e.task = 3;
    e.proc = 1;
    e.value = -1.5;
    std::ostringstream os;
    JsonlSink sink(os);
    sink.on_event(e);
    sink.flush();
    std::string line = os.str();
    ASSERT_FALSE(line.empty());
    if (line.back() == '\n') line.pop_back();
    const std::optional<Event> back = parse_event_line(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(back->kind, e.kind) << line;
    EXPECT_EQ(back->time, e.time);
    EXPECT_EQ(back->task, e.task);
    EXPECT_EQ(back->proc, e.proc);
    EXPECT_EQ(back->value, e.value);
  }
}

TEST(JsonlSink, OmitsAbsentFieldsAndReadersRestoreSentinels) {
  std::ostringstream os;
  JsonlSink sink(os);
  Event e;
  e.kind = EventKind::kSlotBegin;
  e.time = 5;  // no task, no proc, zero value
  sink.on_event(e);
  std::string line = os.str();
  EXPECT_EQ(line.find("\"task\""), std::string::npos);
  EXPECT_EQ(line.find("\"proc\""), std::string::npos);
  EXPECT_EQ(line.find("\"value\""), std::string::npos);
  if (line.back() == '\n') line.pop_back();
  const std::optional<Event> back = parse_event_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->task, kNoTask);
  EXPECT_EQ(back->proc, kNoProc);
  EXPECT_EQ(back->value, 0.0);
}

TEST(LagSampler, CollectsPerTaskTimelinesInOrder) {
  LagSampler lags;
  lags.on_event({EventKind::kLagSample, 1, 0, kNoProc, 0.25});
  lags.on_event({EventKind::kLagSample, 2, 0, kNoProc, -0.5});
  lags.on_event({EventKind::kLagSample, 1, 2, kNoProc, 0.75});
  lags.on_event({EventKind::kDispatch, 1, 0, 0, 1.0});  // ignored
  ASSERT_EQ(lags.task_count(), 3u);
  ASSERT_EQ(lags.timeline(0).size(), 2u);
  EXPECT_EQ(lags.timeline(0)[0], (std::pair<Time, double>{1, 0.25}));
  EXPECT_EQ(lags.timeline(0)[1], (std::pair<Time, double>{2, -0.5}));
  EXPECT_TRUE(lags.timeline(1).empty());
  EXPECT_EQ(lags.max_abs_lag(0), 0.5);
  EXPECT_EQ(lags.max_abs_lag(99), 0.0);

  std::ostringstream csv;
  lags.write_csv(csv);
  EXPECT_EQ(csv.str(), "task,t,lag\n0,1,0.25\n0,2,-0.5\n2,1,0.75\n");
}

TEST(HistogramSink, RoutesEventsToTheRightDistribution) {
  HistogramSink h;
  h.on_event({EventKind::kJobComplete, 1, 0, 0, 4.0});
  h.on_event({EventKind::kJobComplete, 2, 0, 0, -1.0});  // untracked: skipped
  h.on_event({EventKind::kSchedInvoke, 1, kNoTask, kNoProc, 100.0});
  h.on_event({EventKind::kOverheadNs, 1, kNoTask, kNoProc, 50.0});
  h.on_event({EventKind::kSchedInvoke, 2, kNoTask, kNoProc, 0.0});  // timing off
  h.on_event({EventKind::kDispatch, 1, 0, 0, 2.0});
  h.on_event({EventKind::kDispatch, 2, 0, 0, -1.0});  // unknown latency
  EXPECT_EQ(h.response_time().total(), 1u);
  EXPECT_EQ(h.sched_ns().total(), 2u);
  EXPECT_EQ(h.dispatch_latency().total(), 1u);
}

TEST(PerfettoSink, EmitsValidJsonThatRoundTrips) {
  std::ostringstream os;
  PerfettoSink sink(os);
  sink.on_event({EventKind::kDispatch, 0, 0, 0, 0.0});
  sink.on_event({EventKind::kDispatch, 1, 0, 0, 0.0});  // coalesces with slot 0
  sink.on_event({EventKind::kDispatch, 2, 1, 0, 0.0});  // closes task 0's slice
  sink.on_event({EventKind::kMigration, 3, 1, 1, 0.0});
  sink.on_event({EventKind::kDeadlineMiss, 4, 1, kNoProc, 0.0});
  sink.on_event({EventKind::kLagSample, 4, 1, kNoProc, 0.5});
  sink.flush();
  const std::string text = os.str();

  EXPECT_TRUE(validate_perfetto_json(text).empty()) << validate_perfetto_json(text);

  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const std::optional<json::Value> again = json::parse(doc->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*doc, *again);

  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_slice = false;
  bool saw_flow_start = false;
  bool saw_flow_end = false;
  bool saw_miss = false;
  for (const json::Value& e : events->as_array()) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "X") saw_slice = true;
    if (ph == "s") saw_flow_start = true;
    if (ph == "f") saw_flow_end = true;
    if (ph == "i" && e.string_or("name", "").find("deadline miss") == 0) saw_miss = true;
  }
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_end);
  EXPECT_TRUE(saw_miss);
}

TEST(PerfettoSink, CoalescesContiguousQuantaIntoOneSlice) {
  std::ostringstream os;
  PerfettoSink sink(os);
  for (Time t = 0; t < 5; ++t) sink.on_event({EventKind::kDispatch, t, 0, 0, 0.0});
  sink.flush();
  const std::optional<json::Value> doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  int slices = 0;
  double dur = 0.0;
  for (const json::Value& e : doc->find("traceEvents")->as_array()) {
    if (e.string_or("ph", "") == "X") {
      ++slices;
      dur = e.number_or("dur", 0.0);
    }
  }
  EXPECT_EQ(slices, 1);
  EXPECT_EQ(dur, 5000.0);  // 5 slots at the default 1000 us per slot
}

TEST(PerfettoSink, FlushIsIdempotent) {
  std::ostringstream os;
  PerfettoSink sink(os);
  sink.on_event({EventKind::kDispatch, 0, 0, 0, 0.0});
  sink.flush();
  const std::string once = os.str();
  sink.flush();
  sink.on_event({EventKind::kDispatch, 1, 0, 0, 0.0});  // after close: dropped
  EXPECT_EQ(os.str(), once);
  EXPECT_TRUE(validate_perfetto_json(once).empty());
}

}  // namespace
}  // namespace pfair::obs
