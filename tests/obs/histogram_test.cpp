// obs::Histogram: bucket construction, boundary placement, merge, and
// quantile estimation.
#include <gtest/gtest.h>

#include "obs/histogram.h"

namespace pfair::obs {
namespace {

TEST(Histogram, LinearEdgesAreEvenAndExact) {
  const Histogram h = Histogram::linear(0.0, 10.0, 5);
  ASSERT_EQ(h.bucket_count(), 5u);
  const std::vector<double> want = {0.0, 2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_EQ(h.edges(), want);
}

TEST(Histogram, ExponentialEdgesDouble) {
  const Histogram h = Histogram::exponential(1.0, 2.0, 4);
  const std::vector<double> want = {1.0, 2.0, 4.0, 8.0, 16.0};
  EXPECT_EQ(h.edges(), want);
}

TEST(Histogram, ValuesLandInHalfOpenBuckets) {
  Histogram h = Histogram::linear(0.0, 4.0, 4);  // [0,1) [1,2) [2,3) [3,4)
  h.add(0.0);
  h.add(0.999);
  h.add(1.0);  // exactly on an edge: belongs to the bucket it opens
  h.add(3.999);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowAreCountedNotDropped) {
  Histogram h = Histogram::linear(10.0, 20.0, 2);
  h.add(9.999);
  h.add(20.0);  // upper edge is exclusive
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0) + h.count(1), 0u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h = Histogram::linear(0.0, 2.0, 2);
  h.add(0.5, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, MergeIsElementWise) {
  Histogram a = Histogram::linear(0.0, 4.0, 4);
  Histogram b = Histogram::linear(0.0, 4.0, 4);
  a.add(0.5);
  a.add(-1.0);
  b.add(0.5);
  b.add(3.5);
  b.add(99.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(3), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  // Uniform over [0, 10): the median estimate must sit near 5.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  const Histogram h = Histogram::linear(0.0, 1.0, 1);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileWithAllMassInOverflowReturnsUpperEdge) {
  Histogram h = Histogram::linear(0.0, 1.0, 1);
  h.add(5.0);
  EXPECT_EQ(h.quantile(0.99), 1.0);
}

}  // namespace
}  // namespace pfair::obs
