// obs::Histogram: bucket construction, boundary placement, merge, and
// quantile estimation.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/histogram.h"

namespace pfair::obs {
namespace {

TEST(Histogram, LinearEdgesAreEvenAndExact) {
  const Histogram h = Histogram::linear(0.0, 10.0, 5);
  ASSERT_EQ(h.bucket_count(), 5u);
  const std::vector<double> want = {0.0, 2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_EQ(h.edges(), want);
}

TEST(Histogram, ExponentialEdgesDouble) {
  const Histogram h = Histogram::exponential(1.0, 2.0, 4);
  const std::vector<double> want = {1.0, 2.0, 4.0, 8.0, 16.0};
  EXPECT_EQ(h.edges(), want);
}

TEST(Histogram, ValuesLandInHalfOpenBuckets) {
  Histogram h = Histogram::linear(0.0, 4.0, 4);  // [0,1) [1,2) [2,3) [3,4)
  h.add(0.0);
  h.add(0.999);
  h.add(1.0);  // exactly on an edge: belongs to the bucket it opens
  h.add(3.999);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowAreCountedNotDropped) {
  Histogram h = Histogram::linear(10.0, 20.0, 2);
  h.add(9.999);
  h.add(20.0);  // upper edge is exclusive
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0) + h.count(1), 0u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h = Histogram::linear(0.0, 2.0, 2);
  h.add(0.5, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, MergeIsElementWise) {
  Histogram a = Histogram::linear(0.0, 4.0, 4);
  Histogram b = Histogram::linear(0.0, 4.0, 4);
  a.add(0.5);
  a.add(-1.0);
  b.add(0.5);
  b.add(3.5);
  b.add(99.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(3), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  // Uniform over [0, 10): the median estimate must sit near 5.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  const Histogram h = Histogram::linear(0.0, 1.0, 1);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileWithAllMassInOverflowReturnsUpperEdge) {
  Histogram h = Histogram::linear(0.0, 1.0, 1);
  h.add(5.0);
  EXPECT_EQ(h.quantile(0.99), 1.0);
}

TEST(Histogram, QuantileIsExactRankInSingleBucket) {
  // All mass in one bucket: the q-quantile interpolates linearly through
  // that bucket, and q clamps outside [0, 1].
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  h.add(4.5, 100);  // bucket [4, 5)
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, MergeThenQuantileEqualsCombinedPopulation) {
  // Quantiles of a merged histogram must equal quantiles of one
  // histogram fed both populations — the per-thread-merge contract the
  // profiling layer relies on.
  Histogram a = Histogram::exponential(1.0, 2.0, 10);
  Histogram b = Histogram::exponential(1.0, 2.0, 10);
  Histogram both = Histogram::exponential(1.0, 2.0, 10);
  for (int i = 1; i <= 100; ++i) {
    const double v = static_cast<double>(i);
    (i % 2 == 0 ? a : b).add(v);
    both.add(v);
  }
  a.merge(b);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, QuantileSurvivesSaturatingCounts) {
  // Counts near 2^63 per bucket: the long-double rank arithmetic must
  // still land the median on the bucket boundary between the two
  // populations instead of rounding into a neighbour.
  Histogram h = Histogram::linear(0.0, 2.0, 2);
  const std::uint64_t half = std::uint64_t{1} << 62;
  h.add(0.5, half);
  h.add(1.5, half);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_GT(h.quantile(0.75), 1.0);
  EXPECT_LT(h.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, ConvenienceQuantilesMatchExplicitCalls) {
  Histogram h = Histogram::linear(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.p50(), h.quantile(0.50));
  EXPECT_DOUBLE_EQ(h.p95(), h.quantile(0.95));
  EXPECT_DOUBLE_EQ(h.p99(), h.quantile(0.99));
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
}

}  // namespace
}  // namespace pfair::obs
