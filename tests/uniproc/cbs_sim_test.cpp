#include "uniproc/cbs_sim.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pfair {
namespace {

std::vector<AperiodicJob> flood(Time until, std::int64_t exec, Time gap) {
  std::vector<AperiodicJob> jobs;
  for (Time t = 0; t < until; t += gap) jobs.push_back({t, exec});
  return jobs;
}

TEST(Cbs, WellBehavedServerServesEverything) {
  // Demand 1 unit every 10 (= 0.1) into a server of bandwidth 0.2.
  CbsServerSpec server{2, 10, flood(1000, 1, 10)};
  CbsSimulator sim({{3, 10}}, CbsConfig{{server}});
  sim.run_until(2000);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().served_jobs_completed, 100u);
  EXPECT_EQ(sim.server_work(0), 100);
}

TEST(Cbs, OverrunningServerIsThrottledToItsBandwidth) {
  // Demand 1.0 (continuous) into a bandwidth-0.25 server.  CBS is work
  // conserving, so the server may soak *idle* capacity — under a 0.75
  // hard load there is none spare beyond its reservation, and long-run
  // service pins to exactly its 25% bandwidth.
  CbsServerSpec server{1, 4, flood(4000, 4, 4)};  // 4 units every 4 slots
  CbsSimulator sim({{3, 4}}, CbsConfig{{server}});  // hard load 0.75
  sim.run_until(4000);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_NEAR(static_cast<double>(sim.server_work(0)) / 4000.0, 0.25, 0.01);
  EXPECT_GT(sim.metrics().deadline_postponements, 0u);
}

TEST(Cbs, WorkConservingServerSoaksIdleCapacityOnly) {
  // Same flood, hard load only 0.5: the server receives its 0.25
  // reservation plus the 0.25 that would otherwise idle — but the hard
  // task stays untouched (the CBS guarantee is about interference, not
  // a hard throughput cap).
  CbsServerSpec server{1, 4, flood(4000, 4, 4)};
  CbsSimulator sim({{1, 2}}, CbsConfig{{server}});
  sim.run_until(4000);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_NEAR(static_cast<double>(sim.server_work(0)) / 4000.0, 0.5, 0.01);
}

TEST(Cbs, HardTasksIsolatedFromServerOverrunRandomised) {
  // The isolation theorem: U_hard + sum Q/T <= 1 implies zero hard
  // misses no matter how much the aperiodic streams demand.
  Rng rng(0xcb5);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    std::vector<UniTask> hard;
    double u_hard = 0.0;
    for (int k = 0; k < 3; ++k) {
      const std::int64_t p = trial_rng.uniform_int(10, 40);
      const std::int64_t e = trial_rng.uniform_int(1, p / 5);
      hard.push_back({e, p});
      u_hard += hard.back().utilization();
    }
    // Two servers with combined bandwidth <= 1 - u_hard.
    const double spare = 1.0 - u_hard;
    const std::int64_t t1 = 20;
    const std::int64_t q1 = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(spare * 0.4 * static_cast<double>(t1)));
    const std::int64_t t2 = 32;
    const std::int64_t q2 = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(spare * 0.4 * static_cast<double>(t2)));
    if (u_hard + static_cast<double>(q1) / t1 + static_cast<double>(q2) / t2 > 1.0)
      continue;
    // Both servers flooded far beyond their bandwidth.
    CbsServerSpec s1{q1, t1, flood(3000, trial_rng.uniform_int(3, 9), 5)};
    CbsServerSpec s2{q2, t2, flood(3000, trial_rng.uniform_int(3, 9), 7)};
    CbsSimulator sim(hard, CbsConfig{{s1, s2}});
    sim.run_until(6000);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
  }
}

TEST(Cbs, WithoutServerOverrunWouldSinkHardTasks) {
  // Control experiment: admit the same overrunning stream as a plain
  // hard "task" of its nominal (underestimated) cost and watch EDF
  // miss — the contrast motivating CBS (and, on multiprocessors, the
  // built-in isolation of Pfair).
  CbsServerSpec honest_server{1, 4, flood(4000, 4, 4)};
  CbsSimulator with_cbs({{1, 2}}, CbsConfig{{honest_server}});
  with_cbs.run_until(4000);
  EXPECT_EQ(with_cbs.metrics().deadline_misses, 0u);

  // Same demand declared as a periodic task (4 every 4 = utilization 1)
  // next to the 0.5 hard task: overload, the hard task misses.
  CbsSimulator no_cbs({{1, 2}, {4, 4}}, CbsConfig{});
  no_cbs.run_until(4000);
  EXPECT_GT(no_cbs.metrics().deadline_misses, 0u);
}

TEST(Cbs, IdleServerReusesBudgetWhenConsistent) {
  // A single short job, then a long gap, then another: the second
  // arrival resets (c, d) because the old pair is stale.
  CbsServerSpec server{2, 10, {{0, 1}, {100, 1}}};
  CbsSimulator sim({}, CbsConfig{{server}});
  sim.run_until(200);
  EXPECT_EQ(sim.metrics().served_jobs_completed, 2u);
  EXPECT_EQ(sim.server_work(0), 2);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(Cbs, SchedulerInvocationsGrowWithServers) {
  // The paper's remark that CBS "increases scheduling overhead": the
  // event count with servers strictly exceeds the plain-EDF event count
  // of the hard tasks alone.
  CbsSimulator plain({{1, 4}, {1, 8}}, CbsConfig{});
  plain.run_until(2000);
  CbsSimulator with_server({{1, 4}, {1, 8}},
                           CbsConfig{{CbsServerSpec{1, 8, flood(2000, 1, 8)}}});
  with_server.run_until(2000);
  EXPECT_GT(with_server.metrics().scheduler_invocations,
            plain.metrics().scheduler_invocations);
}

}  // namespace
}  // namespace pfair
