#include "uniproc/partitioned_sim.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace pfair {
namespace {

TEST(PartitionedSim, PlacesAndSchedulesFeasibleSet) {
  // 4 x 0.5: needs 2 processors, no misses once placed.
  std::vector<UniTask> tasks(4, UniTask{1, 2});
  PartitionConfig cfg;
  PartitionedSimulator sim(tasks, cfg);
  EXPECT_TRUE(sim.all_tasks_placed());
  EXPECT_EQ(sim.processors(), 2);
  sim.run_until(1000);
  const engine::Metrics& m = sim.metrics();
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_EQ(m.jobs_completed, m.jobs_released);
}

TEST(PartitionedSim, ReportsUnplacedTasksUnderProcessorCap) {
  std::vector<UniTask> tasks(3, UniTask{2, 3});  // 3 x 2/3 on 2 procs
  PartitionConfig cfg;
  cfg.max_processors = 2;
  PartitionedSimulator sim(tasks, cfg);
  EXPECT_FALSE(sim.all_tasks_placed());
  EXPECT_EQ(sim.unplaced().size(), 1u);
  sim.run_until(300);
  // The two placed tasks still run cleanly.
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(PartitionedSim, NoMigrationsByConstruction) {
  // Structural: a task's assignment never changes, so every job of a
  // task completes on its processor.  (There is no migration counter to
  // read because the concept does not exist here; assert assignment is
  // total and stable instead.)
  Rng rng(0x77a);
  const std::vector<UniTask> tasks = generate_uni_tasks(rng, 12, 3.0, 60);
  PartitionConfig cfg;
  PartitionedSimulator sim(tasks, cfg);
  ASSERT_TRUE(sim.all_tasks_placed());
  for (const int a : sim.assignment()) EXPECT_GE(a, 0);
}

TEST(PartitionedSim, RandomFeasibleSystemsRunCleanly) {
  Rng rng(0x77b);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const std::vector<UniTask> tasks = generate_uni_tasks(trial_rng, 16, 3.5, 80);
    PartitionConfig cfg;
    cfg.heuristic = trial % 2 == 0 ? Heuristic::kFirstFit : Heuristic::kBestFit;
    PartitionedSimulator sim(tasks, cfg);
    ASSERT_TRUE(sim.all_tasks_placed());
    sim.run_until(5000);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
  }
}

TEST(PartitionedSim, RmBackendHonoursRmAcceptance) {
  // Tasks accepted under RM-exact must run without misses under RM.
  Rng rng(0x77c);
  const std::vector<UniTask> tasks = generate_uni_tasks(rng, 10, 2.5, 40);
  PartitionConfig cfg;
  cfg.acceptance = Acceptance::kRmExact;
  cfg.algorithm = UniAlgorithm::kRM;
  PartitionedSimulator sim(tasks, cfg);
  ASSERT_TRUE(sim.all_tasks_placed());
  sim.run_until(10000);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(PartitionedSim, AggregateSumsPerProcessorMetrics) {
  std::vector<UniTask> tasks = {{1, 2}, {1, 2}, {1, 4}};
  PartitionConfig cfg;
  PartitionedSimulator sim(tasks, cfg);
  sim.run_until(400);
  const engine::Metrics agg = sim.metrics();
  engine::Metrics manual;
  for (int p = 0; p < sim.processors(); ++p) manual.merge(sim.processor_metrics(p));
  EXPECT_EQ(agg.jobs_released, manual.jobs_released);
  EXPECT_EQ(agg.context_switches, manual.context_switches);
}

}  // namespace
}  // namespace pfair
