#include "uniproc/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pfair {
namespace {

TEST(EdfTest, BoundaryAtExactlyOne) {
  EXPECT_TRUE(edf_schedulable({{1, 3}, {1, 3}, {1, 3}}));   // U = 1 exactly
  EXPECT_FALSE(edf_schedulable({{1, 3}, {1, 3}, {2, 5}}));  // U = 16/15
  EXPECT_TRUE(edf_schedulable({}));
}

TEST(RmBound, KnownValues) {
  EXPECT_DOUBLE_EQ(rm_utilization_bound(1), 1.0);
  EXPECT_NEAR(rm_utilization_bound(2), 2.0 * (std::sqrt(2.0) - 1.0), 1e-12);  // ~0.828
  EXPECT_NEAR(rm_utilization_bound(3), 0.7797, 1e-4);
  // Approaches ln 2 ~ 0.693 from above.
  EXPECT_NEAR(rm_utilization_bound(10000), std::log(2.0), 1e-4);
  for (std::size_t n = 1; n < 50; ++n)
    EXPECT_GT(rm_utilization_bound(n), rm_utilization_bound(n + 1));
}

TEST(RmLl, SufficientButNotNecessary) {
  // Harmonic periods: schedulable at U = 1 even though LL rejects.
  const std::vector<UniTask> harmonic = {{1, 2}, {1, 4}, {1, 4}};  // U = 1
  EXPECT_FALSE(rm_schedulable_ll(harmonic));
  EXPECT_TRUE(rm_schedulable_exact(harmonic));
}

TEST(RmResponseTime, SingleTaskRunsUnimpeded) {
  EXPECT_EQ(rm_response_time({{3, 10}}, 0), 3);
}

TEST(RmResponseTime, ClassicTwoTaskExample) {
  // T1 = (1, 4) higher priority, T2 = (4, 10):
  // R2 = 4 + ceil(R2/4)*1 -> 4+1=5, 4+ceil(5/4)=6, 4+ceil(6/4)=6. R2=6.
  const std::vector<UniTask> ts = {{1, 4}, {4, 10}};
  EXPECT_EQ(rm_response_time(ts, 0), 1);
  EXPECT_EQ(rm_response_time(ts, 1), 6);
  EXPECT_TRUE(rm_schedulable_exact(ts));
}

TEST(RmResponseTime, DivergesWhenUnschedulable) {
  // Two half-utilization tasks plus one more: total > 1.
  const std::vector<UniTask> ts = {{2, 4}, {2, 4}, {1, 8}};
  EXPECT_EQ(rm_response_time(ts, 2), -1);
  EXPECT_FALSE(rm_schedulable_exact(ts));
}

TEST(RmExact, LiuLaylandCriticalInstanceIsTight) {
  // n tasks with periods 2^k spaced and utilization exactly at the LL
  // bound region: the canonical tight example T_i = (p_{i+1} - p_i,
  // p_i) with p = {2, 3} -> tasks (1, 2), (1, 3): U = 0.833 > LL(2) but
  // exactly schedulable (R2 = 1 + ... ) check via analysis.
  const std::vector<UniTask> ts = {{1, 2}, {1, 3}};
  EXPECT_FALSE(rm_schedulable_ll(ts));
  EXPECT_TRUE(rm_schedulable_exact(ts));
}

TEST(RmExact, ImpliesLl) {
  // Anything accepted by the LL bound must pass the exact test.
  const std::vector<UniTask> ts = {{1, 4}, {1, 5}, {1, 10}};  // U = 0.55 < 0.7797
  ASSERT_TRUE(rm_schedulable_ll(ts));
  EXPECT_TRUE(rm_schedulable_exact(ts));
}

TEST(LopezBound, KnownValues) {
  // Lopez et al.: EDF-FF schedules any set with U <= (beta*m + 1) /
  // (beta + 1) on m processors, beta = floor(1/u_max).
  EXPECT_EQ(lopez_edf_ff_bound(4, 1), Rational(5, 2));
  EXPECT_EQ(lopez_edf_ff_bound(4, 3), Rational(13, 4));
  EXPECT_EQ(lopez_edf_ff_bound(2, 2), Rational(5, 3));
  // m = 1 collapses to the uniprocessor EDF bound U <= 1 for every beta.
  EXPECT_EQ(lopez_edf_ff_bound(1, 1), Rational(1));
  EXPECT_EQ(lopez_edf_ff_bound(1, 7), Rational(1));
}

TEST(LopezBound, TightensAsTasksGetLighter) {
  // Larger beta (lighter tasks) raises the guaranteed utilization,
  // approaching m as beta -> infinity.
  for (const int m : {2, 4, 8}) {
    Rational prev(0);
    for (std::int64_t beta = 1; beta <= 16; ++beta) {
      const Rational bound = lopez_edf_ff_bound(m, beta);
      EXPECT_TRUE(prev < bound) << "m=" << m << " beta=" << beta;
      EXPECT_TRUE(bound < Rational(m)) << "m=" << m << " beta=" << beta;
      prev = bound;
    }
  }
}

TEST(LopezBeta, MinFloorOfInverseUtilization) {
  EXPECT_EQ(lopez_beta({}), 1);                  // weakest bound for no tasks
  EXPECT_EQ(lopez_beta({{1, 1}}), 1);            // u_max = 1
  EXPECT_EQ(lopez_beta({{1, 10}}), 10);          // light task
  EXPECT_EQ(lopez_beta({{2, 4}, {1, 3}}), 2);    // min(floor(4/2), floor(3/1))
  EXPECT_EQ(lopez_beta({{2, 7}, {1, 9}}), 3);    // floor(7/2) = 3
}

}  // namespace
}  // namespace pfair
