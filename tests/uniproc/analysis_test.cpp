#include "uniproc/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pfair {
namespace {

TEST(EdfTest, BoundaryAtExactlyOne) {
  EXPECT_TRUE(edf_schedulable({{1, 3}, {1, 3}, {1, 3}}));   // U = 1 exactly
  EXPECT_FALSE(edf_schedulable({{1, 3}, {1, 3}, {2, 5}}));  // U = 16/15
  EXPECT_TRUE(edf_schedulable({}));
}

TEST(RmBound, KnownValues) {
  EXPECT_DOUBLE_EQ(rm_utilization_bound(1), 1.0);
  EXPECT_NEAR(rm_utilization_bound(2), 2.0 * (std::sqrt(2.0) - 1.0), 1e-12);  // ~0.828
  EXPECT_NEAR(rm_utilization_bound(3), 0.7797, 1e-4);
  // Approaches ln 2 ~ 0.693 from above.
  EXPECT_NEAR(rm_utilization_bound(10000), std::log(2.0), 1e-4);
  for (std::size_t n = 1; n < 50; ++n)
    EXPECT_GT(rm_utilization_bound(n), rm_utilization_bound(n + 1));
}

TEST(RmLl, SufficientButNotNecessary) {
  // Harmonic periods: schedulable at U = 1 even though LL rejects.
  const std::vector<UniTask> harmonic = {{1, 2}, {1, 4}, {1, 4}};  // U = 1
  EXPECT_FALSE(rm_schedulable_ll(harmonic));
  EXPECT_TRUE(rm_schedulable_exact(harmonic));
}

TEST(RmResponseTime, SingleTaskRunsUnimpeded) {
  EXPECT_EQ(rm_response_time({{3, 10}}, 0), 3);
}

TEST(RmResponseTime, ClassicTwoTaskExample) {
  // T1 = (1, 4) higher priority, T2 = (4, 10):
  // R2 = 4 + ceil(R2/4)*1 -> 4+1=5, 4+ceil(5/4)=6, 4+ceil(6/4)=6. R2=6.
  const std::vector<UniTask> ts = {{1, 4}, {4, 10}};
  EXPECT_EQ(rm_response_time(ts, 0), 1);
  EXPECT_EQ(rm_response_time(ts, 1), 6);
  EXPECT_TRUE(rm_schedulable_exact(ts));
}

TEST(RmResponseTime, DivergesWhenUnschedulable) {
  // Two half-utilization tasks plus one more: total > 1.
  const std::vector<UniTask> ts = {{2, 4}, {2, 4}, {1, 8}};
  EXPECT_EQ(rm_response_time(ts, 2), -1);
  EXPECT_FALSE(rm_schedulable_exact(ts));
}

TEST(RmExact, LiuLaylandCriticalInstanceIsTight) {
  // n tasks with periods 2^k spaced and utilization exactly at the LL
  // bound region: the canonical tight example T_i = (p_{i+1} - p_i,
  // p_i) with p = {2, 3} -> tasks (1, 2), (1, 3): U = 0.833 > LL(2) but
  // exactly schedulable (R2 = 1 + ... ) check via analysis.
  const std::vector<UniTask> ts = {{1, 2}, {1, 3}};
  EXPECT_FALSE(rm_schedulable_ll(ts));
  EXPECT_TRUE(rm_schedulable_exact(ts));
}

TEST(RmExact, ImpliesLl) {
  // Anything accepted by the LL bound must pass the exact test.
  const std::vector<UniTask> ts = {{1, 4}, {1, 5}, {1, 10}};  // U = 0.55 < 0.7797
  ASSERT_TRUE(rm_schedulable_ll(ts));
  EXPECT_TRUE(rm_schedulable_exact(ts));
}

}  // namespace
}  // namespace pfair
