#include "uniproc/uni_sim.h"

#include <gtest/gtest.h>

#include "uniproc/analysis.h"
#include "workload/generator.h"

namespace pfair {
namespace {

UniSimConfig cfg(UniAlgorithm a) {
  UniSimConfig c;
  c.algorithm = a;
  return c;
}

TEST(UniSim, SingleTaskCompletesEveryJobOnTime) {
  UniprocSimulator sim({{3, 10}}, cfg(UniAlgorithm::kEDF));
  sim.run_until(100);
  EXPECT_EQ(sim.metrics().jobs_released, 10u);
  EXPECT_EQ(sim.metrics().jobs_completed, 10u);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().preemptions, 0u);
}

TEST(UniSim, EdfFullUtilizationNeverMisses) {
  UniprocSimulator sim({{2, 4}, {3, 6}}, cfg(UniAlgorithm::kEDF));  // U = 1
  sim.run_until(1200);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().jobs_completed, sim.metrics().jobs_released);
}

TEST(UniSim, EdfOverloadMisses) {
  UniprocSimulator sim({{3, 4}, {3, 6}}, cfg(UniAlgorithm::kEDF));  // U = 1.25
  sim.run_until(200);
  EXPECT_GT(sim.metrics().deadline_misses, 0u);
}

TEST(UniSim, RmMissesAboveExactBoundButEdfDoesNot) {
  // U = 59/60 with non-harmonic periods: EDF fine, RM misses (the
  // lowest-priority task's response time is 6 > its period 5).
  const std::vector<UniTask> ts = {{1, 3}, {1, 4}, {2, 5}};
  ASSERT_FALSE(rm_schedulable_exact(ts));
  ASSERT_TRUE(edf_schedulable(ts));
  UniprocSimulator rm(ts, cfg(UniAlgorithm::kRM));
  rm.run_until(3000);
  EXPECT_GT(rm.metrics().deadline_misses, 0u);
  UniprocSimulator edf(ts, cfg(UniAlgorithm::kEDF));
  edf.run_until(3000);
  EXPECT_EQ(edf.metrics().deadline_misses, 0u);
}

TEST(UniSim, RmExactTestPredictsSimulation) {
  // For synchronous periodic sets the response-time test is exact:
  // simulate one hyperperiod and compare.
  Rng rng(0xbeef);
  for (int trial = 0; trial < 30; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    std::vector<UniTask> ts;
    const int n = static_cast<int>(trial_rng.uniform_int(2, 5));
    for (int k = 0; k < n; ++k) {
      const std::int64_t p = trial_rng.uniform_int(3, 12);
      const std::int64_t e = trial_rng.uniform_int(1, std::max<std::int64_t>(1, p / 2));
      ts.push_back({e, p});
    }
    std::int64_t hp = 1;
    for (const UniTask& t : ts) hp = saturating_lcm(hp, t.period);
    if (hp > 100000) continue;
    UniprocSimulator sim(ts, cfg(UniAlgorithm::kRM));
    sim.run_until(hp);
    const bool sim_ok = sim.metrics().deadline_misses == 0;
    EXPECT_EQ(sim_ok, rm_schedulable_exact(ts)) << "trial " << trial;
  }
}

TEST(UniSim, EdfPreemptionsBoundedByJobs) {
  // The Sec.-4 accounting: under EDF the number of preemptions is at
  // most the number of jobs, so context switches <= 2 * jobs.
  Rng rng(0x100);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const std::vector<UniTask> ts = generate_uni_tasks(trial_rng, 8, 0.95, 1000);
    UniprocSimulator sim(ts, cfg(UniAlgorithm::kEDF));
    sim.run_until(20000);
    EXPECT_LE(sim.metrics().preemptions, sim.metrics().jobs_released) << "trial " << trial;
    EXPECT_LE(sim.metrics().context_switches, 2 * sim.metrics().jobs_released);
  }
}

TEST(UniSim, SchedulerInvocationsCounted) {
  UniprocSimulator sim({{1, 5}, {1, 7}}, cfg(UniAlgorithm::kEDF));
  sim.run_until(100);
  EXPECT_GT(sim.metrics().scheduler_invocations, 0u);
}

TEST(UniSim, OverheadTimingAccumulates) {
  UniSimConfig c = cfg(UniAlgorithm::kEDF);
  c.measure_overhead = true;
  UniprocSimulator sim({{1, 3}, {2, 7}, {1, 11}}, c);
  sim.run_until(10000);
  EXPECT_GT(sim.metrics().sched_ns_total, 0.0);
  EXPECT_GT(sim.metrics().avg_sched_ns(), 0.0);
}

TEST(UniSim, DeadlineTiesDoNotPreempt) {
  // Two tasks with identical parameters: whoever starts first runs to
  // completion each period (no thrashing on equal deadlines).
  UniprocSimulator sim({{2, 10}, {2, 10}}, cfg(UniAlgorithm::kEDF));
  sim.run_until(100);
  EXPECT_EQ(sim.metrics().preemptions, 0u);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

}  // namespace
}  // namespace pfair
