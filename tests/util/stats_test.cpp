#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pfair {
namespace {

TEST(RunningStats, MeanAndVarianceOfKnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci99_halfwidth(), 0.0);
}

TEST(RunningStats, CiShrinksWithSampleSize) {
  Rng rng(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci99_halfwidth(), large.ci99_halfwidth());
}

TEST(RunningStats, Ci99CoversTrueMeanMostOfTheTime) {
  // 200 experiments, each estimating the mean of U(0,1); the 99% CI
  // should cover 0.5 in the vast majority (allow a generous margin).
  Rng rng(2024);
  int covered = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RunningStats s;
    for (int i = 0; i < 50; ++i) s.add(rng.uniform01());
    if (std::abs(s.mean() - 0.5) <= s.ci99_halfwidth()) ++covered;
  }
  EXPECT_GE(covered, 190);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(9);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

}  // namespace
}  // namespace pfair
