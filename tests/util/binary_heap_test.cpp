#include "util/binary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace pfair {
namespace {

using IntHeap = BinaryHeap<int, std::less<int>>;

TEST(BinaryHeap, PopsInSortedOrder) {
  IntHeap h;
  for (const int x : {5, 3, 8, 1, 9, 2, 7}) h.push(x);
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 7u);
}

TEST(BinaryHeap, HandlesAreStableAcrossOtherOperations) {
  IntHeap h;
  const HeapHandle h5 = h.push(5);
  h.push(1);
  h.push(9);
  EXPECT_EQ(h.get(h5), 5);
  EXPECT_EQ(h.pop(), 1);  // removes a different element
  EXPECT_TRUE(h.contains(h5));
  EXPECT_EQ(h.get(h5), 5);
}

TEST(BinaryHeap, EraseRemovesExactlyThatElement) {
  IntHeap h;
  h.push(4);
  const HeapHandle mid = h.push(6);
  h.push(8);
  h.erase(mid);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.pop(), 4);
  EXPECT_EQ(h.pop(), 8);
}

TEST(BinaryHeap, UpdateAfterKeyChangeRestoresOrder) {
  IntHeap h;
  const HeapHandle a = h.push(10);
  h.push(5);
  h.push(7);
  h.get_mutable(a) = 1;  // decrease key
  h.update(a);
  EXPECT_EQ(h.top(), 1);
  h.get_mutable(a) = 100;  // increase key
  h.update(a);
  EXPECT_EQ(h.pop(), 5);
  EXPECT_EQ(h.pop(), 7);
  EXPECT_EQ(h.pop(), 100);
}

TEST(BinaryHeap, HandleReuseAfterPop) {
  IntHeap h;
  const HeapHandle a = h.push(1);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_FALSE(h.contains(a));
  const HeapHandle b = h.push(2);
  EXPECT_TRUE(h.contains(b));
  EXPECT_EQ(h.get(b), 2);
}

TEST(BinaryHeap, RandomisedAgainstMultiset) {
  Rng rng(71);
  IntHeap h;
  std::vector<std::pair<HeapHandle, int>> live;
  std::size_t pops = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::int64_t action = rng.uniform_int(0, 99);
    if (action < 50 || live.empty()) {
      const int v = static_cast<int>(rng.uniform_int(0, 1000));
      live.emplace_back(h.push(v), v);
    } else if (action < 75) {
      // pop: must return the minimum of the live multiset
      int expect = live.front().second;
      for (const auto& [hd, v] : live) expect = std::min(expect, v);
      const int got = h.pop();
      EXPECT_EQ(got, expect);
      // remove one matching entry from the mirror
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].second == got && !h.contains(live[i].first)) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      ++pops;
    } else if (action < 90) {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      h.erase(live[i].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const int nv = static_cast<int>(rng.uniform_int(0, 1000));
      h.get_mutable(live[i].first) = nv;
      h.update(live[i].first);
      live[i].second = nv;
    }
    if (step % 500 == 0) ASSERT_TRUE(h.validate());
  }
  EXPECT_EQ(h.size(), live.size());
  EXPECT_GT(pops, 100u);
}

TEST(BinaryHeap, ClearEmptiesEverything) {
  IntHeap h;
  for (int i = 0; i < 10; ++i) h.push(i);
  h.clear();
  EXPECT_TRUE(h.empty());
  const HeapHandle a = h.push(42);
  EXPECT_EQ(h.get(a), 42);
}

}  // namespace
}  // namespace pfair
