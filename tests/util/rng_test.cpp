#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pfair {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(31337);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_int(0, kBuckets - 1)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.fork(1);
  // The fork must not replay the parent's sequence.
  Rng b(123);
  (void)b.next();  // parent consumed one value to fork
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (child.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace pfair
