#include "util/rational.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pfair {
namespace {

TEST(Rational, ReducesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalisesNegativeDenominator) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ZeroHasCanonicalForm) {
  const Rational r(0, 17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_EQ(r, Rational(0));
}

TEST(Rational, ArithmeticIsExact) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, ThirdsSumToExactlyOne) {
  // The classic double-precision trap: 1/3 + 1/3 + 1/3 == 1 must hold
  // exactly for the partitioning acceptance tests.
  Rational sum(0);
  for (int i = 0; i < 3; ++i) sum += Rational(1, 3);
  EXPECT_EQ(sum, Rational(1));
  EXPECT_FALSE(Rational(1) < sum);
}

TEST(Rational, OrderingByCrossMultiplication) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(7, 8), Rational(8, 9));
  EXPECT_EQ(Rational(2, 4) <=> Rational(1, 2), std::strong_ordering::equal);
}

TEST(Rational, FloorAndCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, ToStringFormats) {
  EXPECT_EQ(Rational(1, 2).to_string(), "1/2");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_EQ(Rational(-3, 9).to_string(), "-1/3");
}

TEST(Rational, RandomisedFieldAxioms) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const Rational a(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    const Rational b(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    const Rational c(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
  }
}

TEST(Rational, ToDoubleApproximates) {
  EXPECT_NEAR(Rational(1, 3).to_double(), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(Rational(-5, 8).to_double(), -0.625, 1e-15);
}

}  // namespace
}  // namespace pfair
