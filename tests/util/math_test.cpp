#include "util/math.h"

#include <gtest/gtest.h>

#include <limits>

namespace pfair {
namespace {

TEST(FloorDiv, MatchesMathematicalFloorForAllSignCombos) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(6, 2), 3);
  EXPECT_EQ(floor_div(-6, 2), -3);
  EXPECT_EQ(floor_div(0, 5), 0);
  EXPECT_EQ(floor_div(1, 1000000), 0);
  EXPECT_EQ(floor_div(-1, 1000000), -1);
}

TEST(CeilDiv, MatchesMathematicalCeilForAllSignCombos) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(6, 2), 3);
  EXPECT_EQ(ceil_div(-6, 2), -3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 1000000), 1);
  EXPECT_EQ(ceil_div(-1, 1000000), 0);
}

TEST(FloorCeilDiv, FloorPlusOneEqualsCeilExactlyWhenNotDivisible) {
  for (std::int64_t a = -50; a <= 50; ++a) {
    for (std::int64_t b = 1; b <= 7; ++b) {
      if (a % b == 0) {
        EXPECT_EQ(floor_div(a, b), ceil_div(a, b));
      } else {
        EXPECT_EQ(floor_div(a, b) + 1, ceil_div(a, b));
      }
      // Defining property of floor: floor_div(a,b) <= a/b < floor+1.
      const std::int64_t f = floor_div(a, b);
      EXPECT_LE(f * b, a);
      EXPECT_GT((f + 1) * b, a);
    }
  }
}

TEST(SaturatingLcm, ExactWhenSmall) {
  EXPECT_EQ(saturating_lcm(4, 6), 12);
  EXPECT_EQ(saturating_lcm(7, 13), 91);
  EXPECT_EQ(saturating_lcm(10, 10), 10);
  EXPECT_EQ(saturating_lcm(1, 999), 999);
}

TEST(SaturatingLcm, SaturatesInsteadOfOverflowing) {
  const std::int64_t big = (std::int64_t{1} << 62) - 1;  // odd, huge
  EXPECT_EQ(saturating_lcm(big, big - 2),
            std::numeric_limits<std::int64_t>::max());
}

TEST(CheckedMul, ProductsWithinRangeAreExact) {
  EXPECT_EQ(checked_mul(1000000007, 998244353), 1000000007ll * 998244353ll);
  EXPECT_EQ(checked_mul(-5, 7), -35);
  EXPECT_EQ(checked_mul(0, 123456789), 0);
}

}  // namespace
}  // namespace pfair
