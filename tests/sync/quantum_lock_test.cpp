#include "sync/quantum_lock.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace pfair {
namespace {

TEST(QuantumLock, AdmissionRule) {
  const QuantumLockModel m(1000.0, 50.0);
  EXPECT_TRUE(m.admissible(0.0, 50.0));
  EXPECT_TRUE(m.admissible(950.0, 50.0));
  EXPECT_FALSE(m.admissible(951.0, 50.0));
  EXPECT_TRUE(m.admissible(999.0, 0.0));
}

TEST(QuantumLock, AnalyticCosts) {
  const QuantumLockModel m(1000.0, 40.0);
  EXPECT_DOUBLE_EQ(m.worst_case_deferral_us(), 40.0);
  EXPECT_DOUBLE_EQ(m.worst_case_blocking_us(), 40.0);
  EXPECT_NEAR(m.inflation_factor(), 1000.0 / 960.0, 1e-12);
  EXPECT_GT(m.inflation_factor(), 1.0);
}

TEST(QuantumLock, ReplayExecutesEarlyRequests) {
  const QuantumLockModel m(1000.0, 50.0);
  const CsAudit a = replay_quantum(m, {{10.0, 30.0}, {100.0, 50.0}, {900.0, 40.0}});
  EXPECT_EQ(a.executed, 3u);
  EXPECT_EQ(a.deferred, 0u);
  EXPECT_FALSE(a.boundary_violation);
}

TEST(QuantumLock, ReplayDefersTailRequests) {
  const QuantumLockModel m(1000.0, 50.0);
  const CsAudit a = replay_quantum(m, {{980.0, 40.0}});
  EXPECT_EQ(a.executed, 0u);
  EXPECT_EQ(a.deferred, 1u);
  EXPECT_LE(a.wasted_tail_us, m.worst_case_deferral_us());
  EXPECT_FALSE(a.boundary_violation);
}

TEST(QuantumLock, BackToBackRequestsQueueWithinQuantum) {
  const QuantumLockModel m(1000.0, 50.0);
  // Both ask at offset 0; the second starts when the first ends.
  const CsAudit a = replay_quantum(m, {{0.0, 50.0}, {0.0, 50.0}});
  EXPECT_EQ(a.executed, 2u);
  EXPECT_EQ(a.deferred, 0u);
}

TEST(QuantumLock, RandomisedInvariantNoLockAcrossBoundary) {
  Rng rng(0x10c);
  const QuantumLockModel m(1000.0, 80.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<CsRequest> reqs;
    const int n = static_cast<int>(rng.uniform_int(0, 12));
    for (int k = 0; k < n; ++k)
      reqs.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 80.0)});
    std::sort(reqs.begin(), reqs.end(),
              [](const CsRequest& a, const CsRequest& b) { return a.offset_us < b.offset_us; });
    const CsAudit a = replay_quantum(m, reqs);
    EXPECT_FALSE(a.boundary_violation) << "trial " << trial;
    EXPECT_EQ(a.executed + a.deferred, reqs.size());
    EXPECT_LE(a.wasted_tail_us, m.quantum_us());
  }
}

TEST(LockFree, AttemptBoundFormula) {
  EXPECT_EQ(lock_free_attempt_bound(1, 10), 1);   // no interference alone
  EXPECT_EQ(lock_free_attempt_bound(2, 10), 11);
  EXPECT_EQ(lock_free_attempt_bound(4, 3), 10);
}

TEST(LockFree, SimulatedRetriesStayUnderBound) {
  // Toy lock-free counter: in each "attempt window", each of the other
  // m-1 concurrently scheduled tasks performs at most `ops` successful
  // operations, each of which can invalidate one attempt.
  Rng rng(0xf00);
  for (int trial = 0; trial < 100; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const std::int64_t ops = rng.uniform_int(1, 5);
    std::int64_t attempts = 1;
    std::int64_t interferences_left = (m - 1) * ops;
    while (interferences_left > 0 && rng.uniform01() < 0.7) {
      ++attempts;       // an interference forced a retry
      --interferences_left;
    }
    EXPECT_LE(attempts, lock_free_attempt_bound(m, ops)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pfair
