#include "partition/uni_partition.h"

#include <gtest/gtest.h>

#include "uniproc/analysis.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(UniPartition, EdfAcceptanceMatchesRationalPartitioner) {
  // Same tasks, same heuristic: the UniTask front-end with the EDF test
  // must open exactly as many processors as the Rational partitioner.
  Rng rng(0x42);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    std::vector<UniTask> tasks;
    std::vector<Rational> utils;
    const int n = static_cast<int>(trial_rng.uniform_int(3, 20));
    for (int k = 0; k < n; ++k) {
      const std::int64_t p = trial_rng.uniform_int(2, 30);
      const std::int64_t e = trial_rng.uniform_int(1, p);
      tasks.push_back({e, p});
      utils.emplace_back(e, p);
    }
    const auto uni = partition_uni(tasks, 1 << 10, Heuristic::kFirstFit,
                                   Acceptance::kEdfUtilization);
    const auto rat = partition(utils, 1 << 10, Heuristic::kFirstFit);
    EXPECT_EQ(uni.processors_used, rat.processors_used) << "trial " << trial;
    EXPECT_EQ(uni.assignment, rat.assignment) << "trial " << trial;
  }
}

TEST(UniPartition, RmNeedsAtLeastAsManyProcessorsAsEdf) {
  // RM's schedulable region is a subset of EDF's on each processor, so
  // RM-FF can never beat EDF-FF, and RM-LL can never beat RM-exact.
  Rng rng(0x43);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const std::vector<UniTask> tasks = generate_uni_tasks(trial_rng, 12, 4.0, 100);
    const int edf = min_processors_uni(tasks, Heuristic::kFirstFit,
                                       Acceptance::kEdfUtilization);
    const int rm_exact =
        min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kRmExact);
    const int rm_ll =
        min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kRmLiuLayland);
    EXPECT_LE(edf, rm_exact) << "trial " << trial;
    EXPECT_LE(rm_exact, rm_ll) << "trial " << trial;
  }
}

TEST(UniPartition, HarmonicTasksPackPerfectlyUnderRmExact) {
  // Harmonic periods are RM-schedulable to utilization 1: RM-exact
  // packs them like EDF, RM-LL cannot.
  std::vector<UniTask> tasks;
  for (int k = 0; k < 4; ++k) tasks.push_back({1, 2});   // 4 x 0.5
  for (int k = 0; k < 4; ++k) tasks.push_back({1, 4});   // 4 x 0.25
  // Total 3.0: EDF/RM-exact fit on 3 processors.
  EXPECT_EQ(min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kEdfUtilization), 3);
  EXPECT_EQ(min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kRmExact), 3);
  EXPECT_GT(min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kRmLiuLayland), 3);
}

TEST(UniPartition, EveryAssignedProcessorIsActuallySchedulable) {
  Rng rng(0x44);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const std::vector<UniTask> tasks = generate_uni_tasks(trial_rng, 16, 5.0, 60);
    for (const Acceptance acc :
         {Acceptance::kEdfUtilization, Acceptance::kRmLiuLayland, Acceptance::kRmExact}) {
      const auto res = partition_uni(tasks, 1 << 10, Heuristic::kBestFit, acc);
      ASSERT_TRUE(res.feasible) << acceptance_name(acc);
      std::vector<std::vector<UniTask>> procs(
          static_cast<std::size_t>(res.processors_used));
      for (std::size_t i = 0; i < tasks.size(); ++i)
        procs[static_cast<std::size_t>(res.assignment[i])].push_back(tasks[i]);
      for (const auto& members : procs) {
        switch (acc) {
          case Acceptance::kEdfUtilization:
            EXPECT_TRUE(edf_schedulable(members));
            break;
          case Acceptance::kRmLiuLayland:
            EXPECT_TRUE(rm_schedulable_ll(members));
            break;
          case Acceptance::kRmExact:
            EXPECT_TRUE(rm_schedulable_exact(members));
            break;
        }
      }
    }
  }
}

TEST(UniPartition, RespectsProcessorCap) {
  std::vector<UniTask> tasks(5, UniTask{3, 5});  // 5 x 0.6
  EXPECT_FALSE(
      partition_uni(tasks, 4, Heuristic::kFirstFit, Acceptance::kEdfUtilization).feasible);
  EXPECT_TRUE(
      partition_uni(tasks, 5, Heuristic::kFirstFit, Acceptance::kEdfUtilization).feasible);
}

TEST(UniPartition, DhallStyleHighUtilizationTasksDefeatRmLl) {
  // m+1 tasks just above 1/2 utilization: RM-LL (like every heuristic)
  // needs m+1 processors; each pair exceeds the 2-task LL bound anyway.
  std::vector<UniTask> tasks(5, UniTask{51, 100});
  EXPECT_EQ(min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kRmLiuLayland), 5);
  EXPECT_EQ(min_processors_uni(tasks, Heuristic::kFirstFit, Acceptance::kEdfUtilization), 5);
}

}  // namespace
}  // namespace pfair
