#include "partition/heuristics.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace pfair {
namespace {

std::vector<Rational> thirds(int n) {
  return std::vector<Rational>(static_cast<std::size_t>(n), Rational(1, 3));
}

TEST(Partition, FirstFitPacksExactThirds) {
  // Nine tasks of utilization 1/3 fit exactly on 3 processors — only if
  // the arithmetic is exact (doubles would sometimes refuse the third
  // task on a processor).
  const PartitionResult r = partition(thirds(9), 3, Heuristic::kFirstFit);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.processors_used, 3);
  for (const Rational& load : r.loads) EXPECT_EQ(load, Rational(1));
}

TEST(Partition, PaperSec1ExampleUnpartitionable) {
  // Three tasks of weight 2/3 on 2 processors: not partitionable (but
  // Pfair-feasible — see sim tests).
  const std::vector<Rational> u(3, Rational(2, 3));
  EXPECT_FALSE(partition(u, 2, Heuristic::kFirstFit).feasible);
  EXPECT_FALSE(partition(u, 2, Heuristic::kBestFit).feasible);
  EXPECT_FALSE(partition(u, 2, Heuristic::kFirstFitDecreasing).feasible);
  EXPECT_TRUE(partition(u, 3, Heuristic::kFirstFit).feasible);
}

TEST(Partition, AdversaryDefeatsEveryHeuristic) {
  // m+1 tasks of utilization (1+eps)/2 (Sec. 3): unpartitionable on m
  // processors regardless of heuristic.
  for (const int m : {2, 4, 8}) {
    const std::vector<Rational> u = partition_adversary(m, 100);
    for (const Heuristic h :
         {Heuristic::kFirstFit, Heuristic::kBestFit, Heuristic::kWorstFit,
          Heuristic::kFirstFitDecreasing, Heuristic::kBestFitDecreasing}) {
      const PartitionResult r = partition(u, m, h);
      EXPECT_FALSE(r.feasible) << heuristic_name(h) << " m=" << m;
      EXPECT_EQ(min_processors(u, h), m + 1) << heuristic_name(h);
    }
  }
}

TEST(Partition, AssignmentRespectsCapacity) {
  Rng rng(0xaa);
  for (int trial = 0; trial < 30; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    std::vector<Rational> u;
    const int n = static_cast<int>(trial_rng.uniform_int(1, 25));
    for (int k = 0; k < n; ++k) {
      const std::int64_t p = trial_rng.uniform_int(1, 20);
      u.emplace_back(trial_rng.uniform_int(1, p), p);
    }
    for (const Heuristic h : {Heuristic::kFirstFit, Heuristic::kBestFit, Heuristic::kWorstFit,
                              Heuristic::kFirstFitDecreasing}) {
      const PartitionResult r = partition(u, 64, h);
      ASSERT_TRUE(r.feasible);
      std::vector<Rational> loads(static_cast<std::size_t>(r.processors_used), Rational(0));
      for (std::size_t i = 0; i < u.size(); ++i) {
        ASSERT_GE(r.assignment[i], 0);
        loads[static_cast<std::size_t>(r.assignment[i])] += u[i];
      }
      for (std::size_t pnum = 0; pnum < loads.size(); ++pnum) {
        EXPECT_LE(loads[pnum], Rational(1)) << heuristic_name(h);
        EXPECT_EQ(loads[pnum], r.loads[pnum]) << heuristic_name(h);
      }
    }
  }
}

TEST(Partition, FfdNeverUsesMoreProcessorsThanTotalTimesTwoPlusOne) {
  // FFD's classical guarantee is much stronger; we check the crude
  // 2*OPT bound as a sanity property, with OPT >= ceil(total).
  Rng rng(0xbb);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    std::vector<Rational> u;
    for (int k = 0; k < 30; ++k) {
      const std::int64_t p = trial_rng.uniform_int(2, 24);
      u.emplace_back(trial_rng.uniform_int(1, p), p);
    }
    Rational total(0);
    for (const Rational& w : u) total += w;
    const int used = partition(u, 1 << 10, Heuristic::kFirstFitDecreasing).processors_used;
    EXPECT_LE(used, 2 * static_cast<int>(total.ceil()) + 1);
    EXPECT_GE(used, static_cast<int>(total.ceil()));
  }
}

TEST(Partition, BestFitPrefersFullerProcessor) {
  // Load 0.5 and 0.25 open; a 0.25 task goes to the 0.5-full bin under
  // BF (minimal remaining capacity), to the 0.25 bin under WF.
  const std::vector<Rational> u = {Rational(1, 2), Rational(1, 4), Rational(1, 4)};
  // After placing 1/2 and 1/4 on separate... force the layout: FF puts
  // both on proc 0; instead use explicit sequences.
  const std::vector<Rational> seq = {Rational(3, 4), Rational(1, 2), Rational(1, 4)};
  const PartitionResult bf = partition(seq, 4, Heuristic::kBestFit);
  // 3/4 -> proc0; 1/2 -> proc1; 1/4 -> proc0 (remaining 1/4 < 1/2).
  EXPECT_EQ(bf.assignment[2], 0);
  const PartitionResult wf = partition(seq, 4, Heuristic::kWorstFit);
  EXPECT_EQ(wf.assignment[2], 1);
  (void)u;
}

TEST(Partition, DecreasingVariantSortsButReportsInInputOrder) {
  const std::vector<Rational> u = {Rational(1, 10), Rational(9, 10), Rational(1, 2)};
  const PartitionResult r = partition(u, 2, Heuristic::kFirstFitDecreasing);
  ASSERT_TRUE(r.feasible);
  // 9/10 first -> proc0; 1/2 -> proc1; 1/10 -> proc0.
  EXPECT_EQ(r.assignment[1], 0);
  EXPECT_EQ(r.assignment[2], 1);
  EXPECT_EQ(r.assignment[0], 0);
}

TEST(Bounds, WorstCaseAchievableUtilization) {
  EXPECT_DOUBLE_EQ(partitioning_worst_case_utilization(2), 1.5);
  EXPECT_DOUBLE_EQ(partitioning_worst_case_utilization(16), 8.5);
}

TEST(Bounds, LopezImprovesWithSmallerUmax) {
  // beta = 1 -> (m+1)/2; beta = 3 -> (3m+1)/4.
  EXPECT_DOUBLE_EQ(lopez_bound(4, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(lopez_bound(4, 0.33), 13.0 / 4.0);
  EXPECT_GT(lopez_bound(8, 0.25), lopez_bound(8, 0.5));
  // As u_max -> 0, the bound approaches m.
  EXPECT_NEAR(lopez_bound(8, 0.001), 8.0, 0.02);
}

TEST(Bounds, SimpleBoundWeakerThanLopez) {
  for (const double umax : {0.5, 0.33, 0.2, 0.1}) {
    for (const int m : {2, 4, 8, 16}) {
      EXPECT_LE(simple_partition_bound(m, umax), lopez_bound(m, umax) + 1e-9)
          << "m=" << m << " umax=" << umax;
    }
  }
}

TEST(Bounds, TaskSetsUnderLopezBoundAlwaysPartition) {
  // Empirical check of the Lopez guarantee: random sets with u_i <=
  // u_max and total <= (beta*m+1)/(beta+1) always first-fit onto m
  // processors.
  Rng rng(0xcc);
  for (int trial = 0; trial < 50; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = static_cast<int>(trial_rng.uniform_int(2, 8));
    const double umax = 0.5;
    const double cap = lopez_bound(m, umax);
    std::vector<Rational> u;
    Rational total(0);
    while (true) {
      const std::int64_t den = trial_rng.uniform_int(4, 40);
      const std::int64_t num = trial_rng.uniform_int(1, den / 2);  // <= 1/2
      const Rational w(num, den);
      if (Rational(static_cast<std::int64_t>(cap * 1000), 1000) < total + w) break;
      total += w;
      u.push_back(w);
    }
    if (u.empty()) continue;
    EXPECT_TRUE(partition(u, m, Heuristic::kFirstFit).feasible)
        << "m=" << m << " total=" << total.to_string();
  }
}

}  // namespace
}  // namespace pfair
