#include "qa/shrink.h"

#include <gtest/gtest.h>

#include "core/priority.h"
#include "qa/gen.h"

namespace pfair::qa {
namespace {

/// Synthetic predicate: fails while any task has execution >= 2.  Lets
/// the shrinker's transformations be tested without simulator runs.
std::optional<CaseVerdict> has_fat_task(const FuzzCase& c) {
  for (const Task& t : c.tasks.tasks()) {
    if (t.execution >= 2) {
      CaseVerdict v;
      v.ok = false;
      v.oracle = "synthetic";
      v.detail = "a task with execution >= 2 exists";
      return v;
    }
  }
  return std::nullopt;
}

FuzzCase six_task_case() {
  FuzzCase c;
  c.processors = 3;
  c.horizon = 200;
  c.tasks.add(make_task(1, 4));
  c.tasks.add(make_task(2, 8));
  c.tasks.add(make_task(6, 9));
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(3, 5));
  c.tasks.add(make_task(1, 7));
  return c;
}

TEST(Shrinker, MinimisesToOneTaskUnderSyntheticPredicate) {
  const Shrinker shrinker(has_fat_task);
  const ShrinkResult res = shrinker.shrink(six_task_case());
  EXPECT_FALSE(res.verdict.ok);
  EXPECT_EQ(res.verdict.oracle, "synthetic");
  EXPECT_GT(res.transformations, 0);
  // Everything irrelevant is gone: one task, shortest horizon, one
  // processor — and the predicate still holds.
  ASSERT_EQ(res.minimal.tasks.size(), 1u);
  EXPECT_GE(res.minimal.tasks[0].execution, 2);
  EXPECT_EQ(res.minimal.horizon, 1);
  EXPECT_EQ(res.minimal.processors, 1);
  EXPECT_TRUE(has_fat_task(res.minimal).has_value());
  EXPECT_EQ(validate(res.minimal), "");
}

TEST(Shrinker, UnshardsWhenFailurePersistsAtOneShard) {
  // Kernel bugs (shard-independent) shrink to shards = 1.
  FuzzCase c = six_task_case();
  c.shards = 8;
  const Shrinker shrinker(has_fat_task);
  const ShrinkResult res = shrinker.shrink(c);
  EXPECT_EQ(res.minimal.shards, 1);
}

TEST(Shrinker, KeepsShardCountWhenFailureNeedsIt) {
  // A genuine sharding defect reproduces only sharded; the repro must
  // keep its shard count.
  const auto sharded_only = [](const FuzzCase& c) -> std::optional<CaseVerdict> {
    if (c.shards < 2) return std::nullopt;
    CaseVerdict v;
    v.ok = false;
    v.oracle = "synthetic-sharded";
    v.detail = "fails only with >= 2 shards";
    return v;
  };
  FuzzCase c = six_task_case();
  c.shards = 8;
  const Shrinker shrinker(sharded_only);
  const ShrinkResult res = shrinker.shrink(c);
  EXPECT_FALSE(res.verdict.ok);
  EXPECT_EQ(res.minimal.shards, 8);
  EXPECT_EQ(validate(res.minimal), "");
}

TEST(Shrinker, ShrinkingIsIdempotent) {
  const Shrinker shrinker(has_fat_task);
  const ShrinkResult once = shrinker.shrink(six_task_case());
  const ShrinkResult twice = shrinker.shrink(once.minimal);
  EXPECT_EQ(twice.transformations, 0);
  EXPECT_EQ(case_to_json(twice.minimal).dump(), case_to_json(once.minimal).dump());
}

TEST(Shrinker, PassingInputReturnsUnchanged) {
  FuzzCase c;
  c.processors = 1;
  c.horizon = 16;
  c.tasks.add(make_task(1, 4));  // no execution >= 2 anywhere
  const Shrinker shrinker(has_fat_task);
  const ShrinkResult res = shrinker.shrink(c);
  EXPECT_TRUE(res.verdict.ok);
  EXPECT_EQ(res.transformations, 0);
  EXPECT_EQ(case_to_json(res.minimal).dump(), case_to_json(c).dump());
}

TEST(Shrinker, DropsScriptEventsAndRemapsLeaves) {
  // Predicate: fails while a leave event targeting the *last* initial
  // task exists — dropping earlier tasks must keep that leave pointing
  // at it (index remapping), and all joins are irrelevant.
  const auto predicate = [](const FuzzCase& c) -> std::optional<CaseVerdict> {
    for (const LeaveEvent& l : c.leaves) {
      if (l.task + 1 == c.tasks.size()) {
        CaseVerdict v;
        v.ok = false;
        v.oracle = "synthetic";
        return v;
      }
    }
    return std::nullopt;
  };
  FuzzCase c;
  c.processors = 2;
  c.horizon = 64;
  c.tasks.add(make_task(1, 4));
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(1, 8));
  c.joins.push_back({5, make_task(1, 6)});
  c.joins.push_back({9, make_task(1, 3)});
  c.leaves.push_back({7, 2});
  const Shrinker shrinker(predicate);
  const ShrinkResult res = shrinker.shrink(c);
  EXPECT_FALSE(res.verdict.ok);
  EXPECT_TRUE(res.minimal.joins.empty());
  ASSERT_EQ(res.minimal.leaves.size(), 1u);
  ASSERT_EQ(res.minimal.tasks.size(), 1u);
  EXPECT_EQ(res.minimal.leaves[0].task, 0u);
  EXPECT_EQ(validate(res.minimal), "");
}

TEST(Shrinker, SameOraclePredicateIgnoresOtherOracles) {
  // A clean case fails no oracle, so the pinned predicate passes it.
  FuzzCase c;
  c.processors = 1;
  c.horizon = 32;
  c.tasks.add(make_task(1, 2));
  EXPECT_FALSE(same_oracle_predicate("window-containment")(c).has_value());
  // An *invalid* case trips the synthetic case-validation oracle, which
  // is not the pinned one — still no match.
  FuzzCase invalid;
  EXPECT_FALSE(same_oracle_predicate("window-containment")(invalid).has_value());
  EXPECT_TRUE(same_oracle_predicate("case-validation")(invalid).has_value());
}

TEST(Shrinker, RealFailureShrinksToFixpointUnderInjectedFlip) {
  // The shrunk flip repro (see oracle_test.cpp) is already minimal for
  // the campaign predicate: shrinking it again changes nothing.
  FuzzCase c;
  c.processors = 4;
  c.horizon = 31;
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(1, 1));
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(15, 16));
  c.tasks.add(make_task(14, 15));
  c.tasks.add(make_task(1, 10));
  ScopedPd2BBitFlip flip;
  const Shrinker shrinker(same_oracle_predicate("window-containment"));
  const ShrinkResult res = shrinker.shrink(c);
  EXPECT_FALSE(res.verdict.ok);
  EXPECT_EQ(res.transformations, 0);
  EXPECT_EQ(case_to_json(res.minimal).dump(), case_to_json(c).dump());
}

}  // namespace
}  // namespace pfair::qa
