#include "qa/gen.h"

#include <gtest/gtest.h>

#include "qa/oracle.h"

namespace pfair::qa {
namespace {

TEST(TaskSetGen, PureInSeedAndIndex) {
  // Two independent generators with the same (config, seed) must yield
  // byte-identical cases in any order — the replay contract.
  const GenConfig config;
  const TaskSetGen a(config, 42);
  const TaskSetGen b(config, 42);
  for (const std::uint64_t i : {0u, 7u, 31u, 100u}) {
    EXPECT_EQ(case_to_json(a.make_case(i)).dump(), case_to_json(b.make_case(i)).dump())
        << "case " << i;
  }
  // Reverse order on the same generator: no hidden state.
  const std::string late = case_to_json(a.make_case(90)).dump();
  const std::string early = case_to_json(a.make_case(3)).dump();
  EXPECT_EQ(case_to_json(a.make_case(90)).dump(), late);
  EXPECT_EQ(case_to_json(a.make_case(3)).dump(), early);
}

TEST(TaskSetGen, DifferentSeedsDiffer) {
  const GenConfig config;
  const TaskSetGen a(config, 1);
  const TaskSetGen b(config, 2);
  int distinct = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    if (case_to_json(a.make_case(i)).dump() != case_to_json(b.make_case(i)).dump())
      ++distinct;
  }
  EXPECT_GE(distinct, 15);
}

TEST(TaskSetGen, EveryCaseIsWellFormedAndFeasible) {
  const GenConfig config;
  const TaskSetGen gen(config, 0xfeed);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzCase c = gen.make_case(i);
    EXPECT_EQ(validate(c), "") << "case " << i;
    EXPECT_GE(c.processors, config.min_processors) << "case " << i;
    EXPECT_LE(c.processors, config.max_processors) << "case " << i;
    EXPECT_GE(c.horizon, config.min_horizon) << "case " << i;
    EXPECT_LE(c.horizon, config.max_horizon) << "case " << i;
    EXPECT_TRUE(c.tasks.total_weight() <= Rational(c.processors)) << "case " << i;
  }
}

TEST(TaskSetGen, CyclesThroughProfilesByDefault) {
  const TaskSetGen gen(GenConfig{}, 5);
  const std::vector<Profile>& profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 7u);
  for (std::uint64_t i = 0; i < 28; ++i) {
    EXPECT_EQ(gen.make_case(i).profile, profiles[i % profiles.size()]) << "case " << i;
  }
}

TEST(TaskSetGen, OnlyProfilePins) {
  GenConfig config;
  config.only_profile = Profile::kDynamic;
  const TaskSetGen gen(config, 5);
  bool any_script = false;
  for (std::uint64_t i = 0; i < 30; ++i) {
    const FuzzCase c = gen.make_case(i);
    EXPECT_EQ(c.profile, Profile::kDynamic) << "case " << i;
    any_script = any_script || c.has_dynamics();
  }
  EXPECT_TRUE(any_script);
}

TEST(TaskSetGen, HeavyProfileReachesFullUtilization) {
  GenConfig config;
  config.only_profile = Profile::kHeavy;
  const TaskSetGen gen(config, 11);
  int full = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const FuzzCase c = gen.make_case(i);
    if (c.tasks.total_weight() == Rational(c.processors)) ++full;
  }
  // fill_to_capacity fires with probability 2/3 on this profile.
  EXPECT_GE(full, 15);
}

TEST(TaskSetGen, DegenerateProfileHitsBoundaryWeights) {
  GenConfig config;
  config.only_profile = Profile::kDegenerate;
  const TaskSetGen gen(config, 23);
  bool weight_one = false;
  bool lightest = false;
  for (std::uint64_t i = 0; i < 60; ++i) {
    const FuzzCase c = gen.make_case(i);
    for (const Task& t : c.tasks.tasks()) {
      if (t.execution == t.period) weight_one = true;
      if (t.execution == 1 && t.period > 1) lightest = true;
    }
  }
  EXPECT_TRUE(weight_one);
  EXPECT_TRUE(lightest);
}

TEST(TaskSetGen, EarlyReleaseMixGatedByConfig) {
  GenConfig with;
  const TaskSetGen gen_with(with, 3);
  int er = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (gen_with.make_case(i).kind == TaskKind::kEarlyRelease) ++er;
  }
  EXPECT_GT(er, 5);  // the 1-in-4 coin must land sometimes

  GenConfig without;
  without.allow_early_release = false;
  const TaskSetGen gen_without(without, 3);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(gen_without.make_case(i).kind, TaskKind::kPeriodic) << "case " << i;
  }
}

TEST(TaskSetGen, JsonRoundTrip) {
  const TaskSetGen gen(GenConfig{}, 77);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const FuzzCase c = gen.make_case(i);
    const obs::json::Value v = case_to_json(c);
    FuzzCase back;
    ASSERT_TRUE(case_from_json(v, back)) << "case " << i;
    EXPECT_EQ(case_to_json(back).dump(), v.dump()) << "case " << i;
  }
}

TEST(TaskSetGen, ShardCountIsFixedAndRoundTrips) {
  // The shard count is configured, never drawn — so a sharded campaign
  // generates byte-identical cases (modulo the shards member itself) and
  // the count survives the JSON artifact round trip.
  GenConfig sharded;
  sharded.shards = 4;
  const TaskSetGen gen(sharded, 77);
  const TaskSetGen gen_plain(GenConfig{}, 77);
  for (std::uint64_t i = 0; i < 6; ++i) {
    FuzzCase c = gen.make_case(i);
    EXPECT_EQ(c.shards, 4) << "case " << i;
    FuzzCase back;
    ASSERT_TRUE(case_from_json(case_to_json(c), back)) << "case " << i;
    EXPECT_EQ(back.shards, 4) << "case " << i;
    // Same rng stream: only the shards member differs from a plain case.
    FuzzCase plain = gen_plain.make_case(i);
    EXPECT_EQ(plain.shards, 1);
    plain.shards = 4;
    EXPECT_EQ(case_to_json(c).dump(), case_to_json(plain).dump()) << "case " << i;
  }
  // Pre-shard artifacts (no "shards" member) load as shards = 1.
  obs::json::Value v = case_to_json(gen_plain.make_case(0));
  FuzzCase back;
  ASSERT_TRUE(case_from_json(v, back));
  EXPECT_EQ(back.shards, 1);
  // The gtest snippet names a non-default shard count.
  FuzzCase c = gen.make_case(2);
  EXPECT_NE(case_to_gtest(c).find("c.shards = 4;"), std::string::npos);
  EXPECT_EQ(case_to_gtest(gen_plain.make_case(2)).find("c.shards"),
            std::string::npos);
}

TEST(TaskSetGen, GtestSnippetNamesSeedAndCase) {
  const TaskSetGen gen(GenConfig{}, 9);
  const FuzzCase c = gen.make_case(4);
  const std::string snippet = case_to_gtest(c);
  EXPECT_NE(snippet.find("TEST(FuzzRepro, Seed9Case4)"), std::string::npos) << snippet;
  EXPECT_NE(snippet.find("qa::check_case(c)"), std::string::npos) << snippet;
}

}  // namespace
}  // namespace pfair::qa
