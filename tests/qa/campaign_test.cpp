#include "qa/campaign.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/priority.h"
#include "sim/pfair_sim.h"

namespace pfair::qa {
namespace {

/// Flattens a campaign result for byte-comparisons across --jobs.
std::string fingerprint(const CampaignResult& r) {
  std::ostringstream os;
  os << r.cases << "\n";
  for (const OracleStats& s : r.oracles) {
    os << s.name << " " << s.applied << " " << s.violated << "\n";
  }
  for (const CampaignFailure& f : r.failures) {
    os << case_to_json(f.original).dump() << "\n"
       << case_to_json(f.shrunk).dump() << "\n"
       << f.verdict.oracle << ": " << f.verdict.detail << " (" << f.transformations
       << ")\n";
  }
  return os.str();
}

/// A case's PD2 trace as bytes (static periodic replay).
std::string trace_bytes(const FuzzCase& c) {
  PfairConfig sc;
  sc.processors = c.processors;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  for (const Task& t : c.tasks.tasks()) sim.add_task(t);
  sim.run_until(c.horizon);
  const ScheduleTrace& trace = sim.trace();
  std::ostringstream os;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    for (const TaskId id : trace[t].proc_to_task) os << id << ",";
    os << ";";
  }
  return os.str();
}

TEST(Campaign, CleanOnMain) {
  CampaignConfig config;
  config.seed = 3;
  config.cases = 120;
  const CampaignResult result = run_campaign(config);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.oracles.size(), oracle_registry().size());
  // quantum-capacity applies to every case; the PD2-trace oracles to
  // every periodic non-dynamic case (dynamic and ERfair cases have
  // their own oracles).
  EXPECT_EQ(result.oracles[2].applied, 120u);
  EXPECT_GT(result.oracles[0].applied, 50u);
  EXPECT_LT(result.oracles[0].applied, 120u);
  for (const OracleStats& s : result.oracles) EXPECT_EQ(s.violated, 0u) << s.name;
}

TEST(Campaign, ByteIdenticalAcrossJobCounts) {
  CampaignConfig config;
  config.seed = 9;
  config.cases = 80;
  config.jobs = 1;
  const std::string serial = fingerprint(run_campaign(config));
  config.jobs = 3;
  EXPECT_EQ(fingerprint(run_campaign(config)), serial);
}

TEST(Campaign, SeedAndIndexReplayToIdenticalTrace) {
  // The replay contract end-to-end: regenerate the case from (seed,
  // index) and re-simulate — the traces must match byte for byte.
  const TaskSetGen gen(GenConfig{}, 0xbeef);
  for (const std::uint64_t index : {0u, 8u, 11u}) {  // non-dynamic profiles
    const FuzzCase a = gen.make_case(index);
    const FuzzCase b = TaskSetGen(GenConfig{}, 0xbeef).make_case(index);
    ASSERT_FALSE(a.has_dynamics());
    EXPECT_EQ(case_to_json(a).dump(), case_to_json(b).dump()) << "case " << index;
    EXPECT_EQ(trace_bytes(a), trace_bytes(b)) << "case " << index;
  }
}

TEST(Campaign, CatchesAndShrinksInjectedPd2BBitFlip) {
  // The end-to-end self-test: with PD2's b-bit tie-break deliberately
  // flipped, a small heavy-profile campaign must find a violation and
  // shrink it to a handful of tasks.  (A failing case needs m >= 3 and
  // n > m tasks — flipped-tie-break PD2 is still EPDF-refining, and
  // EPDF is optimal on m <= 2 — so repros below 4 tasks cannot exist;
  // empirically they land at 5-6.)
  CampaignConfig config;
  config.seed = 1;
  config.cases = 10;
  config.gen.only_profile = Profile::kHeavy;
  ScopedPd2BBitFlip flip;
  const CampaignResult result = run_campaign(config);
  ASSERT_FALSE(result.ok());
  const CampaignFailure& f = result.failures.front();
  EXPECT_EQ(f.original.index, 2u);
  EXPECT_EQ(f.verdict.oracle, "window-containment");
  EXPECT_GT(f.transformations, 0);
  EXPECT_LE(f.shrunk.tasks.size(), 6u);
  EXPECT_LT(f.shrunk.tasks.size(), f.original.tasks.size());
  EXPECT_LE(f.shrunk.horizon, 40);
  EXPECT_EQ(validate(f.shrunk), "");
  // The minimal case still fails the same oracle while the flip is in
  // force...
  EXPECT_TRUE(same_oracle_predicate(f.verdict.oracle)(f.shrunk).has_value());
}

TEST(Campaign, ShrunkReproIsCleanWithoutTheFlip) {
  CampaignConfig config;
  config.seed = 1;
  config.cases = 3;
  config.gen.only_profile = Profile::kHeavy;
  FuzzCase shrunk;
  {
    ScopedPd2BBitFlip flip;
    const CampaignResult result = run_campaign(config);
    ASSERT_FALSE(result.ok());
    shrunk = result.failures.front().shrunk;
  }
  // ...and is clean on the real PD2: the bug lives in the tie-break.
  const CaseVerdict v = check_case(shrunk);
  EXPECT_TRUE(v.ok) << v.oracle << ": " << v.detail;
}

TEST(Campaign, MaxShrunkBoundsMinimisationWork) {
  CampaignConfig config;
  config.seed = 1;
  config.cases = 10;
  config.gen.only_profile = Profile::kHeavy;
  config.max_shrunk = 0;  // report failures, never shrink
  ScopedPd2BBitFlip flip;
  const CampaignResult result = run_campaign(config);
  ASSERT_FALSE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    EXPECT_EQ(f.transformations, 0);
    EXPECT_EQ(case_to_json(f.shrunk).dump(), case_to_json(f.original).dump());
  }
}

}  // namespace
}  // namespace pfair::qa
