#include "qa/oracle.h"

#include <gtest/gtest.h>

#include "core/priority.h"
#include "qa/gen.h"

namespace pfair::qa {
namespace {

/// The shrunk repro the injected PD2 b-bit flip reduces to (found by
/// `pfair_fuzz --seed=1 --profile=heavy --inject-pd2-b-bit-flip=1`):
/// full utilization on 4 processors, one weight-1 task, two near-1
/// heavies.  Feasible, so correct PD2 schedules it without a miss.
FuzzCase flip_repro() {
  FuzzCase c;
  c.seed = 1;
  c.index = 2;
  c.profile = Profile::kHeavy;
  c.processors = 4;
  c.horizon = 31;
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(1, 1));
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(15, 16));
  c.tasks.add(make_task(14, 15));
  c.tasks.add(make_task(1, 10));
  return c;
}

TEST(OracleRegistry, FixedOrderAndNames) {
  const std::vector<Oracle>& registry = oracle_registry();
  const std::vector<std::string> expected = {
      "window-containment",  "lag-bounds",          "quantum-capacity",
      "verifier-agreement",  "optimal-differential", "partitioned-lopez",
      "erfair-deadline",     "erfair-work-conservation", "dynamic-safety",
      "bf-optimality",       "bf-boundary-differential", "run-optimality",
  };
  ASSERT_EQ(registry.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(registry[i].name, expected[i]) << "slot " << i;
  }
}

TEST(Oracles, PassOnHandBuiltFeasibleCase) {
  FuzzCase c;
  c.processors = 2;
  c.horizon = 60;
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(2, 3));
  c.tasks.add(make_task(3, 4));
  const CaseVerdict v = check_case(c);
  EXPECT_TRUE(v.ok) << v.oracle << ": " << v.detail;
}

TEST(Oracles, PassAcrossGeneratedCases) {
  const TaskSetGen gen(GenConfig{}, 0xace);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const CaseVerdict v = check_case(gen.make_case(i));
    EXPECT_TRUE(v.ok) << "case " << i << ": " << v.oracle << ": " << v.detail;
  }
}

TEST(Oracles, ReportsCoverEveryRegisteredOracle) {
  FuzzCase c;
  c.processors = 2;
  c.horizon = 40;
  c.tasks.add(make_task(1, 2));
  c.tasks.add(make_task(1, 4));
  const std::vector<OracleReport> reports = run_oracles(c);
  const std::vector<Oracle>& registry = oracle_registry();
  ASSERT_EQ(reports.size(), registry.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].name, registry[i].name) << "slot " << i;
    EXPECT_FALSE(reports[i].violated) << reports[i].name << ": " << reports[i].detail;
  }
  // A static periodic case applies the core oracles but not the
  // ERfair/dynamic ones.
  EXPECT_TRUE(reports[0].applied);   // window-containment
  EXPECT_TRUE(reports[2].applied);   // quantum-capacity
  EXPECT_FALSE(reports[8].applied);  // dynamic-safety
  // The successor-scheduler oracles are static-only and must apply here.
  EXPECT_TRUE(reports[9].applied);   // bf-optimality
  EXPECT_TRUE(reports[10].applied);  // bf-boundary-differential
  EXPECT_TRUE(reports[11].applied);  // run-optimality
}

TEST(Oracles, InvalidCaseYieldsSyntheticValidationViolation) {
  FuzzCase c;  // no tasks
  const std::vector<OracleReport> reports = run_oracles(c);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "case-validation");
  EXPECT_TRUE(reports[0].violated);
  EXPECT_EQ(reports[0].detail, "case has no tasks");
  const CaseVerdict v = check_case(c);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.oracle, "case-validation");
}

TEST(Validate, ExactMessages) {
  FuzzCase c;
  EXPECT_EQ(validate(c), "case has no tasks");
  c.tasks.add(make_task(1, 2));
  c.processors = 0;
  EXPECT_EQ(validate(c), "processors must be >= 1 (got 0)");
  c.processors = 1;
  c.horizon = 0;
  EXPECT_EQ(validate(c), "horizon must be >= 1 (got 0)");
  c.horizon = 16;

  FuzzCase bad_task = c;
  Task t;
  t.execution = 0;
  t.period = 4;
  bad_task.tasks.add(t);
  EXPECT_EQ(validate(bad_task), "task 1 is invalid (execution 0, period 4)");

  FuzzCase overload = c;
  overload.tasks.add(make_task(1, 1));
  overload.tasks.add(make_task(1, 1));
  overload.processors = 2;
  EXPECT_EQ(validate(overload), "total weight 5/2 exceeds 2 processors");

  FuzzCase bad_join = c;
  bad_join.joins.push_back({0, make_task(1, 4)});
  EXPECT_EQ(validate(bad_join), "join 0 must be at time >= 1 (got 0)");

  FuzzCase bad_leave = c;
  bad_leave.leaves.push_back({2, 0});
  bad_leave.leaves.push_back({3, 7});
  EXPECT_EQ(validate(bad_leave), "leave 1 references unknown task 7");
}

TEST(Oracles, CatchInjectedPd2BBitFlip) {
  const FuzzCase c = flip_repro();
  {
    ScopedPd2BBitFlip flip;
    const CaseVerdict v = check_case(c);
    ASSERT_FALSE(v.ok);
    // The first PD2-trace oracle in registry order flags it.
    EXPECT_EQ(v.oracle, "window-containment");
    EXPECT_NE(v.detail.find("pseudo-deadline"), std::string::npos) << v.detail;
  }
  // With the flip released the same case is clean — the bug is in the
  // tie-break, not the case.
  const CaseVerdict v = check_case(c);
  EXPECT_TRUE(v.ok) << v.oracle << ": " << v.detail;
}

TEST(Oracles, DifferentialPanelSeesOptimalAlgorithmsDisagree) {
  const FuzzCase c = flip_repro();
  ScopedPd2BBitFlip flip;
  const std::vector<OracleReport> reports = run_oracles(c);
  bool differential_violated = false;
  for (const OracleReport& r : reports) {
    if (r.name == "optimal-differential") differential_violated = r.violated;
  }
  // PF and PD are unaffected by the flip; only PD2 misses, so the
  // panel's disagreement is attributed to PD2.
  EXPECT_TRUE(differential_violated);
}

}  // namespace
}  // namespace pfair::qa
