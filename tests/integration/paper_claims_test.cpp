// Cross-module integration tests encoding the paper's headline claims
// end-to-end, each exercising several subsystems together.
#include <gtest/gtest.h>

#include "overhead/inflation.h"
#include "partition/heuristics.h"
#include "partition/uni_partition.h"
#include "sim/pfair_sim.h"
#include "sim/verifier.h"
#include "uniproc/uni_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

// Claim (Sec. 1): partitioning is inherently suboptimal; Pfair is not.
// The same task set is rejected by every partitioning heuristic on 2
// processors yet scheduled by PD2 with an independently verified trace.
TEST(PaperClaims, Sec1CounterexampleSeparatesApproaches) {
  const TaskSet set = two_processor_counterexample();
  std::vector<Rational> utils;
  for (const Task& t : set.tasks()) utils.push_back(t.weight());
  for (const Heuristic h : {Heuristic::kFirstFit, Heuristic::kBestFit, Heuristic::kWorstFit,
                            Heuristic::kFirstFitDecreasing, Heuristic::kBestFitDecreasing}) {
    EXPECT_FALSE(partition(utils, 2, h).feasible) << heuristic_name(h);
  }
  PfairConfig sc;
  sc.processors = 2;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(3 * set.hyperperiod());
  VerifyOptions vo;
  vo.processors = 2;
  const VerifyResult res = verify_schedule(sim.trace(), set, vo);
  EXPECT_TRUE(res.ok) << res.first_violation;
}

// Claim (Sec. 3): the worst-case achievable utilization of any
// partitioning heuristic is (M+1)/2, while PD2 reaches M.
TEST(PaperClaims, Sec3WorstCaseUtilizationGap) {
  for (const int m : {2, 4, 8}) {
    const std::vector<Rational> adversary = partition_adversary(m, 1000);
    EXPECT_FALSE(partition(adversary, m, Heuristic::kBestFitDecreasing).feasible);
    // The same weights as a Pfair system: total < m + 1 but > m would be
    // infeasible for anyone; scale to exactly m tasks' worth that PD2
    // handles: here total = (m+1)(1+eps)/2 <= m for m >= 2.
    TaskSet set;
    for (const Rational& w : adversary) set.add(make_task(w.num(), w.den()));
    ASSERT_TRUE(set.feasible_on(m));
    PfairConfig sc;
    sc.processors = m;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(2000);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "m=" << m;
  }
}

// Claim (Sec. 4): the Eq.-(3) fixed point converges within ~5
// iterations across the whole Fig.-3 workload space.
TEST(PaperClaims, Sec4FixedPointConvergence) {
  const OverheadParams params;
  Rng rng(0x1234);
  for (const int n : {50, 100, 250}) {
    for (const double mean_u : {1.0 / 30.0, 1.0 / 10.0, 1.0 / 3.0}) {
      Rng trial_rng = rng.fork(static_cast<std::uint64_t>(n * 1000) +
                               static_cast<std::uint64_t>(mean_u * 100));
      OhWorkloadConfig cfg;
      cfg.n_tasks = static_cast<std::size_t>(n);
      cfg.total_utilization = mean_u * n;
      const std::vector<OhTask> tasks = generate_oh_tasks(cfg, trial_rng);
      for (const OhTask& t : tasks) {
        const Pd2Inflation inf = inflate_pd2(t, params, tasks.size(), 16);
        ASSERT_TRUE(inf.feasible);
        EXPECT_LE(inf.iterations, 5);
      }
    }
  }
}

// Claim (Fig. 3 shape): at high per-task utilizations PD2 requires no
// more processors than EDF-FF (bin-packing fragmentation dominates),
// while at low utilizations the two are close.
TEST(PaperClaims, Fig3CrossoverShape) {
  const OverheadParams params;
  Rng rng(0x3333);
  RunningStats low_gap;   // PD2 - EDFFF at mean util 1/30
  RunningStats high_gap;  // at mean util 1/3
  for (int s = 0; s < 40; ++s) {
    for (const bool high : {false, true}) {
      Rng trial_rng = rng.fork(static_cast<std::uint64_t>(s) * 2 + (high ? 1 : 0));
      OhWorkloadConfig cfg;
      cfg.n_tasks = 50;
      cfg.total_utilization = high ? 50.0 / 3.0 : 50.0 / 30.0;
      const std::vector<OhTask> tasks = generate_oh_tasks(cfg, trial_rng);
      const auto pd2 = pd2_min_processors(tasks, params);
      const auto ff = edf_ff_partition(tasks, params);
      ASSERT_TRUE(pd2.has_value());
      ASSERT_TRUE(ff.feasible);
      (high ? high_gap : low_gap).add(static_cast<double>(*pd2 - ff.processors));
    }
  }
  // Low utilization: nearly identical (within half a processor on average).
  EXPECT_LE(std::abs(low_gap.mean()), 0.5);
  // High utilization: PD2 at least as good on average.
  EXPECT_LE(high_gap.mean(), 0.25);
}

// Claim (Sec. 4 context-switch accounting): simulated EDF context
// switches stay below the analytic 2-per-job bound used by Eq. (3),
// and simulated PD2 per-job preemptions below min(E-1, P-E).
TEST(PaperClaims, Sec4AccountingBoundsAreSound) {
  Rng rng(0x4444);
  const std::vector<UniTask> uni = generate_uni_tasks(rng, 10, 0.9, 500);
  UniSimConfig uc;
  uc.algorithm = UniAlgorithm::kEDF;
  UniprocSimulator usim(uni, uc);
  usim.run_until(50000);
  EXPECT_LE(usim.metrics().context_switches, 2 * usim.metrics().jobs_released);

  const TaskSet set = generate_feasible_taskset(rng, 2, 8, 12, /*fill=*/true);
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  std::vector<TaskId> ids;
  for (const Task& t : set.tasks()) ids.push_back(sim.add_task(t));
  sim.run_until(4000);
  ASSERT_EQ(sim.metrics().deadline_misses, 0u);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const Task& t = set[static_cast<TaskId>(k)];
    EXPECT_LE(sim.max_job_preemptions(ids[k]),
              std::min(t.execution - 1, t.period - t.execution));
  }
}

// Claim (Sec. 2 / abstract): PD2 optimally schedules periodic, ERfair
// and IS systems — one combined stress: a mixed system of all three
// kinds at full utilization with a mid-run join and a legal leave.
TEST(PaperClaims, MixedModelFullLoadStress) {
  PfairConfig sc;
  sc.processors = 3;
  PfairSimulator sim(sc);
  sim.add_task(make_task(1, 2, TaskKind::kPeriodic));
  sim.add_task(make_task(2, 3, TaskKind::kEarlyRelease));
  sim.add_task(make_task(3, 4, TaskKind::kIntraSporadic));  // on-time arrivals
  const TaskId leaver = sim.add_task(make_task(1, 12, TaskKind::kPeriodic));
  sim.run_until(100);
  const Time freed = sim.request_leave(leaver).value();
  sim.run_until(freed);
  const auto joined = sim.join(make_task(1, 12, TaskKind::kEarlyRelease));
  EXPECT_TRUE(joined.has_value());
  sim.run_until(2000);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

}  // namespace
}  // namespace pfair
