// The Tier-2 exact global-EDF/RM test, held to first principles and to
// the job-level simulator it makes statements about.
#include "serve/exact_gedf.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/global_job_sim.h"
#include "util/math.h"
#include "util/rng.h"

namespace pfair::serve {
namespace {

TEST(ExactGedf, EmptySetIsSchedulable) {
  const GedfResult r = exact_global_schedulable({}, 2);
  EXPECT_EQ(r.verdict, GedfVerdict::kSchedulable);
}

TEST(ExactGedf, InvalidTaskIsUnschedulable) {
  const GedfResult r = exact_global_schedulable({UniTask{0, 5}}, 2);
  EXPECT_EQ(r.verdict, GedfVerdict::kUnschedulable);
  EXPECT_EQ(r.first_miss, 0);
}

TEST(ExactGedf, FullUtilizationSingleTaskFits) {
  const GedfResult r = exact_global_schedulable({UniTask{4, 4}}, 1);
  EXPECT_EQ(r.verdict, GedfVerdict::kSchedulable);
  EXPECT_EQ(r.hyperperiod, 4);
}

TEST(ExactGedf, DhallStyleOverloadMissesDespiteSpareUtilization) {
  // Two light tasks monopolise both processors first, so the heavy task
  // cannot finish by 11 even though U = 1.909 < m = 2: the effect the
  // GFB density bound exists to exclude and Tier 2 must find exactly.
  const std::vector<UniTask> dhall = {{5, 10}, {5, 10}, {10, 11}};
  const GedfResult r = exact_global_schedulable(dhall, 2);
  EXPECT_EQ(r.verdict, GedfVerdict::kUnschedulable);
  EXPECT_EQ(r.first_miss, 11);
}

TEST(ExactGedf, BudgetExhaustionIsReportedNotGuessed) {
  const std::vector<UniTask> dhall = {{5, 10}, {5, 10}, {10, 11}};
  const GedfResult r =
      exact_global_schedulable(dhall, 2, UniAlgorithm::kEDF, /*max_events=*/1);
  EXPECT_EQ(r.verdict, GedfVerdict::kBudgetExceeded);
  EXPECT_LE(r.events, 1u);
}

TEST(ExactGedf, VerdictNamesAreStable) {
  EXPECT_STREQ(to_string(GedfVerdict::kSchedulable), "schedulable");
  EXPECT_STREQ(to_string(GedfVerdict::kUnschedulable), "unschedulable");
  EXPECT_STREQ(to_string(GedfVerdict::kBudgetExceeded), "budget-exceeded");
}

/// The exact test claims to be a statement about GlobalJobSimulator:
/// schedulable iff the simulator stays miss-free through H.  Hold the
/// two to each other over seeded random sets (periods drawn from a
/// divisor-friendly pool so hyperperiods stay small enough to simulate).
void differential_sweep(UniAlgorithm algorithm) {
  const std::int64_t periods[] = {2, 3, 4, 6, 8, 12};
  Rng rng(algorithm == UniAlgorithm::kEDF ? 101 : 202);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 3));
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 5));
    std::vector<UniTask> tasks;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t p = periods[rng.uniform_int(0, 5)];
      tasks.push_back(UniTask{rng.uniform_int(1, p), p});
    }
    Time h = 1;
    for (const UniTask& t : tasks) h = saturating_lcm(h, t.period);

    const GedfResult exact = exact_global_schedulable(tasks, m, algorithm);
    ASSERT_NE(exact.verdict, GedfVerdict::kBudgetExceeded);

    GlobalJobConfig cfg;
    cfg.processors = m;
    cfg.algorithm = algorithm;
    GlobalJobSimulator sim(tasks, cfg);
    sim.run_until(h + 1);
    const bool sim_clean = sim.metrics().deadline_misses == 0;
    EXPECT_EQ(exact.verdict == GedfVerdict::kSchedulable, sim_clean)
        << "trial " << trial << ": m=" << m << " n=" << n
        << " exact=" << to_string(exact.verdict)
        << " sim_misses=" << sim.metrics().deadline_misses;
  }
}

TEST(ExactGedf, AgreesWithGlobalJobSimulatorUnderEdf) {
  differential_sweep(UniAlgorithm::kEDF);
}

TEST(ExactGedf, AgreesWithGlobalJobSimulatorUnderRm) {
  differential_sweep(UniAlgorithm::kRM);
}

}  // namespace
}  // namespace pfair::serve
