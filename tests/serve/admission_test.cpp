// The tiered admission controller: per-kind tier semantics, exactness
// at the Eq.-(2) boundary, tier agreement, budget fallback, and the
// pending-release capacity model.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include "serve/exact_gedf.h"
#include "util/rng.h"

namespace pfair::serve {
namespace {

using engine::SchedulerKind;

AdmissionConfig config_for(SchedulerKind kind, int m,
                           UniAlgorithm algorithm = UniAlgorithm::kEDF) {
  AdmissionConfig c;
  c.kind = kind;
  c.processors = m;
  c.algorithm = algorithm;
  return c;
}

TEST(Admission, PfairEqTwoIsExactAtTheBoundary) {
  AdmissionController gate(config_for(SchedulerKind::kPfair, 2));
  // Four tasks of weight 1/2 fill two processors exactly.
  for (TaskId id = 0; id < 4; ++id) {
    const Decision d = gate.decide_join(UniTask{1, 2});
    EXPECT_TRUE(d.admit) << "task " << id;
    EXPECT_EQ(d.tier, 0);
    EXPECT_STREQ(d.reason, "eq2");
    gate.commit(id, UniTask{1, 2});
  }
  EXPECT_EQ(gate.total_weight(), Rational(2));
  // One more quantum of weight is one too many — and the gate must see
  // that exactly, not through double round-off.
  const Decision over = gate.decide_join(UniTask{1, 1000000});
  EXPECT_FALSE(over.admit);
  EXPECT_EQ(over.tier, 0);
  EXPECT_STREQ(over.reason, "eq2");
}

TEST(Admission, BfAndRunDecideExactlyAtEqTwo) {
  // BF and RUN are optimal, so Eq. (2) is exact for them too — Tier 0
  // always decides, with no Eq.-(3) overhead deduction in the way.
  for (const SchedulerKind kind : {SchedulerKind::kBf, SchedulerKind::kRun}) {
    AdmissionController gate(config_for(kind, 2));
    for (TaskId id = 0; id < 4; ++id) {
      const Decision d = gate.decide_join(UniTask{1, 2});
      EXPECT_TRUE(d.admit) << to_string(kind) << " task " << id;
      EXPECT_EQ(d.tier, 0);
      EXPECT_STREQ(d.reason, "eq2");
      gate.commit(id, UniTask{1, 2});
    }
    const Decision over = gate.decide_join(UniTask{1, 1000000});
    EXPECT_FALSE(over.admit) << to_string(kind);
    EXPECT_EQ(over.tier, 0);
    EXPECT_STREQ(over.reason, "eq2");
  }
}

TEST(Admission, InvalidTaskIsRejectedBeforeAnyTier) {
  AdmissionController gate(config_for(SchedulerKind::kPfair, 2));
  const Decision d = gate.decide_join(UniTask{5, 3});
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "invalid");
}

TEST(Admission, ReweightOfUnknownTaskIsRefused) {
  AdmissionController gate(config_for(SchedulerKind::kPfair, 2));
  const Decision d = gate.decide_reweight(7, UniTask{1, 2});
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "unknown-task");
}

TEST(Admission, ReweightExcludesTheOldWeight) {
  AdmissionController gate(config_for(SchedulerKind::kPfair, 1));
  gate.commit(0, UniTask{3, 4});
  gate.commit(1, UniTask{1, 4});
  // 3/4 -> 1/2 fits only because the old 3/4 is excluded first.
  EXPECT_TRUE(gate.decide_reweight(0, UniTask{1, 2}).admit);
  // A join of the same rate must NOT fit (the old weight still counts
  // against joins).
  EXPECT_FALSE(gate.decide_join(UniTask{1, 2}).admit);
}

TEST(Admission, ScheduledReleasesFreeCapacityOnlyWhenTheClockArrives) {
  AdmissionController gate(config_for(SchedulerKind::kPfair, 1));
  gate.commit(0, UniTask{1, 2});
  gate.commit(1, UniTask{1, 2});
  gate.schedule_release(0, 10);
  gate.advance_to(9);
  EXPECT_EQ(gate.total_weight(), Rational(1));
  EXPECT_FALSE(gate.decide_join(UniTask{1, 2}).admit);
  gate.advance_to(10);
  EXPECT_EQ(gate.total_weight(), Rational(1, 2));
  EXPECT_TRUE(gate.decide_join(UniTask{1, 2}).admit);
  EXPECT_EQ(gate.committed(), 1u);
}

TEST(Admission, ScheduledReweightSwapsWeightsAtTheSwitchOver) {
  AdmissionController gate(config_for(SchedulerKind::kPfair, 1));
  gate.commit(0, UniTask{3, 4});
  gate.schedule_reweight(0, UniTask{1, 4}, 8);
  gate.advance_to(7);
  EXPECT_EQ(gate.total_weight(), Rational(3, 4));
  gate.advance_to(8);
  EXPECT_EQ(gate.total_weight(), Rational(1, 4));
  EXPECT_EQ(gate.committed(), 1u);
}

TEST(Admission, UniprocEdfDecidesAtTierZero) {
  AdmissionController gate(config_for(SchedulerKind::kUniproc, 1));
  gate.commit(0, UniTask{1, 2});
  const Decision fits = gate.decide_join(UniTask{1, 2});
  EXPECT_TRUE(fits.admit);
  EXPECT_EQ(fits.tier, 0);
  gate.commit(1, UniTask{1, 2});
  const Decision over = gate.decide_join(UniTask{1, 100});
  EXPECT_FALSE(over.admit);
  EXPECT_EQ(over.tier, 0);
}

TEST(Admission, UniprocRmEscalatesBetweenLiuLaylandAndOne) {
  AdmissionController gate(
      config_for(SchedulerKind::kUniproc, 1, UniAlgorithm::kRM));
  // Harmonic set at U = 1: far above the LL bound, yet RM-schedulable —
  // only the exact response-time analysis (Tier 2) can say yes.
  gate.commit(0, UniTask{1, 2});
  gate.commit(1, UniTask{1, 4});
  gate.commit(2, UniTask{1, 8});
  const Decision d = gate.decide_join(UniTask{1, 8});
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.tier, 2);
  EXPECT_STREQ(d.reason, "rm-exact");
  // Below the LL bound the cheap tier answers.
  AdmissionController fresh(
      config_for(SchedulerKind::kUniproc, 1, UniAlgorithm::kRM));
  const Decision cheap = fresh.decide_join(UniTask{1, 10});
  EXPECT_TRUE(cheap.admit);
  EXPECT_EQ(cheap.tier, 0);
  EXPECT_STREQ(cheap.reason, "ll-bound");
}

TEST(Admission, PartitionedUsesLopezThenPacking) {
  AdmissionController gate(config_for(SchedulerKind::kPartitioned, 2));
  // Light tasks sit comfortably under the Lopez bound: Tier 0 answers.
  const Decision light = gate.decide_join(UniTask{1, 8});
  EXPECT_TRUE(light.admit);
  EXPECT_EQ(light.tier, 0);
  EXPECT_STREQ(light.reason, "lopez");
  // Two 4/5 tasks sum to 1.6 > the Lopez bound of 3/2 (beta = 1), so
  // Tier 0 stays silent and the actual first-fit packing answers: one
  // heavy task per processor still fits.
  gate.commit(0, UniTask{4, 5});
  const Decision heavy = gate.decide_join(UniTask{4, 5});
  EXPECT_TRUE(heavy.admit);
  EXPECT_EQ(heavy.tier, 1);
  EXPECT_STREQ(heavy.reason, "ff-packed");
  gate.commit(1, UniTask{4, 5});
  // A 2/5 task keeps total utilization at exactly m = 2 but fits on
  // neither 4/5-loaded processor: the packing says no.
  const Decision third = gate.decide_join(UniTask{2, 5});
  EXPECT_FALSE(third.admit);
  EXPECT_EQ(third.tier, 1);
  EXPECT_STREQ(third.reason, "ff-unpacked");
}

TEST(Admission, GlobalJobDhallOverloadIsCaughtByTierTwo) {
  AdmissionController gate(config_for(SchedulerKind::kGlobalJob, 2));
  gate.commit(0, UniTask{5, 10});
  gate.commit(1, UniTask{5, 10});
  const Decision d = gate.decide_join(UniTask{10, 11});
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.tier, 2);
  EXPECT_STREQ(d.reason, "exact-gedf");
  EXPECT_GT(d.exact_events, 0u);
}

TEST(Admission, BudgetExhaustionFallsBackToTierOneMarkedApprox) {
  AdmissionConfig c = config_for(SchedulerKind::kGlobalJob, 2);
  c.exact_budget = 1;  // too small to reach the miss at t = 11
  AdmissionController gate(c);
  gate.commit(0, UniTask{5, 10});
  gate.commit(1, UniTask{5, 10});
  const Decision d = gate.decide_join(UniTask{10, 11});
  EXPECT_FALSE(d.admit);
  EXPECT_TRUE(d.approx);
  EXPECT_EQ(d.tier, 1);
  EXPECT_STREQ(d.reason, "no-bound");
}

TEST(Admission, TierZeroAdmitImpliesTierTwoAdmit) {
  // The whole point of the tiering: the cheap sufficient bounds must
  // never admit something the exact test would refuse.  Sweep seeded
  // random global-EDF states; wherever Tier 0 says yes, ask Tier 2.
  Rng rng(7);
  const std::int64_t periods[] = {2, 3, 4, 6, 8, 12};
  int tier0_admits = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 3));
    AdmissionController gate(config_for(SchedulerKind::kGlobalJob, m));
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t p = periods[rng.uniform_int(0, 5)];
      const UniTask t{rng.uniform_int(1, p), p};
      if (gate.decide_join(t).admit) gate.commit(static_cast<TaskId>(i), t);
    }
    const std::int64_t p = periods[rng.uniform_int(0, 5)];
    const UniTask cand{rng.uniform_int(1, p), p};
    const std::optional<Decision> d0 = gate.tier0(cand);
    if (!d0.has_value() || !d0->admit) continue;
    ++tier0_admits;
    const std::optional<Decision> d2 = gate.tier2(cand);
    ASSERT_TRUE(d2.has_value());
    EXPECT_TRUE(d2->admit) << "trial " << trial << ": Tier 0 admitted {"
                           << cand.execution << "," << cand.period << "} on m=" << m
                           << " but the exact test refused";
  }
  EXPECT_GT(tier0_admits, 20);  // the sweep must actually exercise the claim
}

}  // namespace
}  // namespace pfair::serve
