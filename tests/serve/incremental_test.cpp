// The high-throughput admission machinery: the sharded TaskMirror and
// its multiset fingerprint, the incremental Tier-2 memo (byte-equal
// decisions with the cache on or off), batch decision parity across
// pipeline and jobs settings, the fast-path request parser against the
// DOM parser, and ObjectWriter against the dumped-Object form it
// replaces on the serving hot path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "serve/admission.h"
#include "serve/daemon.h"
#include "serve/request.h"
#include "serve/task_mirror.h"
#include "util/rng.h"

namespace pfair::serve {
namespace {

// --- TaskMirror -----------------------------------------------------

TEST(TaskMirror, MatchesAReferenceMapUnderChurn) {
  for (const int shards : {1, 4, 16}) {
    TaskMirror mirror(shards);
    std::map<TaskId, UniTask> ref;
    Rng rng(7);
    for (int step = 0; step < 4000; ++step) {
      const auto id = static_cast<TaskId>(rng.uniform_int(0, 300));
      if (rng.uniform_int(0, 2) != 0) {
        const UniTask t{rng.uniform_int(1, 9), rng.uniform_int(10, 40)};
        mirror.upsert(id, t);
        ref[id] = t;
      } else {
        EXPECT_EQ(mirror.erase(id), ref.erase(id) > 0) << "shards=" << shards;
      }
    }
    EXPECT_EQ(mirror.size(), ref.size()) << "shards=" << shards;
    Rational total(0);
    for (const auto& [id, t] : ref) {
      total = total + Rational(t.execution, t.period);
      const UniTask* found = mirror.find(id);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->execution, t.execution);
      EXPECT_EQ(found->period, t.period);
    }
    EXPECT_EQ(mirror.total(), total) << "shards=" << shards;
    EXPECT_EQ(mirror.find(static_cast<TaskId>(999)), nullptr);
  }
}

TEST(TaskMirror, TombstonedSlotsAreReusedAcrossInsertEraseCycles) {
  TaskMirror mirror(1);
  // Hammer one shard with insert/erase cycles over a small id range:
  // every erase leaves a tombstone on the probe path that the next
  // upsert of the same id must reclaim instead of growing forever.
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (TaskId id = 0; id < 8; ++id) mirror.upsert(id, UniTask{1, 4 + id});
    for (TaskId id = 0; id < 8; ++id) EXPECT_TRUE(mirror.erase(id));
  }
  EXPECT_EQ(mirror.size(), 0u);
  EXPECT_EQ(mirror.total(), Rational(0));
  mirror.upsert(3, UniTask{1, 2});
  ASSERT_NE(mirror.find(3), nullptr);
  EXPECT_EQ(mirror.total(), Rational(1, 2));
}

TEST(TaskMirror, FingerprintDependsOnTheMultisetNotArrivalOrder) {
  const UniTask kNull{0, 0};  // sentinel: fingerprint the set itself
  TaskMirror forward(16);
  TaskMirror backward(4);
  std::vector<UniTask> tasks;
  for (int i = 0; i < 40; ++i) tasks.push_back(UniTask{1 + i % 5, 10 + i % 7});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    forward.upsert(static_cast<TaskId>(i), tasks[i]);
    const std::size_t j = tasks.size() - 1 - i;
    backward.upsert(static_cast<TaskId>(j), tasks[j]);
  }
  // Same multiset, different insertion order AND different shard
  // geometry: the fingerprint is a commutative sum over tasks.
  EXPECT_EQ(forward.fingerprint_with(kNull, kNoTask),
            backward.fingerprint_with(kNull, kNoTask));

  // Ids do not feed the fingerprint — two ids swapping tasks is a no-op.
  TaskMirror swapped(16);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    swapped.upsert(static_cast<TaskId>((i + 1) % tasks.size()), tasks[i]);
  EXPECT_EQ(forward.fingerprint_with(kNull, kNoTask),
            swapped.fingerprint_with(kNull, kNoTask));

  // Distinct multisets must not collide (40 vs 39 tasks).
  TaskMirror shorter(16);
  for (std::size_t i = 0; i + 1 < tasks.size(); ++i)
    shorter.upsert(static_cast<TaskId>(i), tasks[i]);
  EXPECT_FALSE(forward.fingerprint_with(kNull, kNoTask) ==
               shorter.fingerprint_with(kNull, kNoTask));
}

TEST(TaskMirror, FingerprintWithMatchesTheActualMutation) {
  const UniTask kNull{0, 0};
  TaskMirror mirror(16);
  for (TaskId id = 0; id < 10; ++id) mirror.upsert(id, UniTask{1 + id % 3, 8 + id});
  const UniTask extra{2, 11};

  // Predicted join fingerprint == fingerprint after really joining.
  const MirrorFingerprint predicted_join = mirror.fingerprint_with(extra, kNoTask);
  TaskMirror joined = mirror;
  joined.upsert(100, extra);
  EXPECT_EQ(predicted_join, joined.fingerprint_with(kNull, kNoTask));

  // Predicted reweight fingerprint == fingerprint after erase+insert.
  const MirrorFingerprint predicted_rw = mirror.fingerprint_with(extra, 4);
  TaskMirror reweighted = mirror;
  reweighted.erase(4);
  reweighted.upsert(4, extra);
  EXPECT_EQ(predicted_rw, reweighted.fingerprint_with(kNull, kNoTask));

  // Leave/undo: erasing a task returns the fingerprint to its old value.
  const MirrorFingerprint before = mirror.fingerprint_with(kNull, kNoTask);
  mirror.upsert(200, extra);
  mirror.erase(200);
  EXPECT_EQ(before, mirror.fingerprint_with(kNull, kNoTask));
}

TEST(TaskMirror, WorkloadIsCanonicalInPeriodThenExecution) {
  TaskMirror a(16);
  TaskMirror b(16);
  const std::vector<UniTask> tasks = {{3, 20}, {1, 5}, {2, 20}, {1, 5}, {4, 9}};
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    a.upsert(static_cast<TaskId>(i), tasks[i]);
    b.upsert(static_cast<TaskId>(i), tasks[tasks.size() - 1 - i]);
  }
  const std::vector<UniTask> wa = a.workload_with(UniTask{0, 0}, kNoTask);
  const std::vector<UniTask> wb = b.workload_with(UniTask{0, 0}, kNoTask);
  ASSERT_EQ(wa.size(), tasks.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].period, wb[i].period);
    EXPECT_EQ(wa[i].execution, wb[i].execution);
    if (i > 0) {
      EXPECT_LE(std::make_pair(wa[i - 1].period, wa[i - 1].execution),
                std::make_pair(wa[i].period, wa[i].execution));
    }
  }
}

TEST(TaskMirror, ExclusionAggregatesDropExactlyOneTask) {
  TaskMirror mirror(16, /*track_weights=*/true);
  mirror.upsert(0, UniTask{1, 2});   // weight 1/2
  mirror.upsert(1, UniTask{3, 4});   // weight 3/4
  mirror.upsert(2, UniTask{1, 10});  // weight 1/10
  EXPECT_EQ(mirror.total_excluding(1), Rational(1, 2) + Rational(1, 10));
  EXPECT_EQ(mirror.count_excluding(1), 2u);
  EXPECT_EQ(mirror.total_excluding(kNoTask), mirror.total());
  EXPECT_EQ(mirror.total_excluding(static_cast<TaskId>(77)), mirror.total());
  // Dropping the current max exposes the runner-up against a light
  // candidate; a heavy candidate wins outright.
  EXPECT_EQ(mirror.u_max_with(Rational(1, 100), 1), Rational(1, 2));
  EXPECT_EQ(mirror.u_max_with(Rational(9, 10), kNoTask), Rational(9, 10));
}

// --- Tier-2 memoization ---------------------------------------------

AdmissionConfig gedf_config(std::size_t memo_capacity) {
  AdmissionConfig c;
  c.kind = engine::SchedulerKind::kGlobalJob;
  c.processors = 2;
  c.exact_budget = 1u << 14;  // small: keep the exact sims test-fast
  c.memo_capacity = memo_capacity;
  return c;
}

TEST(TierTwoMemo, RepeatDecisionsHitAndStayIdentical) {
  AdmissionController gate(gedf_config(1u << 10));
  // Dhall-style set: heavy task + light tasks passes Tier 0/1 checks
  // narrowly enough to force the exact test.
  gate.commit(0, UniTask{9, 10});
  gate.commit(1, UniTask{1, 10});
  const UniTask cand{5, 7};
  const Decision cold = gate.decide_join(cand);
  const std::uint64_t misses_after_cold = gate.memo_misses();
  const Decision warm = gate.decide_join(cand);
  EXPECT_GT(gate.memo_hits(), 0u);
  EXPECT_EQ(gate.memo_misses(), misses_after_cold);  // no recompute
  EXPECT_EQ(cold.admit, warm.admit);
  EXPECT_EQ(cold.tier, warm.tier);
  EXPECT_EQ(cold.approx, warm.approx);
  EXPECT_EQ(cold.exact_events, warm.exact_events);
  EXPECT_STREQ(cold.reason, warm.reason);
}

DaemonConfig storm_config(std::size_t memo_capacity, std::size_t batch, int jobs) {
  DaemonConfig c;
  c.kind = engine::SchedulerKind::kGlobalJob;
  c.processors = 2;
  c.exact_budget = 1u << 14;
  c.memo_capacity = memo_capacity;
  c.batch = batch;
  c.jobs = jobs;
  c.measure_latency = false;
  return c;
}

std::string serve_string(Daemon& d, const std::string& requests) {
  std::istringstream in(requests);
  std::ostringstream out;
  d.serve(in, out);
  return out.str();
}

std::string storm_stream() {
  GenConfig gc;
  gc.count = 400;
  gc.seed = 1234;
  gc.load = 1.8;
  gc.processors = 2;
  return generate_requests(gc);
}

TEST(TierTwoMemo, SeededStormIsByteEqualWithTheMemoOff) {
  const std::string requests = storm_stream();
  Daemon with_memo(storm_config(1u << 12, 1, 1));
  Daemon without_memo(storm_config(0, 1, 1));
  const std::string a = serve_string(with_memo, requests);
  const std::string b = serve_string(without_memo, requests);
  EXPECT_EQ(a, b);
  // The memo must actually have been exercised, not vacuously equal.
  EXPECT_GT(with_memo.controller().memo_hits(), 0u);
  EXPECT_EQ(without_memo.controller().memo_hits(), 0u);
}

TEST(Batching, PipelineAndJobsNeverChangeTheDecisionLog) {
  const std::string requests = storm_stream();
  Daemon sequential(storm_config(1u << 12, 1, 1));
  const std::string baseline = serve_string(sequential, requests);
  for (const std::size_t batch : {std::size_t{8}, std::size_t{64}}) {
    for (const int jobs : {1, 3}) {
      Daemon d(storm_config(1u << 12, batch, jobs));
      EXPECT_EQ(serve_string(d, requests), baseline)
          << "batch=" << batch << " jobs=" << jobs;
    }
  }
}

TEST(Batching, BatchLinesAnswerLikeTheirSubRequestsArrivingAlone) {
  const std::string requests = storm_stream();
  Daemon plain(storm_config(1u << 12, 1, 1));
  const std::string baseline = serve_string(plain, requests);
  for (const std::size_t size : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    Daemon d(storm_config(1u << 12, 1, 2));
    EXPECT_EQ(serve_string(d, batch_requests(requests, size)), baseline)
        << "size=" << size;
  }
}

// --- request parsing (fast path vs DOM) -----------------------------

TEST(RequestParse, FastAndSlowSpellingsAgree) {
  // Each pair is the same request spelled flat (fast-path eligible) and
  // with whitespace/escapes/duplicates that force or exercise the DOM
  // fallback.  dump_request canonicalizes, so equality of dumps is
  // equality of parses.
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {R"({"op":"join","execution":2,"period":10})",
       R"(  { "op" : "join" , "execution" : 2 , "period" : 10 }  )"},
      {R"({"op":"join","execution":2,"period":10})",
       R"({"op":"join","execution":2,"period":10})"},
      {R"({"op":"join","execution":3,"period":10})",
       R"({"op":"join","execution":1,"execution":3,"period":10})"},  // last wins
      {R"({"op":"join","execution":2,"period":100})",
       R"({"op":"join","execution":2,"period":1e2})"},
      {R"({"op":"join","execution":2,"period":4,"ignored":true})",
       R"({"op":"join","execution":2.0,"period":4,"unknown":[1,{"x":2}]})"},
      {R"({"op":"leave","task":3})", R"({"op":"leave","task":3,"name":7})"},
      {R"({"op":"advance","to":40})", R"({"op":"advance","to":40.0})"},
  };
  for (const auto& [flat, slow] : pairs) {
    const std::optional<Request> a = parse_request(flat);
    const std::optional<Request> b = parse_request(slow);
    ASSERT_TRUE(a.has_value()) << flat;
    ASSERT_TRUE(b.has_value()) << slow;
    EXPECT_EQ(dump_request(*a), dump_request(*b)) << slow;
  }
}

TEST(RequestParse, ErrorTokensMatchAcrossParserPaths) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"not json at all", "bad-json"},
      {R"({"op":"join","execution":2,"period":10} trailing)", "bad-json"},
      {R"({"op":"frobnicate"})", "bad-op"},
      {R"({"op":42})", "bad-op"},
      {R"({"op":"join","execution":1})", "bad-field"},
      {R"({"op":"join","execution":1.5,"period":10})", "bad-field"},
      {R"({"op":"join","execution":1,"period":1e19})", "bad-field"},
      {R"({"op":"leave","task":-1})", "bad-field"},
      {R"({"op":"leave"})", "bad-field"},
  };
  for (const auto& [line, want] : cases) {
    std::string error;
    EXPECT_FALSE(parse_request(line, &error).has_value()) << line;
    EXPECT_EQ(error, want) << line;
  }
}

TEST(RequestParse, BatchesCarrySubRequestsAndNeverNest) {
  const std::string requests =
      "{\"op\":\"join\",\"execution\":1,\"period\":4}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"advance\",\"to\":8}\n";
  const std::string batched = batch_requests(requests, 3);
  EXPECT_EQ(std::count(batched.begin(), batched.end(), '\n'), 1);
  const std::optional<Request> b =
      parse_request(batched.substr(0, batched.find('\n')));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->op, RequestOp::kBatch);
  ASSERT_EQ(b->batch.size(), 3u);
  EXPECT_EQ(b->batch[0].op, RequestOp::kJoin);
  EXPECT_EQ(b->batch[2].to, 8);

  std::string error;
  const std::string nested =
      R"({"op":"batch","requests":[{"op":"batch","requests":[{"op":"query"}]}]})";
  EXPECT_FALSE(parse_request(nested, &error).has_value());
  EXPECT_EQ(error, "bad-field");
  EXPECT_FALSE(parse_request(R"({"op":"batch","requests":[]})").has_value());
}

TEST(RequestParse, DumpRoundTripsEveryGeneratedLine) {
  GenConfig gc;
  gc.count = 300;
  gc.seed = 5;
  std::istringstream in(generate_requests(gc));
  std::string line;
  while (std::getline(in, line)) {
    const std::optional<Request> r = parse_request(line);
    ASSERT_TRUE(r.has_value()) << line;
    EXPECT_EQ(dump_request(*r), line);
  }
}

// --- ObjectWriter ---------------------------------------------------

TEST(ObjectWriter, MatchesTheDumpedObjectForm) {
  using obs::json::Object;
  using obs::json::Value;
  Object o;
  o.emplace("admit", Value(true));
  o.emplace("events", Value(static_cast<double>(std::int64_t{1} << 53)));
  o.emplace("op", Value(std::string("join")));
  o.emplace("reason", Value(std::string("quote\"slash\\tab\tctl\x01")));
  o.emplace("seq", Value(-42.0));
  o.emplace("zero", Value(0.0));

  std::string streamed;
  obs::json::ObjectWriter w(streamed);
  w.field_bool("admit", true)
      .field_int("events", std::int64_t{1} << 53)
      .field_str("op", "join")
      .field_str("reason", "quote\"slash\\tab\tctl\x01")
      .field_int("seq", -42)
      .field_int("zero", 0);
  w.finish();
  EXPECT_EQ(streamed, Value(o).dump());

  std::string empty;
  obs::json::ObjectWriter e(empty);
  e.finish();
  EXPECT_EQ(empty, Value(Object{}).dump());
}

}  // namespace
}  // namespace pfair::serve
