// The pfaird request loop: protocol errors, the determinism contract,
// registry publication, and a storm-profile fuzz pass proving the gate
// never lets the simulator into a deadline miss.
#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "qa/gen.h"
#include "serve/request.h"

namespace pfair::serve {
namespace {

DaemonConfig pfair_config(int processors) {
  DaemonConfig c;
  c.kind = engine::SchedulerKind::kPfair;
  c.processors = processors;
  return c;
}

std::string serve_string(Daemon& d, const std::string& requests) {
  std::istringstream in(requests);
  std::ostringstream out;
  d.serve(in, out);
  return out.str();
}

TEST(Daemon, EveryLineGetsExactlyOneAnswer) {
  Daemon d(pfair_config(2));
  const std::string out = serve_string(
      d, "{\"op\":\"join\",\"execution\":1,\"period\":4}\n"
         "{\"op\":\"query\"}\n"
         "{\"op\":\"advance\",\"to\":8}\n");
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(d.stats().requests, 3u);
  EXPECT_EQ(d.stats().admits, 1u);
  EXPECT_EQ(d.simulator().now(), 8);
}

TEST(Daemon, MalformedLinesAnswerWithStableErrorTokens) {
  Daemon d(pfair_config(1));
  EXPECT_NE(d.process_line("this is not json").find("\"bad-json\""),
            std::string::npos);
  EXPECT_NE(d.process_line("{\"op\":\"frobnicate\"}").find("\"bad-op\""),
            std::string::npos);
  EXPECT_NE(d.process_line("{\"op\":\"join\",\"execution\":1}").find("\"bad-field\""),
            std::string::npos);
  EXPECT_EQ(d.stats().errors, 3u);
  EXPECT_EQ(d.stats().requests, 3u);
}

TEST(Daemon, StaticKindsRefuseDynamicRequests) {
  DaemonConfig c;
  c.kind = engine::SchedulerKind::kUniproc;
  Daemon d(c);
  ASSERT_NE(d.process_line("{\"op\":\"join\",\"execution\":1,\"period\":4}")
                .find("\"admit\":true"),
            std::string::npos);
  EXPECT_NE(d.process_line("{\"op\":\"leave\",\"task\":0}").find("\"not-dynamic\""),
            std::string::npos);
  EXPECT_NE(d.process_line(
                 "{\"op\":\"reweight\",\"task\":0,\"execution\":1,\"period\":8}")
                .find("\"not-dynamic\""),
            std::string::npos);
  EXPECT_EQ(d.stats().errors, 2u);
}

TEST(Daemon, DecisionLogIsByteIdenticalAcrossRunsAndLatencyModes) {
  GenConfig gen;
  gen.count = 400;
  gen.seed = 9;
  gen.processors = 2;
  const std::string requests = generate_requests(gen);

  Daemon a(pfair_config(2));
  Daemon b(pfair_config(2));
  DaemonConfig no_latency = pfair_config(2);
  no_latency.measure_latency = false;  // wall-clock must never leak into output
  Daemon c(no_latency);

  const std::string out_a = serve_string(a, requests);
  EXPECT_EQ(out_a, serve_string(b, requests));
  EXPECT_EQ(out_a, serve_string(c, requests));
  EXPECT_EQ(c.stats().latency_count, 0u);
  EXPECT_EQ(a.stats().admits, b.stats().admits);
}

TEST(Daemon, AdvancePerRequestKeepsTheQuantumLoopRunning) {
  DaemonConfig c = pfair_config(1);
  c.advance_per_request = 3;
  Daemon d(c);
  (void)d.process_line("{\"op\":\"join\",\"execution\":1,\"period\":4}");
  (void)d.process_line("{\"op\":\"query\"}");
  EXPECT_EQ(d.simulator().now(), 6);
}

TEST(Daemon, PublishRegistryMirrorsTheStats) {
  obs::MetricsRegistry::global().reset_values();
  Daemon d(pfair_config(2));
  GenConfig gen;
  gen.count = 120;
  gen.seed = 4;
  gen.processors = 2;
  (void)serve_string(d, generate_requests(gen));
  d.publish_registry();
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter("serve.requests").value(), d.stats().requests);
  EXPECT_EQ(reg.counter("serve.admits").value(), d.stats().admits);
  EXPECT_EQ(reg.counter("serve.rejects").value(), d.stats().rejects);
  EXPECT_EQ(reg.counter("serve.tier0").value(), d.stats().tier0);
  const std::string snap = reg.snapshot_json();
  EXPECT_NE(snap.find("\"serve.decision\""), std::string::npos);
  obs::MetricsRegistry::global().reset_values();
}

/// Converts a qa storm case into the daemon's request stream: the base
/// tasks join at t=0 (validate() guarantees they are Pfair-feasible, so
/// the Eq.-(2) gate admits them all and their daemon ids are 0..n-1 —
/// which is exactly what the case's leave script indexes), then the
/// join/leave storm replays in time order via advance requests.
std::string storm_requests(const qa::FuzzCase& c) {
  std::string out;
  for (const Task& t : c.tasks.tasks()) {
    Request r;
    r.op = RequestOp::kJoin;
    r.execution = t.execution;
    r.period = t.period;
    out += dump_request(r) + "\n";
  }
  std::vector<std::pair<Time, Request>> timed;
  for (const qa::JoinEvent& j : c.joins) {
    Request r;
    r.op = RequestOp::kJoin;
    r.execution = j.task.execution;
    r.period = j.task.period;
    timed.emplace_back(j.at, r);
  }
  for (const qa::LeaveEvent& l : c.leaves) {
    Request r;
    r.op = RequestOp::kLeave;
    r.task = l.task;
    timed.emplace_back(l.at, r);
  }
  std::stable_sort(timed.begin(), timed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  Time clock = 0;
  for (const auto& [at, r] : timed) {
    if (at > clock) {
      Request adv;
      adv.op = RequestOp::kAdvance;
      adv.to = at;
      out += dump_request(adv) + "\n";
      clock = at;
    }
    out += dump_request(r) + "\n";
  }
  return out;
}

TEST(Daemon, StormFuzzCasesStayMissFreeThroughTheGate) {
  // The acceptance property: whatever the admission gate lets through,
  // the Pfair simulator must schedule without a deadline miss.  Rejected
  // joins and unknown-task leaves are fine; misses are not.
  qa::GenConfig gen;
  gen.only_profile = qa::Profile::kStorm;
  gen.max_processors = 3;
  const qa::TaskSetGen source(gen, 77);
  for (std::uint64_t index = 0; index < 25; ++index) {
    const qa::FuzzCase c = source.make_case(index);
    ASSERT_EQ(qa::validate(c), "") << "case " << index;
    Daemon d(pfair_config(c.processors));
    std::istringstream in(storm_requests(c));
    std::ostringstream out;
    d.serve(in, out);
    // Every base task must have been admitted for the leave script's
    // indices to mean what the case meant.
    ASSERT_GE(d.stats().admits, c.tasks.size()) << "case " << index;
    d.simulator().run_until(c.horizon);
    EXPECT_EQ(d.simulator().metrics().deadline_misses, 0u)
        << "case " << index << " (seed 77, profile storm)";
  }
}

}  // namespace
}  // namespace pfair::serve
