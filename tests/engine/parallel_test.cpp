// engine::ThreadPool / engine::ParallelSweep, the counter-based RNG
// streams underneath them, the golden --jobs determinism contract of
// the harness JSON, and the factory round-trip (make_simulator vs
// direct construction) for every SchedulerKind.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/factory.h"
#include "engine/harness.h"
#include "engine/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace pfair::engine {
namespace {

// --- ThreadPool -----------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::default_workers(), 1);
  ThreadPool pool;  // default-sized
  EXPECT_EQ(pool.workers(), ThreadPool::default_workers());
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
    // No wait(): destruction itself must let the queue drain.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitRethrowsFirstJobError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error slot is cleared: the pool is reusable afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  pool.wait();
}

// --- counter-based RNG streams --------------------------------------

TEST(RngStream, PureFunctionOfSeedAndStream) {
  // Same (seed, stream) -> identical sequence, regardless of what other
  // streams were derived before (no hidden shared state).
  Rng a = Rng::stream(42, 7);
  (void)Rng::stream(42, 3);
  (void)Rng::stream(9, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, DistinctStreamsDiverge) {
  Rng a = Rng::stream(42, 0);
  Rng b = Rng::stream(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);  // independent streams collide rarely
}

TEST(RngStream, SeedSeparatesFamilies) {
  EXPECT_NE(Rng::derive_stream_seed(1, 5), Rng::derive_stream_seed(2, 5));
  EXPECT_NE(Rng::derive_stream_seed(1, 5), Rng::derive_stream_seed(1, 6));
}

// --- ParallelSweep --------------------------------------------------

std::vector<double> sweep_once(int jobs, std::uint64_t seed, long long trials) {
  ParallelSweep sweep(jobs, seed);
  return sweep.run(3, trials, [](long long, Rng& rng) {
    double acc = 0.0;
    for (int i = 0; i < 50; ++i) acc += rng.uniform01();
    return acc;
  });
}

TEST(ParallelSweep, ResultsIdenticalAcrossWorkerCounts) {
  const std::vector<double> serial = sweep_once(1, 99, 300);
  for (const int jobs : {2, 3, 8}) {
    const std::vector<double> par = sweep_once(jobs, 99, 300);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(par[i], serial[i]) << "trial " << i << " jobs " << jobs;
  }
}

TEST(ParallelSweep, TrialIndexMatchesResultSlot) {
  ParallelSweep sweep(4, 1);
  const std::vector<long long> out =
      sweep.run(0, 100, [](long long trial, Rng&) { return trial; });
  for (long long i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ParallelSweep, DistinctPointsDrawDistinctWorkloads) {
  ParallelSweep sweep(1, 7);
  const auto a = sweep.run(1, 4, [](long long, Rng& rng) { return rng.next(); });
  const auto b = sweep.run(2, 4, [](long long, Rng& rng) { return rng.next(); });
  EXPECT_NE(a, b);
}

TEST(ParallelSweep, ZeroTrialsYieldsEmpty) {
  ParallelSweep sweep(4, 1);
  EXPECT_TRUE(sweep_once(4, 1, 0).empty());
  (void)sweep;
}

TEST(ParallelSweep, TrialExceptionPropagates) {
  ParallelSweep sweep(4, 1);
  EXPECT_THROW(sweep.run(0, 64,
                         [](long long trial, Rng&) -> int {
                           if (trial == 17) throw std::runtime_error("trial 17");
                           return 0;
                         }),
               std::runtime_error);
}

// --- golden determinism: harness JSON across --jobs -----------------

// A miniature bench body: same sweep, merged into RunningStats rows in
// trial order, reported through the harness.  The JSON must be
// byte-identical for --jobs 1 and --jobs 8.
std::string mini_bench_json(const std::string& jobs_flag) {
  std::vector<std::string> raw = {"bench", "--trials=64", "--seed=5", jobs_flag};
  std::vector<char*> argv;
  argv.reserve(raw.size());
  for (std::string& s : raw) argv.push_back(s.data());
  ExperimentHarness h("mini", static_cast<int>(argv.size()), argv.data());
  ParallelSweep sweep(h.jobs(), h.seed(1));
  for (int pt = 0; pt < 3; ++pt) {
    const std::vector<double> vals = sweep.run(
        static_cast<std::uint64_t>(pt), h.trials(10), [&](long long, Rng& rng) {
          const std::vector<UniTask> ts = generate_uni_tasks(rng, 8, 2.0, 64);
          double u = 0.0;
          for (const UniTask& t : ts) u += t.utilization();
          return u;
        });
    RunningStats st;
    for (const double v : vals) st.add(v);
    h.add_row().set("point", static_cast<long long>(pt)).set("util", st);
  }
  return h.to_json();
}

TEST(ParallelSweep, HarnessJsonByteIdenticalAcrossJobs) {
  const std::string serial = mini_bench_json("--jobs=1");
  EXPECT_EQ(serial, mini_bench_json("--jobs=8"));
  EXPECT_EQ(serial, mini_bench_json("--jobs=3"));
  // --jobs must not leak into the report at all.
  EXPECT_EQ(serial.find("jobs"), std::string::npos);
}

// --- factory round-trip ---------------------------------------------

TEST(Factory, KindNamesRoundTrip) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto back = scheduler_kind_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(scheduler_kind_from_string("no-such-scheduler").has_value());
}

void expect_metrics_equal(const Metrics& a, const Metrics& b, const char* label) {
  EXPECT_EQ(a.slots, b.slots) << label;
  EXPECT_EQ(a.jobs_released, b.jobs_released) << label;
  EXPECT_EQ(a.jobs_completed, b.jobs_completed) << label;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << label;
  EXPECT_EQ(a.preemptions, b.preemptions) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.context_switches, b.context_switches) << label;
  EXPECT_EQ(a.scheduler_invocations, b.scheduler_invocations) << label;
  EXPECT_EQ(a.first_miss_time, b.first_miss_time) << label;
  EXPECT_EQ(a.response_time.count(), b.response_time.count()) << label;
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean()) << label;
}

TEST(Factory, EverySimulatorMatchesDirectConstruction) {
  // One modest feasible workload, admitted both through the factory
  // simulator and through a directly-constructed twin; the unified
  // metrics must agree field for field after the same horizon.
  const std::vector<UniTask> tasks = {{1, 4}, {2, 8}, {1, 5}, {3, 16}};
  SimulatorConfig cfg;
  cfg.pfair.processors = 2;
  cfg.partitioned.max_processors = 2;
  cfg.global_job.processors = 2;

  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const std::unique_ptr<Simulator> via_factory = make_simulator(kind, cfg);
    ASSERT_NE(via_factory, nullptr) << to_string(kind);
    std::unique_ptr<Simulator> direct;
    switch (kind) {
      case SchedulerKind::kPfair:
        direct = std::make_unique<PfairSimulator>(cfg.pfair);
        break;
      case SchedulerKind::kPartitioned:
        direct = std::make_unique<PartitionedSimulator>(std::vector<UniTask>{},
                                                        cfg.partitioned);
        break;
      case SchedulerKind::kGlobalJob:
        direct = std::make_unique<GlobalJobSimulator>(std::vector<UniTask>{},
                                                      cfg.global_job);
        break;
      case SchedulerKind::kUniproc:
        direct = std::make_unique<UniprocSimulator>(std::vector<UniTask>{},
                                                    cfg.uniproc);
        break;
      case SchedulerKind::kWrr:
        direct = std::make_unique<WrrSimulator>(TaskSet{}, cfg.wrr);
        break;
      case SchedulerKind::kCbs:
        direct = std::make_unique<CbsSimulator>(std::vector<UniTask>{}, cfg.cbs);
        break;
      case SchedulerKind::kBf:
        direct = std::make_unique<BfSimulator>(TaskSet{}, cfg.bf);
        break;
      case SchedulerKind::kRun:
        direct = std::make_unique<RunSimulator>(cfg.run);
        break;
    }
    for (const UniTask& t : tasks) {
      const bool a = via_factory->admit(task_spec(t.execution, t.period));
      const bool b = direct->admit(task_spec(t.execution, t.period));
      EXPECT_EQ(a, b) << to_string(kind);
    }
    via_factory->run_until(200);
    direct->run_until(200);
    EXPECT_EQ(via_factory->now(), direct->now()) << to_string(kind);
    expect_metrics_equal(via_factory->metrics(), direct->metrics(), to_string(kind));
  }
}

}  // namespace
}  // namespace pfair::engine
