// engine::OverheadTimer: the branch-free disabled path must perform
// ZERO clock reads (not just discard them), and the enabled path must
// accumulate exactly what the clock says.
#include <gtest/gtest.h>

#include <cstdint>

#include "engine/metrics.h"
#include "engine/overhead_timer.h"

namespace pfair::engine {
namespace {

// A counting clock: each read returns 100ns more than the previous one.
// File-scope state because OverheadTimer::Clock is a plain function
// pointer (no captures).
std::uint64_t g_clock_reads = 0;
std::uint64_t counting_clock() noexcept {
  ++g_clock_reads;
  return g_clock_reads * 100;
}

TEST(OverheadTimer, DisabledPathNeverReadsAnyClock) {
  g_clock_reads = 0;
  // Install the counting clock BEFORE construction: if the disabled
  // timer consulted any clock source, the counter would move.
  const ScopedTestClock scoped(&counting_clock);
  OverheadTimer timer(/*enabled=*/false);
  EXPECT_FALSE(timer.enabled());
  Metrics m;
  m.sched_ns_total = 123.25;  // pre-existing value must survive bitwise
  for (int i = 0; i < 1000; ++i) {
    timer.start();
    EXPECT_EQ(timer.stop(m), 0.0);
  }
  EXPECT_EQ(timer.measure(m, [] {}), 0.0);
  EXPECT_EQ(g_clock_reads, 0u);
  EXPECT_EQ(m.sched_ns_total, 123.25);  // += 0.0, bitwise unchanged
}

TEST(OverheadTimer, EnabledTimerAccumulatesClockDeltas) {
  g_clock_reads = 0;
  const ScopedTestClock scoped(&counting_clock);
  OverheadTimer timer(/*enabled=*/true);
  EXPECT_TRUE(timer.enabled());
  Metrics m;
  timer.start();                      // read 1 -> 100
  EXPECT_EQ(timer.stop(m), 100.0);    // read 2 -> 200, delta 100
  EXPECT_EQ(timer.measure(m, [] {}), 100.0);  // reads 3+4
  EXPECT_EQ(g_clock_reads, 4u);
  EXPECT_EQ(m.sched_ns_total, 200.0);
}

TEST(OverheadTimer, OverrideOnlyAffectsTimersConstructedWhileActive) {
  g_clock_reads = 0;
  Metrics m;
  {
    const ScopedTestClock scoped(&counting_clock);
    OverheadTimer timer(/*enabled=*/true);
    timer.start();
    (void)timer.stop(m);
  }
  EXPECT_EQ(g_clock_reads, 2u);
  // Built after restore: back on steady_clock, counter stays put.
  OverheadTimer timer(/*enabled=*/true);
  timer.start();
  (void)timer.stop(m);
  EXPECT_EQ(g_clock_reads, 2u);
}

}  // namespace
}  // namespace pfair::engine
