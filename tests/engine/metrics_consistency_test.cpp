// Cross-scheduler invariants of the unified engine::Metrics, exercised
// through the engine::Simulator interface alone: the same periodic
// workload goes through PD2, WRR and partitioned EDF-FF and every
// scheduler's counters must satisfy the accounting identities the
// metrics struct promises (DESIGN.md Sec. 4).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/compare.h"
#include "engine/metrics.h"
#include "engine/simulator.h"
#include "uniproc/uni_task.h"

namespace pfair {
namespace {

// Σ weight = 2/4 + 2/4 + 1/3 + 1/5 + 2/7 ≈ 1.82 ≤ M = 2.
std::vector<UniTask> workload() {
  return {{2, 4}, {2, 4}, {1, 3}, {1, 5}, {2, 7}};
}

constexpr int kProcessors = 2;
constexpr Time kHorizon = 420;  // lcm(4,3,5,7) = 420: whole hyperperiod

std::vector<engine::SchedulerSpec> quantum_specs() {
  WrrConfig wc;
  wc.processors = kProcessors;
  wc.frame = 16;
  return {engine::pd2_spec(kProcessors), engine::wrr_spec(wc)};
}

TEST(EngineMetrics, QuantumSimsAccountEverySlot) {
  // busy + idle must equal slots x processors for every quantum-driven
  // scheduler, no matter how it fills the slots.
  for (auto& spec : quantum_specs()) {
    auto sim = spec.make(workload());
    ASSERT_NE(sim, nullptr) << spec.name;
    sim->run_until(kHorizon);
    const engine::Metrics& m = sim->metrics();
    EXPECT_EQ(m.slots, static_cast<std::uint64_t>(kHorizon)) << spec.name;
    EXPECT_EQ(m.busy_quanta + m.idle_quanta,
              m.slots * static_cast<std::uint64_t>(kProcessors))
        << spec.name;
  }
}

TEST(EngineMetrics, ContextSwitchesDominatePreemptions) {
  // A preemption charges the later switch-in of the preempted task, so
  // switch-ins can never undercount preemptions — under any scheduler.
  WrrConfig wc;
  wc.processors = kProcessors;
  wc.frame = 16;
  PartitionConfig pc;
  pc.max_processors = kProcessors;
  const std::vector<engine::SchedulerSpec> specs = {
      engine::pd2_spec(kProcessors), engine::wrr_spec(wc),
      engine::partitioned_spec("EDF-FF", pc)};
  const auto results = engine::compare_schedulers(workload(), specs, kHorizon);
  ASSERT_EQ(results.size(), specs.size());
  for (const engine::CompareResult& r : results) {
    ASSERT_TRUE(r.feasible) << r.name;
    EXPECT_GE(r.metrics.context_switches, r.metrics.preemptions) << r.name;
  }
}

TEST(EngineMetrics, Pd2MissFreeWithinCapacity) {
  // Pfair optimality via the unified counters: Σ wt ≤ M ⇒ no miss, and
  // the sentinel first_miss_time stays -1.
  auto sim = engine::pd2_spec(kProcessors).make(workload());
  ASSERT_NE(sim, nullptr);
  sim->run_until(10 * kHorizon);
  EXPECT_EQ(sim->metrics().deadline_misses, 0u);
  EXPECT_EQ(sim->metrics().first_miss_time, -1);
}

TEST(EngineMetrics, AdmissionThroughTheInterface) {
  // Tasks admitted via engine::Simulator::admit() are indistinguishable
  // from constructor-loaded ones.
  auto loaded = engine::pd2_spec(kProcessors).make(workload());
  ASSERT_NE(loaded, nullptr);

  auto grown = engine::pd2_spec(kProcessors).make({});
  ASSERT_NE(grown, nullptr);
  for (const UniTask& t : workload())
    EXPECT_TRUE(grown->admit(engine::task_spec(t.execution, t.period)));

  loaded->run_until(kHorizon);
  grown->run_until(kHorizon);
  EXPECT_EQ(loaded->metrics().busy_quanta, grown->metrics().busy_quanta);
  EXPECT_EQ(loaded->metrics().jobs_completed, grown->metrics().jobs_completed);
  EXPECT_EQ(loaded->metrics().deadline_misses, grown->metrics().deadline_misses);
}

TEST(EngineMetrics, MergeTakesMaxOfSlotsNotSum) {
  // Per-processor schedulers of one partitioned system simulate the
  // same wall-clock slots: merging must not report P x the horizon.
  engine::Metrics a;
  a.slots = 420;
  a.busy_quanta = 100;
  engine::Metrics b;
  b.slots = 420;
  b.busy_quanta = 150;
  a.merge(b);
  EXPECT_EQ(a.slots, 420u);
  EXPECT_EQ(a.busy_quanta, 250u);  // per-processor work still sums

  engine::Metrics c;
  c.slots = 500;  // a processor that ran longer dominates
  a.merge(c);
  EXPECT_EQ(a.slots, 500u);
  a.merge(engine::Metrics{});  // merging an idle processor changes nothing
  EXPECT_EQ(a.slots, 500u);
}

TEST(EngineMetrics, MergeSumsCountersAndKeepsEarliestMiss) {
  engine::Metrics a;
  a.busy_quanta = 3;
  a.fast_forwarded_slots = 11;
  a.scheduling_points = 9;
  a.record_miss(10);
  a.response_time.add(2.0);
  engine::Metrics b;
  b.busy_quanta = 4;
  b.fast_forwarded_slots = 5;
  b.scheduling_points = 6;
  b.record_miss(7);
  b.response_time.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.busy_quanta, 7u);
  EXPECT_EQ(a.fast_forwarded_slots, 16u);  // sum semantics (work skipped)
  EXPECT_EQ(a.scheduling_points, 15u);     // invocation work also sums
  EXPECT_EQ(a.deadline_misses, 2u);
  EXPECT_EQ(a.first_miss_time, 7);
  EXPECT_EQ(a.response_time.count(), 2u);
}

}  // namespace
}  // namespace pfair
