// ExperimentHarness: flag parsing and the JSON report every bench
// binary now emits under --json.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/harness.h"

namespace pfair::engine {
namespace {

// argv helper: harness only reads, but argv is char** by convention.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(Harness, ParsesEqualsAndSpaceSeparatedFlags) {
  Argv a({"bench", "--trials=7", "--horizon", "1234", "--seed=99", "--alpha=2.5"});
  ExperimentHarness h("t", a.argc(), a.argv());
  EXPECT_EQ(h.trials(10), 7);
  EXPECT_EQ(h.horizon(50), 1234);
  EXPECT_EQ(h.seed(), 99u);
  EXPECT_DOUBLE_EQ(h.flag_double("alpha", 0.0), 2.5);
  EXPECT_FALSE(h.json());
}

TEST(Harness, FallbacksWhenAbsentOrMalformed) {
  Argv a({"bench", "--trials=notanumber", "ignored_positional"});
  ExperimentHarness h("t", a.argc(), a.argv());
  EXPECT_EQ(h.trials(10), 10);
  EXPECT_EQ(h.horizon(5000), 5000);
  EXPECT_EQ(h.flag("absent", -3), -3);
}

TEST(Harness, IgnoresForeignFlags) {
  // google-benchmark flags must pass through harmlessly (shared main).
  Argv a({"bench", "--benchmark_filter=BM_Foo", "--trials=3"});
  ExperimentHarness h("t", a.argc(), a.argv());
  EXPECT_EQ(h.trials(1), 3);
}

// Minimal structural JSON check: balanced braces/brackets outside
// strings, and every expected key present.
void expect_balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Harness, ToJsonIsWellFormedAndComplete) {
  Argv a({"bench", "--trials=2", "--json"});
  ExperimentHarness h("jsontest", a.argc(), a.argv());
  EXPECT_TRUE(h.json());
  (void)h.trials(5);  // looked-up flag -> echoed into params
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  h.add_row()
      .set("point", 1LL)
      .set("value", 0.5)
      .set("label", std::string("a \"quoted\" name"))
      .set("series", stats);
  const std::string j = h.to_json();
  expect_balanced_json(j);
  EXPECT_NE(j.find("\"bench\":\"jsontest\""), std::string::npos);
  EXPECT_NE(j.find("\"trials\":2"), std::string::npos);
  EXPECT_NE(j.find("\"point\":1"), std::string::npos);
  EXPECT_NE(j.find("\"mean\":2"), std::string::npos);
  EXPECT_NE(j.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(h.row_count(), 1u);
}

TEST(Harness, FinishWritesTheReportOnlyWithJsonFlag) {
  const std::string path = "harness_test_report.json";
  std::remove(path.c_str());
  {
    Argv a({"bench", "--json=" + path});
    ExperimentHarness h("writetest", a.argc(), a.argv());
    h.add_row().set("x", 1LL);
    EXPECT_EQ(h.json_path(), path);
    EXPECT_EQ(h.finish(), 0);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    expect_balanced_json(buf.str());
    EXPECT_NE(buf.str().find("\"writetest\""), std::string::npos);
  }
  std::remove(path.c_str());
  {
    Argv a({"bench"});
    ExperimentHarness h("writetest", a.argc(), a.argv());
    std::remove(h.json_path().c_str());
    h.add_row().set("x", 1LL);
    EXPECT_EQ(h.finish(4), 4);  // exit code passes through
    std::ifstream in(h.json_path());
    EXPECT_FALSE(in.good());  // no --json, no file
  }
}

TEST(Harness, NonFiniteValuesSerializeAsNull) {
  Argv a({"bench"});
  ExperimentHarness h("nan", a.argc(), a.argv());
  h.add_row().set("bad", 0.0 / 0.0).set("inf", 1.0 / 0.0);
  const std::string j = h.to_json();
  expect_balanced_json(j);
  EXPECT_NE(j.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(j.find("\"inf\":null"), std::string::npos);
}

}  // namespace
}  // namespace pfair::engine
