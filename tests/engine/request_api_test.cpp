// Conformance of the redesigned dynamic-task request API across every
// factory kind: TaskSpec admission, capability probing, reject
// bookkeeping, and the dynamic entry points (join / leave / reweight)
// where supported.
#include "engine/simulator.h"

#include <gtest/gtest.h>

#include "engine/factory.h"

namespace pfair::engine {
namespace {

TEST(TaskSpec, ResolvesWeightOverExecutionPeriod) {
  TaskSpec s;
  s.execution = 7;
  s.period = 9;
  s.weight = Rational(3, 10);
  EXPECT_EQ(s.resolved_execution(), 3);
  EXPECT_EQ(s.resolved_period(), 10);
  EXPECT_TRUE(s.valid());
  s.weight.reset();
  EXPECT_EQ(s.resolved_execution(), 7);
  EXPECT_EQ(s.resolved_period(), 9);
}

TEST(TaskSpec, ValidityMatchesTaskRules) {
  EXPECT_TRUE(task_spec(1, 1).valid());
  EXPECT_TRUE(task_spec(2, 5).valid());
  EXPECT_FALSE(task_spec(0, 5).valid());
  EXPECT_FALSE(task_spec(2, 0).valid());
  EXPECT_FALSE(task_spec(6, 5).valid());  // weight above one
  TaskSpec w;
  w.weight = Rational(11, 10);
  EXPECT_FALSE(w.valid());
}

TEST(RequestApi, EveryKindAdmitsAValidSpecAtTimeZero) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto sim = make_simulator(kind);
    EXPECT_TRUE(sim->admit(task_spec(1, 5))) << to_string(kind);
    EXPECT_EQ(sim->metrics().tasks_admitted, 1u) << to_string(kind);
    EXPECT_EQ(sim->metrics().tasks_rejected, 0u) << to_string(kind);
  }
}

TEST(RequestApi, EveryKindRejectsAnInvalidSpecAndCountsIt) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto sim = make_simulator(kind);
    EXPECT_FALSE(sim->admit(task_spec(0, 5))) << to_string(kind);
    EXPECT_FALSE(sim->admit(task_spec(6, 5))) << to_string(kind);
    EXPECT_EQ(sim->metrics().tasks_admitted, 0u) << to_string(kind);
    EXPECT_EQ(sim->metrics().tasks_rejected, 2u) << to_string(kind);
  }
}

TEST(RequestApi, OnlyPfairReportsDynamicCapability) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto sim = make_simulator(kind);
    EXPECT_EQ(sim->can_dynamic(), kind == SchedulerKind::kPfair) << to_string(kind);
  }
}

TEST(RequestApi, NonDynamicKindsAnswerDynamicRequestsWithRefusals) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    if (kind == SchedulerKind::kPfair) continue;
    const auto sim = make_simulator(kind);
    ASSERT_TRUE(sim->admit(task_spec(1, 5))) << to_string(kind);
    EXPECT_FALSE(sim->join(task_spec(1, 5)).has_value()) << to_string(kind);
    EXPECT_FALSE(sim->leave(0)) << to_string(kind);
    EXPECT_FALSE(sim->request_leave(0).has_value()) << to_string(kind);
    EXPECT_FALSE(sim->request_reweight(0, task_spec(1, 7)).has_value())
        << to_string(kind);
    EXPECT_EQ(sim->earliest_leave(0), -1) << to_string(kind);
  }
}

TEST(RequestApi, PfairJoinLeaveReweightThroughTheBaseInterface) {
  SimulatorConfig cfg;
  cfg.pfair.processors = 2;
  const auto sim = make_simulator(SchedulerKind::kPfair, cfg);
  ASSERT_TRUE(sim->admit(task_spec(1, 2)));
  sim->run_until(4);

  const std::optional<TaskId> id = sim->join(task_spec(1, 4));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(sim->metrics().tasks_admitted, 2u);

  // Known id: a departure time is offered; the same id again keeps the
  // original answer (already departing).
  EXPECT_GE(sim->earliest_leave(*id), sim->now());
  const std::optional<Time> free = sim->request_leave(*id);
  ASSERT_TRUE(free.has_value());
  EXPECT_GE(*free, sim->now());

  // Out-of-range ids are answered, never UB: the daemon feeds these
  // straight from untrusted request streams.
  EXPECT_FALSE(sim->request_leave(12345).has_value());
  EXPECT_FALSE(sim->leave(12345));
  EXPECT_EQ(sim->earliest_leave(12345), -1);
  EXPECT_FALSE(sim->request_reweight(12345, task_spec(1, 3)).has_value());

  sim->run_until(*free + 1);
  EXPECT_EQ(sim->metrics().deadline_misses, 0u);
}

TEST(RequestApi, PfairJoinRejectionIsCounted) {
  SimulatorConfig cfg;
  cfg.pfair.processors = 1;
  const auto sim = make_simulator(SchedulerKind::kPfair, cfg);
  ASSERT_TRUE(sim->admit(task_spec(1, 1)));  // weight 1 fills the machine
  sim->run_until(2);
  EXPECT_FALSE(sim->join(task_spec(1, 2)).has_value());
  EXPECT_EQ(sim->metrics().tasks_rejected, 1u);
}

TEST(RequestApi, WrrRejectsLateAdmissionAndCountsIt) {
  SimulatorConfig cfg;
  cfg.wrr.processors = 1;
  const auto sim = make_simulator(SchedulerKind::kWrr, cfg);
  ASSERT_TRUE(sim->admit(task_spec(1, 4)));
  sim->run_until(1);
  EXPECT_FALSE(sim->admit(task_spec(1, 4)));
  EXPECT_EQ(sim->metrics().tasks_rejected, 1u);
}

TEST(RequestApi, SpecNameReachesThePfairTask) {
  const auto sim = make_simulator(SchedulerKind::kPfair);
  EXPECT_TRUE(sim->admit(task_spec(1, 4, "camera")));
  // The name is carried for observability (Perfetto tracks); admission
  // behaviour must not depend on it.
  EXPECT_EQ(sim->metrics().tasks_admitted, 1u);
}

}  // namespace
}  // namespace pfair::engine
