#include "engine/factory.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pfair::engine {
namespace {

TEST(Factory, KindStringsRoundTrip) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto back = scheduler_kind_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
}

TEST(Factory, UnknownKindStringsAreRejected) {
  EXPECT_FALSE(scheduler_kind_from_string("").has_value());
  EXPECT_FALSE(scheduler_kind_from_string("edf-global").has_value());
  EXPECT_FALSE(scheduler_kind_from_string("Pfair").has_value());  // case-sensitive
  EXPECT_FALSE(scheduler_kind_from_string("pfair ").has_value());
}

TEST(Factory, DefaultConfigBuildsEveryKind) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    EXPECT_NE(make_simulator(kind), nullptr) << to_string(kind);
  }
}

/// Expects make_simulator(kind, config) to throw std::invalid_argument
/// with exactly `message`.
void expect_rejected(SchedulerKind kind, const SimulatorConfig& config,
                     const std::string& message) {
  try {
    (void)make_simulator(kind, config);
    FAIL() << "expected std::invalid_argument: " << message;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(e.what(), message);
  }
}

TEST(Factory, RejectsZeroProcessors) {
  SimulatorConfig config;
  config.pfair.processors = 0;
  expect_rejected(SchedulerKind::kPfair, config,
                  "make_simulator(pfair): processors must be >= 1 (got 0)");
}

TEST(Factory, RejectsNegativeShardOverride) {
  SimulatorConfig config;
  config.shards = -1;
  expect_rejected(SchedulerKind::kPfair, config,
                  "make_simulator(pfair): shards must be >= 0 (got -1; 0 defers to "
                  "the per-kind config)");
}

TEST(Factory, RejectsZeroPfairShards) {
  SimulatorConfig config;
  config.pfair.shards = 0;
  expect_rejected(SchedulerKind::kPfair, config,
                  "make_simulator(pfair): pfair.shards must be >= 1 (got 0)");
}

TEST(Factory, ShardOverrideReachesPfairConfig) {
  SimulatorConfig config;
  config.shards = 4;
  const auto sim = make_simulator(SchedulerKind::kPfair, config);
  const auto* pfair = dynamic_cast<const PfairSimulator*>(sim.get());
  ASSERT_NE(pfair, nullptr);
  EXPECT_EQ(pfair->config().shards, 4);

  // shards = 0 defers to the per-kind config.
  SimulatorConfig deferred;
  deferred.pfair.shards = 2;
  const auto sim2 = make_simulator(SchedulerKind::kPfair, deferred);
  EXPECT_EQ(dynamic_cast<const PfairSimulator*>(sim2.get())->config().shards, 2);
}

TEST(Factory, RejectsNegativeProcessors) {
  SimulatorConfig config;
  config.global_job.processors = -2;
  expect_rejected(SchedulerKind::kGlobalJob, config,
                  "make_simulator(global-job): processors must be >= 1 (got -2)");
}

TEST(Factory, RejectsZeroMaxProcessorsForPartitioned) {
  SimulatorConfig config;
  config.partitioned.max_processors = 0;
  expect_rejected(SchedulerKind::kPartitioned, config,
                  "make_simulator(partitioned): max_processors must be >= 1 (got 0)");
}

TEST(Factory, RejectsBadWrrConfig) {
  SimulatorConfig config;
  config.wrr.processors = 0;
  expect_rejected(SchedulerKind::kWrr, config,
                  "make_simulator(wrr): processors must be >= 1 (got 0)");
  config.wrr.processors = 2;
  config.wrr.frame = 0;
  expect_rejected(SchedulerKind::kWrr, config,
                  "make_simulator(wrr): frame must be >= 1 (got 0)");
}

TEST(Factory, RejectsDegenerateCbsServer) {
  SimulatorConfig config;
  config.cbs.servers.push_back(CbsServerSpec{0, 4, {}});
  expect_rejected(
      SchedulerKind::kCbs, config,
      "make_simulator(cbs): server 0 must have budget >= 1 and period >= 1 (got Q=0, T=4)");
}

TEST(Factory, RejectsBadBfAndRunConfigs) {
  SimulatorConfig config;
  config.bf.processors = 0;
  expect_rejected(SchedulerKind::kBf, config,
                  "make_simulator(bf): processors must be >= 1 (got 0)");
  config.bf.processors = 1;
  config.run.processors = -3;
  expect_rejected(SchedulerKind::kRun, config,
                  "make_simulator(run): processors must be >= 1 (got -3)");
}

TEST(Factory, RejectsShardOverrideForKindsWithoutShardedKernel) {
  // Sharding is a pfair-kernel concept; silently ignoring the override
  // elsewhere would let a sweep believe it measured a sharded run.
  SimulatorConfig config;
  config.shards = 4;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    if (kind == SchedulerKind::kPfair) continue;
    const std::string want =
        std::string("make_simulator(") + to_string(kind) +
        "): shards > 1 is only supported for pfair (got 4; this kind has no sharded kernel)";
    expect_rejected(kind, config, want);
  }
  // The pfair row still accepts the very same override.
  EXPECT_NE(make_simulator(SchedulerKind::kPfair, config), nullptr);
}

TEST(Factory, ValidationOnlyReadsTheRequestedKindsSection) {
  // A zero in an unused column must not poison other kinds: the sweep
  // table mistake the validation exists to catch, inverted.
  SimulatorConfig config;
  config.pfair.processors = 0;
  EXPECT_NE(make_simulator(SchedulerKind::kUniproc, config), nullptr);
  EXPECT_NE(make_simulator(SchedulerKind::kGlobalJob, config), nullptr);
}

}  // namespace
}  // namespace pfair::engine
