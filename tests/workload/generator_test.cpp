#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pfair {
namespace {

TEST(OhGenerator, HitsRequestedTotalUtilization) {
  Rng rng(1);
  OhWorkloadConfig cfg;
  cfg.n_tasks = 100;
  cfg.total_utilization = 12.5;
  const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
  ASSERT_EQ(tasks.size(), 100u);
  double total = 0.0;
  for (const OhTask& t : tasks) total += t.utilization();
  EXPECT_NEAR(total, 12.5, 0.01);
}

TEST(OhGenerator, RespectsStructuralConstraints) {
  Rng rng(2);
  OhWorkloadConfig cfg;
  cfg.n_tasks = 200;
  cfg.total_utilization = 30.0;
  const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
  for (const OhTask& t : tasks) {
    EXPECT_GT(t.execution_us, 0.0);
    EXPECT_LT(t.utilization(), 1.0);
    EXPECT_GE(t.period_us, cfg.period_min_us - cfg.quantum_us);
    EXPECT_LE(t.period_us, cfg.period_max_us + cfg.quantum_us);
    // Periods are quantum multiples (paper assumption for Eq. (3)).
    EXPECT_NEAR(std::fmod(t.period_us, cfg.quantum_us), 0.0, 1e-9);
    EXPECT_GE(t.cache_delay_us, 0.0);
    EXPECT_LE(t.cache_delay_us, cfg.cache_delay_max_us);
  }
}

TEST(OhGenerator, CacheDelayMeanNearPaperValue) {
  Rng rng(3);
  OhWorkloadConfig cfg;
  cfg.n_tasks = 2000;
  cfg.total_utilization = 100.0;
  const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
  double mean = 0.0;
  for (const OhTask& t : tasks) mean += t.cache_delay_us;
  mean /= static_cast<double>(tasks.size());
  // The paper draws D(T) in [0, 100] us with mean 33.3 us; we realise
  // that as a right-triangular density (mean = max/3).
  EXPECT_NEAR(mean, 33.3, 2.0);
}

TEST(PfairGenerator, PeriodsDivideTheBaseHyperperiod) {
  // The overflow-safety invariant: every generated period divides
  // 720720, so exact weight sums over any number of tasks stay within
  // 64-bit rationals (see generator.cpp).
  Rng rng(0xd100);
  for (int k = 0; k < 500; ++k) {
    const Task t = random_pfair_task(rng, 100000);
    EXPECT_EQ(720720 % t.period, 0) << "p=" << t.period;
  }
}

TEST(PfairGenerator, HugeFeasibleSetsSumExactlyWithoutOverflow) {
  Rng rng(0xbead5);
  TaskSet set;
  Rational total(0);
  for (int k = 0; k < 5000; ++k) {
    const Task t = random_pfair_task(rng, 5000);
    total += t.weight();  // must never trip the overflow assert
    set.add(t);
  }
  EXPECT_EQ(set.total_weight(), total);
  EXPECT_LE(total.den(), 720720);
}

TEST(PfairGenerator, SmallMaxPeriodBehavesLikeUniformDraw) {
  // Every integer in [1, 16] divides 720720, so max_period <= 16 sees
  // the full period range.
  Rng rng(0x16);
  std::set<std::int64_t> seen;
  for (int k = 0; k < 2000; ++k) seen.insert(random_pfair_task(rng, 16).period);
  EXPECT_EQ(seen.size(), 16u);
}

TEST(PfairGenerator, FeasibleSetsRespectEquationTwo) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 5;
    const TaskSet set = generate_feasible_taskset(trial_rng, m, 30, 16);
    EXPECT_TRUE(set.feasible_on(m));
    EXPECT_FALSE(set.empty());
  }
}

TEST(PfairGenerator, FillProducesExactCapacity) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 4;
    const TaskSet set = generate_feasible_taskset(trial_rng, m, 30, 16, /*fill=*/true);
    EXPECT_EQ(set.total_weight(), Rational(m)) << "m=" << m;
  }
}

TEST(UniGenerator, CapsTotalUtilization) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const std::vector<UniTask> ts = generate_uni_tasks(trial_rng, 25, 0.9, 10000);
    // Integer rounding moves each task by < 1/p; allow slack.
    EXPECT_LE(total_utilization(ts), 1.0);
    EXPECT_EQ(ts.size(), 25u);
    for (const UniTask& t : ts) EXPECT_TRUE(t.valid());
  }
}

TEST(Adversary, TotalApproachesWorstCase) {
  const std::vector<Rational> u = partition_adversary(4, 1000);
  Rational total(0);
  for (const Rational& w : u) total += w;
  // (m+1) * (1+eps)/2 -> 2.5 * (1 + 1/1000)
  EXPECT_NEAR(total.to_double(), 2.5025, 1e-9);
  EXPECT_EQ(u.size(), 5u);
}

TEST(Fig5Builder, MatchesThePaper) {
  const Fig5System sys = fig5_system();
  ASSERT_EQ(sys.normal_tasks.size(), 4u);
  EXPECT_EQ(sys.normal_tasks[0].weight(), Rational(1, 2));
  EXPECT_EQ(sys.normal_tasks[1].weight(), Rational(1, 3));
  EXPECT_EQ(sys.normal_tasks[2].weight(), Rational(1, 3));
  EXPECT_EQ(sys.normal_tasks[3].weight(), Rational(2, 9));
  EXPECT_EQ(sys.supertask.competing_weight(), Rational(2, 9));
  // Whole system fits on two processors.
  Rational total = sys.normal_tasks.total_weight() + sys.supertask.competing_weight();
  EXPECT_LE(total, Rational(2));
}

TEST(CounterexampleBuilder, ThreeTwoThirds) {
  const TaskSet set = two_processor_counterexample();
  EXPECT_EQ(set.total_weight(), Rational(2));
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace pfair
