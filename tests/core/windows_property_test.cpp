// Parameterized property sweep over the full weight lattice: every
// reduced weight e/p with p <= kMaxPeriod is checked for the structural
// invariants of Sec. 2.  Complements windows_test.cpp (specific paper
// examples) with exhaustive coverage.
#include <gtest/gtest.h>

#include <numeric>

#include "core/lag.h"
#include "core/windows.h"

namespace pfair {
namespace {

struct WeightCase {
  std::int64_t e;
  std::int64_t p;
};

void PrintTo(const WeightCase& w, std::ostream* os) { *os << w.e << "_" << w.p; }

class WindowPropertyTest : public ::testing::TestWithParam<WeightCase> {};

TEST_P(WindowPropertyTest, WindowsPartitionThePeriodEvenly) {
  const auto [e, p] = GetParam();
  // Across one job, the e windows cover [0, p] with total "fluid mass"
  // e: sum over slots of per-slot coverage is bounded by window counts.
  // Check the exact identities the Pfair literature uses:
  //   d(T_i) - r(T_i) in {ceil(p/e), ceil(p/e)+1}
  //   d(T_e) = p, r(T_1) = 0.
  EXPECT_EQ(subtask_release(e, p, 1), 0);
  EXPECT_EQ(subtask_deadline(e, p, e), p);
  const Time base = ceil_div(p, e);
  for (SubtaskIndex i = 1; i <= e; ++i) {
    const Time len = window_length(e, p, i);
    EXPECT_TRUE(len == base || len == base + 1 || (e == p && len == 1))
        << "i=" << i << " len=" << len;
  }
}

TEST_P(WindowPropertyTest, LagStaysBoundedForEveryWithinWindowPolicy) {
  const auto [e, p] = GetParam();
  // Greedy-early and lazy-late were covered in lag_test; here check a
  // mid-window policy: schedule subtask i at floor((r + d - 1) / 2).
  std::int64_t allocated = 0;
  SubtaskIndex next = 1;
  for (Time t = 0; t <= 2 * p; ++t) {
    const Time r = subtask_release(e, p, next);
    const Time d = subtask_deadline(e, p, next);
    if (t == (r + d - 1) / 2) {
      ++allocated;
      ++next;
    }
    EXPECT_TRUE(lag_within_pfair_bounds(e, p, t + 1, allocated))
        << "t=" << t << " e/p=" << e << "/" << p;
  }
}

TEST_P(WindowPropertyTest, BBitZeroExactlyAtJobAlignedBoundaries) {
  const auto [e, p] = GetParam();
  // b(T_i) = 0 iff the window boundary is "clean": d(T_i) = r(T_{i+1}).
  for (SubtaskIndex i = 1; i <= 2 * e; ++i) {
    const bool clean = subtask_release(e, p, i + 1) == subtask_deadline(e, p, i);
    EXPECT_EQ(b_bit(e, p, i) == 0, clean) << "i=" << i;
  }
  // The last subtask of every job always has b = 0.
  EXPECT_EQ(b_bit(e, p, e), 0);
  EXPECT_EQ(b_bit(e, p, 2 * e), 0);
}

TEST_P(WindowPropertyTest, GroupDeadlinesAreMonotoneWithinACascade) {
  const auto [e, p] = GetParam();
  if (!is_heavy(e, p) || e == p) return;
  for (SubtaskIndex i = 1; i < 2 * e; ++i) {
    // Group deadlines never decrease with the subtask index.
    EXPECT_LE(group_deadline(e, p, i), group_deadline(e, p, i + 1)) << "i=" << i;
  }
  // And shift by exactly p per job.
  for (SubtaskIndex i = 1; i <= e; ++i) {
    EXPECT_EQ(group_deadline(e, p, i + e), group_deadline(e, p, i) + p) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllReducedWeights, WindowPropertyTest, ::testing::ValuesIn([] {
                           std::vector<WeightCase> cases;
                           constexpr std::int64_t kMaxPeriod = 26;
                           for (std::int64_t p = 1; p <= kMaxPeriod; ++p) {
                             for (std::int64_t e = 1; e <= p; ++e) {
                               if (std::gcd(e, p) != 1) continue;  // reduced only
                               cases.push_back({e, p});
                             }
                           }
                           return cases;
                         }()),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace pfair
