#include "core/supertask_packing.h"

#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TaskSet light_set() {
  TaskSet set;
  set.add(make_task(1, 10));
  set.add(make_task(1, 10));
  set.add(make_task(1, 20));
  set.add(make_task(1, 20));
  set.add(make_task(1, 5));
  return set;  // total = 1/10*2 + 1/20*2 + 1/5 = 0.5
}

TEST(SupertaskPacking, SingleGroupSwallowsLightSet) {
  const TaskSet set = light_set();
  const PackingResult res = pack_into_supertasks(set, 1);
  ASSERT_EQ(res.supertasks.size(), 1u);
  EXPECT_TRUE(res.migratory.empty());
  // Cumulative 1/2 + reweighting 1/p_min = 1/5 -> 7/10.
  EXPECT_EQ(res.supertasks[0].competing_weight(), Rational(7, 10));
  EXPECT_EQ(res.reweighting_overhead(set), Rational(1, 5));
}

TEST(SupertaskPacking, ZeroGroupsLeavesEverythingMigratory) {
  const TaskSet set = light_set();
  const PackingResult res = pack_into_supertasks(set, 0);
  EXPECT_TRUE(res.supertasks.empty());
  EXPECT_EQ(res.migratory.size(), set.size());
  EXPECT_EQ(res.total_weight, set.total_weight());
}

TEST(SupertaskPacking, GroupWeightsNeverExceedOne) {
  Rng rng(0x5afe2);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet set = generate_feasible_taskset(trial_rng, 4, 24, 20);
    const PackingResult res = pack_into_supertasks(set, 4);
    for (const SupertaskSpec& s : res.supertasks) {
      EXPECT_LE(s.competing_weight(), Rational(1));
      EXPECT_FALSE(s.components.empty());
    }
    // Nothing is lost: component + migratory count = original count.
    std::size_t packed = res.migratory.size();
    for (const SupertaskSpec& s : res.supertasks) packed += s.components.size();
    EXPECT_EQ(packed, set.size());
  }
}

TEST(SupertaskPacking, UnweightedPackingHasNoOverhead) {
  const TaskSet set = light_set();
  const PackingResult res = pack_into_supertasks(set, 1, /*reweight=*/false);
  ASSERT_EQ(res.supertasks.size(), 1u);
  EXPECT_EQ(res.total_weight, set.total_weight());
}

TEST(SupertaskPacking, PackedSystemMeetsAllComponentDeadlines) {
  // End-to-end: pack a feasible set, run PD2 with bound supertasks, and
  // confirm zero component misses (the Holman-Anderson guarantee).
  Rng rng(0x9ac7);
  for (int trial = 0; trial < 6; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    // Leave headroom for the reweighting overhead: ~60% load.
    TaskSet set;
    Rational total(0);
    while (total < Rational(5, 4)) {
      const Task t = random_pfair_task(trial_rng, 16);
      if (Rational(1, 2) < t.weight()) continue;
      total += t.weight();
      set.add(t);
    }
    const PackingResult packed = pack_into_supertasks(set, 2);
    if (Rational(2) < packed.total_weight) continue;  // reweighting overflow
    PfairConfig sc;
    sc.processors = 2;
    PfairSimulator sim(sc);
    std::vector<TaskId> servers;
    for (std::size_t g = 0; g < packed.supertasks.size(); ++g) {
      servers.push_back(
          sim.add_supertask(packed.supertasks[g], static_cast<ProcId>(g)));
    }
    for (const Task& t : packed.migratory) sim.add_task(t);
    sim.run_until(2000);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
    for (std::size_t g = 0; g < servers.size(); ++g) {
      for (std::size_t c = 0; c < packed.supertasks[g].components.size(); ++c) {
        EXPECT_EQ(sim.component_miss_count(servers[g], c), 0u)
            << "trial " << trial << " group " << g << " comp " << c;
      }
    }
  }
}

TEST(SupertaskPacking, BoundServersNeverMigrate) {
  const TaskSet set = light_set();
  const PackingResult packed = pack_into_supertasks(set, 1);
  PfairConfig sc;
  sc.processors = 2;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  const TaskId server = sim.add_supertask(packed.supertasks[0], /*bound_proc=*/1);
  sim.add_task(make_task(1, 2));  // a migratory companion
  sim.run_until(400);
  // Every quantum of the server sits on processor 1.
  const ScheduleTrace& tr = sim.trace();
  for (std::size_t t = 0; t < tr.size(); ++t) {
    EXPECT_NE(tr[t].proc_to_task[0], server) << "slot " << t;
  }
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(SupertaskPacking, PackingReducesContextSwitchesForLightTasks) {
  // Under global PD2, each 3/16 task's job is three quanta spread
  // across its period (preempted between them).  Packed into one heavy
  // (13/16) supertask, the server runs long consecutive stretches and
  // internal EDF completes each component job back-to-back — the
  // paper's "the number of preemptions will approach that of an
  // EDF-scheduled uniprocessor system".
  TaskSet set;
  for (int k = 0; k < 4; ++k) set.add(make_task(3, 16));  // 4 x 3/16
  std::uint64_t plain_switches = 0;
  std::uint64_t packed_switches = 0;
  {
    PfairConfig sc;
    sc.processors = 1;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(1600);
    plain_switches = sim.metrics().context_switches;
  }
  {
    const PackingResult packed = pack_into_supertasks(set, 1);
    ASSERT_EQ(packed.supertasks.size(), 1u);
    PfairConfig sc;
    sc.processors = 1;
    PfairSimulator sim(sc);
    sim.add_supertask(packed.supertasks[0], 0);
    sim.run_until(1600);
    packed_switches = sim.metrics().context_switches + sim.metrics().component_switches;
  }
  EXPECT_LT(packed_switches, plain_switches);
}

}  // namespace
}  // namespace pfair
