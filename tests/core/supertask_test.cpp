#include "core/supertask.h"

#include <gtest/gtest.h>

namespace pfair {
namespace {

TEST(Supertask, Fig5WeightIsTwoNinths) {
  // S contains T (1/5) and U (1/45): 1/5 + 1/45 = 10/45 = 2/9.
  const SupertaskSpec s = make_supertask({make_task(1, 5), make_task(1, 45)});
  EXPECT_EQ(s.competing_weight(), Rational(2, 9));
  EXPECT_EQ(s.execution, 2);
  EXPECT_EQ(s.period, 9);
  EXPECT_EQ(s.cumulative_component_weight(), Rational(2, 9));
}

TEST(Supertask, ReweightingAddsOneOverMinPeriod) {
  // Holman-Anderson: inflate by 1/p_min = 1/5: 2/9 + 1/5 = 19/45.
  const SupertaskSpec s = make_reweighted_supertask({make_task(1, 5), make_task(1, 45)});
  EXPECT_EQ(s.competing_weight(), Rational(19, 45));
  EXPECT_EQ(s.min_component_period(), 5);
}

TEST(Supertask, ReweightingCapsAtOne) {
  const SupertaskSpec s =
      make_reweighted_supertask({make_task(2, 3), make_task(1, 3)});  // already weight 1
  EXPECT_EQ(s.competing_weight(), Rational(1));
}

TEST(Supertask, SingleComponentKeepsItsWeight) {
  const SupertaskSpec s = make_supertask({make_task(3, 7)});
  EXPECT_EQ(s.competing_weight(), Rational(3, 7));
}

TEST(Supertask, CompetingWeightAlwaysAtLeastCumulative) {
  const SupertaskSpec plain = make_supertask({make_task(1, 10), make_task(1, 20)});
  const SupertaskSpec rew = make_reweighted_supertask({make_task(1, 10), make_task(1, 20)});
  EXPECT_EQ(plain.competing_weight(), plain.cumulative_component_weight());
  EXPECT_LT(plain.competing_weight(), rew.competing_weight());
}

}  // namespace
}  // namespace pfair
