#include "core/lag.h"

#include <gtest/gtest.h>

#include "core/windows.h"

namespace pfair {
namespace {

TEST(Lag, ZeroAtTimeZero) {
  EXPECT_EQ(lag(2, 3, 0, 0), Rational(0));
}

TEST(Lag, FluidAllocationMinusActual) {
  // weight 2/3, 4 slots elapsed, 2 quanta received: lag = 8/3 - 2 = 2/3.
  EXPECT_EQ(lag(2, 3, 4, 2), Rational(2, 3));
}

TEST(Lag, NegativeWhenAhead) {
  EXPECT_EQ(lag(1, 4, 1, 1), Rational(-3, 4));
}

TEST(Lag, PfairBoundsAreStrict) {
  // lag exactly 1 or -1 violates the Pfair condition.
  EXPECT_FALSE(lag_within_pfair_bounds(1, 2, 4, 1));   // lag = +1
  EXPECT_FALSE(lag_within_pfair_bounds(1, 2, 2, 2));   // lag = -1
  EXPECT_TRUE(lag_within_pfair_bounds(1, 2, 3, 1));    // lag = +1/2
  EXPECT_TRUE(lag_within_pfair_bounds(1, 2, 1, 1));    // lag = -1/2
}

TEST(Lag, ErfairOnlyBoundsAbove) {
  // Far ahead of the fluid schedule: fine under ERfair, not under Pfair.
  EXPECT_TRUE(lag_within_erfair_bounds(1, 10, 1, 5));
  EXPECT_FALSE(lag_within_pfair_bounds(1, 10, 1, 5));
  // Behind by a full quantum: bad under both.
  EXPECT_FALSE(lag_within_erfair_bounds(1, 2, 4, 1));
}

TEST(Lag, SchedulingEachSubtaskInItsWindowPreservesBounds) {
  // For any weight, allocating subtask i anywhere in [r(T_i), d(T_i))
  // keeps lag in (-1, 1) at every integer time.  Verify for the two
  // extreme policies: always at release vs always at deadline - 1.
  for (std::int64_t p = 1; p <= 12; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      for (const bool asap : {true, false}) {
        std::int64_t allocated = 0;
        SubtaskIndex next = 1;
        for (Time t = 0; t <= 3 * p; ++t) {
          const Time slot = asap ? subtask_release(e, p, next)
                                 : subtask_deadline(e, p, next) - 1;
          if (t == slot) {
            ++allocated;
            ++next;
          }
          EXPECT_TRUE(lag_within_pfair_bounds(e, p, t + 1, allocated))
              << e << "/" << p << " t=" << t << " asap=" << asap;
        }
      }
    }
  }
}

}  // namespace
}  // namespace pfair
