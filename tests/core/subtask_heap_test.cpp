// Randomized differential test of the calendar ready queue (the
// BinaryHeap<SubtaskRef, SubtaskPriority> specialization): against a
// reference multiset it must agree on every top() and pop() while being
// driven through the regimes its ring machinery distinguishes —
// in-window pushes, below-window rewinds, far-future side-heap spills,
// window growth, erase-by-handle, and in-place updates.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/priority.h"
#include "util/rng.h"

namespace pfair {
namespace {

SubtaskRef ref_with_deadline(Rng& rng, TaskId id, Time deadline, Algorithm alg) {
  // A synthetic ref: ordering fields are what matter, so draw them
  // directly and pack, exactly as the simulator's in-place enqueue does.
  SubtaskRef s;
  s.task = id;
  s.e = rng.uniform_int(1, 8);
  s.p = s.e + rng.uniform_int(0, 8);
  s.release = deadline - rng.uniform_int(1, 4);
  s.deadline = deadline;
  s.b = static_cast<int>(rng.uniform_int(0, 1));
  s.group_dl = s.b == 1 ? deadline + rng.uniform_int(0, 3) : 0;
  pack_subtask_ref(s, alg);
  return s;
}

void drive(Algorithm alg, bool packed, std::uint64_t seed) {
  SubtaskPriority pri(alg, packed);
  BinaryHeap<SubtaskRef, SubtaskPriority> heap(pri);
  Rng rng(seed);
  // Reference store: handle -> ref, min found by linear comparator scan.
  std::vector<std::pair<HeapHandle, SubtaskRef>> reference;
  const auto reference_min = [&] {
    std::size_t best = 0;
    for (std::size_t i = 1; i < reference.size(); ++i) {
      if (pri(reference[i].second, reference[best].second)) best = i;
    }
    return best;
  };

  Time base = 100;
  TaskId next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    const std::int64_t op = rng.uniform_int(0, 99);
    if (op < 45 || reference.empty()) {
      Time d;
      const std::int64_t shape = rng.uniform_int(0, 19);
      if (shape < 12) {
        d = base + rng.uniform_int(0, 60);  // in-window
      } else if (shape < 15) {
        d = std::max<Time>(1, base - rng.uniform_int(1, 40));  // rewind
      } else if (shape < 18) {
        d = base + rng.uniform_int(200, 600);  // forces growth / side heap
      } else {
        d = base + rng.uniform_int(2000, 4000);  // deep side-heap spill
      }
      // Unique task ids keep the comparator a strict total order, so the
      // reference min is unambiguous.
      const SubtaskRef s = ref_with_deadline(rng, next_id++, d, alg);
      const HeapHandle h = heap.push(s);
      reference.emplace_back(h, s);
    } else if (op < 75) {
      const std::size_t want = reference_min();
      ASSERT_EQ(heap.top_handle(), reference[want].first) << "step " << step;
      const SubtaskRef got = heap.pop();
      ASSERT_EQ(got.task, reference[want].second.task);
      ASSERT_EQ(got.deadline, reference[want].second.deadline);
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(want));
      base = std::max(base, got.deadline);  // queues drain roughly in order
    } else if (op < 90) {
      const std::size_t k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(reference.size()) - 1));
      heap.erase(reference[k].first);
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      // In-place key mutation + update(), the reweight path.
      const std::size_t k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(reference.size()) - 1));
      const HeapHandle h = reference[k].first;
      SubtaskRef& s = heap.get_mutable(h);
      s.deadline = base + rng.uniform_int(0, 80);
      s.b = static_cast<int>(rng.uniform_int(0, 1));
      s.group_dl = s.b == 1 ? s.deadline + rng.uniform_int(0, 3) : 0;
      pack_subtask_ref(s, alg);
      heap.update(h);
      reference[k].second = s;
    }
    ASSERT_EQ(heap.size(), reference.size());
    if (step % 256 == 0) {
      ASSERT_TRUE(heap.validate()) << "step " << step;
    }
    if (!reference.empty()) {
      const std::size_t want = reference_min();
      ASSERT_EQ(heap.top_handle(), reference[want].first) << "step " << step;
    }
  }
  EXPECT_TRUE(heap.validate());
  while (!heap.empty()) {
    const std::size_t want = reference_min();
    ASSERT_EQ(heap.pop().task, reference[want].second.task);
    reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(want));
  }
}

TEST(SubtaskHeap, RandomisedAgainstReference_PD2_Packed) { drive(Algorithm::kPD2, true, 1); }
TEST(SubtaskHeap, RandomisedAgainstReference_PD2_Legacy) { drive(Algorithm::kPD2, false, 2); }
TEST(SubtaskHeap, RandomisedAgainstReference_PD) { drive(Algorithm::kPD, true, 3); }
TEST(SubtaskHeap, RandomisedAgainstReference_EPDF) { drive(Algorithm::kEPDF, true, 4); }
TEST(SubtaskHeap, RandomisedAgainstReference_PF) { drive(Algorithm::kPF, true, 5); }

TEST(SubtaskHeap, ClearResetsRingState) {
  SubtaskPriority pri(Algorithm::kPD2, true);
  BinaryHeap<SubtaskRef, SubtaskPriority> heap(pri);
  Rng rng(9);
  for (int round = 0; round < 3; ++round) {
    for (TaskId id = 0; id < 50; ++id)
      heap.push(ref_with_deadline(rng, id, 1 + rng.uniform_int(0, 500), Algorithm::kPD2));
    ASSERT_TRUE(heap.validate());
    heap.clear();
    EXPECT_TRUE(heap.empty());
    EXPECT_TRUE(heap.validate());
  }
}

}  // namespace
}  // namespace pfair
