#include "core/task.h"

#include <gtest/gtest.h>

namespace pfair {
namespace {

TEST(Task, WeightAndHeaviness) {
  EXPECT_EQ(make_task(2, 3).weight(), Rational(2, 3));
  EXPECT_TRUE(make_task(1, 2).heavy());
  EXPECT_TRUE(make_task(2, 3).heavy());
  EXPECT_FALSE(make_task(1, 3).heavy());
  EXPECT_TRUE(make_task(5, 5).heavy());
}

TEST(Task, ValidityChecks) {
  Task t;
  t.execution = 0;
  t.period = 4;
  EXPECT_FALSE(t.valid());
  t.execution = 5;
  EXPECT_FALSE(t.valid());
  t.execution = 4;
  EXPECT_TRUE(t.valid());
}

TEST(TaskSet, TotalWeightIsExact) {
  TaskSet set;
  set.add(make_task(1, 3));
  set.add(make_task(1, 3));
  set.add(make_task(1, 3));
  EXPECT_EQ(set.total_weight(), Rational(1));
}

TEST(TaskSet, FeasibilityEquation2) {
  // The paper's Sec.-1 example: three tasks of weight 2/3 are feasible
  // on two processors under Pfair (but not under partitioning).
  TaskSet set;
  for (int i = 0; i < 3; ++i) set.add(make_task(2, 3));
  EXPECT_TRUE(set.feasible_on(2));
  EXPECT_FALSE(set.feasible_on(1));
  EXPECT_EQ(set.min_processors(), 2);
}

TEST(TaskSet, MinProcessorsIsCeilingOfTotalWeight) {
  TaskSet set;
  set.add(make_task(1, 2));
  set.add(make_task(1, 2));
  set.add(make_task(1, 100));
  EXPECT_EQ(set.min_processors(), 2);  // 1 + 1/100 -> 2
}

TEST(TaskSet, Hyperperiod) {
  TaskSet set;
  set.add(make_task(1, 4));
  set.add(make_task(1, 6));
  set.add(make_task(1, 10));
  EXPECT_EQ(set.hyperperiod(), 60);
}

TEST(TaskSet, EmptySetProperties) {
  TaskSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_weight(), Rational(0));
  EXPECT_EQ(set.hyperperiod(), 1);
}

}  // namespace
}  // namespace pfair
