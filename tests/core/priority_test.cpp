#include "core/priority.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace pfair {
namespace {

SubtaskRef ref(TaskId id, std::int64_t e, std::int64_t p, SubtaskIndex i, Time offset = 0) {
  return make_subtask_ref(id, e, p, i, offset);
}

TEST(MakeSubtaskRef, FillsDerivedFields) {
  const SubtaskRef s = ref(3, 8, 11, 3);
  EXPECT_EQ(s.task, 3u);
  EXPECT_EQ(s.release, 2);
  EXPECT_EQ(s.deadline, 5);
  EXPECT_EQ(s.b, 1);
  EXPECT_EQ(s.group_dl, 8);
}

TEST(MakeSubtaskRef, OffsetShiftsAllAbsoluteTimes) {
  const SubtaskRef base = ref(0, 8, 11, 3, 0);
  const SubtaskRef moved = ref(0, 8, 11, 3, 100);
  EXPECT_EQ(moved.release, base.release + 100);
  EXPECT_EQ(moved.deadline, base.deadline + 100);
  EXPECT_EQ(moved.group_dl, base.group_dl + 100);
  EXPECT_EQ(moved.b, base.b);
}

TEST(Pd2Priority, EarlierDeadlineWins) {
  const SubtaskRef a = ref(0, 1, 2, 1);  // d = 2
  const SubtaskRef b = ref(1, 1, 5, 1);  // d = 5
  EXPECT_TRUE(pd2_higher_priority(a, b));
  EXPECT_FALSE(pd2_higher_priority(b, a));
}

TEST(Pd2Priority, BBitBreaksDeadlineTies) {
  // weight 2/3 subtask 1: d = 2, b = 1.  weight 1/2 subtask 1: d = 2,
  // b = 0.  The b = 1 subtask must win regardless of id order.
  const SubtaskRef b1 = ref(5, 2, 3, 1);
  const SubtaskRef b0 = ref(0, 1, 2, 1);
  ASSERT_EQ(b1.deadline, b0.deadline);
  ASSERT_EQ(b1.b, 1);
  ASSERT_EQ(b0.b, 0);
  EXPECT_TRUE(pd2_higher_priority(b1, b0));
  EXPECT_FALSE(pd2_higher_priority(b0, b1));
}

TEST(Pd2Priority, LaterGroupDeadlineWinsAmongBOne) {
  // Both heavy, equal deadline and b = 1, different group deadlines.
  // weight 8/11 T3: d=5, b=1, D=8.   weight 4/5 T3: d=ceil(15/4)=4 no...
  // pick weight 6/7 T4: d = ceil(28/6) = 5, b = 1 (28 % 6 != 0),
  // D = ceil(ceil(5*1/7)*7/1) = 7.
  const SubtaskRef later = ref(9, 8, 11, 3);  // D = 8
  const SubtaskRef earlier = ref(0, 6, 7, 4);  // D = 7
  ASSERT_EQ(later.deadline, earlier.deadline);
  ASSERT_EQ(later.b, 1);
  ASSERT_EQ(earlier.b, 1);
  ASSERT_GT(later.group_dl, earlier.group_dl);
  EXPECT_TRUE(pd2_higher_priority(later, earlier));
  EXPECT_FALSE(pd2_higher_priority(earlier, later));
}

TEST(Pd2Priority, FullTieBrokenByTaskId) {
  const SubtaskRef a = ref(0, 8, 11, 3);
  const SubtaskRef b = ref(1, 8, 11, 3);
  EXPECT_TRUE(pd2_higher_priority(a, b));
  EXPECT_FALSE(pd2_higher_priority(b, a));
}

TEST(PfPriority, AgreesWithPd2OnDeadlineAndBBit) {
  const SubtaskRef a = ref(0, 1, 2, 1);
  const SubtaskRef b = ref(1, 1, 5, 1);
  EXPECT_TRUE(pf_higher_priority(a, b));
  const SubtaskRef b1 = ref(5, 2, 3, 1);
  const SubtaskRef b0 = ref(0, 1, 2, 1);
  EXPECT_TRUE(pf_higher_priority(b1, b0));
}

TEST(PfPriority, SuccessorChainBreaksTies) {
  // Two heavy tasks with equal (d, b) at the compared subtask but
  // diverging successor chains: PF compares the chains.  8/11 T3 and
  // 6/7 T4 share d = 5, b = 1.  Successors: 8/11 T4 d = 6 vs 6/7 T5
  // d = 6; 8/11 T5 d = 7 vs 6/7 T6 d = 7; 8/11 T6 d = 9 vs 6/7 T7
  // d = ceil(49/6) = 9; 8/11 T7 d = 10 vs 6/7 T8 d = ceil(56/6) = 10;
  // 8/11 T8 d = 11 b = 0 vs 6/7 T9 d = ceil(63/6) = 11 ... chains track
  // closely; whatever the outcome, it must be antisymmetric and match
  // PD2's group-deadline ordering here (PF refines PD2's information).
  const SubtaskRef a = ref(0, 8, 11, 3);
  const SubtaskRef b = ref(1, 6, 7, 4);
  EXPECT_NE(pf_higher_priority(a, b), pf_higher_priority(b, a));
  EXPECT_EQ(pf_higher_priority(a, b), pd2_higher_priority(a, b));
}

TEST(AllRules, StrictWeakOrderingOnRandomInputs) {
  Rng rng(11);
  std::vector<SubtaskRef> refs;
  for (TaskId id = 0; id < 60; ++id) {
    const std::int64_t p = rng.uniform_int(1, 16);
    const std::int64_t e = rng.uniform_int(1, p);
    const SubtaskIndex i = rng.uniform_int(1, 2 * e);
    refs.push_back(ref(id, e, p, i));
  }
  const auto check = [&](auto higher, const char* name) {
    for (const SubtaskRef& a : refs) {
      EXPECT_FALSE(higher(a, a)) << name << ": irreflexivity";
      for (const SubtaskRef& b : refs) {
        if (a.task == b.task) continue;
        EXPECT_NE(higher(a, b), higher(b, a)) << name << ": totality/antisymmetry";
        for (const SubtaskRef& c : refs) {
          if (higher(a, b) && higher(b, c)) {
            EXPECT_TRUE(higher(a, c)) << name << ": transitivity";
          }
        }
      }
    }
  };
  check(pd2_higher_priority, "PD2");
  check(pd_higher_priority, "PD");
  check(epdf_higher_priority, "EPDF");
  check(pf_higher_priority, "PF");
}

TEST(SubtaskPriorityFunctor, DispatchesToSelectedRule) {
  const SubtaskRef gd_later = ref(9, 8, 11, 3);
  const SubtaskRef gd_earlier = ref(0, 6, 7, 4);
  // Under EPDF the group deadline is ignored, so the id decides.
  EXPECT_TRUE(SubtaskPriority(Algorithm::kEPDF)(gd_earlier, gd_later));
  // Under PD2 the later group deadline wins.
  EXPECT_TRUE(SubtaskPriority(Algorithm::kPD2)(gd_later, gd_earlier));
}

TEST(AlgorithmName, AllNamed) {
  EXPECT_STREQ(algorithm_name(Algorithm::kPD2), "PD2");
  EXPECT_STREQ(algorithm_name(Algorithm::kPF), "PF");
  EXPECT_STREQ(algorithm_name(Algorithm::kPD), "PD");
  EXPECT_STREQ(algorithm_name(Algorithm::kEPDF), "EPDF");
}

TEST(PdPriority, RefinesPd2) {
  // Wherever PD2 expresses a strict preference not caused by the id
  // tie-break, PD must agree.
  Rng rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::int64_t pa = rng.uniform_int(1, 12);
    const std::int64_t ea = rng.uniform_int(1, pa);
    const std::int64_t pb = rng.uniform_int(1, 12);
    const std::int64_t eb = rng.uniform_int(1, pb);
    const SubtaskRef a = ref(0, ea, pa, rng.uniform_int(1, 2 * ea));
    const SubtaskRef b = ref(1, eb, pb, rng.uniform_int(1, 2 * eb));
    const bool tie = a.deadline == b.deadline && a.b == b.b &&
                     (a.b == 0 || a.group_dl == b.group_dl);
    if (!tie) {
      EXPECT_EQ(pd_higher_priority(a, b), pd2_higher_priority(a, b));
    }
  }
}

}  // namespace
}  // namespace pfair
