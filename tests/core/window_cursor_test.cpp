// WindowCursor must reproduce the closed-form window arithmetic exactly:
// it is the division-free incremental form the simulator's enqueue fast
// path runs every quantum.
#include <gtest/gtest.h>

#include "core/windows.h"

namespace pfair {
namespace {

TEST(WindowCursor, MatchesClosedFormsAcrossAdvances) {
  for (std::int64_t p = 1; p <= 24; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      WindowCursor c;
      c.reset(e, p, 1);
      for (SubtaskIndex i = 1; i <= 4 * e + 3; ++i) {
        ASSERT_EQ(c.index, i);
        ASSERT_EQ(c.rel, subtask_release(e, p, i)) << e << "/" << p << " i=" << i;
        ASSERT_EQ(c.deadline(), subtask_deadline(e, p, i)) << e << "/" << p << " i=" << i;
        ASSERT_EQ(c.b(), b_bit(e, p, i)) << e << "/" << p << " i=" << i;
        // Job bookkeeping: position within the job and the job's release.
        ASSERT_EQ(c.idx_in_job, (i - 1) % e + 1);
        ASSERT_EQ(c.job_rel, (i - 1) / e * p);
        c.advance();
      }
    }
  }
}

TEST(WindowCursor, ResetAtArbitraryIndexEqualsAdvancedCursor) {
  const std::int64_t e = 7;
  const std::int64_t p = 19;
  WindowCursor walked;
  walked.reset(e, p, 1);
  for (SubtaskIndex i = 1; i <= 60; ++i) {
    WindowCursor jumped;
    jumped.reset(e, p, i);
    EXPECT_EQ(jumped.rel, walked.rel) << i;
    EXPECT_EQ(jumped.rel_next, walked.rel_next) << i;
    EXPECT_EQ(jumped.rem_next, walked.rem_next) << i;
    EXPECT_EQ(jumped.idx_in_job, walked.idx_in_job) << i;
    EXPECT_EQ(jumped.job_rel, walked.job_rel) << i;
    walked.advance();
  }
}

TEST(WindowCursor, LargeValuesStayExact) {
  // A long walk on a weight near 1 exercises the remainder carry often.
  const std::int64_t e = 999;
  const std::int64_t p = 1000;
  WindowCursor c;
  c.reset(e, p, 1);
  for (SubtaskIndex i = 1; i <= 5000; ++i) {
    ASSERT_EQ(c.rel, subtask_release(e, p, i));
    ASSERT_EQ(c.deadline(), subtask_deadline(e, p, i));
    ASSERT_EQ(c.b(), b_bit(e, p, i));
    c.advance();
  }
}

}  // namespace
}  // namespace pfair
