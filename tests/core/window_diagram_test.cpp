#include "core/window_diagram.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pfair {
namespace {

TEST(WindowDiagram, Fig1aFirstSubtaskBar) {
  // T1 of weight 8/11: window [0, 2) -> "[=" at columns 0..1.
  const std::string out = render_window_diagram(8, 11, 1, 1);
  EXPECT_NE(out.find("T1  |[="), std::string::npos) << out;
}

TEST(WindowDiagram, Fig1aHasEightRowsAndRuler) {
  const std::string out = render_window_diagram(8, 11, 1, 8);
  std::size_t rows = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 9u);  // 8 subtasks + ruler
  EXPECT_NE(out.find("(digit marks every 5 slots)"), std::string::npos);
}

TEST(WindowDiagram, RowWidthsMatchLatestDeadline) {
  // All rows padded to the max deadline (11 for the first job of 8/11).
  const std::string out = render_window_diagram(8, 11, 1, 8);
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);  // top row: T8
  // "T8  |" + 11 columns + "|"
  EXPECT_EQ(line.size(), 4u + 1u + 11u + 1u);
}

TEST(WindowDiagram, IsOffsetsShiftWindows) {
  // Fig. 1(b): T5 released one slot late (offset 1); its bar starts one
  // column later than the synchronous one.
  const std::string sync = render_window_diagram(8, 11, 5, 5);
  const std::string late = render_window_diagram(8, 11, 5, 5, {1});
  const std::size_t sync_bracket = sync.find('[');
  const std::size_t late_bracket = late.find('[');
  ASSERT_NE(sync_bracket, std::string::npos);
  ASSERT_NE(late_bracket, std::string::npos);
  EXPECT_EQ(late_bracket, sync_bracket + 1);
}

TEST(WindowDiagram, UnitWeightWindowsAreSingleSlots) {
  const std::string out = render_window_diagram(1, 1, 1, 3);
  // Each window is "[", no "=" fill.
  EXPECT_EQ(out.find('='), std::string::npos);
}

}  // namespace
}  // namespace pfair
