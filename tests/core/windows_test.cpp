#include "core/windows.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pfair {
namespace {

// ---------------------------------------------------------------------------
// Fig. 1(a): task T of weight 8/11.  The paper states r(T1) = 0,
// d(T1) = 2, |w(T1)| = 2; b(Ti) = 1 for 1 <= i <= 7 and b(T8) = 0;
// group deadline of T3 is 8 and of T7 is 11.
// ---------------------------------------------------------------------------

TEST(Windows, Fig1aFirstSubtask) {
  EXPECT_EQ(subtask_release(8, 11, 1), 0);
  EXPECT_EQ(subtask_deadline(8, 11, 1), 2);
  EXPECT_EQ(window_length(8, 11, 1), 2);
}

TEST(Windows, Fig1aAllWindowsOfFirstJob) {
  // Releases and deadlines of T1..T8 read off Fig. 1(a).
  constexpr Time r[] = {0, 1, 2, 4, 5, 6, 8, 9};
  constexpr Time d[] = {2, 3, 5, 6, 7, 9, 10, 11};
  for (SubtaskIndex i = 1; i <= 8; ++i) {
    EXPECT_EQ(subtask_release(8, 11, i), r[i - 1]) << "i=" << i;
    EXPECT_EQ(subtask_deadline(8, 11, i), d[i - 1]) << "i=" << i;
  }
}

TEST(Windows, Fig1aBBits) {
  for (SubtaskIndex i = 1; i <= 7; ++i) EXPECT_EQ(b_bit(8, 11, i), 1) << "i=" << i;
  EXPECT_EQ(b_bit(8, 11, 8), 0);
}

TEST(Windows, Fig1aGroupDeadlines) {
  EXPECT_EQ(group_deadline(8, 11, 3), 8);
  EXPECT_EQ(group_deadline(8, 11, 7), 11);
}

TEST(Windows, Fig1aSecondJobShiftsByPeriod) {
  // T9..T16 are the second job; every window shifts by p = 11.
  for (SubtaskIndex i = 1; i <= 8; ++i) {
    EXPECT_EQ(subtask_release(8, 11, i + 8), subtask_release(8, 11, i) + 11);
    EXPECT_EQ(subtask_deadline(8, 11, i + 8), subtask_deadline(8, 11, i) + 11);
    EXPECT_EQ(b_bit(8, 11, i + 8), b_bit(8, 11, i));
  }
}

// ---------------------------------------------------------------------------
// Structural properties from Sec. 2.
// ---------------------------------------------------------------------------

TEST(Windows, ConsecutiveWindowsOverlapByAtMostOneSlot) {
  // r(T_{i+1}) is either d(T_i) - 1 or d(T_i).
  for (std::int64_t p = 1; p <= 24; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      for (SubtaskIndex i = 1; i <= 3 * e; ++i) {
        const Time d = subtask_deadline(e, p, i);
        const Time rn = subtask_release(e, p, i + 1);
        EXPECT_TRUE(rn == d - 1 || rn == d) << e << "/" << p << " i=" << i;
        // b-bit encodes exactly this distinction.
        EXPECT_EQ(b_bit(e, p, i), rn == d - 1 ? 1 : 0);
      }
    }
  }
}

TEST(Windows, WindowLengthsWithinKnownBounds) {
  // |w(T_i)| = ceil(i/w) - floor((i-1)/w) is either ceil(1/w) or
  // ceil(1/w) + 1... in particular heavy tasks (w >= 1/2) only have
  // windows of length 2 or 3, and weight-1 tasks only length 1.
  for (std::int64_t p = 1; p <= 24; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      const Time base = ceil_div(p, e);
      for (SubtaskIndex i = 1; i <= 3 * e; ++i) {
        const Time len = window_length(e, p, i);
        EXPECT_GE(len, base == 1 ? 1 : base - 0) << e << "/" << p;
        EXPECT_LE(len, base + 1) << e << "/" << p << " i=" << i;
        if (e == p) EXPECT_EQ(len, 1);
        if (2 * e >= p && e < p) {
          EXPECT_GE(len, 2);
          EXPECT_LE(len, 3);
        }
      }
    }
  }
}

TEST(Windows, EveryJobGetsExactlyEWindowsPerPeriod) {
  // Subtasks (k-1)e+1 .. ke all have windows within [(k-1)p, kp].
  for (std::int64_t p = 1; p <= 20; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      for (std::int64_t k = 1; k <= 3; ++k) {
        const SubtaskIndex first = job_first_subtask(e, k);
        EXPECT_EQ(subtask_release(e, p, first), (k - 1) * p);
        EXPECT_EQ(subtask_deadline(e, p, k * e), k * p);
      }
    }
  }
}

TEST(Windows, GroupDeadlineClosedFormMatchesDefinition) {
  // Exhaustive check over all heavy weights with p <= 40, three jobs
  // deep: the closed form must agree with the paper's definition.
  for (std::int64_t p = 1; p <= 40; ++p) {
    for (std::int64_t e = (p + 1) / 2; e <= p; ++e) {
      for (SubtaskIndex i = 1; i <= 3 * e; ++i) {
        EXPECT_EQ(group_deadline(e, p, i), group_deadline_by_definition(e, p, i))
            << "weight " << e << "/" << p << " i=" << i;
      }
    }
  }
}

TEST(Windows, GroupDeadlineZeroForLightTasks) {
  EXPECT_EQ(group_deadline(1, 3, 1), 0);
  EXPECT_EQ(group_deadline(2, 5, 4), 0);
  EXPECT_EQ(group_deadline(5, 11, 2), 0);
}

TEST(Windows, GroupDeadlineAtLeastSubtaskDeadlineForHeavyTasks) {
  for (std::int64_t p = 2; p <= 30; ++p) {
    for (std::int64_t e = (p + 1) / 2; e < p; ++e) {
      for (SubtaskIndex i = 1; i <= 2 * e; ++i) {
        EXPECT_GE(group_deadline(e, p, i), subtask_deadline(e, p, i))
            << e << "/" << p << " i=" << i;
      }
    }
  }
}

TEST(Windows, GroupDeadlineWeightHalfEqualsDeadline) {
  // Weight 1/2: every window has length 2 and b = 0, so each cascade
  // ends immediately: D(T_i) = d(T_i).
  for (SubtaskIndex i = 1; i <= 10; ++i) {
    EXPECT_EQ(b_bit(1, 2, i), 0);
    EXPECT_EQ(group_deadline(1, 2, i), subtask_deadline(1, 2, i));
  }
}

TEST(Windows, WeightThreeQuartersGroupDeadlines) {
  // Worked example: weight 3/4, d = 2,3,4; cascades all end at 4.
  EXPECT_EQ(group_deadline(3, 4, 1), 4);
  EXPECT_EQ(group_deadline(3, 4, 2), 4);
  EXPECT_EQ(group_deadline(3, 4, 3), 4);
  // Second job shifts by p = 4.
  EXPECT_EQ(group_deadline(3, 4, 4), 8);
}

TEST(Windows, UnitWeightTaskHasUnitWindows) {
  for (SubtaskIndex i = 1; i <= 20; ++i) {
    EXPECT_EQ(subtask_release(7, 7, i), i - 1);
    EXPECT_EQ(subtask_deadline(7, 7, i), i);
    EXPECT_EQ(b_bit(7, 7, i), 0);
  }
}

TEST(Windows, ReleaseTimesAreNonDecreasing) {
  for (std::int64_t p = 1; p <= 16; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      for (SubtaskIndex i = 1; i < 4 * e; ++i) {
        EXPECT_LE(subtask_release(e, p, i), subtask_release(e, p, i + 1));
        EXPECT_LT(subtask_deadline(e, p, i), subtask_deadline(e, p, i + 1) + 1);
      }
    }
  }
}

}  // namespace
}  // namespace pfair
