#include "core/dynamics.h"

#include <gtest/gtest.h>

namespace pfair {
namespace {

TEST(MayJoin, ExactCapacityBoundary) {
  EXPECT_TRUE(may_join(Rational(3, 2), Rational(1, 2), 2));   // exactly 2
  EXPECT_FALSE(may_join(Rational(3, 2), Rational(2, 3), 2));  // 13/6 > 2
  EXPECT_TRUE(may_join(Rational(0), Rational(1), 1));
}

TEST(EarliestLeave, NeverScheduledTaskLeavesImmediately) {
  EXPECT_EQ(earliest_leave_time(1, 3, 0, 0), 0);
}

TEST(EarliestLeave, LightTaskUsesDeadlinePlusBBit) {
  // weight 1/3, subtask 1: d = 3, b = 0 -> leave at 3.
  EXPECT_EQ(earliest_leave_time(1, 3, 1, 0), 3);
  // weight 2/5, subtask 1: d = ceil(5/2) = 3, b = 1 -> leave at 4.
  EXPECT_EQ(earliest_leave_time(2, 5, 1, 0), 4);
}

TEST(EarliestLeave, HeavyTaskWaitsPastGroupDeadline) {
  // weight 8/11, subtask 3: group deadline 8 -> leave at 9 ("after").
  EXPECT_EQ(earliest_leave_time(8, 11, 3, 0), 9);
}

TEST(EarliestLeave, OffsetShiftsTheRule) {
  EXPECT_EQ(earliest_leave_time(1, 3, 1, 100), 103);
  EXPECT_EQ(earliest_leave_time(8, 11, 3, 50), 59);
}

TEST(EarliestLeave, LeaveTimeNeverBeforeSubtaskDeadline) {
  for (std::int64_t p = 1; p <= 16; ++p) {
    for (std::int64_t e = 1; e <= p; ++e) {
      for (SubtaskIndex i = 1; i <= 2 * e; ++i) {
        EXPECT_GE(earliest_leave_time(e, p, i, 0), subtask_deadline(e, p, i))
            << e << "/" << p << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace pfair
