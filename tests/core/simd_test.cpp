// core/simd.h equivalence: every vector backend must produce output
// bit-identical to the scalar reference — same indices in the same
// order from collect_le, the same minimum from min_value — across
// lengths that cover full vector blocks, tails, and empty input, and
// across value patterns including the kNeverEligible sentinel and
// negative times.  On targets compiled without a vector backend the two
// paths are the same loop and the suite degenerates to a self-check.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/simd.h"
#include "sim/subtask_soa.h"
#include "util/rng.h"

namespace pfair {
namespace {

std::vector<Time> random_lane(Rng& rng, std::size_t n) {
  std::vector<Time> vals;
  vals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.uniform_int(0, 5)) {
      case 0:
        vals.push_back(kNeverEligible);  // parked task
        break;
      case 1:
        vals.push_back(rng.uniform_int(-4, 4));  // near-zero / negative
        break;
      default:
        vals.push_back(rng.uniform_int(0, 1000));
        break;
    }
  }
  return vals;
}

TEST(Simd, BackendNameMatchesVectorizedFlag) {
  const std::string name = simd::backend_name();
  if (simd::vectorized()) {
    EXPECT_TRUE(name == "avx2" || name == "neon") << name;
  } else {
    EXPECT_EQ(name, "scalar");
  }
}

TEST(Simd, CollectLeMatchesScalarOnRandomLanes) {
  Rng rng(0x51d0);
  // Lengths straddle the AVX2 (4-lane) and NEON (2-lane) block sizes.
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                              17u, 33u, 64u, 100u, 257u}) {
    const std::vector<Time> vals = random_lane(rng, n);
    for (const Time bound : {Time{-1}, Time{0}, Time{3}, Time{500}, Time{1000},
                             kNeverEligible}) {
      std::vector<std::uint32_t> scalar_out, simd_out;
      simd::collect_le(vals.data(), n, bound, /*base=*/7, scalar_out, false);
      simd::collect_le(vals.data(), n, bound, /*base=*/7, simd_out, true);
      ASSERT_EQ(scalar_out, simd_out) << "n=" << n << " bound=" << bound;
      // Cross-check against a trivially correct oracle.
      std::vector<std::uint32_t> expect;
      for (std::size_t i = 0; i < n; ++i) {
        if (vals[i] <= bound) expect.push_back(7 + static_cast<std::uint32_t>(i));
      }
      ASSERT_EQ(scalar_out, expect) << "n=" << n << " bound=" << bound;
    }
  }
}

TEST(Simd, CollectLeAppendsWithoutClearing) {
  const std::vector<Time> vals = {1, 5, 2};
  std::vector<std::uint32_t> out = {99};
  simd::collect_le(vals.data(), vals.size(), 2, 0, out, simd::vectorized());
  const std::vector<std::uint32_t> expect = {99, 0, 2};
  EXPECT_EQ(out, expect);
}

TEST(Simd, MinValueMatchesScalarOnRandomLanes) {
  Rng rng(0x51d1);
  for (const std::size_t n :
       {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u, 64u, 257u}) {
    const std::vector<Time> vals = random_lane(rng, n);
    const Time scalar_min = simd::min_value(vals.data(), n, false);
    const Time simd_min = simd::min_value(vals.data(), n, true);
    ASSERT_EQ(scalar_min, simd_min) << "n=" << n;
    Time expect = std::numeric_limits<Time>::max();
    for (const Time v : vals) expect = v < expect ? v : expect;
    ASSERT_EQ(scalar_min, expect) << "n=" << n;
  }
}

TEST(Simd, MinValueOfEmptyAndAllParkedIsNeverEligible) {
  EXPECT_EQ(simd::min_value(nullptr, 0, true), std::numeric_limits<Time>::max());
  const std::vector<Time> parked(13, kNeverEligible);
  EXPECT_EQ(simd::min_value(parked.data(), parked.size(), true), kNeverEligible);
  EXPECT_EQ(simd::min_value(parked.data(), parked.size(), false), kNeverEligible);
}

TEST(Simd, MinValueHandlesExtremes) {
  const std::vector<Time> vals = {std::numeric_limits<Time>::max(),
                                  std::numeric_limits<Time>::min(), 0, 42,
                                  std::numeric_limits<Time>::max()};
  EXPECT_EQ(simd::min_value(vals.data(), vals.size(), true),
            std::numeric_limits<Time>::min());
  EXPECT_EQ(simd::min_value(vals.data(), vals.size(), false),
            std::numeric_limits<Time>::min());
}

}  // namespace
}  // namespace pfair
