#include "overhead/calibrate.h"

#include <gtest/gtest.h>

#include "overhead/inflation.h"

namespace pfair {
namespace {

CalibrationConfig quick() {
  CalibrationConfig c;
  c.horizon = 600;
  c.sets = 1;
  c.seed = 7;
  return c;
}

TEST(Calibrate, ProducesPositiveCostsEverywhere) {
  const SchedCostModel m = calibrate_sched_costs(quick());
  for (const double n : SchedCostModel::kTaskCounts) {
    EXPECT_GT(m.edf_us(n), 0.0) << "n=" << n;
    for (const double procs : SchedCostModel::kProcCounts) {
      EXPECT_GT(m.pd2_us(n, static_cast<int>(procs)), 0.0)
          << "n=" << n << " m=" << procs;
    }
  }
}

TEST(Calibrate, CostsStayWellBelowTheQuantum) {
  // Eq. (3) only makes sense if the per-invocation cost is a small
  // fraction of the 1 ms quantum; calibration on any plausible host
  // lands orders of magnitude below it.
  const SchedCostModel m = calibrate_sched_costs(quick());
  EXPECT_LT(m.pd2_us(1000, 16), 100.0);
  EXPECT_LT(m.edf_us(1000), 100.0);
}

TEST(Calibrate, CalibratedModelDrivesEquationThree) {
  OverheadParams params;
  params.sched = calibrate_sched_costs(quick());
  const OhTask t{10000.0, 100000.0, 40.0};
  const Pd2Inflation inf = inflate_pd2(t, params, 100, 4);
  EXPECT_TRUE(inf.feasible);
  EXPECT_GT(inf.execution_us, t.execution_us);
  EXPECT_LE(inf.iterations, 5);
}

TEST(Calibrate, DeterministicForSameSeed) {
  const SchedCostModel a = calibrate_sched_costs(quick());
  const SchedCostModel b = calibrate_sched_costs(quick());
  // Timing is inherently noisy; determinism applies to the *workloads*,
  // so values must be positive and within an order of magnitude of each
  // other (the real property: no structural divergence).
  for (const double n : {50.0, 500.0}) {
    EXPECT_GT(a.edf_us(n), 0.0);
    EXPECT_GT(b.edf_us(n), 0.0);
    EXPECT_LT(a.edf_us(n) / b.edf_us(n), 10.0);
    EXPECT_GT(a.edf_us(n) / b.edf_us(n), 0.1);
  }
}

}  // namespace
}  // namespace pfair
