#include "overhead/quantum_tradeoff.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace pfair {
namespace {

std::vector<OhTask> sample_tasks(double total_util, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  OhWorkloadConfig cfg;
  cfg.n_tasks = n;
  cfg.total_utilization = total_util;
  return generate_oh_tasks(cfg, rng);
}

TEST(QuantumTradeoff, RoundingLossShrinksWithSmallerQuantum) {
  const auto tasks = sample_tasks(5.0, 50, 1);
  const OverheadParams params;
  const auto points =
      sweep_quantum_sizes(tasks, params, {250.0, 500.0, 1000.0, 2000.0, 4000.0});
  for (std::size_t k = 1; k < points.size(); ++k) {
    EXPECT_LE(points[k - 1].rounding_loss, points[k].rounding_loss + 1e-9)
        << "q=" << points[k].quantum_us;
  }
}

TEST(QuantumTradeoff, OverheadLossGrowsWithSmallerQuantum) {
  const auto tasks = sample_tasks(5.0, 50, 2);
  const OverheadParams params;
  const auto points = sweep_quantum_sizes(tasks, params, {250.0, 1000.0, 4000.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].overhead_loss, points[1].overhead_loss);
  EXPECT_GT(points[1].overhead_loss, points[2].overhead_loss);
}

TEST(QuantumTradeoff, DecompositionSumsToInflatedUtilization) {
  const auto tasks = sample_tasks(8.0, 100, 3);
  const OverheadParams params;
  double raw = 0.0;
  for (const OhTask& t : tasks) raw += t.utilization();
  for (const auto& pt : sweep_quantum_sizes(tasks, params, {500.0, 1000.0, 2000.0})) {
    ASSERT_TRUE(pt.processors.has_value());
    EXPECT_NEAR(raw + pt.rounding_loss + pt.overhead_loss, pt.inflated_utilization, 1e-9);
    EXPECT_GE(pt.rounding_loss, -1e-9);
    EXPECT_GE(pt.overhead_loss, 0.0);
  }
}

TEST(QuantumTradeoff, ExtremeQuantaAreWorseThanModerate) {
  // The paper's open problem implies an interior optimum: a huge
  // quantum wastes capacity to rounding, a tiny one to overhead.
  const auto tasks = sample_tasks(10.0, 100, 4);
  const OverheadParams params;
  const std::vector<double> candidates = {50.0,   100.0,  250.0,  500.0,
                                          1000.0, 2000.0, 8000.0, 32000.0};
  const auto best = best_quantum(tasks, params, candidates);
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(*best, candidates.front());
  EXPECT_LT(*best, candidates.back());
}

TEST(QuantumTradeoff, InfeasibleQuantumReported) {
  // A near-full-utilization task has no room for per-quantum overhead:
  // the inflation pushes e' past the period and the fixed point reports
  // infeasibility (the task's quantised weight would exceed 1).
  std::vector<OhTask> tasks = {{990.0, 1000.0, 100.0}};
  const OverheadParams params;
  const auto pt = evaluate_quantum(tasks, params, 100.0, 1);
  EXPECT_FALSE(pt.processors.has_value());
}

TEST(QuantumTradeoff, HugeQuantumRoundsTinyTasksToFullQuanta) {
  // The paper's epsilon example: a tiny requirement rounds up to a full
  // quantum, so with q larger than the period the task consumes an
  // entire processor share it does not need.
  std::vector<OhTask> tasks = {{10.0, 10000.0, 0.0}};  // u = 0.001
  OverheadParams params;
  const auto coarse = evaluate_quantum(tasks, params, 10000.0, 1);
  ASSERT_TRUE(coarse.processors.has_value());
  EXPECT_NEAR(coarse.rounding_loss, 0.999, 1e-9);  // 1 quantum / 1-quantum period
  const auto fine = evaluate_quantum(tasks, params, 10.0, 1);
  ASSERT_TRUE(fine.processors.has_value());
  EXPECT_LT(fine.rounding_loss, 0.01);
}

}  // namespace
}  // namespace pfair
