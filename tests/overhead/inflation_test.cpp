#include "overhead/inflation.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace pfair {
namespace {

OverheadParams zero_overhead() {
  OverheadParams p;
  p.context_switch_us = 0.0;
  SchedCostModel m;
  std::array<double, 9> zeros{};
  m.set_edf_table(zeros);
  for (std::size_t i = 0; i < SchedCostModel::kProcCounts.size(); ++i)
    m.set_pd2_table(i, zeros);
  p.sched = m;
  return p;
}

TEST(SchedCostModel, InterpolatesBetweenTablePoints) {
  const SchedCostModel m = SchedCostModel::paper_defaults();
  // Monotone in task count and processor count.
  EXPECT_LT(m.edf_us(15), m.edf_us(1000));
  EXPECT_LT(m.pd2_us(100, 1), m.pd2_us(100, 16));
  EXPECT_LT(m.pd2_us(100, 2), m.pd2_us(500, 2));
  // Interpolation stays between neighbours.
  const double mid = m.edf_us(62.5);  // halfway between 50 and 75
  EXPECT_GT(mid, m.edf_us(50));
  EXPECT_LT(mid, m.edf_us(75));
  // Clamped outside the measured range.
  EXPECT_DOUBLE_EQ(m.edf_us(5), m.edf_us(15));
  EXPECT_DOUBLE_EQ(m.edf_us(5000), m.edf_us(1000));
}

TEST(SchedCostModel, PaperMagnitudes) {
  const SchedCostModel m = SchedCostModel::paper_defaults();
  // "the overhead is still less than 8us" (PD2, 1 proc, 1000 tasks);
  // "when the number of tasks is at most 100, the overhead of PD2 is
  // less than 3us"; "the scheduling cost for at most 200 tasks is still
  // less than 20us, even for 16 processors".
  EXPECT_LT(m.pd2_us(1000, 1), 8.0);
  EXPECT_LE(m.pd2_us(100, 1), 3.0);
  EXPECT_LE(m.pd2_us(200, 16), 20.0 + 1.5);  // read off the graph, small slack
  EXPECT_LT(m.edf_us(1000), 3.0);
}

TEST(InflateEdf, Formula) {
  OverheadParams p;  // defaults: C = 5, paper tables
  const OhTask t{10000.0, 100000.0, 40.0};
  const double s = p.sched.edf_us(50);
  EXPECT_DOUBLE_EQ(inflate_edf_us(t, 70.0, p, 50), 10000.0 + 2 * (s + 5.0) + 70.0);
}

TEST(InflateEdf, ZeroOverheadIsIdentity) {
  const OverheadParams p = zero_overhead();
  const OhTask t{12345.0, 100000.0, 40.0};
  EXPECT_DOUBLE_EQ(inflate_edf_us(t, 0.0, p, 100), 12345.0);
}

TEST(InflatePd2, ZeroOverheadQuantisesOnly) {
  const OverheadParams p = zero_overhead();
  const OhTask t{2500.0, 100000.0, 0.0};
  const Pd2Inflation inf = inflate_pd2(t, p, 100, 4);
  EXPECT_TRUE(inf.feasible);
  EXPECT_EQ(inf.quanta, 3);  // ceil(2.5ms / 1ms)
  EXPECT_EQ(inf.period_quanta, 100);
  EXPECT_NEAR(inf.weight(), 0.03, 1e-12);
}

TEST(InflatePd2, FixedPointConvergesWithinFiveIterations) {
  // The paper: "convergence usually occurs within five iterations".
  OverheadParams p;
  Rng rng(0x9);
  OhWorkloadConfig cfg;
  cfg.n_tasks = 50;
  cfg.total_utilization = 10.0;
  const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
  for (const OhTask& t : tasks) {
    const Pd2Inflation inf = inflate_pd2(t, p, tasks.size(), 16);
    EXPECT_TRUE(inf.feasible);
    EXPECT_LE(inf.iterations, 5) << "e=" << t.execution_us << " p=" << t.period_us;
    EXPECT_GE(inf.execution_us, t.execution_us);
  }
}

TEST(InflatePd2, PreemptionTermUsesMinRule) {
  // A task spanning E quanta in a period of P quanta pays for
  // min(E-1, P-E) preemptions.  With huge scheduling costs zeroed and
  // C = 10, D = 0: e' = e + C + min(E-1, P-E)*C exactly (one switch-in
  // plus per-preemption switches).
  OverheadParams p = zero_overhead();
  p.context_switch_us = 10.0;
  // e = 8000us: the first pass sees E = 8 -> min(7, 2) = 2 preemptions
  // (e' = 8030), which spills into a 9th quantum; the fixed point
  // settles at E = 9 -> min(8, 1) = 1: e' = 8000 + 10 + 10 = 8020.
  const OhTask dense{8000.0, 10000.0, 0.0};
  EXPECT_NEAR(inflate_pd2(dense, p, 10, 2).execution_us, 8020.0, 1e-9);
  // e = 2000us: first pass E = 2 -> min(1, 8) = 1 (e' = 2020), spilling
  // into a 3rd quantum; fixed point at E = 3 -> min(2, 7) = 2:
  // e' = 2000 + 10 + 20 = 2030.
  const OhTask sparse{2000.0, 10000.0, 0.0};
  EXPECT_NEAR(inflate_pd2(sparse, p, 10, 2).execution_us, 2030.0, 1e-9);
}

TEST(InflatePd2, InfeasibleWhenInflationExceedsPeriod) {
  OverheadParams p;
  // A 1-quantum period cannot absorb any inflation beyond e = q.
  const OhTask t{999.0, 1000.0, 50.0};
  const Pd2Inflation inf = inflate_pd2(t, p, 1000, 16);
  EXPECT_FALSE(inf.feasible);
  EXPECT_FALSE(pd2_min_processors({t}, p).has_value());
}

TEST(MinProcessors, Pd2MatchesExactCeilWithoutOverheads) {
  const OverheadParams p = zero_overhead();
  // Utilizations sum to 2.5 in whole quanta -> 3 processors.
  std::vector<OhTask> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back({5000.0, 10000.0, 0.0});
  const auto m = pd2_min_processors(tasks, p);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 3);
}

TEST(EdfFf, DecreasingPeriodOrderAndDelayTerm) {
  OverheadParams p = zero_overhead();
  p.context_switch_us = 0.0;
  // Two tasks, the longer-period one has a large cache delay.  The
  // short-period task placed on the same processor must absorb that
  // delay in its inflated cost.
  std::vector<OhTask> tasks;
  tasks.push_back({10000.0, 100000.0, 5000.0});  // long period, D = 5ms
  tasks.push_back({10000.0, 20000.0, 0.0});      // short period
  const EdfFfResult r = edf_ff_partition(tasks, p);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.processors, 1);
  // Short task: (10000 + 5000) / 20000 = 0.75; long: 0.1.
  EXPECT_NEAR(r.inflated_util[1], 0.75, 1e-12);
  EXPECT_NEAR(r.inflated_util[0], 0.1, 1e-12);
  EXPECT_NEAR(r.total_inflated_utilization, 0.85, 1e-12);
}

TEST(EdfFf, SpillsToNewProcessorWhenDelayInflationOverflows) {
  OverheadParams p = zero_overhead();
  std::vector<OhTask> tasks;
  tasks.push_back({60000.0, 100000.0, 30000.0});  // u = 0.6, huge delay
  tasks.push_back({25000.0, 50000.0, 0.0});       // u = 0.5 raw
  // Same processor would cost 0.6 + (25000+30000)/50000 = 1.7 > 1.
  const EdfFfResult r = edf_ff_partition(tasks, p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.processors, 2);
  EXPECT_NE(r.assignment[0], r.assignment[1]);
}

TEST(EdfFf, RespectsMaxProcessors) {
  OverheadParams p = zero_overhead();
  std::vector<OhTask> tasks(4, OhTask{600.0, 1000.0, 0.0});  // 4 x 0.6
  EXPECT_FALSE(edf_ff_partition(tasks, p, 3).feasible);
  EXPECT_TRUE(edf_ff_partition(tasks, p, 4).feasible);
}

TEST(LossBreakdown, ComponentsAreNonNegativeAndConsistent) {
  OverheadParams p;
  Rng rng(0x77);
  OhWorkloadConfig cfg;
  cfg.n_tasks = 50;
  cfg.total_utilization = 8.0;
  const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
  const LossBreakdown lb = loss_breakdown(tasks, p);
  ASSERT_TRUE(lb.valid);
  EXPECT_NEAR(lb.raw_utilization, 8.0, 1e-6);
  EXPECT_GE(lb.pd2_loss, 0.0);
  EXPECT_GE(lb.edf_loss, 0.0);
  EXPECT_GE(lb.ff_loss, 0.0);
  EXPECT_LE(lb.pd2_loss, 1.0);
  EXPECT_LE(lb.edf_loss + lb.ff_loss, 1.0);
  EXPECT_GE(lb.pd2_processors, 8);
  EXPECT_GE(lb.edfff_processors, 8);
}

TEST(LossBreakdown, ZeroOverheadGivesZeroEdfLoss) {
  const OverheadParams p = zero_overhead();
  std::vector<OhTask> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back({10000.0, 40000.0, 0.0});  // 8 x 0.25
  const LossBreakdown lb = loss_breakdown(tasks, p);
  ASSERT_TRUE(lb.valid);
  EXPECT_NEAR(lb.edf_loss, 0.0, 1e-12);
  EXPECT_NEAR(lb.pd2_loss, 0.0, 1e-12);  // 10ms is a whole number of quanta
  EXPECT_EQ(lb.edfff_processors, 2);
  EXPECT_NEAR(lb.ff_loss, 0.0, 1e-12);  // 8 x 0.25 packs exactly
}

}  // namespace
}  // namespace pfair
