// Simulator self-consistency properties: determinism, resumability, and
// agreement between the trace and the aggregate counters.
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TaskSet sample_set(std::uint64_t seed, int m) {
  Rng rng(seed);
  return generate_feasible_taskset(rng, m, 14, 14, /*fill=*/true);
}

TEST(Consistency, IdenticalRunsProduceIdenticalMetrics) {
  for (int trial = 0; trial < 4; ++trial) {
    const TaskSet set = sample_set(100 + static_cast<std::uint64_t>(trial), 3);
    engine::Metrics first;
    for (int run = 0; run < 2; ++run) {
      PfairConfig sc;
      sc.processors = 3;
      PfairSimulator sim(sc);
      for (const Task& t : set.tasks()) sim.add_task(t);
      sim.run_until(777);
      if (run == 0) {
        first = sim.metrics();
      } else {
        EXPECT_EQ(first.busy_quanta, sim.metrics().busy_quanta);
        EXPECT_EQ(first.preemptions, sim.metrics().preemptions);
        EXPECT_EQ(first.migrations, sim.metrics().migrations);
        EXPECT_EQ(first.context_switches, sim.metrics().context_switches);
        EXPECT_EQ(first.jobs_completed, sim.metrics().jobs_completed);
      }
    }
  }
}

TEST(Consistency, SteppedRunEqualsOneShotRun) {
  const TaskSet set = sample_set(55, 2);
  PfairConfig sc;
  sc.processors = 2;
  sc.record_trace = true;
  PfairSimulator once(sc);
  PfairSimulator stepped(sc);
  for (const Task& t : set.tasks()) {
    once.add_task(t);
    stepped.add_task(t);
  }
  once.run_until(600);
  Rng rng(9);
  while (stepped.now() < 600)
    stepped.run_until(std::min<Time>(600, stepped.now() + rng.uniform_int(1, 37)));
  EXPECT_EQ(once.metrics().busy_quanta, stepped.metrics().busy_quanta);
  EXPECT_EQ(once.metrics().context_switches, stepped.metrics().context_switches);
  ASSERT_EQ(once.trace().size(), stepped.trace().size());
  for (std::size_t t = 0; t < once.trace().size(); ++t) {
    EXPECT_EQ(once.trace()[t].proc_to_task, stepped.trace()[t].proc_to_task)
        << "slot " << t;
  }
}

TEST(Consistency, TraceAgreesWithCounters) {
  const TaskSet set = sample_set(77, 3);
  PfairConfig sc;
  sc.processors = 3;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  std::vector<TaskId> ids;
  for (const Task& t : set.tasks()) ids.push_back(sim.add_task(t));
  sim.run_until(500);

  const ScheduleTrace& tr = sim.trace();
  // busy quanta
  std::uint64_t busy = 0;
  std::uint64_t switches = 0;
  std::uint64_t migrations = 0;
  std::vector<TaskId> prev(3, kNoTask);
  std::vector<ProcId> last_proc(ids.size(), kNoProc);
  for (std::size_t t = 0; t < tr.size(); ++t) {
    for (ProcId p = 0; p < 3; ++p) {
      const TaskId id = tr[t].proc_to_task[p];
      if (id == kNoTask) continue;
      ++busy;
      if (prev[p] != id) ++switches;
      if (last_proc[id] != kNoProc && last_proc[id] != p) ++migrations;
      last_proc[id] = p;
    }
    prev = tr[t].proc_to_task;
  }
  EXPECT_EQ(busy, sim.metrics().busy_quanta);
  EXPECT_EQ(switches, sim.metrics().context_switches);
  EXPECT_EQ(migrations, sim.metrics().migrations);
  // per-task allocations
  for (std::size_t k = 0; k < ids.size(); ++k)
    EXPECT_EQ(tr.allocation(ids[k], 500), sim.allocated(ids[k]));
}

TEST(Consistency, FuzzedLegalOperationSequencesNeverMiss) {
  // Random legal operations (joins within capacity, rule-abiding
  // leaves/reweights, repairs that restore capacity before overload)
  // must never produce a deadline miss.
  Rng rng(0xf022);
  for (int trial = 0; trial < 6; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    PfairConfig sc;
    sc.processors = 4;
    PfairSimulator sim(sc);
    std::vector<TaskId> live;
    for (int step = 0; step < 30; ++step) {
      sim.run_until(sim.now() + trial_rng.uniform_int(1, 20));
      switch (trial_rng.uniform_int(0, 3)) {
        case 0: {  // join
          const Task t = random_pfair_task(trial_rng, 12);
          const auto id = sim.join(t);
          if (id.has_value()) live.push_back(*id);
          break;
        }
        case 1: {  // orderly leave
          if (live.empty()) break;
          const std::size_t k = static_cast<std::size_t>(
              trial_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          sim.request_leave(live[k]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
        case 2: {  // orderly reweight
          if (live.empty()) break;
          const std::size_t k = static_cast<std::size_t>(
              trial_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          const std::int64_t p = trial_rng.uniform_int(1, 12);
          (void)sim.request_reweight(live[k], trial_rng.uniform_int(1, p), p);
          break;
        }
        case 3:  // nothing (just advance)
          break;
      }
    }
    sim.run_until(sim.now() + 200);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
    EXPECT_EQ(sim.metrics().lag_violations, 0u);
  }
}

}  // namespace
}  // namespace pfair
