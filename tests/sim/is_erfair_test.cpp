// Intra-sporadic behaviour (paper Sec. 2 and Fig. 1(b)): late arrivals
// shift the remaining window chain; early arrivals make a subtask
// eligible before its Pfair release without moving its deadline.
#include <gtest/gtest.h>

#include "core/lag.h"
#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(IntraSporadic, OnTimeArrivalsBehaveLikePeriodic) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator periodic(sc);
  const TaskId a = periodic.add_task(make_task(3, 7));
  PfairSimulator is(sc);
  const TaskId b = is.add_task(make_task(3, 7, TaskKind::kIntraSporadic), {});
  periodic.run_until(140);
  is.run_until(140);
  EXPECT_EQ(periodic.allocated(a), is.allocated(b));
  EXPECT_EQ(is.metrics().deadline_misses, 0u);
}

TEST(IntraSporadic, LateArrivalDelaysExecutionWithoutMiss) {
  // Fig. 1(b): subtask T5 of an 8/11 task becomes eligible one slot
  // late; its window (and all later windows) shift by one slot.
  PfairConfig sc;
  sc.processors = 1;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  // Subtask 5 of weight 8/11 has base release floor(44/8) = 5; arrival
  // at 6 is one slot late.
  std::vector<Time> arrivals = {0, 1, 2, 4, 6};
  const TaskId id = sim.add_task(make_task(8, 11, TaskKind::kIntraSporadic), arrivals);
  sim.run_until(60);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // Windows shifted: total allocation trails the synchronous case by
  // exactly the accumulated delay's worth at the end of each job.
  EXPECT_GT(sim.allocated(id), 0);
  // The subtask that arrived at 6 cannot have run before slot 6.
  EXPECT_EQ(sim.trace().allocation(id, 6), 4);
}

TEST(IntraSporadic, BurstyLateArrivalsNeverMissShiftedDeadlines) {
  Rng rng(0x15);
  for (int trial = 0; trial < 8; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    PfairConfig sc;
    sc.processors = 2;
    PfairSimulator sim(sc);
    // Two IS tasks with random delays plus periodic background load.
    for (int k = 0; k < 2; ++k) {
      const std::int64_t p = trial_rng.uniform_int(4, 10);
      const std::int64_t e = trial_rng.uniform_int(1, p / 2 + 1);
      std::vector<Time> arrivals;
      Time drift = 0;
      for (SubtaskIndex i = 1; i <= 40; ++i) {
        drift += trial_rng.uniform_int(0, 2);  // cumulative lateness
        arrivals.push_back(subtask_release(e, p, i) + drift);
      }
      sim.add_task(make_task(e, p, TaskKind::kIntraSporadic), std::move(arrivals));
    }
    sim.add_task(make_task(1, 2));
    sim.run_until(300);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
  }
}

TEST(IntraSporadic, EarlyArrivalRunsBeforePfairRelease) {
  // A lightly loaded system: subtask 2 arrives at time 0 (early, base
  // release is 5 for weight 1/5... use weight 2/10 -> r(2) = 5).  With
  // an idle processor it may run before slot 5.
  PfairConfig sc;
  sc.processors = 1;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  std::vector<Time> arrivals = {0, 0};  // both subtasks arrive at once
  const TaskId id = sim.add_task(make_task(2, 10, TaskKind::kIntraSporadic), arrivals);
  sim.run_until(20);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // Both quanta of the first job execute within the first two slots.
  EXPECT_EQ(sim.trace().allocation(id, 2), 2);
}

TEST(Erfair, ImprovesResponseTimeVersusPfair) {
  // Response time of the first job of a 4/12 task alone on 1 CPU:
  // Pfair spreads the 4 quanta across the period (finishes at 12);
  // ERfair runs them immediately (finishes at 4).
  PfairConfig sc;
  sc.processors = 1;
  sc.record_trace = true;
  PfairSimulator pf(sc);
  const TaskId a = pf.add_task(make_task(4, 12));
  pf.run_until(12);
  PfairSimulator er(sc);
  const TaskId b = er.add_task(make_task(4, 12, TaskKind::kEarlyRelease));
  er.run_until(12);
  EXPECT_EQ(er.trace().allocation(b, 4), 4);   // done by slot 4
  EXPECT_LT(pf.trace().allocation(a, 4), 4);   // Pfair still pacing
  EXPECT_EQ(pf.trace().allocation(a, 12), 4);  // both finish by deadline
}

TEST(Erfair, LagMayGoBelowMinusOneButNeverAboveOne) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId id = sim.add_task(make_task(5, 25, TaskKind::kEarlyRelease));
  sim.run_until(5);
  // After 5 greedy quanta, lag = (5/25)*5 - 5 = -4: allowed for ERfair.
  EXPECT_EQ(sim.allocated(id), 5);
  EXPECT_LT(sim.task_lag(id), Rational(-1));
  EXPECT_TRUE(lag_within_erfair_bounds(5, 25, sim.now(), sim.allocated(id)));
}

}  // namespace
}  // namespace pfair
