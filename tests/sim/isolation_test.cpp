// Temporal isolation (paper Sec. 5.3): "each task's processor share is
// guaranteed even if other tasks 'misbehave' by attempting to execute
// for more than their prescribed shares."  Under Pfair the isolation is
// structural — a task can never be allocated beyond its windows — so a
// misbehaving task is modelled as one with maximal demand pressure: an
// IS task whose every subtask arrives as early as possible (an infinite
// burst) running alongside well-behaved tasks.
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(Isolation, GreedyBurstCannotExceedItsWeight) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  // Misbehaver: weight 1/4, every subtask "arrives" at time 0 (it would
  // happily run in every slot if allowed).
  std::vector<Time> arrivals(400, 0);
  const TaskId greedy =
      sim.add_task(make_task(1, 4, TaskKind::kIntraSporadic), std::move(arrivals));
  const TaskId honest = sim.add_task(make_task(3, 4, TaskKind::kPeriodic));
  sim.run_until(400);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // The greedy task got exactly its reserved quarter, the honest task
  // exactly its three quarters.
  EXPECT_EQ(sim.allocated(greedy), 100);
  EXPECT_EQ(sim.allocated(honest), 300);
}

TEST(Isolation, BurstOnlyAbsorbsOtherwiseIdleCapacity) {
  // With slack in the system, early arrivals may run ahead (that's the
  // point of IS/ERfair) — but the honest task's own allocation pattern
  // is untouched relative to running alone.
  std::vector<std::int64_t> honest_alone;
  std::vector<std::int64_t> honest_with_burst;
  for (const bool with_burst : {false, true}) {
    PfairConfig sc;
    sc.processors = 2;
    sc.record_trace = true;
    PfairSimulator sim(sc);
    const TaskId honest = sim.add_task(make_task(2, 3, TaskKind::kPeriodic));
    if (with_burst) {
      std::vector<Time> arrivals(300, 0);
      sim.add_task(make_task(1, 3, TaskKind::kIntraSporadic), std::move(arrivals));
    }
    sim.run_until(300);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u);
    auto& out = with_burst ? honest_with_burst : honest_alone;
    for (Time t = 1; t <= 300; ++t)
      out.push_back(sim.trace().allocation(honest, static_cast<std::size_t>(t)));
  }
  EXPECT_EQ(honest_alone, honest_with_burst);
}

TEST(Isolation, ReweightedMisbehaverStillContained) {
  // A task that keeps (legally) growing its weight can only claim what
  // admission grants; the honest task's share survives every change.
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId honest = sim.add_task(make_task(1, 2, TaskKind::kPeriodic));
  const TaskId shifty = sim.add_task(make_task(1, 8, TaskKind::kPeriodic));
  sim.run_until(64);
  // Try to grab the whole machine: rejected (1/2 + 1 > 1).
  EXPECT_FALSE(sim.request_reweight(shifty, 1, 1).has_value());
  // Grab everything that's left: fine.
  const auto switch_at = sim.request_reweight(shifty, 1, 2);
  ASSERT_TRUE(switch_at.has_value());
  sim.run_until(*switch_at + 400);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // Honest share unperturbed throughout.
  EXPECT_EQ(sim.allocated(honest), (*switch_at + 400) / 2);
}

}  // namespace
}  // namespace pfair
