#include "sim/wrr_sim.h"

#include <gtest/gtest.h>

#include "sim/verifier.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(Wrr, PreservesLongRunRates) {
  TaskSet set;
  set.add(make_task(1, 2));
  set.add(make_task(1, 4));
  set.add(make_task(1, 4));
  WrrConfig cfg;
  cfg.processors = 1;
  cfg.frame = 4;
  WrrSimulator sim(set, cfg);
  sim.run_until(4000);
  // Exact budgets (frame 4, weights 1/2 + 1/4 + 1/4): rates exact.
  EXPECT_EQ(sim.allocated(0), 2000);
  EXPECT_EQ(sim.allocated(1), 1000);
  EXPECT_EQ(sim.allocated(2), 1000);
}

TEST(Wrr, LagGrowsWithFrameLength) {
  TaskSet set;
  set.add(make_task(1, 2));
  set.add(make_task(1, 2));
  Rational small_lag;
  Rational big_lag;
  for (const Time frame : {Time{2}, Time{64}}) {
    WrrConfig cfg;
    cfg.processors = 1;
    cfg.frame = frame;
    WrrSimulator sim(set, cfg);
    sim.run_until(1024);
    (frame == 2 ? small_lag : big_lag) = sim.max_abs_lag();
  }
  EXPECT_LT(small_lag, big_lag);
  // With a 64-slot frame the allocation error far exceeds the Pfair
  // bound of one quantum.
  EXPECT_GT(big_lag, Rational(1));
}

TEST(Wrr, ViolatesPfairWindowsWherePd2DoesNot) {
  // The paper's framing: PD2 is a *deadline-based* WRR.  Plain WRR with
  // a coarse frame produces schedules that fail Pfair verification.
  TaskSet set;
  set.add(make_task(1, 3));
  set.add(make_task(2, 3));
  WrrConfig cfg;
  cfg.processors = 1;
  cfg.frame = 30;
  WrrSimulator sim(set, cfg);
  sim.run_until(120);
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(sim.trace(), set, opt);
  EXPECT_FALSE(res.ok);
}

TEST(Wrr, QuantumAlignedFrameMatchesPfairForUniformWeights) {
  // Degenerate case where WRR is fine: equal weights, frame = one
  // period: the round-robin rotation happens to satisfy every window.
  TaskSet set;
  set.add(make_task(1, 2));
  set.add(make_task(1, 2));
  WrrConfig cfg;
  cfg.processors = 1;
  cfg.frame = 2;
  WrrSimulator sim(set, cfg);
  sim.run_until(100);
  VerifyOptions opt;
  opt.processors = 1;
  EXPECT_TRUE(verify_schedule(sim.trace(), set, opt).ok);
  EXPECT_LT(sim.max_abs_lag(), Rational(1));
}

TEST(Wrr, MultiprocessorBudgetsRespectCapacity) {
  Rng rng(0x33);
  const TaskSet set = generate_feasible_taskset(rng, 3, 9, 12, /*fill=*/true);
  WrrConfig cfg;
  cfg.processors = 3;
  cfg.frame = 12;
  WrrSimulator sim(set, cfg);
  sim.run_until(1200);
  // No task may exceed one quantum per slot.
  std::int64_t total = 0;
  for (TaskId id = 0; id < set.size(); ++id) {
    EXPECT_LE(sim.allocated(id), 1200);
    total += sim.allocated(id);
  }
  EXPECT_LE(total, 3 * 1200);
}

}  // namespace
}  // namespace pfair
