// Conformance of the BF and RUN roster additions to the engine
// contracts every other stack already obeys: factory construction with
// non-default configs, request-API admission/refusal bookkeeping,
// metrics-merge invariants for the new scheduling_points counter, and
// seeded determinism — byte-identical reruns, ParallelSweep --jobs
// parity, and the PD2 leg across shard counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/factory.h"
#include "engine/parallel.h"
#include "sim/bf_sim.h"
#include "sim/run_sim.h"
#include "sim/verifier.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace pfair {
namespace {

using engine::SchedulerKind;
using engine::SimulatorConfig;
using engine::task_spec;

const std::vector<UniTask>& workload() {
  static const std::vector<UniTask> tasks = {{1, 4}, {2, 8}, {1, 5}, {3, 16}};
  return tasks;
}

void admit_all(engine::Simulator& sim) {
  for (const UniTask& t : workload())
    ASSERT_TRUE(sim.admit(task_spec(t.execution, t.period)));
}

// --- factory round-trip with non-default configs --------------------

TEST(RosterFactory, BfConfigReachesTheSimulator) {
  SimulatorConfig cfg;
  cfg.bf.processors = 2;
  const std::unique_ptr<engine::Simulator> via = make_simulator(SchedulerKind::kBf, cfg);
  BfSimulator direct(TaskSet{}, cfg.bf);
  admit_all(*via);
  admit_all(direct);
  via->run_until(160);
  direct.run_until(160);
  EXPECT_EQ(via->metrics().scheduling_points, direct.metrics().scheduling_points);
  EXPECT_EQ(via->metrics().busy_quanta, direct.metrics().busy_quanta);
  EXPECT_EQ(via->metrics().deadline_misses, 0u);
}

TEST(RosterFactory, RunConfigReachesTheSimulator) {
  SimulatorConfig cfg;
  cfg.run.processors = 2;
  const std::unique_ptr<engine::Simulator> via = make_simulator(SchedulerKind::kRun, cfg);
  RunSimulator direct(cfg.run);
  admit_all(*via);
  admit_all(direct);
  via->run_until(160);
  direct.run_until(160);
  EXPECT_EQ(via->metrics().scheduling_points, direct.metrics().scheduling_points);
  EXPECT_EQ(via->metrics().busy_quanta, direct.metrics().busy_quanta);
  EXPECT_EQ(via->metrics().deadline_misses, 0u);
}

// --- request-API conformance ----------------------------------------

TEST(RosterRequestApi, BothKindsRejectLateAdmissionAndCountIt) {
  for (const SchedulerKind kind : {SchedulerKind::kBf, SchedulerKind::kRun}) {
    const auto sim = make_simulator(kind);
    ASSERT_TRUE(sim->admit(task_spec(1, 4))) << to_string(kind);
    sim->run_until(1);
    EXPECT_FALSE(sim->admit(task_spec(1, 4))) << to_string(kind);
    EXPECT_EQ(sim->metrics().tasks_admitted, 1u) << to_string(kind);
    EXPECT_EQ(sim->metrics().tasks_rejected, 1u) << to_string(kind);
  }
}

TEST(RosterRequestApi, BothKindsRefuseTheDynamicProtocol) {
  for (const SchedulerKind kind : {SchedulerKind::kBf, SchedulerKind::kRun}) {
    const auto sim = make_simulator(kind);
    EXPECT_FALSE(sim->can_dynamic()) << to_string(kind);
    ASSERT_TRUE(sim->admit(task_spec(1, 4))) << to_string(kind);
    EXPECT_FALSE(sim->join(task_spec(1, 8)).has_value()) << to_string(kind);
    EXPECT_FALSE(sim->leave(0)) << to_string(kind);
    EXPECT_FALSE(sim->request_leave(0).has_value()) << to_string(kind);
    EXPECT_FALSE(sim->request_reweight(0, task_spec(1, 8)).has_value())
        << to_string(kind);
    EXPECT_EQ(sim->earliest_leave(0), -1) << to_string(kind);
  }
}

TEST(RosterRequestApi, RunRefusesOverloadAndHyperperiodOverflowExactly) {
  // RUN's admission is capacity-checked — the documented contrast with
  // PD2, which admits anything and lets misses surface.
  RunSimulator over(RunConfig{1, true});
  ASSERT_TRUE(over.admit(task_spec(1, 2)));
  ASSERT_TRUE(over.admit(task_spec(1, 2)));  // exactly fills M = 1
  EXPECT_FALSE(over.admit(task_spec(1, 1000000)));  // one quantum too many
  EXPECT_EQ(over.metrics().tasks_rejected, 1u);

  RunSimulator lcm_cap(RunConfig{4, true});
  ASSERT_TRUE(lcm_cap.admit(task_spec(1, 999999999)));
  // Consecutive periods are coprime: the tick grid would need their
  // product, far past kMaxLcm.
  EXPECT_FALSE(lcm_cap.admit(task_spec(1, 999999998)));
  EXPECT_EQ(lcm_cap.metrics().tasks_admitted, 1u);
  EXPECT_EQ(lcm_cap.metrics().tasks_rejected, 1u);
}

// --- metrics-merge invariants ---------------------------------------

TEST(RosterMetrics, MergeSumsSchedulingPointsAcrossKinds) {
  BfSimulator bf(TaskSet{}, BfConfig{2, false});
  RunSimulator run(RunConfig{2, false});
  admit_all(bf);
  admit_all(run);
  bf.run_until(80);
  run.run_until(80);
  const std::uint64_t bf_points = bf.metrics().scheduling_points;
  const std::uint64_t run_points = run.metrics().scheduling_points;
  ASSERT_GT(bf_points, 0u);
  ASSERT_GT(run_points, 0u);
  engine::Metrics merged = bf.metrics();
  merged.merge(run.metrics());
  EXPECT_EQ(merged.scheduling_points, bf_points + run_points);
  EXPECT_EQ(merged.slots, 80u);  // max, not sum: same wall-clock horizon
  EXPECT_EQ(merged.busy_quanta,
            bf.metrics().busy_quanta + run.metrics().busy_quanta);
  // Both stacks count one invocation per scheduling point.
  EXPECT_EQ(bf.metrics().scheduler_invocations, bf_points);
  EXPECT_EQ(run.metrics().scheduler_invocations, run_points);
}

// --- seeded determinism ---------------------------------------------

TEST(RosterDeterminism, BfRerunIsByteIdentical) {
  const auto run_once = [](ScheduleTrace* trace_out) {
    BfSimulator sim(TaskSet{}, BfConfig{2, true});
    for (const UniTask& t : workload())
      EXPECT_TRUE(sim.admit(task_spec(t.execution, t.period)));
    sim.run_until(160);
    *trace_out = sim.trace();
    return sim.metrics();
  };
  ScheduleTrace a, b;
  const engine::Metrics ma = run_once(&a);
  const engine::Metrics mb = run_once(&b);
  EXPECT_EQ(ma.scheduling_points, mb.scheduling_points);
  EXPECT_EQ(ma.preemptions, mb.preemptions);
  EXPECT_EQ(ma.migrations, mb.migrations);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t)
    EXPECT_EQ(a[t].proc_to_task, b[t].proc_to_task) << "slot " << t;
  // And the rerun is not merely self-consistent but correct.  BF honours
  // job boundaries, not per-subtask windows within an interval.
  VerifyOptions opts;
  opts.processors = 2;
  opts.check_windows = false;
  opts.check_lags = false;
  opts.check_job_boundaries = true;
  TaskSet tasks;
  for (const UniTask& t : workload()) tasks.add(make_task(t.execution, t.period));
  const VerifyResult vr = verify_schedule(a, tasks, opts);
  EXPECT_TRUE(vr.ok) << vr.first_violation;
}

TEST(RosterDeterminism, RunRerunIsByteIdentical) {
  const auto run_once = [](std::vector<RunSegment>* segments_out) {
    RunSimulator sim(RunConfig{2, true});
    for (const UniTask& t : workload())
      EXPECT_TRUE(sim.admit(task_spec(t.execution, t.period)));
    sim.run_until(160);
    *segments_out = sim.segments();
    return sim.metrics();
  };
  std::vector<RunSegment> a, b;
  const engine::Metrics ma = run_once(&a);
  const engine::Metrics mb = run_once(&b);
  EXPECT_EQ(ma.scheduling_points, mb.scheduling_points);
  EXPECT_EQ(ma.preemptions, mb.preemptions);
  EXPECT_EQ(a, b);
  TaskSet tasks;
  for (const UniTask& t : workload()) tasks.add(make_task(t.execution, t.period));
  const RunVerifyResult v =
      verify_run_segments(a, tasks, 80 /* lcm(4,8,5,16) */, 160, 2);
  EXPECT_TRUE(v.ok) << v.first_violation;
}

TEST(RosterDeterminism, SweepResultsIdenticalAcrossJobs) {
  // The --jobs contract: per-trial results are a pure function of
  // (seed, trial), so worker count cannot leak into a BF/RUN sweep.
  const auto sweep_once = [](int jobs) {
    engine::ParallelSweep sweep(jobs, 0xb0f);
    return sweep.run(11, 24, [](long long, Rng& rng) {
      const TaskSet tasks = generate_feasible_taskset(rng, 2, 6, 16);
      BfSimulator bf(TaskSet{}, BfConfig{2, false});
      RunSimulator run(RunConfig{2, false});
      double acc = 0.0;
      for (TaskId i = 0; i < tasks.size(); ++i) {
        const auto spec = task_spec(tasks[i].execution, tasks[i].period);
        acc += bf.admit(spec) ? 1.0 : 0.0;
        acc += run.admit(spec) ? 1.0 : 0.0;
      }
      bf.run_until(96);
      run.run_until(96);
      acc += static_cast<double>(bf.metrics().scheduling_points) * 1e6;
      acc += static_cast<double>(run.metrics().scheduling_points) * 1e3;
      acc += static_cast<double>(bf.metrics().deadline_misses +
                                 run.metrics().deadline_misses) *
             1e9;
      return acc;
    });
  };
  const std::vector<double> serial = sweep_once(1);
  const std::vector<double> par = sweep_once(2);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], par[i]) << "trial " << i;
}

TEST(RosterDeterminism, Pd2LegIdenticalAcrossShards) {
  // The differential matrix compares BF/RUN against the PD2 leg; that
  // leg must itself be shard-invariant or the comparison is noise.
  const auto pd2_once = [](int shards) {
    SimulatorConfig cfg;
    cfg.pfair.processors = 2;
    cfg.shards = shards;
    const auto sim = make_simulator(SchedulerKind::kPfair, cfg);
    for (const UniTask& t : workload())
      EXPECT_TRUE(sim->admit(task_spec(t.execution, t.period)));
    sim->run_until(160);
    return sim->metrics();
  };
  const engine::Metrics one = pd2_once(1);
  const engine::Metrics two = pd2_once(2);
  EXPECT_EQ(one.busy_quanta, two.busy_quanta);
  EXPECT_EQ(one.deadline_misses, two.deadline_misses);
  EXPECT_EQ(one.jobs_completed, two.jobs_completed);
  EXPECT_EQ(one.preemptions, two.preemptions);
  EXPECT_EQ(one.migrations, two.migrations);
  EXPECT_EQ(one.context_switches, two.context_switches);
}

}  // namespace
}  // namespace pfair
