// Hot-path equivalence suite: the perf machinery (packed priority keys,
// calendar ready queue, idle fast-forward, incremental bookkeeping) must
// be invisible — byte-identical metrics, traces, and event streams
// against the reference configurations it replaced.
#include <gtest/gtest.h>

#include <vector>

#include "obs/bus.h"
#include "qa/gen.h"
#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

/// Captures the full typed event stream for exact comparison.
class RecordingSink final : public obs::Sink {
 public:
  void on_event(const obs::Event& e) override { events_.push_back(e); }
  [[nodiscard]] const std::vector<obs::Event>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<obs::Event> events_;
};

struct RunResult {
  engine::Metrics metrics;
  ScheduleTrace trace;
  std::vector<obs::Event> events;
  std::uint64_t ff_slots = 0;
};

/// Slot-kernel variant: which of the byte-identical implementations a
/// run uses (SoA lane sweeps vs legacy heap+wheel, shard count, SIMD vs
/// scalar sweeps, miss policy).
struct Kernel {
  bool soa = true;
  int shards = 1;
  bool simd = true;
  MissPolicy policy = MissPolicy::kScheduleLate;
};

/// Replays a fuzz case (including its dynamic join/leave script, in the
/// same order qa's oracle replay applies it) under one configuration.
RunResult run_case(const qa::FuzzCase& c, Algorithm alg, bool packed_keys,
                   bool fast_forward, bool observe, Kernel k = {}) {
  PfairConfig cfg;
  cfg.processors = c.processors;
  cfg.algorithm = alg;
  cfg.record_trace = true;
  cfg.packed_keys = packed_keys;
  cfg.idle_fast_forward = fast_forward;
  cfg.soa_kernel = k.soa;
  cfg.shards = k.shards;
  cfg.simd = k.simd;
  cfg.miss_policy = k.policy;
  PfairSimulator sim(cfg);
  obs::EventBus bus;
  RecordingSink sink;
  if (observe) {
    bus.add_sink(&sink);
    sim.attach_observer(&bus);
  }
  for (const Task& t : c.tasks.tasks()) {
    Task spec = t;
    spec.kind = c.kind;
    sim.add_task(spec);
  }
  std::size_t next_join = 0;
  std::size_t next_leave = 0;
  while (next_join < c.joins.size() || next_leave < c.leaves.size()) {
    const Time t_join = next_join < c.joins.size() ? c.joins[next_join].at : c.horizon;
    const Time t_leave =
        next_leave < c.leaves.size() ? c.leaves[next_leave].at : c.horizon;
    const Time at = std::min({t_join, t_leave, c.horizon});
    if (at >= c.horizon) break;
    sim.run_until(at);
    while (next_leave < c.leaves.size() && c.leaves[next_leave].at == at) {
      sim.request_leave(c.leaves[next_leave].task);
      ++next_leave;
    }
    while (next_join < c.joins.size() && c.joins[next_join].at == at) {
      Task spec = c.joins[next_join].task;
      spec.kind = c.kind;
      (void)sim.join(spec);
      ++next_join;
    }
  }
  sim.run_until(c.horizon);
  RunResult r;
  r.metrics = sim.metrics();
  r.trace = sim.trace();
  r.events = sink.events();
  r.ff_slots = sim.fast_forwarded_slots();
  return r;
}

void expect_metrics_identical(const engine::Metrics& a, const engine::Metrics& b,
                              const std::string& what) {
  EXPECT_EQ(a.slots, b.slots) << what;
  EXPECT_EQ(a.busy_quanta, b.busy_quanta) << what;
  EXPECT_EQ(a.idle_quanta, b.idle_quanta) << what;
  EXPECT_EQ(a.jobs_released, b.jobs_released) << what;
  EXPECT_EQ(a.jobs_completed, b.jobs_completed) << what;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << what;
  EXPECT_EQ(a.component_misses, b.component_misses) << what;
  EXPECT_EQ(a.preemptions, b.preemptions) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.context_switches, b.context_switches) << what;
  EXPECT_EQ(a.component_switches, b.component_switches) << what;
  EXPECT_EQ(a.scheduler_invocations, b.scheduler_invocations) << what;
  EXPECT_EQ(a.lag_violations, b.lag_violations) << what;
  EXPECT_EQ(a.first_miss_time, b.first_miss_time) << what;
  EXPECT_EQ(a.response_time.count(), b.response_time.count()) << what;
  // Response times are sums of exact small integers; the running-stat
  // accumulation order is identical, so even the doubles must match.
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean()) << what;
  EXPECT_EQ(a.response_time.min(), b.response_time.min()) << what;
  EXPECT_EQ(a.response_time.max(), b.response_time.max()) << what;
}

void expect_traces_identical(const ScheduleTrace& a, const ScheduleTrace& b,
                             const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t t = 0; t < a.size(); ++t)
    ASSERT_EQ(a[t].proc_to_task, b[t].proc_to_task) << what << " slot " << t;
}

void expect_events_identical(const std::vector<obs::Event>& a,
                             const std::vector<obs::Event>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].kind == b[i].kind && a[i].time == b[i].time &&
                a[i].task == b[i].task && a[i].proc == b[i].proc &&
                a[i].value == b[i].value)
        << what << " event " << i << " diverges (kind "
        << static_cast<int>(a[i].kind) << " vs " << static_cast<int>(b[i].kind)
        << " at t = " << a[i].time << " vs " << b[i].time << ")";
  }
}

// --- packed keys vs the legacy comparator chain --------------------------

// Every generator profile x every subtask-priority algorithm: the packed
// 128-bit key path and the legacy tie-break chain must produce the same
// schedule down to the last observer event.  The observer also forces
// the per-slot path (fast-forward auto-disables), so this isolates the
// ready-queue representation as the only variable.
TEST(HotpathDiff, PackedKeysMatchLegacyOnEveryProfileAndAlgorithm) {
  const Algorithm algs[] = {Algorithm::kPD2, Algorithm::kPF, Algorithm::kPD,
                            Algorithm::kEPDF};
  for (const qa::Profile profile : qa::all_profiles()) {
    qa::GenConfig gc;
    gc.only_profile = profile;
    gc.max_processors = 4;
    gc.max_tasks = 10;
    const qa::TaskSetGen gen(gc, /*seed=*/0x90a7 + static_cast<int>(profile));
    for (std::uint64_t index = 0; index < 3; ++index) {
      const qa::FuzzCase c = gen.make_case(index);
      for (const Algorithm alg : algs) {
        const std::string what = std::string(qa::profile_name(profile)) + "/" +
                                 algorithm_name(alg) + "/case " +
                                 std::to_string(index);
        const RunResult packed = run_case(c, alg, /*packed_keys=*/true,
                                          /*fast_forward=*/true, /*observe=*/true);
        const RunResult legacy = run_case(c, alg, /*packed_keys=*/false,
                                          /*fast_forward=*/true, /*observe=*/true);
        expect_metrics_identical(packed.metrics, legacy.metrics, what);
        expect_traces_identical(packed.trace, legacy.trace, what);
        expect_events_identical(packed.events, legacy.events, what);
      }
    }
  }
}

// --- SoA kernel x shards x SIMD matrix -----------------------------------

// The three-axis differential matrix: {SoA, legacy} x {shards 1, 2, 8} x
// {SIMD, scalar}, for every generator profile and every algorithm.  The
// legacy heap+wheel kernel (which ignores shards and simd) is the
// reference; every SoA cell must reproduce its metrics, trace, and full
// obs event stream byte for byte.  The observer forces the per-slot
// path, so the sweep/merge machinery itself is what's compared.
TEST(HotpathDiff, SoaShardSimdMatrixMatchesLegacyOnEveryProfileAndAlgorithm) {
  const Algorithm algs[] = {Algorithm::kPD2, Algorithm::kPF, Algorithm::kPD,
                            Algorithm::kEPDF};
  const int shard_counts[] = {1, 2, 8};
  for (const qa::Profile profile : qa::all_profiles()) {
    qa::GenConfig gc;
    gc.only_profile = profile;
    gc.max_processors = 4;
    gc.max_tasks = 10;
    const qa::TaskSetGen gen(gc, /*seed=*/0x50a0 + static_cast<int>(profile));
    for (std::uint64_t index = 0; index < 2; ++index) {
      const qa::FuzzCase c = gen.make_case(index);
      for (const Algorithm alg : algs) {
        const std::string base = std::string(qa::profile_name(profile)) + "/" +
                                 algorithm_name(alg) + "/case " +
                                 std::to_string(index);
        const RunResult ref =
            run_case(c, alg, /*packed_keys=*/true, /*fast_forward=*/true,
                     /*observe=*/true, Kernel{/*soa=*/false, 1, true, {}});
        for (const int shards : shard_counts) {
          for (const bool simd : {true, false}) {
            const std::string what = base + "/shards " + std::to_string(shards) +
                                     (simd ? "/simd" : "/scalar");
            const RunResult cell =
                run_case(c, alg, /*packed_keys=*/true, /*fast_forward=*/true,
                         /*observe=*/true, Kernel{/*soa=*/true, shards, simd, {}});
            expect_metrics_identical(cell.metrics, ref.metrics, what);
            expect_traces_identical(cell.trace, ref.trace, what);
            expect_events_identical(cell.events, ref.events, what);
          }
        }
      }
    }
  }
}

// kDrop exercises the miss cascade (dropping a missed subtask can
// release an already-missed successor); EPDF on overloaded heavy sets
// actually misses.  The cascade is the one phase-A step that mutates
// lanes mid-sweep, so it gets its own matrix pass.
TEST(HotpathDiff, DropPolicyCascadeMatchesAcrossKernelsAndShards) {
  qa::GenConfig gc;
  gc.only_profile = qa::Profile::kHeavy;
  gc.max_processors = 3;
  gc.max_tasks = 8;
  const qa::TaskSetGen gen(gc, /*seed=*/0xd309);
  for (std::uint64_t index = 0; index < 4; ++index) {
    const qa::FuzzCase c = gen.make_case(index);
    for (const Algorithm alg : {Algorithm::kEPDF, Algorithm::kPD2}) {
      const std::string base = std::string("drop/") + algorithm_name(alg) +
                               "/case " + std::to_string(index);
      const RunResult ref = run_case(
          c, alg, /*packed_keys=*/true, /*fast_forward=*/true,
          /*observe=*/true, Kernel{/*soa=*/false, 1, true, MissPolicy::kDrop});
      for (const int shards : {1, 2, 8}) {
        const std::string what = base + "/shards " + std::to_string(shards);
        const RunResult cell = run_case(
            c, alg, /*packed_keys=*/true, /*fast_forward=*/true,
            /*observe=*/true, Kernel{/*soa=*/true, shards, true, MissPolicy::kDrop});
        expect_metrics_identical(cell.metrics, ref.metrics, what);
        expect_traces_identical(cell.trace, ref.trace, what);
        expect_events_identical(cell.events, ref.events, what);
      }
    }
  }
}

// Supertasks run through the shared steps of the slot kernel (component
// release/dispatch), so a sharded SoA run with servers plus ordinary
// tasks must match the legacy kernel including component-miss
// accounting.
TEST(HotpathDiff, ShardedSupertasksMatchLegacyKernel) {
  auto build_and_run = [](const Kernel& k) {
    PfairConfig cfg;
    cfg.processors = 2;
    cfg.record_trace = true;
    cfg.soa_kernel = k.soa;
    cfg.shards = k.shards;
    cfg.simd = k.simd;
    PfairSimulator sim(cfg);
    SupertaskSpec spec;
    spec.execution = 2;
    spec.period = 5;
    spec.components.push_back(make_task(1, 4));
    spec.components.push_back(make_task(1, 8));
    sim.add_supertask(spec, /*bound_proc=*/0);
    sim.add_task(make_task(3, 7));
    sim.add_task(make_task(1, 3));
    sim.run_until(400);
    return std::make_pair(sim.metrics(), sim.trace());
  };
  const auto [ref_metrics, ref_trace] =
      build_and_run(Kernel{/*soa=*/false, 1, true, {}});
  for (const int shards : {1, 2, 8}) {
    const auto [m, tr] = build_and_run(Kernel{/*soa=*/true, shards, true, {}});
    const std::string what = "supertask shards " + std::to_string(shards);
    expect_metrics_identical(m, ref_metrics, what);
    expect_traces_identical(tr, ref_trace, what);
  }
}

// --- idle fast-forward ---------------------------------------------------

/// A sparse set whose schedule has long provably-idle stretches.
TaskSet sparse_set() {
  TaskSet set;
  set.add(make_task(1, 32));
  set.add(make_task(1, 48));
  set.add(make_task(2, 64));
  return set;
}

// Fast-forward on vs off, with the horizon split at every boundary: the
// jump must be invisible in metrics and trace no matter where run_until
// re-enters the loop, and it must actually fire on this workload.
TEST(HotpathDiff, FastForwardEquivalentAtEverySplitPoint) {
  constexpr Time kHorizon = 200;
  PfairConfig base;
  base.processors = 2;
  base.record_trace = true;

  PfairConfig no_ff = base;
  no_ff.idle_fast_forward = false;
  PfairSimulator ref(no_ff);
  const TaskSet sparse = sparse_set();
  for (const Task& t : sparse.tasks()) ref.add_task(t);
  ref.run_until(kHorizon);
  EXPECT_EQ(ref.fast_forwarded_slots(), 0u);

  for (Time split = 1; split < kHorizon; ++split) {
    PfairSimulator sim(base);
    for (const Task& t : sparse.tasks()) sim.add_task(t);
    sim.run_until(split);
    sim.run_until(kHorizon);
    expect_metrics_identical(sim.metrics(), ref.metrics(),
                             "split at " + std::to_string(split));
    expect_traces_identical(sim.trace(), ref.trace(),
                            "split at " + std::to_string(split));
    EXPECT_GT(sim.fast_forwarded_slots(), 0u) << "split at " << split;
  }
}

TEST(HotpathDiff, FastForwardAutoDisablesUnderObserver) {
  PfairConfig cfg;
  cfg.processors = 2;
  PfairSimulator sim(cfg);
  obs::EventBus bus;
  RecordingSink sink;
  bus.add_sink(&sink);
  sim.attach_observer(&bus);
  const TaskSet sparse = sparse_set();
  for (const Task& t : sparse.tasks()) sim.add_task(t);
  sim.run_until(200);
  // Every slot needs its kSlotBegin/kSlotEnd, so no slot may be skipped.
  EXPECT_EQ(sim.fast_forwarded_slots(), 0u);
  std::size_t slot_begins = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kSlotBegin) ++slot_begins;
  }
  EXPECT_EQ(slot_begins, 200u);
}

TEST(HotpathDiff, FastForwardAutoDisablesUnderSupertasks) {
  PfairConfig cfg;
  cfg.processors = 2;
  PfairSimulator sim(cfg);
  SupertaskSpec spec;
  spec.execution = 1;
  spec.period = 32;  // the server itself is sparse, but components tick
  spec.components.push_back(make_task(1, 8));
  sim.add_supertask(spec);
  sim.add_task(make_task(1, 32));
  sim.run_until(200);
  // Component jobs release and miss on their own clock, so every slot
  // must run even though the Pfair servers leave most slots idle.
  EXPECT_EQ(sim.fast_forwarded_slots(), 0u);
}

TEST(HotpathDiff, FastForwardAutoDisablesDuringPendingDeparture) {
  PfairConfig cfg;
  cfg.processors = 1;
  PfairSimulator sim(cfg);
  const TaskId id = sim.add_task(make_task(3, 7));
  sim.add_task(make_task(1, 64));
  sim.run_until(2);
  const Time freed = sim.request_leave(id).value();
  ASSERT_GT(freed, sim.now());  // rule holds the departure open for a while
  const std::uint64_t before = sim.fast_forwarded_slots();
  sim.run_until(freed + 1);  // slot `freed` processes the switch-over
  // The switch-over must fire on time, so no slot up to it is skipped.
  EXPECT_EQ(sim.fast_forwarded_slots(), before);
  // The departing task's weight is gone once the rule time arrives.
  EXPECT_EQ(sim.active_weight(), Rational(1, 64));
}

TEST(HotpathDiff, FastForwardStopsAtProcessorEvents) {
  // A fault event sits in the middle of a long idle stretch; runs with
  // and without fast-forward must apply it at the same instant.  The
  // jump target comes from the release wheel in the legacy kernel and
  // from the eligible_at lane minimum in the SoA kernel, so both are
  // differenced against the per-slot reference.
  auto run = [](bool ff, bool soa) {
    PfairConfig cfg;
    cfg.processors = 2;
    cfg.record_trace = true;
    cfg.idle_fast_forward = ff;
    cfg.soa_kernel = soa;
    PfairSimulator sim(cfg);
    const TaskSet sparse = sparse_set();
    for (const Task& t : sparse.tasks()) sim.add_task(t);
    sim.add_processor_event({100, 0});  // total outage mid-idle
    sim.add_processor_event({130, 2});
    sim.run_until(300);
    if (ff) {
      EXPECT_GT(sim.fast_forwarded_slots(), 0u);
    }
    return std::make_pair(sim.metrics(), sim.trace());
  };
  const auto [ref_metrics, ref_trace] = run(false, false);
  for (const bool soa : {false, true}) {
    const auto [ff_metrics, ff_trace] = run(true, soa);
    const std::string what = soa ? "soa ff vs per-slot" : "legacy ff vs per-slot";
    expect_metrics_identical(ff_metrics, ref_metrics, what);
    expect_traces_identical(ff_trace, ref_trace, what);
  }
}

// --- incremental bookkeeping regressions ---------------------------------

// add_processor_event keeps the unconsumed suffix sorted under
// interleaved "future then nearer-future" registrations, including ones
// made after earlier events were already consumed.
TEST(HotpathDiff, ProcessorEventsRegisteredOutOfOrderApplyInTimeOrder) {
  PfairConfig cfg;
  cfg.processors = 4;
  cfg.record_trace = true;

  PfairSimulator sorted_reg(cfg);
  PfairSimulator interleaved(cfg);
  Rng rng(0xabc1);
  const TaskSet set = generate_feasible_taskset(rng, 2, 8, 16, /*fill=*/true);
  for (const Task& t : set.tasks()) {
    sorted_reg.add_task(t);
    interleaved.add_task(t);
  }

  sorted_reg.add_processor_event({20, 3});
  sorted_reg.add_processor_event({40, 2});
  sorted_reg.add_processor_event({60, 4});
  sorted_reg.add_processor_event({80, 3});
  sorted_reg.add_processor_event({90, 4});

  // Same events, registered out of order and across a consumed prefix.
  interleaved.add_processor_event({60, 4});
  interleaved.add_processor_event({20, 3});
  interleaved.add_processor_event({40, 2});
  interleaved.run_until(30);  // consumes the t = 20 event
  interleaved.add_processor_event({90, 4});
  interleaved.add_processor_event({80, 3});  // before the already-queued 90

  sorted_reg.run_until(120);
  interleaved.run_until(120);
  expect_metrics_identical(interleaved.metrics(), sorted_reg.metrics(),
                           "out-of-order registration");
  expect_traces_identical(interleaved.trace(), sorted_reg.trace(),
                          "out-of-order registration");
}

// Equal-time events must keep registration order (last registered wins),
// exactly as the pre-insertion-sort behaviour.
TEST(HotpathDiff, ProcessorEventsAtEqualTimesKeepRegistrationOrder) {
  PfairConfig cfg;
  cfg.processors = 4;
  cfg.record_trace = true;
  PfairSimulator sim(cfg);
  sim.add_task(make_task(1, 2));
  sim.add_processor_event({10, 1});
  sim.add_processor_event({10, 3});  // registered later, same slot: wins
  sim.run_until(15);
  // The trace row width records the live processor count per slot.
  EXPECT_EQ(sim.trace()[9].proc_to_task.size(), 4u);
  EXPECT_EQ(sim.trace()[10].proc_to_task.size(), 3u);
}

// The cached active-weight sum must track the O(N) recomputation across
// a randomized legal join / leave / reweight / fault script.
TEST(HotpathDiff, ActiveWeightCacheMatchesRecomputeUnderRandomScript) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 4; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    PfairConfig cfg;
    cfg.processors = 3;
    PfairSimulator sim(cfg);
    std::vector<TaskId> live;
    for (int step = 0; step < 40; ++step) {
      sim.run_until(sim.now() + trial_rng.uniform_int(1, 15));
      switch (trial_rng.uniform_int(0, 3)) {
        case 0: {
          const auto id = sim.join(random_pfair_task(trial_rng, 12));
          if (id.has_value()) live.push_back(*id);
          break;
        }
        case 1: {
          if (live.empty()) break;
          const std::size_t k = static_cast<std::size_t>(
              trial_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          sim.request_leave(live[k]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
        case 2: {
          if (live.empty()) break;
          const std::size_t k = static_cast<std::size_t>(
              trial_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          const std::int64_t p = trial_rng.uniform_int(1, 12);
          (void)sim.request_reweight(live[k], trial_rng.uniform_int(1, p), p);
          break;
        }
        case 3: {
          if (!live.empty() && trial_rng.uniform_int(0, 1) == 0) {
            sim.force_leave(live.back());
            live.pop_back();
          }
          break;
        }
      }
      ASSERT_EQ(sim.active_weight(), sim.recompute_active_weight())
          << "trial " << trial << " step " << step << " t = " << sim.now();
    }
  }
}

}  // namespace
}  // namespace pfair
