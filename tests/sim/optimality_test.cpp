// Property suite for the central claims of Sec. 2: PD2 (and PF, PD)
// schedule every feasible periodic / early-release task system with no
// deadline misses and all lags strictly inside (-1, 1), on any number of
// processors — including fully utilised systems (sum of weights == M).
#include <gtest/gtest.h>

#include <tuple>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

struct Case {
  Algorithm alg;
  int processors;
  bool fill;  ///< top the set up to total weight exactly m
};

class OptimalityTest : public ::testing::TestWithParam<Case> {};

TEST_P(OptimalityTest, RandomFeasibleSetsNeverMiss) {
  const Case& c = GetParam();
  Rng rng(0x5eedull * 1315423911u + static_cast<std::uint64_t>(c.processors) * 7919u +
          static_cast<std::uint64_t>(c.alg) * 104729u + (c.fill ? 15485863u : 0u));
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet set = generate_feasible_taskset(
        trial_rng, c.processors, /*max_tasks=*/static_cast<std::size_t>(4 * c.processors + 4),
        /*max_period=*/16, c.fill);
    PfairConfig sc;
    sc.processors = c.processors;
    sc.algorithm = c.alg;
    sc.check_lags = !c.fill ? true : true;  // lags checked in all cases
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    const Time horizon = std::min<std::int64_t>(4 * set.hyperperiod(), 4000);
    sim.run_until(horizon);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u)
        << algorithm_name(c.alg) << " m=" << c.processors << " trial=" << trial
        << " weight=" << set.total_weight().to_string();
    EXPECT_EQ(sim.metrics().lag_violations, 0u)
        << algorithm_name(c.alg) << " m=" << c.processors << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PD2, OptimalityTest,
    ::testing::Values(Case{Algorithm::kPD2, 1, false}, Case{Algorithm::kPD2, 2, false},
                      Case{Algorithm::kPD2, 3, false}, Case{Algorithm::kPD2, 4, false},
                      Case{Algorithm::kPD2, 8, false}, Case{Algorithm::kPD2, 1, true},
                      Case{Algorithm::kPD2, 2, true}, Case{Algorithm::kPD2, 3, true},
                      Case{Algorithm::kPD2, 4, true}, Case{Algorithm::kPD2, 8, true}),
    [](const auto& info) {
      return std::string("m") + std::to_string(info.param.processors) +
             (info.param.fill ? "_full" : "_slack");
    });

INSTANTIATE_TEST_SUITE_P(
    PF, OptimalityTest,
    ::testing::Values(Case{Algorithm::kPF, 2, true}, Case{Algorithm::kPF, 3, true},
                      Case{Algorithm::kPF, 4, true}, Case{Algorithm::kPF, 2, false},
                      Case{Algorithm::kPF, 4, false}),
    [](const auto& info) {
      return std::string("m") + std::to_string(info.param.processors) +
             (info.param.fill ? "_full" : "_slack");
    });

INSTANTIATE_TEST_SUITE_P(
    PD, OptimalityTest,
    ::testing::Values(Case{Algorithm::kPD, 2, true}, Case{Algorithm::kPD, 3, true},
                      Case{Algorithm::kPD, 4, true}, Case{Algorithm::kPD, 2, false},
                      Case{Algorithm::kPD, 4, false}),
    [](const auto& info) {
      return std::string("m") + std::to_string(info.param.processors) +
             (info.param.fill ? "_full" : "_slack");
    });

// Early release keeps all deadlines too (ERfair optimality, [2]); lags
// may go below -1 so only misses are asserted.
class ErfairOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(ErfairOptimalityTest, FullyLoadedErfairSetsNeverMiss) {
  const int m = GetParam();
  Rng rng(0xabcdu + static_cast<std::uint64_t>(m));
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet set =
        generate_feasible_taskset(trial_rng, m, static_cast<std::size_t>(4 * m + 4), 16,
                                  /*fill=*/true, TaskKind::kEarlyRelease);
    PfairConfig sc;
    sc.processors = m;
    sc.algorithm = Algorithm::kPD2;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(std::min<std::int64_t>(4 * set.hyperperiod(), 4000));
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "m=" << m << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(ER, ErfairOptimalityTest, ::testing::Values(1, 2, 3, 4, 8),
                         ::testing::PrintToStringParamName());

// Asynchronous periodic systems (random phases) are also scheduled
// without misses — the Anderson-Srinivasan [4] claim the paper leans on
// for the generality of PD2.
TEST(Optimality, AsynchronousPhasesNeverMiss) {
  Rng rng(0xa570);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 4;
    TaskSet set = generate_feasible_taskset(trial_rng, m, 16, 14, /*fill=*/true);
    PfairConfig sc;
    sc.processors = m;
    PfairSimulator sim(sc);
    for (Task t : set.tasks()) {
      t.phase = trial_rng.uniform_int(0, 20);
      t.kind = trial % 2 == 0 ? TaskKind::kPeriodic : TaskKind::kEarlyRelease;
      sim.add_task(t);
    }
    sim.run_until(2000);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "m=" << m << " trial=" << trial;
  }
}

// Regression: hundreds of tasks on 16 processors at exact full load.
// (Once failed because exact-rational weight sums overflowed 64 bits for
// unrestricted period draws, corrupting the capacity top-up task; the
// generator now bounds all denominators.)
TEST(Optimality, LargeFullyLoadedSixteenProcessorSystem) {
  Rng rng(7952);
  const TaskSet set = generate_feasible_taskset(rng, 16, 300, 64, /*fill=*/true);
  ASSERT_EQ(set.total_weight(), Rational(16));
  PfairConfig sc;
  sc.processors = 16;
  PfairSimulator sim(sc);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(3000);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().idle_quanta, 0u);
}

// A fully utilised system keeps every processor busy in every slot under
// any Pfair-optimal rule.
TEST(Optimality, FullUtilizationMeansZeroIdle) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 4;
    const TaskSet set = generate_feasible_taskset(trial_rng, m, 20, 12, /*fill=*/true);
    ASSERT_EQ(set.total_weight(), Rational(m));
    PfairConfig sc;
    sc.processors = m;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(1000);
    EXPECT_EQ(sim.metrics().idle_quanta, 0u) << "m=" << m;
    EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  }
}

}  // namespace
}  // namespace pfair
