// Ablations of PD2's design choices: the tie-breaks, the affinity
// assignment, and work conservation (early release).
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "sim/verifier.h"
#include "workload/generator.h"

namespace pfair {
namespace {

// A concrete feasible system (total weight exactly 6) on which plain
// earliest-pseudo-deadline-first — PD2 without the b-bit / group-
// deadline tie-breaks — misses a deadline, while PD2 does not.  Found
// by randomized search (seed recorded in the workload test utilities);
// kept as a fixed regression input.
TaskSet epdf_counterexample() {
  TaskSet set;
  set.add(make_task(6, 11));
  set.add(make_task(6, 11));
  set.add(make_task(4, 11));
  set.add(make_task(1, 2));
  set.add(make_task(9, 11));
  set.add(make_task(1, 9));
  set.add(make_task(1, 6));
  set.add(make_task(2, 2));
  set.add(make_task(1, 9));
  set.add(make_task(2, 6));
  set.add(make_task(5, 7));
  set.add(make_task(5, 7));
  set.add(make_task(53, 693));
  return set;
}

TEST(Ablation, TieBreaksMatter_EpdfMissesWherePd2DoesNot) {
  const TaskSet set = epdf_counterexample();
  ASSERT_EQ(set.total_weight(), Rational(6));
  for (const Algorithm alg : {Algorithm::kPD2, Algorithm::kEPDF}) {
    PfairConfig sc;
    sc.processors = 6;
    sc.algorithm = alg;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(1400);
    if (alg == Algorithm::kPD2) {
      EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "PD2 must schedule this set";
    } else {
      EXPECT_GT(sim.metrics().deadline_misses, 0u)
          << "EPDF (no tie-breaks) should miss on this set";
    }
  }
}

TEST(Ablation, VerifierFlagsTheEpdfScheduleAsInvalid) {
  // Cross-check: the independent trace oracle must reject EPDF's
  // schedule of the counterexample and accept PD2's.
  const TaskSet set = epdf_counterexample();
  for (const Algorithm alg : {Algorithm::kPD2, Algorithm::kEPDF}) {
    PfairConfig sc;
    sc.processors = 6;
    sc.algorithm = alg;
    sc.record_trace = true;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(1400);
    VerifyOptions vo;
    vo.processors = 6;
    const VerifyResult res = verify_schedule(sim.trace(), set, vo);
    EXPECT_EQ(res.ok, alg == Algorithm::kPD2) << algorithm_name(alg);
  }
}

TEST(Ablation, PdAndPfAlsoScheduleTheCounterexample) {
  const TaskSet set = epdf_counterexample();
  for (const Algorithm alg : {Algorithm::kPD, Algorithm::kPF}) {
    PfairConfig sc;
    sc.processors = 6;
    sc.algorithm = alg;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.run_until(1400);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << algorithm_name(alg);
  }
}

TEST(Ablation, AffinityReducesMigrationsWithoutAffectingCorrectness) {
  Rng rng(0xaff1);
  for (int trial = 0; trial < 6; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const TaskSet set = generate_feasible_taskset(trial_rng, 4, 16, 12, /*fill=*/true);
    std::uint64_t with_aff = 0;
    std::uint64_t without_aff = 0;
    std::uint64_t sw_with = 0;
    std::uint64_t sw_without = 0;
    for (const bool affinity : {true, false}) {
      PfairConfig sc;
      sc.processors = 4;
      sc.affinity = affinity;
      PfairSimulator sim(sc);
      for (const Task& t : set.tasks()) sim.add_task(t);
      sim.run_until(2000);
      EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "affinity=" << affinity;
      (affinity ? with_aff : without_aff) = sim.metrics().migrations;
      (affinity ? sw_with : sw_without) = sim.metrics().context_switches;
    }
    EXPECT_LE(with_aff, without_aff) << "trial " << trial;
    EXPECT_LE(sw_with, sw_without) << "trial " << trial;
  }
}

TEST(Ablation, ErfairImprovesMeanResponseTimeInLightLoad) {
  Rng rng(0xe5fa);
  int improved = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    // Lightly loaded: total weight about half the processors.
    TaskSet periodic;
    TaskSet er;
    Rational total(0);
    const Rational cap(2);
    while (true) {
      const Task t = random_pfair_task(trial_rng, 16);
      if (cap < total + t.weight()) break;
      total += t.weight();
      periodic.add(t);
      er.add(make_task(t.execution, t.period, TaskKind::kEarlyRelease));
      if (periodic.size() >= 8) break;
    }
    double mean_pfair = 0.0;
    double mean_er = 0.0;
    for (const bool early : {false, true}) {
      PfairConfig sc;
      sc.processors = 4;  // ample slack
      PfairSimulator sim(sc);
      for (const Task& t : (early ? er : periodic).tasks()) sim.add_task(t);
      sim.run_until(2000);
      EXPECT_EQ(sim.metrics().deadline_misses, 0u);
      (early ? mean_er : mean_pfair) = sim.metrics().response_time.mean();
    }
    if (mean_er < mean_pfair) ++improved;
    EXPECT_LE(mean_er, mean_pfair + 1e-9) << "trial " << trial;
  }
  // In light load ERfair should strictly win essentially always.
  EXPECT_GE(improved, kTrials - 1);
}

TEST(Ablation, ResponseTimeNeverExceedsPeriodWhenFeasible) {
  Rng rng(0x4e5);
  const TaskSet set = generate_feasible_taskset(rng, 3, 10, 10, /*fill=*/true);
  PfairConfig sc;
  sc.processors = 3;
  PfairSimulator sim(sc);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(1000);
  ASSERT_EQ(sim.metrics().deadline_misses, 0u);
  std::int64_t max_period = 0;
  for (const Task& t : set.tasks()) max_period = std::max(max_period, t.period);
  EXPECT_LE(sim.metrics().response_time.max(), static_cast<double>(max_period));
  EXPECT_GT(sim.metrics().response_time.count(), 0u);
}

}  // namespace
}  // namespace pfair
