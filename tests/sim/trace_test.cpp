#include "sim/trace.h"

#include <gtest/gtest.h>

namespace pfair {
namespace {

ScheduleTrace two_slot_trace() {
  ScheduleTrace tr;
  tr.begin_slot(2);
  tr.record(0, 0);
  tr.record(1, 1);
  tr.begin_slot(2);
  tr.record(0, 1);  // task 1 migrates to proc 0; task 0 idle
  return tr;
}

TEST(Trace, ScheduledAndAllocationQueries) {
  const ScheduleTrace tr = two_slot_trace();
  EXPECT_TRUE(tr.scheduled(0, 0));
  EXPECT_TRUE(tr.scheduled(0, 1));
  EXPECT_FALSE(tr.scheduled(1, 0));
  EXPECT_TRUE(tr.scheduled(1, 1));
  EXPECT_EQ(tr.allocation(0, 2), 1);
  EXPECT_EQ(tr.allocation(1, 2), 2);
  EXPECT_EQ(tr.allocation(1, 1), 1);
}

TEST(Trace, RenderShowsOneRowPerTask) {
  const ScheduleTrace tr = two_slot_trace();
  const std::string out = tr.render({"A", "B"});
  EXPECT_NE(out.find("A |X.|"), std::string::npos) << out;
  EXPECT_NE(out.find("B |XX|"), std::string::npos) << out;
}

TEST(Trace, RenderPadsUnevenNames) {
  const ScheduleTrace tr = two_slot_trace();
  const std::string out = tr.render({"long-name", "B"});
  // Both rows align at the same '|' column.
  const std::size_t bar1 = out.find('|');
  const std::size_t newline = out.find('\n');
  const std::size_t bar2 = out.find('|', newline);
  EXPECT_EQ(bar1, bar2 - newline - 1);
}

TEST(Trace, AllocationClampsBeyondRecordedHorizon) {
  const ScheduleTrace tr = two_slot_trace();
  EXPECT_EQ(tr.allocation(1, 100), 2);  // only 2 slots recorded
}

TEST(Trace, EmptyTraceAnswersEveryQueryWithZero) {
  const ScheduleTrace tr;
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.allocation(0, 100), 0);
  EXPECT_EQ(tr.allocation(42, 0), 0);
}

TEST(Trace, IdleOnlySlotsCountNoAllocation) {
  ScheduleTrace tr;
  for (int t = 0; t < 5; ++t) tr.begin_slot(3);  // nothing ever scheduled
  EXPECT_EQ(tr.size(), 5u);
  EXPECT_FALSE(tr.scheduled(2, 0));
  EXPECT_EQ(tr.allocation(0, 5), 0);
  const std::string out = tr.render({"A"});
  EXPECT_NE(out.find("A |.....|"), std::string::npos) << out;
}

TEST(Trace, RenderWithMoreNamedTasksThanScheduled) {
  // A task that exists but never ran still gets its (all-idle) row.
  const ScheduleTrace tr = two_slot_trace();
  const std::string out = tr.render({"A", "B", "C"});
  EXPECT_NE(out.find("C |..|"), std::string::npos) << out;
}

TEST(Trace, AllocationIndexSurvivesRecordOverwrite) {
  // Re-recording a processor within the open slot (as a scheduler that
  // revises its pick would) must leave allocation() consistent.
  ScheduleTrace tr;
  tr.begin_slot(2);
  tr.record(0, 0);
  tr.record(0, 1);  // proc 0 reassigned from task 0 to task 1
  EXPECT_FALSE(tr.scheduled(0, 0));
  EXPECT_TRUE(tr.scheduled(0, 1));
  EXPECT_EQ(tr.allocation(0, 1), 0);
  EXPECT_EQ(tr.allocation(1, 1), 1);

  // Same task on two processors, then one reassigned: still scheduled.
  tr.begin_slot(2);
  tr.record(0, 2);
  tr.record(1, 2);
  tr.record(0, 3);
  EXPECT_TRUE(tr.scheduled(1, 2));
  EXPECT_EQ(tr.allocation(2, 2), 1);
  EXPECT_EQ(tr.allocation(3, 2), 1);
}

TEST(Trace, AllocationMatchesLinearRescanOnDenseTrace) {
  // Pin the indexed fast path against the definitional slow scan.
  ScheduleTrace tr;
  for (std::size_t t = 0; t < 64; ++t) {
    tr.begin_slot(2);
    tr.record(0, static_cast<TaskId>(t % 3));
    if (t % 2 == 0) tr.record(1, static_cast<TaskId>(3 + t % 2));
  }
  for (TaskId id = 0; id < 5; ++id) {
    for (std::size_t t_end = 0; t_end <= 64; t_end += 7) {
      std::int64_t want = 0;
      for (std::size_t t = 0; t < t_end; ++t)
        if (tr.scheduled(t, id)) ++want;
      EXPECT_EQ(tr.allocation(id, t_end), want) << "task " << id << " t_end " << t_end;
    }
  }
}

}  // namespace
}  // namespace pfair
