#include "sim/trace.h"

#include <gtest/gtest.h>

namespace pfair {
namespace {

ScheduleTrace two_slot_trace() {
  ScheduleTrace tr;
  tr.begin_slot(2);
  tr.record(0, 0);
  tr.record(1, 1);
  tr.begin_slot(2);
  tr.record(0, 1);  // task 1 migrates to proc 0; task 0 idle
  return tr;
}

TEST(Trace, ScheduledAndAllocationQueries) {
  const ScheduleTrace tr = two_slot_trace();
  EXPECT_TRUE(tr.scheduled(0, 0));
  EXPECT_TRUE(tr.scheduled(0, 1));
  EXPECT_FALSE(tr.scheduled(1, 0));
  EXPECT_TRUE(tr.scheduled(1, 1));
  EXPECT_EQ(tr.allocation(0, 2), 1);
  EXPECT_EQ(tr.allocation(1, 2), 2);
  EXPECT_EQ(tr.allocation(1, 1), 1);
}

TEST(Trace, RenderShowsOneRowPerTask) {
  const ScheduleTrace tr = two_slot_trace();
  const std::string out = tr.render({"A", "B"});
  EXPECT_NE(out.find("A |X.|"), std::string::npos) << out;
  EXPECT_NE(out.find("B |XX|"), std::string::npos) << out;
}

TEST(Trace, RenderPadsUnevenNames) {
  const ScheduleTrace tr = two_slot_trace();
  const std::string out = tr.render({"long-name", "B"});
  // Both rows align at the same '|' column.
  const std::size_t bar1 = out.find('|');
  const std::size_t newline = out.find('\n');
  const std::size_t bar2 = out.find('|', newline);
  EXPECT_EQ(bar1, bar2 - newline - 1);
}

TEST(Trace, AllocationClampsBeyondRecordedHorizon) {
  const ScheduleTrace tr = two_slot_trace();
  EXPECT_EQ(tr.allocation(1, 100), 2);  // only 2 slots recorded
}

}  // namespace
}  // namespace pfair
