#include "sim/pfair_sim.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace pfair {
namespace {

PfairConfig cfg(int m, Algorithm alg = Algorithm::kPD2) {
  PfairConfig c;
  c.processors = m;
  c.algorithm = alg;
  return c;
}

TEST(PfairSim, SingleUnitWeightTaskRunsEverySlot) {
  PfairSimulator sim(cfg(1));
  const TaskId id = sim.add_task(make_task(1, 1));
  sim.run_until(100);
  EXPECT_EQ(sim.allocated(id), 100);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().idle_quanta, 0u);
}

TEST(PfairSim, HalfWeightTaskGetsExactlyHalf) {
  PfairSimulator sim(cfg(1));
  const TaskId id = sim.add_task(make_task(1, 2));
  sim.run_until(100);
  EXPECT_EQ(sim.allocated(id), 50);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(PfairSim, AllocationTracksFluidRateOverAnyPrefix) {
  PfairConfig c = cfg(1);
  c.check_lags = true;
  PfairSimulator sim(c);
  sim.add_task(make_task(3, 7));
  sim.add_task(make_task(2, 5));
  sim.run_until(7 * 5 * 20);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().lag_violations, 0u);
}

TEST(PfairSim, ThreeTwoThirdTasksOnTwoProcessors) {
  // The paper's Sec.-1 example: impossible under partitioning, trivial
  // under Pfair.
  PfairConfig c = cfg(2);
  c.check_lags = true;
  PfairSimulator sim(c);
  TaskSet set = two_processor_counterexample();
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(300);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().lag_violations, 0u);
  // Full utilization: no idle quanta at all.
  EXPECT_EQ(sim.metrics().idle_quanta, 0u);
}

TEST(PfairSim, NoTaskRunsTwiceInOneSlot) {
  PfairConfig c = cfg(4);
  c.record_trace = true;
  PfairSimulator sim(c);
  sim.add_task(make_task(9, 10));
  sim.add_task(make_task(7, 10));
  sim.add_task(make_task(5, 10));
  sim.run_until(50);
  const ScheduleTrace& tr = sim.trace();
  for (std::size_t t = 0; t < tr.size(); ++t) {
    int per_task[3] = {0, 0, 0};
    for (const TaskId id : tr[t].proc_to_task)
      if (id != kNoTask) ++per_task[id];
    for (const int n : per_task) EXPECT_LE(n, 1) << "slot " << t;
  }
}

TEST(PfairSim, TraceAllocationMatchesCounter) {
  PfairConfig c = cfg(2);
  c.record_trace = true;
  PfairSimulator sim(c);
  const TaskId a = sim.add_task(make_task(3, 5));
  const TaskId b = sim.add_task(make_task(4, 7));
  sim.run_until(70);
  EXPECT_EQ(sim.trace().allocation(a, 70), sim.allocated(a));
  EXPECT_EQ(sim.trace().allocation(b, 70), sim.allocated(b));
  EXPECT_EQ(sim.allocated(a), 3 * 70 / 5);
  EXPECT_EQ(sim.allocated(b), 4 * 70 / 7);
}

TEST(PfairSim, PeriodicPfairIsNotWorkConserving) {
  // One light task on one processor: after a subtask executes at its
  // release, the processor idles until the next window even though the
  // task has future work (paper Sec. 2, "Rate-based Pfair").
  PfairSimulator sim(cfg(1));
  sim.add_task(make_task(1, 4));
  sim.run_until(40);
  EXPECT_EQ(sim.metrics().busy_quanta, 10u);
  EXPECT_EQ(sim.metrics().idle_quanta, 30u);
}

TEST(PfairSim, ErfairIsWorkConservingWithinJobs) {
  // Same task, early-release: all 3 quanta of each job run back-to-back
  // at the start of each period.
  PfairConfig c = cfg(1);
  c.record_trace = true;
  PfairSimulator sim(c);
  const TaskId id = sim.add_task(make_task(3, 6, TaskKind::kEarlyRelease));
  sim.run_until(12);
  for (const std::size_t t : {0u, 1u, 2u, 6u, 7u, 8u}) EXPECT_TRUE(sim.trace().scheduled(t, id));
  for (const std::size_t t : {3u, 4u, 5u, 9u, 10u, 11u})
    EXPECT_FALSE(sim.trace().scheduled(t, id));
}

TEST(PfairSim, SchedulerInvokedOncePerSlot) {
  PfairSimulator sim(cfg(3));
  sim.add_task(make_task(1, 2));
  sim.run_until(42);
  EXPECT_EQ(sim.metrics().scheduler_invocations, 42u);
  EXPECT_EQ(sim.metrics().slots, 42u);
}

TEST(PfairSim, BusyPlusIdleEqualsCapacity) {
  PfairSimulator sim(cfg(3));
  sim.add_task(make_task(2, 3));
  sim.add_task(make_task(1, 4));
  sim.run_until(60);
  EXPECT_EQ(sim.metrics().busy_quanta + sim.metrics().idle_quanta, 3u * 60u);
}

TEST(PfairSim, RunUntilIsResumable) {
  PfairSimulator sim(cfg(1));
  const TaskId id = sim.add_task(make_task(1, 2));
  sim.run_until(10);
  const std::int64_t at10 = sim.allocated(id);
  sim.run_until(20);
  EXPECT_EQ(at10, 5);
  EXPECT_EQ(sim.allocated(id), 10);
  EXPECT_EQ(sim.now(), 20);
}

TEST(PfairSim, OverloadedSystemMissesAndReportsFirstMissTime) {
  // Two unit-weight tasks on one processor: the second misses
  // immediately.
  PfairSimulator sim(cfg(1));
  sim.add_task(make_task(1, 1));
  sim.add_task(make_task(1, 1));
  sim.run_until(10);
  EXPECT_GT(sim.metrics().deadline_misses, 0u);
  EXPECT_GE(sim.metrics().first_miss_time, 0);
}

TEST(PfairSim, DropPolicySkipsLateSubtasks) {
  PfairConfig c = cfg(1);
  c.miss_policy = MissPolicy::kDrop;
  PfairSimulator sim(c);
  const TaskId a = sim.add_task(make_task(1, 1));
  const TaskId b = sim.add_task(make_task(1, 1));
  sim.run_until(10);
  // Task a (lower id wins ties) gets every slot; b's subtasks all drop.
  EXPECT_EQ(sim.allocated(a) + sim.allocated(b), 10);
  EXPECT_GT(sim.metrics().deadline_misses, 0u);
}

TEST(PfairSim, WeightOneTaskAlwaysScheduledEvenAmongHeavyCompetitors) {
  PfairConfig c = cfg(2);
  c.check_lags = true;
  PfairSimulator sim(c);
  const TaskId full = sim.add_task(make_task(1, 1));
  sim.add_task(make_task(2, 3));
  sim.add_task(make_task(1, 3));
  sim.run_until(99);
  EXPECT_EQ(sim.allocated(full), 99);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().lag_violations, 0u);
}

}  // namespace
}  // namespace pfair
