#include "sim/verifier.h"

#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

ScheduleTrace run_pd2(const TaskSet& set, int m, Time horizon,
                      Algorithm alg = Algorithm::kPD2) {
  PfairConfig sc;
  sc.processors = m;
  sc.algorithm = alg;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(horizon);
  return sim.trace();
}

TEST(Verifier, AcceptsValidPd2Schedules) {
  Rng rng(0xbead);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 4;
    const TaskSet set = generate_feasible_taskset(trial_rng, m, 12, 12, /*fill=*/true);
    const ScheduleTrace trace = run_pd2(set, m, 500);
    VerifyOptions opt;
    opt.processors = m;
    const VerifyResult res = verify_schedule(trace, set, opt);
    EXPECT_TRUE(res.ok) << "trial " << trial << ": " << res.first_violation;
    EXPECT_EQ(res.violations, 0u);
  }
}

TEST(Verifier, RejectsDoubleAllocationInOneSlot) {
  TaskSet set;
  set.add(make_task(1, 1));
  ScheduleTrace trace;
  trace.begin_slot(2);
  trace.record(0, 0);
  trace.record(1, 0);  // same task on both processors
  VerifyOptions opt;
  opt.processors = 2;
  const VerifyResult res = verify_schedule(trace, set, opt);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("two processors"), std::string::npos);
}

TEST(Verifier, RejectsEarlyExecution) {
  // Task of weight 1/4: subtask 2 releases at 4; running it at slot 1
  // violates the window property (and the lower lag bound).
  TaskSet set;
  set.add(make_task(1, 4));
  ScheduleTrace trace;
  for (int t = 0; t < 2; ++t) {
    trace.begin_slot(1);
    trace.record(0, 0);  // run in slots 0 and 1
  }
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(trace, set, opt);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("before its pseudo-release"), std::string::npos);
}

TEST(Verifier, RejectsMissedDeadline) {
  // Weight 1/2 task never scheduled: subtask 1's deadline (2) passes.
  TaskSet set;
  set.add(make_task(1, 2));
  ScheduleTrace trace;
  for (int t = 0; t < 3; ++t) trace.begin_slot(1);  // always idle
  trace.begin_slot(1);
  trace.record(0, 0);  // finally runs at slot 3 >= d = 2
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(trace, set, opt);
  EXPECT_FALSE(res.ok);
  // Both the lag check (at t = 2) and the window check (slot 3) fire.
  EXPECT_GE(res.violations, 2u);
}

TEST(Verifier, ErfairModeAllowsEarlyButNotLate) {
  // ERfair trace: 2 quanta of a 2/8 task run back-to-back at time 0.
  TaskSet set;
  set.add(make_task(2, 8, TaskKind::kEarlyRelease));
  ScheduleTrace trace;
  for (int t = 0; t < 2; ++t) {
    trace.begin_slot(1);
    trace.record(0, 0);
  }
  VerifyOptions strict;
  strict.processors = 1;
  EXPECT_FALSE(verify_schedule(trace, set, strict).ok);  // Pfair rejects
  VerifyOptions er;
  er.processors = 1;
  er.check_windows = false;
  er.check_lags = false;
  er.check_upper_lag_only = true;
  EXPECT_TRUE(verify_schedule(trace, set, er).ok);  // ERfair accepts
}

TEST(Verifier, ErfairSimulatedTracesPassErfairCheck) {
  Rng rng(0xeful);
  for (int trial = 0; trial < 6; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 3;
    const TaskSet set = generate_feasible_taskset(trial_rng, m, 10, 10, /*fill=*/true,
                                                  TaskKind::kEarlyRelease);
    const ScheduleTrace trace = run_pd2(set, m, 400);
    VerifyOptions er;
    er.processors = m;
    er.check_windows = false;
    er.check_lags = false;
    er.check_upper_lag_only = true;
    const VerifyResult res = verify_schedule(trace, set, er);
    EXPECT_TRUE(res.ok) << "trial " << trial << ": " << res.first_violation;
  }
}

TEST(Verifier, DiagnosticsNameTaskSlotAndWindow) {
  // The early-execution failure must say which subtask, which window,
  // and show the surrounding trace — enough to debug without re-running.
  TaskSet set;
  set.add(make_task(1, 4));
  ScheduleTrace trace;
  for (int t = 0; t < 2; ++t) {
    trace.begin_slot(1);
    trace.record(0, 0);
  }
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(trace, set, opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("slot 1"), std::string::npos) << res.first_violation;
  EXPECT_NE(res.first_violation.find("task 0"), std::string::npos) << res.first_violation;
  EXPECT_NE(res.first_violation.find("subtask 2"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("window [4, 8)"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("trace slots"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("^ slot 1"), std::string::npos)
      << res.first_violation;
}

TEST(Verifier, DiagnosticsIncludeLagValue) {
  TaskSet set;
  set.add(make_task(1, 2));
  ScheduleTrace trace;
  for (int t = 0; t < 3; ++t) trace.begin_slot(1);  // starved
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(trace, set, opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("lag out of (-1, 1)"), std::string::npos);
  EXPECT_NE(res.first_violation.find("lag(2) = 1"), std::string::npos)
      << res.first_violation;
}

TEST(Verifier, ExcerptClampsAtTraceBoundaries) {
  // Failure in slot 0 of a 1-slot trace: the ±3 window must clamp.
  TaskSet set;
  set.add(make_task(1, 4));
  set.add(make_task(1, 4));
  ScheduleTrace trace;
  trace.begin_slot(2);
  trace.record(0, 1);
  trace.record(1, 1);  // task 1 on both processors in slot 0
  VerifyOptions opt;
  opt.processors = 2;
  const VerifyResult res = verify_schedule(trace, set, opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("two processors"), std::string::npos);
  EXPECT_NE(res.first_violation.find("trace slots [0, 1)"), std::string::npos)
      << res.first_violation;
}

TEST(Verifier, ExcerptCoversFutureWindowOnBeforeRelease) {
  // Before-release violations point at a window *after* the failing
  // slot; the excerpt must extend forward to show it, with a '~' ruler
  // marking the window slots.  Task of weight 1/4 run in slots 0 and 1:
  // the second quantum belongs to subtask 2, window [4, 8).
  TaskSet set;
  set.add(make_task(1, 4));
  ScheduleTrace trace;
  for (int t = 0; t < 10; ++t) {
    trace.begin_slot(1);
    if (t < 2) trace.record(0, 0);
  }
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(trace, set, opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("before its pseudo-release"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("^ slot 1"), std::string::npos)
      << res.first_violation;
  // The ±3 default would stop at slot 5; the window pulls it to 8.
  EXPECT_NE(res.first_violation.find("trace slots [0, 8)"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("~~~~ window [4, 8)"), std::string::npos)
      << res.first_violation;
}

TEST(Verifier, ExcerptCoversWindowOnDeadlineMiss) {
  // Deadline-side violations point at a window *before* the failing
  // slot; the excerpt must extend backward to show it.  Weight-1/2 task
  // first scheduled at slot 5: subtask 1's window was [0, 2).
  TaskSet set;
  set.add(make_task(1, 2));
  ScheduleTrace trace;
  for (int t = 0; t < 6; ++t) {
    trace.begin_slot(1);
    if (t == 5) trace.record(0, 0);
  }
  VerifyOptions opt;
  opt.processors = 1;
  opt.check_lags = false;  // isolate the window check
  const VerifyResult res = verify_schedule(trace, set, opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.first_violation.find("at/after its pseudo-deadline"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("^ slot 5"), std::string::npos)
      << res.first_violation;
  // The ±3 default would start at slot 2; the window pulls it to 0.
  EXPECT_NE(res.first_violation.find("trace slots [0, 6)"), std::string::npos)
      << res.first_violation;
  EXPECT_NE(res.first_violation.find("~~ window [0, 2)"), std::string::npos)
      << res.first_violation;
}

TEST(Verifier, CountsEveryViolation) {
  TaskSet set;
  set.add(make_task(1, 2));
  ScheduleTrace trace;
  for (int t = 0; t < 8; ++t) trace.begin_slot(1);  // starve for 8 slots
  VerifyOptions opt;
  opt.processors = 1;
  const VerifyResult res = verify_schedule(trace, set, opt);
  EXPECT_FALSE(res.ok);
  // Lag exceeds 1 from t = 2 on: violations at t = 2..8.
  EXPECT_GE(res.violations, 6u);
}

}  // namespace
}  // namespace pfair
