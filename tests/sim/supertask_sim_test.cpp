// Supertask behaviour (Sec. 5.5): the Fig.-5 deadline miss with an
// unweighted supertask, and the Holman-Anderson reweighting repair.
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(SupertaskSim, Fig5ComponentTMissesAtTimeTen) {
  // Fig. 5: V = 1/2, W = X = 1/3, Y = 2/9 and supertask S = 2/9
  // containing T = 1/5 and U = 1/45, on two processors.  With S
  // competing at exactly its cumulative weight, component T misses its
  // deadline at time 10 (S receives no quantum in [5, 10)).
  // PD2's remaining ties are "broken arbitrarily" (Sec. 2); the paper's
  // schedule corresponds to resolving the Y-vs-S deadline tie in S's
  // favour, which our deterministic by-id tie-break realises by adding
  // S before Y (see DESIGN.md).  S then burns its slot-4 quantum on U
  // (T's second job is not released until time 5), receives nothing in
  // [5, 10), and T misses at 10.
  const Fig5System sys = fig5_system();
  PfairConfig sc;
  sc.processors = 2;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  sim.add_task(sys.normal_tasks[0]);  // V
  sim.add_task(sys.normal_tasks[1]);  // W
  sim.add_task(sys.normal_tasks[2]);  // X
  const TaskId s = sim.add_supertask(sys.supertask);
  sim.add_task(sys.normal_tasks[3]);  // Y
  sim.run_until(45);
  // The supertask itself (a 2/9 Pfair server) never misses...
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // ...but its component T does.
  EXPECT_GT(sim.component_miss_count(s, 0), 0u);
  EXPECT_EQ(sim.metrics().first_miss_time, 10);
}

TEST(SupertaskSim, ReweightingRestoresComponentDeadlines) {
  const Fig5System sys = fig5_system();
  const SupertaskSpec reweighted = make_reweighted_supertask(sys.supertask.components, "S'");
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  for (const Task& t : sys.normal_tasks.tasks()) sim.add_task(t);
  const TaskId s = sim.add_supertask(reweighted);
  sim.run_until(45 * 20);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.component_miss_count(s, 0), 0u);
  EXPECT_EQ(sim.component_miss_count(s, 1), 0u);
  EXPECT_EQ(sim.metrics().component_misses, 0u);
}

TEST(SupertaskSim, ReweightedRandomSupertasksMeetComponentDeadlines) {
  // Property form of the Holman-Anderson reweighting theorem: random
  // component sets, EDF inside, weight inflated by 1/p_min -> no
  // component misses (as long as the global system is feasible).
  Rng rng(0x5afe);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    std::vector<Task> components;
    Rational total(0);
    const int n = static_cast<int>(trial_rng.uniform_int(1, 4));
    for (int k = 0; k < n; ++k) {
      const std::int64_t p = trial_rng.uniform_int(5, 20);
      const std::int64_t e = trial_rng.uniform_int(1, std::max<std::int64_t>(1, p / 4));
      components.push_back(make_task(e, p));
      total += Rational(e, p);
    }
    const SupertaskSpec spec = make_reweighted_supertask(components);
    if (Rational(1) < spec.competing_weight()) continue;  // would be invalid
    PfairConfig sc;
    sc.processors = 2;
    PfairSimulator sim(sc);
    const TaskId s = sim.add_supertask(spec);
    // Background load filling most of the rest of the system.
    sim.add_task(make_task(1, 2));
    sim.add_task(make_task(1, 3));
    sim.run_until(3000);
    for (std::size_t k = 0; k < components.size(); ++k) {
      EXPECT_EQ(sim.component_miss_count(s, k), 0u)
          << "trial " << trial << " component " << k;
    }
  }
}

TEST(SupertaskSim, BoundServerSurvivesLossOfItsProcessor) {
  // A server bound to processor 1 keeps all deadlines when that
  // processor fails (the binding degrades to normal placement) and
  // re-pins once it returns.
  SupertaskSpec spec = make_reweighted_supertask({make_task(1, 5), make_task(1, 10)});
  PfairConfig sc;
  sc.processors = 2;
  sc.record_trace = true;
  PfairSimulator sim(sc);
  const TaskId s = sim.add_supertask(spec, /*bound_proc=*/1);
  sim.add_task(make_task(1, 4));
  sim.add_processor_event({100, 1});   // lose processor 1
  sim.add_processor_event({200, 2});   // repair
  sim.run_until(600);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.component_miss_count(s, 0), 0u);
  EXPECT_EQ(sim.component_miss_count(s, 1), 0u);
  // After the repair, the server is pinned to processor 1 again.
  for (std::size_t t = 210; t < 600; ++t) {
    EXPECT_NE(sim.trace()[t].proc_to_task[0], s) << "slot " << t;
  }
}

TEST(SupertaskSim, SupertaskQuantaGoToComponents) {
  // A supertask whose components saturate its weight: every quantum S
  // receives is consumed by some component (EDF never idles a granted
  // quantum while component work is pending).
  SupertaskSpec spec = make_supertask({make_task(1, 4), make_task(1, 4)});
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId s = sim.add_supertask(spec);
  sim.run_until(400);
  // S has weight 1/2 -> 200 quanta; components need 2 per 4 slots = 200.
  EXPECT_EQ(sim.allocated(s), 200);
  EXPECT_EQ(sim.component_miss_count(s, 0), 0u);
  EXPECT_EQ(sim.component_miss_count(s, 1), 0u);
}

TEST(SupertaskSim, InternalEdfPrefersEarlierComponentDeadline) {
  // Components 1/3 (deadline 3) and 1/9 (deadline 9): when both have
  // pending jobs, the 1/3 component is served first.  If EDF were
  // wrong, the 1/3 component would miss within the first period.
  SupertaskSpec spec = make_supertask({make_task(1, 3), make_task(1, 9)});
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId s = sim.add_supertask(spec);
  sim.run_until(900);
  EXPECT_EQ(sim.component_miss_count(s, 0), 0u);
  EXPECT_EQ(sim.component_miss_count(s, 1), 0u);
}

}  // namespace
}  // namespace pfair
