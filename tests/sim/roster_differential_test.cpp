// The differential matrix the BF/RUN roster exists for: on seeded
// heavy schedulable task sets, both successor schedulers must (a) stay
// miss-free under their independent trace verifiers and (b) make
// strictly fewer scheduling decisions than per-quantum PD2 over the
// same horizon — the decision-point economy the follow-on literature
// claims, pinned as a test.
#include <gtest/gtest.h>

#include <vector>

#include "sim/bf_sim.h"
#include "sim/pfair_sim.h"
#include "sim/run_sim.h"
#include "sim/verifier.h"
#include "util/rational.h"
#include "util/rng.h"

namespace pfair {
namespace {

// Heavy-task profile: weights in [1/2, 1), periods from the divisors of
// 720720 in [12, 60].  The floor matters: with tiny periods nearly every
// slot is some task's boundary and BF degenerates to per-quantum
// operation, which is exactly the regime the sweep must avoid to make a
// strict decision-count claim.
constexpr std::int64_t kHeavyPeriods[] = {12, 13, 14, 15, 16, 18, 20, 22,
                                          24, 26, 28, 30, 33, 36, 40, 44,
                                          48, 52, 56, 60};

TaskSet heavy_taskset(Rng& rng, int m) {
  TaskSet tasks;
  Rational total(0);
  for (int attempts = 0; attempts < 16; ++attempts) {
    const std::int64_t p =
        kHeavyPeriods[rng.uniform_int(0, std::size(kHeavyPeriods) - 1)];
    const std::int64_t e = rng.uniform_int((p + 1) / 2, p - 1);
    const Rational w(e, p);
    if (total + w > Rational(m)) continue;
    total = total + w;
    tasks.add(make_task(e, p));
  }
  return tasks;
}

struct TrialCounts {
  std::uint64_t pd2 = 0;
  std::uint64_t bf = 0;
  std::uint64_t run = 0;
};

TrialCounts run_trial(std::uint64_t trial, Rng& rng) {
  const int m = 2 + static_cast<int>(trial % 2);
  const Time horizon = 120;
  const TaskSet tasks = heavy_taskset(rng, m);
  if (tasks.empty()) return {};  // cannot happen: first heavy task always fits

  TrialCounts counts;

  {
    PfairConfig cfg;
    cfg.processors = m;
    cfg.algorithm = Algorithm::kPD2;
    cfg.record_trace = true;
    PfairSimulator pd2(cfg);
    for (TaskId i = 0; i < tasks.size(); ++i)
      EXPECT_TRUE(pd2.admit(engine::task_spec(tasks[i].execution, tasks[i].period)))
          << "trial " << trial;
    pd2.run_until(horizon);
    EXPECT_EQ(pd2.metrics().deadline_misses, 0u) << "trial " << trial;
    VerifyOptions opts;
    opts.processors = m;
    const VerifyResult v = verify_schedule(pd2.trace(), tasks, opts);
    EXPECT_TRUE(v.ok) << "trial " << trial << ": " << v.first_violation;
    counts.pd2 = pd2.metrics().scheduling_points;
  }

  {
    BfSimulator bf(tasks, BfConfig{m, true});
    bf.run_until(horizon);
    EXPECT_EQ(bf.metrics().deadline_misses, 0u) << "trial " << trial;
    VerifyOptions opts;
    opts.processors = m;
    opts.check_windows = false;
    opts.check_lags = false;
    opts.check_job_boundaries = true;
    const VerifyResult v = verify_schedule(bf.trace(), tasks, opts);
    EXPECT_TRUE(v.ok) << "trial " << trial << ": " << v.first_violation;
    counts.bf = bf.metrics().scheduling_points;
  }

  {
    RunSimulator run(RunConfig{m, true});
    for (TaskId i = 0; i < tasks.size(); ++i)
      EXPECT_TRUE(run.admit(engine::task_spec(tasks[i].execution, tasks[i].period)))
          << "trial " << trial;
    run.run_until(horizon);
    EXPECT_EQ(run.metrics().deadline_misses, 0u) << "trial " << trial;
    const RunVerifyResult v = verify_run_segments(
        run.segments(), run.tasks(), run.ticks_per_slot(), horizon, m);
    EXPECT_TRUE(v.ok) << "trial " << trial << ": " << v.first_violation;
    counts.run = run.metrics().scheduling_points;
  }
  return counts;
}

TEST(RosterDifferential, BfAndRunDecideStrictlyLessThanPerQuantumPd2) {
  std::uint64_t pd2_total = 0, bf_total = 0, run_total = 0;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Rng rng = Rng::stream(0xd1ff, trial);
    const TrialCounts c = run_trial(trial, rng);
    ASSERT_GT(c.pd2, 0u) << "trial " << trial;
    // The core claim, per trial and strict: fewer decision points than
    // one-per-quantum PD2 on the same workload and horizon.
    EXPECT_LT(c.bf, c.pd2) << "trial " << trial;
    EXPECT_LT(c.run, c.pd2) << "trial " << trial;
    pd2_total += c.pd2;
    bf_total += c.bf;
    run_total += c.run;
  }
  // Aggregate sanity: the sweep covered real work and the economy is
  // substantial, not a one-off rounding artifact.
  EXPECT_EQ(pd2_total, 200u * 120u);  // PD2 decides every quantum
  EXPECT_LT(bf_total * 2, pd2_total);
  EXPECT_LT(run_total * 2, pd2_total);
}

}  // namespace
}  // namespace pfair
