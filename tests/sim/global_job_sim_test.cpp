#include "sim/global_job_sim.h"

#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(GlobalJob, MatchesUniprocessorEdfOnOneProcessor) {
  const std::vector<UniTask> ts = {{2, 4}, {3, 6}};  // U = 1, EDF-feasible
  GlobalJobSimulator sim(ts, GlobalJobConfig{1, UniAlgorithm::kEDF});
  sim.run_until(1200);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_EQ(sim.metrics().jobs_completed, sim.metrics().jobs_released);
  EXPECT_EQ(sim.metrics().migrations, 0u);
}

TEST(GlobalJob, DhallEffectGlobalEdfMissesAtLowUtilization) {
  // The classic construction (Sec. 1 / Dhall & Liu): m light tasks
  // (2, 10) and one heavy task (10, 11).  At t = 0 the light jobs have
  // earlier deadlines and occupy all m processors for 2 time units; the
  // heavy job then needs 10 more and misses its deadline at 11.  Total
  // utilization = 0.2 m + 10/11 — a vanishing fraction of m.
  for (const int m : {2, 4, 8}) {
    std::vector<UniTask> ts(static_cast<std::size_t>(m), UniTask{2, 10});
    ts.push_back({10, 11});
    GlobalJobSimulator sim(ts, GlobalJobConfig{m, UniAlgorithm::kEDF});
    sim.run_until(200);
    EXPECT_GT(sim.metrics().deadline_misses, 0u) << "m=" << m;
    EXPECT_LE(sim.metrics().first_miss_time, 22) << "m=" << m;
  }
}

TEST(GlobalJob, DhallEffectHitsGlobalRmToo) {
  for (const int m : {2, 4}) {
    std::vector<UniTask> ts(static_cast<std::size_t>(m), UniTask{2, 10});
    ts.push_back({10, 11});
    GlobalJobSimulator sim(ts, GlobalJobConfig{m, UniAlgorithm::kRM});
    sim.run_until(200);
    EXPECT_GT(sim.metrics().deadline_misses, 0u) << "m=" << m;
  }
}

TEST(GlobalJob, Pd2SchedulesTheDhallSetWithoutMisses) {
  // The same task set, quantum-level PD2: no misses (the paper's
  // argument for Pfair over naive global scheduling).
  for (const int m : {2, 4, 8}) {
    PfairConfig sc;
    sc.processors = m;
    PfairSimulator sim(sc);
    for (int k = 0; k < m; ++k) sim.add_task(make_task(2, 10));
    sim.add_task(make_task(10, 11));
    sim.run_until(2200);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "m=" << m;
  }
}

TEST(GlobalJob, LightLoadsScheduleFine) {
  // Global EDF is not *always* bad: comfortable loads run clean.
  Rng rng(0x6e4a);
  for (int trial = 0; trial < 8; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 2 + trial % 3;
    const std::vector<UniTask> ts =
        generate_uni_tasks(trial_rng, static_cast<std::size_t>(3 * m),
                           0.45 * static_cast<double>(m), 60);
    GlobalJobSimulator sim(ts, GlobalJobConfig{m, UniAlgorithm::kEDF});
    sim.run_until(5000);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
  }
}

TEST(GlobalJob, AffinityAvoidsSpuriousMigrations) {
  // Two long-running jobs on two processors never migrate.
  const std::vector<UniTask> ts = {{50, 100}, {50, 100}};
  GlobalJobSimulator sim(ts, GlobalJobConfig{2, UniAlgorithm::kEDF});
  sim.run_until(1000);
  EXPECT_EQ(sim.metrics().migrations, 0u);
  EXPECT_EQ(sim.metrics().preemptions, 0u);
}

}  // namespace
}  // namespace pfair
