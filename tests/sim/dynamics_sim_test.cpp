// Dynamic joins / leaves / reweighting in a running system (Sec. 2
// "Dynamic task systems" and Sec. 5.2).
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(Dynamics, JoinRejectedWhenCapacityExceeded) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  sim.add_task(make_task(2, 3));
  sim.run_until(5);
  EXPECT_FALSE(sim.join(make_task(1, 2)).has_value());  // 2/3 + 1/2 > 1
  EXPECT_TRUE(sim.join(make_task(1, 3)).has_value());   // 2/3 + 1/3 = 1
}

TEST(Dynamics, MidstreamJoinMeetsAllItsDeadlines) {
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  sim.add_task(make_task(1, 2));
  sim.add_task(make_task(2, 5));
  sim.run_until(7);  // join at an "odd" time
  const auto id = sim.join(make_task(3, 4));
  ASSERT_TRUE(id.has_value());
  sim.run_until(400);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // The joiner receives its fluid share from its join time onward:
  // 3/4 * (400 - 7) = 294.75, and Pfair lag bounds pin the integer
  // allocation to within one quantum of that.
  EXPECT_GE(sim.allocated(*id), 294);
  EXPECT_LE(sim.allocated(*id), 295);
}

TEST(Dynamics, LegalLeaveThenRejoinCannotOverclaim) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId a = sim.add_task(make_task(1, 2));
  sim.add_task(make_task(1, 2));
  sim.run_until(10);
  // Orderly departure (the task stops executing now; its weight frees
  // at the rule-mandated time), then rejoin; no deadline is ever
  // missed.
  const Time freed = sim.request_leave(a).value();
  EXPECT_GE(freed, 10);
  sim.run_until(freed);
  const auto rejoin = sim.join(make_task(1, 2));
  ASSERT_TRUE(rejoin.has_value());
  sim.run_until(freed + 200);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(Dynamics, RequestLeaveFreesCapacityOnlyAtRuleTime) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId a = sim.add_task(make_task(1, 2));  // heavy (weight 1/2)
  sim.add_task(make_task(1, 4));
  sim.run_until(3);
  const Time freed = sim.request_leave(a).value();
  EXPECT_GT(freed, sim.now());
  // Until `freed`, the departing weight still counts against admission.
  EXPECT_FALSE(sim.join(make_task(1, 2)).has_value());
  sim.run_until(freed);
  EXPECT_TRUE(sim.join(make_task(1, 2)).has_value());
  sim.run_until(freed + 100);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(Dynamics, LeaveBlockedBeforeEarliestLeaveTime) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId a = sim.add_task(make_task(1, 10));
  sim.run_until(1);  // subtask 1 ran at slot 0; d = 10
  EXPECT_GT(sim.earliest_leave(a), sim.now());
  EXPECT_FALSE(sim.leave(a));
  sim.run_until(sim.earliest_leave(a));
  EXPECT_TRUE(sim.leave(a));
}

TEST(Dynamics, PrematureLeaveAndRejoinCanCauseMisses) {
  // The hazard the leave rule prevents (paper: a task with negative lag
  // leaving and re-joining immediately effectively runs above its
  // rate).  Force-leave a task right after it executed ahead of its
  // rate, re-join, and repeat: in a fully loaded system this overclaims
  // and a competitor must eventually miss.
  // Cheat: a 4/5 task that leaves the moment it is ahead of its fluid
  // rate and re-joins immediately with fresh windows.  Its restarted
  // subtasks (deadline now + 2, b = 1) out-prioritise the two honest
  // 1/10 tasks (deadline 10, b = 0) in every slot up to and including
  // slot 8, leaving only slot 9 for the two honest subtasks — one of
  // them misses at time 10.
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  TaskId cheat = sim.add_task(make_task(4, 5));
  sim.add_task(make_task(1, 10));
  sim.add_task(make_task(1, 10));
  bool missed = false;
  for (int round = 0; round < 15 && !missed; ++round) {
    sim.run_until(sim.now() + 1);
    if (sim.allocated(cheat) > 0 && sim.task_lag(cheat) < Rational(0)) {
      sim.force_leave(cheat);
      const auto next = sim.join(make_task(4, 5));
      ASSERT_TRUE(next.has_value());
      cheat = *next;
    }
    missed = sim.metrics().deadline_misses > 0;
  }
  EXPECT_TRUE(missed);
}

TEST(Dynamics, ForceLeaveCancelsPendingReweight) {
  // A task force-removed while a reweight is in flight must stay gone —
  // the switch-over must not resurrect it.
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId a = sim.add_task(make_task(1, 2));
  sim.run_until(5);
  const auto switch_at = sim.request_reweight(a, 3, 4);
  ASSERT_TRUE(switch_at.has_value());
  ASSERT_GT(*switch_at, sim.now());
  sim.force_leave(a);
  const std::int64_t frozen = sim.allocated(a);
  sim.run_until(*switch_at + 50);
  EXPECT_EQ(sim.allocated(a), frozen);       // never ran again
  EXPECT_EQ(sim.active_weight(), Rational(0));
  // The freed capacity is immediately reusable.
  EXPECT_TRUE(sim.join(make_task(1, 1)).has_value());
  sim.run_until(sim.now() + 50);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(Dynamics, ReweightingTakesEffect) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId a = sim.add_task(make_task(1, 4));
  sim.run_until(sim.earliest_leave(a));
  const Time t0 = sim.now();
  ASSERT_TRUE(sim.reweight(a, 3, 4));
  sim.run_until(t0 + 400);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  // Post-reweight allocation rate is 3/4.
  EXPECT_EQ(sim.allocated(a), (400 / 4) * 3);
}

TEST(Dynamics, ReweightRejectedWhenItWouldOverload) {
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  const TaskId a = sim.add_task(make_task(1, 4));
  sim.add_task(make_task(1, 2));
  sim.run_until(sim.earliest_leave(a));
  EXPECT_FALSE(sim.reweight(a, 3, 4));  // 3/4 + 1/2 > 1
  EXPECT_TRUE(sim.reweight(a, 1, 2));   // 1/2 + 1/2 = 1
}

TEST(Dynamics, ManyRandomJoinsAndLegalLeavesNeverMiss) {
  Rng rng(0xd1ce);
  for (int trial = 0; trial < 6; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    PfairConfig sc;
    sc.processors = 3;
    PfairSimulator sim(sc);
    std::vector<TaskId> live;
    for (Time epoch = 0; epoch < 20; ++epoch) {
      sim.run_until(sim.now() + trial_rng.uniform_int(1, 15));
      // Try one random join.
      const std::int64_t p = trial_rng.uniform_int(1, 12);
      const std::int64_t e = trial_rng.uniform_int(1, p);
      const auto id = sim.join(make_task(e, p));
      if (id.has_value()) live.push_back(*id);
      // Try one random legal leave.
      if (!live.empty() && trial_rng.uniform_int(0, 1) == 0) {
        const std::size_t k = static_cast<std::size_t>(
            trial_rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        if (sim.leave(live[k])) live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }
    sim.run_until(sim.now() + 100);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pfair
