// Validates the Sec.-4 preemption analysis: with processor affinity (a
// task scheduled in consecutive quanta stays on its processor), a job of
// a task with period P quanta and cost E quanta suffers at most
// min(E-1, P-E) preemptions.
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(PreemptionBound, DensePfairTaskHasAtMostPMinusEPreemptionsPerJob) {
  // The paper's example: period 6, cost 5 -> at most one preemption per
  // job.
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  const TaskId id = sim.add_task(make_task(5, 6));
  sim.add_task(make_task(2, 3));
  sim.add_task(make_task(5, 12));
  sim.run_until(600);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
  EXPECT_LE(sim.max_job_preemptions(id), 1);
}

TEST(PreemptionBound, HoldsForRandomFeasibleSets) {
  Rng rng(0xfeedu);
  for (int trial = 0; trial < 10; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 1 + trial % 4;
    const TaskSet set = generate_feasible_taskset(trial_rng, m, 16, 14, /*fill=*/true);
    PfairConfig sc;
    sc.processors = m;
    PfairSimulator sim(sc);
    std::vector<TaskId> ids;
    for (const Task& t : set.tasks()) ids.push_back(sim.add_task(t));
    sim.run_until(std::min<std::int64_t>(4 * set.hyperperiod(), 4000));
    ASSERT_EQ(sim.metrics().deadline_misses, 0u);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const Task& t = set[static_cast<TaskId>(k)];
      const std::int64_t bound = std::min(t.execution - 1, t.period - t.execution);
      EXPECT_LE(sim.max_job_preemptions(ids[k]), bound)
          << "task " << t.execution << "/" << t.period << " m=" << m << " trial=" << trial;
    }
  }
}

TEST(PreemptionBound, ContextSwitchesAreBoundedByQuantaPlusJobs) {
  // Each allocated quantum causes at most one switch-in, so total
  // context switches <= busy quanta; affinity should make it strictly
  // smaller whenever tasks run multi-quantum stretches.
  Rng rng(0xc0ffee);
  const TaskSet set = generate_feasible_taskset(rng, 2, 10, 10, /*fill=*/true);
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(2000);
  EXPECT_LE(sim.metrics().context_switches, sim.metrics().busy_quanta);
}

TEST(PreemptionBound, AffinityKeepsLongRunsOnOneProcessor) {
  // A single heavy task alone on 2 processors never migrates and is
  // never preempted.
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  const TaskId id = sim.add_task(make_task(9, 10));
  sim.run_until(500);
  EXPECT_EQ(sim.metrics().migrations, 0u);
  // Alone, the task runs slots 0..8 of each period back-to-back: the
  // per-period gap falls between jobs, so no preemption at all (the
  // min(E-1, P-E) = 1 bound is not tight here).
  EXPECT_EQ(sim.max_job_preemptions(id), 0);
  EXPECT_EQ(sim.metrics().preemptions, 0u);
}

TEST(PreemptionBound, MigrationsOnlyHappenWithMultipleProcessors) {
  Rng rng(0xabc);
  const TaskSet set = generate_feasible_taskset(rng, 1, 8, 10, /*fill=*/true);
  PfairConfig sc;
  sc.processors = 1;
  PfairSimulator sim(sc);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(1000);
  EXPECT_EQ(sim.metrics().migrations, 0u);
}

}  // namespace
}  // namespace pfair
