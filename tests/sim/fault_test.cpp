// Fault tolerance and overload (Sec. 5.4): losing K of M processors is
// transparent when total weight <= M - K; otherwise reweighting
// non-critical tasks protects critical ones.
#include <gtest/gtest.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace pfair {
namespace {

TEST(Faults, ProcessorLossToleratedWhenSlackSuffices) {
  // Total weight 17/12 <= 2: losing one of three processors at t = 50
  // is transparent.
  PfairConfig sc;
  sc.processors = 3;
  PfairSimulator sim(sc);
  sim.add_task(make_task(1, 2));
  sim.add_task(make_task(1, 3));
  sim.add_task(make_task(1, 4));
  sim.add_task(make_task(1, 3));
  sim.add_processor_event({50, 2});
  sim.run_until(600);
  EXPECT_EQ(sim.metrics().deadline_misses, 0u);
}

TEST(Faults, RandomisedKProcessorLossTransparency) {
  Rng rng(0xfa01);
  for (int trial = 0; trial < 8; ++trial) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(trial));
    const int m = 4;
    const int k = static_cast<int>(trial_rng.uniform_int(1, 2));
    // Build a set feasible on m - k processors.
    const TaskSet set = generate_feasible_taskset(trial_rng, m - k, 12, 12, /*fill=*/true);
    PfairConfig sc;
    sc.processors = m;
    PfairSimulator sim(sc);
    for (const Task& t : set.tasks()) sim.add_task(t);
    sim.add_processor_event({trial_rng.uniform_int(1, 100), m - k});
    sim.run_until(1500);
    EXPECT_EQ(sim.metrics().deadline_misses, 0u) << "trial " << trial << " k=" << k;
  }
}

TEST(Faults, OverloadCausesMissesWithoutReweighting) {
  // Weight 2 on 2 processors; one dies at t = 30 with no mitigation.
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  sim.add_task(make_task(1, 1));
  sim.add_task(make_task(1, 2));
  sim.add_task(make_task(1, 2));
  sim.add_processor_event({30, 1});
  sim.run_until(200);
  EXPECT_GT(sim.metrics().deadline_misses, 0u);
  EXPECT_GE(sim.metrics().first_miss_time, 30);
}

TEST(Faults, ReweightingProtectsCriticalTaskThroughOverload) {
  // Critical 1/2 task plus two non-critical 3/4 tasks on 2 processors.
  // When one processor fails, reweight the non-critical tasks down to
  // 1/4 each: the critical task keeps every deadline afterwards.
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  const TaskId critical = sim.add_task(make_task(1, 2, TaskKind::kPeriodic, "crit"));
  const TaskId nc1 = sim.add_task(make_task(3, 4));
  const TaskId nc2 = sim.add_task(make_task(3, 4));
  sim.run_until(40);
  // Shed load via the orderly reweight protocol: the non-critical tasks
  // stop executing now and resume at 1/4 when their group-deadline
  // rules free the old weight.  Drop the processor once both switches
  // completed.
  const auto s1 = sim.request_reweight(nc1, 1, 4);
  const auto s2 = sim.request_reweight(nc2, 1, 4);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  const Time settled = std::max(*s1, *s2) + 1;
  sim.add_processor_event({settled, 1});
  sim.run_until(settled);
  const std::uint64_t misses_before = sim.metrics().deadline_misses;
  sim.run_until(settled + 400);
  EXPECT_EQ(sim.metrics().deadline_misses, misses_before);
  EXPECT_GT(sim.allocated(critical), 0);
}

TEST(Faults, RepairRestoresCapacity) {
  // Two 3/4 tasks on 2 processors; losing one processor in [20, 40)
  // overloads the system (1.5 > 1) and misses accumulate.  After the
  // repair each task can run above its rate (up to weight 1), so the
  // ScheduleLate backlog drains and the steady state is miss-free: no
  // new misses between t = 150 and t = 200.
  PfairConfig sc;
  sc.processors = 2;
  PfairSimulator sim(sc);
  sim.add_task(make_task(3, 4));
  sim.add_task(make_task(3, 4));
  sim.add_processor_event({20, 1});
  sim.add_processor_event({40, 2});
  sim.run_until(40);
  const std::uint64_t misses_during_fault = sim.metrics().deadline_misses;
  EXPECT_GT(misses_during_fault, 0u);
  sim.run_until(150);
  const std::uint64_t misses_at_150 = sim.metrics().deadline_misses;
  sim.run_until(200);
  EXPECT_EQ(sim.metrics().deadline_misses, misses_at_150);
}

}  // namespace
}  // namespace pfair
