// Fig. 2(b): average PD2 scheduling overhead per slot on 2, 4, 8 and 16
// processors, as a function of the number of tasks.
//
// PD2 makes all decisions sequentially on one processor, so its cost
// per invocation grows with the processor count (it must select up to M
// subtasks); partitioned schedulers escape this because each processor
// schedules independently.  Total task-set utilization scales with M
// (util <= 0.95 * M) as in the paper's setup.
//
// Usage: fig2b_sched_overhead_mp [--horizon=30000] [--trials=8] [--seed=1] [--json]
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig2b_sched_overhead_mp", argc, argv);
  const long long horizon = h.horizon(30000);
  const long long sets = h.trials(8);

  std::printf("# Fig 2(b): scheduling overhead of PD2 for 2, 4, 8, 16 processors\n");
  std::printf("# horizon=%lld slots, %lld task sets per point\n", horizon, sets);
  std::printf("# %6s", "tasks");
  for (const int m : {2, 4, 8, 16}) std::printf(" %9s_us %8s_ci", std::to_string(m).c_str(), "99");
  std::printf("\n");

  Rng master(h.seed(1));
  for (const int n : {15, 30, 50, 75, 100, 250, 500, 750, 1000}) {
    std::printf("  %6d", n);
    auto& row = h.add_row();
    row.set("tasks", static_cast<long long>(n));
    for (const int m : {2, 4, 8, 16}) {
      RunningStats pd2_us;
      for (long long s = 0; s < sets; ++s) {
        Rng rng = master.fork(static_cast<std::uint64_t>(n) * 4096 +
                              static_cast<std::uint64_t>(m) * 64 +
                              static_cast<std::uint64_t>(s));
        const std::vector<Task> tasks = fig2_taskset(
            rng, static_cast<std::size_t>(n), 0.95 * static_cast<double>(m), 20000);
        PfairConfig pc;
        pc.processors = m;
        pc.algorithm = Algorithm::kPD2;
        pc.measure_overhead = true;
        PfairSimulator psim(pc);
        for (const Task& t : tasks) psim.add_task(t);
        psim.run_until(horizon);
        pd2_us.add(psim.metrics().avg_sched_ns() / 1000.0);
      }
      std::printf(" %12.3f %11.3f", pd2_us.mean(), pd2_us.ci99_halfwidth());
      row.set("m" + std::to_string(m) + "_us", pd2_us);
    }
    std::printf("\n");
  }
  std::printf("# paper shape: overhead increases with tasks and processors;\n");
  std::printf("# <= ~20us for 200 tasks even on 16 processors (933MHz).\n");
  return h.finish();
}
