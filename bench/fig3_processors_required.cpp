// Fig. 3(a)-(d): minimum number of processors required to render a task
// set schedulable under PD2 vs EDF-FF, with all Eq.-(3) overheads
// applied (C = 5us, q = 1ms, D(T) in [0,100]us with mean 33.3us,
// scheduling costs from the Fig.-2-calibrated tables).
//
// For each task count N in {50, 100, 250, 500}, total utilization sweeps
// [N/30, N/3] (mean per-task utilization 1/30 .. 1/3).  Each point
// averages `--trials` random task sets; 99% CIs are printed.
//
// Usage: fig3_processors_required [--trials=200] [--seed=1] [--only_n=0]
//                                 [--calibrate=0] [--jobs=N] [--json]
//
// With --calibrate=1, the scheduling-cost tables are first measured on
// this host (the paper's own Fig.-2 -> Fig.-3 pipeline) instead of
// using the paper-magnitude defaults.
//
// Trials fan out across --jobs worker threads (default: all cores) with
// counter-based per-trial RNG streams, so the report is byte-identical
// for any --jobs value.
//
// Paper shape to check (Sec. 4): the two curves track closely at low
// utilization; EDF-FF is slightly better in a middle band; PD2 wins at
// high per-task utilizations where bin-packing fragmentation dominates.
#include <cstdio>
#include <optional>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig3_processors_required", argc, argv);
  const long long sets = h.trials(200);
  const std::uint64_t seed = h.seed(1);
  const long long only_n = h.flag("only_n", 0);
  const bool calibrate = h.flag("calibrate", 0) != 0;

  OverheadParams params;  // paper defaults: C=5us, q=1ms, Fig.-2 tables
  if (calibrate) {
    std::printf("# calibrating scheduling costs on this host...\n");
    params.sched = calibrate_sched_costs();
  }

  engine::ParallelSweep sweep(h.jobs(), seed);
  const bench::WallTimer wall;
  const char inset[] = {'a', 'b', 'c', 'd'};
  int inset_idx = 0;
  for (const int n : {50, 100, 250, 500}) {
    const char label = inset[inset_idx++];
    if (only_n != 0 && only_n != n) continue;
    std::printf("# Fig 3(%c): processors required for %d tasks (%lld sets/point)\n",
                label, n, sets);
    std::printf("# %10s %10s %10s %12s %10s %10s\n", "U_total", "PD2", "PD2_ci",
                "EDF-FF", "EDFFF_ci", "PD2-EDFFF");
    constexpr int kPoints = 12;
    for (int pt = 0; pt < kPoints; ++pt) {
      const double u_lo = static_cast<double>(n) / 30.0;
      const double u_hi = static_cast<double>(n) / 3.0;
      const double u = u_lo + (u_hi - u_lo) * static_cast<double>(pt) /
                                  static_cast<double>(kPoints - 1);
      struct Trial {
        std::optional<int> pd2;
        std::optional<int> ff;
      };
      const std::uint64_t point = static_cast<std::uint64_t>(n) * 1000 +
                                  static_cast<std::uint64_t>(pt);
      const std::vector<Trial> trials =
          sweep.run(point, sets, [&](long long, Rng& rng) {
            OhWorkloadConfig cfg;
            cfg.n_tasks = static_cast<std::size_t>(n);
            cfg.total_utilization = u;
            const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
            Trial out;
            out.pd2 = pd2_min_processors(tasks, params);
            const EdfFfResult ff = edf_ff_partition(tasks, params);
            if (ff.feasible) out.ff = ff.processors;
            return out;
          });
      RunningStats pd2_m;
      RunningStats ff_m;
      for (const Trial& t : trials) {  // trial order: deterministic merge
        if (t.pd2.has_value()) pd2_m.add(static_cast<double>(*t.pd2));
        if (t.ff.has_value()) ff_m.add(static_cast<double>(*t.ff));
      }
      std::printf("  %10.2f %10.3f %10.3f %12.3f %10.3f %+10.3f\n", u, pd2_m.mean(),
                  pd2_m.ci99_halfwidth(), ff_m.mean(), ff_m.ci99_halfwidth(),
                  pd2_m.mean() - ff_m.mean());
      h.add_row()
          .set("tasks", static_cast<long long>(n))
          .set("u_total", u)
          .set("pd2_procs", pd2_m)
          .set("edfff_procs", ff_m)
          .set("pd2_minus_edfff", pd2_m.mean() - ff_m.mean());
    }
    std::printf("\n");
  }
  std::printf("# negative PD2-EDFFF = PD2 needs fewer processors (PD2 wins).\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
