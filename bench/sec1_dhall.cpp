// Sec.-1 motivation: the Dhall effect.  Global job-level EDF/RM can
// miss at utilizations that are an arbitrarily small fraction of the
// platform, while PD2 schedules every set with total weight <= M.
//
// Sweeps the Dhall construction (m light tasks (2, P) + one heavy
// (P, P+1)): the light jobs' earlier deadlines occupy every processor
// first, so the heavy job finishes at 2 + P > P + 1 and misses, even
// though the utilization beyond the one heavy task vanishes as P grows
// (util/m -> 1/m).  PD2 schedules every instance without a miss.
//
// Built on engine::compare_schedulers: one Dhall workload per row, the
// same three-spec list every time.
//
// Usage: sec1_dhall [--processors=4] [--json]
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("sec1_dhall", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));

  std::printf("# Dhall effect on %d processors: m x (2, P) + 1 x (P, P+1)\n", m);
  std::printf("# %6s %12s %14s %12s %12s %12s\n", "P", "total_util", "util/m",
              "gEDF_miss", "gRM_miss", "PD2_miss");

  const std::vector<engine::SchedulerSpec> specs = {
      engine::global_job_spec(m, UniAlgorithm::kEDF),
      engine::global_job_spec(m, UniAlgorithm::kRM), engine::pd2_spec(m)};

  for (const std::int64_t P : {10, 20, 40, 80, 160, 320}) {
    std::vector<UniTask> ts(static_cast<std::size_t>(m), UniTask{2, P});
    ts.push_back({P, P + 1});
    const double util = 2.0 / static_cast<double>(P) * m +
                        static_cast<double>(P) / static_cast<double>(P + 1);

    const auto results = engine::compare_schedulers(ts, specs, 20 * P);
    const std::uint64_t gedf_miss = results[0].metrics.deadline_misses;
    const std::uint64_t grm_miss = results[1].metrics.deadline_misses;
    const std::uint64_t pd2_miss = results[2].metrics.deadline_misses;

    std::printf("  %6lld %12.3f %14.3f %12llu %12llu %12llu\n",
                static_cast<long long>(P), util, util / static_cast<double>(m),
                static_cast<unsigned long long>(gedf_miss),
                static_cast<unsigned long long>(grm_miss),
                static_cast<unsigned long long>(pd2_miss));
    h.add_row()
        .set("period", static_cast<long long>(P))
        .set("total_util", util)
        .set("util_per_proc", util / static_cast<double>(m))
        .set("gedf_misses", static_cast<long long>(gedf_miss))
        .set("grm_misses", static_cast<long long>(grm_miss))
        .set("pd2_misses", static_cast<long long>(pd2_miss));
  }
  std::printf("# global EDF/RM miss in every row while util/m -> 1/m; PD2 never does\n");
  std::printf("# (Dhall & Liu 1978, the paper's Sec.-1 case against naive global\n");
  std::printf("#  scheduling; partitioning's own pathology is sec3_partition_bounds)\n");
  return h.finish();
}
