// Sec.-1 motivation: the Dhall effect.  Global job-level EDF/RM can
// miss at utilizations that are an arbitrarily small fraction of the
// platform, while PD2 schedules every set with total weight <= M.
//
// Sweeps the Dhall construction (m light tasks (2, P) + one heavy
// (P, P+1)): the light jobs' earlier deadlines occupy every processor
// first, so the heavy job finishes at 2 + P > P + 1 and misses, even
// though the utilization beyond the one heavy task vanishes as P grows
// (util/m -> 1/m).  PD2 schedules every instance without a miss.
//
// Usage: sec1_dhall [processors=4]
#include <cstdio>

#include "bench/fig_common.h"
#include "sim/global_job_sim.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  const int m = static_cast<int>(arg_or(argc, argv, 1, 4));

  std::printf("# Dhall effect on %d processors: m x (2, P) + 1 x (P, P+1)\n", m);
  std::printf("# %6s %12s %14s %12s %12s %12s\n", "P", "total_util", "util/m",
              "gEDF_miss", "gRM_miss", "PD2_miss");

  for (const std::int64_t P : {10, 20, 40, 80, 160, 320}) {
    std::vector<UniTask> ts(static_cast<std::size_t>(m), UniTask{2, P});
    ts.push_back({P, P + 1});
    const double util = 2.0 / static_cast<double>(P) * m +
                        static_cast<double>(P) / static_cast<double>(P + 1);

    GlobalJobSimulator gedf(ts, m, UniAlgorithm::kEDF);
    gedf.run_until(20 * P);
    GlobalJobSimulator grm(ts, m, UniAlgorithm::kRM);
    grm.run_until(20 * P);

    SimConfig sc;
    sc.processors = m;
    PfairSimulator pd2(sc);
    for (const UniTask& t : ts) pd2.add_task(make_task(t.execution, t.period));
    pd2.run_until(20 * P);

    std::printf("  %6lld %12.3f %14.3f %12llu %12llu %12llu\n",
                static_cast<long long>(P), util, util / static_cast<double>(m),
                static_cast<unsigned long long>(gedf.metrics().deadline_misses),
                static_cast<unsigned long long>(grm.metrics().deadline_misses),
                static_cast<unsigned long long>(pd2.metrics().deadline_misses));
  }
  std::printf("# global EDF/RM miss in every row while util/m -> 1/m; PD2 never does\n");
  std::printf("# (Dhall & Liu 1978, the paper's Sec.-1 case against naive global\n");
  std::printf("#  scheduling; partitioning's own pathology is sec3_partition_bounds)\n");
  return 0;
}
