// Roster sweep: per-quantum PD2 against its two successor families on
// identical workloads — BF (boundary fair: decisions only at period
// boundaries) and RUN (reduction to uniprocessor: offline dual/pack
// tree, online server EDF).  The figure the follow-on literature draws
// from this paper's Sec.-4 accounting: how many scheduling decisions,
// preemptions and migrations each optimal scheduler actually pays for
// the same guarantee.
//
// Workloads use periods drawn from the divisors of 720720 so RUN's tick
// grid (the period lcm) stays bounded and every leg admits the same
// sets.  Every trial is verified: PD2 and BF traces through the trace
// verifier (BF against the job-boundary exactness condition), RUN
// through its independent segment-log verifier; any violation or miss
// is a hard row-level error count, not a silent skip.
//
// Usage: fig_roster [--processors=4] [--horizon=2520] [--trials=10]
//                   [--seed=1] [--jobs=N] [--json]
//
// Wall time is printed as a comment only — the JSON report stays
// byte-identical across --jobs (the CI parity leg cmp's 1 vs 2).
#include <cstdint>
#include <cstdio>

#include "bench/fig_common.h"
#include "sim/bf_sim.h"
#include "sim/run_sim.h"
#include "sim/verifier.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig_roster", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(2520);
  const long long sets = h.trials(10);

  std::printf("# PD2 vs BF vs RUN (%d processors, same workloads, horizon %lld)\n", m,
              horizon);
  std::printf("# scheduling points + counts per 1000 slots\n");
  std::printf("# %5s | %9s %9s %9s | %9s %9s | %9s %9s | %6s\n", "load", "pd2_pts",
              "bf_pts", "run_pts", "pd2_pre", "pd2_migr", "bf_pre", "bf_migr",
              "errors");

  engine::ParallelSweep sweep(h.jobs(), h.seed(1));
  const WallTimer wall;
  int load_idx = 0;
  for (const double load : {0.3, 0.5, 0.7, 0.85}) {
    struct Trial {
      engine::Metrics pd2, bf, run;
      int errors = 0;  ///< misses or verifier violations on any leg
    };
    const std::vector<Trial> trials = sweep.run(
        static_cast<std::uint64_t>(load_idx++), sets, [&](long long, Rng& rng) {
          // Divisor-family periods: total weight capped at load * m over
          // exact rationals, so all three optimal legs admit every task.
          // The period floor keeps the profile out of the degenerate
          // regime where every slot is a boundary and the decision-count
          // comparison collapses to per-quantum on all legs.
          TaskSet tasks;
          Rational total(0);
          const Rational cap(static_cast<std::int64_t>(load * 100.0) * m, 100);
          for (std::size_t i = 0; i < static_cast<std::size_t>(8 * m); ++i) {
            const Task t = random_pfair_task(rng, 64);
            if (t.period < 8) continue;
            const Rational w(t.execution, t.period);
            if (total + w > cap) continue;
            total = total + w;
            tasks.add(t);
          }
          Trial out;

          PfairConfig pc;
          pc.processors = m;
          pc.algorithm = Algorithm::kPD2;
          pc.record_trace = true;
          PfairSimulator pd2(pc);
          for (TaskId i = 0; i < tasks.size(); ++i)
            if (!pd2.admit(engine::task_spec(tasks[i].execution, tasks[i].period)))
              ++out.errors;
          pd2.run_until(horizon);
          out.pd2 = pd2.metrics();
          VerifyOptions vo;
          vo.processors = m;
          if (out.pd2.deadline_misses != 0 || !verify_schedule(pd2.trace(), tasks, vo).ok)
            ++out.errors;

          BfSimulator bf(tasks, BfConfig{m, true});
          bf.run_until(horizon);
          out.bf = bf.metrics();
          VerifyOptions bo;
          bo.processors = m;
          bo.check_windows = false;
          bo.check_lags = false;
          bo.check_job_boundaries = true;
          if (out.bf.deadline_misses != 0 || !verify_schedule(bf.trace(), tasks, bo).ok)
            ++out.errors;

          RunSimulator run((RunConfig{m, true}));
          for (TaskId i = 0; i < tasks.size(); ++i)
            if (!run.admit(engine::task_spec(tasks[i].execution, tasks[i].period)))
              ++out.errors;
          run.run_until(horizon);
          out.run = run.metrics();
          if (out.run.deadline_misses != 0 ||
              !verify_run_segments(run.segments(), run.tasks(), run.ticks_per_slot(),
                                   horizon, m)
                   .ok)
            ++out.errors;
          return out;
        });

    RunningStats pd2_pts, bf_pts, run_pts, pd2_pre, pd2_mig, bf_pre, bf_mig, run_pre,
        run_mig;
    long long errors = 0;
    const double k = 1000.0 / static_cast<double>(horizon);
    for (const Trial& t : trials) {  // trial order: deterministic merge
      errors += t.errors;
      pd2_pts.add(static_cast<double>(t.pd2.scheduling_points) * k);
      bf_pts.add(static_cast<double>(t.bf.scheduling_points) * k);
      run_pts.add(static_cast<double>(t.run.scheduling_points) * k);
      pd2_pre.add(static_cast<double>(t.pd2.preemptions) * k);
      pd2_mig.add(static_cast<double>(t.pd2.migrations) * k);
      bf_pre.add(static_cast<double>(t.bf.preemptions) * k);
      bf_mig.add(static_cast<double>(t.bf.migrations) * k);
      run_pre.add(static_cast<double>(t.run.preemptions) * k);
      run_mig.add(static_cast<double>(t.run.migrations) * k);
    }
    std::printf("  %5.2f | %9.1f %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f | %6lld\n",
                load, pd2_pts.mean(), bf_pts.mean(), run_pts.mean(), pd2_pre.mean(),
                pd2_mig.mean(), bf_pre.mean(), bf_mig.mean(), errors);
    h.add_row()
        .set("load", load)
        .set("pd2_sched_points", pd2_pts)
        .set("bf_sched_points", bf_pts)
        .set("run_sched_points", run_pts)
        .set("pd2_preemptions", pd2_pre)
        .set("pd2_migrations", pd2_mig)
        .set("bf_preemptions", bf_pre)
        .set("bf_migrations", bf_mig)
        .set("run_preemptions", run_pre)
        .set("run_migrations", run_mig)
        .set("verify_errors", errors);
  }
  std::printf("# expectations: PD2 decides every quantum (pts == 1000/1000 slots);\n");
  std::printf("# BF decides only at period boundaries and RUN only at tree events,\n");
  std::printf("# so both pts columns sit well below PD2 at every load while all\n");
  std::printf("# three stay miss-free (errors == 0) — optimality is never traded.\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
