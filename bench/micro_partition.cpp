// Partitioning heuristic throughput and packing quality at the task
// counts the Fig.-3 experiments use.  Relevant to the paper's point that
// FF/BF are cheap enough for online admission while FFD-style re-sorts
// are not free.
#include <benchmark/benchmark.h>

#include "partition/heuristics.h"
#include "util/rng.h"

namespace {

using namespace pfair;

std::vector<Rational> random_utils(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rational> u;
  u.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::int64_t p = rng.uniform_int(3, 30);
    u.emplace_back(rng.uniform_int(1, p), p);
  }
  return u;
}

void bm_partition(benchmark::State& state, Heuristic h) {
  const auto u = random_utils(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition(u, 1 << 12, h));
  }
  // Also report packing quality (processors used) as a counter.
  state.counters["procs"] =
      static_cast<double>(partition(u, 1 << 12, h).processors_used);
}

void BM_FirstFit(benchmark::State& s) { bm_partition(s, Heuristic::kFirstFit); }
void BM_BestFit(benchmark::State& s) { bm_partition(s, Heuristic::kBestFit); }
void BM_WorstFit(benchmark::State& s) { bm_partition(s, Heuristic::kWorstFit); }
void BM_FirstFitDecreasing(benchmark::State& s) {
  bm_partition(s, Heuristic::kFirstFitDecreasing);
}

BENCHMARK(BM_FirstFit)->Arg(50)->Arg(250)->Arg(1000);
BENCHMARK(BM_BestFit)->Arg(50)->Arg(250)->Arg(1000);
BENCHMARK(BM_WorstFit)->Arg(50)->Arg(250)->Arg(1000);
BENCHMARK(BM_FirstFitDecreasing)->Arg(50)->Arg(250)->Arg(1000);

}  // namespace
