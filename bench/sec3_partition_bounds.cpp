// Sec.-3 claims about partitioning, empirically: achievable utilization
// of EDF-FF / RM-FF (Liu-Layland and exact acceptance) versus the
// analytic bounds:
//   - every heuristic's worst case (m+1)/2 (the (1+eps)/2 adversary),
//   - the Lopez et al. bound (beta*m + 1)/(beta + 1),
//   - the ~41% multiprocessor RM guarantee the paper cites (Oh & Baker).
//
// For each processor count the harness reports, over random task sets,
// the largest total utilization at which first-fit still succeeded and
// the smallest at which it failed ("breakdown band"), alongside the
// bounds.
//
// Usage: sec3_partition_bounds [--trials=200] [--seed=1] [--json]
#include <algorithm>
#include <cstdio>

#include "bench/fig_common.h"
#include "partition/uni_partition.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("sec3_partition_bounds", argc, argv);
  const long long sets = h.trials(200);

  std::printf("# Partitioning bounds vs empirical first-fit breakdown\n");
  std::printf("# u_max <= 0.5 random tasks; bounds: worst=(m+1)/2, Lopez(beta=2)\n");
  std::printf("# %4s %10s %10s %14s %14s %14s\n", "m", "worst", "lopez",
              "EDF-FF_fail_min", "RM-LL_fail_min", "RM-ex_fail_min");

  Rng master(h.seed(1));
  for (const int m : {2, 4, 8, 16}) {
    // For each acceptance test, track the smallest total utilization of
    // a task set that failed to partition onto m processors.
    double fail_min_edf = 1e18;
    double fail_min_rmll = 1e18;
    double fail_min_rmex = 1e18;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(m) * 131071 +
                            static_cast<std::uint64_t>(s));
      // Random set with per-task utilization <= 1/2, total near the
      // interesting band [(m+1)/2 - 1, m].
      std::vector<UniTask> tasks;
      double total = 0.0;
      const double target = (static_cast<double>(m) + 1.0) / 2.0 - 1.0 +
                            rng.uniform01() * (static_cast<double>(m) / 2.0 + 1.0);
      while (total < target) {
        const std::int64_t p = rng.uniform_int(10, 100);
        const std::int64_t e = rng.uniform_int(1, p / 2);
        tasks.push_back({e, p});
        total += tasks.back().utilization();
      }
      const auto edf =
          partition_uni(tasks, m, Heuristic::kFirstFit, Acceptance::kEdfUtilization);
      if (!edf.feasible) fail_min_edf = std::min(fail_min_edf, total);
      const auto rmll =
          partition_uni(tasks, m, Heuristic::kFirstFit, Acceptance::kRmLiuLayland);
      if (!rmll.feasible) fail_min_rmll = std::min(fail_min_rmll, total);
      const auto rmex = partition_uni(tasks, m, Heuristic::kFirstFit, Acceptance::kRmExact);
      if (!rmex.feasible) fail_min_rmex = std::min(fail_min_rmex, total);
    }
    std::printf("  %4d %10.2f %10.2f %14.2f %14.2f %14.2f\n", m,
                partitioning_worst_case_utilization(m), lopez_bound(m, 0.5), fail_min_edf,
                fail_min_rmll, fail_min_rmex);
    h.add_row()
        .set("processors", static_cast<long long>(m))
        .set("worst_case_bound", partitioning_worst_case_utilization(m))
        .set("lopez_bound", lopez_bound(m, 0.5))
        .set("edfff_fail_min", fail_min_edf)
        .set("rmll_fail_min", fail_min_rmll)
        .set("rmexact_fail_min", fail_min_rmex);
  }
  std::printf("# expectations: EDF-FF never fails below the Lopez bound; RM-LL fails\n");
  std::printf("# earliest (its guarantee degrades toward ~0.41*m); RM-exact sits\n");
  std::printf("# between RM-LL and EDF.  Adversarial sets can push every heuristic\n");
  std::printf("# down to (m+1)/2 (see partition tests).\n");
  return h.finish();
}
