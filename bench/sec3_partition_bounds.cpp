// Sec.-3 claims about partitioning, empirically: achievable utilization
// of EDF-FF / RM-FF (Liu-Layland and exact acceptance) versus the
// analytic bounds:
//   - every heuristic's worst case (m+1)/2 (the (1+eps)/2 adversary),
//   - the Lopez et al. bound (beta*m + 1)/(beta + 1),
//   - the ~41% multiprocessor RM guarantee the paper cites (Oh & Baker).
//
// For each processor count the harness reports, over random task sets,
// the largest total utilization at which first-fit still succeeded and
// the smallest at which it failed ("breakdown band"), alongside the
// bounds.
//
// Usage: sec3_partition_bounds [--trials=200] [--seed=1] [--jobs=N] [--json]
//
// Trials run across --jobs worker threads with counter-based per-trial
// RNG streams; the report is byte-identical for any --jobs value.
#include <algorithm>
#include <cstdio>

#include "bench/fig_common.h"
#include "partition/uni_partition.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("sec3_partition_bounds", argc, argv);
  const long long sets = h.trials(200);

  std::printf("# Partitioning bounds vs empirical first-fit breakdown\n");
  std::printf("# u_max <= 0.5 random tasks; bounds: worst=(m+1)/2, Lopez(beta=2)\n");
  std::printf("# %4s %10s %10s %14s %14s %14s\n", "m", "worst", "lopez",
              "EDF-FF_fail_min", "RM-LL_fail_min", "RM-ex_fail_min");

  engine::ParallelSweep sweep(h.jobs(), h.seed(1));
  const bench::WallTimer wall;
  for (const int m : {2, 4, 8, 16}) {
    // For each acceptance test, track the smallest total utilization of
    // a task set that failed to partition onto m processors.
    struct Trial {
      double total = 0.0;
      bool edf_fail = false;
      bool rmll_fail = false;
      bool rmex_fail = false;
    };
    const std::vector<Trial> trials =
        sweep.run(static_cast<std::uint64_t>(m), sets, [&](long long, Rng& rng) {
          // Random set with per-task utilization <= 1/2, total near the
          // interesting band [(m+1)/2 - 1, m].
          std::vector<UniTask> tasks;
          Trial out;
          const double target = (static_cast<double>(m) + 1.0) / 2.0 - 1.0 +
                                rng.uniform01() * (static_cast<double>(m) / 2.0 + 1.0);
          while (out.total < target) {
            const std::int64_t p = rng.uniform_int(10, 100);
            const std::int64_t e = rng.uniform_int(1, p / 2);
            tasks.push_back({e, p});
            out.total += tasks.back().utilization();
          }
          out.edf_fail = !partition_uni(tasks, m, Heuristic::kFirstFit,
                                        Acceptance::kEdfUtilization)
                              .feasible;
          out.rmll_fail = !partition_uni(tasks, m, Heuristic::kFirstFit,
                                         Acceptance::kRmLiuLayland)
                               .feasible;
          out.rmex_fail =
              !partition_uni(tasks, m, Heuristic::kFirstFit, Acceptance::kRmExact)
                   .feasible;
          return out;
        });
    double fail_min_edf = 1e18;
    double fail_min_rmll = 1e18;
    double fail_min_rmex = 1e18;
    for (const Trial& t : trials) {  // trial order: deterministic merge
      if (t.edf_fail) fail_min_edf = std::min(fail_min_edf, t.total);
      if (t.rmll_fail) fail_min_rmll = std::min(fail_min_rmll, t.total);
      if (t.rmex_fail) fail_min_rmex = std::min(fail_min_rmex, t.total);
    }
    std::printf("  %4d %10.2f %10.2f %14.2f %14.2f %14.2f\n", m,
                partitioning_worst_case_utilization(m), lopez_bound(m, 0.5), fail_min_edf,
                fail_min_rmll, fail_min_rmex);
    h.add_row()
        .set("processors", static_cast<long long>(m))
        .set("worst_case_bound", partitioning_worst_case_utilization(m))
        .set("lopez_bound", lopez_bound(m, 0.5))
        .set("edfff_fail_min", fail_min_edf)
        .set("rmll_fail_min", fail_min_rmll)
        .set("rmexact_fail_min", fail_min_rmex);
  }
  std::printf("# expectations: EDF-FF never fails below the Lopez bound; RM-LL fails\n");
  std::printf("# earliest (its guarantee degrades toward ~0.41*m); RM-exact sits\n");
  std::printf("# between RM-LL and EDF.  Adversarial sets can push every heuristic\n");
  std::printf("# down to (m+1)/2 (see partition tests).\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
