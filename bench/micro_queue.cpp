// Ready-queue microbenchmarks: binary-heap operations at the queue
// sizes the Fig.-2 experiments reach.  Both schedulers in the paper use
// binary heaps; this isolates the data-structure contribution to the
// measured scheduling overhead.
#include <benchmark/benchmark.h>

#include "core/priority.h"
#include "util/binary_heap.h"
#include "util/rng.h"

namespace {

using namespace pfair;

void BM_HeapPushPop_Int(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  BinaryHeap<std::int64_t, std::less<std::int64_t>> heap;
  Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) heap.push(rng.uniform_int(0, 1 << 30));
  for (auto _ : state) {
    heap.push(rng.uniform_int(0, 1 << 30));
    benchmark::DoNotOptimize(heap.pop());
  }
}
BENCHMARK(BM_HeapPushPop_Int)->Arg(16)->Arg(100)->Arg(1000)->Arg(10000);

void BM_HeapPushPop_SubtaskPD2(benchmark::State& state) {
  // The actual PD2 ready-queue element and comparator.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  BinaryHeap<SubtaskRef, SubtaskPriority> heap{SubtaskPriority(Algorithm::kPD2)};
  Rng rng(2);
  const auto random_ref = [&rng](TaskId id) {
    const std::int64_t p = rng.uniform_int(2, 512);
    const std::int64_t e = rng.uniform_int(1, p);
    return make_subtask_ref(id, e, p, rng.uniform_int(1, 2 * e), 0);
  };
  for (std::size_t i = 0; i < n; ++i) heap.push(random_ref(static_cast<TaskId>(i)));
  TaskId next = static_cast<TaskId>(n);
  for (auto _ : state) {
    heap.push(random_ref(next++));
    benchmark::DoNotOptimize(heap.pop());
  }
}
BENCHMARK(BM_HeapPushPop_SubtaskPD2)->Arg(16)->Arg(100)->Arg(1000);

void BM_HeapErase_Middle(benchmark::State& state) {
  // Arbitrary-position erase via handles (needed by task leaves).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  BinaryHeap<std::int64_t, std::less<std::int64_t>> heap;
  Rng rng(3);
  std::vector<HeapHandle> handles;
  for (std::size_t i = 0; i < n; ++i) handles.push_back(heap.push(rng.uniform_int(0, 1 << 30)));
  std::size_t k = 0;
  for (auto _ : state) {
    const HeapHandle h = handles[k % handles.size()];
    heap.erase(h);
    handles[k % handles.size()] = heap.push(rng.uniform_int(0, 1 << 30));
    ++k;
  }
}
BENCHMARK(BM_HeapErase_Middle)->Arg(100)->Arg(1000);

}  // namespace
