// Ablation (paper Sec. 2): work conservation.  "Work-conserving
// algorithms are of interest because they tend to improve job response
// times, especially in lightly-loaded systems."  This harness measures
// mean and max job response time under periodic Pfair vs ERfair (early
// release) across system loads.
//
// Usage: ablation_erfair [--processors=4] [--horizon=20000] [--trials=10]
//                        [--seed=1] [--jobs=N] [--json]
//
// Trials run across --jobs worker threads with counter-based per-trial
// RNG streams; the report is byte-identical for any --jobs value.
#include <cstdio>
#include <optional>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("ablation_erfair", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(20000);
  const long long sets = h.trials(10);

  std::printf("# Pfair vs ERfair job response times (%d processors)\n", m);
  std::printf("# %8s %14s %14s %12s\n", "load", "pfair_mean", "erfair_mean", "speedup");

  engine::ParallelSweep sweep(h.jobs(), h.seed(1));
  const bench::WallTimer wall;
  int load_idx = 0;
  for (const double load : {0.25, 0.5, 0.75, 1.0}) {
    struct Trial {
      std::optional<double> pfair;
      std::optional<double> erfair;
    };
    const std::vector<Trial> trials = sweep.run(
        static_cast<std::uint64_t>(load_idx++), sets, [&](long long, Rng& rng) {
          // Build one workload; run it in both eligibility modes.
          TaskSet periodic;
          Rational total(0);
          const Rational cap(static_cast<std::int64_t>(load * 4 * m), 4);
          for (int k = 0; k < 6 * m; ++k) {
            const Task t = random_pfair_task(rng, 16);
            if (cap < total + t.weight()) continue;
            total += t.weight();
            periodic.add(t);
          }
          Trial out;
          if (periodic.empty()) return out;
          for (const bool early : {false, true}) {
            PfairConfig sc;
            sc.processors = m;
            PfairSimulator sim(sc);
            for (const Task& t : periodic.tasks()) {
              sim.add_task(make_task(
                  t.execution, t.period,
                  early ? TaskKind::kEarlyRelease : TaskKind::kPeriodic));
            }
            sim.run_until(horizon);
            (early ? out.erfair : out.pfair) = sim.metrics().response_time.mean();
          }
          return out;
        });
    RunningStats pfair_mean;
    RunningStats er_mean;
    for (const Trial& t : trials) {  // trial order: deterministic merge
      if (t.pfair.has_value()) pfair_mean.add(*t.pfair);
      if (t.erfair.has_value()) er_mean.add(*t.erfair);
    }
    std::printf("  %8.2f %14.2f %14.2f %11.2fx\n", load, pfair_mean.mean(),
                er_mean.mean(), pfair_mean.mean() / er_mean.mean());
    h.add_row()
        .set("load", load)
        .set("pfair_mean", pfair_mean)
        .set("erfair_mean", er_mean)
        .set("speedup", pfair_mean.mean() / er_mean.mean());
  }
  std::printf("# speedup should be largest at low load (paper Sec. 2) and shrink\n");
  std::printf("# toward 1x as the system approaches full utilization.\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
