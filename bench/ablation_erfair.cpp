// Ablation (paper Sec. 2): work conservation.  "Work-conserving
// algorithms are of interest because they tend to improve job response
// times, especially in lightly-loaded systems."  This harness measures
// mean and max job response time under periodic Pfair vs ERfair (early
// release) across system loads.
//
// Usage: ablation_erfair [--processors=4] [--horizon=20000] [--trials=10]
//                        [--seed=1] [--json]
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("ablation_erfair", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(20000);
  const long long sets = h.trials(10);

  std::printf("# Pfair vs ERfair job response times (%d processors)\n", m);
  std::printf("# %8s %14s %14s %12s\n", "load", "pfair_mean", "erfair_mean", "speedup");

  Rng master(h.seed(1));
  for (const double load : {0.25, 0.5, 0.75, 1.0}) {
    RunningStats pfair_mean;
    RunningStats er_mean;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(load * 1000) * 64 +
                            static_cast<std::uint64_t>(s));
      // Build one workload; run it in both eligibility modes.
      TaskSet periodic;
      Rational total(0);
      const Rational cap(static_cast<std::int64_t>(load * 4 * m), 4);
      for (int k = 0; k < 6 * m; ++k) {
        const Task t = random_pfair_task(rng, 16);
        if (cap < total + t.weight()) continue;
        total += t.weight();
        periodic.add(t);
      }
      if (periodic.empty()) continue;
      for (const bool early : {false, true}) {
        SimConfig sc;
        sc.processors = m;
        PfairSimulator sim(sc);
        for (const Task& t : periodic.tasks()) {
          sim.add_task(make_task(t.execution, t.period,
                                 early ? TaskKind::kEarlyRelease : TaskKind::kPeriodic));
        }
        sim.run_until(horizon);
        (early ? er_mean : pfair_mean).add(sim.metrics().response_time.mean());
      }
    }
    std::printf("  %8.2f %14.2f %14.2f %11.2fx\n", load, pfair_mean.mean(),
                er_mean.mean(), pfair_mean.mean() / er_mean.mean());
    h.add_row()
        .set("load", load)
        .set("pfair_mean", pfair_mean)
        .set("erfair_mean", er_mean)
        .set("speedup", pfair_mean.mean() / er_mean.mean());
  }
  std::printf("# speedup should be largest at low load (paper Sec. 2) and shrink\n");
  std::printf("# toward 1x as the system approaches full utilization.\n");
  return h.finish();
}
