// Fig. 4(a)-(b): fraction of schedulability lost to (i) PD2 system
// overheads, (ii) EDF system overheads, and (iii) FF bin-packing
// fragmentation, for systems of 50 and 100 tasks, as a function of mean
// task utilization.
//
// The paper plots three curves ("Pfair", "EDF", "FF") without stating
// the formulas; DESIGN.md Sec. 5 documents the decomposition used here:
//   Pfair loss = (U'_PD2 - U)   / m_PD2
//   EDF  loss  = (U'_EDF - U)   / m_EDF-FF
//   FF   loss  = (m_EDF-FF - U'_EDF) / m_EDF-FF
//
// Usage: fig4_schedulability_loss [--trials=200] [--seed=1] [--jobs=N]
//                                 [--json]
//
// Trials run across --jobs worker threads with counter-based per-trial
// RNG streams; the report is byte-identical for any --jobs value.
//
// Paper shape to check: EDF overhead stays low and flat; Pfair loss is
// moderate (quantisation-dominated); FF loss grows with mean utilization
// and eventually overtakes, which is why PD2 wins Fig. 3 at high
// utilizations.
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig4_schedulability_loss", argc, argv);
  const long long sets = h.trials(200);

  const OverheadParams params;

  engine::ParallelSweep sweep(h.jobs(), h.seed(1));
  const bench::WallTimer wall;
  const char inset[] = {'a', 'b'};
  int inset_idx = 0;
  for (const int n : {50, 100}) {
    std::printf("# Fig 4(%c): schedulability loss for %d tasks (%lld sets/point)\n",
                inset[inset_idx++], n, sets);
    std::printf("# %10s %12s %12s %12s\n", "mean_util", "Pfair_loss", "EDF_loss",
                "FF_loss");
    constexpr int kPoints = 12;
    for (int pt = 0; pt < kPoints; ++pt) {
      const double mean_u =
          1.0 / 30.0 + (1.0 / 3.0 - 1.0 / 30.0) * static_cast<double>(pt) /
                           static_cast<double>(kPoints - 1);
      const std::uint64_t point = static_cast<std::uint64_t>(n) * 1000 +
                                  static_cast<std::uint64_t>(pt);
      const std::vector<LossBreakdown> trials =
          sweep.run(point, sets, [&](long long, Rng& rng) {
            OhWorkloadConfig cfg;
            cfg.n_tasks = static_cast<std::size_t>(n);
            cfg.total_utilization = mean_u * static_cast<double>(n);
            const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
            return loss_breakdown(tasks, params);
          });
      RunningStats pfair_loss;
      RunningStats edf_loss;
      RunningStats ff_loss;
      for (const LossBreakdown& lb : trials) {  // trial order: deterministic merge
        if (!lb.valid) continue;
        pfair_loss.add(lb.pd2_loss);
        edf_loss.add(lb.edf_loss);
        ff_loss.add(lb.ff_loss);
      }
      std::printf("  %10.4f %12.5f %12.5f %12.5f\n", mean_u, pfair_loss.mean(),
                  edf_loss.mean(), ff_loss.mean());
      h.add_row()
          .set("tasks", static_cast<long long>(n))
          .set("mean_util", mean_u)
          .set("pfair_loss", pfair_loss)
          .set("edf_loss", edf_loss)
          .set("ff_loss", ff_loss);
    }
    std::printf("\n");
  }
  std::printf("# paper shape: EDF loss low/flat; FF loss grows with utilization and\n");
  std::printf("# overtakes the others; Pfair loss moderate (quantum rounding).\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
