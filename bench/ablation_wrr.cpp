// Ablation (paper Sec. 4): "PD2 can be thought of as a deadline-based
// variant of the weighted round-robin algorithm."  This harness
// quantifies what the deadlines buy: plain WRR preserves long-run rates
// but its allocation error (max |lag|) grows linearly with the frame
// length, while PD2 keeps it strictly below one quantum at any scale.
//
// Usage: ablation_wrr [--processors=4] [--horizon=20000] [--trials=10]
//                     [--seed=1] [--json]
#include <cstdio>

#include "bench/fig_common.h"
#include "sim/verifier.h"
#include "sim/wrr_sim.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("ablation_wrr", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(20000);
  const long long sets = h.trials(10);

  std::printf("# WRR vs PD2: allocation error vs frame length (%d processors)\n", m);
  std::printf("# 75%%-load column: WRR error grows with the frame; full-load column:\n");
  std::printf("# fixed-frame WRR wastes frame-tail capacity and drifts without bound\n");
  std::printf("# (PD2 handles both with |lag| < 1).\n");
  std::printf("# %8s %18s %18s %14s\n", "frame", "max|lag|@75%load", "max|lag|@full",
              "valid@75%");

  Rng master(h.seed(1));
  const auto partial_set = [&](Rng& rng) {
    TaskSet set;
    Rational total(0);
    const Rational cap(3 * m, 4);
    for (int k = 0; k < 8 * m; ++k) {
      const Task t = random_pfair_task(rng, 16);
      if (cap < total + t.weight()) continue;
      total += t.weight();
      set.add(t);
    }
    return set;
  };

  for (const Time frame : {Time{4}, Time{8}, Time{16}, Time{32}, Time{64}, Time{128}}) {
    RunningStats partial_lag;
    RunningStats full_lag;
    int valid = 0;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(frame) * 1000 +
                            static_cast<std::uint64_t>(s));
      {
        const TaskSet set = partial_set(rng);
        WrrConfig wc;
        wc.processors = m;
        wc.frame = frame;
        wc.record_trace = true;
        WrrSimulator wrr(set, wc);
        wrr.run_until(std::min<Time>(horizon, 2000));
        partial_lag.add(wrr.max_abs_lag().to_double());
        VerifyOptions vo;
        vo.processors = m;
        if (verify_schedule(wrr.trace(), set, vo).ok) ++valid;
      }
      {
        const TaskSet set = generate_feasible_taskset(rng, m, 16, 16, /*fill=*/true);
        WrrConfig wc;
        wc.processors = m;
        wc.frame = frame;
        wc.record_trace = false;
        WrrSimulator wrr(set, wc);
        wrr.run_until(std::min<Time>(horizon, 2000));
        full_lag.add(wrr.max_abs_lag().to_double());
      }
    }
    std::printf("  %8lld %18.3f %18.3f %11d/%lld\n", static_cast<long long>(frame),
                partial_lag.mean(), full_lag.mean(), valid, sets);
    h.add_row()
        .set("frame", static_cast<long long>(frame))
        .set("lag_partial", partial_lag)
        .set("lag_full", full_lag)
        .set("valid_partial", static_cast<long long>(valid));
  }

  // PD2 reference on the same workload class.
  RunningStats pd2_lag;
  for (long long s = 0; s < sets; ++s) {
    Rng rng = master.fork(0xabcdef00u + static_cast<std::uint64_t>(s));
    const TaskSet set = generate_feasible_taskset(rng, m, 16, 16, /*fill=*/true);
    PfairConfig sc;
    sc.processors = m;
    sc.check_lags = true;
    PfairSimulator sim(sc);
    std::vector<TaskId> ids;
    for (const Task& t : set.tasks()) ids.push_back(sim.add_task(t));
    sim.run_until(std::min<Time>(horizon, 2000));
    double worst = 0.0;
    for (const TaskId id : ids) {
      const double l = std::abs(sim.task_lag(id).to_double());
      if (l > worst) worst = l;
    }
    pd2_lag.add(worst);
    if (sim.metrics().lag_violations != 0)
      std::printf("# UNEXPECTED: PD2 lag violation in set %lld\n", s);
  }
  std::printf("# PD2 reference: max|lag| %.3f (provably < 1 at every time)\n",
              pd2_lag.mean());
  h.add_row().set("pd2_reference_lag", pd2_lag);
  return h.finish();
}
