// Ablation (paper Sec. 4, "Challenges in Pfair scheduling"): the
// quantum-size tradeoff.  Sweeps the PD2 quantum and decomposes the
// capacity loss into rounding loss (worse for large quanta) and
// Eq.-(3) overhead loss (worse for small quanta), reporting the
// processor count at each point and the best quantum.
//
// Usage: ablation_quantum [--tasks=100] [--total_util=10] [--trials=20]
//                         [--seed=1] [--json]
#include <cstdio>

#include "bench/fig_common.h"
#include "overhead/quantum_tradeoff.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("ablation_quantum", argc, argv);
  const long long n = h.flag("tasks", 100);
  const double total_util = h.flag_double("total_util", 10.0);
  const long long sets = h.trials(20);

  const std::vector<double> quanta = {100.0,  250.0,  500.0,  1000.0,
                                      2000.0, 4000.0, 8000.0, 16000.0};
  const OverheadParams params;

  std::printf("# Quantum-size tradeoff: %lld tasks, total util %.1f, %lld sets\n", n,
              total_util, sets);
  std::printf("# %10s %12s %14s %14s %10s\n", "quantum_us", "processors",
              "rounding_loss", "overhead_loss", "infeasible");

  Rng master(h.seed(1));
  std::vector<RunningStats> procs(quanta.size());
  std::vector<RunningStats> rounding(quanta.size());
  std::vector<RunningStats> overhead(quanta.size());
  std::vector<int> infeasible(quanta.size(), 0);
  RunningStats best_q;

  for (long long s = 0; s < sets; ++s) {
    Rng rng = master.fork(static_cast<std::uint64_t>(s));
    OhWorkloadConfig cfg;
    cfg.n_tasks = static_cast<std::size_t>(n);
    cfg.total_utilization = total_util;
    const std::vector<OhTask> tasks = generate_oh_tasks(cfg, rng);
    const auto points = sweep_quantum_sizes(tasks, params, quanta);
    for (std::size_t k = 0; k < points.size(); ++k) {
      if (!points[k].processors.has_value()) {
        ++infeasible[k];
        continue;
      }
      procs[k].add(static_cast<double>(*points[k].processors));
      rounding[k].add(points[k].rounding_loss);
      overhead[k].add(points[k].overhead_loss);
    }
    const auto best = best_quantum(tasks, params, quanta);
    if (best.has_value()) best_q.add(*best);
  }

  for (std::size_t k = 0; k < quanta.size(); ++k) {
    std::printf("  %10.0f %12.3f %14.4f %14.4f %10d\n", quanta[k], procs[k].mean(),
                rounding[k].mean(), overhead[k].mean(), infeasible[k]);
    h.add_row()
        .set("quantum_us", quanta[k])
        .set("processors", procs[k])
        .set("rounding_loss", rounding[k])
        .set("overhead_loss", overhead[k])
        .set("infeasible", static_cast<long long>(infeasible[k]));
  }
  std::printf("# mean best quantum: %.0f us (the interior optimum the paper's open\n",
              best_q.mean());
  std::printf("# problem asks for; 1 ms is near-optimal for this workload class)\n");
  h.add_row().set("best_quantum_us", best_q);
  return h.finish();
}
