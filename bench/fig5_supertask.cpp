// Fig. 5: the supertask deadline miss.
//
// Two-processor PD2 schedule with V = 1/2, W = X = 1/3, Y = 2/9 and a
// supertask S = {T: 1/5, U: 1/45} competing at its cumulative weight
// 2/9.  Prints the schedule (one row per task, as in the figure) and
// verifies the figure's claims:
//   - the global schedule is a valid Pfair schedule (no server misses);
//   - S receives no quantum in [5, 10);
//   - component T misses its deadline at time 10;
//   - the Holman-Anderson reweighting (+1/p_min) removes the miss.
//
// Usage: fig5_supertask [--horizon=45] [--json]
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig5_supertask", argc, argv);
  const long long horizon = h.horizon(45);
  const Fig5System sys = fig5_system();

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    h.add_row().set("check", std::string(what)).set("ok", static_cast<long long>(ok));
    if (!ok) ++failures;
  };

  {
    SimConfig cfg;
    cfg.processors = 2;
    cfg.record_trace = true;
    PfairSimulator sim(cfg);
    sim.add_task(sys.normal_tasks[0]);
    sim.add_task(sys.normal_tasks[1]);
    sim.add_task(sys.normal_tasks[2]);
    const TaskId s = sim.add_supertask(sys.supertask);
    sim.add_task(sys.normal_tasks[3]);
    sim.run_until(horizon);

    std::printf("# Fig 5: PD2 schedule, supertask S = {T:1/5, U:1/45} at weight 2/9\n");
    std::printf("%s\n", sim.trace().render(sim.task_names()).c_str());
    bool s_idle_5_10 = true;
    for (std::size_t t = 5; t < 10; ++t)
      if (sim.trace().scheduled(t, s)) s_idle_5_10 = false;
    check(sim.metrics().deadline_misses == 0, "global Pfair schedule has no server miss");
    check(s_idle_5_10, "S receives no quantum in [5, 10)");
    check(sim.component_miss_count(s, 0) > 0, "component T misses a deadline");
    check(sim.metrics().first_miss_time == 10, "first (component) miss at time 10");
  }
  {
    SimConfig cfg;
    cfg.processors = 2;
    PfairSimulator sim(cfg);
    sim.add_task(sys.normal_tasks[0]);
    sim.add_task(sys.normal_tasks[1]);
    sim.add_task(sys.normal_tasks[2]);
    const TaskId s =
        sim.add_supertask(make_reweighted_supertask(sys.supertask.components, "S"));
    sim.add_task(sys.normal_tasks[3]);
    sim.run_until(horizon * 20);
    check(sim.component_miss_count(s, 0) == 0 && sim.component_miss_count(s, 1) == 0,
          "reweighted supertask (+1/p_min): no component miss over a long run");
  }
  return h.finish(failures);
}
