// Fig. 5: the supertask deadline miss.
//
// Two-processor PD2 schedule with V = 1/2, W = X = 1/3, Y = 2/9 and a
// supertask S = {T: 1/5, U: 1/45} competing at its cumulative weight
// 2/9.  Prints the schedule (one row per task, as in the figure) and
// verifies the figure's claims:
//   - the global schedule is a valid Pfair schedule (no server misses);
//   - S receives no quantum in [5, 10);
//   - component T misses its deadline at time 10;
//   - the Holman-Anderson reweighting (+1/p_min) removes the miss.
//
// Usage: fig5_supertask [--horizon=45] [--json]
//          [--trace=FILE]   write a Perfetto/Chrome trace of the miss run
//          [--events=FILE]  write the structured JSONL event stream
//          [--lag=FILE]     write the per-task lag timeline as CSV
#include <cstdio>
#include <fstream>
#include <optional>

#include "bench/fig_common.h"
#include "obs/bus.h"
#include "obs/histogram_sink.h"
#include "obs/jsonl_sink.h"
#include "obs/lag_sampler.h"
#include "obs/perfetto_sink.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig5_supertask", argc, argv);
  const long long horizon = h.horizon(45);
  const Fig5System sys = fig5_system();

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    h.add_row().set("check", std::string(what)).set("ok", static_cast<long long>(ok));
    if (!ok) ++failures;
  };

  const std::string trace_path = h.flag_string("trace", "");
  const std::string events_path = h.flag_string("events", "");
  const std::string lag_path = h.flag_string("lag", "");

  {
    PfairConfig cfg;
    cfg.processors = 2;
    cfg.record_trace = true;
    cfg.lag_sample_every = 1;  // per-slot lag timeline for the sampler
    PfairSimulator sim(cfg);

    // Observability: histograms always (exported through --json); the
    // file-writing sinks only when their flag names a destination.
    obs::EventBus bus;
    obs::HistogramSink hists;
    obs::LagSampler lags;
    bus.add_sink(&hists);
    bus.add_sink(&lags);
    std::ofstream trace_file;
    std::ofstream events_file;
    std::optional<obs::PerfettoSink> perfetto;
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      perfetto.emplace(trace_file);  // writes the JSON header on construction
      bus.add_sink(&*perfetto);
    }
    std::optional<obs::JsonlSink> jsonl;
    if (!events_path.empty()) {
      events_file.open(events_path);
      jsonl.emplace(events_file);
      bus.add_sink(&*jsonl);
    }
    sim.attach_observer(&bus);

    sim.add_task(sys.normal_tasks[0]);
    sim.add_task(sys.normal_tasks[1]);
    sim.add_task(sys.normal_tasks[2]);
    const TaskId s = sim.add_supertask(sys.supertask);
    sim.add_task(sys.normal_tasks[3]);
    if (perfetto) perfetto->set_task_names(sim.task_names());
    sim.run_until(horizon);
    bus.flush();
    if (!lag_path.empty()) {
      std::ofstream lag_file(lag_path);
      lags.write_csv(lag_file);
    }
    h.add_row()
        .set("check", std::string("histograms"))
        .set("response_time_hist", hists.response_time())
        .set("dispatch_latency_hist", hists.dispatch_latency());

    std::printf("# Fig 5: PD2 schedule, supertask S = {T:1/5, U:1/45} at weight 2/9\n");
    std::printf("%s\n", sim.trace().render(sim.task_names()).c_str());
    bool s_idle_5_10 = true;
    for (std::size_t t = 5; t < 10; ++t)
      if (sim.trace().scheduled(t, s)) s_idle_5_10 = false;
    check(sim.metrics().deadline_misses == 0, "global Pfair schedule has no server miss");
    check(s_idle_5_10, "S receives no quantum in [5, 10)");
    check(sim.component_miss_count(s, 0) > 0, "component T misses a deadline");
    check(sim.metrics().first_miss_time == 10, "first (component) miss at time 10");
  }
  {
    PfairConfig cfg;
    cfg.processors = 2;
    PfairSimulator sim(cfg);
    sim.add_task(sys.normal_tasks[0]);
    sim.add_task(sys.normal_tasks[1]);
    sim.add_task(sys.normal_tasks[2]);
    const TaskId s =
        sim.add_supertask(make_reweighted_supertask(sys.supertask.components, "S"));
    sim.add_task(sys.normal_tasks[3]);
    sim.run_until(horizon * 20);
    check(sim.component_miss_count(s, 0) == 0 && sim.component_miss_count(s, 1) == 0,
          "reweighted supertask (+1/p_min): no component miss over a long run");
  }
  return h.finish(failures);
}
