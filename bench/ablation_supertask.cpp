// Ablation (paper Sec. 5.5): the supertask spectrum between global
// Pfair and partitioning.  Packs random task sets into G in {0, 1, ...,
// M} bound supertasks and measures the trade the paper describes:
// packing cuts context switches and migrations (components inherit
// EDF-like consecutive execution) at the price of the Holman-Anderson
// reweighting capacity overhead.
//
// Usage: ablation_supertask [--processors=4] [--horizon=20000] [--trials=10]
//                           [--seed=1] [--json]
#include <cstdio>

#include "bench/fig_common.h"
#include "core/supertask_packing.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("ablation_supertask", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(20000);
  const long long sets = h.trials(10);

  std::printf("# Supertask packing spectrum (%d processors, ~55%% raw load)\n", m);
  std::printf("# switches = context + component switches per 1000 slots\n");
  std::printf("# %8s %12s %12s %14s %14s %10s\n", "groups", "switches", "migrations",
              "packed_weight", "overhead", "misses");

  Rng master(h.seed(1));
  for (int groups = 0; groups <= m; ++groups) {
    RunningStats switches;
    RunningStats migrations;
    RunningStats weight;
    RunningStats overhead;
    std::uint64_t misses = 0;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(s));  // same sets per G
      TaskSet set;
      Rational total(0);
      const Rational cap(11 * m, 20);  // leave room for reweighting
      for (int k = 0; k < 10 * m; ++k) {
        const Task t = random_pfair_task(rng, 16);
        if (Rational(1, 2) < t.weight()) continue;
        if (cap < total + t.weight()) continue;
        total += t.weight();
        set.add(t);
      }
      const PackingResult packed = pack_into_supertasks(set, groups);
      if (Rational(m) < packed.total_weight) continue;  // overhead overflow
      PfairConfig sc;
      sc.processors = m;
      PfairSimulator sim(sc);
      std::vector<TaskId> servers;
      for (std::size_t g = 0; g < packed.supertasks.size(); ++g)
        servers.push_back(sim.add_supertask(packed.supertasks[g],
                                            static_cast<ProcId>(g % static_cast<std::size_t>(m))));
      for (const Task& t : packed.migratory) sim.add_task(t);
      sim.run_until(horizon);
      misses += sim.metrics().deadline_misses + sim.metrics().component_misses;
      const double per_kiloslot = 1000.0 / static_cast<double>(horizon);
      switches.add(static_cast<double>(sim.metrics().context_switches +
                                       sim.metrics().component_switches) *
                   per_kiloslot);
      migrations.add(static_cast<double>(sim.metrics().migrations) * per_kiloslot);
      weight.add(packed.total_weight.to_double());
      overhead.add(packed.reweighting_overhead(set).to_double());
    }
    std::printf("  %8d %12.1f %12.1f %14.3f %14.3f %10llu\n", groups, switches.mean(),
                migrations.mean(), weight.mean(), overhead.mean(),
                static_cast<unsigned long long>(misses));
    h.add_row()
        .set("groups", static_cast<long long>(groups))
        .set("switches", switches)
        .set("migrations", migrations)
        .set("packed_weight", weight)
        .set("reweighting_overhead", overhead)
        .set("misses", static_cast<long long>(misses));
  }
  std::printf("# expectations: switches and migrations fall as groups grow; the\n");
  std::printf("# packed weight column shows the reweighting price; misses stay 0.\n");
  return h.finish();
}
