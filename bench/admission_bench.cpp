// Admission throughput: how fast can the pfaird gate answer, and which
// tier does the answering?
//
// Drives one deterministic generated request stream (serve/request.h)
// through an in-process serve::Daemon per scheduler kind and reports
// the decision mix — admits/rejects/errors and the deciding tiers —
// plus the decision-latency histogram.  Wall-clock throughput and the
// Tier-2 memo hit rate are printed to stdout for humans but
// deliberately kept OUT of the JSON report: every recorded field is a
// pure function of the flags, so two runs of this bench produce
// byte-identical BENCH_admission.json files (CI cmp's them) and
// pfair_perf can diff against the committed baseline without wall-time
// noise.
//
// Usage: admission_bench [--requests=5000] [--seed=42] [--load=150]
//                        [--processors=4] [--advance=1]
//                        [--residents=0] [--batch=1] [--jobs=1]
//                        [--kind=all] [--json]
//
// --load is offered load in percent of capacity (150 = half again more
// than fits, so the reject paths get real traffic).
//
// Scale axes (the ISSUE-10 high-throughput work):
//   --residents=N  commits N ultra-light ballast tasks into the gate
//                  before the measured stream (DaemonConfig.residents),
//                  so decisions run against an N-task committed set.
//                  Pair with --advance=0 at large N: the ballast lives
//                  only in the gate, and the point is admission
//                  throughput, not slot-kernel throughput.
//   --batch=K      rewrites the stream into {"op":"batch"} lines of K
//                  sub-requests (serve::batch_requests); the batch
//                  lines themselves carry the grouping, so the daemon
//                  serves with its default pipeline depth of 1.
//   --jobs=J       Tier-2 memo prewarm workers.
// Decisions are byte-identical for every (batch, jobs) setting and the
// JSON rows count sub-requests, so the recorded report is invariant
// across the batching axes — only the stdout throughput moves.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "engine/harness.h"
#include "serve/daemon.h"
#include "serve/request.h"

int main(int argc, char** argv) {
  using namespace pfair;

  engine::ExperimentHarness h("admission", argc, argv);
  const auto n_requests = static_cast<std::size_t>(h.flag("requests", 5000));
  const auto seed = h.seed(42);
  const double load = static_cast<double>(h.flag("load", 150)) / 100.0;
  const int m = static_cast<int>(h.flag("processors", 4));
  const auto advance = static_cast<Time>(h.flag("advance", 1));
  const auto residents = static_cast<std::size_t>(h.flag("residents", 0));
  const auto batch = static_cast<std::size_t>(h.flag("batch", 1));
  const int jobs = static_cast<int>(h.flag("jobs", 1));
  const std::string only_kind = h.flag_string("kind", "all");

  serve::GenConfig gc;
  gc.count = n_requests;
  gc.seed = seed;
  gc.load = load;
  gc.processors = m;
  std::string requests = serve::generate_requests(gc);
  if (batch > 1) requests = serve::batch_requests(requests, batch);

  std::printf("# admission gate throughput (%zu requests, load %.0f%%, m=%d, "
              "residents=%zu, batch=%zu, jobs=%d)\n",
              n_requests, load * 100.0, m, residents, batch, jobs);
  std::printf("# %-11s | %8s %8s %7s | %7s %7s %7s %7s | %10s | %8s %8s\n", "kind",
              "admits", "rejects", "errors", "tier0", "tier1", "tier2", "approx",
              "committed", "p50_ns", "p99_ns");

  for (const engine::SchedulerKind kind :
       {engine::SchedulerKind::kPfair, engine::SchedulerKind::kPartitioned,
        engine::SchedulerKind::kGlobalJob, engine::SchedulerKind::kUniproc}) {
    if (only_kind != "all" && only_kind != engine::to_string(kind)) continue;
    serve::DaemonConfig dc;
    dc.kind = kind;
    dc.processors = m;
    dc.advance_per_request = advance;
    dc.residents = residents;
    dc.jobs = jobs;
    serve::Daemon daemon(dc);

    std::istringstream in(requests);
    std::ostringstream decisions;
    const auto start = std::chrono::steady_clock::now();
    (void)daemon.serve(in, decisions);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const serve::DaemonStats& s = daemon.stats();
    const std::uint64_t hits = daemon.controller().memo_hits();
    const std::uint64_t misses = daemon.controller().memo_misses();
    std::printf("# %-11s | %8llu %8llu %7llu | %7llu %7llu %7llu %7llu | %10zu | "
                "%8.0f %8.0f   (%.0f decisions/sec, memo %llu/%llu = %.0f%% hits)\n",
                engine::to_string(kind), static_cast<unsigned long long>(s.admits),
                static_cast<unsigned long long>(s.rejects),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.tier0),
                static_cast<unsigned long long>(s.tier1),
                static_cast<unsigned long long>(s.tier2),
                static_cast<unsigned long long>(s.approx), daemon.controller().committed(),
                s.latency_ns.p50(), s.latency_ns.p99(),
                secs > 0.0 ? static_cast<double>(s.requests) / secs : 0.0,
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(hits + misses),
                hits + misses > 0
                    ? 100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses)
                    : 0.0);

    // Deterministic fields only: no wall time, no latency numbers, no
    // memo counters (prewarm shifts hit/miss splits across jobs
    // settings without changing any decision).  "requests" counts
    // sub-requests, so these rows are invariant across --batch/--jobs.
    h.add_row()
        .set("kind", std::string(engine::to_string(kind)))
        .set("requests", static_cast<long long>(s.requests))
        .set("admits", static_cast<long long>(s.admits))
        .set("rejects", static_cast<long long>(s.rejects))
        .set("errors", static_cast<long long>(s.errors))
        .set("tier0", static_cast<long long>(s.tier0))
        .set("tier1", static_cast<long long>(s.tier1))
        .set("tier2", static_cast<long long>(s.tier2))
        .set("approx", static_cast<long long>(s.approx))
        .set("committed", static_cast<long long>(daemon.controller().committed()))
        .set("total_weight", daemon.controller().total_weight().to_string())
        .set("sim_now", static_cast<long long>(daemon.simulator().now()));
  }
  return h.finish();
}
