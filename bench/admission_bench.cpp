// Admission throughput: how fast can the pfaird gate answer, and which
// tier does the answering?
//
// Drives one deterministic generated request stream (serve/request.h)
// through an in-process serve::Daemon per scheduler kind and reports
// the decision mix — admits/rejects/errors and the deciding tiers —
// plus the decision-latency histogram.  Wall-clock throughput is
// printed to stdout for humans but deliberately kept OUT of the JSON
// report: every recorded field is a pure function of (seed, count,
// load, kind), so two runs of this bench produce byte-identical
// BENCH_admission.json files (CI cmp's them) and pfair_perf can diff
// against the committed baseline without wall-time noise.
//
// Usage: admission_bench [--requests=5000] [--seed=42] [--load=150]
//                        [--processors=4] [--advance=1] [--json]
//
// --load is offered load in percent of capacity (150 = half again more
// than fits, so the reject paths get real traffic).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "engine/harness.h"
#include "serve/daemon.h"
#include "serve/request.h"

int main(int argc, char** argv) {
  using namespace pfair;

  engine::ExperimentHarness h("admission", argc, argv);
  const auto n_requests = static_cast<std::size_t>(h.flag("requests", 5000));
  const auto seed = h.seed(42);
  const double load = static_cast<double>(h.flag("load", 150)) / 100.0;
  const int m = static_cast<int>(h.flag("processors", 4));
  const auto advance = static_cast<Time>(h.flag("advance", 1));

  serve::GenConfig gc;
  gc.count = n_requests;
  gc.seed = seed;
  gc.load = load;
  gc.processors = m;
  const std::string requests = serve::generate_requests(gc);

  std::printf("# admission gate throughput (%zu requests, load %.0f%%, m=%d)\n",
              n_requests, load * 100.0, m);
  std::printf("# %-11s | %8s %8s %7s | %7s %7s %7s %7s | %10s | %8s %8s\n", "kind",
              "admits", "rejects", "errors", "tier0", "tier1", "tier2", "approx",
              "committed", "p50_ns", "p99_ns");

  for (const engine::SchedulerKind kind :
       {engine::SchedulerKind::kPfair, engine::SchedulerKind::kPartitioned,
        engine::SchedulerKind::kGlobalJob, engine::SchedulerKind::kUniproc}) {
    serve::DaemonConfig dc;
    dc.kind = kind;
    dc.processors = m;
    dc.advance_per_request = advance;
    serve::Daemon daemon(dc);

    std::istringstream in(requests);
    std::ostringstream decisions;
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t handled = daemon.serve(in, decisions);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const serve::DaemonStats& s = daemon.stats();
    std::printf("# %-11s | %8llu %8llu %7llu | %7llu %7llu %7llu %7llu | %10zu | "
                "%8.0f %8.0f   (%.0f decisions/sec)\n",
                engine::to_string(kind), static_cast<unsigned long long>(s.admits),
                static_cast<unsigned long long>(s.rejects),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.tier0),
                static_cast<unsigned long long>(s.tier1),
                static_cast<unsigned long long>(s.tier2),
                static_cast<unsigned long long>(s.approx), daemon.controller().committed(),
                s.latency_ns.p50(), s.latency_ns.p99(),
                secs > 0.0 ? static_cast<double>(handled) / secs : 0.0);

    // Deterministic fields only: no wall time, no latency numbers.
    h.add_row()
        .set("kind", std::string(engine::to_string(kind)))
        .set("requests", static_cast<long long>(handled))
        .set("admits", static_cast<long long>(s.admits))
        .set("rejects", static_cast<long long>(s.rejects))
        .set("errors", static_cast<long long>(s.errors))
        .set("tier0", static_cast<long long>(s.tier0))
        .set("tier1", static_cast<long long>(s.tier1))
        .set("tier2", static_cast<long long>(s.tier2))
        .set("approx", static_cast<long long>(s.approx))
        .set("committed", static_cast<long long>(daemon.controller().committed()))
        .set("total_weight", daemon.controller().total_weight().to_string())
        .set("sim_now", static_cast<long long>(daemon.simulator().now()));
  }
  return h.finish();
}
