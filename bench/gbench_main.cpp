// Shared main() for the google-benchmark micro benches.
//
// Replaces benchmark::benchmark_main so the micro_* binaries sit on the
// same engine::ExperimentHarness as the figure benches: every reported
// run becomes a harness row, and --json writes BENCH_<binary>.json
// alongside google-benchmark's normal console output.  Harness flags
// and --benchmark_* flags coexist: the harness ignores flags it is
// never asked for, and benchmark::Initialize leaves non-benchmark flags
// alone.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/harness.h"

namespace {

std::string binary_name(const char* argv0) {
  std::string s = argv0 != nullptr ? argv0 : "micro_bench";
  const std::size_t slash = s.find_last_of("/\\");
  if (slash != std::string::npos) s = s.substr(slash + 1);
  return s.empty() ? "micro_bench" : s;
}

// Tees every reported run into the harness, then defers to the normal
// console output.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(pfair::engine::ExperimentHarness& h) : harness_(h) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      harness_.add_row()
          .set("name", run.benchmark_name())
          .set("real_time", run.GetAdjustedRealTime())
          .set("cpu_time", run.GetAdjustedCPUTime())
          .set("time_unit", std::string(benchmark::GetTimeUnitString(run.time_unit)))
          .set("iterations", static_cast<long long>(run.iterations));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  pfair::engine::ExperimentHarness& harness_;
};

}  // namespace

int main(int argc, char** argv) {
  pfair::engine::ExperimentHarness h(binary_name(argc > 0 ? argv[0] : nullptr), argc,
                                     argv);
  benchmark::Initialize(&argc, argv);
  HarnessReporter reporter(h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return h.finish();
}
