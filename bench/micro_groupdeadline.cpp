// Ablation: closed-form group deadline vs the O(p) definitional scan.
// Justifies using the closed form inside the scheduler's hot path.
#include <benchmark/benchmark.h>

#include "core/windows.h"
#include "util/rng.h"

namespace {

using namespace pfair;

struct Sample {
  std::int64_t e, p, i;
};

std::vector<Sample> heavy_samples(std::size_t n) {
  Rng rng(11);
  std::vector<Sample> out;
  for (std::size_t k = 0; k < n; ++k) {
    const std::int64_t p = rng.uniform_int(4, 2000);
    const std::int64_t e = rng.uniform_int((p + 1) / 2, p - 1 > 0 ? p - 1 : 1);
    out.push_back({e, p, rng.uniform_int(1, 2 * e)});
  }
  return out;
}

void BM_GroupDeadline_ClosedForm(benchmark::State& state) {
  const auto samples = heavy_samples(256);
  std::size_t k = 0;
  for (auto _ : state) {
    const Sample& s = samples[k & 255];
    benchmark::DoNotOptimize(group_deadline(s.e, s.p, s.i));
    ++k;
  }
}
BENCHMARK(BM_GroupDeadline_ClosedForm);

void BM_GroupDeadline_ByDefinition(benchmark::State& state) {
  const auto samples = heavy_samples(256);
  std::size_t k = 0;
  for (auto _ : state) {
    const Sample& s = samples[k & 255];
    benchmark::DoNotOptimize(group_deadline_by_definition(s.e, s.p, s.i));
    ++k;
  }
}
BENCHMARK(BM_GroupDeadline_ByDefinition);

void BM_WindowTriple(benchmark::State& state) {
  // r, d, b for one subtask (the light-task fast path).
  const auto samples = heavy_samples(256);
  std::size_t k = 0;
  for (auto _ : state) {
    const Sample& s = samples[k & 255];
    benchmark::DoNotOptimize(subtask_release(s.e, s.p, s.i));
    benchmark::DoNotOptimize(subtask_deadline(s.e, s.p, s.i));
    benchmark::DoNotOptimize(b_bit(s.e, s.p, s.i));
    ++k;
  }
}
BENCHMARK(BM_WindowTriple);

}  // namespace
