// ScheduleTrace microbenchmarks: the cost of allocation() queries, which
// the verifier issues once per scheduled quantum.  The per-task slot
// index turns each query from a rescan of every recorded slot (O(t * P))
// into a binary search, so verification of long traces stops being
// quadratic in the horizon.  BM_Allocation_LinearScan preserves the old
// implementation as the baseline.
#include <benchmark/benchmark.h>

#include "sim/trace.h"
#include "util/rng.h"

namespace {

using namespace pfair;

constexpr int kProcs = 8;

ScheduleTrace make_trace(std::size_t horizon, TaskId tasks) {
  ScheduleTrace tr;
  Rng rng(7);
  for (std::size_t t = 0; t < horizon; ++t) {
    tr.begin_slot(kProcs);
    for (ProcId p = 0; p < kProcs; ++p) {
      const auto id = static_cast<TaskId>(rng.uniform_int(0, tasks - 1));
      if (!tr.scheduled(t, id)) tr.record(p, id);
    }
  }
  return tr;
}

/// The pre-index implementation: rescan every slot up to t_end.
std::int64_t allocation_linear(const ScheduleTrace& tr, TaskId task, std::size_t t_end) {
  std::int64_t n = 0;
  for (std::size_t t = 0; t < t_end && t < tr.size(); ++t)
    if (tr.scheduled(t, task)) ++n;
  return n;
}

void BM_Allocation_LinearScan(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  const ScheduleTrace tr = make_trace(horizon, 32);
  std::size_t t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocation_linear(tr, t % 32, t % horizon));
    ++t;
  }
}
BENCHMARK(BM_Allocation_LinearScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Allocation_Indexed(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  const ScheduleTrace tr = make_trace(horizon, 32);
  std::size_t t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tr.allocation(static_cast<TaskId>(t % 32), t % horizon));
    ++t;
  }
}
BENCHMARK(BM_Allocation_Indexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Record(benchmark::State& state) {
  // Index maintenance cost on the hot recording path.
  const auto horizon = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_trace(horizon, 32));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(horizon) * kProcs);
}
BENCHMARK(BM_Record)->Arg(1000)->Arg(10000);

}  // namespace
