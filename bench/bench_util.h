// Shared workload helpers for the figure-regeneration harnesses.
// Flag parsing / JSON reporting live in engine/harness.h; scheduler
// comparison loops in engine/compare.h.
#pragma once

#include <chrono>
#include <vector>

#include "core/task.h"
#include "uniproc/uni_task.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace pfair::bench {

/// Wall-clock stopwatch for the `# wall ...` stdout footer of the
/// parallel sweeps.  Timing is only ever printed to stdout, never put in
/// the JSON report — the report must stay byte-identical across --jobs
/// values.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Integer-quanta task set with total weight <= u_cap (shared by the
/// Fig.-2 measurements so EDF and PD2 see the *same* workload, as in the
/// paper).  Periods in [p_max/100, p_max] quanta.
inline std::vector<Task> fig2_taskset(Rng& rng, std::size_t n, double u_cap,
                                      std::int64_t p_max) {
  const std::vector<UniTask> uni = generate_uni_tasks(rng, n, u_cap, p_max);
  std::vector<Task> out;
  out.reserve(uni.size());
  for (const UniTask& t : uni) out.push_back(make_task(t.execution, t.period));
  return out;
}

inline std::vector<UniTask> as_uni(const std::vector<Task>& ts) {
  std::vector<UniTask> out;
  out.reserve(ts.size());
  for (const Task& t : ts) out.push_back({t.execution, t.period});
  return out;
}

}  // namespace pfair::bench
