// Runtime comparison: the experiment the paper argues about but never
// plots — run the SAME workload through global PD2 and through a real
// partitioned EDF-FF runtime and compare realised preemptions, context
// switches and migrations.  This quantifies the paper's central
// concession ("preemptions and migrations ... tend to occur frequently
// under Pfair scheduling") with the affinity optimisation applied, next
// to its rejoinder that the absolute costs are small.
//
// Built on engine::compare_schedulers: one workload, one spec list, one
// unified metrics read-out per scheduler.
//
// Usage: compare_runtime [--processors=4] [--horizon=20000] [--trials=10]
//                        [--seed=1] [--json]
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("compare_runtime", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(20000);
  const long long sets = h.trials(10);

  std::printf("# PD2 vs EDF-FF runtime behaviour (%d processors, same workloads)\n", m);
  std::printf("# counts per 1000 slots; both systems miss-free on these loads\n");
  std::printf("# %6s | %10s %10s %10s | %10s %10s | %8s\n", "load", "pd2_preempt",
              "pd2_switch", "pd2_migr", "ff_preempt", "ff_switch", "placed");

  PartitionedConfig pc;
  pc.max_processors = m;
  const std::vector<engine::SchedulerSpec> specs = {
      engine::pd2_spec(m), engine::partitioned_spec("EDF-FF", pc)};

  Rng master(h.seed(1));
  for (const double load : {0.3, 0.5, 0.7, 0.85}) {
    RunningStats pd2_pre, pd2_sw, pd2_mig, ff_pre, ff_sw;
    int placed = 0;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(load * 100) * 4096 +
                            static_cast<std::uint64_t>(s));
      const std::vector<UniTask> uni =
          generate_uni_tasks(rng, static_cast<std::size_t>(5 * m),
                             load * static_cast<double>(m), 64);
      const auto results = engine::compare_schedulers(uni, specs, horizon);
      const engine::CompareResult& pd2 = results[0];
      const engine::CompareResult& ff = results[1];
      if (!ff.feasible) continue;  // FF fragmentation loss
      ++placed;
      const double k = 1000.0 / static_cast<double>(horizon);
      ff_pre.add(static_cast<double>(ff.metrics.preemptions) * k);
      ff_sw.add(static_cast<double>(ff.metrics.context_switches) * k);
      if (ff.metrics.deadline_misses != 0)
        std::printf("# unexpected EDF-FF miss (set %lld)\n", s);
      pd2_pre.add(static_cast<double>(pd2.metrics.preemptions) * k);
      pd2_sw.add(static_cast<double>(pd2.metrics.context_switches) * k);
      pd2_mig.add(static_cast<double>(pd2.metrics.migrations) * k);
      if (pd2.metrics.deadline_misses != 0)
        std::printf("# unexpected PD2 miss (set %lld)\n", s);
    }
    std::printf("  %6.2f | %10.1f %10.1f %10.1f | %10.1f %10.1f | %5d/%lld\n", load,
                pd2_pre.mean(), pd2_sw.mean(), pd2_mig.mean(), ff_pre.mean(), ff_sw.mean(),
                placed, sets);
    h.add_row()
        .set("load", load)
        .set("pd2_preemptions", pd2_pre)
        .set("pd2_switches", pd2_sw)
        .set("pd2_migrations", pd2_mig)
        .set("ff_preemptions", ff_pre)
        .set("ff_switches", ff_sw)
        .set("placed", static_cast<long long>(placed));
  }
  std::printf("# expectations: PD2 preempts/migrates more (the paper's concession);\n");
  std::printf("# the ratio shrinks with affinity and the per-event cost (Sec. 4) is\n");
  std::printf("# what Figs. 3-4 charge against it.  EDF-FF's 'placed' column shows\n");
  std::printf("# sets lost to bin-packing before any runtime cost is paid.\n");
  return h.finish();
}
