// Runtime comparison: the experiment the paper argues about but never
// plots — run the SAME workload through global PD2 and through a real
// partitioned EDF-FF runtime and compare realised preemptions, context
// switches and migrations.  This quantifies the paper's central
// concession ("preemptions and migrations ... tend to occur frequently
// under Pfair scheduling") with the affinity optimisation applied, next
// to its rejoinder that the absolute costs are small.
//
// Usage: compare_runtime [processors=4] [horizon=20000] [sets=10] [seed=1]
#include <cstdio>

#include "bench/fig_common.h"
#include "uniproc/partitioned_sim.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  const int m = static_cast<int>(arg_or(argc, argv, 1, 4));
  const long long horizon = arg_or(argc, argv, 2, 20000);
  const long long sets = arg_or(argc, argv, 3, 10);
  const long long seed = arg_or(argc, argv, 4, 1);

  std::printf("# PD2 vs EDF-FF runtime behaviour (%d processors, same workloads)\n", m);
  std::printf("# counts per 1000 slots; both systems miss-free on these loads\n");
  std::printf("# %6s | %10s %10s %10s | %10s %10s | %8s\n", "load", "pd2_preempt",
              "pd2_switch", "pd2_migr", "ff_preempt", "ff_switch", "placed");

  Rng master(static_cast<std::uint64_t>(seed));
  for (const double load : {0.3, 0.5, 0.7, 0.85}) {
    RunningStats pd2_pre, pd2_sw, pd2_mig, ff_pre, ff_sw;
    int placed = 0;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(load * 100) * 4096 +
                            static_cast<std::uint64_t>(s));
      const std::vector<UniTask> uni =
          generate_uni_tasks(rng, static_cast<std::size_t>(5 * m),
                             load * static_cast<double>(m), 64);
      // EDF-FF runtime, capped at the same m processors.
      PartitionedConfig pc;
      pc.max_processors = m;
      PartitionedSimulator part(uni, pc);
      if (!part.all_tasks_placed()) continue;  // FF fragmentation loss
      ++placed;
      part.run_until(horizon);
      const UniMetrics fm = part.aggregate_metrics();
      const double k = 1000.0 / static_cast<double>(horizon);
      ff_pre.add(static_cast<double>(fm.preemptions) * k);
      ff_sw.add(static_cast<double>(fm.context_switches) * k);
      if (fm.deadline_misses != 0) std::printf("# unexpected EDF-FF miss (set %lld)\n", s);

      // Global PD2 on the identical task parameters.
      SimConfig sc;
      sc.processors = m;
      PfairSimulator sim(sc);
      for (const UniTask& t : uni) sim.add_task(make_task(t.execution, t.period));
      sim.run_until(horizon);
      pd2_pre.add(static_cast<double>(sim.metrics().preemptions) * k);
      pd2_sw.add(static_cast<double>(sim.metrics().context_switches) * k);
      pd2_mig.add(static_cast<double>(sim.metrics().migrations) * k);
      if (sim.metrics().deadline_misses != 0)
        std::printf("# unexpected PD2 miss (set %lld)\n", s);
    }
    std::printf("  %6.2f | %10.1f %10.1f %10.1f | %10.1f %10.1f | %5d/%lld\n", load,
                pd2_pre.mean(), pd2_sw.mean(), pd2_mig.mean(), ff_pre.mean(), ff_sw.mean(),
                placed, sets);
  }
  std::printf("# expectations: PD2 preempts/migrates more (the paper's concession);\n");
  std::printf("# the ratio shrinks with affinity and the per-event cost (Sec. 4) is\n");
  std::printf("# what Figs. 3-4 charge against it.  EDF-FF's 'placed' column shows\n");
  std::printf("# sets lost to bin-packing before any runtime cost is paid.\n");
  return 0;
}
