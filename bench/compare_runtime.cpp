// Runtime comparison: the experiment the paper argues about but never
// plots — run the SAME workload through global PD2 and through a real
// partitioned EDF-FF runtime and compare realised preemptions, context
// switches and migrations.  This quantifies the paper's central
// concession ("preemptions and migrations ... tend to occur frequently
// under Pfair scheduling") with the affinity optimisation applied, next
// to its rejoinder that the absolute costs are small.
//
// Built on engine::compare_schedulers: one workload, one spec list, one
// unified metrics read-out per scheduler.
//
// Usage: compare_runtime [--processors=4] [--horizon=20000] [--trials=10]
//                        [--seed=1] [--jobs=N] [--shards=N] [--soa=0|1]
//                        [--simd=0|1] [--kind=edf-ff|bf|run] [--json]
//
// --shards shards the PD2 SoA slot kernel inside each quantum; --soa=0
// selects the legacy heap+wheel kernel and --simd=0 the scalar sweeps.
// All three leave the report byte-identical (only wall time moves) —
// the CI shard-parity leg cmp's --shards=1 against --shards=2.
//
// --kind swaps the runtime PD2 is compared against.  The default is the
// paper's partitioned EDF-FF; bf and run select the successor roster
// (boundary fair / reduction-to-uniprocessor).  For those two the
// workload switches to divisor-of-720720 periods so RUN's tick grid
// stays bounded and every leg admits the same sets, and each trial is
// re-run with tracing on and pushed through the matching verifier (BF:
// job-boundary exactness; RUN: segment-log service check) — any miss or
// violation is counted, never silently dropped.
//
// Trials (full simulator runs — the heaviest per-trial work in the
// bench suite) fan out across --jobs worker threads with counter-based
// per-trial RNG streams; the report is byte-identical for any --jobs
// value.
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/fig_common.h"
#include "sim/bf_sim.h"
#include "sim/run_sim.h"
#include "sim/verifier.h"

namespace {

/// Divisor-family workload for the roster kinds: total weight <= cap
/// over exact rationals, periods dividing 720720 so RUN admits.
std::vector<pfair::UniTask> roster_workload(pfair::Rng& rng, std::size_t n,
                                            pfair::Rational cap) {
  using namespace pfair;
  std::vector<UniTask> out;
  Rational total(0);
  for (std::size_t i = 0; i < n; ++i) {
    const Task t = random_pfair_task(rng, 64);
    const Rational w(t.execution, t.period);
    if (total + w > cap) continue;
    total = total + w;
    out.push_back(make_uni_task(t.execution, t.period));
  }
  return out;
}

/// Replays `uni` under the selected roster kind with tracing on and
/// verifies it; true iff miss-free and verifier-clean.
bool roster_verified(const std::string& kind, const std::vector<pfair::UniTask>& uni,
                     int m, long long horizon) {
  using namespace pfair;
  TaskSet tasks;
  for (const UniTask& t : uni) tasks.add(make_task(t.execution, t.period));
  if (kind == "bf") {
    BfSimulator bf(tasks, BfConfig{m, true});
    bf.run_until(horizon);
    VerifyOptions vo;
    vo.processors = m;
    vo.check_windows = false;
    vo.check_lags = false;
    vo.check_job_boundaries = true;
    return bf.metrics().deadline_misses == 0 && verify_schedule(bf.trace(), tasks, vo).ok;
  }
  RunSimulator run((RunConfig{m, true}));
  for (const UniTask& t : uni)
    if (!run.admit(engine::task_spec(t.execution, t.period))) return false;
  run.run_until(horizon);
  return run.metrics().deadline_misses == 0 &&
         verify_run_segments(run.segments(), run.tasks(), run.ticks_per_slot(), horizon,
                             m)
             .ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("compare_runtime", argc, argv);
  const int m = static_cast<int>(h.flag("processors", 4));
  const long long horizon = h.horizon(20000);
  const long long sets = h.trials(10);
  const std::string kind = h.flag_string("kind", "edf-ff");
  const bool roster = kind == "bf" || kind == "run";
  if (!roster && kind != "edf-ff") {
    std::fprintf(stderr, "compare_runtime: unknown --kind=%s (want edf-ff, bf or run)\n",
                 kind.c_str());
    return 2;
  }

  std::printf("# PD2 vs %s runtime behaviour (%d processors, same workloads)\n",
              kind.c_str(), m);
  std::printf("# counts per 1000 slots; both systems miss-free on these loads\n");
  std::printf("# %6s | %10s %10s %10s | %10s %10s | %8s\n", "load", "pd2_preempt",
              "pd2_switch", "pd2_migr", "ff_preempt", "ff_switch", "placed");

  PartitionConfig pc;
  pc.max_processors = m;
  PfairConfig pd2c;
  pd2c.processors = m;
  pd2c.algorithm = Algorithm::kPD2;
  pd2c.shards = h.shards();
  pd2c.soa_kernel = h.flag("soa", 1) != 0;
  pd2c.simd = h.flag("simd", 1) != 0;
  std::vector<engine::SchedulerSpec> specs = {engine::pfair_spec("PD2", pd2c)};
  if (kind == "bf") {
    BfConfig bc;
    bc.processors = m;
    bc.record_trace = false;
    specs.push_back(engine::bf_spec(bc));
  } else if (kind == "run") {
    RunConfig rc;
    rc.processors = m;
    rc.record_segments = false;
    specs.push_back(engine::run_spec(rc));
  } else {
    specs.push_back(engine::partitioned_spec("EDF-FF", pc));
  }

  engine::ParallelSweep sweep(h.jobs(), h.seed(1));
  const bench::WallTimer wall;
  int load_idx = 0;
  for (const double load : {0.3, 0.5, 0.7, 0.85}) {
    struct Trial {
      bool placed = false;
      bool verified = true;           ///< roster kinds: trace/segment verifier clean
      std::uint64_t ff_rejected = 0;  ///< tasks the second leg turned away
      engine::Metrics pd2;
      engine::Metrics ff;
    };
    const std::vector<Trial> trials = sweep.run(
        static_cast<std::uint64_t>(load_idx++), sets, [&](long long, Rng& rng) {
          const std::vector<UniTask> uni =
              roster ? roster_workload(
                           rng, static_cast<std::size_t>(5 * m),
                           Rational(static_cast<std::int64_t>(load * 100.0) * m, 100))
                     : generate_uni_tasks(rng, static_cast<std::size_t>(5 * m),
                                          load * static_cast<double>(m), 64);
          const auto results = engine::compare_schedulers(uni, specs, horizon);
          Trial out;
          // Admission counters are valid even for infeasible results: an
          // unplaced set is no longer a silent drop but a visible count.
          out.ff_rejected = results[1].metrics.tasks_rejected;
          if (!results[1].feasible) return out;  // FF fragmentation loss
          out.placed = true;
          out.pd2 = results[0].metrics;
          out.ff = results[1].metrics;
          if (roster) out.verified = roster_verified(kind, uni, m, horizon);
          return out;
        });
    RunningStats pd2_pre, pd2_sw, pd2_mig, ff_pre, ff_sw;
    int placed = 0;
    int verified = 0;
    long long s = -1;
    std::uint64_t pd2_ff_slots = 0;
    std::uint64_t pd2_invocations = 0;
    std::uint64_t leg_points = 0;
    std::uint64_t ff_rejected = 0;
    for (const Trial& t : trials) {  // trial order: deterministic merge
      ++s;
      ff_rejected += t.ff_rejected;
      if (!t.placed) continue;
      ++placed;
      if (t.verified) ++verified;
      else std::printf("# %s verification FAILED (set %lld)\n", kind.c_str(), s);
      pd2_ff_slots += t.pd2.fast_forwarded_slots;
      pd2_invocations += t.pd2.scheduler_invocations;
      leg_points += t.ff.scheduling_points;
      const double k = 1000.0 / static_cast<double>(horizon);
      ff_pre.add(static_cast<double>(t.ff.preemptions) * k);
      ff_sw.add(static_cast<double>(t.ff.context_switches) * k);
      if (t.ff.deadline_misses != 0)
        std::printf("# unexpected %s miss (set %lld)\n", kind.c_str(), s);
      pd2_pre.add(static_cast<double>(t.pd2.preemptions) * k);
      pd2_sw.add(static_cast<double>(t.pd2.context_switches) * k);
      pd2_mig.add(static_cast<double>(t.pd2.migrations) * k);
      if (t.pd2.deadline_misses != 0)
        std::printf("# unexpected PD2 miss (set %lld)\n", s);
    }
    std::printf("  %6.2f | %10.1f %10.1f %10.1f | %10.1f %10.1f | %5d/%lld\n", load,
                pd2_pre.mean(), pd2_sw.mean(), pd2_mig.mean(), ff_pre.mean(), ff_sw.mean(),
                placed, sets);
    h.add_row()
        .set("load", load)
        .set("pd2_preemptions", pd2_pre)
        .set("pd2_switches", pd2_sw)
        .set("pd2_migrations", pd2_mig)
        .set("ff_preemptions", ff_pre)
        .set("ff_switches", ff_sw)
        .set("placed", static_cast<long long>(placed))
        .set("verified", static_cast<long long>(verified))
        .set("ff_rejected_tasks", static_cast<long long>(ff_rejected))
        .set("pd2_fast_forwarded_slots", static_cast<long long>(pd2_ff_slots))
        .set("pd2_sched_invocations", static_cast<long long>(pd2_invocations))
        .set("leg_sched_points", static_cast<long long>(leg_points));
  }
  std::printf("# expectations: PD2 preempts/migrates more (the paper's concession);\n");
  std::printf("# the ratio shrinks with affinity and the per-event cost (Sec. 4) is\n");
  std::printf("# what Figs. 3-4 charge against it.  EDF-FF's 'placed' column shows\n");
  std::printf("# sets lost to bin-packing before any runtime cost is paid.\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
