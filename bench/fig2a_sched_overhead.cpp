// Fig. 2(a): average scheduling overhead per invocation of EDF and PD2
// on ONE processor, as a function of the number of tasks.
//
// Methodology mirrors the paper: for each task count N in {15, 30, 50,
// 75, 100, 250, 500, 750, 1000}, generate random task sets with total
// utilization at most one, schedule each with both algorithms (binary-
// heap ready queues), and report the mean cost of one scheduler
// invocation with a 99% confidence interval.
//
// Usage: fig2a_sched_overhead [--horizon=50000] [--trials=12] [--seed=1] [--json]
//
// Absolute microseconds depend on the host CPU (the paper used a
// 933 MHz machine); the claims to check are shape claims: both curves
// grow with N, PD2 grows faster but stays within a small constant
// factor (paper: < 8us at N = 1000, EDF-comparable for N <= 100).
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("fig2a_sched_overhead", argc, argv);
  const long long horizon = h.horizon(50000);
  const long long sets = h.trials(12);

  std::printf("# Fig 2(a): scheduling overhead of EDF and PD2 on one processor\n");
  std::printf("# horizon=%lld slots, %lld task sets per point, total util <= 1\n",
              horizon, sets);
  std::printf("# %6s %14s %12s %14s %12s %10s\n", "tasks", "edf_us", "edf_ci99",
              "pd2_us", "pd2_ci99", "ratio");

  Rng master(h.seed(1));
  for (const int n : {15, 30, 50, 75, 100, 250, 500, 750, 1000}) {
    RunningStats edf_us;
    RunningStats pd2_us;
    for (long long s = 0; s < sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(n) * 1000 +
                            static_cast<std::uint64_t>(s));
      const std::vector<Task> tasks =
          fig2_taskset(rng, static_cast<std::size_t>(n), 0.98, 20000);

      // --- EDF (event-driven, jobs) ---
      {
        UniSimConfig uc;
        uc.algorithm = UniAlgorithm::kEDF;
        uc.measure_overhead = true;
        UniprocSimulator usim(as_uni(tasks), uc);
        usim.run_until(horizon * 20);  // EDF events are sparser; longer horizon
        edf_us.add(usim.metrics().avg_sched_ns() / 1000.0);
      }
      // --- PD2 (quantum-driven) ---
      {
        PfairConfig pc;
        pc.processors = 1;
        pc.algorithm = Algorithm::kPD2;
        pc.measure_overhead = true;
        PfairSimulator psim(pc);
        for (const Task& t : tasks) psim.add_task(t);
        psim.run_until(horizon);
        pd2_us.add(psim.metrics().avg_sched_ns() / 1000.0);
      }
    }
    const double ratio = edf_us.mean() > 0.0 ? pd2_us.mean() / edf_us.mean() : 0.0;
    std::printf("  %6d %14.3f %12.3f %14.3f %12.3f %10.2f\n", n, edf_us.mean(),
                edf_us.ci99_halfwidth(), pd2_us.mean(), pd2_us.ci99_halfwidth(), ratio);
    h.add_row()
        .set("tasks", static_cast<long long>(n))
        .set("edf_us", edf_us)
        .set("pd2_us", pd2_us)
        .set("ratio", ratio);
  }
  std::printf("# paper shape: both increase with N; PD2 < 8us at N=1000 (933MHz),\n");
  std::printf("# PD2 comparable to EDF for N <= 100.\n");
  return h.finish();
}
