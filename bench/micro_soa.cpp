// SoA lane-sweep microbenches: the two primitives the slot kernel runs
// every quantum (core/simd.h collect_le / min_value) with SIMD on vs
// the scalar fallback, plus the end-to-end slot kernel in its four
// configurations (SoA/SIMD, SoA/scalar, SoA sharded, legacy heap+wheel)
// at processor counts up to 256.  The lane lengths match real task
// counts (the SoA has one entry per task), and the eligibility hit rate
// is set near a loaded simulation's (~1/8 of lanes ready per slot) so
// the gather's push_back rate is representative.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/simd.h"
#include "sim/pfair_sim.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace pfair;

std::vector<Time> make_lane(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Time> lane;
  lane.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ~1/8 of values at or below the probe bound of 100.
    lane.push_back(rng.uniform_int(0, 800));
  }
  return lane;
}

void bm_collect_le(benchmark::State& state, bool use_simd) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Time> lane = make_lane(n, 0x50a5);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (auto _ : state) {
    out.clear();
    simd::collect_le(lane.data(), n, /*bound=*/100, 0, out, use_simd);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(use_simd ? simd::backend_name() : "scalar");
}

void bm_min_value(benchmark::State& state, bool use_simd) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Time> lane = make_lane(n, 0x50a6);
  for (auto _ : state) {
    Time m = simd::min_value(lane.data(), n, use_simd);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(use_simd ? simd::backend_name() : "scalar");
}

void BM_CollectLe_Simd(benchmark::State& s) { bm_collect_le(s, true); }
void BM_CollectLe_Scalar(benchmark::State& s) { bm_collect_le(s, false); }
void BM_MinValue_Simd(benchmark::State& s) { bm_min_value(s, true); }
void BM_MinValue_Scalar(benchmark::State& s) { bm_min_value(s, false); }

BENCHMARK(BM_CollectLe_Simd)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_CollectLe_Scalar)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_MinValue_Simd)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_MinValue_Scalar)->Arg(256)->Arg(4096)->Arg(65536);

// End-to-end slot kernel: one full simulation stepped 256 slots per
// iteration.  Arg = tasks per processor-count variant; the workload
// fills the system (the busiest, sweep-heaviest case).
void bm_kernel(benchmark::State& state, int m, bool soa, int shards, bool simd_on) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(n) * 131 + static_cast<std::uint64_t>(m));
  const TaskSet set = generate_feasible_taskset(rng, m, n, 64, /*fill=*/true);
  PfairConfig cfg;
  cfg.processors = m;
  cfg.soa_kernel = soa;
  cfg.shards = shards;
  cfg.simd = simd_on;
  PfairSimulator sim(cfg);
  for (const Task& t : set.tasks()) sim.add_task(t);
  Time horizon = 0;
  for (auto _ : state) {
    horizon += 256;
    sim.run_until(horizon);
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.counters["misses"] = static_cast<double>(sim.metrics().deadline_misses);
}

void BM_Kernel_64cpu_SoaSimd(benchmark::State& s) { bm_kernel(s, 64, true, 1, true); }
void BM_Kernel_64cpu_SoaScalar(benchmark::State& s) { bm_kernel(s, 64, true, 1, false); }
void BM_Kernel_64cpu_Soa2Shards(benchmark::State& s) { bm_kernel(s, 64, true, 2, true); }
void BM_Kernel_64cpu_Legacy(benchmark::State& s) { bm_kernel(s, 64, false, 1, true); }
void BM_Kernel_256cpu_SoaSimd(benchmark::State& s) { bm_kernel(s, 256, true, 1, true); }
void BM_Kernel_256cpu_Soa8Shards(benchmark::State& s) { bm_kernel(s, 256, true, 8, true); }
void BM_Kernel_256cpu_Legacy(benchmark::State& s) { bm_kernel(s, 256, false, 1, true); }

BENCHMARK(BM_Kernel_64cpu_SoaSimd)->Arg(512)->Arg(2048);
BENCHMARK(BM_Kernel_64cpu_SoaScalar)->Arg(512)->Arg(2048);
BENCHMARK(BM_Kernel_64cpu_Soa2Shards)->Arg(512)->Arg(2048);
BENCHMARK(BM_Kernel_64cpu_Legacy)->Arg(512)->Arg(2048);
BENCHMARK(BM_Kernel_256cpu_SoaSimd)->Arg(8192);
BENCHMARK(BM_Kernel_256cpu_Soa8Shards)->Arg(8192);
BENCHMARK(BM_Kernel_256cpu_Legacy)->Arg(8192);

}  // namespace
