// One-stop include for the figure harnesses.
#pragma once

#include "bench/bench_util.h"
#include "engine/compare.h"
#include "engine/factory.h"
#include "engine/harness.h"
#include "engine/parallel.h"
#include "overhead/calibrate.h"
#include "overhead/inflation.h"
#include "overhead/params.h"
#include "sim/pfair_sim.h"
#include "uniproc/uni_sim.h"
#include "util/stats.h"
#include "workload/generator.h"
