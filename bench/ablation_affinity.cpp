// Ablation (paper Sec. 4): the processor-affinity assignment.  The
// paper's preemption bound 1 + min(E-1, P-E) per job *assumes* that "a
// task scheduled in two consecutive quanta can be allowed to continue
// executing on the same processor"; this harness measures how many
// context switches and migrations that assignment rule actually saves
// versus naive (arbitrary) processor assignment.
//
// Usage: ablation_affinity [--horizon=10000] [--trials=10] [--seed=1]
//                          [--jobs=N] [--json]
//
// Trials run across --jobs worker threads with counter-based per-trial
// RNG streams; the report is byte-identical for any --jobs value.
#include <cstdio>

#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace pfair;
  using namespace pfair::bench;

  engine::ExperimentHarness h("ablation_affinity", argc, argv);
  const long long horizon = h.horizon(10000);
  const long long sets = h.trials(10);

  std::printf("# Affinity assignment ablation (PD2, fully loaded systems)\n");
  std::printf("# %5s %16s %16s %16s %16s\n", "m", "switches(aff)", "switches(naive)",
              "migr(aff)", "migr(naive)");

  engine::ParallelSweep sweep(h.jobs(), h.seed(1));
  const bench::WallTimer wall;
  for (const int m : {2, 4, 8, 16}) {
    struct Trial {
      double sw_aff = 0.0, sw_naive = 0.0, mig_aff = 0.0, mig_naive = 0.0;
    };
    const std::vector<Trial> trials =
        sweep.run(static_cast<std::uint64_t>(m), sets, [&](long long, Rng& rng) {
          const TaskSet set = generate_feasible_taskset(
              rng, m, static_cast<std::size_t>(4 * m), 16, true);
          Trial out;
          for (const bool affinity : {true, false}) {
            PfairConfig sc;
            sc.processors = m;
            sc.affinity = affinity;
            PfairSimulator sim(sc);
            for (const Task& t : set.tasks()) sim.add_task(t);
            sim.run_until(horizon);
            const double per_kiloslot = 1000.0 / static_cast<double>(horizon);
            (affinity ? out.sw_aff : out.sw_naive) =
                static_cast<double>(sim.metrics().context_switches) * per_kiloslot;
            (affinity ? out.mig_aff : out.mig_naive) =
                static_cast<double>(sim.metrics().migrations) * per_kiloslot;
          }
          return out;
        });
    RunningStats sw_aff, sw_naive, mig_aff, mig_naive;
    for (const Trial& t : trials) {  // trial order: deterministic merge
      sw_aff.add(t.sw_aff);
      sw_naive.add(t.sw_naive);
      mig_aff.add(t.mig_aff);
      mig_naive.add(t.mig_naive);
    }
    std::printf("  %5d %16.1f %16.1f %16.1f %16.1f\n", m, sw_aff.mean(), sw_naive.mean(),
                mig_aff.mean(), mig_naive.mean());
    h.add_row()
        .set("processors", static_cast<long long>(m))
        .set("switches_affinity", sw_aff)
        .set("switches_naive", sw_naive)
        .set("migrations_affinity", mig_aff)
        .set("migrations_naive", mig_naive);
  }
  std::printf("# counts are per 1000 slots; affinity should reduce both columns,\n");
  std::printf("# most dramatically migrations.\n");
  std::printf("# wall %.2fs (--jobs %d)\n", wall.seconds(), sweep.jobs());
  return h.finish();
}
