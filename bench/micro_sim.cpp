// End-to-end simulator throughput (slots/second) under each priority
// rule — an ablation of the tie-break machinery on the full PD2 hot
// path, plus the scaling with task and processor counts.
#include <benchmark/benchmark.h>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

namespace {

using namespace pfair;

void bm_sim(benchmark::State& state, Algorithm alg, int m) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(n) * 31 + static_cast<std::uint64_t>(m));
  const TaskSet set = generate_feasible_taskset(rng, m, n, 64, /*fill=*/true);
  PfairConfig cfg;
  cfg.processors = m;
  cfg.algorithm = alg;
  PfairSimulator sim(cfg);
  for (const Task& t : set.tasks()) sim.add_task(t);
  Time horizon = 0;
  for (auto _ : state) {
    horizon += 256;
    sim.run_until(horizon);
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.counters["misses"] = static_cast<double>(sim.metrics().deadline_misses);
}

void BM_Sim_PD2_1cpu(benchmark::State& s) { bm_sim(s, Algorithm::kPD2, 1); }
void BM_Sim_PD2_4cpu(benchmark::State& s) { bm_sim(s, Algorithm::kPD2, 4); }
void BM_Sim_PD2_16cpu(benchmark::State& s) { bm_sim(s, Algorithm::kPD2, 16); }
void BM_Sim_PF_4cpu(benchmark::State& s) { bm_sim(s, Algorithm::kPF, 4); }
void BM_Sim_PD_4cpu(benchmark::State& s) { bm_sim(s, Algorithm::kPD, 4); }
void BM_Sim_EPDF_4cpu(benchmark::State& s) { bm_sim(s, Algorithm::kEPDF, 4); }

BENCHMARK(BM_Sim_PD2_1cpu)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sim_PD2_4cpu)->Arg(64)->Arg(256);
BENCHMARK(BM_Sim_PD2_16cpu)->Arg(256)->Arg(1024);
BENCHMARK(BM_Sim_PF_4cpu)->Arg(64)->Arg(256);
BENCHMARK(BM_Sim_PD_4cpu)->Arg(64)->Arg(256);
BENCHMARK(BM_Sim_EPDF_4cpu)->Arg(64)->Arg(256);

void BM_Sim_Erfair(benchmark::State& state) {
  // Early-release mode exercises the different eligibility path.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(99);
  const TaskSet set =
      generate_feasible_taskset(rng, 4, n, 64, true, TaskKind::kEarlyRelease);
  PfairConfig cfg;
  cfg.processors = 4;
  PfairSimulator sim(cfg);
  for (const Task& t : set.tasks()) sim.add_task(t);
  Time horizon = 0;
  for (auto _ : state) {
    horizon += 256;
    sim.run_until(horizon);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Sim_Erfair)->Arg(64)->Arg(256);

}  // namespace
