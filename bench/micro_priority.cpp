// Ablation: cost of one priority comparison under each rule.
//
// PD2's selling point over PF is constant-time tie-breaking; this bench
// quantifies the gap (PF recurses over successor windows on ties) and
// shows PD2's two tie-breaks cost almost nothing over naive EPDF.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/priority.h"
#include "util/rng.h"

namespace {

using namespace pfair;

std::vector<SubtaskRef> make_refs(std::size_t n, std::uint64_t seed, bool heavy_ties) {
  Rng rng(seed);
  std::vector<SubtaskRef> refs;
  refs.reserve(n);
  for (TaskId id = 0; id < n; ++id) {
    std::int64_t p, e;
    if (heavy_ties) {
      // Many heavy tasks with clashing deadlines: worst case for PF.
      p = rng.uniform_int(8, 12);
      e = rng.uniform_int((p + 1) / 2, p - 1);
    } else {
      p = rng.uniform_int(1, 64);
      e = rng.uniform_int(1, p);
    }
    refs.push_back(make_subtask_ref(id, e, p, rng.uniform_int(1, e), 0));
  }
  return refs;
}

template <bool (*Higher)(const SubtaskRef&, const SubtaskRef&)>
void bm_compare(benchmark::State& state, bool heavy_ties) {
  const auto refs = make_refs(256, 42, heavy_ties);
  std::size_t i = 0;
  std::size_t j = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Higher(refs[i], refs[j]));
    i = (i + 1) & 255;
    j = (j + 7) & 255;
  }
}

void BM_PD2_Compare(benchmark::State& s) { bm_compare<pd2_higher_priority>(s, false); }
void BM_PD_Compare(benchmark::State& s) { bm_compare<pd_higher_priority>(s, false); }
void BM_EPDF_Compare(benchmark::State& s) { bm_compare<epdf_higher_priority>(s, false); }
void BM_PF_Compare(benchmark::State& s) { bm_compare<pf_higher_priority>(s, false); }
void BM_PD2_Compare_HeavyTies(benchmark::State& s) { bm_compare<pd2_higher_priority>(s, true); }
void BM_PF_Compare_HeavyTies(benchmark::State& s) { bm_compare<pf_higher_priority>(s, true); }

BENCHMARK(BM_PD2_Compare);
BENCHMARK(BM_PD_Compare);
BENCHMARK(BM_EPDF_Compare);
BENCHMARK(BM_PF_Compare);
BENCHMARK(BM_PD2_Compare_HeavyTies);
BENCHMARK(BM_PF_Compare_HeavyTies);

void BM_MakeSubtaskRef(benchmark::State& state) {
  // Cost of computing (r, d, b, D) for one subtask — the per-schedule
  // state update PD2 performs for each selected task.
  Rng rng(7);
  struct Params {
    std::int64_t e, p, idx;
  };
  std::vector<Params> params;
  for (int k = 0; k < 256; ++k) {
    const std::int64_t p = rng.uniform_int(2, 1000);
    const std::int64_t e = rng.uniform_int(1, p);
    params.push_back({e, p, rng.uniform_int(1, 3 * e)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Params& pr = params[i];
    benchmark::DoNotOptimize(make_subtask_ref(0, pr.e, pr.p, pr.idx, 0));
    i = (i + 1) & 255;
  }
}
BENCHMARK(BM_MakeSubtaskRef);

}  // namespace
