// Ablation: cost of one priority comparison under each rule.
//
// PD2's selling point over PF is constant-time tie-breaking; this bench
// quantifies the gap (PF recurses over successor windows on ties) and
// shows PD2's two tie-breaks cost almost nothing over naive EPDF.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/priority.h"
#include "util/rng.h"

namespace {

using namespace pfair;

std::vector<SubtaskRef> make_refs(std::size_t n, std::uint64_t seed, bool heavy_ties) {
  Rng rng(seed);
  std::vector<SubtaskRef> refs;
  refs.reserve(n);
  for (TaskId id = 0; id < n; ++id) {
    std::int64_t p, e;
    if (heavy_ties) {
      // Many heavy tasks with clashing deadlines: worst case for PF.
      p = rng.uniform_int(8, 12);
      e = rng.uniform_int((p + 1) / 2, p - 1);
    } else {
      p = rng.uniform_int(1, 64);
      e = rng.uniform_int(1, p);
    }
    refs.push_back(make_subtask_ref(id, e, p, rng.uniform_int(1, e), 0));
  }
  return refs;
}

template <bool (*Higher)(const SubtaskRef&, const SubtaskRef&)>
void bm_compare(benchmark::State& state, bool heavy_ties) {
  const auto refs = make_refs(256, 42, heavy_ties);
  std::size_t i = 0;
  std::size_t j = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Higher(refs[i], refs[j]));
    i = (i + 1) & 255;
    j = (j + 7) & 255;
  }
}

void BM_PD2_Compare(benchmark::State& s) { bm_compare<pd2_higher_priority>(s, false); }
void BM_PD_Compare(benchmark::State& s) { bm_compare<pd_higher_priority>(s, false); }
void BM_EPDF_Compare(benchmark::State& s) { bm_compare<epdf_higher_priority>(s, false); }
void BM_PF_Compare(benchmark::State& s) { bm_compare<pf_higher_priority>(s, false); }
void BM_PD2_Compare_HeavyTies(benchmark::State& s) { bm_compare<pd2_higher_priority>(s, true); }
void BM_PF_Compare_HeavyTies(benchmark::State& s) { bm_compare<pf_higher_priority>(s, true); }

BENCHMARK(BM_PD2_Compare);
BENCHMARK(BM_PD_Compare);
BENCHMARK(BM_EPDF_Compare);
BENCHMARK(BM_PF_Compare);
BENCHMARK(BM_PD2_Compare_HeavyTies);
BENCHMARK(BM_PF_Compare_HeavyTies);

// Packed-key comparison vs the legacy tie-break chain it replaces: the
// same ref population compared through SubtaskPriority with packing on
// (one 128-bit integer compare) and off (4-branch cascade).  This is
// the per-sift cost the calendar queue and heap pay on the hot path.
void bm_priority_compare(benchmark::State& state, Algorithm alg, bool packed,
                         bool heavy_ties) {
  const Algorithm ref_alg = packed ? alg : Algorithm::kWRR;  // kWRR never packs
  Rng rng(42);
  std::vector<SubtaskRef> refs;
  for (TaskId id = 0; id < 256; ++id) {
    std::int64_t p, e;
    if (heavy_ties) {
      p = rng.uniform_int(8, 12);
      e = rng.uniform_int((p + 1) / 2, p - 1);
    } else {
      p = rng.uniform_int(1, 64);
      e = rng.uniform_int(1, p);
    }
    refs.push_back(make_subtask_ref(id, e, p, rng.uniform_int(1, e), 0, ref_alg));
  }
  const SubtaskPriority pri(alg, packed);
  std::size_t i = 0;
  std::size_t j = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pri(refs[i], refs[j]));
    i = (i + 1) & 255;
    j = (j + 7) & 255;
  }
}

void BM_PD2_Compare_Packed(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kPD2, true, false);
}
void BM_PD2_Compare_Legacy(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kPD2, false, false);
}
void BM_PD2_Compare_Packed_HeavyTies(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kPD2, true, true);
}
void BM_PD2_Compare_Legacy_HeavyTies(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kPD2, false, true);
}
void BM_PD_Compare_Packed(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kPD, true, false);
}
void BM_PD_Compare_Legacy(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kPD, false, false);
}
void BM_EPDF_Compare_Packed(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kEPDF, true, false);
}
void BM_EPDF_Compare_Legacy(benchmark::State& s) {
  bm_priority_compare(s, Algorithm::kEPDF, false, false);
}

BENCHMARK(BM_PD2_Compare_Packed);
BENCHMARK(BM_PD2_Compare_Legacy);
BENCHMARK(BM_PD2_Compare_Packed_HeavyTies);
BENCHMARK(BM_PD2_Compare_Legacy_HeavyTies);
BENCHMARK(BM_PD_Compare_Packed);
BENCHMARK(BM_PD_Compare_Legacy);
BENCHMARK(BM_EPDF_Compare_Packed);
BENCHMARK(BM_EPDF_Compare_Legacy);

// Steady-state ready-queue churn at queue depth N: one push + one pop of
// the minimum per iteration against a resident population, the mix the
// slot kernel drives every quantum.  Refs are prebuilt outside the timed
// loop so the numbers isolate the queue itself.
std::vector<SubtaskRef> resident_refs(std::size_t n, Algorithm alg) {
  Rng rng(7);
  std::vector<SubtaskRef> refs;
  for (TaskId id = 0; id < 2 * n; ++id) {
    const std::int64_t p = rng.uniform_int(2, 64);
    const std::int64_t e = rng.uniform_int(1, p);
    refs.push_back(make_subtask_ref(id, e, p, rng.uniform_int(1, e),
                                    rng.uniform_int(0, 128), alg));
  }
  return refs;
}

void bm_heap_push_pop(benchmark::State& state, bool packed) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Algorithm alg = packed ? Algorithm::kPD2 : Algorithm::kWRR;
  const auto refs = resident_refs(n, alg);
  BinaryHeap<SubtaskRef, SubtaskPriority> heap(SubtaskPriority(Algorithm::kPD2, packed));
  for (std::size_t i = 0; i < n; ++i) heap.push(refs[i]);
  std::size_t next = n;
  for (auto _ : state) {
    heap.push(refs[next]);
    next = (next + 1) % refs.size();
    benchmark::DoNotOptimize(heap.pop());
  }
}

void BM_SubtaskHeap_PushPop_Packed(benchmark::State& s) { bm_heap_push_pop(s, true); }
void BM_SubtaskHeap_PushPop_Legacy(benchmark::State& s) { bm_heap_push_pop(s, false); }
BENCHMARK(BM_SubtaskHeap_PushPop_Packed)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SubtaskHeap_PushPop_Legacy)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Erase-by-handle at depth N (the deadline-miss / departure path): one
// push + one erase of a rotating resident handle per iteration.
void bm_heap_erase(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto refs = resident_refs(n, Algorithm::kPD2);
  BinaryHeap<SubtaskRef, SubtaskPriority> heap(SubtaskPriority(Algorithm::kPD2, true));
  std::vector<HeapHandle> handles;
  for (std::size_t i = 0; i < n; ++i) handles.push_back(heap.push(refs[i]));
  std::size_t victim = 0;
  std::size_t next = n;
  for (auto _ : state) {
    heap.erase(handles[victim]);
    handles[victim] = heap.push(refs[next]);
    next = (next + 1) % refs.size();
    victim = (victim + 1) % handles.size();
  }
}

void BM_SubtaskHeap_Erase(benchmark::State& s) { bm_heap_erase(s); }
BENCHMARK(BM_SubtaskHeap_Erase)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_MakeSubtaskRef(benchmark::State& state) {
  // Cost of computing (r, d, b, D) for one subtask — the per-schedule
  // state update PD2 performs for each selected task.
  Rng rng(7);
  struct Params {
    std::int64_t e, p, idx;
  };
  std::vector<Params> params;
  for (int k = 0; k < 256; ++k) {
    const std::int64_t p = rng.uniform_int(2, 1000);
    const std::int64_t e = rng.uniform_int(1, p);
    params.push_back({e, p, rng.uniform_int(1, 3 * e)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Params& pr = params[i];
    benchmark::DoNotOptimize(make_subtask_ref(0, pr.e, pr.p, pr.idx, 0));
    i = (i + 1) & 255;
  }
}
BENCHMARK(BM_MakeSubtaskRef);

}  // namespace
