// Supertasks (paper Sec. 5.5 and Fig. 5).
//
// Reproduces Fig. 5: on two processors, normal tasks V = 1/2,
// W = X = 1/3, Y = 2/9 run alongside supertask S = {T: 1/5, U: 1/45}
// competing at its cumulative weight 2/9.  The Pfair server S receives
// quanta in a pattern that leaves component T without a quantum in
// [5, 10), so T misses its deadline at time 10 — even though the global
// schedule itself is perfectly Pfair.
//
// The Holman-Anderson repair then reweights S by 1/p_min = 1/5
// (competing weight 19/45) and the miss disappears.
//
// Build & run:  ./build/examples/supertask_demo
#include <cstdio>

#include "sim/pfair_sim.h"
#include "workload/generator.h"

using namespace pfair;

namespace {

void run(const SupertaskSpec& spec, const char* label, Time horizon) {
  const Fig5System sys = fig5_system();
  PfairConfig cfg;
  cfg.processors = 2;
  cfg.record_trace = true;
  PfairSimulator sim(cfg);
  // Insertion order realises the paper's tie-break (S before Y).
  sim.add_task(sys.normal_tasks[0]);
  sim.add_task(sys.normal_tasks[1]);
  sim.add_task(sys.normal_tasks[2]);
  const TaskId s = sim.add_supertask(spec);
  sim.add_task(sys.normal_tasks[3]);
  sim.run_until(horizon);

  std::printf("=== %s (S competes at %s) ===\n", label,
              spec.competing_weight().to_string().c_str());
  std::printf("schedule, slots 0..%lld:\n%s", static_cast<long long>(horizon - 1),
              sim.trace().render(sim.task_names()).c_str());
  std::printf("component T (1/5) deadline misses: %llu\n",
              static_cast<unsigned long long>(sim.component_miss_count(s, 0)));
  std::printf("component U (1/45) deadline misses: %llu\n",
              static_cast<unsigned long long>(sim.component_miss_count(s, 1)));
  if (sim.metrics().first_miss_time >= 0) {
    std::printf("first miss at time %lld\n", static_cast<long long>(sim.metrics().first_miss_time));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const Fig5System sys = fig5_system();

  // Fig. 5 as printed: S at its cumulative weight misses.
  run(sys.supertask, "Fig. 5: unweighted supertask", 15);

  // Holman-Anderson reweighting: inflate by 1/p_min.
  const SupertaskSpec repaired = make_reweighted_supertask(sys.supertask.components, "S");
  run(repaired, "Reweighted supertask (+1/p_min)", 45);

  std::printf("The supertask approach binds component tasks to one processor (no\n"
              "migration) while the server competes globally; the reweighting cost is\n"
              "the price of that isolation (here %s extra weight).\n",
              (repaired.competing_weight() - sys.supertask.competing_weight())
                  .to_string()
                  .c_str());
  return 0;
}
