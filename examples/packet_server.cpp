// Packet server: the intra-sporadic (IS) model on a network workload.
//
// The paper motivates IS tasks with packet processing: "Due to network
// congestion and other factors, packets may arrive late or in bursts.
// The IS model treats these possibilities as first-class concepts."
//
// This example schedules four packet-processing flows on two processors
// under PD2.  Each flow's subtask i corresponds to processing packet i:
//   - flows 1-2 are well-behaved (packets on time),
//   - flow 3 suffers congestion (packets arrive with growing jitter:
//     its windows shift right — an IS delay),
//   - flow 4 is bursty (packets arrive early in clumps: subtasks become
//     eligible before their Pfair releases, deadlines unchanged).
//
// Despite the arrival chaos, no shifted deadline is ever missed, and
// each flow's long-run throughput matches its reserved rate.
//
// Build & run:  ./build/examples/packet_server
#include <cstdio>
#include <vector>

#include "core/windows.h"
#include "sim/pfair_sim.h"
#include "util/rng.h"

int main() {
  using namespace pfair;
  Rng rng(2026);

  constexpr Time kHorizon = 100000;

  PfairConfig cfg;
  cfg.processors = 2;
  PfairSimulator sim(cfg);

  struct Flow {
    const char* name;
    std::int64_t e, p;
    TaskId id;
  };
  std::vector<Flow> flows = {
      {"flow-1 (steady, 1/4)", 1, 4, 0},
      {"flow-2 (steady, 2/5)", 2, 5, 0},
      {"flow-3 (congested, 1/3)", 1, 3, 0},
      {"flow-4 (bursty, 3/10)", 3, 10, 0},
  };

  // Flows 1-2: on-time arrivals (empty arrival vector = periodic).
  flows[0].id = sim.add_task(make_task(flows[0].e, flows[0].p, TaskKind::kIntraSporadic));
  flows[1].id = sim.add_task(make_task(flows[1].e, flows[1].p, TaskKind::kIntraSporadic));

  // Flow 3: congestion jitter — each packet up to 2 slots later than the
  // previous one's schedule allows (cumulative lateness).
  {
    std::vector<Time> arrivals;
    Time drift = 0;
    for (SubtaskIndex i = 1; i <= kHorizon / flows[2].p + 1; ++i) {
      if (rng.uniform01() < 0.3) drift += rng.uniform_int(1, 2);
      arrivals.push_back(subtask_release(flows[2].e, flows[2].p, i) + drift);
    }
    flows[2].id =
        sim.add_task(make_task(flows[2].e, flows[2].p, TaskKind::kIntraSporadic), arrivals);
  }

  // Flow 4: bursts — packets for a whole job arrive together at the
  // job boundary (each subtask early within its job).
  {
    std::vector<Time> arrivals;
    for (SubtaskIndex i = 1; i <= (kHorizon / flows[3].p + 1) * flows[3].e; ++i) {
      const std::int64_t job = (i - 1) / flows[3].e;  // 0-based job index
      arrivals.push_back(job * flows[3].p);           // whole burst at job start
    }
    flows[3].id =
        sim.add_task(make_task(flows[3].e, flows[3].p, TaskKind::kIntraSporadic), arrivals);
  }

  sim.run_until(kHorizon);

  std::printf("Packet server: 4 flows, 2 processors, %lld slots under PD2\n\n",
              static_cast<long long>(kHorizon));
  std::printf("  %-26s %10s %12s %10s\n", "flow", "reserved", "processed", "rate");
  for (const Flow& f : flows) {
    const double rate =
        static_cast<double>(sim.allocated(f.id)) / static_cast<double>(kHorizon);
    std::printf("  %-26s   %lld/%-5lld %10lld   %8.4f\n", f.name,
                static_cast<long long>(f.e), static_cast<long long>(f.p),
                static_cast<long long>(sim.allocated(f.id)), rate);
  }
  std::printf("\nshifted-deadline misses: %llu (IS guarantees hold despite jitter/bursts)\n",
              static_cast<unsigned long long>(sim.metrics().deadline_misses));
  std::printf("preemptions: %llu, migrations: %llu, context switches: %llu\n",
              static_cast<unsigned long long>(sim.metrics().preemptions),
              static_cast<unsigned long long>(sim.metrics().migrations),
              static_cast<unsigned long long>(sim.metrics().context_switches));
  return sim.metrics().deadline_misses == 0 ? 0 : 1;
}
