// Synchronization under Pfair tight synchrony (paper Sec. 5.1).
//
// Because each subtask executes non-preemptively within its slot, locks
// can be confined to quantum boundaries: a critical section that cannot
// finish before the boundary is deferred to the task's next quantum.
// This example
//   1. replays a day of randomly arriving critical sections through the
//      defer rule and shows the invariant (no lock ever held across a
//      boundary) plus the realised costs, and
//   2. prints the analytic worst cases the library derives (blocking,
//      deferral, execution-cost inflation) and the lock-free retry
//      bounds tight synchrony yields on 2..16 processors.
//
// Build & run:  ./build/examples/synchronization
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sync/quantum_lock.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace pfair;

  const QuantumLockModel model(/*quantum_us=*/1000.0, /*max_cs_us=*/50.0);

  std::printf("Quantum-boundary locking (q = %.0f us, max critical section = %.0f us)\n",
              model.quantum_us(), model.max_cs_us());
  std::printf("  worst-case blocking:   %.1f us (one same-slot holder)\n",
              model.worst_case_blocking_us());
  std::printf("  worst-case deferral:   %.1f us (refused quantum tail)\n",
              model.worst_case_deferral_us());
  std::printf("  budget inflation:      x%.4f (q / (q - max_cs))\n\n",
              model.inflation_factor());

  // Replay 100k quanta of random critical-section traffic.
  Rng rng(99);
  RunningStats executed_per_quantum;
  RunningStats wasted_tail;
  std::uint64_t deferred_total = 0;
  std::uint64_t violations = 0;
  for (int q = 0; q < 100000; ++q) {
    std::vector<CsRequest> reqs;
    const int n = static_cast<int>(rng.uniform_int(0, 5));
    for (int k = 0; k < n; ++k)
      reqs.push_back({rng.uniform(0.0, 1000.0), rng.uniform(1.0, 50.0)});
    std::sort(reqs.begin(), reqs.end(),
              [](const CsRequest& a, const CsRequest& b) { return a.offset_us < b.offset_us; });
    const CsAudit audit = replay_quantum(model, reqs);
    executed_per_quantum.add(static_cast<double>(audit.executed));
    wasted_tail.add(audit.wasted_tail_us);
    deferred_total += audit.deferred;
    violations += audit.boundary_violation ? 1u : 0u;
  }
  std::printf("replayed 100000 quanta of random lock traffic:\n");
  std::printf("  critical sections executed/quantum: %.3f (mean)\n",
              executed_per_quantum.mean());
  std::printf("  deferred to the next quantum:       %llu total\n",
              static_cast<unsigned long long>(deferred_total));
  std::printf("  mean wasted tail:                   %.2f us (bound %.0f us)\n",
              wasted_tail.mean(), model.worst_case_deferral_us());
  std::printf("  boundary violations:                %llu (must be 0)\n\n",
              static_cast<unsigned long long>(violations));

  std::printf("Lock-free retry bounds under tight synchrony (ops/quantum = 4):\n");
  for (const int m : {2, 4, 8, 16}) {
    std::printf("  %2d processors: at most %lld attempts per operation\n", m,
                static_cast<long long>(lock_free_attempt_bound(m, 4)));
  }
  std::printf("\n(Under partitioned EDF, a preempted lock holder can be delayed for\n"
              " a whole higher-priority job; under Pfair the holder provably runs\n"
              " to the quantum boundary, which is what makes these bounds small.)\n");
  return violations == 0 ? 0 : 1;
}
