// Dynamic task systems: the virtual-reality reweighting scenario
// (paper Sec. 5.2).
//
// A VR renderer's cost varies with scene complexity, so its weight must
// change frequently.  Reweighting is modelled as leave-and-join: the old
// weight is released only when the Sec.-2 leave rules allow (preventing
// rate overclaiming), and the new weight joins at that instant.  Other
// tasks come and go around it.
//
// Under partitioning this churn would force repeated repartitioning; the
// example shows PD2 absorbing every change with zero deadline misses and
// prints the renderer's achieved rate per phase.
//
// Build & run:  ./build/examples/dynamic_tasks
#include <cstdio>
#include <vector>

#include "sim/pfair_sim.h"
#include "util/rng.h"

int main() {
  using namespace pfair;

  PfairConfig cfg;
  cfg.processors = 4;
  PfairSimulator sim(cfg);

  // Baseline system services: audio, input, haptics, tracking.
  sim.add_task(make_task(1, 4, TaskKind::kPeriodic, "audio"));
  sim.add_task(make_task(1, 8, TaskKind::kPeriodic, "input"));
  sim.add_task(make_task(1, 5, TaskKind::kPeriodic, "haptics"));
  sim.add_task(make_task(2, 5, TaskKind::kPeriodic, "tracking"));

  // The renderer starts with weight 1/2.
  TaskId renderer = sim.add_task(make_task(1, 2, TaskKind::kPeriodic, "renderer"));

  struct Phase {
    const char* scene;
    std::int64_t e, p;
    Time duration;
  };
  const std::vector<Phase> phases = {
      {"corridor (simple)", 1, 2, 3000},
      {"atrium (complex)", 9, 10, 3000},
      {"outdoors (very complex)", 1, 1, 3000},
      {"menu (trivial)", 1, 10, 3000},
      {"boss fight (complex)", 4, 5, 3000},
  };

  std::printf("VR renderer reweighting on 4 processors under PD2\n\n");
  std::printf("  %-26s %8s %14s %12s %10s\n", "scene", "weight", "switch slot",
              "quanta", "rate");

  Rng rng(7);
  std::uint64_t prev_misses = 0;
  for (const Phase& ph : phases) {
    // Request the weight change; it takes effect when the leave rules
    // free the old weight (a handful of slots for heavy weights).
    const auto switch_at = sim.request_reweight(renderer, ph.e, ph.p);
    if (!switch_at.has_value()) {
      std::printf("  %-26s rejected (would exceed capacity)\n", ph.scene);
      continue;
    }
    sim.run_until(*switch_at);
    const std::int64_t before = sim.allocated(renderer);
    // Background churn: a transient worker joins mid-phase and leaves.
    const Time mid = *switch_at + ph.duration / 2;
    sim.run_until(mid);
    const auto worker = sim.join(make_task(1, 3, TaskKind::kPeriodic, "transient"));
    sim.run_until(*switch_at + ph.duration);
    if (worker.has_value()) sim.request_leave(*worker);

    const std::int64_t got = sim.allocated(renderer) - before;
    std::printf("  %-26s   %lld/%-4lld %12lld %10lld   %8.4f\n", ph.scene,
                static_cast<long long>(ph.e), static_cast<long long>(ph.p),
                static_cast<long long>(*switch_at), static_cast<long long>(got),
                static_cast<double>(got) / static_cast<double>(ph.duration));
    const std::uint64_t misses = sim.metrics().deadline_misses;
    if (misses != prev_misses) {
      std::printf("    !! %llu new deadline misses this phase\n",
                  static_cast<unsigned long long>(misses - prev_misses));
      prev_misses = misses;
    }
  }

  std::printf("\ntotal deadline misses across all phases: %llu\n",
              static_cast<unsigned long long>(sim.metrics().deadline_misses));
  std::printf("(every reweight honoured the leave rules, so no rate was ever\n"
              " overclaimed and no deadline missed)\n");
  return sim.metrics().deadline_misses == 0 ? 0 : 1;
}
