// Quickstart: the smallest end-to-end tour of the library.
//
//   1. Build a periodic task set and check Pfair feasibility (Eq. (2)).
//   2. Inspect the subtask windows of a weight-8/11 task (paper
//      Fig. 1(a)) — releases, deadlines, b-bits, group deadlines.
//   3. Run the PD2 scheduler on the paper's Sec.-1 example (three
//      weight-2/3 tasks on two processors — a set no partitioning
//      scheme can schedule) and print the resulting schedule.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/task.h"
#include "core/windows.h"
#include "sim/pfair_sim.h"
#include "workload/generator.h"

int main() {
  using namespace pfair;

  // --- 1. Feasibility -----------------------------------------------------
  TaskSet set = two_processor_counterexample();
  std::printf("Task set: 3 tasks of weight 2/3 (total %s)\n",
              set.total_weight().to_string().c_str());
  std::printf("Pfair-feasible on 2 processors? %s   (min processors: %d)\n\n",
              set.feasible_on(2) ? "yes" : "no", set.min_processors());

  // --- 2. Windows of a weight-8/11 task (Fig. 1(a)) -----------------------
  std::printf("Subtask windows of a task with weight 8/11 (first job):\n");
  std::printf("  i   r(T_i)   d(T_i)   |w|   b   group deadline\n");
  for (SubtaskIndex i = 1; i <= 8; ++i) {
    std::printf("  %lld   %4lld     %4lld     %lld    %d   %4lld\n",
                static_cast<long long>(i),
                static_cast<long long>(subtask_release(8, 11, i)),
                static_cast<long long>(subtask_deadline(8, 11, i)),
                static_cast<long long>(window_length(8, 11, i)), b_bit(8, 11, i),
                static_cast<long long>(group_deadline(8, 11, i)));
  }

  // --- 3. Schedule the counterexample with PD2 ----------------------------
  PfairConfig cfg;
  cfg.processors = 2;
  cfg.record_trace = true;
  cfg.check_lags = true;
  PfairSimulator sim(cfg);
  for (const Task& t : set.tasks()) sim.add_task(t);
  sim.run_until(12);  // four hyperperiods

  std::printf("\nPD2 schedule on 2 processors, slots 0..11 (X = scheduled):\n%s",
              sim.trace().render(sim.task_names()).c_str());
  std::printf("deadline misses: %llu, lag violations: %llu, idle quanta: %llu\n",
              static_cast<unsigned long long>(sim.metrics().deadline_misses),
              static_cast<unsigned long long>(sim.metrics().lag_violations),
              static_cast<unsigned long long>(sim.metrics().idle_quanta));
  std::printf("(no partitioning of these tasks onto 2 processors exists: each pair of\n"
              " tasks already sums to 4/3 > 1)\n");
  return 0;
}
