// Fault tolerance and overload handling (paper Sec. 5.4).
//
// Scenario A — transparent degradation: total weight fits in M - K
// processors, K processors fail, and the global Pfair scheduler absorbs
// the loss with zero misses (no task re-assignment needed — under
// partitioning the failed processor's tasks would have to be re-packed).
//
// Scenario B — overload with graceful degradation: the system is too
// heavy for the surviving processors, so non-critical tasks are
// reweighted down (slower rate) to protect critical ones.
//
// Build & run:  ./build/examples/fault_tolerance
#include <algorithm>
#include <cstdio>

#include "sim/pfair_sim.h"

using namespace pfair;

namespace {

void scenario_transparent() {
  std::printf("Scenario A: 4 processors, total weight 23/12 (~1.92), 2 fail at t=500\n");
  PfairConfig cfg;
  cfg.processors = 4;
  PfairSimulator sim(cfg);
  sim.add_task(make_task(1, 2, TaskKind::kPeriodic, "ctl"));
  sim.add_task(make_task(2, 3, TaskKind::kPeriodic, "dsp"));
  sim.add_task(make_task(1, 4, TaskKind::kPeriodic, "log"));
  sim.add_task(make_task(1, 2, TaskKind::kPeriodic, "net"));
  sim.add_processor_event({500, 2});
  sim.run_until(5000);
  std::printf("  deadline misses after losing 2 of 4 processors: %llu (transparent)\n\n",
              static_cast<unsigned long long>(sim.metrics().deadline_misses));
}

void scenario_overload() {
  std::printf("Scenario B: 2 processors, weight 2.0; one fails at t=300 (overload!)\n");

  // B1: do nothing -> misses accumulate.
  {
    PfairConfig cfg;
    cfg.processors = 2;
    PfairSimulator sim(cfg);
    sim.add_task(make_task(1, 2, TaskKind::kPeriodic, "critical"));
    sim.add_task(make_task(3, 4, TaskKind::kPeriodic, "video"));
    sim.add_task(make_task(3, 4, TaskKind::kPeriodic, "telemetry"));
    sim.add_processor_event({300, 1});
    sim.run_until(2300);
    std::printf("  no mitigation:   %llu misses in the 2000 slots after the fault\n",
                static_cast<unsigned long long>(sim.metrics().deadline_misses));
  }

  // B2: reweight the non-critical tasks down to 1/4 when the fault
  // hits; the critical task is untouched and the post-switch system
  // (1/2 + 1/4 + 1/4 = 1) fits the surviving processor exactly.
  {
    PfairConfig cfg;
    cfg.processors = 2;
    PfairSimulator sim(cfg);
    const TaskId critical = sim.add_task(make_task(1, 2, TaskKind::kPeriodic, "critical"));
    const TaskId video = sim.add_task(make_task(3, 4, TaskKind::kPeriodic, "video"));
    const TaskId telemetry = sim.add_task(make_task(3, 4, TaskKind::kPeriodic, "telemetry"));
    sim.run_until(300);
    const auto s1 = sim.request_reweight(video, 1, 4);
    const auto s2 = sim.request_reweight(telemetry, 1, 4);
    const Time settled = std::max(s1.value_or(300), s2.value_or(300)) + 1;
    sim.add_processor_event({settled, 1});
    sim.run_until(2300);
    std::printf("  with reweighting (switch at t=%lld): %llu misses; "
                "critical received %lld quanta (ideal %lld)\n",
                static_cast<long long>(settled),
                static_cast<unsigned long long>(sim.metrics().deadline_misses),
                static_cast<long long>(sim.allocated(critical)),
                static_cast<long long>(2300 / 2));
  }
}

}  // namespace

int main() {
  scenario_transparent();
  scenario_overload();
  std::printf("\n(Under EDF-FF, a processor failure forces re-partitioning and EDF is\n"
              " known to behave poorly under overload; Pfair degrades gracefully.)\n");
  return 0;
}
