#include "serve/exact_gedf.h"

#include <algorithm>
#include <limits>

#include "util/math.h"

namespace pfair::serve {

const char* to_string(GedfVerdict v) noexcept {
  switch (v) {
    case GedfVerdict::kSchedulable: return "schedulable";
    case GedfVerdict::kUnschedulable: return "unschedulable";
    case GedfVerdict::kBudgetExceeded: return "budget-exceeded";
  }
  return "unknown";
}

GedfResult exact_global_schedulable(const std::vector<UniTask>& tasks, int m,
                                    UniAlgorithm algorithm, std::uint64_t max_events) {
  GedfResult out;
  if (m < 1) m = 1;
  if (tasks.empty()) {
    out.verdict = GedfVerdict::kSchedulable;
    return out;
  }
  for (const UniTask& t : tasks) {
    if (!t.valid()) {  // never schedulable; also keeps the arithmetic safe
      out.verdict = GedfVerdict::kUnschedulable;
      out.first_miss = 0;
      return out;
    }
  }

  Time h = 1;
  for (const UniTask& t : tasks) h = saturating_lcm(h, t.period);
  out.hyperperiod = h;

  const std::size_t n = tasks.size();
  // Per-task job state.  Implicit deadlines mean at most one live job
  // per task — a live predecessor at its release IS the miss that ends
  // the test, so no job queue is needed.
  std::vector<Time> next_release(n, 0);
  std::vector<Time> deadline(n, 0);
  std::vector<std::int64_t> remaining(n, 0);
  std::vector<std::size_t> live;
  live.reserve(n);

  // Priority: matches GlobalJobSimulator::higher_priority exactly.
  const auto higher = [&](std::size_t a, std::size_t b) {
    if (algorithm == UniAlgorithm::kEDF) {
      if (deadline[a] != deadline[b]) return deadline[a] < deadline[b];
    } else {
      if (tasks[a].period != tasks[b].period) return tasks[a].period < tasks[b].period;
    }
    return a < b;
  };

  Time t = 0;
  while (true) {
    // Releases due now; a live predecessor has missed its deadline
    // (deadline == this release under implicit deadlines).
    for (std::size_t i = 0; i < n; ++i) {
      if (next_release[i] != t) continue;
      if (remaining[i] > 0) {
        out.verdict = GedfVerdict::kUnschedulable;
        out.first_miss = t;
        out.simulated = t;
        return out;
      }
      remaining[i] = tasks[i].execution;
      deadline[i] = t + tasks[i].period;
      next_release[i] = t + tasks[i].period;
    }
    // A clean pass through t == H means every job released in [0, H)
    // completed by its deadline; the state at H equals the state at 0,
    // so the schedule repeats forever.
    if (t >= h) {
      out.verdict = GedfVerdict::kSchedulable;
      out.simulated = t;
      return out;
    }
    if (out.events >= max_events) {
      out.verdict = GedfVerdict::kBudgetExceeded;
      out.simulated = t;
      return out;
    }
    ++out.events;

    // The running set is constant until the next release or the first
    // completion among the m highest-priority live jobs.
    live.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (remaining[i] > 0) live.push_back(i);
    const std::size_t run = std::min(live.size(), static_cast<std::size_t>(m));
    if (run < live.size())
      std::nth_element(live.begin(), live.begin() + static_cast<std::ptrdiff_t>(run),
                       live.end(), higher);

    Time next_event = std::numeric_limits<Time>::max();
    for (std::size_t i = 0; i < n; ++i) next_event = std::min(next_event, next_release[i]);
    Time delta = next_event - t;
    for (std::size_t k = 0; k < run; ++k)
      delta = std::min<Time>(delta, remaining[live[k]]);
    for (std::size_t k = 0; k < run; ++k) remaining[live[k]] -= delta;
    t += delta;
  }
}

}  // namespace pfair::serve
