#include "serve/exact_gedf.h"

#include <algorithm>
#include <queue>
#include <set>
#include <utility>

#include "util/math.h"

namespace pfair::serve {

const char* to_string(GedfVerdict v) noexcept {
  switch (v) {
    case GedfVerdict::kSchedulable: return "schedulable";
    case GedfVerdict::kUnschedulable: return "unschedulable";
    case GedfVerdict::kBudgetExceeded: return "budget-exceeded";
  }
  return "unknown";
}

GedfResult exact_global_schedulable(const std::vector<UniTask>& tasks, int m,
                                    UniAlgorithm algorithm, std::uint64_t max_events) {
  GedfResult out;
  if (m < 1) m = 1;
  if (tasks.empty()) {
    out.verdict = GedfVerdict::kSchedulable;
    return out;
  }
  for (const UniTask& t : tasks) {
    if (!t.valid()) {  // never schedulable; also keeps the arithmetic safe
      out.verdict = GedfVerdict::kUnschedulable;
      out.first_miss = 0;
      return out;
    }
  }

  Time h = 1;
  for (const UniTask& t : tasks) h = saturating_lcm(h, t.period);
  out.hyperperiod = h;

  const std::size_t n = tasks.size();
  // Per-task job state.  Implicit deadlines mean at most one live job
  // per task — a live predecessor at its release IS the miss that ends
  // the test, so no job queue is needed.
  //
  // Two ordered structures replace the per-event O(n) scans the first
  // cut of this test paid (the Tier-2 hot path at large n):
  //
  //   - `releases`, a min-heap of (next release, task): pops due
  //     releases in (time, index) order — the same order the old
  //     index sweep visited them, so the *first* miss found is the
  //     same one;
  //   - `live`, a set ordered by (priority key, index) — deadline for
  //     EDF, period for RM, ties by task index, matching
  //     GlobalJobSimulator::higher_priority exactly — whose first
  //     min(m, |live|) elements ARE the running set, no nth_element.
  //
  // Event count, verdicts, and miss times are unchanged: the loop
  // structure (releases, H check, budget, one event per running-set
  // epoch) is identical, only the per-event cost drops from O(n) to
  // O((releases + completions) log n + m).
  using Rel = std::pair<Time, std::uint32_t>;
  std::priority_queue<Rel, std::vector<Rel>, std::greater<Rel>> releases;
  std::vector<std::int64_t> remaining(n, 0);
  std::set<std::pair<Time, std::uint32_t>> live;  // (EDF deadline | RM period, index)
  for (std::size_t i = 0; i < n; ++i)
    releases.push({Time{0}, static_cast<std::uint32_t>(i)});
  const bool edf = algorithm == UniAlgorithm::kEDF;

  Time t = 0;
  while (true) {
    // Releases due now; a live predecessor has missed its deadline
    // (deadline == this release under implicit deadlines).
    while (!releases.empty() && releases.top().first == t) {
      const std::uint32_t i = releases.top().second;
      releases.pop();
      if (remaining[i] > 0) {
        out.verdict = GedfVerdict::kUnschedulable;
        out.first_miss = t;
        out.simulated = t;
        return out;
      }
      remaining[i] = tasks[i].execution;
      live.insert({edf ? t + tasks[i].period : tasks[i].period, i});
      releases.push({t + tasks[i].period, i});
    }
    // A clean pass through t == H means every job released in [0, H)
    // completed by its deadline; the state at H equals the state at 0,
    // so the schedule repeats forever.
    if (t >= h) {
      out.verdict = GedfVerdict::kSchedulable;
      out.simulated = t;
      return out;
    }
    if (out.events >= max_events) {
      out.verdict = GedfVerdict::kBudgetExceeded;
      out.simulated = t;
      return out;
    }
    ++out.events;

    // The running set is constant until the next release or the first
    // completion among the m highest-priority live jobs.
    const std::size_t run = std::min(live.size(), static_cast<std::size_t>(m));
    Time delta = releases.top().first - t;
    auto it = live.begin();
    for (std::size_t k = 0; k < run; ++k, ++it)
      delta = std::min<Time>(delta, remaining[it->second]);
    it = live.begin();
    for (std::size_t k = 0; k < run; ++k) {
      const std::uint32_t i = it->second;
      remaining[i] -= delta;
      if (remaining[i] == 0) {
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    t += delta;
  }
}

}  // namespace pfair::serve
