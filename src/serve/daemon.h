// The pfaird serving core: a request loop around a live simulator.
//
// The daemon owns one engine::Simulator (any factory kind) and an
// AdmissionController mirroring its committed task set.  Each JSONL
// request line (serve/request.h) is parsed, gated through the tiered
// admission test, applied to the simulator through the dynamic-task
// request API (join/leave/reweight on engine::Simulator), and answered
// with one JSONL decision line.
//
// Determinism contract: a decision line is a pure function of the
// request history — it carries the simulator clock, never wall-clock —
// so running the same request log twice produces byte-identical
// decision logs (CI diffs them).  Wall-clock only feeds the
// *observability* side: per-decision latency lands in a histogram and
// the MetricsRegistry (serve.* counters, the "serve.decision" timer),
// which is a write-only side channel.
//
// The simulated clock advances two ways: an explicit {"op":"advance"}
// request, and optionally `advance_per_request` slots after every
// request — the "quantum loop keeps running while requests stream in"
// mode the ISSUE asks for.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "engine/factory.h"
#include "obs/bus.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "serve/admission.h"
#include "serve/request.h"

namespace pfair::serve {

struct DaemonConfig {
  engine::SchedulerKind kind = engine::SchedulerKind::kPfair;
  int processors = 1;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;  ///< uniproc / global-job flavour
  bool overhead_aware = false;     ///< Tier 1 runs Eq.-(3) inflation
  OverheadParams overhead;         ///< Eq.-(3) inputs
  double cache_delay_us = 33.3;    ///< D(T) charged per task (paper mean)
  std::uint64_t exact_budget = 1u << 20;  ///< Tier-2 event budget (0 = off)
  Time advance_per_request = 0;    ///< slots to run after each request
  bool measure_latency = true;     ///< steady_clock per-decision timing
};

/// Request-loop totals (the registry mirror; see publish_registry()).
struct DaemonStats {
  std::uint64_t requests = 0;
  std::uint64_t admits = 0;   ///< join/reweight granted
  std::uint64_t rejects = 0;  ///< join/reweight denied
  std::uint64_t errors = 0;   ///< parse errors, unknown tasks, not-dynamic
  std::uint64_t tier0 = 0, tier1 = 0, tier2 = 0;  ///< deciding tier
  std::uint64_t approx = 0;   ///< Tier-2 budget fell back to Tier 1
  std::uint64_t latency_count = 0;
  std::uint64_t latency_total_ns = 0;
  std::uint64_t latency_max_ns = 0;
  obs::Histogram latency_ns = obs::Histogram::exponential(16.0, 2.0, 24);
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);

  /// Handles one request line, returns the decision line (no newline).
  /// Every line gets exactly one answer, including malformed ones.
  [[nodiscard]] std::string process_line(std::string_view line);

  /// Reads JSONL requests from `in` until EOF, writing one decision
  /// line each to `out`.  Returns the number of requests handled.
  std::uint64_t serve(std::istream& in, std::ostream& out);

  /// Admission events (kAdmitRequest/kAdmitGrant/kAdmitReject) are
  /// emitted here; pass nullptr to detach.
  void attach_observer(obs::EventBus* bus) noexcept { bus_ = bus; }

  /// Pushes the request-loop totals into MetricsRegistry::global():
  /// serve.requests/admits/rejects/errors/tier0/tier1/tier2/approx
  /// counters plus the "serve.decision" timer (p50/p95/p99 from the
  /// latency histogram).  Call once after serving.
  void publish_registry() const;

  [[nodiscard]] const DaemonStats& stats() const noexcept { return stats_; }
  [[nodiscard]] engine::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] const AdmissionController& controller() const noexcept { return gate_; }

 private:
  [[nodiscard]] obs::json::Object handle(const Request& r);
  [[nodiscard]] obs::json::Object decide_and_apply(const Request& r);
  void note_decision(const Decision& d, const UniTask& t, TaskId task);

  DaemonConfig config_;
  std::unique_ptr<engine::Simulator> sim_;
  AdmissionController gate_;
  obs::EventBus* bus_ = nullptr;
  DaemonStats stats_;
  std::uint64_t seq_ = 0;          ///< request sequence number (echoed back)
  TaskId next_static_id_ = 0;      ///< id source for non-dynamic kinds
};

}  // namespace pfair::serve
