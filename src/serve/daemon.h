// The pfaird serving core: a request loop around a live simulator.
//
// The daemon owns one engine::Simulator (any factory kind) and an
// AdmissionController mirroring its committed task set.  Each JSONL
// request line (serve/request.h) is parsed, gated through the tiered
// admission test, applied to the simulator through the dynamic-task
// request API (join/leave/reweight on engine::Simulator), and answered
// with one JSONL decision line.
//
// Determinism contract: a decision line is a pure function of the
// request history — it carries the simulator clock, never wall-clock —
// so running the same request log twice produces byte-identical
// decision logs (CI diffs them).  Wall-clock only feeds the
// *observability* side: per-decision latency lands in a histogram and
// the MetricsRegistry (serve.* counters, the "serve.decision" timer),
// which is a write-only side channel.
//
// The simulated clock advances two ways: an explicit {"op":"advance"}
// request, and optionally `advance_per_request` slots after every
// request — the "quantum loop keeps running while requests stream in"
// mode the ISSUE asks for.
//
// Batching.  A {"op":"batch","requests":[...]} line answers with one
// decision line per sub-request, and `serve()` can additionally group
// consecutive input lines into pipeline batches of `config.batch`
// before answering them.  Either way the gate first *prewarms* its
// Tier-2 memo for the whole group — the independent exact simulations
// fan out across a ThreadPool of `config.jobs` workers — and then the
// requests are answered strictly in request order on this thread.
// Warming is a pure cache fill against the group-entry mirror state
// (a sub-request that changes the task set mid-group just turns the
// later warms into misses, recomputed cold on the decide path), so
// decision logs are byte-identical to sequential evaluation for every
// (batch, jobs) setting: the CI smoke diffs them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/factory.h"
#include "obs/bus.h"
#include "obs/histogram.h"
#include "serve/admission.h"
#include "serve/request.h"

namespace pfair::serve {

struct DaemonConfig {
  engine::SchedulerKind kind = engine::SchedulerKind::kPfair;
  int processors = 1;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;  ///< uniproc / global-job flavour
  bool overhead_aware = false;     ///< Tier 1 runs Eq.-(3) inflation
  OverheadParams overhead;         ///< Eq.-(3) inputs
  double cache_delay_us = 33.3;    ///< D(T) charged per task (paper mean)
  std::uint64_t exact_budget = 1u << 20;  ///< Tier-2 event budget (0 = off)
  Time advance_per_request = 0;    ///< slots to run after each request
  bool measure_latency = true;     ///< steady_clock per-decision timing
  int mirror_shards = 16;          ///< gate task-mirror shards
  std::size_t memo_capacity = 1u << 16;  ///< Tier-2 memo entries (0 = off)
  std::size_t batch = 1;           ///< serve() pipeline group size
  int jobs = 1;                    ///< memo-prewarm workers (1 = inline)
  std::size_t residents = 0;       ///< synthetic resident ballast (benches)
};

/// Request-loop totals (the registry mirror; see publish_registry()).
struct DaemonStats {
  std::uint64_t requests = 0;
  std::uint64_t admits = 0;   ///< join/reweight granted
  std::uint64_t rejects = 0;  ///< join/reweight denied
  std::uint64_t errors = 0;   ///< parse errors, unknown tasks, not-dynamic
  std::uint64_t tier0 = 0, tier1 = 0, tier2 = 0;  ///< deciding tier
  std::uint64_t approx = 0;   ///< Tier-2 budget fell back to Tier 1
  std::uint64_t latency_count = 0;
  std::uint64_t latency_total_ns = 0;
  std::uint64_t latency_max_ns = 0;
  obs::Histogram latency_ns = obs::Histogram::exponential(16.0, 2.0, 24);
  std::uint64_t batches = 0;           ///< batch ops + pipeline groups
  std::uint64_t batched_requests = 0;  ///< sub-requests across batches
  std::uint64_t batch_max = 0;         ///< largest batch seen
  obs::Histogram batch_size = obs::Histogram::exponential(1.0, 2.0, 16);
};

namespace detail {
class PrewarmPool;  // owns the optional ThreadPool (keeps engine/parallel.h out of this header)
}  // namespace detail

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  /// Handles one request line, returns the decision line(s) (no
  /// trailing newline).  Every line gets exactly one answer — except a
  /// batch line, whose answer is one line per sub-request joined with
  /// '\n', byte-identical to the sub-requests arriving individually.
  [[nodiscard]] std::string process_line(std::string_view line);

  /// Reads JSONL requests from `in` until EOF, writing one decision
  /// line each to `out`.  Returns the number of requests handled.
  std::uint64_t serve(std::istream& in, std::ostream& out);

  /// Admission events (kAdmitRequest/kAdmitGrant/kAdmitReject) are
  /// emitted here; pass nullptr to detach.
  void attach_observer(obs::EventBus* bus) noexcept { bus_ = bus; }

  /// Pushes the request-loop totals into MetricsRegistry::global():
  /// serve.requests/admits/rejects/errors/tier0/tier1/tier2/approx/
  /// tier2_memo_hits/tier2_memo_misses counters plus the
  /// "serve.decision" timer (p50/p95/p99 from the latency histogram)
  /// and the "serve.batch_size" distribution.  Call once after serving.
  void publish_registry() const;

  [[nodiscard]] const DaemonStats& stats() const noexcept { return stats_; }
  [[nodiscard]] engine::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] const AdmissionController& controller() const noexcept { return gate_; }

 private:
  /// Decides/applies `r` and appends its decision line to `out`
  /// through obs::json::ObjectWriter — byte-identical to the dumped
  /// Object form, without the per-line Value tree.
  void write_response(const Request& r, std::uint64_t seq, std::string& out);
  void note_decision(const Decision& d, const UniTask& t, TaskId task);
  /// One request answered into `out`: stats, seq, write_response(),
  /// per-request advance.
  void answer_request(const Request& r, std::string& out);
  /// Answers one already-parsed line (error lines included) into `out`
  /// with latency accounting — the shared tail of process_line_into()
  /// and the pipelined serve() loop, which parses each line only once.
  void answer_line(const std::optional<Request>& req, std::string_view error,
                   std::string& out);
  /// process_line() into a caller-owned (reusable) buffer — the
  /// serve() loop's allocation-free spelling.
  void process_line_into(std::string_view line, std::string& out);
  /// Prewarms the gate's Tier-2 memo for every join/reweight candidate
  /// in `reqs` (batch sub-requests included) against the current state.
  void prewarm(const std::vector<Request>& reqs);
  /// The shared prewarm tail: advance + gate warm of collected candidates.
  void warm_candidates(const std::vector<std::pair<UniTask, TaskId>>& cands);
  void note_batch(std::size_t size);

  DaemonConfig config_;
  std::unique_ptr<engine::Simulator> sim_;
  AdmissionController gate_;
  std::unique_ptr<detail::PrewarmPool> pool_;  ///< engaged iff jobs > 1
  obs::EventBus* bus_ = nullptr;
  DaemonStats stats_;
  std::uint64_t seq_ = 0;          ///< request sequence number (echoed back)
  TaskId next_static_id_ = 0;      ///< id source for non-dynamic kinds
};

}  // namespace pfair::serve
