#include "serve/daemon.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <utility>

#include "engine/parallel.h"
#include "obs/event.h"
#include "obs/fastclock.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace pfair::serve {

namespace detail {
class PrewarmPool {
 public:
  explicit PrewarmPool(int jobs) : pool_(jobs) {}
  [[nodiscard]] engine::ThreadPool* get() noexcept { return &pool_; }

 private:
  engine::ThreadPool pool_;
};
}  // namespace detail

namespace {

/// "num/den" (or "num" when den == 1) into a stack buffer — the
/// allocation-free spelling of Rational::to_string for decision lines.
[[nodiscard]] std::string_view format_ratio(const Rational& r, char (&buf)[48]) {
  char* p = std::to_chars(buf, buf + 24, r.num()).ptr;
  if (r.den() != 1) {
    *p++ = '/';
    p = std::to_chars(p, buf + 48, r.den()).ptr;
  }
  return {buf, static_cast<std::size_t>(p - buf)};
}

[[nodiscard]] engine::SimulatorConfig simulator_config(const DaemonConfig& c) {
  engine::SimulatorConfig sc;
  sc.pfair.processors = c.processors;
  sc.partitioned.max_processors = c.processors;
  sc.partitioned.algorithm = c.algorithm;
  sc.global_job.processors = c.processors;
  sc.global_job.algorithm = c.algorithm;
  sc.uniproc.algorithm = c.algorithm;
  sc.wrr.processors = c.processors;
  return sc;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(config),
      sim_(engine::make_simulator(config.kind, simulator_config(config))),
      gate_(AdmissionConfig{config.kind, config.processors, config.algorithm,
                            config.overhead_aware, config.overhead, config.cache_delay_us,
                            config.exact_budget, config.mirror_shards,
                            config.memo_capacity}) {
  if (config_.jobs > 1) pool_ = std::make_unique<detail::PrewarmPool>(config_.jobs);
  // Synthetic resident ballast (admission_bench --residents): N
  // ultra-light tasks committed straight into the gate under ids from
  // the high half of the id space, which the simulator's dense
  // allocator never reaches.  The admission arithmetic then runs
  // against an N-task committed set while the simulator still only
  // executes the live stream's tasks — the bench measures gate
  // throughput at scale, not the slot kernel.  Periods cycle through
  // four classes at 2N..8N — the exact ΣU denominator stays at
  // lcm = 24N (dozens of distinct periods would overflow the
  // Rational) and the ballast totals 25/96 ~ 0.26 of one processor,
  // fitting every kind, including uniproc.
  const TaskId ballast_base = TaskId{1} << 31;
  for (std::size_t i = 0; i < config_.residents; ++i) {
    const auto p =
        static_cast<std::int64_t>(2 * config_.residents * (1 + i % 4));
    gate_.commit(ballast_base + static_cast<TaskId>(i), UniTask{1, p});
  }
}

Daemon::~Daemon() = default;

void Daemon::note_decision(const Decision& d, const UniTask& t, TaskId task) {
  if (d.admit) {
    ++stats_.admits;
  } else {
    ++stats_.rejects;
  }
  switch (d.tier) {
    case 0: ++stats_.tier0; break;
    case 1: ++stats_.tier1; break;
    default: ++stats_.tier2; break;
  }
  if (d.approx) ++stats_.approx;
  obs::emit(bus_, obs::EventKind::kAdmitRequest, sim_->now(), task, kNoProc,
            t.period > 0 ? t.utilization() : 0.0);
  obs::emit(bus_,
            d.admit ? obs::EventKind::kAdmitGrant : obs::EventKind::kAdmitReject,
            sim_->now(), task, kNoProc, static_cast<double>(d.tier));
}

void Daemon::write_response(const Request& r, std::uint64_t seq, std::string& out) {
  gate_.advance_to(sim_->now());
  const auto entry = static_cast<std::int64_t>(sim_->now());
  const char* opname = to_string(r.op);
  const auto sq = static_cast<std::int64_t>(seq);
  // Fields go out in ascending key order (the ObjectWriter contract),
  // so each shape below is byte-identical to the dumped-Object form
  // this loop used before it went allocation-free.
  char tbuf[48];  // stack home for the "total" weight rendering
  obs::json::ObjectWriter w(out);
  switch (r.op) {
    case RequestOp::kJoin: {
      const UniTask cand{r.execution, r.period};
      Decision d = gate_.decide_join(cand);
      TaskId assigned = kNoTask;
      if (d.admit) {
        const engine::TaskSpec spec = engine::task_spec(r.execution, r.period, r.name);
        if (sim_->can_dynamic()) {
          if (const std::optional<TaskId> id = sim_->join(spec)) assigned = *id;
        } else if (sim_->admit(spec)) {
          assigned = next_static_id_++;
        }
        if (assigned == kNoTask) {
          // The gate said yes but the scheduler refused (e.g. a static
          // kind past time 0): surface it, never leak a phantom admit.
          d.admit = false;
          d.reason = "sim-reject";
        } else {
          gate_.commit(assigned, cand);
        }
      }
      note_decision(d, cand, assigned);
      w.field_bool("admit", d.admit)
          .field_bool("approx", d.approx)
          .field_int("exact_events", static_cast<std::int64_t>(d.exact_events))
          .field_str("op", opname)
          .field_str("reason", d.reason)
          .field_int("seq", sq)
          .field_int("task",
                     assigned == kNoTask ? -1 : static_cast<std::int64_t>(assigned))
          .field_int("tier", d.tier)
          .field_int("time", entry)
          .field_str("total", format_ratio(gate_.total_weight(), tbuf));
      break;
    }
    case RequestOp::kLeave: {
      if (!sim_->can_dynamic()) {
        ++stats_.errors;
        w.field_str("error", "not-dynamic")
            .field_bool("ok", false)
            .field_str("op", opname)
            .field_int("seq", sq)
            .field_int("time", entry);
        break;
      }
      if (const std::optional<Time> free = sim_->request_leave(r.task)) {
        gate_.schedule_release(r.task, *free);
        w.field_int("free_at", static_cast<std::int64_t>(*free))
            .field_bool("ok", true)
            .field_str("op", opname)
            .field_int("seq", sq)
            .field_int("task", static_cast<std::int64_t>(r.task))
            .field_int("time", entry);
      } else {
        ++stats_.errors;
        w.field_str("error", "unknown-task")
            .field_bool("ok", false)
            .field_str("op", opname)
            .field_int("seq", sq)
            .field_int("task", static_cast<std::int64_t>(r.task))
            .field_int("time", entry);
      }
      break;
    }
    case RequestOp::kReweight: {
      if (!sim_->can_dynamic()) {
        ++stats_.errors;
        w.field_bool("admit", false)
            .field_str("error", "not-dynamic")
            .field_str("op", opname)
            .field_int("seq", sq)
            .field_int("time", entry);
        break;
      }
      const UniTask cand{r.execution, r.period};
      Decision d = gate_.decide_reweight(r.task, cand);
      if (!d.admit && std::string_view(d.reason) == "unknown-task") {
        ++stats_.errors;
        w.field_bool("admit", false)
            .field_str("error", "unknown-task")
            .field_str("op", opname)
            .field_int("seq", sq)
            .field_int("task", static_cast<std::int64_t>(r.task))
            .field_int("time", entry);
        break;
      }
      Time effective = -1;
      if (d.admit) {
        const std::optional<Time> when =
            sim_->request_reweight(r.task, engine::task_spec(r.execution, r.period));
        if (when.has_value()) {
          effective = *when;
          gate_.schedule_reweight(r.task, cand, *when);
        } else {
          d.admit = false;
          d.reason = "sim-reject";
        }
      }
      note_decision(d, cand, r.task);
      w.field_bool("admit", d.admit)
          .field_bool("approx", d.approx)
          .field_int("effective_at", static_cast<std::int64_t>(effective))
          .field_int("exact_events", static_cast<std::int64_t>(d.exact_events))
          .field_str("op", opname)
          .field_str("reason", d.reason)
          .field_int("seq", sq)
          .field_int("task", static_cast<std::int64_t>(r.task))
          .field_int("tier", d.tier)
          .field_int("time", entry)
          .field_str("total", format_ratio(gate_.total_weight(), tbuf));
      break;
    }
    case RequestOp::kQuery: {
      w.field_str("op", opname)
          .field_int("seq", sq)
          .field_int("tasks", static_cast<std::int64_t>(gate_.committed()))
          .field_int("time", entry)
          .field_str("total", format_ratio(gate_.total_weight(), tbuf));
      break;
    }
    case RequestOp::kAdvance: {
      if (r.to > sim_->now()) sim_->run_until(r.to);
      gate_.advance_to(sim_->now());
      w.field_int("now", static_cast<std::int64_t>(sim_->now()))
          .field_str("op", opname)
          .field_int("seq", sq)
          .field_int("time", entry);
      break;
    }
    case RequestOp::kBatch: {
      // Batches are unpacked in process_line(); parsing rejects nested
      // batches, so this only defends against future callers.
      ++stats_.errors;
      w.field_str("error", "bad-field")
          .field_bool("ok", false)
          .field_str("op", opname)
          .field_int("seq", sq)
          .field_int("time", entry);
      break;
    }
  }
  w.finish();
}

void Daemon::answer_request(const Request& r, std::string& out) {
  ++stats_.requests;
  const std::uint64_t seq = seq_++;
  write_response(r, seq, out);
  // Keep the quantum loop running underneath the request stream.
  if (config_.advance_per_request > 0) {
    sim_->run_until(sim_->now() + config_.advance_per_request);
    gate_.advance_to(sim_->now());
  }
}

namespace {

/// Collects the join/reweight candidates in `r` (batch sub-requests
/// included) that the decide path could escalate to Tier 2.  Returns
/// false to stop the group scan: a leave schedules a release and an
/// advance can fire pending ones, so warms computed past either run
/// against a task set the decide path may no longer see — wasted
/// Tier-2 simulations, never wrong answers.  Joins and reweights only
/// mutate when *admitted*, which the overloaded mixes make rare, so
/// scanning through them keeps the join-storm warm fan-out intact.
bool collect_tier2_candidates(const Request& r,
                              std::vector<std::pair<UniTask, TaskId>>& cands) {
  switch (r.op) {
    case RequestOp::kJoin:
      cands.emplace_back(UniTask{r.execution, r.period}, kNoTask);
      return true;
    case RequestOp::kReweight:
      cands.emplace_back(UniTask{r.execution, r.period}, r.task);
      return true;
    case RequestOp::kBatch:
      for (const Request& sub : r.batch)
        if (!collect_tier2_candidates(sub, cands)) return false;
      return true;
    case RequestOp::kLeave:
    case RequestOp::kAdvance:
      return false;
    default:
      return true;
  }
}

}  // namespace

void Daemon::prewarm(const std::vector<Request>& reqs) {
  // The mirror state the warms run against is the state the *first*
  // request in the group will see; requests that mutate the set
  // mid-group simply make the later warms useless (miss + cold
  // recompute), never wrong.
  std::vector<std::pair<UniTask, TaskId>> cands;
  for (const Request& r : reqs)
    if (!collect_tier2_candidates(r, cands)) break;
  warm_candidates(cands);
}

void Daemon::warm_candidates(const std::vector<std::pair<UniTask, TaskId>>& cands) {
  if (cands.empty()) return;
  gate_.advance_to(sim_->now());
  gate_.prewarm_tier2(cands, pool_ ? pool_->get() : nullptr);
}

void Daemon::note_batch(std::size_t size) {
  ++stats_.batches;
  stats_.batched_requests += size;
  if (size > stats_.batch_max) stats_.batch_max = size;
  stats_.batch_size.add(static_cast<double>(size));
}

void Daemon::answer_line(const std::optional<Request>& req, std::string_view error,
                         std::string& result) {
  result.clear();
  const std::uint64_t start = config_.measure_latency ? obs::approx_now_ns() : 0;
  if (req.has_value() && req->op == RequestOp::kBatch) {
    prewarm(req->batch);
    note_batch(req->batch.size());
    for (std::size_t i = 0; i < req->batch.size(); ++i) {
      if (i > 0) result += '\n';
      answer_request(req->batch[i], result);
    }
  } else if (req.has_value()) {
    answer_request(*req, result);
  } else {
    ++stats_.requests;
    const std::uint64_t seq = seq_++;
    ++stats_.errors;
    obs::json::ObjectWriter w(result);
    w.field_str("error", error)
        .field_str("op", "error")
        .field_int("seq", static_cast<std::int64_t>(seq));
    w.finish();
    if (config_.advance_per_request > 0) {
      sim_->run_until(sim_->now() + config_.advance_per_request);
      gate_.advance_to(sim_->now());
    }
  }
  if (config_.measure_latency) {
    const std::uint64_t end = obs::approx_now_ns();
    const std::uint64_t v = end > start ? end - start : 0;
    ++stats_.latency_count;
    stats_.latency_total_ns += v;
    if (v > stats_.latency_max_ns) stats_.latency_max_ns = v;
    stats_.latency_ns.add(static_cast<double>(v));
  }
}

void Daemon::process_line_into(std::string_view line, std::string& result) {
  std::string error;
  const std::optional<Request> req = parse_request(line, &error);
  answer_line(req, error, result);
}

std::string Daemon::process_line(std::string_view line) {
  std::string result;
  process_line_into(line, result);
  return result;
}

std::uint64_t Daemon::serve(std::istream& in, std::ostream& out) {
  std::uint64_t handled = 0;
  std::string line;
  std::string result;  // reused across lines: no per-line allocation
  if (config_.batch <= 1) {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      process_line_into(line, result);
      out << result << '\n';
      ++handled;
    }
    out.flush();
    return handled;
  }
  // Pipelined mode: group consecutive lines, warm the Tier-2 memo for
  // the whole group in parallel, then answer strictly in input order.
  // Each line is parsed exactly once — the parse feeds both the warm
  // pass and the answer pass.  The output is byte-identical to batch=1:
  // warming is a cache fill.
  std::vector<std::optional<Request>> group;
  std::vector<std::string> errors;
  std::vector<std::pair<UniTask, TaskId>> cands;
  group.reserve(config_.batch);
  errors.reserve(config_.batch);
  const auto flush = [&] {
    if (group.empty()) return;
    cands.clear();
    for (const std::optional<Request>& r : group)
      if (r.has_value() && !collect_tier2_candidates(*r, cands)) break;
    warm_candidates(cands);
    note_batch(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      answer_line(group[i], errors[i], result);
      out << result << '\n';
      ++handled;
    }
    group.clear();
    errors.clear();
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    errors.emplace_back();
    group.push_back(parse_request(line, &errors.back()));
    if (group.size() >= config_.batch) flush();
  }
  flush();
  out.flush();
  return handled;
}

void Daemon::publish_registry() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("serve.requests").add(stats_.requests);
  reg.counter("serve.admits").add(stats_.admits);
  reg.counter("serve.rejects").add(stats_.rejects);
  reg.counter("serve.errors").add(stats_.errors);
  reg.counter("serve.tier0").add(stats_.tier0);
  reg.counter("serve.tier1").add(stats_.tier1);
  reg.counter("serve.tier2").add(stats_.tier2);
  reg.counter("serve.approx").add(stats_.approx);
  obs::TimerStats ts;
  ts.count = stats_.latency_count;
  ts.total_ns = stats_.latency_total_ns;
  ts.max_ns = stats_.latency_max_ns;
  ts.hist = stats_.latency_ns;
  reg.record_timer("serve.decision", ts);
  reg.counter("serve.tier2_memo_hits").add(gate_.memo_hits());
  reg.counter("serve.tier2_memo_misses").add(gate_.memo_misses());
  // Batch-size distribution, reported through the timer channel (count
  // = groups, total/max/hist in sub-requests rather than ns).
  obs::TimerStats bs;
  bs.count = stats_.batches;
  bs.total_ns = stats_.batched_requests;
  bs.max_ns = stats_.batch_max;
  bs.hist = stats_.batch_size;
  reg.record_timer("serve.batch_size", bs);
}

}  // namespace pfair::serve
