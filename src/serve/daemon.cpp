#include "serve/daemon.h"

#include <chrono>
#include <istream>
#include <ostream>

#include "obs/event.h"
#include "obs/registry.h"

namespace pfair::serve {

namespace {

using obs::json::Value;

[[nodiscard]] engine::SimulatorConfig simulator_config(const DaemonConfig& c) {
  engine::SimulatorConfig sc;
  sc.pfair.processors = c.processors;
  sc.partitioned.max_processors = c.processors;
  sc.partitioned.algorithm = c.algorithm;
  sc.global_job.processors = c.processors;
  sc.global_job.algorithm = c.algorithm;
  sc.uniproc.algorithm = c.algorithm;
  sc.wrr.processors = c.processors;
  return sc;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(config),
      sim_(engine::make_simulator(config.kind, simulator_config(config))),
      gate_(AdmissionConfig{config.kind, config.processors, config.algorithm,
                            config.overhead_aware, config.overhead, config.cache_delay_us,
                            config.exact_budget}) {}

void Daemon::note_decision(const Decision& d, const UniTask& t, TaskId task) {
  if (d.admit) {
    ++stats_.admits;
  } else {
    ++stats_.rejects;
  }
  switch (d.tier) {
    case 0: ++stats_.tier0; break;
    case 1: ++stats_.tier1; break;
    default: ++stats_.tier2; break;
  }
  if (d.approx) ++stats_.approx;
  obs::emit(bus_, obs::EventKind::kAdmitRequest, sim_->now(), task, kNoProc,
            t.period > 0 ? t.utilization() : 0.0);
  obs::emit(bus_,
            d.admit ? obs::EventKind::kAdmitGrant : obs::EventKind::kAdmitReject,
            sim_->now(), task, kNoProc, static_cast<double>(d.tier));
}

obs::json::Object Daemon::handle(const Request& r) {
  gate_.advance_to(sim_->now());
  obs::json::Object o;
  o["op"] = Value(std::string(to_string(r.op)));
  o["time"] = Value(static_cast<double>(sim_->now()));
  switch (r.op) {
    case RequestOp::kJoin: {
      const UniTask cand{r.execution, r.period};
      Decision d = gate_.decide_join(cand);
      TaskId assigned = kNoTask;
      if (d.admit) {
        const engine::TaskSpec spec = engine::task_spec(r.execution, r.period, r.name);
        if (sim_->can_dynamic()) {
          if (const std::optional<TaskId> id = sim_->join(spec)) assigned = *id;
        } else if (sim_->admit(spec)) {
          assigned = next_static_id_++;
        }
        if (assigned == kNoTask) {
          // The gate said yes but the scheduler refused (e.g. a static
          // kind past time 0): surface it, never leak a phantom admit.
          d.admit = false;
          d.reason = "sim-reject";
        } else {
          gate_.commit(assigned, cand);
        }
      }
      note_decision(d, cand, assigned);
      o["admit"] = Value(d.admit);
      o["tier"] = Value(static_cast<double>(d.tier));
      o["reason"] = Value(std::string(d.reason));
      o["approx"] = Value(d.approx);
      o["exact_events"] = Value(static_cast<double>(d.exact_events));
      o["task"] = Value(assigned == kNoTask ? -1.0 : static_cast<double>(assigned));
      o["total"] = Value(gate_.total_weight().to_string());
      break;
    }
    case RequestOp::kLeave: {
      if (!sim_->can_dynamic()) {
        ++stats_.errors;
        o["ok"] = Value(false);
        o["error"] = Value(std::string("not-dynamic"));
        break;
      }
      if (const std::optional<Time> free = sim_->request_leave(r.task)) {
        gate_.schedule_release(r.task, *free);
        o["ok"] = Value(true);
        o["task"] = Value(static_cast<double>(r.task));
        o["free_at"] = Value(static_cast<double>(*free));
      } else {
        ++stats_.errors;
        o["ok"] = Value(false);
        o["task"] = Value(static_cast<double>(r.task));
        o["error"] = Value(std::string("unknown-task"));
      }
      break;
    }
    case RequestOp::kReweight: {
      if (!sim_->can_dynamic()) {
        ++stats_.errors;
        o["admit"] = Value(false);
        o["error"] = Value(std::string("not-dynamic"));
        break;
      }
      const UniTask cand{r.execution, r.period};
      Decision d = gate_.decide_reweight(r.task, cand);
      if (!d.admit && std::string_view(d.reason) == "unknown-task") {
        ++stats_.errors;
        o["admit"] = Value(false);
        o["task"] = Value(static_cast<double>(r.task));
        o["error"] = Value(std::string("unknown-task"));
        break;
      }
      Time effective = -1;
      if (d.admit) {
        const std::optional<Time> when =
            sim_->request_reweight(r.task, engine::task_spec(r.execution, r.period));
        if (when.has_value()) {
          effective = *when;
          gate_.schedule_reweight(r.task, cand, *when);
        } else {
          d.admit = false;
          d.reason = "sim-reject";
        }
      }
      note_decision(d, cand, r.task);
      o["admit"] = Value(d.admit);
      o["tier"] = Value(static_cast<double>(d.tier));
      o["reason"] = Value(std::string(d.reason));
      o["approx"] = Value(d.approx);
      o["exact_events"] = Value(static_cast<double>(d.exact_events));
      o["task"] = Value(static_cast<double>(r.task));
      o["effective_at"] = Value(static_cast<double>(effective));
      o["total"] = Value(gate_.total_weight().to_string());
      break;
    }
    case RequestOp::kQuery: {
      o["tasks"] = Value(static_cast<double>(gate_.committed()));
      o["total"] = Value(gate_.total_weight().to_string());
      break;
    }
    case RequestOp::kAdvance: {
      if (r.to > sim_->now()) sim_->run_until(r.to);
      gate_.advance_to(sim_->now());
      o["now"] = Value(static_cast<double>(sim_->now()));
      break;
    }
  }
  return o;
}

std::string Daemon::process_line(std::string_view line) {
  const auto start = config_.measure_latency
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  ++stats_.requests;
  const std::uint64_t seq = seq_++;
  obs::json::Object o;
  std::string error;
  if (const std::optional<Request> req = parse_request(line, &error)) {
    o = handle(*req);
  } else {
    ++stats_.errors;
    o["op"] = Value(std::string("error"));
    o["error"] = Value(error);
  }
  o["seq"] = Value(static_cast<double>(seq));
  // Keep the quantum loop running underneath the request stream.
  if (config_.advance_per_request > 0) {
    sim_->run_until(sim_->now() + config_.advance_per_request);
    gate_.advance_to(sim_->now());
  }
  if (config_.measure_latency) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    const auto v = static_cast<std::uint64_t>(ns < 0 ? 0 : ns);
    ++stats_.latency_count;
    stats_.latency_total_ns += v;
    if (v > stats_.latency_max_ns) stats_.latency_max_ns = v;
    stats_.latency_ns.add(static_cast<double>(v));
  }
  return Value(std::move(o)).dump();
}

std::uint64_t Daemon::serve(std::istream& in, std::ostream& out) {
  std::uint64_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out << process_line(line) << '\n';
    ++handled;
  }
  out.flush();
  return handled;
}

void Daemon::publish_registry() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("serve.requests").add(stats_.requests);
  reg.counter("serve.admits").add(stats_.admits);
  reg.counter("serve.rejects").add(stats_.rejects);
  reg.counter("serve.errors").add(stats_.errors);
  reg.counter("serve.tier0").add(stats_.tier0);
  reg.counter("serve.tier1").add(stats_.tier1);
  reg.counter("serve.tier2").add(stats_.tier2);
  reg.counter("serve.approx").add(stats_.approx);
  obs::TimerStats ts;
  ts.count = stats_.latency_count;
  ts.total_ns = stats_.latency_total_ns;
  ts.max_ns = stats_.latency_max_ns;
  ts.hist = stats_.latency_ns;
  reg.record_timer("serve.decision", ts);
}

}  // namespace pfair::serve
