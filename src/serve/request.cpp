#include "serve/request.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/json.h"
#include "util/rng.h"

namespace pfair::serve {

namespace {

/// obs::json numbers are doubles; task parameters must be integral and
/// inside the exactly-representable range.
bool to_int(const obs::json::Value& v, std::int64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  if (d != std::floor(d) || d < -9.0e15 || d > 9.0e15) return false;
  *out = static_cast<std::int64_t>(d);
  return true;
}

bool member_int(const obs::json::Value& obj, const char* key, std::int64_t* out) {
  const obs::json::Value* m = obj.find(key);
  return m != nullptr && to_int(*m, out);
}

void fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
}

}  // namespace

const char* to_string(RequestOp op) noexcept {
  switch (op) {
    case RequestOp::kJoin: return "join";
    case RequestOp::kLeave: return "leave";
    case RequestOp::kReweight: return "reweight";
    case RequestOp::kQuery: return "query";
    case RequestOp::kAdvance: return "advance";
  }
  return "unknown";
}

std::optional<Request> parse_request(std::string_view line, std::string* error) {
  const std::optional<obs::json::Value> doc = obs::json::parse(line);
  if (!doc.has_value() || !doc->is_object()) {
    fail(error, "bad-json");
    return std::nullopt;
  }
  const std::string op = doc->string_or("op", "");
  Request r;
  if (op == "join" || op == "reweight") {
    r.op = op == "join" ? RequestOp::kJoin : RequestOp::kReweight;
    if (!member_int(*doc, "execution", &r.execution) ||
        !member_int(*doc, "period", &r.period)) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    if (r.op == RequestOp::kJoin) {
      r.name = doc->string_or("name", "");
    } else {
      std::int64_t id = 0;
      if (!member_int(*doc, "task", &id) || id < 0 || id >= kNoTask) {
        fail(error, "bad-field");
        return std::nullopt;
      }
      r.task = static_cast<TaskId>(id);
    }
    return r;
  }
  if (op == "leave") {
    r.op = RequestOp::kLeave;
    std::int64_t id = 0;
    if (!member_int(*doc, "task", &id) || id < 0 || id >= kNoTask) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.task = static_cast<TaskId>(id);
    return r;
  }
  if (op == "query") {
    r.op = RequestOp::kQuery;
    return r;
  }
  if (op == "advance") {
    r.op = RequestOp::kAdvance;
    if (!member_int(*doc, "to", &r.to) || r.to < 0) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    return r;
  }
  fail(error, "bad-op");
  return std::nullopt;
}

std::string dump_request(const Request& r) {
  obs::json::Object o;
  o["op"] = obs::json::Value(std::string(to_string(r.op)));
  switch (r.op) {
    case RequestOp::kJoin:
      o["execution"] = obs::json::Value(static_cast<double>(r.execution));
      o["period"] = obs::json::Value(static_cast<double>(r.period));
      if (!r.name.empty()) o["name"] = obs::json::Value(r.name);
      break;
    case RequestOp::kReweight:
      o["execution"] = obs::json::Value(static_cast<double>(r.execution));
      o["period"] = obs::json::Value(static_cast<double>(r.period));
      o["task"] = obs::json::Value(static_cast<double>(r.task));
      break;
    case RequestOp::kLeave:
      o["task"] = obs::json::Value(static_cast<double>(r.task));
      break;
    case RequestOp::kQuery:
      break;
    case RequestOp::kAdvance:
      o["to"] = obs::json::Value(static_cast<double>(r.to));
      break;
  }
  return obs::json::Value(std::move(o)).dump();
}

std::string generate_requests(const GenConfig& config) {
  Rng rng(config.seed);
  std::string out;
  out.reserve(config.count * 48);
  Time clock = 0;
  // Ids the daemon will have assigned are unknowable here (rejected
  // joins get no id), so leave/reweight draw from the range of ids that
  // *could* exist; misses exercise the daemon's unknown-task reply,
  // which is itself part of the deterministic decision log.
  std::int64_t joins = 0;
  const double u_hi = std::clamp(0.25 * config.load, 0.05, 1.0);
  for (std::size_t i = 0; i < config.count; ++i) {
    Request r;
    const std::int64_t roll = rng.uniform_int(0, 15);
    if (roll <= 8 || joins == 0) {
      r.op = RequestOp::kJoin;
      r.period = rng.uniform_int(2, config.max_period);
      const double u = rng.uniform(0.02, u_hi);
      r.execution = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::lround(static_cast<double>(r.period) * u)),
          1, r.period);
      ++joins;
    } else if (roll <= 10) {
      r.op = RequestOp::kLeave;
      r.task = static_cast<TaskId>(rng.uniform_int(0, joins - 1));
    } else if (roll <= 12) {
      r.op = RequestOp::kReweight;
      r.task = static_cast<TaskId>(rng.uniform_int(0, joins - 1));
      r.period = rng.uniform_int(2, config.max_period);
      const double u = rng.uniform(0.02, u_hi);
      r.execution = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::lround(static_cast<double>(r.period) * u)),
          1, r.period);
    } else if (roll == 13) {
      r.op = RequestOp::kQuery;
    } else {
      r.op = RequestOp::kAdvance;
      clock += rng.uniform_int(1, 4);
      r.to = clock;
    }
    out += dump_request(r);
    out += '\n';
  }
  return out;
}

}  // namespace pfair::serve
