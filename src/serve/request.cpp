#include "serve/request.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <vector>

#include "obs/json.h"
#include "util/rng.h"

namespace pfair::serve {

namespace {

/// obs::json numbers are doubles; task parameters must be integral and
/// inside the exactly-representable range.
bool to_int(const obs::json::Value& v, std::int64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  if (d != std::floor(d) || d < -9.0e15 || d > 9.0e15) return false;
  *out = static_cast<std::int64_t>(d);
  return true;
}

bool member_int(const obs::json::Value& obj, const char* key, std::int64_t* out) {
  const obs::json::Value* m = obj.find(key);
  return m != nullptr && to_int(*m, out);
}

void fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
}

}  // namespace

const char* to_string(RequestOp op) noexcept {
  switch (op) {
    case RequestOp::kJoin: return "join";
    case RequestOp::kLeave: return "leave";
    case RequestOp::kReweight: return "reweight";
    case RequestOp::kQuery: return "query";
    case RequestOp::kAdvance: return "advance";
    case RequestOp::kBatch: return "batch";
  }
  return "unknown";
}

namespace {

/// Parses one request object.  `allow_batch` is off for the elements
/// of a batch: batches never nest (a nested batch is "bad-field").
std::optional<Request> parse_request_value(const obs::json::Value& doc,
                                           std::string* error, bool allow_batch) {
  if (!doc.is_object()) {
    fail(error, "bad-json");
    return std::nullopt;
  }
  const std::string op = doc.string_or("op", "");
  Request r;
  if (op == "batch") {
    if (!allow_batch) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.op = RequestOp::kBatch;
    const obs::json::Value* reqs = doc.find("requests");
    if (reqs == nullptr || !reqs->is_array() || reqs->as_array().empty()) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.batch.reserve(reqs->as_array().size());
    for (const obs::json::Value& sub : reqs->as_array()) {
      std::optional<Request> parsed = parse_request_value(sub, error, false);
      if (!parsed.has_value()) return std::nullopt;  // error already set
      r.batch.push_back(std::move(*parsed));
    }
    return r;
  }
  if (op == "join" || op == "reweight") {
    r.op = op == "join" ? RequestOp::kJoin : RequestOp::kReweight;
    if (!member_int(doc, "execution", &r.execution) ||
        !member_int(doc, "period", &r.period)) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    if (r.op == RequestOp::kJoin) {
      r.name = doc.string_or("name", "");
    } else {
      std::int64_t id = 0;
      if (!member_int(doc, "task", &id) || id < 0 || id >= kNoTask) {
        fail(error, "bad-field");
        return std::nullopt;
      }
      r.task = static_cast<TaskId>(id);
    }
    return r;
  }
  if (op == "leave") {
    r.op = RequestOp::kLeave;
    std::int64_t id = 0;
    if (!member_int(doc, "task", &id) || id < 0 || id >= kNoTask) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.task = static_cast<TaskId>(id);
    return r;
  }
  if (op == "query") {
    r.op = RequestOp::kQuery;
    return r;
  }
  if (op == "advance") {
    r.op = RequestOp::kAdvance;
    if (!member_int(doc, "to", &r.to) || r.to < 0) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    return r;
  }
  fail(error, "bad-op");
  return std::nullopt;
}

/// One member scanned off the fast path: a key plus a string view, a
/// number, or a bool (null members carry no payload).
struct FlatField {
  enum class Kind : std::uint8_t { kString, kNumber, kTrue, kFalse, kNull };
  std::string_view key;
  std::string_view str;
  double num = 0.0;
  Kind kind = Kind::kNull;
};

/// Scans a *flat* JSON object — string keys, string/number/bool/null
/// members, no escapes, no nesting — into `out`.  Returns false on
/// anything outside that shape (including every malformed line), in
/// which case the caller falls back to the full obs::json parser; the
/// fast path therefore accepts a strict subset of what the DOM parser
/// accepts and never changes how errors classify.
bool scan_flat(std::string_view s, std::vector<FlatField>& out) {
  out.clear();
  std::size_t i = 0;
  const auto ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  };
  const auto scan_string = [&](std::string_view* v) {
    if (i >= s.size() || s[i] != '"') return false;
    const std::size_t start = ++i;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        *v = s.substr(start, i - start);
        ++i;
        return true;
      }
      if (c == '\\' || static_cast<unsigned char>(c) < 0x20) return false;  // slow path
      ++i;
    }
    return false;
  };
  ws();
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  ws();
  if (i < s.size() && s[i] == '}') {
    ++i;
    ws();
    return i == s.size();
  }
  while (true) {
    FlatField f;
    ws();
    if (!scan_string(&f.key)) return false;
    ws();
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '"') {
      if (!scan_string(&f.str)) return false;
      f.kind = FlatField::Kind::kString;
    } else if (c == 't' && s.substr(i, 4) == "true") {
      i += 4;
      f.kind = FlatField::Kind::kTrue;
    } else if (c == 'f' && s.substr(i, 5) == "false") {
      i += 5;
      f.kind = FlatField::Kind::kFalse;
    } else if (c == 'n' && s.substr(i, 4) == "null") {
      i += 4;
      f.kind = FlatField::Kind::kNull;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = i;
      if (c == '-') ++i;
      while (i < s.size() &&
             ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' || s[i] == 'e' ||
              s[i] == 'E' || s[i] == '+' || s[i] == '-'))
        ++i;
      if (i == start) return false;
      // Correctly rounded like the DOM parser's strtod; any token it
      // parses only partially (e.g. "1.") bails to the slow path, which
      // reaches the same verdict.
      const auto [end, ec] =
          std::from_chars(s.data() + start, s.data() + i, f.num,
                          std::chars_format::general);
      if (ec != std::errc{} || end != s.data() + i) return false;
      f.kind = FlatField::Kind::kNumber;
    } else {
      return false;  // nested object/array or garbage: slow path decides
    }
    out.push_back(f);
    ws();
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      ws();
      return i == s.size();
    }
    return false;
  }
}

/// Interprets scanned fields with exactly parse_request_value's rules
/// (last duplicate wins, unknown keys ignored, non-string op/name
/// treated as absent, to_int range checks).
std::optional<Request> request_from_flat(const std::vector<FlatField>& fields,
                                         std::string* error) {
  std::string_view op;
  bool have_exec = false, have_period = false, have_task = false, have_to = false;
  std::int64_t exec = 0, period = 0, task_raw = 0, to = 0;
  std::string_view name;
  const auto as_int = [](const FlatField& f, bool* ok, std::int64_t* v) {
    if (f.kind != FlatField::Kind::kNumber || f.num != std::floor(f.num) ||
        f.num < -9.0e15 || f.num > 9.0e15) {
      *ok = false;
      return;
    }
    *ok = true;
    *v = static_cast<std::int64_t>(f.num);
  };
  for (const FlatField& f : fields) {
    if (f.key == "op") {
      op = f.kind == FlatField::Kind::kString ? f.str : std::string_view{};
    } else if (f.key == "execution") {
      as_int(f, &have_exec, &exec);
    } else if (f.key == "period") {
      as_int(f, &have_period, &period);
    } else if (f.key == "task") {
      as_int(f, &have_task, &task_raw);
    } else if (f.key == "to") {
      as_int(f, &have_to, &to);
    } else if (f.key == "name") {
      name = f.kind == FlatField::Kind::kString ? f.str : std::string_view{};
    }
  }
  Request r;
  if (op == "join" || op == "reweight") {
    r.op = op == "join" ? RequestOp::kJoin : RequestOp::kReweight;
    if (!have_exec || !have_period) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.execution = exec;
    r.period = period;
    if (r.op == RequestOp::kJoin) {
      r.name = std::string(name);
    } else {
      if (!have_task || task_raw < 0 || task_raw >= kNoTask) {
        fail(error, "bad-field");
        return std::nullopt;
      }
      r.task = static_cast<TaskId>(task_raw);
    }
    return r;
  }
  if (op == "leave") {
    r.op = RequestOp::kLeave;
    if (!have_task || task_raw < 0 || task_raw >= kNoTask) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.task = static_cast<TaskId>(task_raw);
    return r;
  }
  if (op == "query") {
    r.op = RequestOp::kQuery;
    return r;
  }
  if (op == "advance") {
    r.op = RequestOp::kAdvance;
    if (!have_to || to < 0) {
      fail(error, "bad-field");
      return std::nullopt;
    }
    r.to = to;
    return r;
  }
  fail(error, "bad-op");
  return std::nullopt;
}

}  // namespace

std::optional<Request> parse_request(std::string_view line, std::string* error) {
  // Hot path: the daemon parses one line per decision, and nearly all
  // of them are flat objects this scanner handles without building a
  // DOM.  "batch" lines carry a nested array, so they (and anything
  // else unusual) take the full parser below.
  thread_local std::vector<FlatField> fields;
  if (scan_flat(line, fields)) {
    bool is_batch = false;
    for (const FlatField& f : fields)
      if (f.key == "op" && f.kind == FlatField::Kind::kString && f.str == "batch")
        is_batch = true;
    if (!is_batch) return request_from_flat(fields, error);
    // A flat "batch" has no parseable "requests" array; let the DOM
    // parser produce the authoritative bad-field/bad-json verdict.
  }
  const std::optional<obs::json::Value> doc = obs::json::parse(line);
  if (!doc.has_value()) {
    fail(error, "bad-json");
    return std::nullopt;
  }
  return parse_request_value(*doc, error, true);
}

namespace {

[[nodiscard]] obs::json::Object request_object(const Request& r) {
  obs::json::Object o;
  o["op"] = obs::json::Value(std::string(to_string(r.op)));
  switch (r.op) {
    case RequestOp::kJoin:
      o["execution"] = obs::json::Value(static_cast<double>(r.execution));
      o["period"] = obs::json::Value(static_cast<double>(r.period));
      if (!r.name.empty()) o["name"] = obs::json::Value(r.name);
      break;
    case RequestOp::kReweight:
      o["execution"] = obs::json::Value(static_cast<double>(r.execution));
      o["period"] = obs::json::Value(static_cast<double>(r.period));
      o["task"] = obs::json::Value(static_cast<double>(r.task));
      break;
    case RequestOp::kLeave:
      o["task"] = obs::json::Value(static_cast<double>(r.task));
      break;
    case RequestOp::kQuery:
      break;
    case RequestOp::kAdvance:
      o["to"] = obs::json::Value(static_cast<double>(r.to));
      break;
    case RequestOp::kBatch: {
      obs::json::Array subs;
      subs.reserve(r.batch.size());
      for (const Request& sub : r.batch)
        subs.push_back(obs::json::Value(request_object(sub)));
      o["requests"] = obs::json::Value(std::move(subs));
      break;
    }
  }
  return o;
}

}  // namespace

std::string dump_request(const Request& r) {
  return obs::json::Value(request_object(r)).dump();
}

std::string batch_requests(std::string_view jsonl, std::size_t size) {
  if (size < 2) return std::string(jsonl);
  std::string out;
  out.reserve(jsonl.size() + jsonl.size() / 16);
  Request group;
  group.op = RequestOp::kBatch;
  const auto flush = [&] {
    if (group.batch.empty()) return;
    out += dump_request(group);
    out += '\n';
    group.batch.clear();
  };
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', pos);
    const std::string_view line =
        jsonl.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? jsonl.size() : nl + 1;
    if (line.empty()) continue;
    const std::optional<Request> r = parse_request(line);
    if (!r.has_value() || r->op == RequestOp::kBatch) {
      // Unparseable or already batched: keep the line as-is so the
      // daemon still answers it (its error reply is part of the log).
      flush();
      out += line;
      out += '\n';
      continue;
    }
    group.batch.push_back(*r);
    if (group.batch.size() >= size) flush();
  }
  flush();
  return out;
}

std::string generate_requests(const GenConfig& config) {
  Rng rng(config.seed);
  std::string out;
  out.reserve(config.count * 48);
  Time clock = 0;
  // Ids the daemon will have assigned are unknowable here (rejected
  // joins get no id), so leave/reweight draw from the range of ids that
  // *could* exist; misses exercise the daemon's unknown-task reply,
  // which is itself part of the deterministic decision log.
  std::int64_t joins = 0;
  const double u_hi = std::clamp(0.25 * config.load, 0.05, 1.0);
  for (std::size_t i = 0; i < config.count; ++i) {
    Request r;
    const std::int64_t roll = rng.uniform_int(0, 15);
    if (roll <= 8 || joins == 0) {
      r.op = RequestOp::kJoin;
      r.period = rng.uniform_int(2, config.max_period);
      const double u = rng.uniform(0.02, u_hi);
      r.execution = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::lround(static_cast<double>(r.period) * u)),
          1, r.period);
      ++joins;
    } else if (roll <= 10) {
      r.op = RequestOp::kLeave;
      r.task = static_cast<TaskId>(rng.uniform_int(0, joins - 1));
    } else if (roll <= 12) {
      r.op = RequestOp::kReweight;
      r.task = static_cast<TaskId>(rng.uniform_int(0, joins - 1));
      r.period = rng.uniform_int(2, config.max_period);
      const double u = rng.uniform(0.02, u_hi);
      r.execution = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::lround(static_cast<double>(r.period) * u)),
          1, r.period);
    } else if (roll == 13) {
      r.op = RequestOp::kQuery;
    } else {
      r.op = RequestOp::kAdvance;
      clock += rng.uniform_int(1, 4);
      r.to = clock;
    }
    out += dump_request(r);
    out += '\n';
  }
  return out;
}

}  // namespace pfair::serve
