#include "serve/admission.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "engine/parallel.h"
#include "overhead/inflation.h"
#include "uniproc/analysis.h"

namespace pfair::serve {

namespace {

using engine::SchedulerKind;

[[nodiscard]] Rational weight_of(const UniTask& t) noexcept {
  return Rational(t.execution, t.period);
}

[[nodiscard]] Decision yes(int tier, const char* reason) noexcept {
  return Decision{true, tier, false, reason, 0};
}
[[nodiscard]] Decision no(int tier, const char* reason) noexcept {
  return Decision{false, tier, false, reason, 0};
}

/// Only the kinds whose Tier-0 bounds take order statistics (GFB's
/// u_max, Lopez's beta) pay for the per-shard weight multisets.
[[nodiscard]] bool needs_weight_multiset(SchedulerKind kind) noexcept {
  return kind == SchedulerKind::kPartitioned || kind == SchedulerKind::kGlobalJob;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config),
      mirror_(config.mirror_shards, needs_weight_multiset(config.kind)) {
  if (config_.processors < 1) config_.processors = 1;
}

int AdmissionController::gate_processors() const noexcept {
  // Uniprocessor stacks always judge against one processor no matter
  // what the daemon was started with.
  switch (config_.kind) {
    case SchedulerKind::kUniproc:
    case SchedulerKind::kCbs:
      return 1;
    default:
      return config_.processors;
  }
}

OverheadParams AdmissionController::tier1_params() const {
  if (config_.overhead_aware) return config_.overhead;
  // Identity inflation: zero context switch, zero scheduling-cost
  // tables.  Tier 1 then reduces to the plain (overhead-free) test —
  // e.g. pure first-fit EDF packing for the partitioned kind.
  OverheadParams p;
  p.context_switch_us = 0.0;
  p.quantum_us = config_.overhead.quantum_us;
  p.sched = SchedCostModel{};
  return p;
}

std::vector<OhTask> AdmissionController::oh_workload(const UniTask& extra,
                                                     TaskId exclude) const {
  // Pfair tasks are stated in quanta; the Eq.-(3) machinery works in
  // microseconds, so scale by the quantum.  The job-level kinds use
  // abstract time units the benches already treat as microseconds.
  const double scale = config_.kind == SchedulerKind::kPfair ? config_.overhead.quantum_us : 1.0;
  const double delay = config_.overhead_aware ? config_.cache_delay_us : 0.0;
  const std::vector<UniTask> tasks = mirror_.workload_with(extra, exclude);
  std::vector<OhTask> out;
  out.reserve(tasks.size());
  for (const UniTask& t : tasks)
    out.push_back(OhTask{static_cast<double>(t.execution) * scale,
                         static_cast<double>(t.period) * scale, delay});
  return out;
}

void AdmissionController::commit(TaskId id, const UniTask& t) {
  mirror_.upsert(id, t);
}

void AdmissionController::schedule_release(TaskId id, Time at) {
  pending_.push(PendingChange{at, id, pending_seq_++, true, UniTask{}});
}

void AdmissionController::schedule_reweight(TaskId id, const UniTask& t, Time at) {
  pending_.push(PendingChange{at, id, pending_seq_++, false, t});
}

void AdmissionController::advance_to(Time now) {
  // The heap pops in (time, id, submission) order — the exact order the
  // PR-8 stable sort applied changes in — but pays O(log k) per due
  // change instead of re-sorting the whole queue on every advance.
  while (!pending_.empty() && pending_.top().at <= now) {
    const PendingChange c = pending_.top();
    pending_.pop();
    const UniTask* cur = mirror_.find(c.id);
    if (cur == nullptr) continue;  // task already gone
    if (c.remove) {
      mirror_.erase(c.id);
    } else {
      mirror_.upsert(c.id, c.task);
    }
  }
}

Decision AdmissionController::decide_join(const UniTask& t) const {
  return decide(t, kNoTask);
}

Decision AdmissionController::decide_reweight(TaskId id, const UniTask& t) const {
  if (mirror_.find(id) == nullptr) return no(0, "unknown-task");
  return decide(t, id);
}

Decision AdmissionController::decide(const UniTask& t, TaskId exclude) const {
  if (!t.valid()) return no(0, "invalid");
  if (const std::optional<Decision> d0 = tier0(t, exclude)) return *d0;
  const Decision d1 = tier1(t, exclude);
  // Every Tier-1 test is sufficient, so its admits are safe to trust;
  // only its (possibly provisional) rejects are worth escalating, and
  // only for the kinds that have an exact Tier-2 test.
  if (d1.admit) return d1;
  if (const std::optional<Decision> d2 = tier2(t, exclude)) return *d2;
  return d1;
}

std::optional<Decision> AdmissionController::tier0(const UniTask& t, TaskId exclude) const {
  if (!t.valid()) return no(0, "invalid");
  const Rational w = weight_of(t);
  const int m = gate_processors();
  const Rational after = mirror_.total_excluding(exclude) + w;
  switch (config_.kind) {
    case SchedulerKind::kPfair:
    case SchedulerKind::kWrr:
      // Eq. (2) is exact for PD2 (optimal), so both sides decide; WRR
      // gets the same capacity gate (it offers no deadline guarantee
      // for the gate to strengthen).
      if (after > Rational(m)) return no(0, "eq2");
      if (config_.kind == SchedulerKind::kWrr || !config_.overhead_aware)
        return yes(0, "eq2");
      return std::nullopt;  // overhead-aware: Eq. (3) must confirm
    case SchedulerKind::kBf:
    case SchedulerKind::kRun:
      // Both are optimal (every set with sum wt <= M is schedulable),
      // so Eq. (2) is exact and Tier 0 always decides; neither has an
      // Eq.-(3) overhead model to defer to.
      return after <= Rational(m) ? yes(0, "eq2") : no(0, "eq2");
    case SchedulerKind::kUniproc:
      if (config_.algorithm == UniAlgorithm::kRM) {
        if (after > Rational(1)) return no(0, "utilization");
        if (!config_.overhead_aware &&
            after.to_double() <= rm_utilization_bound(mirror_.count_excluding(exclude) + 1))
          return yes(0, "ll-bound");
        return std::nullopt;  // between LL and 1: exact RTA decides
      }
      [[fallthrough]];
    case SchedulerKind::kCbs:
      // EDF on one processor: U <= 1 is exact [Liu & Layland].
      if (after > Rational(1)) return no(0, "edf-utilization");
      if (!config_.overhead_aware) return yes(0, "edf-utilization");
      return std::nullopt;
    case SchedulerKind::kPartitioned: {
      if (after > Rational(m)) return no(0, "utilization");
      if (config_.overhead_aware) return std::nullopt;  // packing must confirm
      const Rational u_max = mirror_.u_max_with(w, exclude);
      const std::int64_t beta = std::max<std::int64_t>(1, u_max.den() / u_max.num());
      if (after <= lopez_edf_ff_bound(m, beta)) return yes(0, "lopez");
      return std::nullopt;  // above the bound: try the actual packing
    }
    case SchedulerKind::kGlobalJob: {
      if (after > Rational(m)) return no(0, "utilization");
      if (config_.algorithm == UniAlgorithm::kEDF && !config_.overhead_aware) {
        const Rational u_max = mirror_.u_max_with(w, exclude);
        if (after <= Rational(m) - Rational(m - 1) * u_max) return yes(0, "gfb");
      }
      return std::nullopt;  // Dhall territory: exact test decides
    }
  }
  return std::nullopt;
}

Decision AdmissionController::tier1(const UniTask& t, TaskId exclude) const {
  if (!t.valid()) return no(1, "invalid");
  const int m = gate_processors();
  const OverheadParams params = tier1_params();
  switch (config_.kind) {
    case SchedulerKind::kPfair: {
      const std::vector<OhTask> tasks = oh_workload(t, exclude);
      const std::optional<int> need = pd2_min_processors(tasks, params, m);
      const bool ok = need.has_value() && *need <= m;
      return ok ? yes(1, "eq3-pd2") : no(1, "eq3-pd2");
    }
    case SchedulerKind::kWrr:
    case SchedulerKind::kBf:
    case SchedulerKind::kRun: {
      const Rational after = mirror_.total_excluding(exclude) + weight_of(t);
      return after <= Rational(m) ? yes(1, "eq2") : no(1, "eq2");
    }
    case SchedulerKind::kUniproc:
      if (config_.algorithm == UniAlgorithm::kRM) {
        // LL on (inflated) utilizations; a reject here is provisional —
        // Tier 2's response-time analysis has the last word.
        const std::vector<OhTask> tasks = oh_workload(t, exclude);
        double u = 0.0;
        for (const OhTask& task : tasks)
          u += inflate_edf_us(task, config_.overhead_aware ? config_.cache_delay_us : 0.0,
                              params, tasks.size()) /
               task.period_us;
        const bool ok = u <= rm_utilization_bound(tasks.size());
        return ok ? yes(1, "ll-bound") : no(1, "ll-bound");
      }
      [[fallthrough]];
    case SchedulerKind::kCbs: {
      const std::vector<OhTask> tasks = oh_workload(t, exclude);
      double u = 0.0;
      for (const OhTask& task : tasks)
        u += inflate_edf_us(task, config_.overhead_aware ? config_.cache_delay_us : 0.0,
                            params, tasks.size()) /
             task.period_us;
      const char* reason = config_.overhead_aware ? "eq3-edf" : "edf-utilization";
      return u <= 1.0 ? yes(1, reason) : no(1, reason);
    }
    case SchedulerKind::kPartitioned: {
      const EdfFfResult r = edf_ff_partition(oh_workload(t, exclude), params, m);
      return r.feasible ? yes(1, "ff-packed") : no(1, "ff-unpacked");
    }
    case SchedulerKind::kGlobalJob: {
      if (config_.algorithm == UniAlgorithm::kEDF && config_.overhead_aware) {
        // GFB over inflated utilizations.  Under global EDF any task
        // may preempt any other, so every task is charged the full
        // cache delay.
        const std::vector<OhTask> tasks = oh_workload(t, exclude);
        double u = 0.0;
        double u_max = 0.0;
        for (const OhTask& task : tasks) {
          const double ui =
              inflate_edf_us(task, config_.cache_delay_us, params, tasks.size()) /
              task.period_us;
          u += ui;
          u_max = std::max(u_max, ui);
        }
        if (u > static_cast<double>(m)) return no(1, "eq3-utilization");
        if (u <= static_cast<double>(m) - static_cast<double>(m - 1) * u_max)
          return yes(1, "eq3-gfb");
      }
      // No sufficient bound holds; this reject is provisional and the
      // exact Tier-2 test normally overrides it.
      return no(1, "no-bound");
    }
  }
  return no(1, "no-bound");
}

bool AdmissionController::tier2_applies() const noexcept {
  return config_.kind == SchedulerKind::kGlobalJob ||
         (config_.kind == SchedulerKind::kUniproc &&
          config_.algorithm == UniAlgorithm::kRM);
}

AdmissionController::CachedExact AdmissionController::tier2_compute(
    const UniTask& t, TaskId exclude) const {
  CachedExact e;
  if (config_.kind == SchedulerKind::kGlobalJob) {
    e.gedf = exact_global_schedulable(mirror_.workload_with(t, exclude),
                                      gate_processors(), config_.algorithm,
                                      config_.exact_budget);
  } else {
    e.rm_ok = rm_schedulable_exact(mirror_.workload_with(t, exclude));
  }
  return e;
}

AdmissionController::CachedExact AdmissionController::tier2_cached(
    const UniTask& t, TaskId exclude) const {
  if (config_.memo_capacity == 0) {
    ++memo_misses_;
    return tier2_compute(t, exclude);
  }
  // The exact tests are pure functions of the judged multiset (the
  // workload is canonical in (period, execution) order), so the
  // mirror's multiset fingerprint keys them completely: a hit returns
  // the bit-identical GedfResult a cold run would have produced.
  const MirrorFingerprint fp = mirror_.fingerprint_with(t, exclude);
  const auto it = memo_.find(fp);
  if (it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }
  ++memo_misses_;
  const CachedExact e = tier2_compute(t, exclude);
  if (memo_.size() >= config_.memo_capacity) memo_.clear();
  memo_.emplace(fp, e);
  return e;
}

Decision AdmissionController::tier2_decision(const CachedExact& e, const UniTask& t,
                                             TaskId exclude) const {
  if (config_.kind == SchedulerKind::kGlobalJob) {
    if (e.gedf.verdict == GedfVerdict::kBudgetExceeded) {
      // Out of budget before reaching H: fall back to Tier 1's answer,
      // marked approximate (ISSUE contract).
      Decision d = tier1(t, exclude);
      d.approx = true;
      d.exact_events = e.gedf.events;
      return d;
    }
    Decision d = e.gedf.verdict == GedfVerdict::kSchedulable ? yes(2, "exact-gedf")
                                                             : no(2, "exact-gedf");
    d.exact_events = e.gedf.events;
    return d;
  }
  return e.rm_ok ? yes(2, "rm-exact") : no(2, "rm-exact");
}

std::optional<Decision> AdmissionController::tier2(const UniTask& t, TaskId exclude) const {
  if (!t.valid() || config_.exact_budget == 0 || !tier2_applies()) return std::nullopt;
  return tier2_decision(tier2_cached(t, exclude), t, exclude);
}

void AdmissionController::prewarm_tier2(
    const std::vector<std::pair<UniTask, TaskId>>& candidates,
    engine::ThreadPool* pool) const {
  if (config_.memo_capacity == 0 || config_.exact_budget == 0 || !tier2_applies())
    return;
  struct Job {
    MirrorFingerprint fp;
    UniTask task;
    TaskId exclude = kNoTask;
    CachedExact out;
  };
  std::vector<Job> jobs;
  for (const auto& [t, exclude] : candidates) {
    if (!t.valid()) continue;
    // decide_reweight answers "unknown-task" before Tier 2.
    if (exclude != kNoTask && mirror_.find(exclude) == nullptr) continue;
    if (tier0(t, exclude).has_value()) continue;
    if (tier1(t, exclude).admit) continue;
    const MirrorFingerprint fp = mirror_.fingerprint_with(t, exclude);
    if (memo_.find(fp) != memo_.end()) continue;
    bool dup = false;
    for (const Job& j : jobs)
      if (j.fp == fp) {
        dup = true;
        break;
      }
    if (dup) continue;
    jobs.push_back(Job{fp, t, exclude, CachedExact{}});
  }
  if (jobs.empty()) return;
  if (pool == nullptr || jobs.size() == 1) {
    for (Job& j : jobs) j.out = tier2_compute(j.task, j.exclude);
  } else {
    // Workers read the mirror (const) and write disjoint slots; the
    // memo itself is only touched below, after the pool drains.
    for (Job& j : jobs)
      pool->submit([this, &j] { j.out = tier2_compute(j.task, j.exclude); });
    pool->wait();
  }
  for (Job& j : jobs) {
    if (memo_.size() >= config_.memo_capacity) memo_.clear();
    memo_.emplace(j.fp, j.out);
  }
}

}  // namespace pfair::serve
