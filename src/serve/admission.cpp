#include "serve/admission.h"

#include <algorithm>
#include <optional>

#include "overhead/inflation.h"
#include "serve/exact_gedf.h"
#include "uniproc/analysis.h"

namespace pfair::serve {

namespace {

using engine::SchedulerKind;

[[nodiscard]] Rational weight_of(const UniTask& t) noexcept {
  return Rational(t.execution, t.period);
}

[[nodiscard]] Decision yes(int tier, const char* reason) noexcept {
  return Decision{true, tier, false, reason, 0};
}
[[nodiscard]] Decision no(int tier, const char* reason) noexcept {
  return Decision{false, tier, false, reason, 0};
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config) : config_(config) {
  if (config_.processors < 1) config_.processors = 1;
}

int AdmissionController::gate_processors() const noexcept {
  // Uniprocessor stacks always judge against one processor no matter
  // what the daemon was started with.
  switch (config_.kind) {
    case SchedulerKind::kUniproc:
    case SchedulerKind::kCbs:
      return 1;
    default:
      return config_.processors;
  }
}

OverheadParams AdmissionController::tier1_params() const {
  if (config_.overhead_aware) return config_.overhead;
  // Identity inflation: zero context switch, zero scheduling-cost
  // tables.  Tier 1 then reduces to the plain (overhead-free) test —
  // e.g. pure first-fit EDF packing for the partitioned kind.
  OverheadParams p;
  p.context_switch_us = 0.0;
  p.quantum_us = config_.overhead.quantum_us;
  p.sched = SchedCostModel{};
  return p;
}

std::vector<OhTask> AdmissionController::oh_workload(const UniTask& extra,
                                                     TaskId exclude) const {
  // Pfair tasks are stated in quanta; the Eq.-(3) machinery works in
  // microseconds, so scale by the quantum.  The job-level kinds use
  // abstract time units the benches already treat as microseconds.
  const double scale = config_.kind == SchedulerKind::kPfair ? config_.overhead.quantum_us : 1.0;
  const double delay = config_.overhead_aware ? config_.cache_delay_us : 0.0;
  std::vector<OhTask> out;
  out.reserve(tasks_.size() + 1);
  const auto push = [&](const UniTask& t) {
    out.push_back(OhTask{static_cast<double>(t.execution) * scale,
                         static_cast<double>(t.period) * scale, delay});
  };
  for (const auto& [id, t] : tasks_) {
    if (id == exclude) continue;
    push(t);
  }
  push(extra);
  return out;
}

std::vector<UniTask> AdmissionController::workload_with(const UniTask& extra,
                                                        TaskId exclude) const {
  std::vector<UniTask> out;
  out.reserve(tasks_.size() + 1);
  for (const auto& [id, t] : tasks_) {
    if (id == exclude) continue;
    out.push_back(t);
  }
  out.push_back(extra);
  return out;
}

Rational AdmissionController::total_excluding(TaskId exclude) const {
  if (exclude == kNoTask) return total_;
  const auto it = tasks_.find(exclude);
  if (it == tasks_.end()) return total_;
  return total_ - weight_of(it->second);
}

Rational AdmissionController::u_max_with(const Rational& candidate, TaskId exclude) const {
  Rational best = candidate;
  Rational excluded_weight(-1);
  if (exclude != kNoTask) {
    const auto it = tasks_.find(exclude);
    if (it != tasks_.end()) excluded_weight = weight_of(it->second);
  }
  // weights_ is sorted ascending; walk from the top and take the first
  // entry that survives the exclusion.
  for (auto it = weights_.rbegin(); it != weights_.rend(); ++it) {
    int count = it->second;
    if (it->first == excluded_weight) --count;
    if (count > 0) {
      if (best < it->first) best = it->first;
      break;
    }
  }
  return best;
}

std::size_t AdmissionController::count_excluding(TaskId exclude) const {
  if (exclude != kNoTask && tasks_.count(exclude) > 0) return tasks_.size() - 1;
  return tasks_.size();
}

void AdmissionController::add_weight(const UniTask& t) {
  const Rational w = weight_of(t);
  total_ += w;
  ++weights_[w];
}

void AdmissionController::remove_weight(const UniTask& t) {
  const Rational w = weight_of(t);
  total_ -= w;
  const auto it = weights_.find(w);
  if (it != weights_.end() && --it->second == 0) weights_.erase(it);
}

void AdmissionController::commit(TaskId id, const UniTask& t) {
  const auto it = tasks_.find(id);
  if (it != tasks_.end()) remove_weight(it->second);
  tasks_[id] = t;
  add_weight(t);
}

void AdmissionController::schedule_release(TaskId id, Time at) {
  pending_.push_back(PendingChange{at, id, true, UniTask{}});
}

void AdmissionController::schedule_reweight(TaskId id, const UniTask& t, Time at) {
  pending_.push_back(PendingChange{at, id, false, t});
}

void AdmissionController::advance_to(Time now) {
  if (pending_.empty()) return;
  // Apply in (time, id) order so replays are deterministic no matter
  // the order requests arrived within one batch.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingChange& a, const PendingChange& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.id < b.id;
                   });
  std::size_t applied = 0;
  for (const PendingChange& c : pending_) {
    if (c.at > now) break;
    ++applied;
    const auto it = tasks_.find(c.id);
    if (it == tasks_.end()) continue;  // task already gone
    remove_weight(it->second);
    if (c.remove) {
      tasks_.erase(it);
    } else {
      it->second = c.task;
      add_weight(c.task);
    }
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(applied));
}

Decision AdmissionController::decide_join(const UniTask& t) const {
  return decide(t, kNoTask);
}

Decision AdmissionController::decide_reweight(TaskId id, const UniTask& t) const {
  if (tasks_.count(id) == 0) return no(0, "unknown-task");
  return decide(t, id);
}

Decision AdmissionController::decide(const UniTask& t, TaskId exclude) const {
  if (!t.valid()) return no(0, "invalid");
  if (const std::optional<Decision> d0 = tier0(t, exclude)) return *d0;
  const Decision d1 = tier1(t, exclude);
  // Every Tier-1 test is sufficient, so its admits are safe to trust;
  // only its (possibly provisional) rejects are worth escalating, and
  // only for the kinds that have an exact Tier-2 test.
  if (d1.admit) return d1;
  if (const std::optional<Decision> d2 = tier2(t, exclude)) return *d2;
  return d1;
}

std::optional<Decision> AdmissionController::tier0(const UniTask& t, TaskId exclude) const {
  if (!t.valid()) return no(0, "invalid");
  const Rational w = weight_of(t);
  const int m = gate_processors();
  const Rational after = total_excluding(exclude) + w;
  switch (config_.kind) {
    case SchedulerKind::kPfair:
    case SchedulerKind::kWrr:
      // Eq. (2) is exact for PD2 (optimal), so both sides decide; WRR
      // gets the same capacity gate (it offers no deadline guarantee
      // for the gate to strengthen).
      if (after > Rational(m)) return no(0, "eq2");
      if (config_.kind == SchedulerKind::kWrr || !config_.overhead_aware)
        return yes(0, "eq2");
      return std::nullopt;  // overhead-aware: Eq. (3) must confirm
    case SchedulerKind::kBf:
    case SchedulerKind::kRun:
      // Both are optimal (every set with sum wt <= M is schedulable),
      // so Eq. (2) is exact and Tier 0 always decides; neither has an
      // Eq.-(3) overhead model to defer to.
      return after <= Rational(m) ? yes(0, "eq2") : no(0, "eq2");
    case SchedulerKind::kUniproc:
      if (config_.algorithm == UniAlgorithm::kRM) {
        if (after > Rational(1)) return no(0, "utilization");
        if (!config_.overhead_aware &&
            after.to_double() <= rm_utilization_bound(count_excluding(exclude) + 1))
          return yes(0, "ll-bound");
        return std::nullopt;  // between LL and 1: exact RTA decides
      }
      [[fallthrough]];
    case SchedulerKind::kCbs:
      // EDF on one processor: U <= 1 is exact [Liu & Layland].
      if (after > Rational(1)) return no(0, "edf-utilization");
      if (!config_.overhead_aware) return yes(0, "edf-utilization");
      return std::nullopt;
    case SchedulerKind::kPartitioned: {
      if (after > Rational(m)) return no(0, "utilization");
      if (config_.overhead_aware) return std::nullopt;  // packing must confirm
      const Rational u_max = u_max_with(w, exclude);
      const std::int64_t beta = std::max<std::int64_t>(1, u_max.den() / u_max.num());
      if (after <= lopez_edf_ff_bound(m, beta)) return yes(0, "lopez");
      return std::nullopt;  // above the bound: try the actual packing
    }
    case SchedulerKind::kGlobalJob: {
      if (after > Rational(m)) return no(0, "utilization");
      if (config_.algorithm == UniAlgorithm::kEDF && !config_.overhead_aware) {
        const Rational u_max = u_max_with(w, exclude);
        if (after <= Rational(m) - Rational(m - 1) * u_max) return yes(0, "gfb");
      }
      return std::nullopt;  // Dhall territory: exact test decides
    }
  }
  return std::nullopt;
}

Decision AdmissionController::tier1(const UniTask& t, TaskId exclude) const {
  if (!t.valid()) return no(1, "invalid");
  const int m = gate_processors();
  const OverheadParams params = tier1_params();
  switch (config_.kind) {
    case SchedulerKind::kPfair: {
      const std::vector<OhTask> tasks = oh_workload(t, exclude);
      const std::optional<int> need = pd2_min_processors(tasks, params, m);
      const bool ok = need.has_value() && *need <= m;
      return ok ? yes(1, "eq3-pd2") : no(1, "eq3-pd2");
    }
    case SchedulerKind::kWrr:
    case SchedulerKind::kBf:
    case SchedulerKind::kRun: {
      const Rational after = total_excluding(exclude) + weight_of(t);
      return after <= Rational(m) ? yes(1, "eq2") : no(1, "eq2");
    }
    case SchedulerKind::kUniproc:
      if (config_.algorithm == UniAlgorithm::kRM) {
        // LL on (inflated) utilizations; a reject here is provisional —
        // Tier 2's response-time analysis has the last word.
        const std::vector<OhTask> tasks = oh_workload(t, exclude);
        double u = 0.0;
        for (const OhTask& task : tasks)
          u += inflate_edf_us(task, config_.overhead_aware ? config_.cache_delay_us : 0.0,
                              params, tasks.size()) /
               task.period_us;
        const bool ok = u <= rm_utilization_bound(tasks.size());
        return ok ? yes(1, "ll-bound") : no(1, "ll-bound");
      }
      [[fallthrough]];
    case SchedulerKind::kCbs: {
      const std::vector<OhTask> tasks = oh_workload(t, exclude);
      double u = 0.0;
      for (const OhTask& task : tasks)
        u += inflate_edf_us(task, config_.overhead_aware ? config_.cache_delay_us : 0.0,
                            params, tasks.size()) /
             task.period_us;
      const char* reason = config_.overhead_aware ? "eq3-edf" : "edf-utilization";
      return u <= 1.0 ? yes(1, reason) : no(1, reason);
    }
    case SchedulerKind::kPartitioned: {
      const EdfFfResult r = edf_ff_partition(oh_workload(t, exclude), params, m);
      return r.feasible ? yes(1, "ff-packed") : no(1, "ff-unpacked");
    }
    case SchedulerKind::kGlobalJob: {
      if (config_.algorithm == UniAlgorithm::kEDF && config_.overhead_aware) {
        // GFB over inflated utilizations.  Under global EDF any task
        // may preempt any other, so every task is charged the full
        // cache delay.
        const std::vector<OhTask> tasks = oh_workload(t, exclude);
        double u = 0.0;
        double u_max = 0.0;
        for (const OhTask& task : tasks) {
          const double ui =
              inflate_edf_us(task, config_.cache_delay_us, params, tasks.size()) /
              task.period_us;
          u += ui;
          u_max = std::max(u_max, ui);
        }
        if (u > static_cast<double>(m)) return no(1, "eq3-utilization");
        if (u <= static_cast<double>(m) - static_cast<double>(m - 1) * u_max)
          return yes(1, "eq3-gfb");
      }
      // No sufficient bound holds; this reject is provisional and the
      // exact Tier-2 test normally overrides it.
      return no(1, "no-bound");
    }
  }
  return no(1, "no-bound");
}

std::optional<Decision> AdmissionController::tier2(const UniTask& t, TaskId exclude) const {
  if (!t.valid() || config_.exact_budget == 0) return std::nullopt;
  switch (config_.kind) {
    case SchedulerKind::kGlobalJob: {
      const GedfResult r = exact_global_schedulable(workload_with(t, exclude),
                                                    gate_processors(), config_.algorithm,
                                                    config_.exact_budget);
      if (r.verdict == GedfVerdict::kBudgetExceeded) {
        // Out of budget before reaching H: fall back to Tier 1's
        // answer, marked approximate (ISSUE contract).
        Decision d = tier1(t, exclude);
        d.approx = true;
        d.exact_events = r.events;
        return d;
      }
      Decision d = r.verdict == GedfVerdict::kSchedulable ? yes(2, "exact-gedf")
                                                          : no(2, "exact-gedf");
      d.exact_events = r.events;
      return d;
    }
    case SchedulerKind::kUniproc:
      if (config_.algorithm == UniAlgorithm::kRM) {
        const bool ok = rm_schedulable_exact(workload_with(t, exclude));
        return ok ? yes(2, "rm-exact") : no(2, "rm-exact");
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace pfair::serve
