// Tiered admission gate for the pfaird serving daemon.
//
// Every join (and reweight) request is decided by the cheapest test
// that can give a definitive answer for the scheduler being served:
//
//   Tier 0 — O(1)/O(log n) utilization arithmetic: the exact Eq.-(2)
//            bound for Pfair (sum of weights <= M, exact because PD2 is
//            optimal), the Lopez et al. (beta*M + 1)/(beta + 1) bound
//            for partitioned EDF-FF, the GFB density bound for global
//            EDF, U <= 1 for uniprocessor EDF, the Liu-Layland bound
//            for RM.
//   Tier 1 — O(n)/O(n log n) refinement: Eq.-(3) overhead-aware
//            inflation (PD2 fixed point / EDF-FF packing with inflated
//            costs), or the plain first-fit packing when overheads are
//            off.
//   Tier 2 — exact: the hyperperiod-exact global EDF/RM test
//            (serve/exact_gedf.h) under an event budget, or
//            response-time analysis for uniprocessor RM.  When the
//            budget runs out, the gate answers with Tier 1's verdict
//            marked `approx`.
//
// The controller mirrors the admitted task set (exact Rational totals,
// weight multiset for u_max) instead of reaching into the simulator, so
// decisions are pure functions of the request history — a recorded
// request log replays to byte-identical decisions on any host.
// Departures free capacity at the time the scheduler's leave rules
// dictate: the daemon schedules a pending release and the controller
// applies it when the clock reaches it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "engine/factory.h"
#include "overhead/inflation.h"  // OhTask
#include "overhead/params.h"
#include "uniproc/uni_task.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair::serve {

struct AdmissionConfig {
  engine::SchedulerKind kind = engine::SchedulerKind::kPfair;
  int processors = 1;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;  ///< uniproc / global-job flavour
  bool overhead_aware = false;  ///< run Tier 1 with Eq.-(3) inflation
  OverheadParams overhead;      ///< Eq.-(3) inputs when overhead_aware
  double cache_delay_us = 33.3; ///< D(T) charged to every task (paper mean)
  std::uint64_t exact_budget = 1u << 20;  ///< Tier-2 event budget (0 = Tier 2 off)
};

struct Decision {
  bool admit = false;
  int tier = 0;          ///< tier that produced the answer (0, 1, or 2)
  bool approx = false;   ///< Tier-2 budget exhausted: this is Tier 1's answer
  const char* reason = "";  ///< stable short token for the decision log
  std::uint64_t exact_events = 0;  ///< Tier-2 events spent (0 when Tier 2 unused)
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Applies every pending capacity release / reweight whose time has
  /// arrived.  Call before deciding at time `now`.
  void advance_to(Time now);

  /// Decides admission of a task of rate t on top of the committed set.
  /// Pure: does not change the mirror.
  [[nodiscard]] Decision decide_join(const UniTask& t) const;

  /// Decides a reweight of committed task `id` to rate t: the old
  /// weight is excluded, the new one checked in its place.
  [[nodiscard]] Decision decide_reweight(TaskId id, const UniTask& t) const;

  /// Records an admitted task under the simulator's id.
  void commit(TaskId id, const UniTask& t);

  /// Schedules `id`'s capacity to free at time `at` (the scheduler's
  /// leave rules); the weight stays counted until advance_to(at).
  void schedule_release(TaskId id, Time at);

  /// Schedules `id` to switch to rate t at time `at`.  Until then the
  /// old weight stays counted (matching PfairSimulator's orderly
  /// reweight, where the exchange happens at the switch-over slot).
  void schedule_reweight(TaskId id, const UniTask& t, Time at);

  [[nodiscard]] Rational total_weight() const noexcept { return total_; }
  [[nodiscard]] std::size_t committed() const noexcept { return tasks_.size(); }
  [[nodiscard]] const AdmissionConfig& config() const noexcept { return config_; }

  // --- per-tier probes (tests and the daemon's tier accounting) ---
  /// Tier-0 answer, or no value when the O(1) bounds cannot decide.
  [[nodiscard]] std::optional<Decision> tier0(const UniTask& t, TaskId exclude = kNoTask) const;
  /// Tier-1 answer (always decides; its reject may be overturned by
  /// Tier 2 for global EDF/RM).
  [[nodiscard]] Decision tier1(const UniTask& t, TaskId exclude = kNoTask) const;
  /// Tier-2 exact answer for the kinds that have one.
  [[nodiscard]] std::optional<Decision> tier2(const UniTask& t, TaskId exclude = kNoTask) const;

 private:
  struct PendingChange {
    Time at = 0;
    TaskId id = kNoTask;
    bool remove = true;   ///< false = reweight to `task`
    UniTask task;
  };

  [[nodiscard]] Decision decide(const UniTask& t, TaskId exclude) const;
  /// Processors the gate judges against (1 for the uniproc stacks).
  [[nodiscard]] int gate_processors() const noexcept;
  /// Eq.-(3) inputs for Tier 1: the configured overheads, or identity
  /// inflation (all-zero costs) when overheads are off.
  [[nodiscard]] OverheadParams tier1_params() const;
  /// Committed rates with `exclude` dropped and the would-be task
  /// `extra` folded in — the workload the tier tests actually judge.
  [[nodiscard]] std::vector<UniTask> workload_with(const UniTask& extra,
                                                   TaskId exclude) const;
  /// Same workload in Eq.-(3) microsecond units (quantum-scaled for
  /// Pfair; cache delay zeroed when overheads are off).
  [[nodiscard]] std::vector<OhTask> oh_workload(const UniTask& extra, TaskId exclude) const;
  [[nodiscard]] Rational total_excluding(TaskId exclude) const;
  /// Largest per-task utilization once `exclude` is dropped and
  /// `candidate` joins (GFB's u_max, Lopez's 1/beta).
  [[nodiscard]] Rational u_max_with(const Rational& candidate, TaskId exclude) const;
  [[nodiscard]] std::size_t count_excluding(TaskId exclude) const;
  void add_weight(const UniTask& t);
  void remove_weight(const UniTask& t);

  AdmissionConfig config_;
  std::map<TaskId, UniTask> tasks_;    ///< committed, by simulator id
  Rational total_ = Rational(0);       ///< exact committed utilization
  std::map<Rational, int> weights_;    ///< multiset for u_max (GFB, Lopez beta)
  std::vector<PendingChange> pending_; ///< sorted by time on apply
};

}  // namespace pfair::serve
