// Tiered admission gate for the pfaird serving daemon.
//
// Every join (and reweight) request is decided by the cheapest test
// that can give a definitive answer for the scheduler being served:
//
//   Tier 0 — O(1) utilization arithmetic: the exact Eq.-(2) bound for
//            Pfair (sum of weights <= M, exact because PD2 is
//            optimal), the Lopez et al. (beta*M + 1)/(beta + 1) bound
//            for partitioned EDF-FF, the GFB density bound for global
//            EDF, U <= 1 for uniprocessor EDF, the Liu-Layland bound
//            for RM.
//   Tier 1 — O(n)/O(n log n) refinement: Eq.-(3) overhead-aware
//            inflation (PD2 fixed point / EDF-FF packing with inflated
//            costs), or the plain first-fit packing when overheads are
//            off.
//   Tier 2 — exact: the hyperperiod-exact global EDF/RM test
//            (serve/exact_gedf.h) under an event budget, or
//            response-time analysis for uniprocessor RM.  When the
//            budget runs out, the gate answers with Tier 1's verdict
//            marked `approx`.
//
// The controller mirrors the admitted task set in a sharded flat
// structure (serve/task_mirror.h) instead of reaching into the
// simulator, so decisions are pure functions of the request history —
// a recorded request log replays to byte-identical decisions on any
// host.  The mirror keeps ΣU, the committed count, and the per-class
// aggregates cached, so Tier 0 is O(1) and commits are O(1) amortized
// at millions of residents.  Departures free capacity at the time the
// scheduler's leave rules dictate: the daemon schedules a pending
// release (a min-heap keyed (time, id, seq) — the same apply order the
// PR-8 sort produced, without re-sorting the queue every advance) and
// the controller applies it when the clock reaches it.
//
// Incremental Tier 2.  The exact tests are pure functions of the
// judged task *multiset* (the mirror canonicalizes every workload to
// (period, execution) order), so the controller memoizes their
// verdicts keyed on the mirror's O(1) multiset fingerprint.  A join,
// leave, or reweight moves the fingerprint by one add/subtract, so the
// storm pattern — decide, commit, decide the same rate again —
// and batch warming (prewarm_tier2) hit the memo instead of
// re-simulating the hyperperiod.  Hits are *exact*: the cached
// GedfResult is bit-identical to what a cold run would return
// (verdict, events, and the budget-exceeded fallback all replay the
// same), so decision logs cannot tell a hit from a miss.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "engine/factory.h"
#include "overhead/inflation.h"  // OhTask
#include "overhead/params.h"
#include "serve/exact_gedf.h"
#include "serve/task_mirror.h"
#include "uniproc/uni_task.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair::engine {
class ThreadPool;
}  // namespace pfair::engine

namespace pfair::serve {

struct AdmissionConfig {
  engine::SchedulerKind kind = engine::SchedulerKind::kPfair;
  int processors = 1;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;  ///< uniproc / global-job flavour
  bool overhead_aware = false;  ///< run Tier 1 with Eq.-(3) inflation
  OverheadParams overhead;      ///< Eq.-(3) inputs when overhead_aware
  double cache_delay_us = 33.3; ///< D(T) charged to every task (paper mean)
  std::uint64_t exact_budget = 1u << 20;  ///< Tier-2 event budget (0 = Tier 2 off)
  int mirror_shards = 16;       ///< task-mirror shard count (power of two)
  std::size_t memo_capacity = 1u << 16;  ///< Tier-2 memo entries (0 = memo off)
};

struct Decision {
  bool admit = false;
  int tier = 0;          ///< tier that produced the answer (0, 1, or 2)
  bool approx = false;   ///< Tier-2 budget exhausted: this is Tier 1's answer
  const char* reason = "";  ///< stable short token for the decision log
  std::uint64_t exact_events = 0;  ///< Tier-2 events spent (0 when Tier 2 unused)
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Applies every pending capacity release / reweight whose time has
  /// arrived.  Call before deciding at time `now`.
  void advance_to(Time now);

  /// Decides admission of a task of rate t on top of the committed set.
  /// Pure in the mirror (only the Tier-2 memo and its counters mutate).
  [[nodiscard]] Decision decide_join(const UniTask& t) const;

  /// Decides a reweight of committed task `id` to rate t: the old
  /// weight is excluded, the new one checked in its place.
  [[nodiscard]] Decision decide_reweight(TaskId id, const UniTask& t) const;

  /// Records an admitted task under the simulator's id.
  void commit(TaskId id, const UniTask& t);

  /// Schedules `id`'s capacity to free at time `at` (the scheduler's
  /// leave rules); the weight stays counted until advance_to(at).
  void schedule_release(TaskId id, Time at);

  /// Schedules `id` to switch to rate t at time `at`.  Until then the
  /// old weight stays counted (matching PfairSimulator's orderly
  /// reweight, where the exchange happens at the switch-over slot).
  void schedule_reweight(TaskId id, const UniTask& t, Time at);

  /// Speculatively evaluates the Tier-2 exact test for each candidate
  /// against the *current* mirror and fills the memo, fanning the
  /// independent simulations across `pool` (inline when null).  Workers
  /// only read const state and write preallocated slots; the memo
  /// inserts happen on the calling thread after the pool drains.
  /// Candidates whose decision would never reach Tier 2 (invalid,
  /// Tier 0 decides, Tier 1 admits) are skipped.  Purely a cache
  /// warmer: decisions and logs are identical with or without it.
  void prewarm_tier2(const std::vector<std::pair<UniTask, TaskId>>& candidates,
                     engine::ThreadPool* pool) const;

  [[nodiscard]] Rational total_weight() const noexcept { return mirror_.total(); }
  [[nodiscard]] std::size_t committed() const noexcept { return mirror_.size(); }
  [[nodiscard]] const AdmissionConfig& config() const noexcept { return config_; }
  [[nodiscard]] const TaskMirror& mirror() const noexcept { return mirror_; }
  [[nodiscard]] std::uint64_t memo_hits() const noexcept { return memo_hits_; }
  [[nodiscard]] std::uint64_t memo_misses() const noexcept { return memo_misses_; }

  // --- per-tier probes (tests and the daemon's tier accounting) ---
  /// Tier-0 answer, or no value when the O(1) bounds cannot decide.
  [[nodiscard]] std::optional<Decision> tier0(const UniTask& t, TaskId exclude = kNoTask) const;
  /// Tier-1 answer (always decides; its reject may be overturned by
  /// Tier 2 for global EDF/RM).
  [[nodiscard]] Decision tier1(const UniTask& t, TaskId exclude = kNoTask) const;
  /// Tier-2 exact answer for the kinds that have one.
  [[nodiscard]] std::optional<Decision> tier2(const UniTask& t, TaskId exclude = kNoTask) const;

 private:
  struct PendingChange {
    Time at = 0;
    TaskId id = kNoTask;
    std::uint64_t seq = 0;  ///< submission order: the (at, id) tie-break
    bool remove = true;     ///< false = reweight to `task`
    UniTask task;
  };
  struct PendingAfter {
    [[nodiscard]] bool operator()(const PendingChange& a,
                                  const PendingChange& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.id != b.id) return a.id > b.id;
      return a.seq > b.seq;
    }
  };
  /// Memoized Tier-2 verdict for one task multiset.  Exactly one of
  /// the two members is meaningful per controller (kind is fixed).
  struct CachedExact {
    GedfResult gedf;     ///< global EDF/RM simulation result
    bool rm_ok = false;  ///< uniprocessor RM response-time verdict
  };
  struct FingerprintHash {
    [[nodiscard]] std::size_t operator()(const MirrorFingerprint& fp) const noexcept {
      return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9E3779B97F4A7C15ull));
    }
  };

  [[nodiscard]] Decision decide(const UniTask& t, TaskId exclude) const;
  /// Processors the gate judges against (1 for the uniproc stacks).
  [[nodiscard]] int gate_processors() const noexcept;
  /// Eq.-(3) inputs for Tier 1: the configured overheads, or identity
  /// inflation (all-zero costs) when overheads are off.
  [[nodiscard]] OverheadParams tier1_params() const;
  /// Same workload in Eq.-(3) microsecond units (quantum-scaled for
  /// Pfair; cache delay zeroed when overheads are off).
  [[nodiscard]] std::vector<OhTask> oh_workload(const UniTask& extra, TaskId exclude) const;
  /// True when this (kind, algorithm) has a Tier-2 exact test at all.
  [[nodiscard]] bool tier2_applies() const noexcept;
  /// The exact Tier-2 computation for one candidate, memo-free.  Pure;
  /// safe to call concurrently from prewarm workers.
  [[nodiscard]] CachedExact tier2_compute(const UniTask& t, TaskId exclude) const;
  /// Memo lookup + fill around tier2_compute.
  [[nodiscard]] CachedExact tier2_cached(const UniTask& t, TaskId exclude) const;
  [[nodiscard]] Decision tier2_decision(const CachedExact& e, const UniTask& t,
                                        TaskId exclude) const;

  AdmissionConfig config_;
  TaskMirror mirror_;
  std::priority_queue<PendingChange, std::vector<PendingChange>, PendingAfter> pending_;
  std::uint64_t pending_seq_ = 0;
  // The memo is a cache, not state: decisions are byte-identical with
  // it on, off, or cleared at any point, so mutating it from const
  // decide paths keeps the "pure function of request history" contract.
  mutable std::unordered_map<MirrorFingerprint, CachedExact, FingerprintHash> memo_;
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
};

}  // namespace pfair::serve
