#include "serve/task_mirror.h"

#include <algorithm>

namespace pfair::serve {

namespace {

constexpr std::size_t kInitialSlots = 16;

/// splitmix64 finalizer — full avalanche over 64 bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr int clamp_shards(int shards) noexcept {
  if (shards < 1) return 1;
  if (shards > 256) return 256;
  int p = 1;
  while (p < shards) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t mirror_mix_lo(std::int64_t execution, std::int64_t period) noexcept {
  return mix64(mix64(static_cast<std::uint64_t>(execution)) ^
               mix64(static_cast<std::uint64_t>(period) ^ 0xD6E8FEB86659FD93ull));
}

std::uint64_t mirror_mix_hi(std::int64_t execution, std::int64_t period) noexcept {
  return mix64(mix64(static_cast<std::uint64_t>(execution) ^ 0xA24BAED4963EE407ull) ^
               mix64(static_cast<std::uint64_t>(period) ^ 0x9FB21C651E98DF25ull));
}

TaskMirror::TaskMirror(int shards, bool track_weights)
    : shards_(static_cast<std::size_t>(clamp_shards(shards))),
      shard_mask_(static_cast<TaskId>(clamp_shards(shards) - 1)),
      track_weights_(track_weights) {}

std::size_t TaskMirror::probe(const Shard& s, TaskId id) noexcept {
  const std::size_t mask = s.slots.size() - 1;
  std::size_t i =
      static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(id))) & mask;
  std::size_t insert = s.slots.size();  // sentinel: no tombstone seen
  for (;;) {
    const Slot& slot = s.slots[i];
    if (slot.id == kEmpty) return insert != s.slots.size() ? insert : i;
    if (slot.id == kTombstone) {
      if (insert == s.slots.size()) insert = i;
    } else if (slot.id == id) {
      return i;
    }
    i = (i + 1) & mask;
  }
}

void TaskMirror::grow(Shard& s) {
  std::vector<Slot> old = std::move(s.slots);
  const std::size_t cap = std::max(kInitialSlots, old.size() * 2);
  s.slots.assign(cap, Slot{});
  s.used = s.size;  // tombstones do not survive the rehash
  for (const Slot& slot : old) {
    if (slot.id == kEmpty || slot.id == kTombstone) continue;
    s.slots[probe(s, slot.id)] = slot;
  }
}

const UniTask* TaskMirror::find(TaskId id) const noexcept {
  if (id >= kTombstone) return nullptr;
  const Shard& s = shard_for(id);
  if (s.slots.empty()) return nullptr;
  const Slot& slot = s.slots[probe(s, id)];
  return slot.id == id ? &slot.task : nullptr;
}

void TaskMirror::add_aggregates(const UniTask& t) {
  total_ += Rational(t.execution, t.period);
  fp_lo_ += mirror_mix_lo(t.execution, t.period);
  fp_hi_ += mirror_mix_hi(t.execution, t.period);
  ++classes_[{t.period, t.execution}];
}

void TaskMirror::remove_aggregates(const UniTask& t) {
  total_ -= Rational(t.execution, t.period);
  fp_lo_ -= mirror_mix_lo(t.execution, t.period);
  fp_hi_ -= mirror_mix_hi(t.execution, t.period);
  const auto it = classes_.find({t.period, t.execution});
  if (it != classes_.end() && --it->second == 0) classes_.erase(it);
}

void TaskMirror::upsert(TaskId id, const UniTask& t) {
  if (id >= kTombstone) return;
  Shard& s = shard_for(id);
  // Keep the live+tombstone occupancy under 7/8 so probe chains stay
  // short; growing rehashes live entries only.
  if (s.slots.empty() || (s.used + 1) * 8 > s.slots.size() * 7) grow(s);
  const std::size_t i = probe(s, id);
  Slot& slot = s.slots[i];
  if (slot.id == id) {
    remove_aggregates(slot.task);
    if (track_weights_) {
      const Rational w(slot.task.execution, slot.task.period);
      const auto it = s.weights.find(w);
      if (it != s.weights.end() && --it->second == 0) s.weights.erase(it);
    }
  } else {
    if (slot.id == kEmpty) ++s.used;
    slot.id = id;
    ++s.size;
    ++size_;
  }
  slot.task = t;
  add_aggregates(t);
  if (track_weights_) ++s.weights[Rational(t.execution, t.period)];
}

bool TaskMirror::erase(TaskId id) {
  if (id >= kTombstone) return false;
  Shard& s = shard_for(id);
  if (s.slots.empty()) return false;
  const std::size_t i = probe(s, id);
  Slot& slot = s.slots[i];
  if (slot.id != id) return false;
  remove_aggregates(slot.task);
  if (track_weights_) {
    const Rational w(slot.task.execution, slot.task.period);
    const auto it = s.weights.find(w);
    if (it != s.weights.end() && --it->second == 0) s.weights.erase(it);
  }
  slot.id = kTombstone;  // `used` keeps counting it until the next grow
  --s.size;
  --size_;
  return true;
}

Rational TaskMirror::total_excluding(TaskId exclude) const {
  if (exclude == kNoTask) return total_;
  const UniTask* t = find(exclude);
  if (t == nullptr) return total_;
  return total_ - Rational(t->execution, t->period);
}

std::size_t TaskMirror::count_excluding(TaskId exclude) const {
  if (exclude != kNoTask && find(exclude) != nullptr) return size_ - 1;
  return size_;
}

Rational TaskMirror::u_max_with(const Rational& candidate, TaskId exclude) const {
  Rational best = candidate;
  const UniTask* ex = exclude == kNoTask ? nullptr : find(exclude);
  const Rational exw = ex ? Rational(ex->execution, ex->period) : Rational(-1);
  const std::size_t exshard = ex ? (exclude & shard_mask_) : shards_.size();
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    auto it = shards_[k].weights.rbegin();
    const auto rend = shards_[k].weights.rend();
    // The excluded task hides one instance of its weight in its shard.
    if (k == exshard && it != rend && it->first == exw && it->second == 1) ++it;
    if (it != rend && best < it->first) best = it->first;
  }
  return best;
}

MirrorFingerprint TaskMirror::fingerprint_with(const UniTask& extra,
                                               TaskId exclude) const {
  MirrorFingerprint fp{fp_lo_, fp_hi_};
  if (extra.valid()) {
    fp.lo += mirror_mix_lo(extra.execution, extra.period);
    fp.hi += mirror_mix_hi(extra.execution, extra.period);
  }
  if (const UniTask* ex = exclude == kNoTask ? nullptr : find(exclude)) {
    fp.lo -= mirror_mix_lo(ex->execution, ex->period);
    fp.hi -= mirror_mix_hi(ex->execution, ex->period);
  }
  return fp;
}

std::vector<UniTask> TaskMirror::workload_with(const UniTask& extra,
                                               TaskId exclude) const {
  std::vector<UniTask> out;
  out.reserve(size_ + 1);
  const UniTask* ex = exclude == kNoTask ? nullptr : find(exclude);
  const bool has_extra = extra.valid();
  const std::pair<std::int64_t, std::int64_t> xkey{extra.period, extra.execution};
  bool extra_emitted = false;
  for (const auto& [key, count] : classes_) {
    std::int64_t c = count;
    if (ex && key.first == ex->period && key.second == ex->execution) --c;
    if (has_extra && !extra_emitted) {
      if (xkey == key) {
        ++c;
        extra_emitted = true;
      } else if (xkey < key) {
        out.push_back(extra);
        extra_emitted = true;
      }
    }
    for (std::int64_t i = 0; i < c; ++i)
      out.push_back(UniTask{key.second, key.first});
  }
  if (has_extra && !extra_emitted) out.push_back(extra);
  return out;
}

}  // namespace pfair::serve
