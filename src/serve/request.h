// The pfaird request protocol: streaming JSONL, one request per line.
//
// Six operations cover the dynamic-task API the daemon fronts:
//
//   {"op":"join","execution":3,"period":10}        optional "name","weight"
//   {"op":"leave","task":2}
//   {"op":"reweight","task":2,"execution":1,"period":5}
//   {"op":"query"}
//   {"op":"advance","to":400}
//   {"op":"batch","requests":[{...},{...}]}
//
// "advance" moves the served simulator's clock (the daemon also
// advances by --advance slots per request, so a pure request stream
// exercises the dynamic rules without wall-clock coupling).  "batch"
// carries a non-empty array of the other five (batches do not nest);
// the daemon answers with one decision line per sub-request, in
// request order, byte-identical to the lines the sub-requests would
// have produced arriving individually — batching changes latency and
// lets the gate prewarm its Tier-2 memo in parallel, never answers.
// Numbers follow obs::json (doubles); values outside the int64
// task-parameter range fail parsing rather than truncate.
//
// Requests parse into a flat Request struct, and dump back to the same
// canonical line (obs::json sorted-key form) — the generator, the
// daemon, and `pfair_trace simulate --requests` all speak through this
// one type, so a recorded log replays byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace pfair::serve {

enum class RequestOp : std::uint8_t { kJoin, kLeave, kReweight, kQuery, kAdvance, kBatch };

[[nodiscard]] const char* to_string(RequestOp op) noexcept;

struct Request {
  RequestOp op = RequestOp::kQuery;
  std::int64_t execution = 0;  ///< join/reweight
  std::int64_t period = 0;     ///< join/reweight
  TaskId task = kNoTask;       ///< leave/reweight target
  Time to = 0;                 ///< advance target
  std::string name;            ///< join only, optional
  std::vector<Request> batch;  ///< batch sub-requests (non-empty, never nested)
};

/// Parses one JSONL request line.  On failure returns nullopt and, when
/// `error` is non-null, stores a stable one-token reason
/// ("bad-json", "bad-op", "bad-field") for the daemon's error reply.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   std::string* error = nullptr);

/// Canonical JSONL form of `r` (sorted keys, no trailing newline).
/// parse_request(dump_request(r)) round-trips exactly.
[[nodiscard]] std::string dump_request(const Request& r);

/// Rewrites a JSONL request stream into batch lines of up to `size`
/// sub-requests each, in order (the client-side spelling of pfaird's
/// --batch pipelining; tests and benches wrap streams with it).  Lines
/// that fail to parse or are already batches pass through unchanged,
/// flushing the group built so far.  `size` < 2 returns the input.
[[nodiscard]] std::string batch_requests(std::string_view jsonl, std::size_t size);

/// Deterministic request-stream generator for benches and the CI smoke
/// test: a seeded mix of joins (task weights drawn so the stream hovers
/// around `load` x m total utilization), leaves and reweights of
/// previously joined ids, periodic queries, and monotone advances.
struct GenConfig {
  std::size_t count = 1000;     ///< request lines to emit
  std::uint64_t seed = 42;      ///< Rng seed; same seed => same bytes
  double load = 1.5;            ///< offered load relative to capacity
  int processors = 4;           ///< capacity the load is relative to
  std::int64_t max_period = 40;  ///< periods drawn from [2, max_period]
};

[[nodiscard]] std::string generate_requests(const GenConfig& config);

}  // namespace pfair::serve
