// Sharded flat mirror of the committed task set — the data structure
// behind the admission gate's Tier-0 arithmetic at millions of
// resident tasks.
//
// PR 8's AdmissionController mirrored the task set in a
// std::map<TaskId, UniTask> plus a global std::map<Rational, int>
// weight multiset: every decide/commit paid pointer-chasing O(log n)
// node walks, and the mirror was the serving-path analogue of the AoS
// task state PR 6 removed from the kernel.  This mirror replaces both
// with S independent shards (shard = id & (S-1); daemon ids are dense,
// so the spread is uniform by construction), each holding
//
//   - an open-addressing id -> (execution, period) table (power-of-two
//     capacity, linear probing, tombstoned erase, amortised-O(1)
//     upsert/find/erase),
//   - a per-shard weight multiset for the order statistics Tier 0
//     needs (u_max for GFB, Lopez's beta) — engaged only for the
//     scheduler kinds that ask (partitioned, global EDF), so the
//     common Pfair path never touches it,
//
// plus O(1) cached global aggregates maintained on every mutation:
// exact Rational ΣU, the committed count, a canonical
// (period, execution) -> count class map (the tier-1/2 workloads and
// the per-class Tier-0 aggregates), and a 128-bit *multiset
// fingerprint* — two independent commutative hash sums over the
// committed (execution, period) pairs.  The fingerprint is the
// warm-start rule of the incremental Tier-2 layer: a single-task
// join/leave/reweight moves it by one O(1) add/subtract, never a
// rehash of the set, so adjacent request states key into the exact
// verdict memo (admission.h) without touching the n resident tasks.
//
// u_max is answered as the max over the S per-shard multiset maxima —
// O(S) with S a small constant — and the canonical workload expansion
// is O(n + d) over the d distinct classes, paid only on the Tier-2
// slow path (memo miss).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "uniproc/uni_task.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair::serve {

/// Order-independent 128-bit hash of the committed task multiset.
/// Equal multisets have equal fingerprints by construction; distinct
/// multisets collide with probability ~2^-128 per pair (two
/// independent splitmix-style mixers summed mod 2^64).
struct MirrorFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] bool operator==(const MirrorFingerprint& o) const noexcept {
    return lo == o.lo && hi == o.hi;
  }
};

class TaskMirror {
 public:
  /// `shards` is clamped to a power of two in [1, 256].  `track_weights`
  /// engages the per-shard weight multisets (only the kinds whose
  /// Tier-0 bounds take order statistics pay for them).
  explicit TaskMirror(int shards = 16, bool track_weights = true);

  /// O(1) expected lookup; nullptr when absent.
  [[nodiscard]] const UniTask* find(TaskId id) const noexcept;

  /// Inserts or replaces `id`; all cached aggregates follow.  O(1)
  /// amortised (table growth) + O(log d) class/weight bookkeeping over
  /// the d distinct weights in the shard.
  void upsert(TaskId id, const UniTask& t);

  /// Removes `id`; false when absent.
  bool erase(TaskId id);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const Rational& total() const noexcept { return total_; }
  [[nodiscard]] int shards() const noexcept { return static_cast<int>(shards_.size()); }

  /// ΣU with `exclude` dropped (kNoTask or unknown ids excluded
  /// nothing).  O(1).
  [[nodiscard]] Rational total_excluding(TaskId exclude) const;

  /// Committed count with `exclude` dropped.  O(1).
  [[nodiscard]] std::size_t count_excluding(TaskId exclude) const;

  /// Largest per-task utilization once `exclude` is dropped and
  /// `candidate` joins.  O(shards).  Requires track_weights.
  [[nodiscard]] Rational u_max_with(const Rational& candidate, TaskId exclude) const;

  /// Fingerprint of committed ∪ {extra} − {exclude}: the O(1)
  /// single-task delta rule.  `extra` may be invalid-by-sentinel
  /// (period 0) to fingerprint the committed set itself.
  [[nodiscard]] MirrorFingerprint fingerprint_with(const UniTask& extra,
                                                   TaskId exclude) const;

  /// The same set expanded in canonical (period, execution) order —
  /// the workload vector every Tier-1/2 test judges, deterministic in
  /// the multiset alone (never in arrival order).  O(n + d).
  [[nodiscard]] std::vector<UniTask> workload_with(const UniTask& extra,
                                                   TaskId exclude) const;

  /// Canonical (period, execution) -> count classes of the committed
  /// set (the per-class Tier-0 aggregates).
  [[nodiscard]] const std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t>&
  classes() const noexcept {
    return classes_;
  }

 private:
  struct Slot {
    TaskId id = kEmpty;
    UniTask task;
  };
  struct Shard {
    std::vector<Slot> slots;     ///< power-of-two open-addressing table
    std::size_t size = 0;        ///< live entries
    std::size_t used = 0;        ///< live + tombstones (resize trigger)
    std::map<Rational, std::int64_t> weights;  ///< multiset, iff track_weights
  };

  static constexpr TaskId kEmpty = kNoTask;            // 0xffffffff
  static constexpr TaskId kTombstone = kNoTask - 1;    // 0xfffffffe

  [[nodiscard]] Shard& shard_for(TaskId id) noexcept {
    return shards_[id & shard_mask_];
  }
  [[nodiscard]] const Shard& shard_for(TaskId id) const noexcept {
    return shards_[id & shard_mask_];
  }
  /// Index of `id` in `s.slots`, or the insertion point (first
  /// tombstone on the probe path, else first empty).
  [[nodiscard]] static std::size_t probe(const Shard& s, TaskId id) noexcept;
  static void grow(Shard& s);
  void add_aggregates(const UniTask& t);
  void remove_aggregates(const UniTask& t);

  std::vector<Shard> shards_;
  TaskId shard_mask_ = 0;
  bool track_weights_ = true;
  std::size_t size_ = 0;
  Rational total_ = Rational(0);
  std::uint64_t fp_lo_ = 0;
  std::uint64_t fp_hi_ = 0;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> classes_;
};

/// The two independent per-task mixers the fingerprint sums (exposed
/// for the O(1) with-candidate deltas in fingerprint_with and tests).
[[nodiscard]] std::uint64_t mirror_mix_lo(std::int64_t execution,
                                          std::int64_t period) noexcept;
[[nodiscard]] std::uint64_t mirror_mix_hi(std::int64_t execution,
                                          std::int64_t period) noexcept;

}  // namespace pfair::serve
