// Exact global-EDF/RM schedulability for synchronous periodic
// implicit-deadline task systems (the Tier-2 test of the admission
// gate; after Goossens & Meumeu Yomsi, see PAPERS.md).
//
// For a *deterministic* global scheduler, a synchronous periodic system
// is schedulable iff no deadline is missed in [0, H], H = lcm of the
// periods: under implicit deadlines every job released before H must
// complete by H, so a miss-free prefix ends in exactly the initial
// state and the schedule repeats.  The test therefore simulates
// preemptive global EDF (or fixed-priority RM) event by event — the
// running set only changes at job releases and completions — and
// reports kSchedulable on a clean hyperperiod, kUnschedulable at the
// first miss, or kBudgetExceeded when the event budget runs out before
// time H (hyperperiods explode combinatorially; the admission gate
// falls back to its Tier-1 answer, marked approximate).
//
// Tie-breaking matches GlobalJobSimulator exactly (deadline, then task
// index, for EDF; period, then task index, for RM), so the verdict is a
// statement about the scheduler the daemon actually serves — the
// differential test in tests/serve/exact_gedf_test.cpp holds the two
// to each other.
#pragma once

#include <cstdint>
#include <vector>

#include "uniproc/uni_sim.h"  // UniAlgorithm
#include "uniproc/uni_task.h"
#include "util/types.h"

namespace pfair::serve {

enum class GedfVerdict : std::uint8_t {
  kSchedulable,     ///< miss-free through one full hyperperiod — exact
  kUnschedulable,   ///< a deadline miss was found (see first_miss)
  kBudgetExceeded,  ///< ran out of events before reaching H — no verdict
};

struct GedfResult {
  GedfVerdict verdict = GedfVerdict::kBudgetExceeded;
  Time hyperperiod = 0;  ///< H actually required (may be saturated)
  Time simulated = 0;    ///< time reached when the test stopped
  std::uint64_t events = 0;  ///< scheduler events processed
  Time first_miss = -1;  ///< miss time when kUnschedulable
};

/// Stable lower-case verdict name ("schedulable", "unschedulable",
/// "budget-exceeded") for decision logs.
[[nodiscard]] const char* to_string(GedfVerdict v) noexcept;

/// Runs the exact test for `tasks` on `m` processors under global
/// `algorithm` (preemptive, deterministic tie-break).  `max_events`
/// bounds the work: each event is one release or completion boundary
/// and costs O(n log n).  Invalid tasks or total utilization above m
/// are rejected immediately (necessary condition; no budget spent).
[[nodiscard]] GedfResult exact_global_schedulable(
    const std::vector<UniTask>& tasks, int m,
    UniAlgorithm algorithm = UniAlgorithm::kEDF, std::uint64_t max_events = 1u << 20);

}  // namespace pfair::serve
