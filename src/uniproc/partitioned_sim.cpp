#include "uniproc/partitioned_sim.h"

namespace pfair {

PartitionedSimulator::PartitionedSimulator(const std::vector<UniTask>& tasks,
                                           PartitionedConfig config) {
  const UniPartitionResult part =
      partition_uni(tasks, config.max_processors, config.heuristic, config.acceptance);
  assignment_ = part.assignment;
  std::vector<std::vector<UniTask>> groups(static_cast<std::size_t>(part.processors_used));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (part.assignment[i] < 0) {
      unplaced_.push_back(i);
      continue;
    }
    groups[static_cast<std::size_t>(part.assignment[i])].push_back(tasks[i]);
  }
  UniSimConfig uc;
  uc.algorithm = config.algorithm;
  uc.measure_overhead = config.measure_overhead;
  for (auto& g : groups) sims_.emplace_back(std::move(g), uc);
}

void PartitionedSimulator::run_until(Time until) {
  // Each processor's schedule is independent: run them one after the
  // other (wall-clock parallelism is irrelevant to the simulated
  // metrics; the *modelled* parallelism is what keeps per-invocation
  // scheduling cost flat in the processor count).
  for (UniprocSimulator& sim : sims_) sim.run_until(until);
}

UniMetrics PartitionedSimulator::aggregate_metrics() const {
  UniMetrics out;
  for (const UniprocSimulator& sim : sims_) {
    const UniMetrics& m = sim.metrics();
    out.jobs_released += m.jobs_released;
    out.jobs_completed += m.jobs_completed;
    out.deadline_misses += m.deadline_misses;
    out.preemptions += m.preemptions;
    out.context_switches += m.context_switches;
    out.scheduler_invocations += m.scheduler_invocations;
    out.sched_ns_total += m.sched_ns_total;
    if (m.first_miss_time >= 0 &&
        (out.first_miss_time < 0 || m.first_miss_time < out.first_miss_time)) {
      out.first_miss_time = m.first_miss_time;
    }
  }
  return out;
}

}  // namespace pfair
