#include "uniproc/partitioned_sim.h"

namespace pfair {

PartitionedSimulator::PartitionedSimulator(const std::vector<UniTask>& tasks,
                                           PartitionConfig config)
    : tasks_(tasks), config_(config) {
  rebuild();
}

void PartitionedSimulator::rebuild() {
  const UniPartitionResult part =
      partition_uni(tasks_, config_.max_processors, config_.heuristic, config_.acceptance);
  assignment_ = part.assignment;
  unplaced_.clear();
  std::vector<std::vector<UniTask>> groups(static_cast<std::size_t>(part.processors_used));
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (part.assignment[i] < 0) {
      unplaced_.push_back(i);
      continue;
    }
    groups[static_cast<std::size_t>(part.assignment[i])].push_back(tasks_[i]);
  }
  UniSimConfig uc;
  uc.algorithm = config_.algorithm;
  uc.measure_overhead = config_.measure_overhead;
  sims_.clear();
  sims_.reserve(groups.size());
  for (auto& g : groups) sims_.emplace_back(std::move(g), uc);
  for (std::size_t p = 0; p < sims_.size(); ++p)
    sims_[p].set_observer(bus_, static_cast<ProcId>(p));
}

void PartitionedSimulator::attach_observer(obs::EventBus* bus) {
  bus_ = bus;
  for (std::size_t p = 0; p < sims_.size(); ++p)
    sims_[p].set_observer(bus_, static_cast<ProcId>(p));
}

bool PartitionedSimulator::admit(const engine::TaskSpec& spec) {
  const UniTask t{spec.resolved_execution(), spec.resolved_period()};
  if (now_ > 0 || !t.valid()) {
    ++rejected_;
    return false;
  }
  tasks_.push_back(t);
  rebuild();
  if (assignment_.back() < 0) {
    tasks_.pop_back();
    rebuild();
    ++rejected_;
    return false;
  }
  ++admitted_;
  return true;
}

void PartitionedSimulator::run_until(Time until) {
  // Each processor's schedule is independent: run them one after the
  // other (wall-clock parallelism is irrelevant to the simulated
  // metrics; the *modelled* parallelism is what keeps per-invocation
  // scheduling cost flat in the processor count).
  for (UniprocSimulator& sim : sims_) sim.run_until(until);
  if (until > now_) now_ = until;
}

const engine::Metrics& PartitionedSimulator::metrics() const {
  aggregate_ = engine::Metrics{};
  for (const UniprocSimulator& sim : sims_) aggregate_.merge(sim.metrics());
  // Admission happens at the ensemble, not in the member schedulers
  // (they are rebuilt from already-placed tasks).
  aggregate_.tasks_admitted = admitted_;
  aggregate_.tasks_rejected = rejected_;
  return aggregate_;
}

}  // namespace pfair
