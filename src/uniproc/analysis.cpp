#include "uniproc/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"
#include "util/rational.h"

namespace pfair {

bool edf_schedulable(const std::vector<UniTask>& tasks) {
  Rational u(0);
  for (const UniTask& t : tasks) u += Rational(t.execution, t.period);
  return u <= Rational(1);
}

double rm_utilization_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool rm_schedulable_ll(const std::vector<UniTask>& tasks) {
  return total_utilization(tasks) <= rm_utilization_bound(tasks.size()) + 1e-12;
}

std::int64_t rm_response_time(const std::vector<UniTask>& tasks, std::size_t index) {
  // Higher priority = shorter period (ties by position, i.e. earlier
  // tasks win, which is the conventional deterministic tie-break).
  const UniTask& self = tasks[index];
  std::int64_t r = self.execution;
  for (;;) {
    std::int64_t next = self.execution;
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (j == index) continue;
      const bool higher =
          tasks[j].period < self.period || (tasks[j].period == self.period && j < index);
      if (!higher) continue;
      next += ceil_div(r, tasks[j].period) * tasks[j].execution;
    }
    if (next == r) return r;
    if (next > self.period) return -1;  // diverged past the deadline
    r = next;
  }
}

bool rm_schedulable_exact(const std::vector<UniTask>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::int64_t r = rm_response_time(tasks, i);
    if (r < 0 || r > tasks[i].period) return false;
  }
  return true;
}

Rational lopez_edf_ff_bound(int m, std::int64_t beta) {
  assert(m >= 1 && beta >= 1);
  return Rational(beta * m + 1, beta + 1);
}

std::int64_t lopez_beta(const std::vector<UniTask>& tasks) {
  std::int64_t beta = 1;
  bool first = true;
  for (const UniTask& t : tasks) {
    const std::int64_t b = t.period / t.execution;  // floor(1/u)
    if (first || b < beta) beta = b;
    first = false;
  }
  return beta < 1 ? 1 : beta;
}

}  // namespace pfair
