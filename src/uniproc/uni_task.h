// Uniprocessor (partitioned) task model.
//
// Under partitioning each processor runs an independent uniprocessor
// scheduler over jobs, not quanta: a periodic task releases a job of
// `execution` time units every `period` units, due at the next release
// (implicit deadlines).  Time units here are abstract (the benches use
// microseconds); nothing is quantised.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pfair {

struct UniTask {
  std::int64_t execution = 1;  ///< worst-case execution time
  std::int64_t period = 1;     ///< period == relative deadline

  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(execution) / static_cast<double>(period);
  }
  [[nodiscard]] bool valid() const noexcept {
    return execution > 0 && period > 0 && execution <= period;
  }
};

[[nodiscard]] inline UniTask make_uni_task(std::int64_t e, std::int64_t p) noexcept {
  UniTask t{e, p};
  assert(t.valid());
  return t;
}

[[nodiscard]] inline double total_utilization(const std::vector<UniTask>& ts) noexcept {
  double u = 0.0;
  for (const UniTask& t : ts) u += t.utilization();
  return u;
}

}  // namespace pfair
