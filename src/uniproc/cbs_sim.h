// Constant Bandwidth Server (CBS) on EDF (Abeni & Buttazzo, RTSS'98) —
// the mechanism the paper cites for temporal isolation under EDF
// (Sec. 5.3): "the deadline of a job is postponed when it consumes its
// worst-case execution time ... the use of such mechanisms increases
// scheduling overhead."
//
// A server S = (Q, T) has bandwidth Q/T.  It serves a stream of
// aperiodic jobs under the classic rules:
//   - jobs execute at the server's current deadline d_s under EDF;
//   - when the budget c_s is exhausted, it is replenished to Q and
//     d_s is postponed by T;
//   - a job arriving to an idle server reuses (c_s, d_s) if
//     c_s < (d_s - r) * Q / T still holds, else resets c_s = Q,
//     d_s = r + T.
// These rules guarantee the server never demands more than Q/T of the
// processor, so hard periodic tasks are isolated from server overruns.
//
// The simulator runs hard implicit-deadline periodic tasks and CBS
// servers on one EDF processor and reports hard misses (provably zero
// when U_hard + sum(Q/T) <= 1), served throughput, and postponements.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/metrics.h"
#include "engine/simulator.h"
#include "obs/bus.h"
#include "uniproc/uni_task.h"
#include "util/types.h"

namespace pfair {

/// One aperiodic job submitted to a server.
struct AperiodicJob {
  Time arrival = 0;
  std::int64_t execution = 1;
};

struct CbsServerSpec {
  std::int64_t budget = 1;  ///< Q
  std::int64_t period = 1;  ///< T; bandwidth = Q/T
  std::vector<AperiodicJob> jobs;  ///< sorted by arrival
};

struct CbsConfig {
  std::vector<CbsServerSpec> servers;
};

// Hard-task counters land in the generic engine::Metrics job fields
// (jobs_released / jobs_completed / deadline_misses); the server-side
// counters use the CBS section (served_jobs_completed, served_work,
// deadline_postponements).
class CbsSimulator : public engine::Simulator {
 public:
  CbsSimulator(std::vector<UniTask> hard_tasks, CbsConfig config);

  CbsSimulator(const CbsSimulator&) = delete;
  CbsSimulator& operator=(const CbsSimulator&) = delete;

  /// Admits a hard periodic task releasing from the current time.
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  void run_until(Time until) override;

  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] Time now() const noexcept override { return now_; }

  /// Work granted to one server so far.
  [[nodiscard]] std::int64_t server_work(std::size_t s) const {
    return servers_[s].work_done;
  }

  /// Observation: hard-task events carry the task index; server events
  /// (kServedSlice / kServedJobComplete / kBudgetPostpone) carry the
  /// server index in the task field.
  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }

 private:
  struct Server {
    CbsServerSpec spec;
    std::int64_t budget = 0;   ///< c_s
    Time deadline = 0;         ///< d_s
    std::size_t next_job = 0;  ///< index into spec.jobs not yet arrived
    std::int64_t backlog = 0;  ///< remaining execution of arrived jobs
    std::int64_t head_remaining = 0;  ///< remaining of the job being served
    std::vector<std::int64_t> queued;  ///< remaining jobs' executions (FIFO)
    std::int64_t work_done = 0;
    bool active = false;  ///< has backlog
  };

  struct HardJob {
    std::uint32_t task = 0;
    Time deadline = 0;
    std::int64_t remaining = 0;
  };

  void arrivals_and_releases(Time t);
  /// Earliest-deadline entity: hard job index or server index.
  [[nodiscard]] Time next_event_after(Time t) const;

  std::vector<UniTask> hard_;
  std::vector<Time> hard_next_release_;
  std::vector<std::int64_t> hard_live_;
  std::vector<HardJob> hard_ready_;  ///< small sets: linear scans suffice
  std::vector<Server> servers_;
  Time now_ = 0;
  engine::Metrics metrics_;
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off
};

}  // namespace pfair
