// Event-driven uniprocessor scheduling simulator (EDF and RM).
//
// Drives periodic job sets through a priority-driven preemptive
// uniprocessor scheduler, advancing directly between release and
// completion events (no quantisation).  Used for
//   - the Fig. 2(a) scheduling-overhead measurements (each scheduler
//     invocation — the binary-heap operations choosing the next job —
//     can be wall-clock timed), and
//   - validating the EDF preemption accounting the overhead model relies
//     on (number of preemptions <= number of jobs).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/metrics.h"
#include "engine/overhead_timer.h"
#include "engine/simulator.h"
#include "obs/bus.h"
#include "uniproc/uni_task.h"
#include "util/binary_heap.h"
#include "util/types.h"

namespace pfair {

enum class UniAlgorithm : std::uint8_t { kEDF, kRM };

struct UniSimConfig {
  UniAlgorithm algorithm = UniAlgorithm::kEDF;
  bool measure_overhead = false;
};

class UniprocSimulator : public engine::Simulator {
 public:
  UniprocSimulator(std::vector<UniTask> tasks, UniSimConfig config);

  // Movable (the ready-queue comparator carries the RM key inside each
  // Job instead of pointing back into tasks_, so nothing dangles);
  // copying a half-run simulator is almost always a bug, so copies stay
  // deleted.
  UniprocSimulator(const UniprocSimulator&) = delete;
  UniprocSimulator& operator=(const UniprocSimulator&) = delete;
  UniprocSimulator(UniprocSimulator&&) = default;
  UniprocSimulator& operator=(UniprocSimulator&&) = default;

  /// Admits a periodic task releasing from the current time.
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  /// Runs until (absolute) time `until`.
  void run_until(Time until) override;

  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] Time now() const noexcept override { return now_; }

  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }

  /// Observer attachment with an explicit processor id, so an ensemble
  /// (partitioned scheduling) can stamp each member's events with its
  /// slot in the global processor numbering.
  void set_observer(obs::EventBus* bus, ProcId proc) {
    bus_ = bus;
    proc_ = proc;
  }

 private:
  struct Job {
    std::uint32_t task = 0;
    Time deadline = 0;       ///< absolute
    std::int64_t remaining = 0;
    std::int64_t period = 0; ///< the task's period (RM priority key)
  };
  struct JobLess {
    UniAlgorithm alg = UniAlgorithm::kEDF;
    bool operator()(const Job& a, const Job& b) const noexcept {
      if (alg == UniAlgorithm::kEDF) {
        if (a.deadline != b.deadline) return a.deadline < b.deadline;
      } else {
        if (a.period != b.period) return a.period < b.period;
      }
      return a.task < b.task;
    }
  };

  void release_jobs(Time t);
  /// The scheduler proper: decides whether the running job changes.
  void invoke_scheduler(Time t);
  void complete_running(Time t);
  [[nodiscard]] Time next_release_time() const;

  struct Release {
    Time when = 0;
    std::uint32_t task = 0;
  };
  struct ReleaseLess {
    bool operator()(const Release& a, const Release& b) const noexcept {
      if (a.when != b.when) return a.when < b.when;
      return a.task < b.task;
    }
  };

  std::vector<UniTask> tasks_;
  UniSimConfig config_;
  BinaryHeap<Release, ReleaseLess> calendar_;  ///< event timers, one per task
  std::vector<std::int64_t> live_jobs_;        ///< per task: released, incomplete
  BinaryHeap<Job, JobLess> ready_;
  Job running_{};
  bool has_running_ = false;
  std::uint32_t last_on_cpu_ = 0xffffffffu;
  Time now_ = 0;
  engine::Metrics metrics_;
  engine::OverheadTimer timer_{false};
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off
  ProcId proc_ = 0;               ///< this processor's id in observer events
};

}  // namespace pfair
