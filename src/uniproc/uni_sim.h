// Event-driven uniprocessor scheduling simulator (EDF and RM).
//
// Drives periodic job sets through a priority-driven preemptive
// uniprocessor scheduler, advancing directly between release and
// completion events (no quantisation).  Used for
//   - the Fig. 2(a) scheduling-overhead measurements (each scheduler
//     invocation — the binary-heap operations choosing the next job —
//     can be wall-clock timed), and
//   - validating the EDF preemption accounting the overhead model relies
//     on (number of preemptions <= number of jobs).
#pragma once

#include <cstdint>
#include <vector>

#include "uniproc/uni_task.h"
#include "util/binary_heap.h"
#include "util/types.h"

namespace pfair {

enum class UniAlgorithm : std::uint8_t { kEDF, kRM };

struct UniMetrics {
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t scheduler_invocations = 0;
  double sched_ns_total = 0.0;
  Time first_miss_time = -1;

  [[nodiscard]] double avg_sched_ns() const noexcept {
    return scheduler_invocations > 0
               ? sched_ns_total / static_cast<double>(scheduler_invocations)
               : 0.0;
  }
};

struct UniSimConfig {
  UniAlgorithm algorithm = UniAlgorithm::kEDF;
  bool measure_overhead = false;
};

class UniprocSimulator {
 public:
  UniprocSimulator(std::vector<UniTask> tasks, UniSimConfig config);

  // Pinned: the ready queue's comparator holds a pointer to tasks_, so
  // moving the simulator would dangle it.  Hold by unique_ptr / deque.
  UniprocSimulator(const UniprocSimulator&) = delete;
  UniprocSimulator& operator=(const UniprocSimulator&) = delete;
  UniprocSimulator(UniprocSimulator&&) = delete;
  UniprocSimulator& operator=(UniprocSimulator&&) = delete;

  /// Runs until (absolute) time `until`.
  void run_until(Time until);

  [[nodiscard]] const UniMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] Time now() const noexcept { return now_; }

 private:
  struct Job {
    std::uint32_t task = 0;
    Time deadline = 0;       ///< absolute
    std::int64_t remaining = 0;
  };
  struct JobLess {
    UniAlgorithm alg;
    const std::vector<UniTask>* tasks;
    bool operator()(const Job& a, const Job& b) const noexcept {
      if (alg == UniAlgorithm::kEDF) {
        if (a.deadline != b.deadline) return a.deadline < b.deadline;
      } else {
        const std::int64_t pa = (*tasks)[a.task].period;
        const std::int64_t pb = (*tasks)[b.task].period;
        if (pa != pb) return pa < pb;
      }
      return a.task < b.task;
    }
  };

  void release_jobs(Time t);
  /// The scheduler proper: decides whether the running job changes.
  void invoke_scheduler(Time t);
  void complete_running(Time t);
  [[nodiscard]] Time next_release_time() const;

  struct Release {
    Time when = 0;
    std::uint32_t task = 0;
  };
  struct ReleaseLess {
    bool operator()(const Release& a, const Release& b) const noexcept {
      if (a.when != b.when) return a.when < b.when;
      return a.task < b.task;
    }
  };

  std::vector<UniTask> tasks_;
  UniSimConfig config_;
  BinaryHeap<Release, ReleaseLess> calendar_;  ///< event timers, one per task
  std::vector<std::int64_t> live_jobs_;        ///< per task: released, incomplete
  BinaryHeap<Job, JobLess> ready_;
  Job running_{};
  bool has_running_ = false;
  std::uint32_t last_on_cpu_ = 0xffffffffu;
  Time now_ = 0;
  UniMetrics metrics_;
};

}  // namespace pfair
