// Uniprocessor schedulability analysis (paper Secs. 1 and 3).
#pragma once

#include <vector>

#include "uniproc/uni_task.h"
#include "util/rational.h"

namespace pfair {

/// EDF exact test for implicit-deadline periodic tasks: U <= 1
/// [Liu & Layland 73].  Uses exact integer arithmetic (no double
/// round-off at the boundary).
[[nodiscard]] bool edf_schedulable(const std::vector<UniTask>& tasks);

/// Liu–Layland RM utilization bound n(2^{1/n} - 1); ~0.693 as n -> inf.
[[nodiscard]] double rm_utilization_bound(std::size_t n);

/// Sufficient RM test: U <= n(2^{1/n} - 1).
[[nodiscard]] bool rm_schedulable_ll(const std::vector<UniTask>& tasks);

/// Exact RM test via response-time analysis [Lehoczky, Sha & Ding 89 /
/// Joseph & Pandya]: iterate R = e_i + sum_{j in hp(i)} ceil(R/p_j) e_j
/// to a fixed point and compare against the deadline.
[[nodiscard]] bool rm_schedulable_exact(const std::vector<UniTask>& tasks);

/// Worst-case response time of `index` under RM, or -1 if it diverges
/// past the deadline.
[[nodiscard]] std::int64_t rm_response_time(const std::vector<UniTask>& tasks,
                                            std::size_t index);

/// The Lopez et al. EDF-FF utilization bound (beta*m + 1)/(beta + 1):
/// any implicit-deadline set with per-task utilization <= 1/beta and
/// total utilization not above this is schedulable by first-fit EDF
/// partitioning on m processors.  Exact rational so boundary cases are
/// decidable; beta >= 1, m >= 1.
[[nodiscard]] Rational lopez_edf_ff_bound(int m, std::int64_t beta);

/// The largest beta for `tasks`: floor(1/u_max) = min over tasks of
/// floor(p/e).  Returns 1 for an empty set (the weakest bound).
[[nodiscard]] std::int64_t lopez_beta(const std::vector<UniTask>& tasks);

}  // namespace pfair
