#include "uniproc/cbs_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pfair {

CbsSimulator::CbsSimulator(std::vector<UniTask> hard_tasks, CbsConfig config)
    : hard_(std::move(hard_tasks)),
      hard_next_release_(hard_.size(), 0),
      hard_live_(hard_.size(), 0) {
  servers_.reserve(config.servers.size());
  for (CbsServerSpec& spec : config.servers) {
    assert(spec.budget > 0 && spec.period > 0 && spec.budget <= spec.period);
    assert(std::is_sorted(spec.jobs.begin(), spec.jobs.end(),
                          [](const AperiodicJob& a, const AperiodicJob& b) {
                            return a.arrival < b.arrival;
                          }));
    Server s;
    s.spec = std::move(spec);
    servers_.push_back(std::move(s));
  }
}

bool CbsSimulator::admit(const engine::TaskSpec& spec) {
  const UniTask t{spec.resolved_execution(), spec.resolved_period()};
  if (!t.valid()) {
    ++metrics_.tasks_rejected;
    return false;
  }
  hard_.push_back(t);
  hard_next_release_.push_back(now_);
  hard_live_.push_back(0);
  ++metrics_.tasks_admitted;
  return true;
}

void CbsSimulator::arrivals_and_releases(Time t) {
  for (std::uint32_t i = 0; i < hard_.size(); ++i) {
    while (hard_next_release_[i] <= t) {
      // Implicit deadline: a live predecessor at its release has missed.
      if (hard_live_[i] > 0) {
        metrics_.record_miss(hard_next_release_[i]);
        obs::emit(bus_, obs::EventKind::kDeadlineMiss, hard_next_release_[i], i, 0);
      }
      hard_ready_.push_back(
          HardJob{i, hard_next_release_[i] + hard_[i].period, hard_[i].execution});
      ++metrics_.jobs_released;
      ++hard_live_[i];
      obs::emit(bus_, obs::EventKind::kJobRelease, hard_next_release_[i], i, 0,
                static_cast<double>(hard_next_release_[i] + hard_[i].period));
      hard_next_release_[i] += hard_[i].period;
    }
  }
  for (Server& s : servers_) {
    while (s.next_job < s.spec.jobs.size() && s.spec.jobs[s.next_job].arrival <= t) {
      const AperiodicJob& job = s.spec.jobs[s.next_job];
      if (!s.active) {
        // CBS admission for an idle server: reuse (c_s, d_s) only if the
        // pair is still bandwidth-consistent, else replenish.
        // Condition: c_s >= (d_s - r) * Q / T  ->  reset.
        if (s.budget * s.spec.period >= (s.deadline - t) * s.spec.budget) {
          s.budget = s.spec.budget;
          s.deadline = t + s.spec.period;
        }
        s.active = true;
        s.head_remaining = job.execution;
      } else {
        s.queued.push_back(job.execution);
      }
      s.backlog += job.execution;
      ++s.next_job;
    }
  }
}

Time CbsSimulator::next_event_after(Time t) const {
  Time next = std::numeric_limits<Time>::max();
  for (const Time r : hard_next_release_) next = std::min(next, r);
  for (const Server& s : servers_) {
    if (s.next_job < s.spec.jobs.size())
      next = std::min(next, s.spec.jobs[s.next_job].arrival);
  }
  if (next <= t) next = t + 1;  // safety: always advance
  return next;
}

void CbsSimulator::run_until(Time until) {
  while (now_ < until) {
    arrivals_and_releases(now_);
    ++metrics_.scheduler_invocations;
    ++metrics_.scheduling_points;
    obs::emit(bus_, obs::EventKind::kSchedInvoke, now_);

    // EDF over hard jobs and active servers (small systems: scans).
    HardJob* hard_pick = nullptr;
    for (HardJob& j : hard_ready_) {
      if (j.remaining > 0 && (hard_pick == nullptr || j.deadline < hard_pick->deadline))
        hard_pick = &j;
    }
    Server* server_pick = nullptr;
    for (Server& s : servers_) {
      if (s.active && (server_pick == nullptr || s.deadline < server_pick->deadline))
        server_pick = &s;
    }

    const Time next_ev = next_event_after(now_);
    const Time slice_end = std::min(next_ev, until);

    if (hard_pick == nullptr && server_pick == nullptr) {
      now_ = slice_end;  // idle
      continue;
    }

    const bool serve_hard =
        server_pick == nullptr ||
        (hard_pick != nullptr && hard_pick->deadline <= server_pick->deadline);

    if (serve_hard) {
      const Time run = std::min<Time>(slice_end - now_, hard_pick->remaining);
      obs::emit(bus_, obs::EventKind::kExecSlice, now_, hard_pick->task, 0,
                static_cast<double>(run));
      hard_pick->remaining -= run;
      now_ += run;
      if (hard_pick->remaining == 0) {
        ++metrics_.jobs_completed;
        // value = -1: response times are not tracked by this simulator.
        obs::emit(bus_, obs::EventKind::kJobComplete, now_, hard_pick->task, 0, -1.0);
        --hard_live_[hard_pick->task];
        hard_ready_.erase(hard_ready_.begin() + (hard_pick - hard_ready_.data()));
      }
      continue;
    }

    Server& s = *server_pick;
    const TaskId server_id = static_cast<TaskId>(server_pick - servers_.data());
    const Time run = std::min<Time>({slice_end - now_, s.head_remaining, s.budget});
    obs::emit(bus_, obs::EventKind::kServedSlice, now_, server_id, 0,
              static_cast<double>(run));
    s.head_remaining -= run;
    s.backlog -= run;
    s.budget -= run;
    s.work_done += run;
    metrics_.served_work += run;
    now_ += run;
    if (s.head_remaining == 0 && s.backlog >= 0) {
      ++metrics_.served_jobs_completed;
      obs::emit(bus_, obs::EventKind::kServedJobComplete, now_, server_id, 0);
      if (!s.queued.empty()) {
        s.head_remaining = s.queued.front();
        s.queued.erase(s.queued.begin());
      } else {
        s.active = false;
      }
    }
    if (s.budget == 0) {
      // Budget exhausted: replenish and postpone (the CBS rule that
      // pushes overruns into future reserved capacity).
      s.budget = s.spec.budget;
      s.deadline += s.spec.period;
      ++metrics_.deadline_postponements;
      obs::emit(bus_, obs::EventKind::kBudgetPostpone, now_, server_id, 0,
                static_cast<double>(s.deadline));
    }
  }
}

}  // namespace pfair
