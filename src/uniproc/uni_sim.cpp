#include "uniproc/uni_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pfair {

UniprocSimulator::UniprocSimulator(std::vector<UniTask> tasks, UniSimConfig config)
    : tasks_(std::move(tasks)),
      config_(config),
      live_jobs_(tasks_.size(), 0),
      ready_(JobLess{config.algorithm}),
      timer_(config.measure_overhead) {
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
    assert(tasks_[i].valid());
    calendar_.push(Release{0, i});
  }
}

bool UniprocSimulator::admit(const engine::TaskSpec& spec) {
  const UniTask t{spec.resolved_execution(), spec.resolved_period()};
  if (!t.valid()) {
    ++metrics_.tasks_rejected;
    return false;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(tasks_.size());
  tasks_.push_back(t);
  live_jobs_.push_back(0);
  calendar_.push(Release{now_, id});
  ++metrics_.tasks_admitted;
  return true;
}

Time UniprocSimulator::next_release_time() const {
  return calendar_.empty() ? std::numeric_limits<Time>::max() : calendar_.top().when;
}

void UniprocSimulator::release_jobs(Time t) {
  // Release processing counts toward scheduling overhead (inserting a
  // newly arrived job into the ready queue), matching the paper.  The
  // calendar heap plays the role of per-task event timers: only tasks
  // that actually release are touched.
  timer_.start();
  while (!calendar_.empty() && calendar_.top().when <= t) {
    const Release rel = calendar_.pop();
    const std::uint32_t i = rel.task;
    // Implicit deadlines: the predecessor job's deadline is exactly
    // this release time, so an incomplete predecessor has missed.
    // (Detecting misses here — rather than at completion — also catches
    // jobs that starve and never complete.)
    if (live_jobs_[i] > 0) {
      metrics_.record_miss(rel.when);
      obs::emit(bus_, obs::EventKind::kDeadlineMiss, rel.when, i, proc_);
    }
    Job j;
    j.task = i;
    j.deadline = rel.when + tasks_[i].period;
    j.remaining = tasks_[i].execution;
    j.period = tasks_[i].period;
    ready_.push(j);
    calendar_.push(Release{rel.when + tasks_[i].period, i});
    ++metrics_.jobs_released;
    ++live_jobs_[i];
    obs::emit(bus_, obs::EventKind::kJobRelease, rel.when, i, proc_,
              static_cast<double>(j.deadline));
  }
  const double release_ns = timer_.stop(metrics_);
  obs::emit(bus_, obs::EventKind::kOverheadNs, t, kNoTask, proc_, release_ns);
}

void UniprocSimulator::invoke_scheduler(Time t) {
  (void)t;
  timer_.start();

  // Preemption requires strictly higher priority (a deadline/period tie
  // never preempts under EDF/RM).
  const auto strictly_higher = [&](const Job& a, const Job& b) {
    if (config_.algorithm == UniAlgorithm::kEDF) return a.deadline < b.deadline;
    // RM assigns *distinct* fixed priorities: period ties resolve to a
    // strict total order by task index (matching rm_response_time), so
    // an equal-period, lower-index job does preempt.
    if (a.period != b.period) return a.period < b.period;
    return a.task < b.task;
  };
  if (has_running_) {
    if (!ready_.empty() && strictly_higher(ready_.top(), running_)) {
      // Preempt: running job returns to the ready queue.
      Job preempted = running_;
      running_ = ready_.pop();
      ready_.push(preempted);
      ++metrics_.preemptions;
      ++metrics_.context_switches;
      last_on_cpu_ = running_.task;
      obs::emit(bus_, obs::EventKind::kPreemption, t, preempted.task, proc_,
                static_cast<double>(running_.task));
      obs::emit(bus_, obs::EventKind::kContextSwitch, t, running_.task, proc_);
    }
  } else if (!ready_.empty()) {
    running_ = ready_.pop();
    has_running_ = true;
    if (running_.task != last_on_cpu_) {
      ++metrics_.context_switches;
      obs::emit(bus_, obs::EventKind::kContextSwitch, t, running_.task, proc_);
    }
    last_on_cpu_ = running_.task;
  }

  const double sched_ns = timer_.stop(metrics_);
  ++metrics_.scheduler_invocations;
  ++metrics_.scheduling_points;
  obs::emit(bus_, obs::EventKind::kSchedInvoke, t, kNoTask, proc_, sched_ns);
}

void UniprocSimulator::complete_running(Time t) {
  assert(has_running_ && running_.remaining == 0);
  ++metrics_.jobs_completed;
  // value = -1: Metrics::response_time is not tracked by this simulator,
  // and the counter sink must reproduce that.
  obs::emit(bus_, obs::EventKind::kJobComplete, t, running_.task, proc_, -1.0);
  // Misses are counted at the deadline (successor release) in
  // release_jobs, which also catches starved jobs; nothing to do here.
  --live_jobs_[running_.task];
  has_running_ = false;
}

void UniprocSimulator::run_until(Time until) {
  while (now_ < until) {
    release_jobs(now_);
    invoke_scheduler(now_);
    const Time next_rel = next_release_time();
    if (!has_running_) {
      // Idle until the next release.
      now_ = std::min(next_rel, until);
      continue;
    }
    const Time completion = now_ + running_.remaining;
    const Time advance_to = std::min({completion, next_rel, until});
    if (advance_to > now_)
      obs::emit(bus_, obs::EventKind::kExecSlice, now_, running_.task, proc_,
                static_cast<double>(advance_to - now_));
    running_.remaining -= advance_to - now_;
    now_ = advance_to;
    if (running_.remaining == 0) {
      complete_running(now_);
      // Completion is a scheduling point (pick the next job immediately,
      // unless a release at the same instant handles it on loop re-entry).
      if (now_ < until) {
        release_jobs(now_);
        invoke_scheduler(now_);
      }
    }
  }
}

}  // namespace pfair
