// Partitioned-system runtime: an ensemble of independent uniprocessor
// EDF/RM simulators behind a bin-packing front end — the actual runtime
// the EDF-FF schedulability analysis of Sec. 4 models.
//
// Complements the analytic comparison (Figs. 3-4) with an executable
// one: the same workload can be run through PfairSimulator (global PD2)
// and PartitionedSimulator (EDF-FF) and their realised preemption /
// migration / context-switch / miss counts compared directly.  By
// construction the partitioned system never migrates; its per-processor
// schedulers run independently and in parallel (the scheduling-overhead
// advantage the paper concedes to partitioning).
#pragma once

#include <deque>
#include <vector>

#include "partition/uni_partition.h"
#include "uniproc/uni_sim.h"

namespace pfair {

struct PartitionedConfig {
  int max_processors = 1 << 12;  ///< open as many as the heuristic needs
  Heuristic heuristic = Heuristic::kFirstFit;
  Acceptance acceptance = Acceptance::kEdfUtilization;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;
  bool measure_overhead = false;
};

class PartitionedSimulator {
 public:
  /// Partitions `tasks` (failing tasks are dropped and reported) and
  /// builds one uniprocessor simulator per opened processor.
  PartitionedSimulator(const std::vector<UniTask>& tasks, PartitionedConfig config);

  void run_until(Time until);

  [[nodiscard]] int processors() const noexcept { return static_cast<int>(sims_.size()); }
  [[nodiscard]] bool all_tasks_placed() const noexcept { return unplaced_.empty(); }
  [[nodiscard]] const std::vector<std::size_t>& unplaced() const noexcept { return unplaced_; }
  [[nodiscard]] const std::vector<int>& assignment() const noexcept { return assignment_; }

  /// Aggregated metrics across all processors.  Migrations are zero by
  /// construction; context switches and preemptions are summed.
  [[nodiscard]] UniMetrics aggregate_metrics() const;

  /// Metrics of one processor's scheduler.
  [[nodiscard]] const UniMetrics& processor_metrics(int proc) const {
    return sims_[static_cast<std::size_t>(proc)].metrics();
  }

 private:
  std::deque<UniprocSimulator> sims_;  ///< deque: elements never relocate
  std::vector<int> assignment_;
  std::vector<std::size_t> unplaced_;
};

}  // namespace pfair
