// Partitioned-system runtime: an ensemble of independent uniprocessor
// EDF/RM simulators behind a bin-packing front end — the actual runtime
// the EDF-FF schedulability analysis of Sec. 4 models.
//
// Complements the analytic comparison (Figs. 3-4) with an executable
// one: the same workload can be run through PfairSimulator (global PD2)
// and PartitionedSimulator (EDF-FF) and their realised preemption /
// migration / context-switch / miss counts compared directly.  By
// construction the partitioned system never migrates; its per-processor
// schedulers run independently and in parallel (the scheduling-overhead
// advantage the paper concedes to partitioning).
#pragma once

#include <vector>

#include "engine/metrics.h"
#include "engine/simulator.h"
#include "partition/uni_partition.h"
#include "uniproc/uni_sim.h"

namespace pfair {

struct PartitionConfig {
  int max_processors = 1 << 12;  ///< open as many as the heuristic needs
  Heuristic heuristic = Heuristic::kFirstFit;
  Acceptance acceptance = Acceptance::kEdfUtilization;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;
  bool measure_overhead = false;
};

class PartitionedSimulator : public engine::Simulator {
 public:
  /// Partitions `tasks` (failing tasks are dropped and reported) and
  /// builds one uniprocessor simulator per opened processor.
  PartitionedSimulator(const std::vector<UniTask>& tasks, PartitionConfig config);

  /// Admission before the simulation starts re-runs the partitioning
  /// over the enlarged set; returns false once run_until() has advanced
  /// time, or when the new task cannot be placed.
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  void run_until(Time until) override;

  [[nodiscard]] Time now() const noexcept override { return now_; }

  /// Aggregated metrics across all processors.  Migrations are zero by
  /// construction; everything else is summed (earliest first miss).
  [[nodiscard]] const engine::Metrics& metrics() const override;

  [[nodiscard]] int processors() const noexcept { return static_cast<int>(sims_.size()); }
  [[nodiscard]] bool all_tasks_placed() const noexcept { return unplaced_.empty(); }
  [[nodiscard]] const std::vector<std::size_t>& unplaced() const noexcept { return unplaced_; }
  [[nodiscard]] const std::vector<int>& assignment() const noexcept { return assignment_; }

  /// Metrics of one processor's scheduler.
  [[nodiscard]] const engine::Metrics& processor_metrics(int proc) const {
    return sims_[static_cast<std::size_t>(proc)].metrics();
  }

  /// Observation: each member simulator stamps its events with its
  /// global processor id.  Task ids in the events are processor-local
  /// (the index within that processor's partition), since the members
  /// schedule independently.  Survives admit()'s re-partitioning.
  void attach_observer(obs::EventBus* bus) override;

 private:
  /// (Re)partitions tasks_ and rebuilds the per-processor simulators.
  void rebuild();

  std::vector<UniTask> tasks_;
  PartitionConfig config_;
  std::vector<UniprocSimulator> sims_;  ///< movable: vector relocation is safe
  std::vector<int> assignment_;
  std::vector<std::size_t> unplaced_;
  Time now_ = 0;
  obs::EventBus* bus_ = nullptr;       ///< borrowed; reattached on rebuild()
  // admit() outcomes; the member simulators only ever see placed tasks,
  // so these counters live on the ensemble and are stitched into the
  // aggregate by metrics().
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  mutable engine::Metrics aggregate_;  ///< cache refreshed by metrics()
};

}  // namespace pfair
