// Scoped self-profiling: phase timers over the engine's own hot paths.
//
// A ProfScope wall-clock-times one phase of engine work — a shard's
// Phase-A sweep, the coordinator merge, a legacy miss sweep, a
// ThreadPool job — into per-thread accumulators, merged on demand into
// the obs::MetricsRegistry as named timers with p50/p95/p99.  Optional
// span recording additionally logs every (phase, shard, worker, slot,
// ns) interval so PerfettoSink can draw per-shard kernel-phase tracks
// and per-worker utilization tracks next to the schedule.
//
// Cost model (the reason this can live inside the slot kernel):
//   - detached (the default): ProfScope construction is one relaxed
//     atomic load and a branch — no clock is read, nothing is stored;
//   - attached: two TSC reads (calibrated to ns once; steady_clock on
//     non-x86) plus a handful of relaxed single-writer atomic updates —
//     no lock, no search — per scope.  Measured overhead is in
//     EXPERIMENTS.md "Profiling".
//
// Determinism: profiling writes only to prof's own thread-local buffers
// and (at snapshot time) the registry; no scheduling decision ever
// reads either.  Seeded simulator output is byte-identical with
// profiling attached or detached — pinned by tests/obs/phase_trace_test.
//
// Threading: each thread accumulates into its own buffer (registered
// once, under a global mutex).  The aggregate fields are single-writer
// relaxed atomics — only the owning thread writes, collectors only
// read — so collection from another thread is race-free (and exact at
// quiesce points) with zero locking on the record path; only the
// opt-in span log takes a per-buffer mutex.  Buffers persist for the
// process lifetime; reset() zeroes them in place.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/histogram.h"
#include "util/types.h"

namespace pfair::obs {
class MetricsRegistry;
}  // namespace pfair::obs

namespace pfair::obs::prof {

/// The instrumented phases.  A fixed enum (not strings) keeps the hot
/// path at array indexing; phase_name() maps to the registry timer key.
enum class Phase : std::uint8_t {
  kKernelPhaseA,    ///< SoA kernel: per-shard gather / miss sweep / top-M
  kKernelMerge,     ///< SoA kernel: sequential k-way merge + selection
  kKernelAdvance,   ///< SoA kernel: per-shard cursor advancement (B2)
  kLegacyMissSweep, ///< legacy kernel: ready-queue deadline-miss pops
  kLegacySelect,    ///< legacy kernel: top-M pop + subtask advancement
  kRelease,         ///< release calendar drain (legacy wheel)
  kAssign,          ///< processor assignment + per-slot accounting
  kAdmit,           ///< admission (admit()/join()) decision path
  kPoolJob,         ///< one ThreadPool job execution (worker busy time)
};
inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kPoolJob) + 1;

/// Registry timer name of a phase ("kernel.phase_a", "pool.job", ...).
[[nodiscard]] const char* phase_name(Phase p) noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_spans;
/// Records one finished scope into the calling thread's buffer.
void record(Phase p, std::int32_t shard, Time slot, std::uint64_t ns);
/// Monotonic nanosecond clock (steady_clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;
}  // namespace detail

/// Master switch.  Everything below is inert (and ProfScope free) while
/// this is false.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept;

/// Span recording (needs enabled()): log individual intervals for the
/// Perfetto phase tracks, not just aggregates.  Off by default — spans
/// grow with the horizon, aggregates do not.
inline bool span_recording() noexcept {
  return detail::g_spans.load(std::memory_order_relaxed);
}
void set_span_recording(bool on) noexcept;

/// Labels the calling thread for span attribution (-1 = main/unnamed).
/// engine::ThreadPool tags each worker with its index.
void set_worker_index(std::int32_t index) noexcept;

/// One logged interval.  `seq` is per-thread monotone so span order is
/// reconstructible even though wall durations vary run to run.
struct Span {
  Phase phase = Phase::kKernelPhaseA;
  std::int32_t shard = -1;   ///< shard index, or -1 for coordinator work
  std::int32_t worker = -1;  ///< pool worker index, or -1 for the main thread
  Time slot = -1;            ///< simulated slot the work belonged to (-1 = none)
  std::uint64_t ns = 0;
  std::uint64_t seq = 0;
};

/// Aggregated totals for one phase, merged across every thread.
struct PhaseTotals {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  Histogram hist;  ///< shared exponential ns buckets (sample_histogram())
};

/// The bucket layout every per-thread phase histogram uses (32 ns lower
/// edge, ×2 per bucket — covers sub-µs scopes to multi-second stalls).
[[nodiscard]] Histogram sample_histogram();

/// Merged per-phase totals across all threads (index = Phase).
[[nodiscard]] std::vector<PhaseTotals> collect_totals();

/// All recorded spans, sorted by (slot, shard, phase, worker, seq) — a
/// deterministic order even though the ns payloads are wall-clock.
[[nodiscard]] std::vector<Span> collect_spans();

/// Publishes collect_totals() into `reg` as timers named phase_name(p)
/// (phases with zero samples are skipped).  Idempotent — each call
/// replaces the previous publication.
void snapshot_into(MetricsRegistry& reg);

/// Zeroes every thread's accumulators and span log in place (buffer
/// registrations survive).  Does not touch enabled()/span_recording().
void reset();

/// Times one phase while in scope.  `shard` tags per-shard work,
/// `slot` the simulated time the work belongs to (for span tracks).
class ProfScope {
 public:
  explicit ProfScope(Phase p, std::int32_t shard = -1, Time slot = -1) noexcept
      : phase_(p), shard_(shard), slot_(slot), active_(enabled()) {
    if (active_) t0_ = detail::now_ns();
  }
  ~ProfScope() {
    if (active_) detail::record(phase_, shard_, slot_, detail::now_ns() - t0_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  std::uint64_t t0_ = 0;
  Phase phase_;
  std::int32_t shard_;
  Time slot_;
  bool active_;
};

}  // namespace pfair::obs::prof
