// The event bus: fan-out point between simulators and sinks.
//
// Simulators hold a nullable `obs::EventBus*` and guard every emission
// with it — a detached simulator pays exactly one pointer test per
// would-be event (measured <2% on compare_runtime), and an attached one
// pays the fan-out only for the sinks actually registered.  The bus
// owns nothing: sinks outlive it (they are typically stack objects in
// the bench/test that wired them up).
//
//   obs::EventBus bus;
//   obs::CounterSink counters;
//   bus.add_sink(&counters);
//   sim.attach_observer(&bus);
//   sim.run_until(h);
//   bus.flush();
#pragma once

#include <vector>

#include "obs/sink.h"

namespace pfair::obs {

class EventBus {
 public:
  /// Registers a sink (non-owning).  Sinks receive events in
  /// registration order.
  void add_sink(Sink* sink) { sinks_.push_back(sink); }

  [[nodiscard]] bool active() const noexcept { return !sinks_.empty(); }
  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }

  void emit(const Event& e) const {
    for (Sink* s : sinks_) s->on_event(e);
  }

  /// Convenience emission without spelling out an Event aggregate.
  void emit(EventKind kind, Time time, TaskId task = kNoTask, ProcId proc = kNoProc,
            double value = 0.0) const {
    emit(Event{kind, time, task, proc, value});
  }

  /// Finalizes every sink's output.
  void flush() const {
    for (Sink* s : sinks_) s->flush();
  }

 private:
  std::vector<Sink*> sinks_;
};

/// The guard simulators use at every instrumentation point: emission is
/// a single null test when no observer is attached.
inline void emit(const EventBus* bus, EventKind kind, Time time, TaskId task = kNoTask,
                 ProcId proc = kNoProc, double value = 0.0) {
  if (bus != nullptr) bus->emit(kind, time, task, proc, value);
}

}  // namespace pfair::obs
