#include "obs/trace_analysis.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace pfair::obs {

namespace {

std::optional<EventKind> kind_from_string(const std::string& s) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const EventKind kind = static_cast<EventKind>(k);
    if (s == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

/// One-line rendering of an event for the miss-context listing.
std::string describe_event(const Event& e) {
  std::string out = fmt("  t=%-6lld %-20s", static_cast<long long>(e.time),
                        to_string(e.kind));
  if (e.task != kNoTask) out += fmt(" task=%u", e.task);
  if (e.proc != kNoProc) out += fmt(" proc=%u", e.proc);
  if (e.value != 0.0) out += fmt(" value=%g", e.value);
  return out;
}

}  // namespace

std::optional<Event> parse_event_line(const std::string& line) {
  const std::optional<json::Value> v = json::parse(line);
  if (!v || !v->is_object()) return std::nullopt;
  const json::Value* kind = v->find("kind");
  if (kind == nullptr || !kind->is_string()) return std::nullopt;
  const std::optional<EventKind> k = kind_from_string(kind->as_string());
  if (!k) return std::nullopt;
  Event e;
  e.kind = *k;
  e.time = static_cast<Time>(v->number_or("t", 0));
  e.task = static_cast<TaskId>(v->number_or("task", static_cast<double>(kNoTask)));
  e.proc = static_cast<ProcId>(v->number_or("proc", static_cast<double>(kNoProc)));
  e.value = v->number_or("value", 0.0);
  return e;
}

LoadResult load_jsonl(std::istream& is) {
  LoadResult out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (std::optional<Event> e = parse_event_line(line)) {
      out.events.push_back(*e);
    } else {
      ++out.malformed_lines;
    }
  }
  return out;
}

std::array<std::uint64_t, kEventKindCount> count_by_kind(const std::vector<Event>& events) {
  std::array<std::uint64_t, kEventKindCount> counts{};
  for (const Event& e : events) ++counts[static_cast<std::size_t>(e.kind)];
  return counts;
}

std::vector<PreemptionStat> top_preemptors(const std::vector<Event>& events,
                                           std::size_t top) {
  std::vector<PreemptionStat> stats;
  const auto stat_for = [&stats](TaskId id) -> PreemptionStat& {
    for (PreemptionStat& s : stats)
      if (s.task == id) return s;
    stats.push_back(PreemptionStat{id, 0, 0});
    return stats.back();
  };
  for (const Event& e : events) {
    if (e.kind != EventKind::kPreemption) continue;
    if (e.task != kNoTask) ++stat_for(e.task).victim;
    if (e.value >= 0.0) ++stat_for(static_cast<TaskId>(e.value)).caused;
  }
  std::sort(stats.begin(), stats.end(), [](const PreemptionStat& a, const PreemptionStat& b) {
    if (a.caused != b.caused) return a.caused > b.caused;
    if (a.victim != b.victim) return a.victim > b.victim;
    return a.task < b.task;
  });
  if (stats.size() > top) stats.resize(top);
  return stats;
}

std::vector<std::vector<std::uint64_t>> migration_matrix(const std::vector<Event>& events) {
  std::size_t procs = 0;
  for (const Event& e : events) {
    if (e.kind != EventKind::kMigration || e.proc == kNoProc || e.value < 0.0) continue;
    procs = std::max({procs, static_cast<std::size_t>(e.proc) + 1,
                      static_cast<std::size_t>(e.value) + 1});
  }
  std::vector<std::vector<std::uint64_t>> m(procs, std::vector<std::uint64_t>(procs, 0));
  for (const Event& e : events) {
    if (e.kind != EventKind::kMigration || e.proc == kNoProc || e.value < 0.0) continue;
    ++m[static_cast<std::size_t>(e.value)][e.proc];
  }
  return m;
}

std::optional<MissContext> first_miss_context(const std::vector<Event>& events,
                                              Time window) {
  const Event* first = nullptr;
  for (const Event& e : events) {
    if (e.kind != EventKind::kDeadlineMiss && e.kind != EventKind::kComponentMiss) continue;
    if (first == nullptr || e.time < first->time) first = &e;
  }
  if (first == nullptr) return std::nullopt;
  MissContext out;
  out.miss = *first;
  for (const Event& e : events) {
    if (e.time >= first->time - window && e.time <= first->time + window)
      out.window.push_back(e);
  }
  return out;
}

std::string format_summary(const std::vector<Event>& events) {
  const auto counts = count_by_kind(events);
  std::ostringstream os;
  os << "event totals (" << events.size() << " events)\n";
  Time lo = 0;
  Time hi = 0;
  if (!events.empty()) {
    lo = hi = events.front().time;
    for (const Event& e : events) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  os << "  time range: [" << lo << ", " << hi << "]\n";
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    if (counts[k] == 0) continue;
    os << fmt("  %-20s %llu\n", to_string(static_cast<EventKind>(k)),
              static_cast<unsigned long long>(counts[k]));
  }
  return os.str();
}

std::string format_preemptors(const std::vector<Event>& events, std::size_t top) {
  const std::vector<PreemptionStat> stats = top_preemptors(events, top);
  std::ostringstream os;
  os << "top preemptors (caused = preemptions attributed to the task;\n"
        "                victim = times the task itself was preempted)\n";
  if (stats.empty()) {
    os << "  no preemption events in trace\n";
    return os.str();
  }
  os << fmt("  %-8s %10s %10s\n", "task", "caused", "victim");
  for (const PreemptionStat& s : stats)
    os << fmt("  T%-7u %10llu %10llu\n", s.task,
              static_cast<unsigned long long>(s.caused),
              static_cast<unsigned long long>(s.victim));
  return os.str();
}

std::string format_migration_matrix(const std::vector<Event>& events) {
  const auto m = migration_matrix(events);
  std::ostringstream os;
  os << "migration matrix (rows = from processor, cols = to)\n";
  if (m.empty()) {
    os << "  no migration events in trace\n";
    return os.str();
  }
  os << "        ";
  for (std::size_t c = 0; c < m.size(); ++c) os << fmt("%8zu", c);
  os << '\n';
  for (std::size_t r = 0; r < m.size(); ++r) {
    os << fmt("  %4zu  ", r);
    for (std::size_t c = 0; c < m.size(); ++c)
      os << fmt("%8llu", static_cast<unsigned long long>(m[r][c]));
    os << '\n';
  }
  return os.str();
}

std::string format_first_miss(const std::vector<Event>& events, Time window) {
  const std::optional<MissContext> ctx = first_miss_context(events, window);
  std::ostringstream os;
  if (!ctx) {
    os << "no deadline miss in trace\n";
    return os.str();
  }
  os << "first miss: " << to_string(ctx->miss.kind) << " of task " << ctx->miss.task
     << " at t=" << ctx->miss.time << "\n";
  os << "context window [t-" << window << ", t+" << window << "], " << ctx->window.size()
     << " events:\n";
  for (const Event& e : ctx->window) os << describe_event(e) << '\n';
  return os.str();
}

std::string format_registry_snapshot(const json::Value& doc) {
  if (!doc.is_object() ||
      (doc.find("counters") == nullptr && doc.find("timers") == nullptr)) {
    return "not a registry snapshot (expected counters/gauges/timers object)\n";
  }
  std::ostringstream os;
  os << "registry snapshot\n";
  bool any = false;
  if (const json::Value* c = doc.find("counters"); c != nullptr && c->is_object()) {
    for (const auto& [name, v] : c->as_object()) {
      if (!v.is_number()) continue;
      os << fmt("  counter %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(v.as_number()));
      any = true;
    }
  }
  if (const json::Value* g = doc.find("gauges"); g != nullptr && g->is_object()) {
    for (const auto& [name, v] : g->as_object()) {
      if (!v.is_number()) continue;
      os << fmt("  gauge   %-28s %g\n", name.c_str(), v.as_number());
      any = true;
    }
  }
  if (const json::Value* t = doc.find("timers"); t != nullptr && t->is_object()) {
    for (const auto& [name, v] : t->as_object()) {
      if (!v.is_object()) continue;
      os << fmt("  timer   %-28s n=%-8llu avg=%.0fns p50=%.0fns p95=%.0fns "
                "p99=%.0fns max=%.0fns\n",
                name.c_str(),
                static_cast<unsigned long long>(v.number_or("count", 0.0)),
                v.number_or("avg_ns", 0.0), v.number_or("p50_ns", 0.0),
                v.number_or("p95_ns", 0.0), v.number_or("p99_ns", 0.0),
                v.number_or("max_ns", 0.0));
      any = true;
    }
  }
  if (!any) os << "  (empty)\n";
  return os.str();
}

std::string validate_perfetto_json(const std::string& text) {
  const std::optional<json::Value> doc = json::parse(text);
  if (!doc) return "not valid JSON";
  if (!doc->is_object()) return "top level is not an object";
  const json::Value* events = doc->find("traceEvents");
  if (events == nullptr) return "missing traceEvents";
  if (!events->is_array()) return "traceEvents is not an array";
  std::size_t i = 0;
  for (const json::Value& e : events->as_array()) {
    const std::string at = "traceEvents[" + std::to_string(i++) + "]";
    if (!e.is_object()) return at + " is not an object";
    const json::Value* name = e.find("name");
    if (name == nullptr || !name->is_string()) return at + " missing string name";
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1)
      return at + " missing one-char ph";
    const json::Value* pid = e.find("pid");
    if (pid == nullptr || !pid->is_number()) return at + " missing numeric pid";
    if (ph->as_string() != "M") {  // metadata events carry no timestamp
      const json::Value* ts = e.find("ts");
      if (ts == nullptr || !ts->is_number()) return at + " missing numeric ts";
    }
    if (ph->as_string() == "X") {
      const json::Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_number() < 0)
        return at + " X event missing non-negative dur";
    }
  }
  return {};
}

}  // namespace pfair::obs
