#include "obs/jsonl_sink.h"

#include <cmath>
#include <cstdio>

namespace pfair::obs {

void JsonlSink::on_event(const Event& e) {
  // snprintf into a stack buffer: one ostream insert per event instead
  // of a dozen operator<< calls.
  char buf[160];
  int n = std::snprintf(buf, sizeof buf, "{\"t\":%lld,\"kind\":\"%s\"",
                        static_cast<long long>(e.time), to_string(e.kind));
  if (e.task != kNoTask)
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), ",\"task\":%u",
                       e.task);
  if (e.proc != kNoProc)
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), ",\"proc\":%u",
                       e.proc);
  if (e.value != 0.0) {
    // %.17g keeps doubles round-trippable; integral payloads print bare.
    if (std::nearbyint(e.value) == e.value && std::fabs(e.value) < 1e15) {
      n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                         ",\"value\":%lld", static_cast<long long>(e.value));
    } else {
      n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                         ",\"value\":%.17g", e.value);
    }
  }
  n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), "}\n");
  os_->write(buf, n);
}

void JsonlSink::flush() { os_->flush(); }

}  // namespace pfair::obs
