// Minimal JSON reader/writer for the obs layer's own output.
//
// The repo bans external dependencies, and the obs tooling needs to
// read back what its sinks write: JSONL event lines, Perfetto trace
// JSON, and BENCH_*.json reports.  This is a small recursive-descent
// parser over that closed world — full JSON syntax, values modelled as
// a tagged variant — plus a canonical dump() for round-trip tests and
// schema checks.  It is a *reader for trusted local files*, not a
// hardened network-facing parser (recursion depth is capped, numbers
// are doubles).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pfair::obs::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps members sorted: dump() is canonical by construction.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }

  /// Member as number with a fallback (the JSONL reader's idiom).
  [[nodiscard]] double number_or(const std::string& key, double fallback) const {
    const Value* m = find(key);
    return m != nullptr && m->is_number() ? m->as_number() : fallback;
  }

  /// Member as string with a fallback.
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const {
    const Value* m = find(key);
    return m != nullptr && m->is_string() ? m->as_string() : std::move(fallback);
  }

  [[nodiscard]] bool operator==(const Value& o) const { return v_ == o.v_; }

  /// Canonical serialization (sorted object keys, %.17g numbers).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_ = nullptr;
};

/// Parses one JSON document; std::nullopt on any syntax error or
/// trailing garbage.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// Streaming writer for one flat JSON object on the serving hot path.
///
/// Appends members straight into a caller-owned string and produces
/// bytes identical to building an Object (std::map) with the same
/// members and dump()ing it — PROVIDED members are appended in
/// strictly ascending key order, which debug builds assert (std::map
/// iteration *is* sorted order, so the equivalence is structural).
/// pfaird answers every decision line through this instead of paying
/// a tree of Value nodes plus their string allocations per line.
class ObjectWriter {
 public:
  /// Opens the object: appends '{' to `out`, which must outlive the
  /// writer.  finish() closes it.
  explicit ObjectWriter(std::string& out);

  ObjectWriter& field_bool(std::string_view key, bool v);
  /// Integer member, byte-identical to dump()'s %.17g rendering of the
  /// same integral double; |v| must stay within the exactly-
  /// representable 2^53 (debug-asserted).
  ObjectWriter& field_int(std::string_view key, std::int64_t v);
  ObjectWriter& field_str(std::string_view key, std::string_view v);

  /// Closes the object.  No fields may follow.
  void finish();

 private:
  void begin(std::string_view key);

  std::string& out_;
  bool first_ = true;
#ifndef NDEBUG
  std::string last_key_;
  bool finished_ = false;
#endif
};

}  // namespace pfair::obs::json
