// Cheap monotonic timestamps for hot-path latency accounting.
//
// The serving daemon stamps every decision twice; on virtualized CI
// hosts a std::chrono::steady_clock read costs hundreds of
// nanoseconds — comparable to the decision itself after the ISSUE-10
// throughput work.  approx_now_ns() reads the TSC instead (x86-64,
// constant-rate on every host this repo targets) and rescales it to
// nanoseconds against a one-time steady_clock calibration, falling
// back to steady_clock on other architectures or when calibration
// fails.
//
// The clock is for *observability deltas* (latency histograms, the
// metrics registry), never for decision logic: decisions are pure
// functions of the request history by the serve-layer determinism
// contract, and nothing wall-clock may leak into them.  Accuracy is
// calibration-limited (~0.1% of the measured interval), far below
// histogram bucket width.
#pragma once

#include <cstdint>

namespace pfair::obs {

/// Monotonic nanoseconds since an arbitrary process-local origin.
/// First call pays a ~2 ms calibration spin; every later call is a
/// TSC read.  Thread-safe.
[[nodiscard]] std::uint64_t approx_now_ns() noexcept;

}  // namespace pfair::obs
