// Lag-timeline sampler: per-task lag(t) recorded over a run.
//
// PD2's entire correctness story is "lag stays inside (-1, 1)"; this
// sink turns the kLagSample events the Pfair simulator emits (when
// PfairConfig::lag_sample_every > 0) into per-task timelines, so the lag
// trajectory behind a miss — or behind WRR's growing allocation error —
// can be plotted instead of inferred.  Export is a flat CSV
// (task,name?,t,lag) that gnuplot/pandas load directly; the Perfetto
// sink renders the same events as counter tracks.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/sink.h"

namespace pfair::obs {

class LagSampler : public Sink {
 public:
  void on_event(const Event& e) override {
    if (e.kind != EventKind::kLagSample) return;
    if (e.task >= timelines_.size()) timelines_.resize(e.task + 1);
    timelines_[e.task].emplace_back(e.time, e.value);
  }

  /// Timeline of one task: (time, lag) pairs in time order (empty for
  /// never-sampled ids).
  [[nodiscard]] const std::vector<std::pair<Time, double>>& timeline(TaskId id) const {
    static const std::vector<std::pair<Time, double>> kEmpty;
    return id < timelines_.size() ? timelines_[id] : kEmpty;
  }

  [[nodiscard]] std::size_t task_count() const noexcept { return timelines_.size(); }

  /// Largest |lag| seen for `id` (0 when never sampled).
  [[nodiscard]] double max_abs_lag(TaskId id) const {
    double best = 0.0;
    for (const auto& [t, lag] : timeline(id)) {
      const double a = lag < 0 ? -lag : lag;
      if (a > best) best = a;
    }
    return best;
  }

  /// CSV rows "task,t,lag" with a header line.
  void write_csv(std::ostream& os) const {
    os << "task,t,lag\n";
    for (TaskId id = 0; id < timelines_.size(); ++id)
      for (const auto& [t, lag] : timelines_[id])
        os << id << ',' << t << ',' << lag << '\n';
  }

 private:
  std::vector<std::vector<std::pair<Time, double>>> timelines_;
};

}  // namespace pfair::obs
