// Structured scheduling events: the vocabulary of the pfair::obs layer.
//
// Every simulator in the repo narrates its run as a stream of typed
// events — slot boundaries, dispatches, preemptions, migrations,
// context switches, releases, completions, deadline misses, dynamic
// joins/leaves, CBS budget postponements, lag samples, and
// scheduler-invocation timings.  The terminal aggregates in
// engine::Metrics say *how many*; the event stream says *when* and
// *where*, which is what timelines, histograms, and trace viewers
// need (the multi-criteria argument of Lupu et al.: distributions and
// timelines distinguish schedulers, totals alone do not).
//
// Events are deliberately flat POD: one kind, one timestamp, optional
// task/processor, one double payload.  The payload meaning is fixed
// per kind (see each enumerator).  Flat events keep emission at a few
// stores plus a virtual call per attached sink, and make every sink —
// counters, JSONL, Perfetto — a simple switch.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace pfair::obs {

enum class EventKind : std::uint8_t {
  kSlotBegin,        ///< quantum sims, once per slot; value = live processors
  kSlotEnd,          ///< quantum sims, once per slot; value = busy processors
  kDispatch,         ///< quantum sims: task gets a quantum on proc;
                     ///< value = dispatch latency (slots since pseudo-release,
                     ///< -1 when the scheduler has no release to measure from)
  kExecSlice,        ///< event-driven sims: task runs on proc; value = duration
  kServedSlice,      ///< CBS: server `task` executes; value = duration
  kPreemption,       ///< `task` was descheduled with work left;
                     ///< value = preempting task id (-1 when unattributable)
  kMigration,        ///< `task` resumes on proc; value = previous processor
  kContextSwitch,    ///< proc switches in `task`
  kComponentSwitch,  ///< supertask-internal EDF switch; value = component index
  kJobRelease,       ///< value = absolute deadline of the released job
  kJobComplete,      ///< value = response time (slots; -1 when not tracked)
  kServedJobComplete,///< CBS: server `task` finished an aperiodic job
  kDeadlineMiss,     ///< `task` missed at `time`
  kComponentMiss,    ///< supertask component miss (task = the supertask)
  kLagViolation,     ///< Pfair lag bound violated for `task`
  kLagSample,        ///< value = lag(task, time) as a double
  kTaskJoin,         ///< value = weight of the joining task
  kTaskLeave,        ///< task's capacity freed
  kBudgetPostpone,   ///< CBS: server budget exhausted, deadline postponed;
                     ///< value = the new absolute server deadline
  kSchedInvoke,      ///< one scheduler invocation; value = wall-clock ns
                     ///< (0 when overhead timing is off)
  kOverheadNs,       ///< extra timed scheduling work (release processing)
                     ///< not counted as a separate invocation; value = ns
  kAdmitRequest,     ///< serve: an admission request arrived;
                     ///< value = requested weight e/p as a double
  kAdmitGrant,       ///< serve: request admitted; value = deciding tier (0-2)
  kAdmitReject,      ///< serve: request rejected; value = deciding tier (0-2)
};

/// Stable lower-case name used by the JSONL sink and the trace CLI.
[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// Number of enumerators (for per-kind tables in sinks).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kAdmitReject) + 1;

struct Event {
  EventKind kind = EventKind::kSlotBegin;
  Time time = 0;
  TaskId task = kNoTask;
  ProcId proc = kNoProc;
  double value = 0.0;
};

}  // namespace pfair::obs
