#include "obs/prof.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define PFAIR_PROF_TSC 1
#endif

#include "obs/registry.h"

namespace pfair::obs::prof {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_spans{false};
}  // namespace detail

namespace {

/// sample_histogram() is exponential(32, 2, 26): bucket j (1-based)
/// covers [2^(j+4), 2^(j+5)) ns, so the hot path indexes buckets with
/// one bit scan instead of a binary search over the edge array.
/// Slot 0 = underflow (< 32 ns), 1..26 = buckets, 27 = overflow.
constexpr std::size_t kBucketSlots = 28;

std::size_t bucket_index(std::uint64_t ns) noexcept {
  if (ns < 32) return 0;
  const auto bw = static_cast<std::size_t>(std::bit_width(ns));  // >= 6
  return bw <= 31 ? bw - 5 : kBucketSlots - 1;
}

/// One phase's accumulators.  Single-writer discipline: only the owning
/// thread writes (relaxed load+store — plain moves on x86, no RMW);
/// collectors read the same atomics, so cross-thread collection is
/// race-free without any lock on the record path.  A collector running
/// *while* the owner records may see a count/total pair one sample
/// apart — snapshots are taken at quiesce points, where they are exact.
struct PhaseCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
  std::array<std::atomic<std::uint64_t>, kBucketSlots> buckets{};
};

struct ThreadBuf {
  std::array<PhaseCell, kPhaseCount> phases{};
  std::atomic<std::int32_t> worker{-1};
  std::mutex mu;  ///< guards the span log only (span recording is opt-in)
  std::vector<Span> spans;
  std::uint64_t next_seq = 0;
};

struct ProfState {
  std::mutex mu;               ///< guards `bufs` registration
  std::deque<ThreadBuf> bufs;  ///< stable addresses; never shrinks
};

ProfState& state() {
  static ProfState s;
  return s;
}

thread_local ThreadBuf* tl_buf = nullptr;

ThreadBuf& local_buf() {
  if (tl_buf == nullptr) {
    ProfState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.bufs.emplace_back();
    tl_buf = &s.bufs.back();
  }
  return *tl_buf;
}

constexpr const char* kPhaseNames[kPhaseCount] = {
    "kernel.phase_a",   // kKernelPhaseA
    "kernel.merge",     // kKernelMerge
    "kernel.advance",   // kKernelAdvance
    "legacy.miss_sweep",// kLegacyMissSweep
    "legacy.select",    // kLegacySelect
    "sim.release",      // kRelease
    "sim.assign",       // kAssign
    "sim.admit",        // kAdmit
    "pool.job",         // kPoolJob
};

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#ifdef PFAIR_PROF_TSC
/// ns per TSC tick, calibrated once against steady_clock over a ~200 µs
/// spin (~0.1% accurate — plenty for a profiler).  set_enabled(true)
/// calibrates eagerly so no timed scope pays the spin; the fallback in
/// now_ns() covers scopes racing an uncalibrated enable.  Concurrent
/// calibrations store near-identical factors — harmless.
std::atomic<double> g_ns_per_tick{0.0};

double calibrate_tsc() noexcept {
  const std::uint64_t s0 = steady_ns();
  const std::uint64_t t0 = __rdtsc();
  while (steady_ns() - s0 < 200000) {
  }
  const std::uint64_t s1 = steady_ns();
  const std::uint64_t t1 = __rdtsc();
  const double f = static_cast<double>(s1 - s0) / static_cast<double>(t1 - t0);
  g_ns_per_tick.store(f, std::memory_order_relaxed);
  return f;
}
#endif

}  // namespace

const char* phase_name(Phase p) noexcept {
  return kPhaseNames[static_cast<std::size_t>(p)];
}

namespace detail {

std::uint64_t now_ns() noexcept {
#ifdef PFAIR_PROF_TSC
  double f = g_ns_per_tick.load(std::memory_order_relaxed);
  if (f == 0.0) f = calibrate_tsc();
  return static_cast<std::uint64_t>(static_cast<double>(__rdtsc()) * f);
#else
  return steady_ns();
#endif
}

void record(Phase p, std::int32_t shard, Time slot, std::uint64_t ns) {
  ThreadBuf& b = local_buf();
  PhaseCell& c = b.phases[static_cast<std::size_t>(p)];
  c.count.store(c.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  c.total_ns.store(c.total_ns.load(std::memory_order_relaxed) + ns,
                   std::memory_order_relaxed);
  if (ns > c.max_ns.load(std::memory_order_relaxed))
    c.max_ns.store(ns, std::memory_order_relaxed);
  std::atomic<std::uint64_t>& bucket = c.buckets[bucket_index(ns)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  if (span_recording()) {
    const std::lock_guard<std::mutex> lock(b.mu);
    b.spans.push_back(Span{p, shard, b.worker.load(std::memory_order_relaxed),
                           slot, ns, b.next_seq++});
  }
}

}  // namespace detail

void set_enabled(bool on) noexcept {
#ifdef PFAIR_PROF_TSC
  if (on && g_ns_per_tick.load(std::memory_order_relaxed) == 0.0) calibrate_tsc();
#endif
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_span_recording(bool on) noexcept {
  detail::g_spans.store(on, std::memory_order_relaxed);
}

void set_worker_index(std::int32_t index) noexcept {
  local_buf().worker.store(index, std::memory_order_relaxed);
}

Histogram sample_histogram() { return Histogram::exponential(32.0, 2.0, 26); }

std::vector<PhaseTotals> collect_totals() {
  std::vector<PhaseTotals> out(kPhaseCount);
  for (PhaseTotals& t : out) t.hist = sample_histogram();
  ProfState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (ThreadBuf& b : s.bufs) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const PhaseCell& c = b.phases[i];
      const std::uint64_t count = c.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      out[i].count += count;
      out[i].total_ns += c.total_ns.load(std::memory_order_relaxed);
      const std::uint64_t mx = c.max_ns.load(std::memory_order_relaxed);
      if (mx > out[i].max_ns) out[i].max_ns = mx;
      // Rebuild the ns histogram from the lock-free bucket counts:
      // bucket j's lower edge 2^(j+4) lands exactly in bucket j again.
      if (const std::uint64_t n = c.buckets[0].load(std::memory_order_relaxed))
        out[i].hist.add(0.0, n);
      for (std::size_t j = 1; j + 1 < kBucketSlots; ++j) {
        if (const std::uint64_t n = c.buckets[j].load(std::memory_order_relaxed))
          out[i].hist.add(std::ldexp(32.0, static_cast<int>(j) - 1), n);
      }
      if (const std::uint64_t n =
              c.buckets[kBucketSlots - 1].load(std::memory_order_relaxed))
        out[i].hist.add(std::ldexp(32.0, 26), n);  // >= top edge: overflow
    }
  }
  return out;
}

std::vector<Span> collect_spans() {
  std::vector<Span> out;
  ProfState& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (ThreadBuf& b : s.bufs) {
      const std::lock_guard<std::mutex> block(b.mu);
      out.insert(out.end(), b.spans.begin(), b.spans.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.shard != b.shard) return a.shard < b.shard;
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.worker != b.worker) return a.worker < b.worker;
    return a.seq < b.seq;
  });
  return out;
}

void snapshot_into(MetricsRegistry& reg) {
  const std::vector<PhaseTotals> totals = collect_totals();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseTotals& t = totals[i];
    if (t.count == 0) continue;
    TimerStats ts;
    ts.count = t.count;
    ts.total_ns = t.total_ns;
    ts.max_ns = t.max_ns;
    ts.hist = t.hist;
    reg.record_timer(phase_name(static_cast<Phase>(i)), ts);
  }
}

void reset() {
  ProfState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (ThreadBuf& b : s.bufs) {
    for (PhaseCell& c : b.phases) {
      c.count.store(0, std::memory_order_relaxed);
      c.total_ns.store(0, std::memory_order_relaxed);
      c.max_ns.store(0, std::memory_order_relaxed);
      for (std::atomic<std::uint64_t>& n : c.buckets)
        n.store(0, std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> block(b.mu);
    b.spans.clear();
    b.next_seq = 0;
  }
}

}  // namespace pfair::obs::prof
