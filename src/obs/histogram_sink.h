// HistogramSink: distribution metrics folded from the event stream.
//
// Three distributions the paper's totals flatten away:
//   - response times (slots), from kJobComplete events that carry one;
//   - scheduler-invocation cost (ns), from kSchedInvoke / kOverheadNs
//     when overhead timing is enabled;
//   - per-slot dispatch latency (slots between a subtask's
//     pseudo-release and the quantum it actually received), from
//     kDispatch events.
// Each is an obs::Histogram that ExperimentHarness serializes into the
// BENCH_*.json reports.
#pragma once

#include <utility>

#include "obs/histogram.h"
#include "obs/sink.h"

namespace pfair::obs {

class HistogramSink : public Sink {
 public:
  HistogramSink()
      : response_time_(Histogram::exponential(1.0, 2.0, 20)),
        sched_ns_(Histogram::exponential(16.0, 2.0, 24)),
        dispatch_latency_(Histogram::linear(0.0, 64.0, 64)) {}

  HistogramSink(Histogram response_time, Histogram sched_ns, Histogram dispatch_latency)
      : response_time_(std::move(response_time)),
        sched_ns_(std::move(sched_ns)),
        dispatch_latency_(std::move(dispatch_latency)) {}

  void on_event(const Event& e) override {
    switch (e.kind) {
      case EventKind::kJobComplete:
        if (e.value >= 0.0) response_time_.add(e.value);
        break;
      case EventKind::kSchedInvoke:
      case EventKind::kOverheadNs:
        if (e.value > 0.0) sched_ns_.add(e.value);
        break;
      case EventKind::kDispatch:
        if (e.value >= 0.0) dispatch_latency_.add(e.value);
        break;
      default:
        break;
    }
  }

  [[nodiscard]] const Histogram& response_time() const noexcept { return response_time_; }
  [[nodiscard]] const Histogram& sched_ns() const noexcept { return sched_ns_; }
  [[nodiscard]] const Histogram& dispatch_latency() const noexcept {
    return dispatch_latency_;
  }

 private:
  Histogram response_time_;
  Histogram sched_ns_;
  Histogram dispatch_latency_;
};

}  // namespace pfair::obs
