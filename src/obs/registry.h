// The self-profiling metrics registry: named counters, gauges and
// timers describing the *engine itself*, not the simulated schedule.
//
// engine::Metrics answers "what did the schedule do" (preemptions,
// misses, quanta); the registry answers "where did the engine spend its
// time and work" — kernel phase durations, ThreadPool activity,
// fast-forward effectiveness, admission traffic.  It is the common
// export surface behind `ExperimentHarness --prof`, the `pfair_perf`
// CLI and the Perfetto phase tracks (obs/prof.h feeds aggregated phase
// timings into it at snapshot time).
//
// Contract with the simulators (determinism): instrumented code only
// *writes* to the registry and only when profiling is attached
// (obs::prof::enabled()); nothing in any scheduling decision ever reads
// it.  Seeded runs are therefore byte-identical with profiling on or
// off — the registry is a pure side channel.
//
// Handles returned by counter()/gauge() have stable addresses for the
// life of the process (reset_values() zeroes them but never deallocates),
// so hot paths cache them in function-local statics:
//
//   static obs::Counter& c = obs::MetricsRegistry::global().counter("x");
//   if (obs::prof::enabled()) c.add(n);
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/histogram.h"
#include "obs/json.h"

namespace pfair::obs {

/// Monotone event count.  Relaxed atomics: counters are written from
/// shard / pool worker threads and only ever summed, never ordered.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, configured shard
/// counts, end-of-run totals mirrored for the snapshot).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Aggregated duration statistics for one named timer (a prof phase):
/// count / total / max plus the full histogram, so snapshots report
/// p50/p95/p99 — the tail, not just the mean.
struct TimerStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  Histogram hist;  ///< ns samples (empty edges = no histogram recorded)

  [[nodiscard]] double avg_ns() const noexcept {
    return count > 0 ? static_cast<double>(total_ns) / static_cast<double>(count) : 0.0;
  }
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation site reports to.
  [[nodiscard]] static MetricsRegistry& global();

  /// Returns the named counter, registering it on first use.  The
  /// reference stays valid forever (reset_values() keeps registrations).
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);

  /// Publishes (or replaces) the named timer's aggregated stats —
  /// obs::prof::snapshot_into() calls this once per phase per snapshot.
  void record_timer(const std::string& name, const TimerStats& stats);

  /// Zeroes every counter/gauge and drops all timers; registrations
  /// (and thus cached handle addresses) survive.  Test isolation hook.
  void reset_values();

  /// Structured snapshot:
  ///   {"counters":{name:n,...}, "gauges":{name:v,...},
  ///    "timers":{name:{"count":..,"total_ns":..,"avg_ns":..,"max_ns":..,
  ///              "p50_ns":..,"p95_ns":..,"p99_ns":..},...}}
  /// Only nonzero counters/gauges appear (an idle registry snapshots as
  /// three empty objects), so a snapshot documents what actually ran.
  [[nodiscard]] json::Value snapshot() const;

  /// snapshot().dump() + newline: the canonical JSON document written by
  /// `--prof=FILE` and read back by `pfair_perf`.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  mutable std::mutex mu_;  ///< guards registration and the timers map
  // std::map: stable node addresses (handles survive later insertions)
  // and sorted iteration (snapshots are canonical by construction).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, TimerStats> timers_;
};

}  // namespace pfair::obs
