#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pfair::obs::json {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Value> run() {
    skip_ws();
    std::optional<Value> v = value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    switch (s_[pos_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        std::optional<std::string> str = string();
        if (!str) return std::nullopt;
        return Value(std::move(*str));
      }
      case 't': return literal("true") ? std::optional<Value>(Value(true)) : std::nullopt;
      case 'f': return literal("false") ? std::optional<Value>(Value(false)) : std::nullopt;
      case 'n': return literal("null") ? std::optional<Value>(Value(nullptr)) : std::nullopt;
      default: return number();
    }
  }

  std::optional<Value> object(int depth) {
    ++pos_;  // '{'
    Object out;
    skip_ws();
    if (eat('}')) return Value(std::move(out));
    while (true) {
      skip_ws();
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      std::optional<Value> v = value(depth + 1);
      if (!v) return std::nullopt;
      out.insert_or_assign(std::move(*key), std::move(*v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Value(std::move(out));
      return std::nullopt;
    }
  }

  std::optional<Value> array(int depth) {
    ++pos_;  // '['
    Array out;
    skip_ws();
    if (eat(']')) return Value(std::move(out));
    while (true) {
      std::optional<Value> v = value(depth + 1);
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Value(std::move(out));
      return std::nullopt;
    }
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return std::nullopt;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode (surrogate pairs unsupported: our writers only
          // escape control characters, all below U+0800).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    return Value(v);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, std::string_view s) {
  out += '"';
  // Append maximal clean runs in bulk; escapes are rare in practice.
  std::size_t run = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20) continue;
    out.append(s.data() + run, i - run);
    run = i + 1;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      }
    }
  }
  out.append(s.data() + run, s.size() - run);
  out += '"';
}

void dump_value(std::string& out, const Value& v) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    if (!std::isfinite(d)) {
      out += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    }
  } else if (v.is_string()) {
    dump_string(out, v.as_string());
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_value(out, e);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      dump_string(out, k);
      out += ':';
      dump_value(out, e);
    }
    out += '}';
  }
}

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

std::optional<Value> parse(std::string_view text) { return Parser(text).run(); }

ObjectWriter::ObjectWriter(std::string& out) : out_(out) { out_ += '{'; }

void ObjectWriter::begin(std::string_view key) {
#ifndef NDEBUG
  assert(!finished_);
  // Strictly ascending keys keep the output byte-identical to a
  // dump()ed std::map Object holding the same members.
  assert(first_ || last_key_ < key);
  last_key_.assign(key);
#endif
  if (!first_) out_ += ',';
  first_ = false;
  dump_string(out_, key);
  out_ += ':';
}

ObjectWriter& ObjectWriter::field_bool(std::string_view key, bool v) {
  begin(key);
  out_ += v ? "true" : "false";
  return *this;
}

ObjectWriter& ObjectWriter::field_int(std::string_view key, std::int64_t v) {
  // %.17g of an integral double uses plain fixed notation up to 1e17,
  // and every int64 with |v| <= 2^53 ~ 9.0e15 round-trips exactly, so
  // the fast integer rendering matches dump() byte for byte.
  assert(v <= (std::int64_t{1} << 53) && v >= -(std::int64_t{1} << 53));
  begin(key);
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out_.append(buf, end);
  return *this;
}

ObjectWriter& ObjectWriter::field_str(std::string_view key, std::string_view v) {
  begin(key);
  dump_string(out_, v);
  return *this;
}

void ObjectWriter::finish() {
#ifndef NDEBUG
  assert(!finished_);
  finished_ = true;
#endif
  out_ += '}';
}

}  // namespace pfair::obs::json
