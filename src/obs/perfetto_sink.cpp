#include "obs/perfetto_sink.h"

#include <cstdio>
#include <map>
#include <utility>

#include "obs/prof.h"

namespace pfair::obs {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

PerfettoSink::PerfettoSink(std::ostream& os, double us_per_slot)
    : os_(&os), us_per_slot_(us_per_slot) {
  *os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  write_event(R"("name":"process_name","ph":"M","pid":0,"args":{"name":"pfair"})");
}

std::string PerfettoSink::task_name(TaskId id) const {
  if (id < names_.size() && !names_[id].empty()) return names_[id];
  return "T" + std::to_string(id);
}

void PerfettoSink::write_event(const std::string& body) {
  if (!first_event_) *os_ << ",\n";
  first_event_ = false;
  *os_ << '{' << body << '}';
}

void PerfettoSink::ensure_thread_metadata(ProcId proc) {
  if (proc >= open_.size()) {
    open_.resize(proc + 1);
    thread_named_.resize(proc + 1, false);
  }
  if (!thread_named_[proc]) {
    thread_named_[proc] = true;
    write_event(R"("name":"thread_name","ph":"M","pid":0,"tid":)" + std::to_string(proc) +
                R"(,"args":{"name":"CPU )" + std::to_string(proc) + "\"}");
  }
}

void PerfettoSink::close_slice(ProcId proc) {
  OpenSlice& s = open_[proc];
  if (s.task == kNoTask) return;
  write_event(R"("name":")" + task_name(s.task) + R"(","cat":"quantum","ph":"X","ts":)" +
              num(static_cast<double>(s.start) * us_per_slot_) +
              R"(,"dur":)" + num(static_cast<double>(s.end - s.start) * us_per_slot_) +
              R"(,"pid":0,"tid":)" + std::to_string(proc) + R"(,"args":{"task":)" +
              std::to_string(s.task) + "}");
  s.task = kNoTask;
}

void PerfettoSink::begin_quantum(ProcId proc, TaskId task, Time t) {
  ensure_thread_metadata(proc);
  OpenSlice& s = open_[proc];
  if (s.task == task && s.end == t) {
    ++s.end;  // same task, contiguous slot: extend the slice
    return;
  }
  close_slice(proc);
  s.task = task;
  s.start = t;
  s.end = t + 1;
}

void PerfettoSink::instant(const Event& e, const char* label) {
  std::string body = R"("name":")" + std::string(label);
  if (e.task != kNoTask) body += " " + task_name(e.task);
  body += R"(","cat":"event","ph":"i","s":"g","ts":)" +
          num(static_cast<double>(e.time) * us_per_slot_) + R"(,"pid":0,"tid":0)";
  if (e.task != kNoTask) body += R"(,"args":{"task":)" + std::to_string(e.task) + "}";
  write_event(body);
}

void PerfettoSink::on_event(const Event& e) {
  if (closed_) return;
  switch (e.kind) {
    case EventKind::kDispatch:
      begin_quantum(e.proc, e.task, e.time);
      break;
    case EventKind::kExecSlice: {
      const ProcId proc = e.proc == kNoProc ? 0 : e.proc;
      ensure_thread_metadata(proc);
      close_slice(proc);
      write_event(R"("name":")" + task_name(e.task) +
                  R"(","cat":"job","ph":"X","ts":)" +
                  num(static_cast<double>(e.time) * us_per_slot_) + R"(,"dur":)" +
                  num(e.value * us_per_slot_) + R"(,"pid":0,"tid":)" +
                  std::to_string(proc) + R"(,"args":{"task":)" + std::to_string(e.task) +
                  "}");
      break;
    }
    case EventKind::kServedSlice: {
      ensure_thread_metadata(0);
      close_slice(0);
      write_event(R"("name":"server S)" + std::to_string(e.task) +
                  R"(","cat":"server","ph":"X","ts":)" +
                  num(static_cast<double>(e.time) * us_per_slot_) + R"(,"dur":)" +
                  num(e.value * us_per_slot_) + R"(,"pid":0,"tid":0,"args":{"server":)" +
                  std::to_string(e.task) + "}");
      break;
    }
    case EventKind::kMigration: {
      // Flow arrow from the last slice the task held (on its old
      // processor) to the slice beginning now on the new one.  The
      // matching kDispatch for this slot may arrive after this event;
      // anchoring the arrowhead half a slot in keeps it inside either
      // way.
      const ProcId old_proc = static_cast<ProcId>(e.value);
      const std::uint64_t id = next_flow_id_++;
      write_event(R"("name":"migrate","cat":"migration","ph":"s","id":)" +
                  std::to_string(id) + R"(,"ts":)" +
                  num((static_cast<double>(e.time) - 0.5) * us_per_slot_) +
                  R"(,"pid":0,"tid":)" + std::to_string(old_proc) + R"(,"args":{"task":)" +
                  std::to_string(e.task) + "}");
      write_event(R"("name":"migrate","cat":"migration","ph":"f","bp":"e","id":)" +
                  std::to_string(id) + R"(,"ts":)" +
                  num((static_cast<double>(e.time) + 0.5) * us_per_slot_) +
                  R"(,"pid":0,"tid":)" + std::to_string(e.proc) + R"(,"args":{"task":)" +
                  std::to_string(e.task) + "}");
      break;
    }
    case EventKind::kDeadlineMiss:
      instant(e, "deadline miss");
      break;
    case EventKind::kComponentMiss:
      instant(e, "component deadline miss");
      break;
    case EventKind::kLagViolation:
      instant(e, "lag violation");
      break;
    case EventKind::kTaskJoin:
      instant(e, "join");
      break;
    case EventKind::kTaskLeave:
      instant(e, "leave");
      break;
    case EventKind::kBudgetPostpone:
      instant(e, "budget postpone");
      break;
    case EventKind::kLagSample:
      write_event(R"("name":"lag )" + task_name(e.task) + R"(","ph":"C","ts":)" +
                  num(static_cast<double>(e.time) * us_per_slot_) +
                  R"(,"pid":0,"args":{"lag":)" + num(e.value) + "}");
      break;
    case EventKind::kSlotBegin:
    case EventKind::kSlotEnd:
    case EventKind::kPreemption:
    case EventKind::kContextSwitch:
    case EventKind::kComponentSwitch:
    case EventKind::kJobRelease:
    case EventKind::kJobComplete:
    case EventKind::kServedJobComplete:
    case EventKind::kSchedInvoke:
    case EventKind::kOverheadNs:
    case EventKind::kAdmitRequest:
    case EventKind::kAdmitGrant:
    case EventKind::kAdmitReject:
      break;  // counter-level detail; not drawn on the timeline
  }
}

void PerfettoSink::write_prof_tracks() {
  if (!prof::enabled() || !prof::span_recording()) return;
  const std::vector<prof::Span> spans = prof::collect_spans();
  if (spans.empty()) return;
  write_event(R"("name":"process_name","ph":"M","pid":1,"args":{"name":"prof"})");
  std::map<std::int32_t, bool> named;                    // tid -> metadata emitted
  std::map<std::pair<Time, std::int32_t>, double> used;  // (slot, tid) -> us consumed
  std::map<std::int32_t, double> busy_ns;                // worker -> cumulative busy ns
  for (const prof::Span& s : spans) {
    const double slot_us = static_cast<double>(s.slot < 0 ? 0 : s.slot) * us_per_slot_;
    if (s.phase == prof::Phase::kPoolJob) {
      // Worker utilization: a cumulative busy-ns counter per worker.
      double& total = busy_ns[s.worker];
      total += static_cast<double>(s.ns);
      write_event(R"("name":"worker )" + std::to_string(s.worker) +
                  R"( busy_ns","cat":"prof","ph":"C","ts":)" + num(slot_us) +
                  R"(,"pid":1,"args":{"busy_ns":)" + num(total) + "}");
      continue;
    }
    // Phase slice on the shard's track, stacked after the slot's earlier
    // spans so slices within one (slot, shard) never overlap.
    const std::int32_t tid = s.shard + 1;  // 0 = coordinator, 1.. = shards
    if (!named[tid]) {
      named[tid] = true;
      const std::string label =
          s.shard < 0 ? "coordinator" : "shard " + std::to_string(s.shard);
      write_event(R"("name":"thread_name","ph":"M","pid":1,"tid":)" + std::to_string(tid) +
                  R"(,"args":{"name":")" + label + "\"}");
    }
    double& offset = used[{s.slot, tid}];
    const double dur_us = static_cast<double>(s.ns) / 1000.0;
    write_event(R"("name":")" + std::string(prof::phase_name(s.phase)) +
                R"(","cat":"prof","ph":"X","ts":)" + num(slot_us + offset) +
                R"(,"dur":)" + num(dur_us) + R"(,"pid":1,"tid":)" + std::to_string(tid) +
                R"(,"args":{"ns":)" + std::to_string(s.ns) + R"(,"slot":)" +
                std::to_string(static_cast<long long>(s.slot)) + "}");
    offset += dur_us;
  }
}

void PerfettoSink::flush() {
  if (closed_) return;
  closed_ = true;
  for (ProcId p = 0; p < open_.size(); ++p) close_slice(p);
  write_prof_tracks();
  *os_ << "\n]}\n";
  os_->flush();
}

}  // namespace pfair::obs
