#include "obs/fastclock.h"

#include <chrono>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace pfair::obs {

namespace {

[[nodiscard]] std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)
struct TscScale {
  double ns_per_tick = 0.0;  ///< 0 = calibration failed, use steady_clock
  std::uint64_t tsc0 = 0;
  std::uint64_t ns0 = 0;
};

[[nodiscard]] TscScale calibrate() noexcept {
  // A ~2 ms window bounds the rate error near 0.1% even with noisy
  // virtualized clocks — far below latency-histogram bucket width.
  const std::uint64_t t0 = __rdtsc();
  const std::uint64_t n0 = steady_ns();
  while (steady_ns() - n0 < 2'000'000) {
  }
  const std::uint64_t t1 = __rdtsc();
  const std::uint64_t n1 = steady_ns();
  TscScale s;
  if (t1 > t0 && n1 > n0) {
    s.ns_per_tick = static_cast<double>(n1 - n0) / static_cast<double>(t1 - t0);
    s.tsc0 = t1;
    s.ns0 = n1;
  }
  return s;
}
#endif

}  // namespace

std::uint64_t approx_now_ns() noexcept {
#if defined(__x86_64__)
  static const TscScale scale = calibrate();  // thread-safe one-time init
  if (scale.ns_per_tick > 0.0) {
    return scale.ns0 + static_cast<std::uint64_t>(
                           static_cast<double>(__rdtsc() - scale.tsc0) * scale.ns_per_tick);
  }
#endif
  return steady_ns();
}

}  // namespace pfair::obs
