// CounterSink: engine::Metrics reconstructed from the event stream.
//
// The counter sink is the observability backend for the repo's unified
// metrics: every counter in engine::Metrics has a defining event kind,
// and folding the stream through this sink must reproduce a simulator's
// own `metrics()` *exactly* (bit-identical doubles — the sink adds in
// emission order, which simulators guarantee matches their own
// accumulation order).  Tests pin that equivalence for all six
// simulator stacks, which turns the event instrumentation itself into a
// verified artifact: a counter mismatch means an instrumentation point
// is missing, duplicated, or misplaced.
#pragma once

#include "engine/metrics.h"
#include "obs/sink.h"

namespace pfair::obs {

class CounterSink : public Sink {
 public:
  void on_event(const Event& e) override {
    engine::Metrics& m = metrics_;
    switch (e.kind) {
      case EventKind::kSlotBegin:
        ++m.slots;
        slot_processors_ = e.value;
        break;
      case EventKind::kSlotEnd:
        m.busy_quanta += static_cast<std::uint64_t>(e.value);
        m.idle_quanta += static_cast<std::uint64_t>(slot_processors_ - e.value);
        break;
      case EventKind::kDispatch:
      case EventKind::kExecSlice:
        break;  // placement detail; busy/idle comes from slot events
      case EventKind::kServedSlice:
        m.served_work += static_cast<std::int64_t>(e.value);
        break;
      case EventKind::kPreemption:
        ++m.preemptions;
        break;
      case EventKind::kMigration:
        ++m.migrations;
        break;
      case EventKind::kContextSwitch:
        ++m.context_switches;
        break;
      case EventKind::kComponentSwitch:
        ++m.component_switches;
        break;
      case EventKind::kJobRelease:
        ++m.jobs_released;
        break;
      case EventKind::kJobComplete:
        ++m.jobs_completed;
        if (e.value >= 0.0) m.response_time.add(e.value);
        break;
      case EventKind::kServedJobComplete:
        ++m.served_jobs_completed;
        break;
      case EventKind::kDeadlineMiss:
        ++m.deadline_misses;
        note_miss(e.time);
        break;
      case EventKind::kComponentMiss:
        ++m.component_misses;
        note_miss(e.time);
        break;
      case EventKind::kLagViolation:
        ++m.lag_violations;
        break;
      case EventKind::kLagSample:
        break;  // timeline data, not a counter
      case EventKind::kTaskJoin:
      case EventKind::kTaskLeave:
        break;  // membership events have no Metrics field
      case EventKind::kBudgetPostpone:
        ++m.deadline_postponements;
        break;
      case EventKind::kSchedInvoke:
        ++m.scheduler_invocations;
        ++m.scheduling_points;
        m.sched_ns_total += e.value;
        break;
      case EventKind::kOverheadNs:
        m.sched_ns_total += e.value;
        break;
      case EventKind::kAdmitRequest:
        break;  // paired with the grant/reject below
      case EventKind::kAdmitGrant:
        ++m.tasks_admitted;
        break;
      case EventKind::kAdmitReject:
        ++m.tasks_rejected;
        break;
    }
  }

  [[nodiscard]] const engine::Metrics& metrics() const noexcept { return metrics_; }
  void reset() { metrics_ = engine::Metrics{}; }

 private:
  /// Earliest miss wins.  A partitioned ensemble replays its
  /// processors one after the other, so miss events do not arrive in
  /// global time order — unlike Metrics::record_miss, which may assume
  /// non-decreasing times within one simulator.
  void note_miss(Time t) noexcept {
    if (metrics_.first_miss_time < 0 || t < metrics_.first_miss_time)
      metrics_.first_miss_time = t;
  }

  engine::Metrics metrics_;
  double slot_processors_ = 0.0;  ///< live processors of the open slot
};

}  // namespace pfair::obs
