#include "obs/registry.h"

namespace pfair::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

void MetricsRegistry::record_timer(const std::string& name, const TimerStats& stats) {
  const std::lock_guard<std::mutex> lock(mu_);
  timers_[name] = stats;
}

void MetricsRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  timers_.clear();
}

json::Value MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  json::Object counters;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t v = c.value();
    if (v != 0) counters.emplace(name, json::Value(static_cast<double>(v)));
  }
  json::Object gauges;
  for (const auto& [name, g] : gauges_) {
    const double v = g.value();
    if (v != 0.0) gauges.emplace(name, json::Value(v));
  }
  json::Object timers;
  for (const auto& [name, t] : timers_) {
    json::Object entry;
    entry.emplace("count", json::Value(static_cast<double>(t.count)));
    entry.emplace("total_ns", json::Value(static_cast<double>(t.total_ns)));
    entry.emplace("avg_ns", json::Value(t.avg_ns()));
    entry.emplace("max_ns", json::Value(static_cast<double>(t.max_ns)));
    if (t.hist.total() > 0) {
      entry.emplace("p50_ns", json::Value(t.hist.p50()));
      entry.emplace("p95_ns", json::Value(t.hist.p95()));
      entry.emplace("p99_ns", json::Value(t.hist.p99()));
    }
    timers.emplace(name, json::Value(std::move(entry)));
  }
  json::Object doc;
  doc.emplace("counters", json::Value(std::move(counters)));
  doc.emplace("gauges", json::Value(std::move(gauges)));
  doc.emplace("timers", json::Value(std::move(timers)));
  return json::Value(std::move(doc));
}

std::string MetricsRegistry::snapshot_json() const { return snapshot().dump() + "\n"; }

}  // namespace pfair::obs
