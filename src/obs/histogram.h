// Fixed-bucket histograms for scheduling distributions.
//
// RunningStats (util/stats.h) gives mean and confidence intervals —
// enough for the paper's figures, not enough to see tails.  Histogram
// keeps fixed bucket edges chosen up front (linear or exponential), so
// recording is a branchless-ish binary search, merging across trials is
// element-wise, and the JSON export is a pair of arrays.  Used for
// response times (slots), scheduler-invocation cost (ns), and per-slot
// dispatch latency, exported through ExperimentHarness --json.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pfair::obs {

class Histogram {
 public:
  Histogram() = default;

  /// Buckets [edges[i], edges[i+1]) from an explicit, strictly
  /// increasing edge list; edges.size() >= 2.
  explicit Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
    assert(edges_.size() >= 2);
    for (std::size_t i = 1; i < edges_.size(); ++i) assert(edges_[i - 1] < edges_[i]);
    counts_.assign(edges_.size() - 1, 0);
  }

  /// `buckets` equal-width buckets covering [lo, hi).
  [[nodiscard]] static Histogram linear(double lo, double hi, std::size_t buckets) {
    assert(buckets >= 1 && lo < hi);
    std::vector<double> edges(buckets + 1);
    const double w = (hi - lo) / static_cast<double>(buckets);
    for (std::size_t i = 0; i <= buckets; ++i) edges[i] = lo + w * static_cast<double>(i);
    edges.back() = hi;  // exact upper bound despite rounding
    return Histogram(std::move(edges));
  }

  /// `buckets` buckets with edges lo, lo*factor, lo*factor^2, ...
  /// (factor > 1): the right shape for latencies spanning decades.
  [[nodiscard]] static Histogram exponential(double lo, double factor, std::size_t buckets) {
    assert(buckets >= 1 && lo > 0.0 && factor > 1.0);
    std::vector<double> edges(buckets + 1);
    double e = lo;
    for (std::size_t i = 0; i <= buckets; ++i, e *= factor) edges[i] = e;
    return Histogram(std::move(edges));
  }

  void add(double v) noexcept { add(v, 1); }

  void add(double v, std::uint64_t n) noexcept {
    total_ += n;
    if (v < edges_.front()) {
      underflow_ += n;
      return;
    }
    if (v >= edges_.back()) {
      overflow_ += n;
      return;
    }
    // Upper-bound binary search: first edge > v, bucket is one left.
    std::size_t lo = 0;
    std::size_t hi = edges_.size() - 1;
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (edges_[mid] <= v)
        lo = mid;
      else
        hi = mid;
    }
    counts_[lo] += n;
  }

  /// Element-wise merge; both histograms must share the same edges.
  void merge(const Histogram& o) noexcept {
    assert(edges_ == o.edges_);
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    total_ += o.total_;
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const noexcept {
    return counts_[bucket];
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Exact rank-based q-quantile (0 <= q <= 1): the smallest value x
  /// with CDF(x) >= q * total, linearly interpolated inside the bucket
  /// that holds the target rank (uniform-density assumption); under-
  /// and overflow mass sits at the outer edges.  Rank arithmetic runs
  /// in long double so the target rank stays exact even for counts
  /// saturating std::uint64_t, where a double would round the rank and
  /// could land in a neighbouring bucket.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const long double target =
        static_cast<long double>(q) * static_cast<long double>(total_);
    long double seen = static_cast<long double>(underflow_);
    if (target <= seen) return edges_.front();
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const long double c = static_cast<long double>(counts_[i]);
      if (counts_[i] > 0 && seen + c >= target) {
        const long double frac = (target - seen) / c;
        return static_cast<double>(static_cast<long double>(edges_[i]) +
                                   frac * static_cast<long double>(edges_[i + 1] -
                                                                   edges_[i]));
      }
      seen += c;
    }
    return edges_.back();
  }

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

 private:
  std::vector<double> edges_{0.0, 1.0};
  std::vector<std::uint64_t> counts_ = std::vector<std::uint64_t>(1, 0);
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pfair::obs
