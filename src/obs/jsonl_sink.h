// JSONL sink: one JSON object per event, one event per line.
//
// The interchange format of the obs layer: newline-delimited JSON is
// trivially appendable, greppable, and streamable, and is what the
// `pfair_trace` CLI consumes.  Keys are fixed:
//   {"t":12,"kind":"preemption","task":3,"proc":1,"value":-1}
// `task` / `proc` are omitted for events without one; `value` is
// omitted when zero (readers default all absent fields to their
// sentinel).
#pragma once

#include <ostream>

#include "obs/sink.h"

namespace pfair::obs {

class JsonlSink : public Sink {
 public:
  /// Writes to `os` (non-owning; the stream must outlive the sink).
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  void on_event(const Event& e) override;
  void flush() override;

 private:
  std::ostream* os_;
};

}  // namespace pfair::obs
