// Trace analysis: the queries behind the `pfair_trace` CLI.
//
// Loads a JSONL event trace (JsonlSink output) back into obs::Event
// records and answers the questions a scheduling investigation starts
// with: what happened overall, which tasks get preempted (and by
// whom), how work moves between processors, and what the system was
// doing around the first deadline miss.  Kept in the library (not the
// CLI) so tests can pin the analyses against generated traces.
#pragma once

#include <array>
#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/json.h"

namespace pfair::obs {

/// Parses one JSONL line; std::nullopt on malformed input or an
/// unknown kind.
[[nodiscard]] std::optional<Event> parse_event_line(const std::string& line);

/// Loads every well-formed line of a JSONL stream (malformed lines are
/// counted, not fatal).
struct LoadResult {
  std::vector<Event> events;
  std::size_t malformed_lines = 0;
};
[[nodiscard]] LoadResult load_jsonl(std::istream& is);

/// Per-kind event totals.
[[nodiscard]] std::array<std::uint64_t, kEventKindCount> count_by_kind(
    const std::vector<Event>& events);

/// Preemption league table.  `victim` counts how often the task was
/// preempted; `caused` how often it preempted someone else (only
/// attributable preemptions — event value >= 0 — contribute).
struct PreemptionStat {
  TaskId task = kNoTask;
  std::uint64_t victim = 0;
  std::uint64_t caused = 0;
};
/// Sorted by `caused` desc, then `victim` desc; at most `top` rows.
[[nodiscard]] std::vector<PreemptionStat> top_preemptors(const std::vector<Event>& events,
                                                         std::size_t top);

/// migration_matrix()[from][to] = migrations observed from processor
/// `from` to processor `to`.  Square, sized to the largest processor id
/// seen (empty when the trace has no migrations).
[[nodiscard]] std::vector<std::vector<std::uint64_t>> migration_matrix(
    const std::vector<Event>& events);

/// Events within `window` slots of the first (component) deadline
/// miss, in input order; nullopt when the trace has no miss.
struct MissContext {
  Event miss;                 ///< the first miss event
  std::vector<Event> window;  ///< all events with |t - miss.time| <= window
};
[[nodiscard]] std::optional<MissContext> first_miss_context(
    const std::vector<Event>& events, Time window);

/// Human-readable rendering of each analysis (what the CLI prints).
[[nodiscard]] std::string format_summary(const std::vector<Event>& events);
[[nodiscard]] std::string format_preemptors(const std::vector<Event>& events,
                                            std::size_t top);
[[nodiscard]] std::string format_migration_matrix(const std::vector<Event>& events);
[[nodiscard]] std::string format_first_miss(const std::vector<Event>& events, Time window);

/// Human-readable rendering of a MetricsRegistry snapshot document
/// ({"counters":..,"gauges":..,"timers":..}) — the `--registry=FILE`
/// section of `pfair_trace report` and `pfair_perf snapshot`.  Returns
/// an error line when `doc` does not look like a snapshot.
[[nodiscard]] std::string format_registry_snapshot(const json::Value& doc);

/// Minimal schema check for Chrome-trace/Perfetto JSON produced by
/// PerfettoSink: top-level object, "traceEvents" array, every entry an
/// object with string "name"/"ph" and numeric "ts" (metadata events
/// excepted) and "pid".  Returns an empty string on success, else the
/// first problem found.
[[nodiscard]] std::string validate_perfetto_json(const std::string& text);

}  // namespace pfair::obs
