// Noise-aware comparison of BENCH_*.json reports and registry
// snapshots — the library behind `tools/pfair_perf` and the CI
// perf-regression gate.
//
// Both document shapes flatten into one metric namespace:
//   BENCH report   -> params.<key>, rows[<i>].<cell>          (scalar cells)
//                     rows[<i>].<cell>           mean±ci99     (RunningStats)
//                     rows[<i>].<cell>.{p50,p95,p99,total}     (histograms)
//                     prof.counters.<name>, prof.timers.<name>.avg_ns, ...
//   registry snapshot -> counters.<name>, gauges.<name>,
//                     timers.<name>.{count,total_ns,avg_ns,max_ns,p50_ns,...}
//
// diff() then classifies each shared metric: a change is significant
// only if it clears BOTH the statistical noise (|Δ| > ci99_a + ci99_b)
// AND the relative threshold (default 10%) — so RunningStats cells
// carry their own error bars into the verdict and deterministic scalar
// cells (noise 0) gate on the threshold alone.  Direction heuristics
// (perf_direction()) decide whether a significant increase is a
// regression (preemptions, misses, *_ns, latency...) or an improvement
// (fast_forwarded, placed, admitted...); unknown directions report as
// Changed, never failing.  Metrics present on only one side are New /
// Gone — also never failing, so adding a bench column does not break
// the gate against older baselines.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace pfair::obs::perf {

/// One flattened metric: a point value plus its noise half-width
/// (ci99 for RunningStats cells, 0 for deterministic scalars).
struct Metric {
  double value = 0.0;
  double noise = 0.0;
};

using MetricMap = std::map<std::string, Metric>;

/// Flattens a parsed BENCH report or registry snapshot (auto-detected
/// by shape) into dotted metric names.  Unknown shapes flatten any
/// numeric leaves found, so the tool degrades gracefully.
[[nodiscard]] MetricMap flatten(const json::Value& doc);

/// +1 = an increase is worse (regression), -1 = an increase is better,
/// 0 = no known direction.  Token-based so "sched_invocations" does not
/// match the "ns" duration token.
[[nodiscard]] int perf_direction(const std::string& name);

enum class Verdict : std::uint8_t {
  kOk,         ///< within noise + threshold
  kRegressed,  ///< significant change in the worse direction
  kImproved,   ///< significant change in the better direction
  kChanged,    ///< significant change, direction unknown
  kNew,        ///< only in the current document
  kGone,       ///< only in the baseline document
};
[[nodiscard]] const char* verdict_name(Verdict v) noexcept;

struct DiffRow {
  std::string name;
  double base = 0.0;
  double cur = 0.0;
  double noise = 0.0;    ///< combined noise (base + cur half-widths)
  double rel = 0.0;      ///< relative change vs base (0 when base == 0)
  Verdict verdict = Verdict::kOk;
};

struct DiffOptions {
  /// Minimum relative change to call significant (0.10 = 10%).
  double threshold = 0.10;
};

struct DiffReport {
  std::vector<DiffRow> rows;  ///< every metric, sorted by name
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t changes = 0;  ///< significant but direction-unknown
};

[[nodiscard]] DiffReport diff(const MetricMap& base, const MetricMap& cur,
                              const DiffOptions& opt = {});

/// Human-readable report.  `all` = include Ok rows; otherwise only
/// non-Ok rows plus the summary line.
[[nodiscard]] std::string format_diff(const DiffReport& r, bool all = false);

}  // namespace pfair::obs::perf
