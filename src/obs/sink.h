// Sink interface: where scheduling events go.
//
// A sink consumes the typed event stream of obs::EventBus.  Sinks are
// deliberately dumb receivers — filtering, aggregation, and formatting
// live inside each concrete sink (counters, JSONL, Perfetto, lag
// timeline, histograms), so simulators never know or care who is
// listening.
#pragma once

#include "obs/event.h"

namespace pfair::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Receives one event.  Called synchronously from the simulator's
  /// hot loop — implementations should be cheap or buffer.
  virtual void on_event(const Event& e) = 0;

  /// Finalizes any buffered output (file footers, open spans).  Called
  /// by EventBus::flush(); safe to call more than once.
  virtual void flush() {}

 protected:
  Sink() = default;
  Sink(const Sink&) = default;
  Sink& operator=(const Sink&) = default;
};

}  // namespace pfair::obs
