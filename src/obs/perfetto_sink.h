// Chrome-trace-event / Perfetto JSON sink.
//
// Emits the legacy Chrome trace event format (the JSON Perfetto and
// chrome://tracing both load):
//   - one thread ("track") per processor under pid 0, carrying "X"
//     complete events for every occupied interval — consecutive quanta
//     of the same task on the same processor are coalesced into one
//     slice, so a PD2 trace stays viewable at long horizons;
//   - per-task flow arrows ("s"/"f") connecting the slice a task left
//     to the slice it resumes on when it migrates between processors;
//   - instant events ("i") for deadline misses, component misses, lag
//     violations, joins and leaves;
//   - counter tracks ("C") for per-task lag(t) samples — the PD2 lag
//     timeline next to the schedule that produced it;
//   - when self-profiling span recording is attached (obs/prof.h),
//     flush() additionally renders a "prof" process (pid 1): one track
//     per kernel shard (plus a coordinator track) carrying the recorded
//     kernel-phase spans, and per-worker cumulative busy-ns counter
//     tracks from the ThreadPool's kPoolJob spans.  Phase slices are
//     stacked sequentially inside their simulated slot, so the viewer
//     shows where each quantum's engine time went next to the schedule.
//
// One simulated slot is rendered as one quantum length in trace time
// (default 1000 "us" = the paper's 1 ms quantum), so viewer timestamps
// read directly as milliseconds of schedule time.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.h"

namespace pfair::obs {

class PerfettoSink : public Sink {
 public:
  /// Writes to `os` (non-owning).  `us_per_slot` scales simulated slots
  /// to trace microseconds.
  explicit PerfettoSink(std::ostream& os, double us_per_slot = 1000.0);

  /// Optional task-id -> display-name table (index = TaskId); unnamed
  /// ids render as "T<id>".
  void set_task_names(std::vector<std::string> names) { names_ = std::move(names); }

  void on_event(const Event& e) override;

  /// Closes open slices and writes the JSON footer (idempotent).
  void flush() override;

 private:
  struct OpenSlice {
    TaskId task = kNoTask;
    Time start = 0;
    Time end = 0;  ///< exclusive (slots)
  };

  [[nodiscard]] std::string task_name(TaskId id) const;
  void write_event(const std::string& body);  ///< body without braces
  void begin_quantum(ProcId proc, TaskId task, Time t);
  void close_slice(ProcId proc);
  void instant(const Event& e, const char* label);
  void ensure_thread_metadata(ProcId proc);
  void write_prof_tracks();  ///< pid-1 phase/worker tracks (flush-time)

  std::ostream* os_;
  double us_per_slot_;
  bool first_event_ = true;
  bool closed_ = false;
  std::vector<std::string> names_;
  std::vector<OpenSlice> open_;     ///< per processor
  std::vector<bool> thread_named_;  ///< per processor metadata emitted
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace pfair::obs
