#include "obs/perf_diff.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>

namespace pfair::obs::perf {

namespace {

void add_metric(MetricMap& out, std::string name, double value, double noise = 0.0) {
  out.emplace(std::move(name), Metric{value, noise});
}

/// A {"mean","ci99",...} RunningStats cell?
bool is_stats_cell(const json::Value& v) {
  return v.is_object() && v.find("mean") != nullptr && v.find("ci99") != nullptr;
}

/// An {"edges","counts",...} histogram cell?
bool is_histogram_cell(const json::Value& v) {
  return v.is_object() && v.find("edges") != nullptr && v.find("counts") != nullptr;
}

/// Flattens one BENCH cell / snapshot member under `name`.
void flatten_value(MetricMap& out, const std::string& name, const json::Value& v) {
  if (v.is_number()) {
    add_metric(out, name, v.as_number());
    return;
  }
  if (v.is_bool()) {
    add_metric(out, name, v.as_bool() ? 1.0 : 0.0);
    return;
  }
  if (is_stats_cell(v)) {
    add_metric(out, name, v.number_or("mean", 0.0), v.number_or("ci99", 0.0));
    return;
  }
  if (is_histogram_cell(v)) {
    for (const char* k : {"p50", "p95", "p99", "total", "underflow", "overflow"}) {
      if (const json::Value* m = v.find(k); m != nullptr && m->is_number()) {
        add_metric(out, name + "." + k, m->as_number());
      }
    }
    return;
  }
  if (v.is_object()) {  // timers, nested snapshot sections
    for (const auto& [k, member] : v.as_object()) flatten_value(out, name + "." + k, member);
    return;
  }
  // strings / arrays / null: not comparable metrics
}

void flatten_section(MetricMap& out, const json::Value& doc, const char* key) {
  if (const json::Value* s = doc.find(key); s != nullptr && s->is_object()) {
    for (const auto& [name, member] : s->as_object()) {
      flatten_value(out, std::string(key) + "." + name, member);
    }
  }
}

/// Case-insensitive token list of a metric name ("rows[0].pd2_sched_ns"
/// -> rows, 0, pd2, sched, ns).
std::vector<std::string> tokens(const std::string& name) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool token_starts_with(const std::vector<std::string>& toks, const char* prefix) {
  for (const std::string& t : toks) {
    if (t.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

bool has_token(const std::vector<std::string>& toks, const char* tok) {
  for (const std::string& t : toks) {
    if (t == tok) return true;
  }
  return false;
}

}  // namespace

MetricMap flatten(const json::Value& doc) {
  MetricMap out;
  if (!doc.is_object()) return out;
  if (doc.find("rows") != nullptr || doc.find("bench") != nullptr) {  // BENCH report
    flatten_section(out, doc, "params");
    if (const json::Value* rows = doc.find("rows"); rows != nullptr && rows->is_array()) {
      const json::Array& arr = rows->as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!arr[i].is_object()) continue;
        const std::string prefix = "rows[" + std::to_string(i) + "].";
        for (const auto& [k, cell] : arr[i].as_object()) {
          flatten_value(out, prefix + k, cell);
        }
      }
    }
    flatten_section(out, doc, "prof");
    return out;
  }
  if (doc.find("counters") != nullptr || doc.find("timers") != nullptr) {  // snapshot
    flatten_section(out, doc, "counters");
    flatten_section(out, doc, "gauges");
    flatten_section(out, doc, "timers");
    return out;
  }
  for (const auto& [k, member] : doc.as_object()) flatten_value(out, k, member);
  return out;
}

int perf_direction(const std::string& name) {
  const std::vector<std::string> toks = tokens(name);
  // Better when rising: throughput- and effectiveness-shaped metrics.
  if (token_starts_with(toks, "fast") || token_starts_with(toks, "placed") ||
      token_starts_with(toks, "admitted") || token_starts_with(toks, "ff_jumps") ||
      has_token(toks, "throughput")) {
    return -1;
  }
  // Worse when rising: cost-, miss- and duration-shaped metrics.  "ns"
  // is matched as a whole token so "invocations" stays direction-free.
  if (token_starts_with(toks, "preempt") || token_starts_with(toks, "switch") ||
      token_starts_with(toks, "migr") || token_starts_with(toks, "miss") ||
      token_starts_with(toks, "postpone") || token_starts_with(toks, "violation") ||
      token_starts_with(toks, "latenc") || token_starts_with(toks, "idle") ||
      has_token(toks, "ns")) {
    return 1;
  }
  return 0;
}

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kImproved: return "improved";
    case Verdict::kChanged: return "changed";
    case Verdict::kNew: return "new";
    case Verdict::kGone: return "gone";
  }
  return "?";
}

DiffReport diff(const MetricMap& base, const MetricMap& cur, const DiffOptions& opt) {
  DiffReport report;
  std::set<std::string> names;
  for (const auto& [n, m] : base) names.insert(n);
  for (const auto& [n, m] : cur) names.insert(n);
  for (const std::string& name : names) {
    const auto bi = base.find(name);
    const auto ci = cur.find(name);
    DiffRow row;
    row.name = name;
    if (bi == base.end()) {
      row.cur = ci->second.value;
      row.verdict = Verdict::kNew;
      report.rows.push_back(std::move(row));
      continue;
    }
    if (ci == cur.end()) {
      row.base = bi->second.value;
      row.verdict = Verdict::kGone;
      report.rows.push_back(std::move(row));
      continue;
    }
    row.base = bi->second.value;
    row.cur = ci->second.value;
    row.noise = bi->second.noise + ci->second.noise;
    const double delta = row.cur - row.base;
    row.rel = row.base != 0.0 ? delta / std::fabs(row.base) : 0.0;
    const bool clears_noise = std::fabs(delta) > row.noise;
    const bool clears_threshold = row.base != 0.0
                                      ? std::fabs(row.rel) > opt.threshold
                                      : delta != 0.0;  // 0 -> x: any move counts
    if (!clears_noise || !clears_threshold) {
      row.verdict = Verdict::kOk;
    } else {
      const int dir = perf_direction(name);
      if (dir == 0) {
        row.verdict = Verdict::kChanged;
        ++report.changes;
      } else if ((delta > 0.0) == (dir > 0)) {
        row.verdict = Verdict::kRegressed;
        ++report.regressions;
      } else {
        row.verdict = Verdict::kImproved;
        ++report.improvements;
      }
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string format_diff(const DiffReport& r, bool all) {
  std::string out;
  char buf[256];
  std::size_t ok = 0;
  std::size_t unmatched = 0;
  for (const DiffRow& row : r.rows) {
    if (row.verdict == Verdict::kOk) {
      ++ok;
      if (!all) continue;
    }
    if (row.verdict == Verdict::kNew || row.verdict == Verdict::kGone) {
      ++unmatched;
      if (!all) continue;
    }
    if (row.verdict == Verdict::kNew) {
      std::snprintf(buf, sizeof buf, "%-9s %s: %.6g\n", verdict_name(row.verdict),
                    row.name.c_str(), row.cur);
    } else if (row.verdict == Verdict::kGone) {
      std::snprintf(buf, sizeof buf, "%-9s %s: was %.6g\n", verdict_name(row.verdict),
                    row.name.c_str(), row.base);
    } else {
      std::snprintf(buf, sizeof buf, "%-9s %s: %.6g -> %.6g (%+.1f%%, noise ±%.3g)\n",
                    verdict_name(row.verdict), row.name.c_str(), row.base, row.cur,
                    100.0 * row.rel, row.noise);
    }
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "# %zu metrics: %zu ok, %zu regressed, %zu improved, %zu changed, "
                "%zu new/gone\n",
                r.rows.size(), ok, r.regressions, r.improvements, r.changes, unmatched);
  out += buf;
  return out;
}

}  // namespace pfair::obs::perf
