#include "obs/event.h"

namespace pfair::obs {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kSlotBegin: return "slot_begin";
    case EventKind::kSlotEnd: return "slot_end";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kExecSlice: return "exec_slice";
    case EventKind::kServedSlice: return "served_slice";
    case EventKind::kPreemption: return "preemption";
    case EventKind::kMigration: return "migration";
    case EventKind::kContextSwitch: return "context_switch";
    case EventKind::kComponentSwitch: return "component_switch";
    case EventKind::kJobRelease: return "job_release";
    case EventKind::kJobComplete: return "job_complete";
    case EventKind::kServedJobComplete: return "served_job_complete";
    case EventKind::kDeadlineMiss: return "deadline_miss";
    case EventKind::kComponentMiss: return "component_miss";
    case EventKind::kLagViolation: return "lag_violation";
    case EventKind::kLagSample: return "lag_sample";
    case EventKind::kTaskJoin: return "task_join";
    case EventKind::kTaskLeave: return "task_leave";
    case EventKind::kBudgetPostpone: return "budget_postpone";
    case EventKind::kSchedInvoke: return "sched_invoke";
    case EventKind::kOverheadNs: return "overhead_ns";
    case EventKind::kAdmitRequest: return "admit_request";
    case EventKind::kAdmitGrant: return "admit_grant";
    case EventKind::kAdmitReject: return "admit_reject";
  }
  return "unknown";
}

}  // namespace pfair::obs
