#include "qa/gen.h"

#include <algorithm>

#include "util/rational.h"

namespace pfair::qa {

namespace {

/// Remaining capacity m - total as an exact rational (>= 0 by invariant).
Rational remaining(const TaskSet& set, int m) {
  return Rational(m) - set.total_weight();
}

/// Adds `t` iff it keeps the set feasible on m processors.
bool try_add(TaskSet& set, int m, Task t) {
  if (set.total_weight() + t.weight() > Rational(m)) return false;
  set.add(std::move(t));
  return true;
}

/// Tops the set up to total weight exactly m: weight-1 tasks while a
/// full processor remains, then one task of the residual weight (its
/// period is the residual's denominator, which can exceed max_period —
/// exactness over prettiness, same trade the workload generator makes).
void fill_to_capacity(TaskSet& set, int m, TaskKind kind) {
  Rational rem = remaining(set, m);
  while (rem >= Rational(1)) {
    set.add(make_task(1, 1, kind));
    rem -= Rational(1);
  }
  if (rem > Rational(0)) set.add(make_task(rem.num(), rem.den(), kind));
}

Task draw_uniform(Rng& rng, std::int64_t max_period, TaskKind kind) {
  const std::int64_t p = rng.uniform_int(1, max_period);
  const std::int64_t e = rng.uniform_int(1, p);
  return make_task(e, p, kind);
}

Task draw_heavy(Rng& rng, std::int64_t max_period, TaskKind kind) {
  const std::int64_t p = rng.uniform_int(2, std::max<std::int64_t>(2, max_period));
  const std::int64_t e = rng.uniform_int((p + 1) / 2, p);  // wt >= 1/2
  return make_task(e, p, kind);
}

Task draw_light(Rng& rng, std::int64_t max_period, TaskKind kind) {
  const std::int64_t p = rng.uniform_int(std::min<std::int64_t>(4, max_period), max_period);
  return make_task(1, p, kind);
}

Task draw_harmonic(Rng& rng, std::int64_t max_period, TaskKind kind) {
  std::int64_t p = 1;
  while (p * 2 <= max_period && rng.uniform_int(0, 1) == 1) p *= 2;
  const std::int64_t e = rng.uniform_int(1, p);
  return make_task(e, p, kind);
}

Task draw_degenerate(Rng& rng, std::int64_t max_period, TaskKind kind) {
  const std::int64_t q = rng.uniform_int(2, max_period);
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return make_task(1, 1, kind);  // weight 1: every slot is a window
    case 1:
      return make_task(1, q, kind);  // lightest weight at this period
    case 2:
      return make_task(q - 1, q, kind);  // heaviest proper weight
    default:
      return make_task(q, q, kind);  // weight 1 spelled q/q
  }
}

/// Draws tasks from `draw` while capacity and the task budget allow;
/// a few consecutive rejections end the loop (the remaining capacity
/// is too small for what the profile draws).
template <typename DrawFn>
void populate(TaskSet& set, Rng& rng, int m, std::size_t max_tasks, DrawFn&& draw) {
  int rejections = 0;
  while (set.size() < max_tasks && rejections < 8) {
    if (!try_add(set, m, draw(rng))) ++rejections;
  }
}

}  // namespace

FuzzCase TaskSetGen::make_case(std::uint64_t index) const {
  Rng rng = Rng::stream(seed_, index);
  FuzzCase c;
  c.seed = seed_;
  c.index = index;
  const std::vector<Profile>& profiles = all_profiles();
  c.profile = config_.only_profile.value_or(
      profiles[static_cast<std::size_t>(index % profiles.size())]);
  c.processors = static_cast<int>(
      rng.uniform_int(config_.min_processors, config_.max_processors));
  c.shards = config_.shards;  // fixed, not drawn: case streams stay stable
  c.horizon = rng.uniform_int(config_.min_horizon, config_.max_horizon);
  c.kind = TaskKind::kPeriodic;
  if (config_.allow_early_release && c.profile != Profile::kDynamic &&
      c.profile != Profile::kStorm && rng.uniform_int(0, 3) == 0) {
    c.kind = TaskKind::kEarlyRelease;
  }
  const int m = c.processors;
  const std::size_t max_tasks = std::max<std::size_t>(1, config_.max_tasks);
  const std::int64_t max_period = std::max<std::int64_t>(2, config_.max_period);

  switch (c.profile) {
    case Profile::kUniform:
      populate(c.tasks, rng, m, max_tasks,
               [&](Rng& r) { return draw_uniform(r, max_period, c.kind); });
      if (rng.uniform_int(0, 1) == 1) fill_to_capacity(c.tasks, m, c.kind);
      break;
    case Profile::kBimodal:
      populate(c.tasks, rng, m, max_tasks, [&](Rng& r) {
        return r.uniform_int(0, 1) == 1 ? draw_heavy(r, max_period, c.kind)
                                        : draw_light(r, max_period, c.kind);
      });
      break;
    case Profile::kHeavy:
      populate(c.tasks, rng, m, max_tasks, [&](Rng& r) {
        return r.uniform_int(0, 4) == 0 ? draw_light(r, max_period, c.kind)
                                        : draw_heavy(r, max_period, c.kind);
      });
      // Full utilization is where tie-break mistakes surface: no slack
      // means one late quantum is already a miss.
      if (rng.uniform_int(0, 2) != 0) fill_to_capacity(c.tasks, m, c.kind);
      break;
    case Profile::kHarmonic:
      populate(c.tasks, rng, m, max_tasks,
               [&](Rng& r) { return draw_harmonic(r, max_period, c.kind); });
      break;
    case Profile::kDegenerate:
      populate(c.tasks, rng, m, max_tasks,
               [&](Rng& r) { return draw_degenerate(r, max_period, c.kind); });
      if (rng.uniform_int(0, 1) == 1) fill_to_capacity(c.tasks, m, c.kind);
      break;
    case Profile::kDynamic: {
      // Leave headroom so scripted joins have capacity to claim.
      const std::size_t base_tasks = std::max<std::size_t>(1, max_tasks / 2);
      populate(c.tasks, rng, m, base_tasks, [&](Rng& r) {
        Task t = draw_uniform(r, max_period, c.kind);
        // Bias light: heavy base tasks leave no room to rejoin.
        if (t.heavy() && r.uniform_int(0, 1) == 1) t.execution = 1;
        return t;
      });
      const std::int64_t n_joins = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < n_joins; ++i) {
        JoinEvent ev;
        ev.at = rng.uniform_int(1, std::max<Time>(1, c.horizon / 2));
        ev.task = draw_uniform(rng, max_period, c.kind);
        c.joins.push_back(ev);
      }
      const std::int64_t n_leaves = rng.uniform_int(0, 2);
      for (std::int64_t i = 0; i < n_leaves; ++i) {
        LeaveEvent ev;
        ev.at = rng.uniform_int(1, std::max<Time>(1, c.horizon / 2));
        ev.task = static_cast<TaskId>(
            rng.uniform_int(0, static_cast<std::int64_t>(c.tasks.size()) - 1));
        c.leaves.push_back(ev);
      }
      // Scripts are applied in time order; generation order is random.
      std::sort(c.joins.begin(), c.joins.end(),
                [](const JoinEvent& a, const JoinEvent& b) { return a.at < b.at; });
      std::sort(c.leaves.begin(), c.leaves.end(),
                [](const LeaveEvent& a, const LeaveEvent& b) { return a.at < b.at; });
      break;
    }
    case Profile::kStorm: {
      // The pfaird stress shape: a light base set, then a dense burst
      // of joins and leaves crammed into the first half of the horizon
      // so admissions race departures for the same capacity.
      const std::size_t base_tasks = std::max<std::size_t>(1, max_tasks / 3);
      populate(c.tasks, rng, m, base_tasks, [&](Rng& r) {
        Task t = draw_uniform(r, max_period, c.kind);
        if (t.heavy()) t.execution = 1;  // keep the base light
        return t;
      });
      const std::int64_t n_joins = rng.uniform_int(4, 12);
      for (std::int64_t i = 0; i < n_joins; ++i) {
        JoinEvent ev;
        ev.at = rng.uniform_int(1, std::max<Time>(1, c.horizon / 2));
        ev.task = draw_uniform(rng, max_period, c.kind);
        c.joins.push_back(ev);
      }
      const std::int64_t n_leaves = rng.uniform_int(2, 8);
      for (std::int64_t i = 0; i < n_leaves; ++i) {
        LeaveEvent ev;
        ev.at = rng.uniform_int(1, std::max<Time>(1, c.horizon / 2));
        ev.task = static_cast<TaskId>(
            rng.uniform_int(0, static_cast<std::int64_t>(c.tasks.size()) - 1));
        c.leaves.push_back(ev);
      }
      std::sort(c.joins.begin(), c.joins.end(),
                [](const JoinEvent& a, const JoinEvent& b) { return a.at < b.at; });
      std::sort(c.leaves.begin(), c.leaves.end(),
                [](const LeaveEvent& a, const LeaveEvent& b) { return a.at < b.at; });
      break;
    }
  }
  if (c.tasks.empty()) c.tasks.add(make_task(1, max_period, c.kind));
  return c;
}

}  // namespace pfair::qa
