// Fuzzing campaigns: generate, check, and shrink at scale.
//
// A campaign is the loop the CLI (tools/pfair_fuzz.cpp) and the CI jobs
// drive: fan `cases` generated cases across an engine::ThreadPool, run
// every applicable oracle on each, then serially shrink whatever failed.
// Determinism is end-to-end: cases come from Rng::stream(seed, index),
// workers only compute (never accumulate), results are merged in case
// order, and shrinking is a pure function of the failing case — so the
// campaign report is byte-identical for --jobs=1 and --jobs=N, and any
// failure replays from its (seed, index) pair alone.
#pragma once

#include <cstdint>
#include <vector>

#include "qa/gen.h"
#include "qa/oracle.h"
#include "qa/shrink.h"

namespace pfair::qa {

struct CampaignConfig {
  std::uint64_t seed = 1;
  std::uint64_t cases = 1000;
  int jobs = 1;  ///< <= 1 runs inline; > 1 uses a worker pool
  GenConfig gen;
  /// Failures beyond this many are still reported, but not shrunk
  /// (shrinking replays the simulators many times per failure).
  std::size_t max_shrunk = 8;
};

/// Per-oracle tallies across a campaign, in registry order.
struct OracleStats {
  std::string name;
  std::uint64_t applied = 0;
  std::uint64_t violated = 0;
};

struct CampaignFailure {
  FuzzCase original;        ///< as generated (replay: seed + index)
  FuzzCase shrunk;          ///< minimised repro (== original when not shrunk)
  CaseVerdict verdict;      ///< the shrunk case's violation
  int transformations = 0;  ///< accepted shrinking steps (0 when not shrunk)
};

struct CampaignResult {
  std::uint64_t cases = 0;
  std::vector<OracleStats> oracles;       ///< registry order
  std::vector<CampaignFailure> failures;  ///< case-index order

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Runs the campaign described by `config`.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace pfair::qa
