// Invariant oracles: the paper's claims as executable checks.
//
// Every oracle states one property the schedulers must uphold on every
// input the generator can produce:
//
//   window-containment        every PD2 quantum inside its Pfair window
//   lag-bounds                per-task lag in (-1, 1) at every slot
//   quantum-capacity          <= M allocations per slot, <= 1 per task
//   verifier-agreement        simulator miss accounting == trace verifier
//   optimal-differential      PD2 / PF / PD all miss-free on feasible
//                             sets (they are provably optimal, so ANY
//                             miss is a bug); EPDF miss-free on M = 1
//   partitioned-lopez         EDF-FF places and misses nothing strictly
//                             below the Lopez (beta*M+1)/(beta+1) bound
//   erfair-deadline           ERfair keeps lag < 1 (no misses)
//   erfair-work-conservation  ERfair never idles a processor while an
//                             eligible subtask waits
//   dynamic-safety            rule-respecting joins/leaves never cause
//                             a miss
//   bf-optimality             BF (boundary fair) is optimal: miss-free
//                             with exact allocation at every job
//                             boundary on every feasible static set
//   bf-boundary-differential  BF and PD2 cumulative allocations both
//                             track the fluid schedule within one
//                             quantum at every period boundary (and
//                             exactly at a task's own boundaries)
//   run-optimality            RUN admits every feasible static set and
//                             serves every job exactly (segment log
//                             verified independently)
//
// Oracles are registered in a fixed-order table so campaign statistics,
// JSON reports, and CLI listings are stable across runs and builds.
// Checks re-derive everything from replayed simulator runs (cached per
// case in OracleContext), never from fuzzer-side bookkeeping.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/priority.h"
#include "engine/metrics.h"
#include "qa/fuzz_case.h"
#include "sim/run_sim.h"
#include "sim/trace.h"

namespace pfair::qa {

struct OracleOutcome {
  bool violated = false;
  std::string detail;  ///< human-readable, set when violated
};

/// One oracle's result for one case.
struct OracleReport {
  std::string name;
  bool applied = false;  ///< the oracle's precondition held for the case
  bool violated = false;
  std::string detail;
};

/// First violation across all applicable oracles (ok when none).
struct CaseVerdict {
  bool ok = true;
  std::string oracle;
  std::string detail;
};

/// Caches replayed simulator runs so several oracles over one case pay
/// for each (algorithm, script) execution once.
class OracleContext {
 public:
  explicit OracleContext(const FuzzCase& c) : case_(c) {}

  [[nodiscard]] const FuzzCase& fuzz_case() const noexcept { return case_; }

  struct Run {
    ScheduleTrace trace;
    engine::Metrics metrics;
    std::size_t total_tasks = 0;  ///< initial tasks + accepted joins
  };

  /// The case replayed under `alg` (trace recorded, script applied).
  const Run& pfair_run(Algorithm alg);

  /// The case replayed under boundary-fair scheduling (static cases
  /// only; BF refuses dynamics by design).
  const Run& bf_run();

  struct RunRun {
    std::vector<RunSegment> segments;
    engine::Metrics metrics;
    std::int64_t ticks = 1;        ///< fine ticks per slot
    bool admitted_all = false;     ///< RUN's capacity check took every task
  };

  /// The case replayed under RUN (static cases only).
  const RunRun& run_run();

 private:
  const FuzzCase& case_;
  std::map<Algorithm, Run> runs_;
  std::unique_ptr<Run> bf_;
  std::unique_ptr<RunRun> run_;
};

struct Oracle {
  const char* name;
  bool (*applies)(const FuzzCase&);
  OracleOutcome (*check)(OracleContext&);
};

/// All registered oracles, in fixed registry order.
[[nodiscard]] const std::vector<Oracle>& oracle_registry();

/// Runs every applicable oracle over `c`; reports in registry order
/// (non-applicable oracles are included with applied = false).  An
/// invalid case (validate() non-empty) yields a single synthetic
/// "case-validation" violation instead.
[[nodiscard]] std::vector<OracleReport> run_oracles(const FuzzCase& c);

/// First violation of run_oracles(c), or ok.
[[nodiscard]] CaseVerdict check_case(const FuzzCase& c);

}  // namespace pfair::qa
