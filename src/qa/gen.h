// Biased random case generation for the fuzzing campaigns.
//
// Coverage comes from bias, not volume: a uniform draw over (e, p)
// almost never produces the configurations the Pfair proofs sweat over
// — weight-1 tasks, wt = 1/2 boundaries, harmonic period chains, full
// utilization, dynamic joins mid-cascade.  Each Profile (qa/fuzz_case.h)
// over-samples one of those regions; a campaign cycles through all of
// them by default.
//
// Determinism contract: make_case(i) is a pure function of the
// generator's (config, seed) and i, built on the counter-based
// Rng::stream — no generator state is consumed, so cases can be built
// in any order on any thread, and a failing (seed, case) pair printed
// by pfair_fuzz replays to the identical case (and, since the
// simulators are deterministic, the identical trace) anywhere.
#pragma once

#include <cstdint>
#include <optional>

#include "qa/fuzz_case.h"
#include "util/rng.h"

namespace pfair::qa {

struct GenConfig {
  int min_processors = 1;
  int max_processors = 4;
  std::size_t max_tasks = 10;
  std::int64_t max_period = 16;  ///< also bounds join-script task periods
  Time min_horizon = 64;
  Time max_horizon = 320;
  std::optional<Profile> only_profile;  ///< pin every case to one profile
  bool allow_early_release = true;      ///< mix in ERfair cases (1 in 4)
  int shards = 1;  ///< FuzzCase::shards of every generated case (fixed,
                   ///< never drawn — existing case streams stay
                   ///< byte-identical; > 1 fuzzes the sharded kernel)
};

class TaskSetGen {
 public:
  TaskSetGen(GenConfig config, std::uint64_t seed) noexcept
      : config_(config), seed_(seed) {}

  [[nodiscard]] const GenConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Builds case `index`; pure in (config, seed, index).  The result is
  /// always well-formed: validate(result).empty() and the task set is
  /// Pfair-feasible on the case's processor count.
  [[nodiscard]] FuzzCase make_case(std::uint64_t index) const;

 private:
  GenConfig config_;
  std::uint64_t seed_;
};

}  // namespace pfair::qa
