#include "qa/campaign.h"

#include <cstddef>
#include <string>
#include <utility>

#include "engine/parallel.h"

namespace pfair::qa {

namespace {

/// What a worker ships back per case: per-oracle flags in registry
/// order plus the first violation.  Cases themselves are NOT shipped —
/// they are pure functions of (seed, index) and are regenerated
/// serially for the failures that need them.
struct CaseOutcome {
  std::vector<std::uint8_t> applied;
  std::vector<std::uint8_t> violated;
  CaseVerdict verdict;
};

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  const TaskSetGen gen(config.gen, config.seed);
  const std::vector<Oracle>& registry = oracle_registry();

  CampaignResult result;
  result.cases = config.cases;
  result.oracles.reserve(registry.size());
  for (const Oracle& o : registry) {
    OracleStats s;
    s.name = o.name;
    result.oracles.push_back(std::move(s));
  }

  // Fan out.  The sweep's per-trial rng is unused: make_case derives its
  // own stream from (seed, index) so a case replays without a campaign.
  engine::ParallelSweep sweep(config.jobs, config.seed);
  const std::vector<CaseOutcome> outcomes = sweep.run(
      /*point=*/0, static_cast<long long>(config.cases), [&](long long t, Rng&) {
        const FuzzCase c = gen.make_case(static_cast<std::uint64_t>(t));
        const std::vector<OracleReport> reports = run_oracles(c);
        CaseOutcome out;
        out.applied.resize(registry.size(), 0);
        out.violated.resize(registry.size(), 0);
        for (const OracleReport& r : reports) {
          for (std::size_t i = 0; i < registry.size(); ++i) {
            if (r.name != registry[i].name) continue;
            out.applied[i] = r.applied ? 1 : 0;
            out.violated[i] = r.violated ? 1 : 0;
          }
          if (r.violated && out.verdict.ok) {
            out.verdict.ok = false;
            out.verdict.oracle = r.name;
            out.verdict.detail = r.detail;
          }
        }
        return out;
      });

  // Merge serially in case order; shrink failures serially afterwards so
  // the report never depends on worker scheduling.
  for (std::uint64_t index = 0; index < config.cases; ++index) {
    const CaseOutcome& out = outcomes[static_cast<std::size_t>(index)];
    for (std::size_t i = 0; i < registry.size(); ++i) {
      result.oracles[i].applied += out.applied[i];
      result.oracles[i].violated += out.violated[i];
    }
    if (out.verdict.ok) continue;

    CampaignFailure failure;
    failure.original = gen.make_case(index);
    failure.verdict = out.verdict;
    if (result.failures.size() < config.max_shrunk) {
      const Shrinker shrinker(same_oracle_predicate(out.verdict.oracle));
      ShrinkResult shrunk = shrinker.shrink(failure.original);
      failure.shrunk = std::move(shrunk.minimal);
      failure.verdict = std::move(shrunk.verdict);
      failure.transformations = shrunk.transformations;
    } else {
      failure.shrunk = failure.original;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

}  // namespace pfair::qa
