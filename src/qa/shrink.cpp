#include "qa/shrink.h"

#include <numeric>
#include <utility>

namespace pfair::qa {

namespace {

/// Well-formed and feasible — the invariant every accepted
/// transformation must preserve (shrinking onto an infeasible set would
/// trade the original bug for a trivial overload failure).
bool well_formed(const FuzzCase& c) { return validate(c).empty(); }

/// Removes initial task `index`, remapping the leave script (leaves of
/// the dropped task go with it).
FuzzCase drop_task(const FuzzCase& c, TaskId index) {
  FuzzCase out = c;
  out.tasks = TaskSet{};
  for (TaskId id = 0; id < c.tasks.size(); ++id) {
    if (id != index) out.tasks.add(c.tasks[id]);
  }
  out.leaves.clear();
  for (const LeaveEvent& l : c.leaves) {
    if (l.task == index) continue;
    LeaveEvent moved = l;
    if (moved.task > index) --moved.task;
    out.leaves.push_back(moved);
  }
  return out;
}

FuzzCase replace_task(const FuzzCase& c, TaskId index, std::int64_t e, std::int64_t p) {
  FuzzCase out = c;
  out.tasks = TaskSet{};
  for (TaskId id = 0; id < c.tasks.size(); ++id) {
    Task t = c.tasks[id];
    if (id == index) {
      t.execution = e;
      t.period = p;
    }
    out.tasks.add(t);
  }
  return out;
}

}  // namespace

FailPredicate same_oracle_predicate(std::string oracle) {
  return [oracle = std::move(oracle)](const FuzzCase& c) -> std::optional<CaseVerdict> {
    for (const OracleReport& r : run_oracles(c)) {
      if (r.violated && r.name == oracle) {
        CaseVerdict v;
        v.ok = false;
        v.oracle = r.name;
        v.detail = r.detail;
        return v;
      }
    }
    return std::nullopt;
  };
}

ShrinkResult Shrinker::shrink(const FuzzCase& failing) const {
  ShrinkResult res;
  res.minimal = failing;
  const std::optional<CaseVerdict> initial = still_fails_(failing);
  if (!initial.has_value()) return res;  // not failing: nothing to do
  res.verdict = *initial;

  // Accepts `candidate` iff it stays well-formed and still fails.
  const auto accept = [&](FuzzCase candidate) {
    if (!well_formed(candidate)) return false;
    const std::optional<CaseVerdict> v = still_fails_(candidate);
    if (!v.has_value()) return false;
    res.minimal = std::move(candidate);
    res.verdict = *v;
    ++res.transformations;
    return true;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Drop whole tasks, scanning from the front; stay on the same
    //    index after an accept (the next task shifted into it).
    for (TaskId id = 0; id < res.minimal.tasks.size();) {
      if (res.minimal.tasks.size() > 1 && accept(drop_task(res.minimal, id))) {
        changed = true;
      } else {
        ++id;
      }
    }

    // 2. Drop script events.
    for (std::size_t i = 0; i < res.minimal.joins.size();) {
      FuzzCase candidate = res.minimal;
      candidate.joins.erase(candidate.joins.begin() + static_cast<std::ptrdiff_t>(i));
      if (accept(std::move(candidate))) {
        changed = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < res.minimal.leaves.size();) {
      FuzzCase candidate = res.minimal;
      candidate.leaves.erase(candidate.leaves.begin() + static_cast<std::ptrdiff_t>(i));
      if (accept(std::move(candidate))) {
        changed = true;
      } else {
        ++i;
      }
    }

    // 3. Shorten the horizon: a failure visible by slot t stays visible
    //    at every horizon > t, so delta-descent finds the shortest
    //    failing horizon in O(log horizon) probes.
    for (Time delta = res.minimal.horizon / 2; delta >= 1;) {
      if (res.minimal.horizon - delta >= 1) {
        FuzzCase candidate = res.minimal;
        candidate.horizon -= delta;
        if (accept(std::move(candidate))) {
          changed = true;
          delta = std::min(delta, res.minimal.horizon / 2);
          continue;
        }
      }
      delta /= 2;
    }

    // 4. Round weights down: reduce e/p by gcd, drop to the lightest
    //    weight at the period, or shave one quantum of execution.
    for (TaskId id = 0; id < res.minimal.tasks.size(); ++id) {
      const Task& t = res.minimal.tasks[id];
      const std::int64_t g = std::gcd(t.execution, t.period);
      const std::pair<std::int64_t, std::int64_t> candidates[] = {
          {t.execution / g, t.period / g},
          {1, t.period},
          {t.execution - 1, t.period},
      };
      for (const auto& [e, p] : candidates) {
        const Task& cur = res.minimal.tasks[id];
        if (e < 1 || (e == cur.execution && p == cur.period)) continue;
        if (accept(replace_task(res.minimal, id, e, p))) changed = true;
      }
    }

    // 5. Fewer processors (only possible once total weight allows it).
    while (res.minimal.processors > 1) {
      FuzzCase candidate = res.minimal;
      --candidate.processors;
      if (!accept(std::move(candidate))) break;
      changed = true;
    }

    // 6. Unshard: a failure that persists at shards = 1 is a kernel
    // bug, not a sharding bug — prefer the simpler repro.  If this pass
    // never accepts, the repro keeps its shard count (a genuine
    // sharding/merge defect reproduces only sharded).
    if (res.minimal.shards > 1) {
      FuzzCase candidate = res.minimal;
      candidate.shards = 1;
      if (accept(std::move(candidate))) changed = true;
    }
  }
  return res;
}

}  // namespace pfair::qa
