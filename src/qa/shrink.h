// Deterministic greedy minimisation of failing cases.
//
// A campaign failure is only as useful as its smallest reproduction:
// nobody debugs a 10-task, 300-slot trace when a 4-task, 40-slot one
// fails the same oracle.  The shrinker applies a fixed sequence of
// shrinking transformations — drop a task, drop a script event, halve
// then trim the horizon, round a weight down, drop a processor — and
// keeps each one iff the shrunk case (a) is still well-formed and
// feasible and (b) still fails.  Passes repeat until a full pass
// changes nothing, so the result is a local fixpoint: shrinking a
// minimal case again is a no-op (tested), and the whole process is a
// pure function of the input case and predicate — no randomness, no
// timing.
//
// The predicate decides what "still fails" means.  Campaigns pin it to
// "the same oracle still reports a violation", which prevents the
// shrinker from wandering onto a different bug mid-minimisation.
#pragma once

#include <functional>

#include "qa/fuzz_case.h"
#include "qa/oracle.h"

namespace pfair::qa {

/// Returns the verdict when `c` still fails (in the sense the caller
/// cares about), or std::nullopt when it passes.
using FailPredicate = std::function<std::optional<CaseVerdict>(const FuzzCase&)>;

/// The campaign predicate: `c` fails iff check_case flags the named
/// oracle (violations of other oracles do not count).
[[nodiscard]] FailPredicate same_oracle_predicate(std::string oracle);

struct ShrinkResult {
  FuzzCase minimal;      ///< the fixpoint case (== input when nothing shrank)
  CaseVerdict verdict;   ///< the minimal case's failure
  int transformations = 0;  ///< accepted shrinking steps
};

class Shrinker {
 public:
  /// `still_fails` is consulted after every candidate transformation.
  explicit Shrinker(FailPredicate still_fails)
      : still_fails_(std::move(still_fails)) {}

  /// Minimises `failing` (which must satisfy the predicate; if it does
  /// not, the input is returned unchanged with verdict.ok = true).
  [[nodiscard]] ShrinkResult shrink(const FuzzCase& failing) const;

 private:
  FailPredicate still_fails_;
};

}  // namespace pfair::qa
