// The unit of fuzzing: one fully materialised, replayable test case.
//
// A FuzzCase carries everything needed to re-run it — scheduler-facing
// inputs (processors, horizon, task set, task kind, dynamic join/leave
// script) plus its provenance (campaign seed, case index, generator
// profile).  Cases are pure data: generation (qa/gen.h), checking
// (qa/oracle.h), and minimisation (qa/shrink.h) all operate on this
// struct, so a failure found by a 2000-case campaign and the one-line
// gtest repro it shrinks to are literally the same object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task.h"
#include "obs/json.h"
#include "util/types.h"

namespace pfair::qa {

/// Generator bias profile (see qa/gen.h for what each one draws).
enum class Profile : std::uint8_t {
  kUniform,     ///< e, p uniform with 1 <= e <= p <= max_period
  kBimodal,     ///< mix of heavy (wt >= 1/2) and light (e = 1) tasks
  kHeavy,       ///< mostly u_max-heavy tasks; often filled to wt = M
  kHarmonic,    ///< periods restricted to powers of two (harmonic chains)
  kDegenerate,  ///< boundary weights: 1/1, 1/q, (q-1)/q, q/q
  kDynamic,     ///< moderate base load plus a join/leave script
  kStorm,       ///< light base load plus a dense join/leave storm (the
                ///< pfaird admission-path stress shape)
};

[[nodiscard]] const char* profile_name(Profile p) noexcept;
/// All profiles in generation-cycle order.
[[nodiscard]] const std::vector<Profile>& all_profiles();

/// A scripted dynamic join: `task` attempts to join at time `at` (> 0).
/// Joins that would violate Eq. (2) are rejected by the simulator at
/// run time; the script records the attempt either way.
struct JoinEvent {
  Time at = 1;
  Task task;
};

/// A scripted departure request: initial task `task` (index into
/// FuzzCase::tasks) calls request_leave() at time `at`.
struct LeaveEvent {
  Time at = 1;
  TaskId task = 0;
};

struct FuzzCase {
  std::uint64_t seed = 0;   ///< campaign seed this case was derived from
  std::uint64_t index = 0;  ///< case number; (seed, index) replays the case
  Profile profile = Profile::kUniform;
  TaskKind kind = TaskKind::kPeriodic;  ///< periodic or early-release
  int processors = 1;
  int shards = 1;  ///< PfairConfig::shards of every replay (the sharded
                   ///< SoA kernel is byte-identical for any value, so a
                   ///< repro carries the count the failure ran with)
  Time horizon = 64;
  TaskSet tasks;
  std::vector<JoinEvent> joins;
  std::vector<LeaveEvent> leaves;

  [[nodiscard]] bool has_dynamics() const noexcept {
    return !joins.empty() || !leaves.empty();
  }
};

/// Structural validation; empty string when the case is well-formed,
/// else the first problem found (exact messages are part of the tested
/// contract — see tests/qa/oracle_test.cpp):
///   "case has no tasks"
///   "processors must be >= 1 (got 0)"
///   "shards must be >= 1 (got 0)"
///   "horizon must be >= 1 (got 0)"
///   "task 2 is invalid (execution 0, period 4)"
///   "total weight 5/2 exceeds 2 processors"
///   "join 0 must be at time >= 1 (got 0)"
///   "leave 1 references unknown task 7"
[[nodiscard]] std::string validate(const FuzzCase& c);

/// JSON encoding of a case (obs::json value; dump() is canonical, so
/// serialised campaigns are byte-stable).
[[nodiscard]] obs::json::Value case_to_json(const FuzzCase& c);

/// Inverse of case_to_json; false when required members are missing or
/// malformed (out remains unspecified).
[[nodiscard]] bool case_from_json(const obs::json::Value& v, FuzzCase& out);

/// A ready-to-paste gtest regression case reconstructing this case and
/// asserting every applicable oracle passes (the promotion path for
/// shrunk repros — see EXPERIMENTS.md "Fuzzing & invariant oracles").
[[nodiscard]] std::string case_to_gtest(const FuzzCase& c);

}  // namespace pfair::qa
