#include "qa/oracle.h"

#include <algorithm>
#include <sstream>

#include "core/windows.h"
#include "sim/bf_sim.h"
#include "sim/pfair_sim.h"
#include "sim/verifier.h"
#include "uniproc/analysis.h"
#include "uniproc/partitioned_sim.h"

namespace pfair::qa {

namespace {

/// Replays `c` under `alg` with tracing, applying the dynamic script in
/// time order (joins/leaves at equal times: leaves first, so a leaving
/// task's capacity can be reclaimed by a join at the same instant).
OracleContext::Run replay(const FuzzCase& c, Algorithm alg) {
  PfairConfig cfg;
  cfg.processors = c.processors;
  cfg.shards = c.shards;
  cfg.algorithm = alg;
  cfg.record_trace = true;
  PfairSimulator sim(cfg);
  for (const Task& t : c.tasks.tasks()) {
    Task spec = t;
    spec.kind = c.kind;
    sim.add_task(spec);
  }
  std::size_t total_tasks = c.tasks.size();
  std::size_t next_join = 0;
  std::size_t next_leave = 0;
  while (next_join < c.joins.size() || next_leave < c.leaves.size()) {
    const Time t_join =
        next_join < c.joins.size() ? c.joins[next_join].at : c.horizon;
    const Time t_leave =
        next_leave < c.leaves.size() ? c.leaves[next_leave].at : c.horizon;
    const Time at = std::min({t_join, t_leave, c.horizon});
    if (at >= c.horizon) break;
    sim.run_until(at);
    while (next_leave < c.leaves.size() && c.leaves[next_leave].at == at) {
      sim.request_leave(c.leaves[next_leave].task);
      ++next_leave;
    }
    while (next_join < c.joins.size() && c.joins[next_join].at == at) {
      Task spec = c.joins[next_join].task;
      spec.kind = c.kind;
      if (sim.join(spec).has_value()) ++total_tasks;
      ++next_join;
    }
  }
  sim.run_until(c.horizon);
  OracleContext::Run run;
  run.trace = sim.trace();
  run.metrics = sim.metrics();
  run.total_tasks = total_tasks;
  return run;
}

// --- applicability predicates -------------------------------------------

bool is_static_periodic(const FuzzCase& c) {
  return c.kind == TaskKind::kPeriodic && !c.has_dynamics();
}

bool is_static_early_release(const FuzzCase& c) {
  return c.kind == TaskKind::kEarlyRelease && !c.has_dynamics();
}

bool always(const FuzzCase&) { return true; }

bool has_dynamics(const FuzzCase& c) { return c.has_dynamics(); }

// --- checks --------------------------------------------------------------

OracleOutcome from_verifier(const VerifyResult& res) {
  OracleOutcome out;
  out.violated = !res.ok;
  if (!res.ok) out.detail = res.first_violation;
  return out;
}

OracleOutcome check_window_containment(OracleContext& ctx) {
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  VerifyOptions opt;
  opt.processors = ctx.fuzz_case().processors;
  opt.check_windows = true;
  opt.check_lags = false;
  return from_verifier(verify_schedule(run.trace, ctx.fuzz_case().tasks, opt));
}

OracleOutcome check_lag_bounds(OracleContext& ctx) {
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  VerifyOptions opt;
  opt.processors = ctx.fuzz_case().processors;
  opt.check_windows = false;
  opt.check_lags = true;
  return from_verifier(verify_schedule(run.trace, ctx.fuzz_case().tasks, opt));
}

/// Structural capacity, independent of the verifier: at most M
/// allocations per slot and at most one per task.  Applies to every
/// case, including dynamic scripts (task ids beyond the initial set are
/// accepted joins).
OracleOutcome check_quantum_capacity(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  OracleOutcome out;
  std::vector<int> seen(run.total_tasks, 0);
  for (std::size_t t = 0; t < run.trace.size(); ++t) {
    const TraceSlot& slot = run.trace[t];
    if (slot.proc_to_task.size() > static_cast<std::size_t>(c.processors)) {
      std::ostringstream os;
      os << "slot " << t << " has " << slot.proc_to_task.size() << " processors (M = "
         << c.processors << ")";
      out.violated = true;
      out.detail = os.str();
      return out;
    }
    for (const TaskId id : slot.proc_to_task) {
      if (id == kNoTask) continue;
      if (id >= seen.size()) {
        std::ostringstream os;
        os << "slot " << t << " schedules unknown task " << id;
        out.violated = true;
        out.detail = os.str();
        return out;
      }
      if (++seen[id] > 1) {
        std::ostringstream os;
        os << "slot " << t << " gives task " << id << " two processors";
        out.violated = true;
        out.detail = os.str();
        return out;
      }
    }
    for (const TaskId id : slot.proc_to_task) {
      if (id != kNoTask) seen[id] = 0;
    }
  }
  return out;
}

/// The simulator's own miss accounting and the independent trace
/// verifier must agree: both clean or both flagging.
OracleOutcome check_verifier_agreement(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  VerifyOptions opt;
  opt.processors = c.processors;
  const VerifyResult res = verify_schedule(run.trace, c.tasks, opt);
  const bool sim_clean = run.metrics.deadline_misses == 0;
  OracleOutcome out;
  if (sim_clean != res.ok) {
    std::ostringstream os;
    os << "simulator reports " << run.metrics.deadline_misses
       << " misses but the trace verifier says "
       << (res.ok ? "the schedule is valid" : res.first_violation);
    out.violated = true;
    out.detail = os.str();
  }
  return out;
}

/// PD2, PF and PD are all optimal: on a feasible set every one of them
/// must be miss-free, so any miss — or any disagreement — is a bug in
/// a priority comparator or the simulator around it.  EPDF is only
/// optimal on one processor; it joins the panel there.
OracleOutcome check_optimal_differential(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  std::vector<Algorithm> panel = {Algorithm::kPD2, Algorithm::kPF, Algorithm::kPD};
  if (c.processors == 1) panel.push_back(Algorithm::kEPDF);
  OracleOutcome out;
  std::ostringstream os;
  for (const Algorithm alg : panel) {
    const OracleContext::Run& run = ctx.pfair_run(alg);
    if (run.metrics.deadline_misses > 0) {
      if (out.violated) os << "; ";
      os << algorithm_name(alg) << " missed " << run.metrics.deadline_misses
         << " deadlines (first at t=" << run.metrics.first_miss_time
         << ") on a feasible set";
      out.violated = true;
    }
  }
  if (out.violated) out.detail = os.str();
  return out;
}

/// Applies only when the case sits strictly below the Lopez EDF-FF
/// utilization bound for its own u_max; there first-fit EDF must place
/// every task and run miss-free.
bool lopez_applies(const FuzzCase& c) {
  if (!is_static_periodic(c)) return false;
  std::vector<UniTask> uni;
  for (const Task& t : c.tasks.tasks()) uni.push_back(UniTask{t.execution, t.period});
  const std::int64_t beta = lopez_beta(uni);
  return c.tasks.total_weight() < lopez_edf_ff_bound(c.processors, beta);
}

OracleOutcome check_partitioned_lopez(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  std::vector<UniTask> uni;
  for (const Task& t : c.tasks.tasks()) uni.push_back(UniTask{t.execution, t.period});
  PartitionConfig cfg;
  cfg.max_processors = c.processors;
  cfg.heuristic = Heuristic::kFirstFit;
  cfg.acceptance = Acceptance::kEdfUtilization;
  cfg.algorithm = UniAlgorithm::kEDF;
  PartitionedSimulator sim(uni, cfg);
  OracleOutcome out;
  if (!sim.all_tasks_placed()) {
    std::ostringstream os;
    const std::int64_t beta = lopez_beta(uni);
    const Rational bound = lopez_edf_ff_bound(c.processors, beta);
    os << "EDF-FF left " << sim.unplaced().size() << " of " << uni.size()
       << " tasks unplaced below the Lopez bound " << bound.num() << "/" << bound.den()
       << " (beta=" << beta << ", M=" << c.processors << ")";
    out.violated = true;
    out.detail = os.str();
    return out;
  }
  sim.run_until(c.horizon);
  if (sim.metrics().deadline_misses > 0) {
    std::ostringstream os;
    os << "EDF-FF missed " << sim.metrics().deadline_misses
       << " deadlines below the Lopez bound (first at t="
       << sim.metrics().first_miss_time << ")";
    out.violated = true;
    out.detail = os.str();
  }
  return out;
}

OracleOutcome check_erfair_deadline(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  VerifyOptions opt;
  opt.processors = c.processors;
  opt.check_windows = false;  // early release runs before pseudo-releases
  opt.check_lags = false;
  opt.check_upper_lag_only = true;
  OracleOutcome out = from_verifier(verify_schedule(run.trace, c.tasks, opt));
  if (!out.violated && run.metrics.deadline_misses > 0) {
    std::ostringstream os;
    os << "ERfair run reports " << run.metrics.deadline_misses
       << " misses (first at t=" << run.metrics.first_miss_time << ")";
    out.violated = true;
    out.detail = os.str();
  }
  return out;
}

/// ERfair work conservation, re-derived from the trace alone.  Task T's
/// next subtask i = allocated + 1 is eligible at slot t iff
///   - i continues the current job (its predecessor ran in some slot
///     < t, making it eligible immediately under early release), or
///   - i opens a new job and that job's release r(T_i) is <= t.
/// A slot violates work conservation when it leaves a processor idle
/// while some eligible task is unscheduled.
OracleOutcome check_erfair_work_conservation(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  const std::size_t n = c.tasks.size();
  std::vector<std::int64_t> allocated(n, 0);
  OracleOutcome out;
  for (std::size_t t = 0; t < run.trace.size(); ++t) {
    std::size_t pending = 0;
    for (TaskId id = 0; id < n; ++id) {
      const Task& task = c.tasks[id];
      const SubtaskIndex i = allocated[id] + 1;
      const bool first_of_job = (i - 1) % task.execution == 0;
      const bool eligible =
          !first_of_job ||
          subtask_release(task.execution, task.period, i) <= static_cast<Time>(t);
      if (eligible) ++pending;
    }
    std::size_t busy = 0;
    for (const TaskId id : run.trace[t].proc_to_task) {
      if (id == kNoTask) continue;
      ++busy;
      ++allocated[id];
    }
    const std::size_t capacity = std::min<std::size_t>(
        static_cast<std::size_t>(c.processors), pending);
    if (busy < capacity) {
      std::ostringstream os;
      os << "slot " << t << " runs " << busy << " tasks while " << pending
         << " are eligible on " << c.processors << " processors";
      out.violated = true;
      out.detail = os.str();
      return out;
    }
  }
  return out;
}

/// Joins are admitted only under Eq. (2) and departures follow the
/// leave rules, so a dynamic run must stay miss-free end to end.
OracleOutcome check_dynamic_safety(OracleContext& ctx) {
  const OracleContext::Run& run = ctx.pfair_run(Algorithm::kPD2);
  OracleOutcome out;
  if (run.metrics.deadline_misses > 0) {
    std::ostringstream os;
    os << "dynamic run missed " << run.metrics.deadline_misses
       << " deadlines (first at t=" << run.metrics.first_miss_time
       << ") despite rule-respecting joins/leaves";
    out.violated = true;
    out.detail = os.str();
  }
  return out;
}

/// BF is optimal: any static feasible set (the generator only emits
/// sum wt <= M) must run miss-free, with the allocation exact at every
/// job boundary — checked by the independent trace verifier, and
/// cross-checked against the simulator's own miss accounting.
OracleOutcome check_bf_optimality(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::Run& run = ctx.bf_run();
  VerifyOptions opt;
  opt.processors = c.processors;
  opt.check_windows = false;  // BF reorders freely inside an interval
  opt.check_lags = false;
  opt.check_job_boundaries = true;
  const VerifyResult res = verify_schedule(run.trace, c.tasks, opt);
  OracleOutcome out = from_verifier(res);
  if (!out.violated && run.metrics.deadline_misses > 0) {
    std::ostringstream os;
    os << "BF reports " << run.metrics.deadline_misses
       << " misses (first at t=" << run.metrics.first_miss_time
       << ") on a feasible set, but the trace verifier found none";
    out.violated = true;
    out.detail = os.str();
  }
  return out;
}

/// BF vs PD2 boundary-allocation differential: at every period
/// boundary b (a multiple of ANY task's period) the cumulative
/// allocation of each task, under both schedulers, must track the
/// fluid schedule wt * b within one quantum — and exactly at the
/// task's own boundaries, where wt * b is integral.  Two independently
/// implemented optimal schedulers agreeing with the same fluid target
/// pins the allocation math of both.
OracleOutcome check_bf_boundary_differential(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::Run& bf = ctx.bf_run();
  const OracleContext::Run& pd2 = ctx.pfair_run(Algorithm::kPD2);
  const std::size_t horizon =
      std::min(bf.trace.size(), pd2.trace.size());
  OracleOutcome out;
  for (TaskId id = 0; id < c.tasks.size(); ++id) {
    const Task& probe = c.tasks[id];
    for (Time b = probe.period; b <= static_cast<Time>(horizon);
         b += probe.period) {
      for (TaskId other = 0; other < c.tasks.size(); ++other) {
        const Task& t = c.tasks[other];
        const std::int64_t fluid_num = t.execution * b;  // wt * b, over den p
        const struct {
          const char* name;
          std::int64_t alloc;
        } runs[] = {{"BF", bf.trace.allocation(other, static_cast<std::size_t>(b))},
                    {"PD2", pd2.trace.allocation(other, static_cast<std::size_t>(b))}};
        for (const auto& r : runs) {
          const std::int64_t scaled = r.alloc * t.period;
          const bool within = scaled > fluid_num - t.period &&
                              scaled < fluid_num + t.period;
          const bool own = b % t.period == 0;
          const bool exact = r.alloc * t.period == fluid_num;
          if (within && (!own || exact)) continue;
          std::ostringstream os;
          os << r.name << " allocation of task " << other << " at boundary "
             << b << " is " << r.alloc << ", fluid target " << fluid_num
             << "/" << t.period << (own ? " (own boundary: must be exact)" : "");
          out.violated = true;
          out.detail = os.str();
          return out;
        }
      }
    }
  }
  return out;
}

/// RUN is optimal and capacity-checked: it must admit every feasible
/// static set, and the independently verified segment log must show
/// every job served exactly within its window with no misses.
OracleOutcome check_run_optimality(OracleContext& ctx) {
  const FuzzCase& c = ctx.fuzz_case();
  const OracleContext::RunRun& run = ctx.run_run();
  OracleOutcome out;
  if (!run.admitted_all) {
    std::ostringstream os;
    os << "RUN rejected " << run.metrics.tasks_rejected
       << " of " << c.tasks.size() << " tasks of a feasible set";
    out.violated = true;
    out.detail = os.str();
    return out;
  }
  if (run.metrics.deadline_misses > 0) {
    std::ostringstream os;
    os << "RUN missed " << run.metrics.deadline_misses
       << " deadlines (first at t=" << run.metrics.first_miss_time
       << ") on a feasible set";
    out.violated = true;
    out.detail = os.str();
    return out;
  }
  const RunVerifyResult res = verify_run_segments(
      run.segments, c.tasks, run.ticks, c.horizon, c.processors);
  if (!res.ok) {
    out.violated = true;
    out.detail = res.first_violation;
  }
  return out;
}

}  // namespace

const OracleContext::Run& OracleContext::pfair_run(Algorithm alg) {
  auto it = runs_.find(alg);
  if (it == runs_.end()) it = runs_.emplace(alg, replay(case_, alg)).first;
  return it->second;
}

const OracleContext::Run& OracleContext::bf_run() {
  if (!bf_) {
    BfConfig cfg;
    cfg.processors = case_.processors;
    cfg.record_trace = true;
    BfSimulator sim(case_.tasks, cfg);
    sim.run_until(case_.horizon);
    auto run = std::make_unique<Run>();
    run->trace = sim.trace();
    run->metrics = sim.metrics();
    run->total_tasks = case_.tasks.size();
    bf_ = std::move(run);
  }
  return *bf_;
}

const OracleContext::RunRun& OracleContext::run_run() {
  if (!run_) {
    RunConfig cfg;
    cfg.processors = case_.processors;
    cfg.record_segments = true;
    RunSimulator sim(cfg);
    bool all = true;
    for (const Task& t : case_.tasks.tasks())
      all = sim.admit(engine::task_spec(t.execution, t.period)) && all;
    if (all) sim.run_until(case_.horizon);
    auto run = std::make_unique<RunRun>();
    run->segments = sim.segments();
    run->metrics = sim.metrics();
    run->ticks = sim.ticks_per_slot();
    run->admitted_all = all;
    run_ = std::move(run);
  }
  return *run_;
}

const std::vector<Oracle>& oracle_registry() {
  static const std::vector<Oracle> registry = {
      {"window-containment", is_static_periodic, check_window_containment},
      {"lag-bounds", is_static_periodic, check_lag_bounds},
      {"quantum-capacity", always, check_quantum_capacity},
      {"verifier-agreement", is_static_periodic, check_verifier_agreement},
      {"optimal-differential", is_static_periodic, check_optimal_differential},
      {"partitioned-lopez", lopez_applies, check_partitioned_lopez},
      {"erfair-deadline", is_static_early_release, check_erfair_deadline},
      {"erfair-work-conservation", is_static_early_release,
       check_erfair_work_conservation},
      {"dynamic-safety", has_dynamics, check_dynamic_safety},
      {"bf-optimality", is_static_periodic, check_bf_optimality},
      {"bf-boundary-differential", is_static_periodic,
       check_bf_boundary_differential},
      {"run-optimality", is_static_periodic, check_run_optimality},
  };
  return registry;
}

std::vector<OracleReport> run_oracles(const FuzzCase& c) {
  std::vector<OracleReport> reports;
  const std::string problem = validate(c);
  if (!problem.empty()) {
    OracleReport r;
    r.name = "case-validation";
    r.applied = true;
    r.violated = true;
    r.detail = problem;
    reports.push_back(std::move(r));
    return reports;
  }
  OracleContext ctx(c);
  for (const Oracle& o : oracle_registry()) {
    OracleReport r;
    r.name = o.name;
    r.applied = o.applies(c);
    if (r.applied) {
      OracleOutcome outcome = o.check(ctx);
      r.violated = outcome.violated;
      r.detail = std::move(outcome.detail);
    }
    reports.push_back(std::move(r));
  }
  return reports;
}

CaseVerdict check_case(const FuzzCase& c) {
  CaseVerdict v;
  for (const OracleReport& r : run_oracles(c)) {
    if (r.violated) {
      v.ok = false;
      v.oracle = r.name;
      v.detail = r.detail;
      return v;
    }
  }
  return v;
}

}  // namespace pfair::qa
