#include "qa/fuzz_case.h"

#include <sstream>

namespace pfair::qa {

namespace {

const char* kind_name(TaskKind k) noexcept {
  switch (k) {
    case TaskKind::kPeriodic:
      return "periodic";
    case TaskKind::kEarlyRelease:
      return "early-release";
    case TaskKind::kIntraSporadic:
      return "intra-sporadic";
  }
  return "?";
}

bool kind_from_name(const std::string& name, TaskKind& out) noexcept {
  for (const TaskKind k :
       {TaskKind::kPeriodic, TaskKind::kEarlyRelease, TaskKind::kIntraSporadic}) {
    if (name == kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* profile_name(Profile p) noexcept {
  switch (p) {
    case Profile::kUniform:
      return "uniform";
    case Profile::kBimodal:
      return "bimodal";
    case Profile::kHeavy:
      return "heavy";
    case Profile::kHarmonic:
      return "harmonic";
    case Profile::kDegenerate:
      return "degenerate";
    case Profile::kDynamic:
      return "dynamic";
    case Profile::kStorm:
      return "storm";
  }
  return "?";
}

const std::vector<Profile>& all_profiles() {
  static const std::vector<Profile> profiles = {
      Profile::kUniform,   Profile::kBimodal,    Profile::kHeavy,  Profile::kHarmonic,
      Profile::kDegenerate, Profile::kDynamic,   Profile::kStorm,
  };
  return profiles;
}

std::string validate(const FuzzCase& c) {
  std::ostringstream os;
  if (c.tasks.empty()) return "case has no tasks";
  if (c.processors < 1) {
    os << "processors must be >= 1 (got " << c.processors << ")";
    return os.str();
  }
  if (c.shards < 1) {
    os << "shards must be >= 1 (got " << c.shards << ")";
    return os.str();
  }
  if (c.horizon < 1) {
    os << "horizon must be >= 1 (got " << c.horizon << ")";
    return os.str();
  }
  for (TaskId id = 0; id < c.tasks.size(); ++id) {
    const Task& t = c.tasks[id];
    if (!t.valid()) {
      os << "task " << id << " is invalid (execution " << t.execution << ", period "
         << t.period << ")";
      return os.str();
    }
  }
  const Rational total = c.tasks.total_weight();
  if (total > Rational(c.processors)) {
    os << "total weight " << total.num() << "/" << total.den() << " exceeds "
       << c.processors << " processors";
    return os.str();
  }
  for (std::size_t i = 0; i < c.joins.size(); ++i) {
    const JoinEvent& j = c.joins[i];
    if (j.at < 1) {
      os << "join " << i << " must be at time >= 1 (got " << j.at << ")";
      return os.str();
    }
    if (!j.task.valid()) {
      os << "join " << i << " has an invalid task (execution " << j.task.execution
         << ", period " << j.task.period << ")";
      return os.str();
    }
  }
  for (std::size_t i = 0; i < c.leaves.size(); ++i) {
    const LeaveEvent& l = c.leaves[i];
    if (l.at < 1) {
      os << "leave " << i << " must be at time >= 1 (got " << l.at << ")";
      return os.str();
    }
    if (l.task >= c.tasks.size()) {
      os << "leave " << i << " references unknown task " << l.task;
      return os.str();
    }
  }
  return {};
}

obs::json::Value case_to_json(const FuzzCase& c) {
  using obs::json::Array;
  using obs::json::Object;
  using obs::json::Value;
  Object o;
  o["seed"] = Value(static_cast<double>(c.seed));
  o["case"] = Value(static_cast<double>(c.index));
  o["profile"] = Value(std::string(profile_name(c.profile)));
  o["kind"] = Value(std::string(kind_name(c.kind)));
  o["processors"] = Value(static_cast<double>(c.processors));
  o["shards"] = Value(static_cast<double>(c.shards));
  o["horizon"] = Value(static_cast<double>(c.horizon));
  Array tasks;
  for (const Task& t : c.tasks.tasks()) {
    Array pair;
    pair.emplace_back(static_cast<double>(t.execution));
    pair.emplace_back(static_cast<double>(t.period));
    tasks.emplace_back(std::move(pair));
  }
  o["tasks"] = Value(std::move(tasks));
  Array joins;
  for (const JoinEvent& j : c.joins) {
    Object jo;
    jo["at"] = Value(static_cast<double>(j.at));
    jo["execution"] = Value(static_cast<double>(j.task.execution));
    jo["period"] = Value(static_cast<double>(j.task.period));
    joins.emplace_back(std::move(jo));
  }
  o["joins"] = Value(std::move(joins));
  Array leaves;
  for (const LeaveEvent& l : c.leaves) {
    Object lo;
    lo["at"] = Value(static_cast<double>(l.at));
    lo["task"] = Value(static_cast<double>(l.task));
    leaves.emplace_back(std::move(lo));
  }
  o["leaves"] = Value(std::move(leaves));
  return Value(std::move(o));
}

bool case_from_json(const obs::json::Value& v, FuzzCase& out) {
  if (!v.is_object()) return false;
  const obs::json::Value* profile = v.find("profile");
  const obs::json::Value* kind = v.find("kind");
  const obs::json::Value* tasks = v.find("tasks");
  if (profile == nullptr || !profile->is_string() || tasks == nullptr ||
      !tasks->is_array()) {
    return false;
  }
  FuzzCase c;
  c.seed = static_cast<std::uint64_t>(v.number_or("seed", 0));
  c.index = static_cast<std::uint64_t>(v.number_or("case", 0));
  c.processors = static_cast<int>(v.number_or("processors", 1));
  c.shards = static_cast<int>(v.number_or("shards", 1));  // absent in pre-shard artifacts
  c.horizon = static_cast<Time>(v.number_or("horizon", 1));
  bool found_profile = false;
  for (const Profile p : all_profiles()) {
    if (profile->as_string() == profile_name(p)) {
      c.profile = p;
      found_profile = true;
    }
  }
  if (!found_profile) return false;
  if (kind != nullptr && kind->is_string() &&
      !kind_from_name(kind->as_string(), c.kind)) {
    return false;
  }
  for (const obs::json::Value& t : tasks->as_array()) {
    if (!t.is_array() || t.as_array().size() != 2 || !t.as_array()[0].is_number() ||
        !t.as_array()[1].is_number()) {
      return false;
    }
    Task task;
    task.execution = static_cast<std::int64_t>(t.as_array()[0].as_number());
    task.period = static_cast<std::int64_t>(t.as_array()[1].as_number());
    task.kind = c.kind;
    c.tasks.add(task);
  }
  if (const obs::json::Value* joins = v.find("joins");
      joins != nullptr && joins->is_array()) {
    for (const obs::json::Value& j : joins->as_array()) {
      JoinEvent ev;
      ev.at = static_cast<Time>(j.number_or("at", 1));
      ev.task.execution = static_cast<std::int64_t>(j.number_or("execution", 1));
      ev.task.period = static_cast<std::int64_t>(j.number_or("period", 1));
      c.joins.push_back(ev);
    }
  }
  if (const obs::json::Value* leaves = v.find("leaves");
      leaves != nullptr && leaves->is_array()) {
    for (const obs::json::Value& l : leaves->as_array()) {
      LeaveEvent ev;
      ev.at = static_cast<Time>(l.number_or("at", 1));
      ev.task = static_cast<TaskId>(l.number_or("task", 0));
      c.leaves.push_back(ev);
    }
  }
  out = std::move(c);
  return true;
}

std::string case_to_gtest(const FuzzCase& c) {
  std::ostringstream os;
  os << "// Shrunk repro from `pfair_fuzz --seed=" << c.seed << "` (case " << c.index
     << ", profile " << profile_name(c.profile) << ").\n";
  os << "TEST(FuzzRepro, Seed" << c.seed << "Case" << c.index << ") {\n";
  os << "  qa::FuzzCase c;\n";
  os << "  c.seed = " << c.seed << "u;\n";
  os << "  c.index = " << c.index << "u;\n";
  os << "  c.processors = " << c.processors << ";\n";
  if (c.shards != 1) os << "  c.shards = " << c.shards << ";\n";
  os << "  c.horizon = " << c.horizon << ";\n";
  if (c.kind == TaskKind::kEarlyRelease) {
    os << "  c.kind = TaskKind::kEarlyRelease;\n";
  }
  for (const Task& t : c.tasks.tasks()) {
    os << "  c.tasks.add(make_task(" << t.execution << ", " << t.period;
    if (c.kind != TaskKind::kPeriodic) os << ", c.kind";
    os << "));\n";
  }
  for (const JoinEvent& j : c.joins) {
    os << "  c.joins.push_back({" << j.at << ", make_task(" << j.task.execution << ", "
       << j.task.period << ")});\n";
  }
  for (const LeaveEvent& l : c.leaves) {
    os << "  c.leaves.push_back({" << l.at << ", " << l.task << "});\n";
  }
  os << "  const qa::CaseVerdict v = qa::check_case(c);\n";
  os << "  EXPECT_TRUE(v.ok) << v.oracle << \": \" << v.detail;\n";
  os << "}\n";
  return os.str();
}

}  // namespace pfair::qa
