// Exact rational arithmetic for task weights and lags.
//
// Pfair correctness proofs are stated over exact rationals (weights
// e/p, lag bounds strictly inside (-1, 1)); using doubles would make
// lag-bound property tests flaky.  Values stay tiny (numerators bounded
// by horizon * period), so a reduced int64/int64 pair suffices.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "util/math.h"

namespace pfair {

/// A reduced fraction num/den with den > 0.  Supports the small set of
/// operations the scheduling core needs; all operations keep the value
/// reduced so equality is structural.
class Rational {
 public:
  constexpr Rational() noexcept = default;

  /// Constructs num/den; den may be negative or the fraction unreduced.
  constexpr Rational(std::int64_t num, std::int64_t den) noexcept : num_(num), den_(den) {
    assert(den_ != 0);
    reduce();
  }

  /// Implicit from integers, so `w <= 1` reads naturally.
  constexpr Rational(std::int64_t value) noexcept : num_(value), den_(1) {}  // NOLINT

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] constexpr double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] constexpr Rational operator-() const noexcept {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  constexpr Rational& operator+=(const Rational& o) noexcept {
    const std::int64_t g = std::gcd(den_, o.den_);
    const std::int64_t scale = o.den_ / g;
    num_ = checked_mul(num_, scale) + checked_mul(o.num_, den_ / g);
    den_ = checked_mul(den_, scale);
    reduce();
    return *this;
  }
  constexpr Rational& operator-=(const Rational& o) noexcept { return *this += -o; }
  constexpr Rational& operator*=(const Rational& o) noexcept {
    // Cross-reduce before multiplying to keep intermediates small.
    const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, o.den_);
    const std::int64_t g2 = std::gcd(o.num_ < 0 ? -o.num_ : o.num_, den_);
    num_ = checked_mul(num_ / g1, o.num_ / g2);
    den_ = checked_mul(den_ / g2, o.den_ / g1);
    reduce();
    return *this;
  }

  [[nodiscard]] friend constexpr Rational operator+(Rational a, const Rational& b) noexcept {
    return a += b;
  }
  [[nodiscard]] friend constexpr Rational operator-(Rational a, const Rational& b) noexcept {
    return a -= b;
  }
  [[nodiscard]] friend constexpr Rational operator*(Rational a, const Rational& b) noexcept {
    return a *= b;
  }

  [[nodiscard]] friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  [[nodiscard]] friend constexpr std::strong_ordering operator<=>(const Rational& a,
                                                                  const Rational& b) noexcept {
    // Compare a.num/a.den <=> b.num/b.den via cross-multiplication.
    return checked_mul(a.num_, b.den_) <=> checked_mul(b.num_, a.den_);
  }

  /// ⌊*this⌋ as an integer.
  [[nodiscard]] constexpr std::int64_t floor() const noexcept { return floor_div(num_, den_); }
  /// ⌈*this⌉ as an integer.
  [[nodiscard]] constexpr std::int64_t ceil() const noexcept { return ceil_div(num_, den_); }

  [[nodiscard]] std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.to_string();
  }

 private:
  constexpr void reduce() noexcept {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace pfair
