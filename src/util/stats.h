// Streaming statistics and confidence intervals for experiment reporting.
//
// The paper reports 99% confidence intervals for every plotted point; the
// bench harnesses do the same via this accumulator.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>

namespace pfair {

/// Welford online accumulator: mean / variance / min / max in one pass,
/// numerically stable for long runs.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// Half-width of the 99% confidence interval for the mean.  Uses a
  /// Student-t critical value for small n, converging to z = 2.576.
  [[nodiscard]] double ci99_halfwidth() const noexcept { return t99(n_) * sem(); }

  /// CI half-width relative to the mean (the paper's "relative error").
  [[nodiscard]] double ci99_relative() const noexcept {
    return mean_ != 0.0 ? ci99_halfwidth() / std::abs(mean_) : 0.0;
  }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    n_ += o.n_;
  }

 private:
  /// Two-sided 99% Student-t critical values (df = n-1), tabulated for
  /// small df, asymptotic beyond.
  [[nodiscard]] static double t99(std::size_t n) noexcept {
    static constexpr double kTable[] = {0.0,   63.657, 9.925, 5.841, 4.604, 4.032, 3.707,
                                        3.499, 3.355,  3.250, 3.169, 3.106, 3.055, 3.012,
                                        2.977, 2.947,  2.921, 2.898, 2.878, 2.861, 2.845};
    if (n < 2) return 0.0;
    const std::size_t df = n - 1;
    if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
    if (df < 30) return 2.75;
    if (df < 60) return 2.66;
    if (df < 120) return 2.62;
    return 2.576;
  }

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pfair
