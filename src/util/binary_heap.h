// Addressable binary min-heap.
//
// Both schedulers in the paper use binary heaps for their ready queues
// ("We used binary heaps to implement the priority queues of both
// schedulers"), so the library provides its own instead of std::
// priority_queue: the schedulers need decrease-key-style updates and
// arbitrary removal (task leaves, IS re-releases), which the standard
// adapter cannot do.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pfair {

/// Stable handle to an element stored in a BinaryHeap.
using HeapHandle = std::uint32_t;
inline constexpr HeapHandle kInvalidHandle = 0xffffffffu;

/// Binary min-heap over values of type T ordered by `Less` (strict weak
/// ordering; `Less(a,b)` true means `a` has higher priority).  push()
/// returns a handle that stays valid until the element is popped/erased;
/// update(handle) restores heap order after the element's key changed.
template <typename T, typename Less>
class BinaryHeap {
 public:
  explicit BinaryHeap(Less less = Less{}) : less_(std::move(less)) {}

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  void clear() noexcept {
    heap_.clear();
    slots_.clear();
    free_slots_.clear();
  }

  /// Inserts `value`; O(log n).
  HeapHandle push(T value) {
    HeapHandle h;
    if (!free_slots_.empty()) {
      h = free_slots_.back();
      free_slots_.pop_back();
    } else {
      h = static_cast<HeapHandle>(slots_.size());
      slots_.emplace_back();
    }
    const std::size_t pos = heap_.size();
    heap_.push_back(Node{std::move(value), h});
    slots_[h] = pos;
    sift_up(pos);
    return h;
  }

  /// Highest-priority element; heap must be non-empty.
  [[nodiscard]] const T& top() const noexcept {
    assert(!heap_.empty());
    return heap_.front().value;
  }

  /// Handle of the highest-priority element.
  [[nodiscard]] HeapHandle top_handle() const noexcept {
    assert(!heap_.empty());
    return heap_.front().handle;
  }

  /// Removes and returns the highest-priority element; O(log n).
  T pop() {
    assert(!heap_.empty());
    T out = std::move(heap_.front().value);
    erase_at(0);
    return out;
  }

  /// Removes the element behind `h`; O(log n).
  void erase(HeapHandle h) {
    assert(contains(h));
    erase_at(slots_[h]);
  }

  /// Read access to the element behind `h`.
  [[nodiscard]] const T& get(HeapHandle h) const noexcept {
    assert(contains(h));
    return heap_[slots_[h]].value;
  }

  /// Mutable access; caller must call update(h) if the ordering key changed.
  [[nodiscard]] T& get_mutable(HeapHandle h) noexcept {
    assert(contains(h));
    return heap_[slots_[h]].value;
  }

  /// Restores heap order after the key of `h` changed; O(log n).
  void update(HeapHandle h) {
    assert(contains(h));
    const std::size_t pos = slots_[h];
    if (!sift_up(pos)) sift_down(pos);
  }

  /// True iff `h` currently refers to a live element.
  [[nodiscard]] bool contains(HeapHandle h) const noexcept {
    return h < slots_.size() && slots_[h] < heap_.size() && heap_[slots_[h]].handle == h;
  }

  /// Verifies the heap invariant; test hook, O(n).
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (less_(heap_[i].value, heap_[(i - 1) / 2].value)) return false;
      if (slots_[heap_[i].handle] != i) return false;
    }
    return true;
  }

 private:
  struct Node {
    T value;
    HeapHandle handle;
  };

  void place(std::size_t pos, Node node) {
    slots_[node.handle] = pos;
    heap_[pos] = std::move(node);
  }

  bool sift_up(std::size_t pos) {
    Node node = std::move(heap_[pos]);
    bool moved = false;
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (!less_(node.value, heap_[parent].value)) break;
      place(pos, std::move(heap_[parent]));
      pos = parent;
      moved = true;
    }
    place(pos, std::move(node));
    return moved;
  }

  void sift_down(std::size_t pos) {
    Node node = std::move(heap_[pos]);
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && less_(heap_[child + 1].value, heap_[child].value)) ++child;
      if (!less_(heap_[child].value, node.value)) break;
      place(pos, std::move(heap_[child]));
      pos = child;
    }
    place(pos, std::move(node));
  }

  void erase_at(std::size_t pos) {
    const HeapHandle h = heap_[pos].handle;
    Node last = std::move(heap_.back());
    heap_.pop_back();
    slots_[h] = static_cast<std::size_t>(-1);
    free_slots_.push_back(h);
    if (pos < heap_.size()) {
      place(pos, std::move(last));
      update(heap_[pos].handle);
    }
  }

  Less less_;
  std::vector<Node> heap_;
  std::vector<std::size_t> slots_;       // handle -> position in heap_
  std::vector<HeapHandle> free_slots_;  // recycled handles
};

}  // namespace pfair
