// Fundamental scalar types shared across the pfair library.
//
// All core scheduling arithmetic is exact integer arithmetic: time is a
// count of quanta (slots), execution requirements and periods are quanta
// counts, and rates are exact rationals.  Floating point appears only at
// the edges (overhead models in microseconds, statistics).
#pragma once

#include <cstdint>

namespace pfair {

/// Discrete scheduling time, in quanta (slots).  Slot `t` is the real
/// interval [t, t+1).  Signed so that differences and lags are natural.
using Time = std::int64_t;

/// Index of a subtask within a task (1-based, as in the paper).
using SubtaskIndex = std::int64_t;

/// Identifier of a task within a task system (dense, 0-based).
using TaskId = std::uint32_t;

/// Identifier of a processor (dense, 0-based).
using ProcId = std::uint32_t;

/// Sentinel meaning "not assigned to any processor".
inline constexpr ProcId kNoProc = 0xffffffffu;

/// Sentinel meaning "no task" in per-processor allocation tables.
inline constexpr TaskId kNoTask = 0xffffffffu;

}  // namespace pfair
