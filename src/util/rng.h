// Deterministic pseudo-random number generation for workload synthesis.
//
// Experiments must be reproducible run-to-run and machine-to-machine, so
// the library carries its own generator (xoshiro256**) instead of relying
// on implementation-defined std::default_random_engine behaviour, and its
// own distributions instead of the unspecified std::uniform_* algorithms.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pfair {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, adapted).  Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds deterministically via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) s = splitmix64(x);
  }

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    assert(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent stream for a sub-experiment; deterministic in
  /// (current seed material, `stream`).  NOTE: fork() advances this
  /// generator, so the derived stream depends on how many forks happened
  /// before it.  Parallel trial engines need the order-free stream()
  /// below instead.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept {
    return Rng(next() ^ (stream * 0xbf58476d1ce4e5b9ull + 0x94d049bb133111ebull));
  }

  /// Counter-based seed derivation: a pure function of (seed, stream) —
  /// no generator state is consumed — so stream i can be reconstructed
  /// independently, in any order, on any thread.  This is what makes a
  /// parallel trial sweep bit-identical to its serial run: trial t
  /// always sees Rng::stream(seed, t) no matter which worker runs it.
  /// Mixing is a splitmix64 chain: hash the base seed once, offset by
  /// the counter in mixed space, hash again (neighbouring counters land
  /// in unrelated states; the Rng constructor expands further).
  [[nodiscard]] static std::uint64_t derive_stream_seed(std::uint64_t seed,
                                                       std::uint64_t stream) noexcept {
    std::uint64_t x = seed;
    x = splitmix64(x) + stream;  // splitmix64 advances x, returns the hash
    return splitmix64(x);
  }

  /// Generator for counter-based stream `stream` of `seed` (see
  /// derive_stream_seed).
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t stream) noexcept {
    return Rng(derive_stream_seed(seed, stream));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  [[nodiscard]] static constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pfair
