// Exact integer helpers used throughout the Pfair window algebra.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>

namespace pfair {

/// Floor of a/b for b > 0 and any sign of a (C++ `/` truncates toward 0).
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  assert(b > 0);
  const std::int64_t q = a / b;
  return (a % b != 0 && a < 0) ? q - 1 : q;
}

/// Ceiling of a/b for b > 0 and any sign of a.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  assert(b > 0);
  const std::int64_t q = a / b;
  return (a % b != 0 && a > 0) ? q + 1 : q;
}

/// a*b with a debug-mode overflow check.  The library works with task
/// parameters small enough (periods <= ~1e9, horizons <= ~1e12) that
/// 64-bit products never overflow in correct usage; this assert catches
/// misuse early.
[[nodiscard]] constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  std::int64_t r = 0;
  const bool overflow = __builtin_mul_overflow(a, b, &r);
  assert(!overflow);
  (void)overflow;
  return r;
#else
  return a * b;
#endif
}

/// Least common multiple that saturates at max() instead of overflowing.
/// Hyperperiods of random task sets can be astronomically large; callers
/// treat saturation as "longer than any horizon we simulate".
[[nodiscard]] constexpr std::int64_t saturating_lcm(std::int64_t a, std::int64_t b) noexcept {
  assert(a > 0 && b > 0);
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t x = a / g;
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (x > kMax / b) return kMax;
  return x * b;
}

}  // namespace pfair
