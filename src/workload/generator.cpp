#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pfair {

std::vector<OhTask> generate_oh_tasks(const OhWorkloadConfig& cfg, Rng& rng) {
  assert(cfg.n_tasks > 0);
  assert(cfg.total_utilization > 0.0 &&
         cfg.total_utilization < static_cast<double>(cfg.n_tasks));
  std::vector<double> u(cfg.n_tasks);
  // Scaled-uniform utilization split, rejecting draws where scaling
  // pushes a task past utilization 1 (rare at the mean utilizations the
  // experiments use, <= 1/3).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double sum = 0.0;
    for (double& x : u) {
      x = rng.uniform(0.05, 1.0);
      sum += x;
    }
    const double scale = cfg.total_utilization / sum;
    bool ok = true;
    for (double& x : u) {
      x *= scale;
      if (x >= 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) break;
    assert(attempt < 999);
  }

  std::vector<OhTask> tasks;
  tasks.reserve(cfg.n_tasks);
  const double log_lo = std::log(cfg.period_min_us);
  const double log_hi = std::log(cfg.period_max_us);
  for (const double util : u) {
    OhTask t;
    const double p_raw = std::exp(rng.uniform(log_lo, log_hi));
    // Round the period to a quantum multiple (the paper assumes p is a
    // multiple of q).
    const double quanta = std::max(1.0, std::round(p_raw / cfg.quantum_us));
    t.period_us = quanta * cfg.quantum_us;
    t.execution_us = std::max(0.1, util * t.period_us);
    // The paper draws D(T) "randomly between 0us and 100us" with *mean
    // 33.3us*: a right-triangular density on [0, max] (decreasing to 0
    // at max) has mean max/3, honouring both statements.
    t.cache_delay_us = cfg.cache_delay_max_us * (1.0 - std::sqrt(rng.uniform01()));
    tasks.push_back(t);
  }
  return tasks;
}

Task random_pfair_task(Rng& rng, std::int64_t max_period, TaskKind kind) {
  assert(max_period >= 1);
  // Periods are drawn from the divisors of a fixed base hyperperiod
  // H = 720720 = 2^4 * 3^2 * 5 * 7 * 11 * 13 (every integer in [1, 16]
  // divides H, so small max_period behaves like a uniform draw).  This
  // keeps the denominator of any *sum* of task weights a divisor of H,
  // so exact-rational feasibility arithmetic cannot overflow no matter
  // how many tasks a set contains — with unrestricted periods the lcm
  // of a few hundred denominators exceeds 64 bits.
  constexpr std::int64_t kBaseHyperperiod = 720720;
  static const std::vector<std::int64_t> divisors = [] {
    std::vector<std::int64_t> d;
    for (std::int64_t k = 1; k * k <= kBaseHyperperiod; ++k) {
      if (kBaseHyperperiod % k == 0) {
        d.push_back(k);
        if (k != kBaseHyperperiod / k) d.push_back(kBaseHyperperiod / k);
      }
    }
    std::sort(d.begin(), d.end());
    return d;
  }();
  const auto end = std::upper_bound(divisors.begin(), divisors.end(),
                                    std::min(max_period, kBaseHyperperiod));
  const auto count = static_cast<std::int64_t>(end - divisors.begin());
  assert(count >= 1);
  const std::int64_t p = divisors[static_cast<std::size_t>(rng.uniform_int(0, count - 1))];
  const std::int64_t e = rng.uniform_int(1, p);
  return make_task(e, p, kind);
}

TaskSet generate_feasible_taskset(Rng& rng, int m, std::size_t max_tasks,
                                  std::int64_t max_period, bool fill, TaskKind kind) {
  assert(m >= 1);
  TaskSet set;
  Rational total(0);
  const Rational cap(m);
  for (std::size_t i = 0; i < max_tasks; ++i) {
    const Task t = random_pfair_task(rng, max_period, kind);
    if (cap < total + t.weight()) continue;  // skip tasks that overflow
    total += t.weight();
    set.add(t);
    if (total == cap) break;
  }
  if (set.empty()) {
    set.add(make_task(1, max_period, kind));
    total = set.total_weight();
  }
  if (fill && total < cap) {
    // Top up with one task of weight exactly cap - total (if it is a
    // valid weight <= 1; otherwise add unit-weight tasks first).
    Rational gap = cap - total;
    while (Rational(1) < gap) {
      set.add(make_task(1, 1, kind));
      gap -= Rational(1);
    }
    if (Rational(0) < gap) set.add(make_task(gap.num(), gap.den(), kind));
  }
  return set;
}

std::vector<UniTask> generate_uni_tasks(Rng& rng, std::size_t n, double u_cap,
                                        std::int64_t max_period) {
  std::vector<UniTask> out;
  out.reserve(n);
  // Same scaled-uniform split as the overhead workloads, but over
  // integer execution times.
  std::vector<double> u(n);
  double sum = 0.0;
  for (double& x : u) {
    x = rng.uniform(0.05, 1.0);
    sum += x;
  }
  for (double& x : u) x *= u_cap / sum;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t p = rng.uniform_int(std::max<std::int64_t>(10, max_period / 100),
                                           max_period);
    std::int64_t e = static_cast<std::int64_t>(std::llround(u[i] * static_cast<double>(p)));
    e = std::clamp<std::int64_t>(e, 1, p);
    out.push_back(make_uni_task(e, p));
  }
  return out;
}

std::vector<Rational> partition_adversary(int m, std::int64_t eps_den) {
  assert(m >= 1 && eps_den >= 2);
  // (1 + 1/eps_den) / 2 = (eps_den + 1) / (2 eps_den)
  std::vector<Rational> u(static_cast<std::size_t>(m) + 1,
                          Rational(eps_den + 1, 2 * eps_den));
  return u;
}

TaskSet two_processor_counterexample() {
  TaskSet set;
  set.add(make_task(2, 3, TaskKind::kPeriodic, "A"));
  set.add(make_task(2, 3, TaskKind::kPeriodic, "B"));
  set.add(make_task(2, 3, TaskKind::kPeriodic, "C"));
  return set;
}

Fig5System fig5_system() {
  Fig5System sys;
  sys.normal_tasks.add(make_task(1, 2, TaskKind::kPeriodic, "V"));
  sys.normal_tasks.add(make_task(1, 3, TaskKind::kPeriodic, "W"));
  sys.normal_tasks.add(make_task(1, 3, TaskKind::kPeriodic, "X"));
  sys.normal_tasks.add(make_task(2, 9, TaskKind::kPeriodic, "Y"));
  sys.supertask = make_supertask(
      {make_task(1, 5, TaskKind::kPeriodic, "T"), make_task(1, 45, TaskKind::kPeriodic, "U")},
      "S");
  return sys;
}

}  // namespace pfair
