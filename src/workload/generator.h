// Random workload synthesis for the experiments (paper Sec. 4).
//
// Two families of task sets are needed:
//   - integer-quanta Pfair task sets for the simulator experiments
//     (Fig. 2 and the optimality property suites), and
//   - continuous-time (microsecond) task sets with cache-delay samples
//     for the schedulability experiments (Figs. 3 and 4): N tasks with a
//     prescribed total utilization, D(T) ~ U[0, 100 us], periods
//     multiples of the 1 ms quantum.
//
// Thread-safety: every generator draws only from the caller-supplied
// Rng and touches no mutable shared state, so concurrent calls with
// distinct Rng instances are safe — engine::ParallelSweep trial
// functions rely on this.
#pragma once

#include <vector>

#include "core/supertask.h"
#include "core/task.h"
#include "overhead/inflation.h"
#include "uniproc/uni_task.h"
#include "util/rational.h"
#include "util/rng.h"

namespace pfair {

struct OhWorkloadConfig {
  std::size_t n_tasks = 50;
  double total_utilization = 5.0;
  double period_min_us = 50'000.0;     ///< 50 ms
  double period_max_us = 1'000'000.0;  ///< 1 s
  double quantum_us = 1000.0;          ///< periods rounded to multiples of this
  double cache_delay_max_us = 100.0;   ///< D(T) ~ U[0, this]
};

/// Draws a task set with sum of utilizations == total_utilization (up to
/// rounding of execution times to 0.1 us), each task utilization < 1.
/// Periods are log-uniform in [period_min, period_max], rounded to
/// quantum multiples.
[[nodiscard]] std::vector<OhTask> generate_oh_tasks(const OhWorkloadConfig& cfg, Rng& rng);

/// Random integer-quanta Pfair task with 1 <= e <= p <= max_period.
/// Periods are drawn from the divisors of 720720 (= lcm(1..16) * 11 * 13 /
/// ...), so weight sums over arbitrarily many generated tasks stay
/// exactly representable in 64-bit rationals; for max_period <= 16 this
/// coincides with a uniform period draw.
[[nodiscard]] Task random_pfair_task(Rng& rng, std::int64_t max_period,
                                     TaskKind kind = TaskKind::kPeriodic);

/// Builds a Pfair-feasible task set on m processors: adds random tasks
/// while the total weight stays <= m, then (if `fill` is set) tops the
/// set up with one final task making the total weight exactly m.
[[nodiscard]] TaskSet generate_feasible_taskset(Rng& rng, int m, std::size_t max_tasks,
                                                std::int64_t max_period, bool fill = false,
                                                TaskKind kind = TaskKind::kPeriodic);

/// Random uniprocessor job set with total utilization <= u_cap, for the
/// Fig.-2(a) overhead measurements (integer execution/period units).
[[nodiscard]] std::vector<UniTask> generate_uni_tasks(Rng& rng, std::size_t n, double u_cap,
                                                      std::int64_t max_period);

/// The partitioning adversary from Sec. 3: m + 1 tasks, each with
/// utilization (1 + 1/eps_den) / 2 — unpartitionable on m processors for
/// any heuristic, with total utilization -> (m+1)/2 as eps_den grows.
[[nodiscard]] std::vector<Rational> partition_adversary(int m, std::int64_t eps_den);

/// The paper's Sec.-1 example of partitioning sub-optimality: three
/// tasks of weight 2/3 on two processors (feasible globally, not
/// partitionable).
[[nodiscard]] TaskSet two_processor_counterexample();

/// The Fig.-5 task set: V = 1/2, W = 1/3, X = 1/3, Y = 2/9 plus a
/// supertask S = {T: 1/5, U: 1/45} competing at 2/9 (returned
/// separately).
struct Fig5System {
  TaskSet normal_tasks;       ///< V, W, X, Y
  SupertaskSpec supertask;    ///< S with components T, U
};
[[nodiscard]] Fig5System fig5_system();

}  // namespace pfair
