// Timing-wheel release calendar for the Pfair simulator.
//
// The release calendar holds at most one entry per task ("the slot in
// which this task's next subtask becomes eligible"), and the simulator
// drains every due slot in time order.  A binary heap serves that access
// pattern with an O(log n) sift per push and per pop — on the hot path
// that was one full-depth sift per scheduled quantum.  A timing wheel
// exploits the structure instead: entries land in a power-of-two ring of
// per-slot buckets (O(1) push), and draining slot t empties exactly the
// bucket t & mask (O(entries) total, no comparisons).
//
// Deletion is lazy: the simulator marks an entry dead by clearing the
// task's `calendar_when` field and simply abandons the bucket entry.
// Stale entries are dropped when their bucket is next examined — the
// drain callback receives every entry whose time matches and the caller
// filters against `calendar_when`, which also de-duplicates the
// erase-then-repush-for-the-same-slot case (the first match consumes
// `calendar_when`; later duplicates no longer match).
//
// Entries further ahead than the wheel covers go to a small overflow
// heap (plain make/push/pop_heap over a vector).  The wheel grows to
// cover what it sees, up to kMaxWheelBits, so overflow is reserved for
// genuinely far-future releases (e.g. intra-sporadic arrival plans) and
// stays near-empty in steady state.
#pragma once

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "util/types.h"

namespace pfair {

class ReleaseWheel {
 public:
  struct Entry {
    Time when = 0;
    TaskId task = kNoTask;
  };

  /// Returned by next_event() when no live entry exists in range.
  static constexpr Time kNoEvent = std::numeric_limits<Time>::max();

  /// Registers `task` for slot `when` (strictly after `now`).  O(1)
  /// amortized; grows the wheel when `when` is beyond the horizon it
  /// currently covers (rare, geometric).
  void push(Time when, Time now, TaskId task) {
    assert(when > now);
    const Time delta = when - now;
    if (buckets_.empty()) buckets_.resize(kInitialSize);
    if (delta >= static_cast<Time>(buckets_.size()) && !grow_to(delta)) {
      overflow_.push_back(Entry{when, task});
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
      return;
    }
    buckets_[static_cast<std::size_t>(when) & (buckets_.size() - 1)].push_back(
        Entry{when, task});
  }

  /// Calls f(task) for every entry registered for slot `t` (including
  /// entries the caller has since marked dead — the caller filters).
  /// Entries for earlier slots can only be dead (live ones are always
  /// drained at their exact slot) and are dropped; later (wrapped)
  /// entries stay.
  template <typename F>
  void drain_due(Time t, F&& f) {
    if (!buckets_.empty()) {
      std::vector<Entry>& b = buckets_[static_cast<std::size_t>(t) & (buckets_.size() - 1)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (b[i].when > t) {
          b[keep++] = b[i];
        } else if (b[i].when == t) {
          f(b[i].task);
        }
      }
      b.resize(keep);
    }
    while (!overflow_.empty() && overflow_.front().when <= t) {
      const Entry e = overflow_.front();
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      overflow_.pop_back();
      if (e.when == t) f(e.task);
    }
  }

  /// Earliest slot in [now, limit] holding an entry for which
  /// live(task, when) is true, or kNoEvent.  `now` itself is included:
  /// an entry due in the very slot about to be simulated must report as
  /// the next event (it blocks any fast-forward jump).  O(slots scanned
  /// + entries seen); only called from the idle fast-forward, whose jump
  /// saves at least the slots scanned.
  template <typename P>
  [[nodiscard]] Time next_event(Time now, Time limit, P&& live) const {
    Time best = kNoEvent;
    for (const Entry& e : overflow_) {
      if (e.when >= now && e.when < best && live(e.task, e.when)) best = e.when;
    }
    if (!buckets_.empty()) {
      // All live wheel entries are within buckets_.size() - 1 of `now`
      // (the push-time distance only shrinks as time advances).
      const Time hi =
          std::min(limit, now + static_cast<Time>(buckets_.size()) - 1);
      for (Time t = now; t <= hi && t < best; ++t) {
        const std::vector<Entry>& b =
            buckets_[static_cast<std::size_t>(t) & (buckets_.size() - 1)];
        for (const Entry& e : b) {
          if (e.when == t && live(e.task, t)) return std::min(best, t);
        }
      }
    }
    return best;
  }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.when > b.when;  // min-heap on when
    }
  };

  static constexpr std::size_t kInitialSize = 256;  // power of two
  static constexpr int kMaxWheelBits = 16;          // beyond: overflow heap

  /// Grows to the next power of two covering `delta`; false if capped.
  bool grow_to(Time delta) {
    std::size_t want = buckets_.size();
    while (static_cast<Time>(want) <= delta) {
      if (want >= (std::size_t{1} << kMaxWheelBits)) return false;
      want <<= 1;
    }
    std::vector<std::vector<Entry>> grown(want);
    for (std::vector<Entry>& b : buckets_) {
      for (const Entry& e : b) {
        grown[static_cast<std::size_t>(e.when) & (want - 1)].push_back(e);
      }
    }
    buckets_ = std::move(grown);
    return true;
  }

  std::vector<std::vector<Entry>> buckets_;  ///< ring, size a power of two
  std::vector<Entry> overflow_;              ///< min-heap of far-future entries
};

}  // namespace pfair
