// Boundary-fair (BF) scheduling [Zhu, Mossé, Melhem, RTSS'03].
//
// BF keeps Pfair's optimality (any set with sum wt(T) <= M is
// schedulable) while making scheduling decisions only at *period
// boundaries* — the distinct multiples of any task's period — instead
// of at every quantum.  At each boundary b_k the scheduler computes,
// per task, the integer allocation for the whole interval
// [b_k, b_{k+1}) at once:
//
//   F_i  = wt(T_i) * b_{k+1} - allocated_i      (the fluid target)
//   m_i  = max(0, floor(F_i))                   (mandatory units)
//   +1 optional unit iff frac(F_i) > 0, F_i > 0 and m_i < L
//
// granting the RC = M*L - sum m_i leftover units to eligible tasks in
// PD2 urgency order of their pending subtask (earliest pseudo-deadline,
// then b-bit, then group deadline, then id — the same comparison the
// per-quantum scheduler uses, aggregated per interval).  Keeping every
// cumulative allocation in {floor, ceil} of the fluid weight * time
// makes the allocation *exact* at each task's own period boundaries
// (wt * k * p = k * e is integral there), so every job receives exactly
// e quanta between release and deadline: no deadline is ever missed.
//
// Within an interval the chosen x_i quanta are laid out with
// McNaughton's wrap-around rule (fill processor 0 slot by slot, wrap
// the overflow onto the next processor), which is valid whenever
// x_i <= L and splits at most M-1 tasks per interval — this is where
// BF's preemption/migration savings over per-quantum Pfair come from.
//
// Determinism: integer arithmetic only (per-task rationals e*b'/p never
// leave int64), id-ordered tie-breaks, id-ordered McNaughton layout.
// The same admitted set always produces byte-identical traces/metrics.
#pragma once

#include <vector>

#include "core/task.h"
#include "engine/metrics.h"
#include "engine/simulator.h"
#include "obs/bus.h"
#include "sim/trace.h"

namespace pfair {

struct BfConfig {
  int processors = 1;
  bool record_trace = true;  ///< keep the full per-slot allocation trace
};

class BfSimulator : public engine::Simulator {
 public:
  explicit BfSimulator(TaskSet tasks = {}, BfConfig config = {});

  /// Admission is only possible before the first slot runs: the
  /// boundary set and the fluid targets are fixed at start.  Dynamic
  /// join/leave/reweight inherit the rejecting defaults
  /// (can_dynamic() = false), so refusals are well-defined, not UB.
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  void run_until(Time until) override;

  [[nodiscard]] Time now() const noexcept override { return now_; }
  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] const ScheduleTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] std::int64_t allocated(TaskId id) const { return allocated_[id]; }
  [[nodiscard]] const TaskSet& tasks() const noexcept { return tasks_; }

  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }

 private:
  /// Computes the boundary interval starting at now_ (which must be a
  /// boundary): releases jobs, checks deadlines, allocates mandatory +
  /// optional units, lays the interval out (McNaughton).
  void plan_interval();
  /// Emits one laid-out slot (trace, obs events, Sec.-4 accounting).
  void emit_slot();

  TaskSet tasks_;
  BfConfig config_;
  Time now_ = 0;
  std::vector<std::int64_t> allocated_;  ///< cumulative quanta per task

  // Current interval [interval_begin_, interval_end_), laid out as
  // layout_[slot - interval_begin_][proc] = task (kNoTask = idle).
  Time interval_begin_ = 0;
  Time interval_end_ = 0;
  std::vector<std::vector<TaskId>> layout_;

  ScheduleTrace trace_;
  engine::Metrics metrics_;
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off

  // Scratch for the Sec.-4 event accounting, reused every slot.
  std::vector<TaskId> prev_proc_task_;
  std::vector<TaskId> cur_proc_task_;
  std::vector<bool> prev_sched_;
  std::vector<bool> cur_sched_;
  std::vector<ProcId> last_proc_;
  // Per-interval allocation scratch.
  std::vector<std::int64_t> quota_;     ///< x_i for the current interval
  std::vector<TaskId> eligible_;        ///< optional-unit candidates
};

}  // namespace pfair
