#include "sim/run_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

#include "util/math.h"

namespace pfair {

namespace {
constexpr std::uint32_t kNoNode = 0xffffffff;
}  // namespace

RunSimulator::RunSimulator(RunConfig config) : config_(config) {
  assert(config_.processors >= 1);
  proc_owner_.assign(static_cast<std::size_t>(config_.processors), kNoNode);
}

bool RunSimulator::admit(const engine::TaskSpec& spec) {
  const auto reject = [this] {
    ++metrics_.tasks_rejected;
    return false;
  };
  if (built_ || !spec.valid()) return reject();
  const Time e = spec.resolved_execution();
  const Time p = spec.resolved_period();
  const std::int64_t new_lcm = saturating_lcm(ticks_, p);
  if (new_lcm > kMaxLcm) return reject();  // tick grid would overflow int64 math
  // Exact utilization check over the new common denominator: RUN's
  // reduction requires sum e/p <= M, so admission is capacity-checked
  // (unlike PD2, which accepts anything and lets misses surface).
  std::int64_t sum_num = checked_mul(e, new_lcm / p);
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    sum_num += checked_mul(tasks_[i].execution, new_lcm / tasks_[i].period);
  if (sum_num > checked_mul(config_.processors, new_lcm))
    return reject();
  ticks_ = new_lcm;
  tasks_.add(make_task(e, p, TaskKind::kPeriodic, spec.name));
  ++metrics_.tasks_admitted;
  return true;
}

void RunSimulator::build_tree() {
  built_ = true;
  if (tasks_.empty()) return;

  // Leaves: one per task, plus at most one fractional idle leaf that
  // pads the effective processor count to an exact integral rate sum.
  std::int64_t sum_num = 0;
  Time max_period = 1;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Node leaf;
    leaf.kind = Node::Kind::kLeaf;
    leaf.task = static_cast<TaskId>(i);
    leaf.period = tasks_[i].period;
    leaf.rate_num = checked_mul(tasks_[i].execution, ticks_ / tasks_[i].period);
    leaf.job_work = checked_mul(tasks_[i].execution, ticks_);
    sum_num += leaf.rate_num;
    max_period = std::max(max_period, tasks_[i].period);
    leaves_.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }
  const std::int64_t m_eff = ceil_div(sum_num, ticks_);
  assert(m_eff <= config_.processors);  // admit() enforced sum <= M
  const std::int64_t idle_num = checked_mul(m_eff, ticks_) - sum_num;
  if (idle_num > 0) {
    // Idle leaf period = the largest task period: its deadlines land on
    // instants that are already boundaries, so padding costs no events.
    Node idle;
    idle.kind = Node::Kind::kLeaf;
    idle.task = kNoTask;
    idle.period = max_period;
    idle.rate_num = idle_num;
    idle.job_work = checked_mul(idle_num, max_period);
    leaves_.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(idle));
  }
  leaf_proc_.assign(nodes_.size() + 1, kNoProc);  // grows below with packs/duals

  for (std::size_t i = 0; i < tasks_.size(); ++i)
    distinct_periods_.push_back(tasks_[i].period);
  std::sort(distinct_periods_.begin(), distinct_periods_.end());
  distinct_periods_.erase(
      std::unique(distinct_periods_.begin(), distinct_periods_.end()),
      distinct_periods_.end());

  // Reduce: pack (FFD) -> unit packs become roots -> dual the rest.
  std::vector<std::uint32_t> items = leaves_;
  while (!items.empty()) {
    assert(levels_ < 64);  // termination is guaranteed; this is a backstop
    std::sort(items.begin(), items.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (nodes_[a].rate_num != nodes_[b].rate_num)
        return nodes_[a].rate_num > nodes_[b].rate_num;
      return a < b;
    });
    std::vector<std::vector<std::uint32_t>> bins;
    std::vector<std::int64_t> bin_rate;
    for (const std::uint32_t item : items) {
      bool placed = false;
      for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bin_rate[b] + nodes_[item].rate_num <= ticks_) {
          bins[b].push_back(item);
          bin_rate[b] += nodes_[item].rate_num;
          placed = true;
          break;
        }
      }
      if (!placed) {
        bins.push_back({item});
        bin_rate.push_back(nodes_[item].rate_num);
      }
    }
    items.clear();
    bool dualized = false;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      Node pack;
      pack.kind = Node::Kind::kPack;
      pack.rate_num = bin_rate[b];
      pack.clients = std::move(bins[b]);
      std::sort(pack.clients.begin(), pack.clients.end());
      const std::uint32_t pack_idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(std::move(pack));
      if (bin_rate[b] == ticks_) {
        roots_.push_back(pack_idx);
        continue;
      }
      // Each level's rates sum to an integer, so a lone non-unit pack
      // cannot exist — there is always a partner to keep reducing with.
      Node dual;
      dual.kind = Node::Kind::kDual;
      dual.primal = pack_idx;
      dual.rate_num = ticks_ - bin_rate[b];
      // The dual's deadline set is the union of leaf periods below it.
      for (const std::uint32_t c : nodes_[pack_idx].clients) {
        const Node& child = nodes_[c];
        if (child.kind == Node::Kind::kLeaf)
          dual.periods.push_back(child.period);
        else
          dual.periods.insert(dual.periods.end(), child.periods.begin(),
                              child.periods.end());
      }
      std::sort(dual.periods.begin(), dual.periods.end());
      dual.periods.erase(std::unique(dual.periods.begin(), dual.periods.end()),
                         dual.periods.end());
      const std::uint32_t dual_idx = static_cast<std::uint32_t>(nodes_.size());
      duals_.push_back(dual_idx);
      nodes_.push_back(std::move(dual));
      items.push_back(dual_idx);
      dualized = true;
    }
    if (dualized) ++levels_;
  }
  leaf_proc_.assign(nodes_.size(), kNoProc);
}

Time RunSimulator::next_boundary_after(Time t_real) const {
  Time next = std::numeric_limits<Time>::max();
  for (const Time p : distinct_periods_)
    next = std::min(next, (t_real / p + 1) * p);
  return next;
}

void RunSimulator::process_boundary(Time t_real) {
  for (const std::uint32_t idx : leaves_) {
    Node& leaf = nodes_[idx];
    if (t_real % leaf.period != 0) continue;
    if (leaf.task != kNoTask) {
      if (leaf.work > 0) {
        // Predecessor job incomplete at its implicit deadline.  With
        // capacity-checked admission this is unreachable; counted
        // defensively so a scheduler bug cannot hide.
        metrics_.record_miss(t_real);
        obs::emit(bus_, obs::EventKind::kDeadlineMiss, t_real, leaf.task);
      }
      ++metrics_.jobs_released;
      obs::emit(bus_, obs::EventKind::kJobRelease, t_real, leaf.task, kNoProc,
                static_cast<double>(t_real + leaf.period));
    }
    leaf.work = leaf.job_work;
    leaf.release_tick = checked_mul(t_real, ticks_);
    leaf.deadline = t_real + leaf.period;
  }
  for (const std::uint32_t idx : duals_) {
    Node& dual = nodes_[idx];
    bool hit = false;
    Time next = std::numeric_limits<Time>::max();
    for (const Time p : dual.periods) {
      if (t_real % p == 0) hit = true;
      next = std::min(next, (t_real / p + 1) * p);
    }
    if (!hit) continue;  // not a deadline of this subtree: budget carries on
    dual.deadline = next;
    dual.budget = checked_mul(dual.rate_num, next - t_real);
  }
  pending_boundary_ = next_boundary_after(t_real);
}

void RunSimulator::mark_pack(std::uint32_t idx, bool exec) {
  Node& pack = nodes_[idx];
  pack.executing = exec;
  std::uint32_t pick = kNoNode;
  if (exec) {
    for (const std::uint32_t c : pack.clients) {
      const Node& cand = nodes_[c];
      const bool available = cand.kind == Node::Kind::kLeaf ? cand.work > 0
                                                            : cand.budget > 0;
      if (!available) continue;
      if (pick == kNoNode || cand.deadline < nodes_[pick].deadline) pick = c;
    }
  }
  for (const std::uint32_t c : pack.clients) {
    const bool sel = c == pick;
    Node& child = nodes_[c];
    child.executing = sel;
    // The inversion at the heart of RUN: a primal pack executes exactly
    // when its dual does not — unconditionally, so an idle parent pack
    // (sel = false for all dual clients) turns every primal below ON.
    if (child.kind == Node::Kind::kDual) mark_pack(child.primal, !sel);
  }
}

void RunSimulator::select() {
  ++metrics_.scheduler_invocations;
  ++metrics_.scheduling_points;
  obs::emit(bus_, obs::EventKind::kSchedInvoke,
            static_cast<Time>(now_tick_ / ticks_));
  for (const std::uint32_t r : roots_) mark_pack(r, true);
  executing_leaves_.clear();
  for (const std::uint32_t idx : leaves_)
    if (nodes_[idx].executing) executing_leaves_.push_back(idx);
  assert(executing_leaves_.size() <=
         static_cast<std::size_t>(config_.processors));
  // Defensive cap: the RUN theorem bounds the executing set by M; never
  // let a bookkeeping bug write past the processor array in release.
  if (executing_leaves_.size() > static_cast<std::size_t>(config_.processors))
    executing_leaves_.resize(static_cast<std::size_t>(config_.processors));
}

void RunSimulator::assign_processors(Time event_real) {
  const std::size_t m = static_cast<std::size_t>(config_.processors);
  // Pass 1: a leaf keeps its previous processor when no newly selected
  // leaf already claimed it (affinity minimises migrations).
  std::vector<bool> used(m, false);
  std::vector<std::uint32_t> unplaced;
  for (const std::uint32_t idx : executing_leaves_) {
    const ProcId p = leaf_proc_[idx];
    if (p != kNoProc && !used[p] &&
        (proc_owner_[p] == idx || proc_owner_[p] == kNoNode ||
         !nodes_[proc_owner_[p]].executing)) {
      used[p] = true;
    } else {
      unplaced.push_back(idx);
    }
  }
  // Pass 2: remaining leaves take the lowest free processor, id order.
  std::size_t next_free = 0;
  for (const std::uint32_t idx : unplaced) {
    while (next_free < m && used[next_free]) ++next_free;
    assert(next_free < m);
    const ProcId p = static_cast<ProcId>(next_free);
    used[p] = true;
    const Node& leaf = nodes_[idx];
    if (leaf.task != kNoTask) {
      if (leaf_proc_[idx] != kNoProc && leaf_proc_[idx] != p) {
        ++metrics_.migrations;
        obs::emit(bus_, obs::EventKind::kMigration, event_real, leaf.task, p,
                  static_cast<double>(leaf_proc_[idx]));
      }
    }
    leaf_proc_[idx] = p;
  }
  // Preemptions (Sec.-4 rule): was executing, no longer is, job unfinished.
  for (const std::uint32_t idx : prev_executing_) {
    const Node& leaf = nodes_[idx];
    if (!leaf.executing && leaf.work > 0 && leaf.task != kNoTask) {
      ++metrics_.preemptions;
      obs::emit(bus_, obs::EventKind::kPreemption, event_real, leaf.task, kNoProc,
                -1.0);
    }
  }
  // Context switches: the processor's occupant changed.
  for (const std::uint32_t idx : executing_leaves_) {
    const ProcId p = leaf_proc_[idx];
    if (proc_owner_[p] != idx) {
      if (nodes_[idx].task != kNoTask) {
        ++metrics_.context_switches;
        obs::emit(bus_, obs::EventKind::kContextSwitch, event_real,
                  nodes_[idx].task, p);
        obs::emit(bus_, obs::EventKind::kDispatch, event_real, nodes_[idx].task,
                  p, -1.0);
      }
      proc_owner_[p] = idx;
    }
  }
  for (std::size_t p = 0; p < m; ++p)
    if (proc_owner_[p] != kNoNode && !nodes_[proc_owner_[p]].executing)
      proc_owner_[p] = kNoNode;
  prev_executing_ = executing_leaves_;
}

Time RunSimulator::now() const noexcept {
  return static_cast<Time>(now_tick_ / ticks_);
}

void RunSimulator::run_until(Time until) {
  if (!built_) build_tree();
  assert(until <= std::numeric_limits<std::int64_t>::max() / ticks_);
  const std::int64_t until_tick = checked_mul(until, ticks_);
  if (leaves_.empty()) {
    now_tick_ = std::max(now_tick_, until_tick);
  } else {
    while (now_tick_ < until_tick) {
      if (now_tick_ == checked_mul(pending_boundary_, ticks_))
        process_boundary(pending_boundary_);
      const Time event_real = static_cast<Time>(now_tick_ / ticks_);
      select();
      assign_processors(event_real);

      std::int64_t next =
          std::min(until_tick, checked_mul(pending_boundary_, ticks_));
      for (const std::uint32_t idx : executing_leaves_)
        next = std::min(next, now_tick_ + nodes_[idx].work);
      for (const std::uint32_t idx : duals_)
        if (nodes_[idx].executing) next = std::min(next, now_tick_ + nodes_[idx].budget);
      assert(next > now_tick_);

      const std::int64_t delta = next - now_tick_;
      for (const std::uint32_t idx : executing_leaves_) {
        Node& leaf = nodes_[idx];
        leaf.work -= delta;
        if (leaf.task == kNoTask) continue;
        busy_ticks_ += delta;
        if (config_.record_segments) {
          if (!segments_.empty() && segments_.back().task == leaf.task &&
              segments_.back().end == now_tick_) {
            segments_.back().end = next;  // contiguous: extend in place
          } else {
            segments_.push_back(RunSegment{leaf.task, now_tick_, next});
          }
        }
        if (leaf.work == 0) {
          ++metrics_.jobs_completed;
          const double response =
              static_cast<double>(next - leaf.release_tick) / static_cast<double>(ticks_);
          metrics_.response_time.add(response);
          obs::emit(bus_, obs::EventKind::kJobComplete,
                    static_cast<Time>(next / ticks_), leaf.task, leaf_proc_[idx],
                    response);
        }
      }
      for (const std::uint32_t idx : duals_)
        if (nodes_[idx].executing) nodes_[idx].budget -= delta;
      now_tick_ = next;
    }
  }
  metrics_.slots = static_cast<std::uint64_t>(now_tick_ / ticks_);
  metrics_.busy_quanta = static_cast<std::uint64_t>(busy_ticks_ / ticks_);
  metrics_.idle_quanta =
      metrics_.slots * static_cast<std::uint64_t>(config_.processors) -
      metrics_.busy_quanta;
}

RunVerifyResult verify_run_segments(const std::vector<RunSegment>& segments,
                                    const TaskSet& tasks,
                                    std::int64_t ticks_per_slot, Time horizon,
                                    int processors) {
  RunVerifyResult res;
  const std::size_t n = tasks.size();
  std::vector<std::vector<const RunSegment*>> per_task(n);
  for (const RunSegment& s : segments) {
    if (s.task >= n) {
      std::ostringstream os;
      os << "unknown task id " << s.task << " in segment log";
      res.fail(os.str());
      continue;
    }
    if (s.start >= s.end) {
      std::ostringstream os;
      os << "empty/reversed segment [" << s.start << ", " << s.end
         << ") for task " << s.task;
      res.fail(os.str());
      continue;
    }
    per_task[s.task].push_back(&s);
  }

  // Per-job exactness: every window [k*p, (k+1)*p) fully inside the
  // horizon must contain exactly e * ticks of service.
  for (TaskId id = 0; id < n; ++id) {
    auto& segs = per_task[id];
    std::sort(segs.begin(), segs.end(),
              [](const RunSegment* a, const RunSegment* b) {
                return a->start < b->start;
              });
    std::int64_t prev_end = 0;
    for (const RunSegment* s : segs) {
      if (s->start < prev_end) {
        std::ostringstream os;
        os << "overlapping segments for task " << id << " at tick " << s->start;
        res.fail(os.str());
      }
      prev_end = s->end;
    }
    const Task& t = tasks[id];
    const std::int64_t window = t.period * ticks_per_slot;
    const std::int64_t want = t.execution * ticks_per_slot;
    const std::int64_t jobs = horizon / t.period;  // complete windows only
    std::vector<std::int64_t> service(static_cast<std::size_t>(jobs), 0);
    for (const RunSegment* s : segs) {
      std::int64_t lo = s->start;
      while (lo < s->end) {
        const std::int64_t k = lo / window;
        const std::int64_t hi = std::min(s->end, (k + 1) * window);
        if (k < jobs) service[static_cast<std::size_t>(k)] += hi - lo;
        lo = hi;
      }
    }
    for (std::int64_t k = 0; k < jobs; ++k) {
      if (service[static_cast<std::size_t>(k)] != want) {
        std::ostringstream os;
        os << "task " << id << " job " << k << " received "
           << service[static_cast<std::size_t>(k)] << " ticks in window ["
           << k * window << ", " << (k + 1) * window << "), expected " << want;
        res.fail(os.str());
      }
    }
  }

  // Global parallelism <= processors at every instant.
  std::vector<std::pair<std::int64_t, int>> edges;
  edges.reserve(segments.size() * 2);
  for (const RunSegment& s : segments) {
    if (s.task >= n || s.start >= s.end) continue;
    edges.emplace_back(s.start, +1);
    edges.emplace_back(s.end, -1);
  }
  std::sort(edges.begin(), edges.end());
  int active = 0;
  for (const auto& [tick, delta] : edges) {
    active += delta;
    if (active > processors) {
      std::ostringstream os;
      os << "parallelism " << active << " > " << processors << " processors at tick "
         << tick;
      res.fail(os.str());
      break;
    }
  }
  return res;
}

}  // namespace pfair
