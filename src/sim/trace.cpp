#include "sim/trace.h"

#include <algorithm>
#include <sstream>

namespace pfair {

std::string ScheduleTrace::render(const std::vector<std::string>& task_names) const {
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& n : task_names) width = std::max(width, n.size());
  for (TaskId id = 0; id < task_names.size(); ++id) {
    os << task_names[id];
    os << std::string(width - task_names[id].size() + 1, ' ') << "|";
    for (std::size_t t = 0; t < slots_.size(); ++t) os << (scheduled(t, id) ? 'X' : '.');
    os << "|\n";
  }
  os << std::string(width + 1, ' ') << "+";
  for (std::size_t t = 0; t < slots_.size(); ++t)
    os << (t % 5 == 0 ? static_cast<char>('0' + (t / 5) % 10) : '-');
  os << "+ (slot ruler: digit every 5 slots)\n";
  return os.str();
}

}  // namespace pfair
