// Global job-level EDF / RM on M processors (paper Sec. 1).
//
// The paper motivates Pfair by the failure of the *other* global
// approach: "Dhall and Liu have shown that global scheduling using
// either EDF or RM can result in arbitrarily-low processor utilization
// in multiprocessor systems."  This simulator implements exactly that
// straw man — the M highest-priority *jobs* (not quantum-level
// subtasks) run at each instant, preempting on releases — so the Dhall
// effect can be demonstrated next to PD2 scheduling the same task set
// without a miss.
//
// Continuous time (no quantisation); priorities change only at job
// releases, so the event loop advances between releases and
// completions.  Processor assignment uses the same affinity policy as
// the Pfair simulator (keep a continuing job on its processor) so the
// migration counts are comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/metrics.h"
#include "engine/simulator.h"
#include "obs/bus.h"
#include "uniproc/uni_sim.h"  // UniAlgorithm, UniTask
#include "util/types.h"

namespace pfair {

struct GlobalJobConfig {
  int processors = 1;
  UniAlgorithm algorithm = UniAlgorithm::kEDF;
};

class GlobalJobSimulator : public engine::Simulator {
 public:
  GlobalJobSimulator(std::vector<UniTask> tasks, GlobalJobConfig config);

  GlobalJobSimulator(const GlobalJobSimulator&) = delete;
  GlobalJobSimulator& operator=(const GlobalJobSimulator&) = delete;

  /// Admits a periodic task releasing from the current time.
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  void run_until(Time until) override;

  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] Time now() const noexcept override { return now_; }

  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }

 private:
  struct Job {
    std::uint32_t task = 0;
    Time deadline = 0;
    std::int64_t remaining = 0;
    ProcId last_proc = kNoProc;
    bool running_prev = false;
  };

  void release_jobs(Time t);
  [[nodiscard]] Time next_release_time() const;
  [[nodiscard]] bool higher_priority(const Job& a, const Job& b) const;

  std::vector<UniTask> tasks_;
  GlobalJobConfig config_;
  std::vector<Time> next_release_;
  std::vector<std::int64_t> live_jobs_;
  std::vector<Job> ready_;  ///< all incomplete jobs (small sets: scans)
  Time now_ = 0;
  engine::Metrics metrics_;
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off
};

}  // namespace pfair
