#include "sim/pfair_sim.h"

#include <algorithm>
#include <cassert>

#include "core/lag.h"

namespace pfair {

PfairSimulator::PfairSimulator(PfairConfig config)
    : config_(config),
      live_processors_(config.processors),
      ready_(SubtaskPriority(config.algorithm)),
      timer_(config.measure_overhead) {
  assert(config_.processors >= 1);
  prev_slot_tasks_.assign(static_cast<std::size_t>(live_processors_), kNoTask);
}

bool PfairSimulator::admit(std::int64_t execution, std::int64_t period) {
  const Task t = make_task(execution, period);
  if (!t.valid()) return false;
  add_task(t);
  return true;
}

TaskId PfairSimulator::add_task(const Task& t, std::vector<Time> arrivals) {
  assert(t.valid());
  const TaskId id = static_cast<TaskId>(tasks_.size());
  TaskRuntime rt;
  rt.spec = t;
  rt.active = true;
  rt.offset = now_ + t.phase;  // asynchronous release: windows shift by the phase
  rt.join_time = now_;
  rt.arrivals = std::move(arrivals);
  tasks_.push_back(std::move(rt));
  enqueue_next_subtask(id, now_);
  obs::emit(bus_, obs::EventKind::kTaskJoin, now_, id, kNoProc, t.weight().to_double());
  return id;
}

TaskId PfairSimulator::add_supertask(const SupertaskSpec& spec, ProcId bound_proc) {
  Task server = make_task(spec.execution, spec.period, TaskKind::kPeriodic,
                          spec.name.empty() ? "S" : spec.name);
  const TaskId id = add_task(server);
  tasks_[id].is_supertask = true;
  tasks_[id].super_index = static_cast<std::int32_t>(supertasks_.size());
  if (bound_proc != kNoProc) {
    assert(bound_proc < static_cast<ProcId>(live_processors_));
#ifndef NDEBUG
    for (const TaskRuntime& other : tasks_)
      assert(other.bound_proc != bound_proc || &other == &tasks_[id]);
#endif
    tasks_[id].bound_proc = bound_proc;
  }
  SupertaskRuntime srt;
  srt.owner = id;
  for (const Task& c : spec.components) {
    ComponentRuntime cr;
    cr.e = c.execution;
    cr.p = c.period;
    cr.next_release = now_;
    srt.components.push_back(cr);
  }
  supertasks_.push_back(std::move(srt));
  return id;
}

void PfairSimulator::add_processor_event(ProcessorEvent ev) {
  assert(ev.at >= now_ && ev.processors >= 0);
  proc_events_.push_back(ev);
  std::sort(proc_events_.begin() + static_cast<std::ptrdiff_t>(next_proc_event_),
            proc_events_.end(),
            [](const ProcessorEvent& a, const ProcessorEvent& b) { return a.at < b.at; });
}

std::optional<TaskId> PfairSimulator::join(const Task& t) {
  // Departures whose rule time has arrived free their weight before the
  // admission check (run_until(T) leaves departures at exactly T
  // unprocessed, since slot T has not been simulated yet).
  if (!pending_departures_.empty()) process_pending_departures(now_);
  if (!may_join(active_weight(), t.weight(), live_processors_)) return std::nullopt;
  return add_task(t);
}

Time PfairSimulator::earliest_leave(TaskId id) const {
  const TaskRuntime& rt = tasks_[id];
  if (rt.allocated == 0) return now_;
  return earliest_leave_time(rt.spec.execution, rt.spec.period, rt.last_sched_index, rt.offset);
}

bool PfairSimulator::leave(TaskId id) {
  if (!tasks_[id].active) return false;
  if (earliest_leave(id) > now_) return false;
  force_leave(id);
  return true;
}

void PfairSimulator::force_leave(TaskId id) {
  TaskRuntime& rt = tasks_[id];
  if (!rt.active) return;
  remove_from_queues(rt);
  rt.active = false;
  obs::emit(bus_, obs::EventKind::kTaskLeave, now_, id);
  // Cancel any in-flight departure/reweight so the task cannot be
  // resurrected when its switch-over time arrives.
  rt.leave_at = -1;
  rt.pending_e = 0;
  rt.pending_p = 0;
}

Time PfairSimulator::request_leave(TaskId id) {
  TaskRuntime& rt = tasks_[id];
  if (!rt.active) return now_;
  if (rt.leave_at >= 0) return rt.leave_at;  // already departing
  const Time freed = std::max(now_, earliest_leave(id));
  remove_from_queues(rt);  // stops executing immediately, freezing the rule
  rt.leave_at = freed;
  rt.pending_e = 0;
  rt.pending_p = 0;
  if (freed <= now_) {
    rt.active = false;
    rt.leave_at = -1;
    obs::emit(bus_, obs::EventKind::kTaskLeave, now_, id);
    return now_;
  }
  pending_departures_.push_back(id);
  return freed;
}

std::optional<Time> PfairSimulator::request_reweight(TaskId id, std::int64_t new_e,
                                                     std::int64_t new_p) {
  TaskRuntime& rt = tasks_[id];
  if (!rt.active || rt.leave_at >= 0) return std::nullopt;
  const Rational new_w(new_e, new_p);
  // The old weight stays accounted until the switch-over, at which
  // instant it is exchanged for the new one; admission only needs the
  // exchanged total to fit.
  if (!may_join(active_weight() - rt.spec.weight(), new_w, live_processors_))
    return std::nullopt;
  const Time freed = std::max(now_, earliest_leave(id));
  remove_from_queues(rt);
  rt.leave_at = freed;
  rt.pending_e = new_e;
  rt.pending_p = new_p;
  if (freed <= now_) {
    process_pending_departures(now_);  // applies immediately
    return now_;
  }
  pending_departures_.push_back(id);
  return freed;
}

void PfairSimulator::process_pending_departures(Time t) {
  // Rare path: only runs while some departure is pending.
  for (std::size_t k = 0; k < pending_departures_.size();) {
    TaskRuntime& rt = tasks_[pending_departures_[k]];
    if (!rt.active) {  // force-left while departing: drop the stale entry
      pending_departures_[k] = pending_departures_.back();
      pending_departures_.pop_back();
      continue;
    }
    if (rt.leave_at < 0 || rt.leave_at > t) {
      ++k;
      continue;
    }
    if (rt.pending_e > 0) {
      // Reweight: restart with the new weight at the switch-over time
      // (observed as a leave immediately followed by a re-join).
      obs::emit(bus_, obs::EventKind::kTaskLeave, t, pending_departures_[k]);
      rt.spec.execution = rt.pending_e;
      rt.spec.period = rt.pending_p;
      rt.next_index = 1;
      rt.last_sched_index = 0;
      rt.offset = t;
      rt.allocated = 0;
      rt.miss_counted = false;
      rt.leave_at = -1;
      rt.pending_e = 0;
      rt.pending_p = 0;
      enqueue_next_subtask(pending_departures_[k], t);
      obs::emit(bus_, obs::EventKind::kTaskJoin, t, pending_departures_[k], kNoProc,
                rt.spec.weight().to_double());
    } else {
      rt.active = false;
      rt.leave_at = -1;
      obs::emit(bus_, obs::EventKind::kTaskLeave, t, pending_departures_[k]);
    }
    pending_departures_[k] = pending_departures_.back();
    pending_departures_.pop_back();
  }
}

bool PfairSimulator::reweight(TaskId id, std::int64_t new_e, std::int64_t new_p) {
  TaskRuntime& rt = tasks_[id];
  if (!rt.active) return false;
  if (rt.allocated > 0 && earliest_leave(id) > now_) return false;
  const Rational new_w(new_e, new_p);
  if (!may_join(active_weight() - rt.spec.weight(), new_w, live_processors_)) return false;
  remove_from_queues(rt);
  obs::emit(bus_, obs::EventKind::kTaskLeave, now_, id);
  rt.spec.execution = new_e;
  rt.spec.period = new_p;
  rt.next_index = 1;
  rt.last_sched_index = 0;
  rt.offset = now_;
  rt.allocated = 0;
  rt.miss_counted = false;
  enqueue_next_subtask(id, now_);
  obs::emit(bus_, obs::EventKind::kTaskJoin, now_, id, kNoProc, rt.spec.weight().to_double());
  return true;
}

Rational PfairSimulator::active_weight() const {
  Rational sum(0);
  for (const TaskRuntime& rt : tasks_)
    if (rt.active) sum += rt.spec.weight();
  return sum;
}

Rational PfairSimulator::task_lag(TaskId id) const {
  const TaskRuntime& rt = tasks_[id];
  return lag(rt.spec.execution, rt.spec.period, now_ - rt.offset, rt.allocated);
}

std::vector<std::string> PfairSimulator::task_names() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const std::string& n = tasks_[id].spec.name;
    names.push_back(n.empty() ? "T" + std::to_string(id) : n);
  }
  return names;
}

std::uint64_t PfairSimulator::component_miss_count(TaskId id, std::size_t component) const {
  const TaskRuntime& rt = tasks_[id];
  assert(rt.is_supertask);
  return supertasks_[static_cast<std::size_t>(rt.super_index)].components[component].misses;
}

Time PfairSimulator::eligibility_time(const TaskRuntime& rt, SubtaskIndex i,
                                      Time prev_slot) const {
  const Time earliest = prev_slot + 1;
  const std::int64_t e = rt.spec.execution;
  const std::int64_t p = rt.spec.period;
  const Time release = rt.offset + subtask_release(e, p, i);
  switch (rt.spec.kind) {
    case TaskKind::kPeriodic:
      return std::max(release, earliest);
    case TaskKind::kEarlyRelease: {
      // Early release applies within a job only; a job's first subtask
      // still waits for the job release (= its Pfair release).
      const bool first_of_job = (i - 1) % e == 0;
      return first_of_job ? std::max(release, earliest) : earliest;
    }
    case TaskKind::kIntraSporadic: {
      const std::size_t idx = static_cast<std::size_t>(i - 1);
      if (idx < rt.arrivals.size()) {
        const Time arrival = rt.arrivals[idx];
        // Early arrival: eligible at arrival (deadline unchanged).
        // Late arrival: the caller shifted offset so release == arrival.
        return std::max(std::min(arrival, release), earliest);
      }
      return std::max(release, earliest);
    }
  }
  return std::max(release, earliest);
}

void PfairSimulator::enqueue_next_subtask(TaskId id, Time earliest_slot) {
  TaskRuntime& rt = tasks_[id];
  const SubtaskIndex i = rt.next_index;
  // IS late arrivals shift the remaining window chain: enlarge the offset
  // so the subtask's Pfair release coincides with its arrival.
  if (rt.spec.kind == TaskKind::kIntraSporadic) {
    const std::size_t idx = static_cast<std::size_t>(i - 1);
    if (idx < rt.arrivals.size()) {
      const Time base_release =
          rt.offset + subtask_release(rt.spec.execution, rt.spec.period, i);
      if (rt.arrivals[idx] > base_release) rt.offset += rt.arrivals[idx] - base_release;
    }
  }
  const Time eligible = eligibility_time(rt, i, earliest_slot - 1);
  rt.miss_counted = false;
  if (eligible <= now_) {
    SubtaskRef ref = make_subtask_ref(id, rt.spec.execution, rt.spec.period, i, rt.offset);
    rt.ready_handle = ready_.push(ref);
  } else {
    rt.calendar_handle = calendar_.push(CalendarEntry{eligible, id});
  }
}

void PfairSimulator::remove_from_queues(TaskRuntime& rt) {
  if (rt.ready_handle != kInvalidHandle && ready_.contains(rt.ready_handle)) {
    ready_.erase(rt.ready_handle);
  }
  rt.ready_handle = kInvalidHandle;
  if (rt.calendar_handle != kInvalidHandle && calendar_.contains(rt.calendar_handle)) {
    calendar_.erase(rt.calendar_handle);
  }
  rt.calendar_handle = kInvalidHandle;
}

void PfairSimulator::release_eligible(Time t) {
  while (!calendar_.empty() && calendar_.top().when <= t) {
    const CalendarEntry entry = calendar_.pop();
    TaskRuntime& rt = tasks_[entry.task];
    rt.calendar_handle = kInvalidHandle;
    if (!rt.active) continue;
    SubtaskRef ref =
        make_subtask_ref(entry.task, rt.spec.execution, rt.spec.period, rt.next_index, rt.offset);
    rt.ready_handle = ready_.push(ref);
  }
}

void PfairSimulator::detect_misses(Time t) {
  // Entries with deadline <= t sit at the top of the queue (every
  // priority rule orders by deadline first).  Pop them, count each miss
  // once, and either drop the subtask or requeue it for late execution.
  picked_.clear();  // reuse as scratch for requeue
  while (!ready_.empty() && ready_.top().deadline <= t) {
    SubtaskRef ref = ready_.pop();
    TaskRuntime& rt = tasks_[ref.task];
    rt.ready_handle = kInvalidHandle;
    if (!rt.miss_counted) {
      rt.miss_counted = true;
      metrics_.record_miss(t);
      obs::emit(bus_, obs::EventKind::kDeadlineMiss, t, ref.task);
    }
    if (config_.miss_policy == MissPolicy::kDrop) {
      ++rt.next_index;
      enqueue_next_subtask(ref.task, t);
    } else {
      picked_.push_back(ref);
    }
  }
  for (const SubtaskRef& ref : picked_) {
    tasks_[ref.task].ready_handle = ready_.push(ref);
  }
  picked_.clear();
}

void PfairSimulator::dispatch_supertask_quantum(TaskRuntime& rt, Time t) {
  SupertaskRuntime& srt = supertasks_[static_cast<std::size_t>(rt.super_index)];
  // Internal EDF over released, incomplete component jobs.
  ComponentRuntime* best = nullptr;
  Time best_deadline = 0;
  for (ComponentRuntime& c : srt.components) {
    for (const auto& job : c.jobs) {
      if (job.second > 0) {
        if (best == nullptr || job.first < best_deadline) {
          best = &c;
          best_deadline = job.first;
        }
        break;  // jobs are oldest-first; only the head matters for EDF
      }
    }
  }
  if (best == nullptr) return;  // no pending component work; quantum wasted
  const auto chosen =
      static_cast<std::int32_t>(best - srt.components.data());
  if (srt.last_component >= 0 && srt.last_component != chosen) {
    ++metrics_.component_switches;
    obs::emit(bus_, obs::EventKind::kComponentSwitch, t, srt.owner, kNoProc,
              static_cast<double>(chosen));
  }
  srt.last_component = chosen;
  for (auto& job : best->jobs) {
    if (job.second > 0) {
      --job.second;
      break;
    }
  }
  // Drop fully executed leading jobs.
  while (!best->jobs.empty() && best->jobs.front().second == 0) {
    best->jobs.erase(best->jobs.begin());
    best->miss_counted_for_head = false;
  }
}

void PfairSimulator::check_lags(Time t_next) {
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const TaskRuntime& rt = tasks_[id];
    if (!rt.active || rt.is_supertask) continue;
    if (rt.offset != 0 || rt.spec.kind != TaskKind::kPeriodic) continue;
    if (!lag_within_pfair_bounds(rt.spec.execution, rt.spec.period, t_next, rt.allocated)) {
      ++metrics_.lag_violations;
      obs::emit(bus_, obs::EventKind::kLagViolation, t_next, id);
    }
  }
}

void PfairSimulator::simulate_slot() {
  const Time t = now_;

  // 1. Processor events (faults / repairs).
  while (next_proc_event_ < proc_events_.size() && proc_events_[next_proc_event_].at <= t) {
    live_processors_ = proc_events_[next_proc_event_].processors;
    ++next_proc_event_;
  }

  // 1b. Orderly departures / reweights whose capacity frees now.
  if (!pending_departures_.empty()) process_pending_departures(t);

  obs::emit(bus_, obs::EventKind::kSlotBegin, t, kNoTask, kNoProc,
            static_cast<double>(std::max(live_processors_, 0)));

  // 2. Releases, 2b. supertask component job releases + miss detection.
  // Release processing is part of scheduling overhead in the paper's
  // accounting ("moving a newly-arrived or preempted task to the ready
  // queue"), so it is included in the measured time.
  const double release_ns = timer_.measure(metrics_, [&] { release_eligible(t); });
  obs::emit(bus_, obs::EventKind::kOverheadNs, t, kNoTask, kNoProc, release_ns);
  for (SupertaskRuntime& srt : supertasks_) {
    for (ComponentRuntime& c : srt.components) {
      while (c.next_release <= t) {
        c.jobs.emplace_back(c.next_release + c.p, c.e);
        c.next_release += c.p;
      }
      for (auto& job : c.jobs) {
        if (job.second > 0 && job.first <= t) {
          // Count each job's miss once: mark by negating the deadline is
          // too clever; use the head flag for the common head-job case
          // and tolerate at-most-once-per-slot counting for others.
          if (&job == &c.jobs.front()) {
            if (!c.miss_counted_for_head) {
              c.miss_counted_for_head = true;
              ++c.misses;
              metrics_.record_component_miss(t);
              obs::emit(bus_, obs::EventKind::kComponentMiss, t, srt.owner, kNoProc,
                        static_cast<double>(&c - srt.components.data()));
            }
          }
          break;
        }
      }
    }
  }

  // 3. Deadline misses among queued subtasks.
  detect_misses(t);

  // 4. Scheduler invocation: pop the M highest-priority subtasks and
  //    advance each task to its next subtask.
  timer_.start();

  picked_.clear();
  const std::size_t want = static_cast<std::size_t>(std::max(live_processors_, 0));
  while (picked_.size() < want && !ready_.empty()) {
    SubtaskRef ref = ready_.pop();
    tasks_[ref.task].ready_handle = kInvalidHandle;
    picked_.push_back(ref);
  }
  for (const SubtaskRef& ref : picked_) {
    TaskRuntime& rt = tasks_[ref.task];
    rt.last_sched_index = ref.index;
    ++rt.next_index;
    ++rt.allocated;
    enqueue_next_subtask(ref.task, t + 1);
  }

  const double sched_ns = timer_.stop(metrics_);
  ++metrics_.scheduler_invocations;
  obs::emit(bus_, obs::EventKind::kSchedInvoke, t, kNoTask, kNoProc, sched_ns);

  // 5. Processor assignment with affinity.
  const std::size_t m = static_cast<std::size_t>(std::max(live_processors_, 0));
  std::vector<TaskId> cur(m, kNoTask);
  std::vector<bool> task_placed(picked_.size(), false);
  // Pass 0: bound tasks (supertask binding) always take their fixed
  // processor; at most one task binds to any processor, so no conflict.
  for (std::size_t k = 0; k < picked_.size(); ++k) {
    TaskRuntime& rt = tasks_[picked_[k].task];
    if (rt.bound_proc != kNoProc && rt.bound_proc < m) {
      assert(cur[rt.bound_proc] == kNoTask);
      cur[rt.bound_proc] = picked_[k].task;
      task_placed[k] = true;
    }
  }
  if (config_.affinity) {
    // Pass 1: tasks that ran in slot t-1 keep their processor.
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      if (task_placed[k]) continue;
      TaskRuntime& rt = tasks_[picked_[k].task];
      if (rt.last_sched_slot == t - 1 && rt.last_proc != kNoProc && rt.last_proc < m &&
          cur[rt.last_proc] == kNoTask) {
        cur[rt.last_proc] = picked_[k].task;
        task_placed[k] = true;
      }
    }
    // Pass 2: idle-resuming tasks prefer their previous processor.
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      if (task_placed[k]) continue;
      TaskRuntime& rt = tasks_[picked_[k].task];
      if (rt.last_proc != kNoProc && rt.last_proc < m && cur[rt.last_proc] == kNoTask) {
        cur[rt.last_proc] = picked_[k].task;
        task_placed[k] = true;
      }
    }
  }
  // Pass 3: everything else takes the first free processor.
  {
    std::size_t next_free = 0;
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      if (task_placed[k]) continue;
      while (next_free < m && cur[next_free] != kNoTask) ++next_free;
      assert(next_free < m);
      cur[next_free] = picked_[k].task;
    }
  }

  // 6. Metrics + state updates.
  if (config_.record_trace) trace_.begin_slot(m);
  for (std::size_t proc = 0; proc < m; ++proc) {
    const TaskId id = cur[proc];
    if (id == kNoTask) continue;
    TaskRuntime& rt = tasks_[id];
    const ProcId old_proc = rt.last_proc;
    if (bus_ != nullptr) {
      // Dispatch latency: slots between the subtask's pseudo-release and
      // this quantum (picked_ holds the slot's scheduled refs).
      double latency = -1.0;
      for (const SubtaskRef& ref : picked_) {
        if (ref.task == id) {
          latency = static_cast<double>(t - ref.release);
          break;
        }
      }
      bus_->emit(obs::EventKind::kDispatch, t, id, static_cast<ProcId>(proc), latency);
    }
    if (proc < prev_slot_tasks_.size() && prev_slot_tasks_[proc] != id) {
      ++metrics_.context_switches;
      obs::emit(bus_, obs::EventKind::kContextSwitch, t, id, static_cast<ProcId>(proc));
    }
    if (old_proc != kNoProc && old_proc != static_cast<ProcId>(proc)) {
      ++metrics_.migrations;
      obs::emit(bus_, obs::EventKind::kMigration, t, id, static_cast<ProcId>(proc),
                static_cast<double>(old_proc));
    }
    rt.last_proc = static_cast<ProcId>(proc);
    if (config_.record_trace) trace_.record(static_cast<ProcId>(proc), id);
    if (rt.is_supertask) dispatch_supertask_quantum(rt, t);
    // Job completion bookkeeping (the job of subtask i ends when
    // i % e == 0).
    if (rt.last_sched_index % rt.spec.execution == 0) {
      ++metrics_.jobs_completed;
      // Response time of the completed job (the paper motivates ERfair
      // with improved response times; measured here for the ablation).
      const std::int64_t job = rt.last_sched_index / rt.spec.execution;  // 1-based
      const Time release = rt.offset + (job - 1) * rt.spec.period;
      metrics_.response_time.add(static_cast<double>(t + 1 - release));
      obs::emit(bus_, obs::EventKind::kJobComplete, t, id, static_cast<ProcId>(proc),
                static_cast<double>(t + 1 - release));
      if (rt.cur_job_preemptions > rt.max_job_preemptions)
        rt.max_job_preemptions = rt.cur_job_preemptions;
      rt.cur_job_preemptions = 0;
    }
  }
  // Preemptions: ran in t-1, job incomplete, not running now.
  for (const TaskId id : prev_slot_tasks_) {
    if (id == kNoTask) continue;
    TaskRuntime& rt = tasks_[id];
    if (!rt.active) continue;
    if (rt.last_sched_slot != t - 1) continue;  // stale entry
    const bool runs_now =
        std::find(cur.begin(), cur.end(), id) != cur.end();
    const bool job_incomplete = rt.last_sched_index % rt.spec.execution != 0;
    if (!runs_now && job_incomplete) {
      ++metrics_.preemptions;
      ++rt.cur_job_preemptions;
      if (bus_ != nullptr) {
        // Attribute the preemption to whoever took the victim's processor.
        double preemptor = -1.0;
        if (rt.last_proc != kNoProc && rt.last_proc < m && cur[rt.last_proc] != kNoTask)
          preemptor = static_cast<double>(cur[rt.last_proc]);
        bus_->emit(obs::EventKind::kPreemption, t, id, rt.last_proc, preemptor);
      }
    }
  }
  for (std::size_t proc = 0; proc < m; ++proc) {
    if (cur[proc] != kNoTask) tasks_[cur[proc]].last_sched_slot = t;
  }

  metrics_.busy_quanta += picked_.size();
  metrics_.idle_quanta += m - picked_.size();
  ++metrics_.slots;
  prev_slot_tasks_ = std::move(cur);
  obs::emit(bus_, obs::EventKind::kSlotEnd, t, kNoTask, kNoProc,
            static_cast<double>(picked_.size()));

  if (config_.check_lags) check_lags(t + 1);

  if (bus_ != nullptr && config_.lag_sample_every > 0 &&
      (t + 1) % config_.lag_sample_every == 0) {
    // Per-task lag timeline at the slot boundary t+1 (after this slot's
    // allocations took effect).
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      const TaskRuntime& rt = tasks_[id];
      if (!rt.active) continue;
      const Rational l = lag(rt.spec.execution, rt.spec.period, t + 1 - rt.offset,
                             rt.allocated);
      bus_->emit(obs::EventKind::kLagSample, t + 1, id, kNoProc, l.to_double());
    }
  }
}

void PfairSimulator::run_until(Time until) {
  while (now_ < until) {
    simulate_slot();
    ++now_;
  }
}

}  // namespace pfair
