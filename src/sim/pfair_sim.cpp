#include "sim/pfair_sim.h"

#include <algorithm>
#include <cassert>

#include "core/lag.h"
#include "core/simd.h"
#include "engine/parallel.h"
#include "obs/prof.h"
#include "obs/registry.h"

namespace pfair {

PfairSimulator::PfairSimulator(PfairConfig config)
    : config_(config),
      cmp_(config.algorithm, config.packed_keys),
      ready_(SubtaskPriority(config.algorithm, config.packed_keys)),
      timer_(config.measure_overhead) {
  assert(config_.processors >= 1);
  if (config_.shards < 1) config_.shards = 1;
  live_processors_ = config_.processors;
  prev_slot_tasks_.assign(static_cast<std::size_t>(live_processors_), kNoTask);
}

PfairSimulator::~PfairSimulator() = default;

Algorithm PfairSimulator::ref_algorithm() const noexcept {
  // The algorithm make_subtask_ref packs keys for.  With packing
  // disabled (the differential reference mode) refs are built keyless
  // via kWRR, which never packs, so the heap exercises the legacy
  // comparator chain end to end.
  return config_.packed_keys ? config_.algorithm : Algorithm::kWRR;
}

bool PfairSimulator::admit(const engine::TaskSpec& spec) {
  const obs::prof::ProfScope prof(obs::prof::Phase::kAdmit, -1, now_);
  if (!spec.valid()) {
    ++metrics_.tasks_rejected;
    return false;
  }
  add_task(make_task(spec.resolved_execution(), spec.resolved_period(),
                     TaskKind::kPeriodic, spec.name));
  ++metrics_.tasks_admitted;
  return true;
}

TaskId PfairSimulator::add_task(const Task& t, std::vector<Time> arrivals) {
  assert(t.valid());
  const TaskId id = static_cast<TaskId>(tasks_.size());
  TaskRuntime rt;
  rt.spec = t;
  rt.active = true;
  rt.offset = now_ + t.phase;  // asynchronous release: windows shift by the phase
  rt.join_time = now_;
  rt.arrivals = std::move(arrivals);
  tasks_.push_back(std::move(rt));
  soa_.grow(tasks_.size());
  soa_.cursor[id].reset(t.execution, t.period, 1);
  active_weight_ += t.weight();
  enqueue_next_subtask(id, now_);
  obs::emit(bus_, obs::EventKind::kTaskJoin, now_, id, kNoProc, t.weight().to_double());
  return id;
}

TaskId PfairSimulator::add_supertask(const SupertaskSpec& spec, ProcId bound_proc) {
  Task server = make_task(spec.execution, spec.period, TaskKind::kPeriodic,
                          spec.name.empty() ? "S" : spec.name);
  const TaskId id = add_task(server);
  tasks_[id].is_supertask = true;
  tasks_[id].super_index = static_cast<std::int32_t>(supertasks_.size());
  if (bound_proc != kNoProc) {
    assert(bound_proc < static_cast<ProcId>(live_processors_));
#ifndef NDEBUG
    for (const TaskRuntime& other : tasks_)
      assert(other.bound_proc != bound_proc || &other == &tasks_[id]);
#endif
    tasks_[id].bound_proc = bound_proc;
    ++bound_count_;
  }
  SupertaskRuntime srt;
  srt.owner = id;
  for (const Task& c : spec.components) {
    ComponentRuntime cr;
    cr.e = c.execution;
    cr.p = c.period;
    cr.next_release = now_;
    srt.components.push_back(cr);
  }
  supertasks_.push_back(std::move(srt));
  return id;
}

void PfairSimulator::add_processor_event(ProcessorEvent ev) {
  assert(ev.at >= now_ && ev.processors >= 0);
  // One O(log n) probe + O(n) insert into the unconsumed suffix instead
  // of re-sorting it wholesale on every registration.  upper_bound keeps
  // equal-time events in insertion order, so the last one registered for
  // a slot wins — the order the apply loop in simulate_slot relies on.
  const auto pos = std::upper_bound(
      proc_events_.begin() + static_cast<std::ptrdiff_t>(next_proc_event_),
      proc_events_.end(), ev,
      [](const ProcessorEvent& a, const ProcessorEvent& b) { return a.at < b.at; });
  proc_events_.insert(pos, ev);
}

std::optional<TaskId> PfairSimulator::join(const Task& t) {
  const obs::prof::ProfScope prof(obs::prof::Phase::kAdmit, -1, now_);
  // Departures whose rule time has arrived free their weight before the
  // admission check (run_until(T) leaves departures at exactly T
  // unprocessed, since slot T has not been simulated yet).
  if (!pending_departures_.empty()) process_pending_departures(now_);
  if (!may_join(active_weight(), t.weight(), live_processors_)) {
    ++metrics_.tasks_rejected;
    return std::nullopt;
  }
  ++metrics_.tasks_admitted;
  return add_task(t);
}

std::optional<TaskId> PfairSimulator::join(const engine::TaskSpec& spec) {
  if (!spec.valid()) {
    ++metrics_.tasks_rejected;
    return std::nullopt;
  }
  return join(make_task(spec.resolved_execution(), spec.resolved_period(),
                        TaskKind::kPeriodic, spec.name));
}

Time PfairSimulator::earliest_leave(TaskId id) const {
  if (id >= tasks_.size() || !tasks_[id].active) return -1;
  const TaskRuntime& rt = tasks_[id];
  if (rt.allocated == 0) return now_;
  return earliest_leave_time(rt.spec.execution, rt.spec.period, rt.last_sched_index, rt.offset);
}

bool PfairSimulator::leave(TaskId id) {
  if (id >= tasks_.size() || !tasks_[id].active) return false;
  if (earliest_leave(id) > now_) return false;
  force_leave(id);
  return true;
}

void PfairSimulator::force_leave(TaskId id) {
  TaskRuntime& rt = tasks_[id];
  if (!rt.active) return;
  remove_from_queues(id);
  rt.active = false;
  active_weight_ -= rt.spec.weight();
  obs::emit(bus_, obs::EventKind::kTaskLeave, now_, id);
  // Cancel any in-flight departure/reweight so the task cannot be
  // resurrected when its switch-over time arrives.
  rt.leave_at = -1;
  rt.pending_e = 0;
  rt.pending_p = 0;
}

std::optional<Time> PfairSimulator::request_leave(TaskId id) {
  if (id >= tasks_.size()) return std::nullopt;
  TaskRuntime& rt = tasks_[id];
  if (!rt.active) return std::nullopt;
  if (rt.leave_at >= 0) return rt.leave_at;  // already departing
  const Time freed = std::max(now_, earliest_leave(id));
  remove_from_queues(id);  // stops executing immediately, freezing the rule
  rt.leave_at = freed;
  rt.pending_e = 0;
  rt.pending_p = 0;
  if (freed <= now_) {
    rt.active = false;
    active_weight_ -= rt.spec.weight();
    rt.leave_at = -1;
    obs::emit(bus_, obs::EventKind::kTaskLeave, now_, id);
    return now_;
  }
  pending_departures_.push_back(id);
  return freed;
}

std::optional<Time> PfairSimulator::request_reweight(TaskId id, const engine::TaskSpec& spec) {
  if (!spec.valid()) return std::nullopt;
  return request_reweight(id, spec.resolved_execution(), spec.resolved_period());
}

std::optional<Time> PfairSimulator::request_reweight(TaskId id, std::int64_t new_e,
                                                     std::int64_t new_p) {
  if (id >= tasks_.size()) return std::nullopt;
  TaskRuntime& rt = tasks_[id];
  if (!rt.active || rt.leave_at >= 0) return std::nullopt;
  const Rational new_w(new_e, new_p);
  // The old weight stays accounted until the switch-over, at which
  // instant it is exchanged for the new one; admission only needs the
  // exchanged total to fit.
  if (!may_join(active_weight() - rt.spec.weight(), new_w, live_processors_))
    return std::nullopt;
  const Time freed = std::max(now_, earliest_leave(id));
  remove_from_queues(id);
  rt.leave_at = freed;
  rt.pending_e = new_e;
  rt.pending_p = new_p;
  if (freed <= now_) {
    process_pending_departures(now_);  // applies immediately
    return now_;
  }
  pending_departures_.push_back(id);
  return freed;
}

void PfairSimulator::process_pending_departures(Time t) {
  // Rare path: only runs while some departure is pending.
  for (std::size_t k = 0; k < pending_departures_.size();) {
    TaskRuntime& rt = tasks_[pending_departures_[k]];
    if (!rt.active) {  // force-left while departing: drop the stale entry
      pending_departures_[k] = pending_departures_.back();
      pending_departures_.pop_back();
      continue;
    }
    if (rt.leave_at < 0 || rt.leave_at > t) {
      ++k;
      continue;
    }
    if (rt.pending_e > 0) {
      // Reweight: restart with the new weight at the switch-over time
      // (observed as a leave immediately followed by a re-join).
      obs::emit(bus_, obs::EventKind::kTaskLeave, t, pending_departures_[k]);
      active_weight_ -= rt.spec.weight();
      rt.spec.execution = rt.pending_e;
      rt.spec.period = rt.pending_p;
      active_weight_ += rt.spec.weight();
      rt.next_index = 1;
      soa_.cursor[pending_departures_[k]].reset(rt.spec.execution, rt.spec.period, 1);
      rt.last_sched_index = 0;
      rt.offset = t;
      rt.allocated = 0;
      rt.leave_at = -1;
      rt.pending_e = 0;
      rt.pending_p = 0;
      enqueue_next_subtask(pending_departures_[k], t);
      obs::emit(bus_, obs::EventKind::kTaskJoin, t, pending_departures_[k], kNoProc,
                rt.spec.weight().to_double());
    } else {
      rt.active = false;
      active_weight_ -= rt.spec.weight();
      rt.leave_at = -1;
      obs::emit(bus_, obs::EventKind::kTaskLeave, t, pending_departures_[k]);
    }
    pending_departures_[k] = pending_departures_.back();
    pending_departures_.pop_back();
  }
}

bool PfairSimulator::reweight(TaskId id, std::int64_t new_e, std::int64_t new_p) {
  TaskRuntime& rt = tasks_[id];
  if (!rt.active) return false;
  if (rt.allocated > 0 && earliest_leave(id) > now_) return false;
  const Rational new_w(new_e, new_p);
  if (!may_join(active_weight() - rt.spec.weight(), new_w, live_processors_)) return false;
  remove_from_queues(id);
  obs::emit(bus_, obs::EventKind::kTaskLeave, now_, id);
  active_weight_ -= rt.spec.weight();
  rt.spec.execution = new_e;
  rt.spec.period = new_p;
  active_weight_ += rt.spec.weight();
  rt.next_index = 1;
  soa_.cursor[id].reset(new_e, new_p, 1);
  rt.last_sched_index = 0;
  rt.offset = now_;
  rt.allocated = 0;
  enqueue_next_subtask(id, now_);
  obs::emit(bus_, obs::EventKind::kTaskJoin, now_, id, kNoProc, rt.spec.weight().to_double());
  return true;
}

Rational PfairSimulator::recompute_active_weight() const {
  Rational sum(0);
  for (const TaskRuntime& rt : tasks_)
    if (rt.active) sum += rt.spec.weight();
  return sum;
}

Rational PfairSimulator::task_lag(TaskId id) const {
  const TaskRuntime& rt = tasks_[id];
  return lag(rt.spec.execution, rt.spec.period, now_ - rt.offset, rt.allocated);
}

std::vector<std::string> PfairSimulator::task_names() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const std::string& n = tasks_[id].spec.name;
    names.push_back(n.empty() ? "T" + std::to_string(id) : n);
  }
  return names;
}

std::uint64_t PfairSimulator::component_miss_count(TaskId id, std::size_t component) const {
  const TaskRuntime& rt = tasks_[id];
  assert(rt.is_supertask);
  return supertasks_[static_cast<std::size_t>(rt.super_index)].components[component].misses;
}

Time PfairSimulator::eligibility_time(TaskId id, SubtaskIndex i, Time prev_slot) const {
  const TaskRuntime& rt = tasks_[id];
  const WindowCursor& cursor = soa_.cursor[id];
  assert(cursor.index == i);
  const Time earliest = prev_slot + 1;
  const Time release = rt.offset + cursor.rel;
  switch (rt.spec.kind) {
    case TaskKind::kPeriodic:
      return std::max(release, earliest);
    case TaskKind::kEarlyRelease: {
      // Early release applies within a job only; a job's first subtask
      // still waits for the job release (= its Pfair release).
      const bool first_of_job = cursor.idx_in_job == 1;
      return first_of_job ? std::max(release, earliest) : earliest;
    }
    case TaskKind::kIntraSporadic: {
      const std::size_t idx = static_cast<std::size_t>(i - 1);
      if (idx < rt.arrivals.size()) {
        const Time arrival = rt.arrivals[idx];
        // Early arrival: eligible at arrival (deadline unchanged).
        // Late arrival: the caller shifted offset so release == arrival.
        return std::max(std::min(arrival, release), earliest);
      }
      return std::max(release, earliest);
    }
  }
  return std::max(release, earliest);
}

void PfairSimulator::enqueue_next_subtask(TaskId id, Time earliest_slot) {
  TaskRuntime& rt = tasks_[id];
  const WindowCursor& cursor = soa_.cursor[id];
  const SubtaskIndex i = rt.next_index;
  assert(cursor.index == i);
  // IS late arrivals shift the remaining window chain: enlarge the offset
  // so the subtask's Pfair release coincides with its arrival.
  if (rt.spec.kind == TaskKind::kIntraSporadic) {
    const std::size_t idx = static_cast<std::size_t>(i - 1);
    if (idx < rt.arrivals.size()) {
      const Time base_release = rt.offset + cursor.rel;
      if (rt.arrivals[idx] > base_release) rt.offset += rt.arrivals[idx] - base_release;
    }
  }
  const Time eligible = eligibility_time(id, i, earliest_slot - 1);
  // Build the ref once, here, from the cursor's division-free window
  // values; the release/selection paths read it unchanged.  Everything
  // the ref depends on (e, p, offset, alg) is invariant until the
  // subtask leaves the queues — any mutation goes through
  // remove_from_queues + a fresh enqueue.  The ref is refreshed
  // field-wise rather than rebuilt: task/e/p never change and offset
  // only moves for IS shifts.
  const std::int64_t e = rt.spec.execution;
  const std::int64_t p = rt.spec.period;
  SubtaskRef& ref = soa_.ref[id];
  ref.task = id;
  ref.index = i;
  ref.e = e;
  ref.p = p;
  ref.offset = rt.offset;
  ref.release = rt.offset + cursor.rel;
  ref.deadline = rt.offset + cursor.deadline();
  ref.b = cursor.b();
  // Light tasks keep group_dl = 0: the comparators treat zero as "no
  // group deadline".
  const Time gdl = is_heavy(e, p) ? group_deadline(e, p, i) : 0;
  ref.group_dl = gdl == 0 ? 0 : rt.offset + gdl;
  pack_subtask_ref(ref, ref_algorithm());
#ifndef NDEBUG
  {
    const SubtaskRef check = make_subtask_ref(id, e, p, i, rt.offset, ref_algorithm());
    assert(check.release == ref.release);
    assert(check.deadline == ref.deadline);
    assert(check.b == ref.b);
    assert(check.group_dl == ref.group_dl);
    assert(check.key == ref.key && check.key_alg == ref.key_alg);
  }
#endif
  soa_.publish(id, eligible);
  if (config_.soa_kernel) return;  // lanes are the only queue state
  if (eligible <= now_) {
    soa_.ready_handle[id] = ready_.push(ref);
  } else {
    soa_.calendar_when[id] = eligible;
    ++calendar_live_;
    wheel_.push(eligible, now_, id);
  }
}

void PfairSimulator::remove_from_queues(TaskId id) {
  soa_.park(id);
  if (config_.soa_kernel) return;
  HeapHandle& handle = soa_.ready_handle[id];
  if (handle != kInvalidHandle && ready_.contains(handle)) {
    ready_.erase(handle);
  }
  handle = kInvalidHandle;
  if (soa_.calendar_when[id] >= 0) {
    // Lazy wheel erase: the abandoned bucket entry no longer matches
    // calendar_when and is dropped whenever its bucket next drains.
    soa_.calendar_when[id] = -1;
    --calendar_live_;
  }
}

void PfairSimulator::release_eligible(Time t) {
  if (calendar_live_ == 0) return;
  wheel_.drain_due(t, [&](TaskId id) {
    if (soa_.calendar_when[id] != t) return;  // stale entry (erased / re-targeted)
    soa_.calendar_when[id] = -1;
    --calendar_live_;
    if (!tasks_[id].active) return;
    soa_.ready_handle[id] = ready_.push(soa_.ref[id]);
  });
}

void PfairSimulator::detect_misses(Time t) {
  // Entries with deadline <= t sit at the top of the queue (every
  // priority rule orders by deadline first).  Pop them in priority order
  // (the obs event order is part of the simulator's contract), count
  // each miss once, and either drop the subtask or requeue it for late
  // execution.  A queued entry is always the task's pending ref,
  // unchanged, so the requeue pushes that instead of hauling popped
  // copies around.
  requeue_.clear();
  while (!ready_.empty() && ready_.top().deadline <= t) {
    const TaskId id = ready_.top().task;
    ready_.erase(ready_.top_handle());
    TaskRuntime& rt = tasks_[id];
    soa_.ready_handle[id] = kInvalidHandle;
    if (soa_.miss_counted[id] == 0) {
      soa_.miss_counted[id] = 1;
      metrics_.record_miss(t);
      obs::emit(bus_, obs::EventKind::kDeadlineMiss, t, id);
    }
    if (config_.miss_policy == MissPolicy::kDrop) {
      ++rt.next_index;
      soa_.cursor[id].advance();
      enqueue_next_subtask(id, t);
    } else {
      requeue_.push_back(id);
    }
  }
  for (const TaskId id : requeue_) {
    soa_.ready_handle[id] = ready_.push(soa_.ref[id]);
  }
}

void PfairSimulator::dispatch_supertask_quantum(TaskRuntime& rt, Time t) {
  SupertaskRuntime& srt = supertasks_[static_cast<std::size_t>(rt.super_index)];
  // Internal EDF over released, incomplete component jobs.
  ComponentRuntime* best = nullptr;
  Time best_deadline = 0;
  for (ComponentRuntime& c : srt.components) {
    for (const auto& job : c.jobs) {
      if (job.second > 0) {
        if (best == nullptr || job.first < best_deadline) {
          best = &c;
          best_deadline = job.first;
        }
        break;  // jobs are oldest-first; only the head matters for EDF
      }
    }
  }
  if (best == nullptr) return;  // no pending component work; quantum wasted
  const auto chosen =
      static_cast<std::int32_t>(best - srt.components.data());
  if (srt.last_component >= 0 && srt.last_component != chosen) {
    ++metrics_.component_switches;
    obs::emit(bus_, obs::EventKind::kComponentSwitch, t, srt.owner, kNoProc,
              static_cast<double>(chosen));
  }
  srt.last_component = chosen;
  for (auto& job : best->jobs) {
    if (job.second > 0) {
      --job.second;
      break;
    }
  }
  // Drop fully executed leading jobs.
  while (!best->jobs.empty() && best->jobs.front().second == 0) {
    best->jobs.erase(best->jobs.begin());
    best->miss_counted_for_head = false;
  }
}

void PfairSimulator::check_lags(Time t_next) {
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const TaskRuntime& rt = tasks_[id];
    if (!rt.active || rt.is_supertask) continue;
    if (rt.offset != 0 || rt.spec.kind != TaskKind::kPeriodic) continue;
    if (!lag_within_pfair_bounds(rt.spec.execution, rt.spec.period, t_next, rt.allocated)) {
      ++metrics_.lag_violations;
      obs::emit(bus_, obs::EventKind::kLagViolation, t_next, id);
    }
  }
}

void PfairSimulator::simulate_slot() {
  const Time t = now_;

  // 1. Processor events (faults / repairs).
  while (next_proc_event_ < proc_events_.size() && proc_events_[next_proc_event_].at <= t) {
    live_processors_ = proc_events_[next_proc_event_].processors;
    ++next_proc_event_;
  }

  // 1b. Orderly departures / reweights whose capacity frees now.
  if (!pending_departures_.empty()) process_pending_departures(t);

  obs::emit(bus_, obs::EventKind::kSlotBegin, t, kNoTask, kNoProc,
            static_cast<double>(std::max(live_processors_, 0)));

  // 2. Releases, 2b. supertask component job releases + miss detection.
  // Release processing is part of scheduling overhead in the paper's
  // accounting ("moving a newly-arrived or preempted task to the ready
  // queue"), so it is included in the measured time.
  double release_ns = 0.0;
  {
    const obs::prof::ProfScope prof(obs::prof::Phase::kRelease, -1, t);
    release_ns = timer_.measure(metrics_, [&] { release_eligible(t); });
  }
  obs::emit(bus_, obs::EventKind::kOverheadNs, t, kNoTask, kNoProc, release_ns);
  for (SupertaskRuntime& srt : supertasks_) {
    for (ComponentRuntime& c : srt.components) {
      while (c.next_release <= t) {
        c.jobs.emplace_back(c.next_release + c.p, c.e);
        c.next_release += c.p;
      }
      for (auto& job : c.jobs) {
        if (job.second > 0 && job.first <= t) {
          // Count each job's miss once: mark by negating the deadline is
          // too clever; use the head flag for the common head-job case
          // and tolerate at-most-once-per-slot counting for others.
          if (&job == &c.jobs.front()) {
            if (!c.miss_counted_for_head) {
              c.miss_counted_for_head = true;
              ++c.misses;
              metrics_.record_component_miss(t);
              obs::emit(bus_, obs::EventKind::kComponentMiss, t, srt.owner, kNoProc,
                        static_cast<double>(&c - srt.components.data()));
            }
          }
          break;
        }
      }
    }
  }

  if (config_.soa_kernel) {
    // 3+4 (SoA): one sharded sweep does miss detection, top-M selection
    // and advancement; emission happens in the same order as the legacy
    // path (kDeadlineMiss in priority order, then kSchedInvoke).
    soa_schedule(t);
  } else {
    // 3. Deadline misses among queued subtasks.
    {
      const obs::prof::ProfScope prof(obs::prof::Phase::kLegacyMissSweep, -1, t);
      detect_misses(t);
    }

    // 4. Scheduler invocation: pop the M highest-priority subtasks and
    //    advance each task to its next subtask.
    const obs::prof::ProfScope prof_select(obs::prof::Phase::kLegacySelect, -1, t);
    timer_.start();

    picked_.clear();
    const std::size_t want = static_cast<std::size_t>(std::max(live_processors_, 0));
    while (picked_.size() < want && !ready_.empty()) {
      const HeapHandle h = ready_.top_handle();
      const SubtaskRef& ref = ready_.get(h);
      TaskRuntime& rt = tasks_[ref.task];
      soa_.ready_handle[ref.task] = kInvalidHandle;
      rt.last_sched_index = ref.index;
      picked_.push_back(Pick{ref.task, ref.release, 0});
      ready_.erase(h);
    }
    for (const Pick& pick : picked_) {
      TaskRuntime& rt = tasks_[pick.task];
      rt.picked_slot = t;
      ++rt.next_index;
      soa_.cursor[pick.task].advance();
      ++rt.allocated;
      enqueue_next_subtask(pick.task, t + 1);
    }

    const double sched_ns = timer_.stop(metrics_);
    ++metrics_.scheduler_invocations;
    ++metrics_.scheduling_points;
    obs::emit(bus_, obs::EventKind::kSchedInvoke, t, kNoTask, kNoProc, sched_ns);
  }

  // 5. Processor assignment with affinity.  assign_ maps processor ->
  // index into picked_ (-1 = idle) so every later lookup (task id,
  // dispatch latency) is a direct picked_ access; all scratch lives in
  // reused members, so the kernel allocates nothing at steady state.
  // The kAssign span covers assignment plus the per-slot accounting
  // below it (steps 5-6) — everything after the scheduler invocation.
  const obs::prof::ProfScope prof_assign(obs::prof::Phase::kAssign, -1, t);
  const std::size_t m = static_cast<std::size_t>(std::max(live_processors_, 0));
  constexpr std::int32_t kIdle = -1;
  assign_.assign(m, kIdle);
  // Pass 0: bound tasks (supertask binding) always take their fixed
  // processor; at most one task binds to any processor, so no conflict.
  // Skipped entirely when nothing is bound (the common case).
  if (bound_count_ > 0) {
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      TaskRuntime& rt = tasks_[picked_[k].task];
      if (rt.bound_proc != kNoProc && rt.bound_proc < m) {
        assert(assign_[rt.bound_proc] == kIdle);
        assign_[rt.bound_proc] = static_cast<std::int32_t>(k);
        picked_[k].placed = 1;
      }
    }
  }
  if (config_.affinity) {
    // Pass 1: tasks that ran in slot t-1 keep their processor.
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      if (picked_[k].placed != 0) continue;
      TaskRuntime& rt = tasks_[picked_[k].task];
      if (rt.last_sched_slot == t - 1 && rt.last_proc != kNoProc && rt.last_proc < m &&
          assign_[rt.last_proc] == kIdle) {
        assign_[rt.last_proc] = static_cast<std::int32_t>(k);
        picked_[k].placed = 1;
      }
    }
    // Pass 2: idle-resuming tasks prefer their previous processor.
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      if (picked_[k].placed != 0) continue;
      TaskRuntime& rt = tasks_[picked_[k].task];
      if (rt.last_proc != kNoProc && rt.last_proc < m && assign_[rt.last_proc] == kIdle) {
        assign_[rt.last_proc] = static_cast<std::int32_t>(k);
        picked_[k].placed = 1;
      }
    }
  }
  // Pass 3: everything else takes the first free processor.
  {
    std::size_t next_free = 0;
    for (std::size_t k = 0; k < picked_.size(); ++k) {
      if (picked_[k].placed != 0) continue;
      while (next_free < m && assign_[next_free] != kIdle) ++next_free;
      assert(next_free < m);
      assign_[next_free] = static_cast<std::int32_t>(k);
    }
  }

  // 6. Metrics + state updates.
  if (config_.record_trace) trace_.begin_slot(m);
  for (std::size_t proc = 0; proc < m; ++proc) {
    const std::int32_t ki = assign_[proc];
    if (ki == kIdle) continue;
    const Pick& picked_ref = picked_[static_cast<std::size_t>(ki)];
    const TaskId id = picked_ref.task;
    TaskRuntime& rt = tasks_[id];
    const ProcId old_proc = rt.last_proc;
    if (bus_ != nullptr) {
      // Dispatch latency: slots between the subtask's pseudo-release and
      // this quantum.
      const double latency = static_cast<double>(t - picked_ref.release);
      bus_->emit(obs::EventKind::kDispatch, t, id, static_cast<ProcId>(proc), latency);
    }
    if (proc < prev_slot_tasks_.size() && prev_slot_tasks_[proc] != id) {
      ++metrics_.context_switches;
      obs::emit(bus_, obs::EventKind::kContextSwitch, t, id, static_cast<ProcId>(proc));
    }
    if (old_proc != kNoProc && old_proc != static_cast<ProcId>(proc)) {
      ++metrics_.migrations;
      obs::emit(bus_, obs::EventKind::kMigration, t, id, static_cast<ProcId>(proc),
                static_cast<double>(old_proc));
    }
    rt.last_proc = static_cast<ProcId>(proc);
    if (config_.record_trace) trace_.record(static_cast<ProcId>(proc), id);
    if (rt.is_supertask) dispatch_supertask_quantum(rt, t);
    // Job completion bookkeeping (the job of subtask i ends when
    // i % e == 0, i.e. exactly when the cursor — already advanced to
    // i + 1 by the scheduler pass — wrapped to a new job).
    if (soa_.cursor[id].idx_in_job == 1) {
      ++metrics_.jobs_completed;
      // Response time of the completed job (the paper motivates ERfair
      // with improved response times; measured here for the ablation).
      // The cursor's job_rel is the *next* job's relative release; the
      // completed job released one period earlier.
      const Time release = rt.offset + soa_.cursor[id].job_rel - rt.spec.period;
      metrics_.response_time.add(static_cast<double>(t + 1 - release));
      obs::emit(bus_, obs::EventKind::kJobComplete, t, id, static_cast<ProcId>(proc),
                static_cast<double>(t + 1 - release));
      if (rt.cur_job_preemptions > rt.max_job_preemptions)
        rt.max_job_preemptions = rt.cur_job_preemptions;
      rt.cur_job_preemptions = 0;
    }
  }
  // Preemptions: ran in t-1, job incomplete, not running now.  Every
  // picked task was stamped picked_slot = t above, so "runs now" is one
  // field test instead of an O(M) scan per previous-slot task.
  for (const TaskId id : prev_slot_tasks_) {
    if (id == kNoTask) continue;
    TaskRuntime& rt = tasks_[id];
    if (!rt.active) continue;
    if (rt.last_sched_slot != t - 1) continue;  // stale entry
    const bool runs_now = rt.picked_slot == t;
    const bool job_incomplete = rt.last_sched_index % rt.spec.execution != 0;
    if (!runs_now && job_incomplete) {
      ++metrics_.preemptions;
      ++rt.cur_job_preemptions;
      if (bus_ != nullptr) {
        // Attribute the preemption to whoever took the victim's processor.
        double preemptor = -1.0;
        if (rt.last_proc != kNoProc && rt.last_proc < m && assign_[rt.last_proc] != kIdle)
          preemptor =
              static_cast<double>(picked_[static_cast<std::size_t>(assign_[rt.last_proc])].task);
        bus_->emit(obs::EventKind::kPreemption, t, id, rt.last_proc, preemptor);
      }
    }
  }
  prev_slot_tasks_.assign(m, kNoTask);
  for (std::size_t proc = 0; proc < m; ++proc) {
    const std::int32_t ki = assign_[proc];
    if (ki == kIdle) continue;
    const TaskId id = picked_[static_cast<std::size_t>(ki)].task;
    tasks_[id].last_sched_slot = t;
    prev_slot_tasks_[proc] = id;
  }

  metrics_.busy_quanta += picked_.size();
  metrics_.idle_quanta += m - picked_.size();
  ++metrics_.slots;
  if (obs::prof::enabled()) {
    static obs::Counter& slots = obs::MetricsRegistry::global().counter("sim.slots");
    slots.add();
  }
  last_slot_allocated_ = !picked_.empty();
  obs::emit(bus_, obs::EventKind::kSlotEnd, t, kNoTask, kNoProc,
            static_cast<double>(picked_.size()));

  if (config_.check_lags) check_lags(t + 1);

  if (bus_ != nullptr && config_.lag_sample_every > 0 &&
      (t + 1) % config_.lag_sample_every == 0) {
    // Per-task lag timeline at the slot boundary t+1 (after this slot's
    // allocations took effect).
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      const TaskRuntime& rt = tasks_[id];
      if (!rt.active) continue;
      const Rational l = lag(rt.spec.execution, rt.spec.period, t + 1 - rt.offset,
                             rt.allocated);
      bus_->emit(obs::EventKind::kLagSample, t + 1, id, kNoProc, l.to_double());
    }
  }
}

Time PfairSimulator::fast_forward_target(Time until) const {
  // Eligibility: a slot may be skipped only when the per-slot kernel
  // would provably (a) schedule nothing and (b) produce no observable
  // per-slot effect beyond bulk-accountable idle metrics.  Anything
  // that needs per-slot work disables the jump:
  //   - an attached observer (kSlotBegin/kSlotEnd/etc. per slot),
  //   - per-slot lag checking or overhead timing,
  //   - supertasks (component jobs release and miss on their own clock),
  //   - pending orderly departures (their switch-over must fire on time),
  //   - a non-empty ready queue (something would be scheduled),
  //   - an allocation in the immediately preceding slot (its preemption
  //     accounting can still fire one slot later).
  // The jump then stops at the next release-calendar entry or processor
  // event, whichever comes first.
  if (last_slot_allocated_) return now_;
  if (bus_ != nullptr || config_.check_lags || config_.measure_overhead) return now_;
  if (!supertasks_.empty() || !pending_departures_.empty()) return now_;
  Time target = until;
  if (next_proc_event_ < proc_events_.size())
    target = std::min(target, proc_events_[next_proc_event_].at);
  if (config_.soa_kernel) {
    // One lane minimum answers both questions: something eligible now
    // (no jump) and the next eligibility event (jump bound).  Parked
    // lanes are kNeverEligible and never win the min.
    const Time next =
        simd::min_value(soa_.eligible_at.data(), soa_.size(), config_.simd);
    if (next <= now_) return now_;
    target = std::min(target, next);
  } else {
    if (!ready_.empty()) return now_;
    if (calendar_live_ > 0) {
      const Time ev = wheel_.next_event(now_, target, [this](TaskId id, Time when) {
        return soa_.calendar_when[id] == when;
      });
      target = std::min(target, ev);
    }
  }
  return std::max(target, now_);
}

void PfairSimulator::account_idle_slots(Time count) {
  const std::size_t m = static_cast<std::size_t>(std::max(live_processors_, 0));
  if (obs::prof::enabled()) {
    // Registry mirror of the fast-forward metrics: traces never contain
    // FF (an attached bus disables it), so the registry is how a
    // profiled run reports FF effectiveness (pfair_trace report
    // --registry / pfair_perf snapshot).
    static obs::Counter& ff =
        obs::MetricsRegistry::global().counter("sim.fast_forwarded_slots");
    static obs::Counter& jumps = obs::MetricsRegistry::global().counter("sim.ff_jumps");
    ff.add(static_cast<std::uint64_t>(count));
    jumps.add();
  }
  metrics_.slots += static_cast<std::uint64_t>(count);
  metrics_.idle_quanta += static_cast<std::uint64_t>(count) * m;
  metrics_.scheduler_invocations += static_cast<std::uint64_t>(count);
  metrics_.scheduling_points += static_cast<std::uint64_t>(count);
  metrics_.fast_forwarded_slots += static_cast<std::uint64_t>(count);
  if (config_.record_trace) trace_.idle_slots(m, static_cast<std::size_t>(count));
  // What one simulated idle slot would leave behind for the next slot's
  // context-switch / preemption accounting.
  prev_slot_tasks_.assign(m, kNoTask);
  last_slot_allocated_ = false;
}

void PfairSimulator::run_until(Time until) {
  while (now_ < until) {
    if (config_.idle_fast_forward) {
      const Time target = fast_forward_target(until);
      if (target > now_) {
        account_idle_slots(target - now_);
        now_ = target;
        continue;
      }
    }
    simulate_slot();
    ++now_;
  }
}

}  // namespace pfair
