#include "sim/global_job_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pfair {

GlobalJobSimulator::GlobalJobSimulator(std::vector<UniTask> tasks, GlobalJobConfig config)
    : tasks_(std::move(tasks)),
      config_(config),
      next_release_(tasks_.size(), 0),
      live_jobs_(tasks_.size(), 0) {
  assert(config_.processors >= 1);
}

bool GlobalJobSimulator::admit(const engine::TaskSpec& spec) {
  const UniTask t{spec.resolved_execution(), spec.resolved_period()};
  if (!t.valid()) {
    ++metrics_.tasks_rejected;
    return false;
  }
  tasks_.push_back(t);
  next_release_.push_back(now_);
  live_jobs_.push_back(0);
  ++metrics_.tasks_admitted;
  return true;
}

bool GlobalJobSimulator::higher_priority(const Job& a, const Job& b) const {
  if (config_.algorithm == UniAlgorithm::kEDF) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
  } else {
    if (tasks_[a.task].period != tasks_[b.task].period)
      return tasks_[a.task].period < tasks_[b.task].period;
  }
  return a.task < b.task;
}

void GlobalJobSimulator::release_jobs(Time t) {
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
    while (next_release_[i] <= t) {
      // Implicit deadline = next release: a live predecessor missed.
      if (live_jobs_[i] > 0) {
        metrics_.record_miss(next_release_[i]);
        obs::emit(bus_, obs::EventKind::kDeadlineMiss, next_release_[i], i);
      }
      ready_.push_back(Job{i, next_release_[i] + tasks_[i].period, tasks_[i].execution,
                           kNoProc, false});
      ++metrics_.jobs_released;
      ++live_jobs_[i];
      obs::emit(bus_, obs::EventKind::kJobRelease, next_release_[i], i, kNoProc,
                static_cast<double>(next_release_[i] + tasks_[i].period));
      next_release_[i] += tasks_[i].period;
    }
  }
}

Time GlobalJobSimulator::next_release_time() const {
  Time best = std::numeric_limits<Time>::max();
  for (const Time r : next_release_) best = std::min(best, r);
  return best;
}

void GlobalJobSimulator::run_until(Time until) {
  while (now_ < until) {
    release_jobs(now_);

    // Select the M highest-priority incomplete jobs.
    std::vector<Job*> order;
    order.reserve(ready_.size());
    for (Job& j : ready_) order.push_back(&j);
    std::sort(order.begin(), order.end(),
              [&](const Job* a, const Job* b) { return higher_priority(*a, *b); });
    const std::size_t running =
        std::min<std::size_t>(order.size(), static_cast<std::size_t>(config_.processors));

    // Preemption accounting: was running, still incomplete, now not.
    for (std::size_t k = running; k < order.size(); ++k) {
      if (order[k]->running_prev) {
        ++metrics_.preemptions;
        obs::emit(bus_, obs::EventKind::kPreemption, now_, order[k]->task,
                  order[k]->last_proc, -1.0);
      }
      order[k]->running_prev = false;
    }
    // Processor assignment with affinity among the selected jobs.
    std::vector<bool> proc_taken(static_cast<std::size_t>(config_.processors), false);
    std::vector<Job*> needs_proc;
    for (std::size_t k = 0; k < running; ++k) {
      Job* j = order[k];
      if (j->last_proc != kNoProc && !proc_taken[j->last_proc]) {
        proc_taken[j->last_proc] = true;
      } else {
        needs_proc.push_back(j);
      }
    }
    for (Job* j : needs_proc) {
      ProcId p = 0;
      while (proc_taken[p]) ++p;
      proc_taken[p] = true;
      if (j->last_proc != kNoProc && j->last_proc != p) {
        ++metrics_.migrations;
        obs::emit(bus_, obs::EventKind::kMigration, now_, j->task, p,
                  static_cast<double>(j->last_proc));
      }
      j->last_proc = p;
    }

    // Advance to the next event: release or earliest completion.
    Time advance_to = std::min(next_release_time(), until);
    for (std::size_t k = 0; k < running; ++k)
      advance_to = std::min(advance_to, now_ + order[k]->remaining);
    if (advance_to <= now_) advance_to = now_ + 1;  // safety
    const Time delta = advance_to - now_;

    for (std::size_t k = 0; k < running; ++k) {
      obs::emit(bus_, obs::EventKind::kExecSlice, now_, order[k]->task,
                order[k]->last_proc, static_cast<double>(delta));
      order[k]->remaining -= delta;
      order[k]->running_prev = true;
    }
    now_ = advance_to;

    // Retire completed jobs.
    for (std::size_t i = ready_.size(); i-- > 0;) {
      if (ready_[i].remaining == 0) {
        ++metrics_.jobs_completed;
        // value = -1: response times are not tracked by this simulator.
        obs::emit(bus_, obs::EventKind::kJobComplete, now_, ready_[i].task,
                  ready_[i].last_proc, -1.0);
        --live_jobs_[ready_[i].task];
        ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
}

}  // namespace pfair
