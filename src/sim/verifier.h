// Independent schedule verification.
//
// The simulator asserts properties about its own bookkeeping; this
// module re-derives everything from the raw allocation trace alone, so
// simulator bugs cannot hide behind their own accounting.  For a
// synchronous periodic task set it checks, slot by slot:
//
//   - structural sanity: no task on two processors in one slot, no
//     more allocations than processors;
//   - the Pfair window property: the k-th quantum received by task T
//     lies inside [r(T_k), d(T_k)) — equivalent to all deadlines met
//     AND no subtask running before its release;
//   - the lag bounds -1 < lag(T, t) < 1 at every integer time
//     (implied by the window property, but checked independently).
//
// Both window edges are reported with an excerpt covering the violated
// window: a deadline-side miss shows the slots up to and past d(T_k); a
// before-release violation shows the (future) window the quantum jumped
// ahead of.  Work conservation is a property of *eligibility*, not of
// the trace alone, so it lives in the qa layer's
// erfair-work-conservation oracle (qa/oracle.h), not here.
#pragma once

#include <string>
#include <vector>

#include "core/task.h"
#include "sim/trace.h"

namespace pfair {

struct VerifyOptions {
  int processors = 1;
  bool check_windows = true;   ///< Pfair windows (disable for ERfair traces)
  bool check_lags = true;      ///< strict (-1, 1) lag bounds
  bool check_upper_lag_only = false;  ///< ERfair: only lag < 1 (deadlines)
  /// Job-boundary exactness (for boundary-fair traces, which need not
  /// honour subtask windows *within* an interval): cumulative allocation
  /// at every period multiple k*p covered by the trace must equal k*e
  /// exactly.  Exactness at both ends of every job window [k*p, (k+1)*p)
  /// means each job receives exactly e quanta between release and
  /// deadline — a valid job-level schedule — so this is the complete
  /// correctness condition for BF, not a sampling of it.
  bool check_job_boundaries = false;
};

struct VerifyResult {
  bool ok = true;
  std::size_t violations = 0;
  std::string first_violation;  ///< human-readable description

  void fail(std::string what) {
    ++violations;
    if (ok) first_violation = std::move(what);
    ok = false;
  }
};

/// Verifies `trace` against `tasks` (task id i in the trace = tasks[i];
/// all tasks synchronous at time 0).
[[nodiscard]] VerifyResult verify_schedule(const ScheduleTrace& trace, const TaskSet& tasks,
                                           const VerifyOptions& options);

}  // namespace pfair
