// Schedule traces: per-slot processor allocation records, plus an ASCII
// renderer used to reproduce the paper's schedule figures (Figs. 1, 5).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "util/types.h"

namespace pfair {

/// One slot's allocation: entry per processor, kNoTask when idle.
struct TraceSlot {
  std::vector<TaskId> proc_to_task;
};

/// Dense record of an entire simulated schedule.  Only filled when
/// tracing is enabled (memory: processors * horizon entries).
class ScheduleTrace {
 public:
  void begin_slot(std::size_t processors) {
    slots_.emplace_back();
    slots_.back().proc_to_task.assign(processors, kNoTask);
  }

  /// Bulk-appends `count` all-idle slots — what `count` begin_slot()
  /// calls with no record() would produce.  Used by the simulator's
  /// idle-slot fast-forward so traced runs stay bit-identical to the
  /// slot-by-slot path.
  void idle_slots(std::size_t processors, std::size_t count) {
    slots_.reserve(slots_.size() + count);
    for (std::size_t i = 0; i < count; ++i) begin_slot(processors);
  }
  void record(ProcId proc, TaskId task) {
    const std::size_t t = slots_.size() - 1;
    TaskId& cell = slots_.back().proc_to_task[proc];
    const TaskId prev = cell;
    if (prev == task) return;
    cell = task;
    if (prev != kNoTask && !scheduled(t, prev)) {
      // Overwrite: drop the stale index entry unless another processor
      // in this slot still runs `prev`.
      auto& v = index_[prev];
      if (!v.empty() && v.back() == t) v.pop_back();
    }
    if (task != kNoTask) {
      if (task >= index_.size()) index_.resize(task + 1);
      auto& v = index_[task];
      if (v.empty() || v.back() != t) v.push_back(t);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] const TraceSlot& operator[](std::size_t t) const noexcept { return slots_[t]; }

  /// True iff `task` holds some processor in slot t.
  [[nodiscard]] bool scheduled(std::size_t t, TaskId task) const noexcept {
    for (const TaskId id : slots_[t].proc_to_task)
      if (id == task) return true;
    return false;
  }

  /// Quanta allocated to `task` in [0, t_end).  O(log slots) via the
  /// per-task index of scheduled slots (kept sorted because slots are
  /// recorded in time order) — the verifier calls this once per subtask
  /// boundary, which made the old O(t_end * P) scan the dominant cost of
  /// long verification runs.
  [[nodiscard]] std::int64_t allocation(TaskId task, std::size_t t_end) const noexcept {
    if (task >= index_.size()) return 0;
    const std::vector<std::size_t>& v = index_[task];
    return std::lower_bound(v.begin(), v.end(), t_end) - v.begin();
  }

  /// Renders one row per task ("X" = scheduled, "." = not), in the style
  /// of the paper's schedule figures.
  [[nodiscard]] std::string render(const std::vector<std::string>& task_names) const;

 private:
  std::vector<TraceSlot> slots_;
  /// index_[task] = sorted slot numbers in which `task` was scheduled.
  std::vector<std::vector<std::size_t>> index_;
};

}  // namespace pfair
