// Schedule traces: per-slot processor allocation records, plus an ASCII
// renderer used to reproduce the paper's schedule figures (Figs. 1, 5).
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace pfair {

/// One slot's allocation: entry per processor, kNoTask when idle.
struct TraceSlot {
  std::vector<TaskId> proc_to_task;
};

/// Dense record of an entire simulated schedule.  Only filled when
/// tracing is enabled (memory: processors * horizon entries).
class ScheduleTrace {
 public:
  void begin_slot(std::size_t processors) {
    slots_.emplace_back();
    slots_.back().proc_to_task.assign(processors, kNoTask);
  }
  void record(ProcId proc, TaskId task) {
    slots_.back().proc_to_task[proc] = task;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] const TraceSlot& operator[](std::size_t t) const noexcept { return slots_[t]; }

  /// True iff `task` holds some processor in slot t.
  [[nodiscard]] bool scheduled(std::size_t t, TaskId task) const noexcept {
    for (const TaskId id : slots_[t].proc_to_task)
      if (id == task) return true;
    return false;
  }

  /// Quanta allocated to `task` in [0, t_end).
  [[nodiscard]] std::int64_t allocation(TaskId task, std::size_t t_end) const noexcept {
    std::int64_t n = 0;
    for (std::size_t t = 0; t < t_end && t < slots_.size(); ++t)
      if (scheduled(t, task)) ++n;
    return n;
  }

  /// Renders one row per task ("X" = scheduled, "." = not), in the style
  /// of the paper's schedule figures.
  [[nodiscard]] std::string render(const std::vector<std::string>& task_names) const;

 private:
  std::vector<TraceSlot> slots_;
};

}  // namespace pfair
